package ptycho

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"math"
	"math/cmplx"
	"os"
)

// PhaseImage renders the phase of a field as an 8-bit grayscale image,
// linearly mapped from the field's own phase range.
func PhaseImage(f Field) *image.Gray {
	vals := make([]float64, len(f.Data))
	for i, v := range f.Data {
		vals[i] = cmplx.Phase(v)
	}
	return grayFrom(vals, f.W, f.H)
}

// MagnitudeImage renders |field| as an 8-bit grayscale image.
func MagnitudeImage(f Field) *image.Gray {
	vals := make([]float64, len(f.Data))
	for i, v := range f.Data {
		vals[i] = cmplx.Abs(v)
	}
	return grayFrom(vals, f.W, f.H)
}

func grayFrom(vals []float64, w, h int) *image.Gray {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	img := image.NewGray(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			t := (vals[y*w+x] - lo) / span
			img.SetGray(x, y, color.Gray{Y: uint8(math.Round(255 * t))})
		}
	}
	return img
}

// SavePNG writes an image to path as PNG.
func SavePNG(path string, img image.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("ptycho: %w", err)
	}
	defer f.Close()
	if err := png.Encode(f, img); err != nil {
		return fmt.Errorf("ptycho: encoding %s: %w", path, err)
	}
	return nil
}
