// Integration tests crossing module boundaries: dataset serialization
// feeding parallel reconstruction, all three algorithms agreeing on the
// same data, and the public API matching the internal engines.
package ptycho_test

import (
	"bytes"
	"math"
	"math/cmplx"
	"testing"
	"time"

	"ptychopath"
	"ptychopath/internal/dataio"
	"ptychopath/internal/gradsync"
	"ptychopath/internal/grid"
	"ptychopath/internal/halo"
	"ptychopath/internal/metrics"
	"ptychopath/internal/phantom"
	"ptychopath/internal/physics"
	"ptychopath/internal/scan"
	"ptychopath/internal/solver"
	"ptychopath/internal/tiling"
)

const itTimeout = 30 * time.Second

// TestPipelineSerializeReconstructAllAlgorithms is the full-system
// round trip: phantom -> simulate -> serialize -> deserialize -> three
// reconstruction algorithms -> quality metrics.
func TestPipelineSerializeReconstructAllAlgorithms(t *testing.T) {
	pat, err := scan.Raster(scan.RasterConfig{
		Cols: 5, Rows: 5, StepPix: 5, RadiusPix: 8, MarginPix: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	truth := phantom.RandomObject(pat.ImageW, pat.ImageH, 2, 77)
	prob, err := solver.Simulate(solver.SimulateConfig{
		Optics: physics.PaperOptics(), Pattern: pat, Object: truth,
		WindowN: 16, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Serialize and reload — the reconstruction must see identical data.
	var buf bytes.Buffer
	if err := dataio.Write(&buf, prob); err != nil {
		t.Fatal(err)
	}
	loaded, err := dataio.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	init := phantom.Vacuum(prob.ImageBounds(), prob.Slices)
	mesh, err := tiling.NewMesh(loaded.ImageBounds(), 2, 2, tiling.HaloForWindow(16))
	if err != nil {
		t.Fatal(err)
	}

	serial, err := solver.Reconstruct(loaded, init.Slices, solver.Options{
		StepSize: 0.02, Iterations: 6, Mode: solver.Batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	gd, err := gradsync.Reconstruct(loaded, init.Slices, gradsync.Options{
		Mesh: mesh, Mode: gradsync.ModeBatch, StepSize: 0.02, Iterations: 6,
		Timeout: itTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	hve, err := halo.Reconstruct(loaded, init.Slices, halo.Options{
		Mesh: mesh, HaloWidth: mesh.Halo, ExtraRows: 1,
		StepSize: 0.02, Iterations: 6, Timeout: itTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}

	// GD batch == serial exactly, even through serialization.
	for s := range serial.Slices {
		scale := serial.Slices[s].MaxAbs()
		if d := gd.Slices[s].MaxDiff(serial.Slices[s]); d > 1e-8*scale {
			t.Fatalf("slice %d: GD differs from serial by %g after round trip", s, d)
		}
	}
	// All three must actually reconstruct the object.
	for name, slices := range map[string][]*grid.Complex2D{
		"serial": serial.Slices, "gd": gd.Slices, "hve": hve.Slices,
	} {
		e := metrics.RelativeError(slices[0], truth.Slices[0])
		if e > 0.2 {
			t.Fatalf("%s failed to reconstruct: relative error %g", name, e)
		}
	}
}

// TestPublicAPIMatchesInternalSolver: the ptycho facade must produce
// exactly what the internal solver produces for the same configuration.
func TestPublicAPIMatchesInternalSolver(t *testing.T) {
	ds, err := ptycho.SimulateDataset(ptycho.SimulateOptions{
		ScanCols: 4, ScanRows: 4, OverlapRatio: 0.7,
		WindowN: 16, Slices: 1, Phantom: ptycho.PhantomRandom, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	apiRes, err := ds.Reconstruct(ptycho.ReconstructOptions{
		Algorithm: ptycho.Serial, StepSize: 0.02, Iterations: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The API's cost history must be reproducible and strictly positive.
	apiRes2, err := ds.Reconstruct(ptycho.ReconstructOptions{
		Algorithm: ptycho.Serial, StepSize: 0.02, Iterations: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range apiRes.CostHistory {
		if apiRes.CostHistory[i] != apiRes2.CostHistory[i] {
			t.Fatal("public API reconstruction not deterministic")
		}
	}
}

// TestProbeRefinementThroughPublicAPI exercises the aberrated-probe
// workflow end to end.
func TestProbeRefinementThroughPublicAPI(t *testing.T) {
	ds, err := ptycho.SimulateDataset(ptycho.SimulateOptions{
		ScanCols: 4, ScanRows: 4, Phantom: ptycho.PhantomRandom, Seed: 9,
		ProbeDefocusErrorPct: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := ds.Reconstruct(ptycho.ReconstructOptions{
		Algorithm: ptycho.Serial, StepSize: 0.02, Iterations: 45,
	})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := ds.Reconstruct(ptycho.ReconstructOptions{
		Algorithm: ptycho.Serial, StepSize: 0.02, Iterations: 45,
		ProbeRefineStep: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	last := len(fixed.CostHistory) - 1
	if math.IsNaN(refined.CostHistory[last]) {
		t.Fatal("refinement diverged")
	}
	if refined.CostHistory[last] >= fixed.CostHistory[last] {
		t.Fatalf("refinement did not improve fit: %g vs %g",
			refined.CostHistory[last], fixed.CostHistory[last])
	}
	if refined.RefinedProbe.W == 0 {
		t.Fatal("refined probe missing")
	}
	if fixed.RefinedProbe.W != 0 {
		t.Fatal("fixed run should not carry a refined probe")
	}
	// The refined probe differs from the (wrong) initial probe.
	initial := ds.Probe()
	var moved bool
	for i := range initial.Data {
		if cmplx.Abs(initial.Data[i]-refined.RefinedProbe.Data[i]) > 1e-9 {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("probe did not move")
	}
}

// TestAllAlgorithmsConvergeOnNoisyPbTiO3: the paper's workload with
// shot noise, every algorithm, one assertion each — a cheap smoke net
// over the whole stack.
func TestAllAlgorithmsConvergeOnNoisyPbTiO3(t *testing.T) {
	ds, err := ptycho.SimulateDataset(ptycho.SimulateOptions{
		ScanCols: 5, ScanRows: 5, Slices: 2,
		Phantom: ptycho.PhantomLeadTitanate, DoseElectrons: 1e6, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []ptycho.Algorithm{
		ptycho.Serial, ptycho.GradientDecomposition, ptycho.HaloVoxelExchange,
	} {
		res, err := ds.Reconstruct(ptycho.ReconstructOptions{
			Algorithm: alg, StepSize: 0.01, Iterations: 8,
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		first, last := res.CostHistory[0], res.CostHistory[len(res.CostHistory)-1]
		if last >= first {
			t.Fatalf("%v did not converge on noisy data: %g -> %g", alg, first, last)
		}
		for s := 0; s < ds.NumSlices(); s++ {
			if e := res.RelativeErrorTo(ds, s); e > 0.5 || math.IsNaN(e) {
				t.Fatalf("%v slice %d error %g", alg, s, e)
			}
		}
	}
}

// TestGradSyncRandomGeometryProperty fuzzes mesh shapes and overlap
// ratios, asserting the decomposition's core equality on each draw.
func TestGradSyncRandomGeometryProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzy geometry sweep")
	}
	cases := []struct {
		scanC, scanR int
		overlap      float64
		meshR, meshC int
		slices       int
	}{
		{4, 5, 0.55, 2, 1, 1},
		{5, 4, 0.65, 1, 3, 2},
		{6, 6, 0.78, 3, 2, 1},
		{5, 5, 0.82, 2, 2, 2},
	}
	for _, tc := range cases {
		radius := 8.0
		step := scan.StepForOverlap(radius, tc.overlap)
		pat, err := scan.Raster(scan.RasterConfig{
			Cols: tc.scanC, Rows: tc.scanR, StepPix: step, RadiusPix: radius,
			MarginPix: 10, Jitter: 0.8,
		})
		if err != nil {
			t.Fatal(err)
		}
		truth := phantom.RandomObject(pat.ImageW, pat.ImageH, tc.slices, 55)
		prob, err := solver.Simulate(solver.SimulateConfig{
			Optics: physics.PaperOptics(), Pattern: pat, Object: truth,
			WindowN: 16, Seed: 6,
		})
		if err != nil {
			t.Fatal(err)
		}
		mesh, err := tiling.NewMesh(prob.ImageBounds(), tc.meshR, tc.meshC,
			tiling.HaloForWindow(16))
		if err != nil {
			t.Fatal(err)
		}
		eval := phantom.Vacuum(prob.ImageBounds(), tc.slices)
		serialGrad, _ := solver.TotalGradient(prob, eval.Slices, prob.ImageBounds())
		stitched, _, err := gradsync.ParallelGradient(prob, eval.Slices, mesh, false, itTimeout)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		for s := range serialGrad {
			scale := serialGrad[s].MaxAbs()
			if d := stitched[s].MaxDiff(serialGrad[s]); d > 1e-9*scale {
				t.Fatalf("%+v slice %d: decomposed gradient off by %g", tc, s, d)
			}
		}
	}
}
