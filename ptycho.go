// Package ptycho is the public API of ptychopath-go, a from-scratch Go
// reproduction of "Image Gradient Decomposition for Parallel and
// Memory-Efficient Ptychographic Reconstruction" (SC22).
//
// The package covers the full workflow the paper describes:
//
//   - simulate an electron-ptychography acquisition over a synthetic
//     Lead Titanate (PbTiO3) sample — scan pattern, defocused probe,
//     multi-slice diffraction, optional shot noise (SimulateDataset);
//   - reconstruct the complex object with maximum-likelihood gradient
//     descent, either serially or in parallel with the paper's Gradient
//     Decomposition algorithm or the Halo Voxel Exchange baseline
//     (Dataset.Reconstruct);
//   - evaluate quality: cost traces, error versus ground truth, and the
//     seam-artifact score of Fig 8 (Result methods).
//
// The paper-scale performance experiments (Tables II/III, Fig 7) live in
// cmd/ptychobench and the bench suite; this package is the algorithmic
// core a downstream user embeds.
package ptycho

import (
	"fmt"

	"ptychopath/internal/grid"
	"ptychopath/internal/phantom"
	"ptychopath/internal/physics"
	"ptychopath/internal/scan"
	"ptychopath/internal/solver"
)

// Field is a dense row-major complex image of size W x H — the public
// value type for object slices, probes and gradients.
type Field struct {
	W, H int
	Data []complex128
}

// NewField allocates a zeroed field.
func NewField(w, h int) Field {
	return Field{W: w, H: h, Data: make([]complex128, w*h)}
}

// At returns the value at (x, y).
func (f Field) At(x, y int) complex128 { return f.Data[y*f.W+x] }

// Set stores v at (x, y).
func (f Field) Set(x, y int, v complex128) { f.Data[y*f.W+x] = v }

// Clone returns a deep copy.
func (f Field) Clone() Field {
	out := Field{W: f.W, H: f.H, Data: make([]complex128, len(f.Data))}
	copy(out.Data, f.Data)
	return out
}

// fieldFrom converts an internal array (any origin) to a public Field.
func fieldFrom(a *grid.Complex2D) Field {
	out := Field{W: a.W(), H: a.H(), Data: make([]complex128, len(a.Data))}
	copy(out.Data, a.Data)
	return out
}

// toGrid converts a Field to an origin-anchored internal array.
func (f Field) toGrid() *grid.Complex2D {
	a := grid.NewComplex2DSize(f.W, f.H)
	copy(a.Data, f.Data)
	return a
}

// PhantomKind selects the synthetic ground-truth object.
type PhantomKind int

const (
	// PhantomLeadTitanate builds the PbTiO3-like perovskite lattice the
	// paper images (Fig 6).
	PhantomLeadTitanate PhantomKind = iota
	// PhantomRandom builds a smooth random-texture object, useful for
	// stress tests free of crystal symmetry.
	PhantomRandom
)

// SimulateOptions configures a synthetic acquisition.
type SimulateOptions struct {
	// ScanCols and ScanRows give the raster scan grid (Fig 1(b)).
	ScanCols, ScanRows int
	// OverlapRatio is the linear probe-circle overlap (paper: > 0.7 for
	// artifact-free imaging). Default 0.75.
	OverlapRatio float64
	// ProbeRadiusPix is the probe circle radius in pixels. Default 8.
	ProbeRadiusPix float64
	// WindowN is the probe window / detector edge in pixels. Default 16.
	WindowN int
	// Slices is the number of object slices. Default 1.
	Slices int
	// Phantom selects the ground truth. Default PhantomLeadTitanate.
	Phantom PhantomKind
	// DoseElectrons, when positive, applies Poisson shot noise with the
	// given mean electrons per diffraction pattern.
	DoseElectrons float64
	// Seed drives phantom disorder and noise. Default 1.
	Seed int64
	// Optics overrides the microscope model; zero value selects the
	// paper's acquisition (200 keV, 25 nm defocus, 30 mrad).
	Optics physics.Optics
	// ProbeDefocusErrorPct, when non-zero, corrupts the probe HANDED TO
	// THE SOLVER by the given percentage of extra defocus while the
	// measurements stay simulated with the true probe — the aberrated-
	// microscope scenario that probe refinement (ReconstructOptions.
	// ProbeRefineStep) corrects.
	ProbeDefocusErrorPct float64
}

func (o *SimulateOptions) setDefaults() {
	if o.ScanCols == 0 {
		o.ScanCols = 6
	}
	if o.ScanRows == 0 {
		o.ScanRows = 6
	}
	if o.OverlapRatio == 0 {
		o.OverlapRatio = 0.75
	}
	if o.ProbeRadiusPix == 0 {
		o.ProbeRadiusPix = 8
	}
	if o.WindowN == 0 {
		o.WindowN = 16
	}
	if o.Slices == 0 {
		o.Slices = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Optics == (physics.Optics{}) {
		o.Optics = physics.PaperOptics()
	}
}

// Dataset is a simulated acquisition plus its ground truth.
type Dataset struct {
	prob  *solver.Problem
	truth *phantom.Object
}

// SimulateDataset generates a synthetic ptychography dataset: it builds
// the phantom, the raster scan, the probe, and pushes the object through
// the multi-slice forward model at every probe location.
func SimulateDataset(opt SimulateOptions) (*Dataset, error) {
	opt.setDefaults()
	if opt.OverlapRatio < 0 || opt.OverlapRatio >= 1 {
		return nil, fmt.Errorf("ptycho: overlap ratio %g outside [0, 1)", opt.OverlapRatio)
	}
	step := scan.StepForOverlap(opt.ProbeRadiusPix, opt.OverlapRatio)
	pat, err := scan.Raster(scan.RasterConfig{
		Cols:      opt.ScanCols,
		Rows:      opt.ScanRows,
		StepPix:   step,
		RadiusPix: opt.ProbeRadiusPix,
		MarginPix: float64(opt.WindowN)/2 + 2,
	})
	if err != nil {
		return nil, err
	}
	var truth *phantom.Object
	switch opt.Phantom {
	case PhantomLeadTitanate:
		cfg := phantom.DefaultLeadTitanate(pat.ImageW, pat.ImageH, opt.Slices)
		cfg.Seed = opt.Seed
		// Scale the unit cell down for small test images so several
		// cells fit.
		if pat.ImageW < 160 {
			cfg.UnitCellPix = float64(pat.ImageW) / 4
		}
		truth, err = phantom.LeadTitanate(cfg)
		if err != nil {
			return nil, err
		}
	case PhantomRandom:
		truth = phantom.RandomObject(pat.ImageW, pat.ImageH, opt.Slices, opt.Seed)
	default:
		return nil, fmt.Errorf("ptycho: unknown phantom kind %d", opt.Phantom)
	}
	prob, err := solver.Simulate(solver.SimulateConfig{
		Optics:        opt.Optics,
		Pattern:       pat,
		Object:        truth,
		WindowN:       opt.WindowN,
		DoseElectrons: opt.DoseElectrons,
		Seed:          opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	if opt.ProbeDefocusErrorPct != 0 {
		wrong := opt.Optics
		wrong.DefocusPM *= 1 + opt.ProbeDefocusErrorPct/100
		prob.Probe = wrong.Probe(opt.WindowN)
	}
	return &Dataset{prob: prob, truth: truth}, nil
}

// NumLocations returns the number of probe locations.
func (d *Dataset) NumLocations() int { return d.prob.Pattern.N() }

// ImageSize returns the reconstruction extent in pixels.
func (d *Dataset) ImageSize() (w, h int) { return d.prob.Pattern.ImageW, d.prob.Pattern.ImageH }

// NumSlices returns the object slice count.
func (d *Dataset) NumSlices() int { return d.prob.Slices }

// WindowN returns the probe window edge in pixels.
func (d *Dataset) WindowN() int { return d.prob.WindowN }

// GroundTruthSlice returns slice s of the phantom used to simulate the
// data.
func (d *Dataset) GroundTruthSlice(s int) Field { return fieldFrom(d.truth.Slices[s]) }

// Probe returns the simulated probe wavefunction.
func (d *Dataset) Probe() Field { return fieldFrom(d.prob.Probe) }

// Measurement returns the recorded far-field amplitude at location i as
// a flat row-major W x H slice (WindowN square).
func (d *Dataset) Measurement(i int) []float64 {
	out := make([]float64, len(d.prob.Meas[i].Data))
	copy(out, d.prob.Meas[i].Data)
	return out
}

// Cost evaluates the maximum-likelihood cost F(V) of Eqn. (1) for the
// given object slices.
func (d *Dataset) Cost(slices []Field) float64 {
	internal := make([]*grid.Complex2D, len(slices))
	for i, f := range slices {
		internal[i] = f.toGrid()
	}
	return solver.Cost(d.prob, internal)
}
