#!/usr/bin/env bash
# benchguard.sh — benchmark regression gate against a checked-in baseline.
#
# Reruns a benchmark suite and compares every result against the named
# BENCH_*.json baseline (the wire-codec baseline by default):
#
#   - throughput: fails if MB/s drops more than BENCHGUARD_TOLERANCE
#     percent (default 20) below the baseline; skipped for baselines
#     that record mb_per_s 0 (latency benchmarks have no MB/s);
#   - allocations: fails if allocs/op exceeds the baseline budget at
#     all — alloc counts are deterministic, so any rise is a real
#     regression on the zero-alloc fast path.
#
# Usage: scripts/benchguard.sh [baseline.json [packages [bench-regex]]]
#
#   scripts/benchguard.sh                 # wire-codec gate (default)
#   scripts/benchguard.sh BENCH_2026-08-08_sched_overhead.json \
#     ./internal/jobs/sched/ SchedDecision
set -euo pipefail
cd "$(dirname "$0")/.."

BASE="${1:-BENCH_2026-08-08_wirecodec.json}"
PKGS="${2:-./internal/stream/ ./internal/transport/ ./internal/jobs/store/}"
PATTERN="${3:-Chunk|Frame(En|De)code|RecordAppend}"
TOLERANCE="${BENCHGUARD_TOLERANCE:-20}"
[ -r "$BASE" ] || { echo "benchguard: baseline $BASE not found" >&2; exit 2; }

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT
# shellcheck disable=SC2086 # PKGS is a deliberate word-split package list
go test $PKGS \
  -run xxx -bench "$PATTERN" \
  -benchtime 2s -benchmem | tee "$OUT"

awk -v base="$BASE" -v tol="$TOLERANCE" '
BEGIN {
    name = ""
    while ((getline line < base) > 0) {
        if (match(line, /"Benchmark[A-Za-z0-9]+"/)) {
            name = substr(line, RSTART + 1, RLENGTH - 2)
            known[name] = 1
        } else if (name != "" && match(line, /"mb_per_s": *[0-9.]+/)) {
            split(substr(line, RSTART, RLENGTH), kv, ":")
            basembs[name] = kv[2] + 0
        } else if (name != "" && match(line, /"allocs_per_op": *[0-9]+/)) {
            split(substr(line, RSTART, RLENGTH), kv, ":")
            basealloc[name] = kv[2] + 0
        }
    }
    close(base)
    fail = 0
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in known)) next
    seen[name] = 1
    mbs = -1; alloc = -1
    for (i = 2; i <= NF; i++) {
        if ($i == "MB/s") mbs = $(i - 1) + 0
        if ($i == "allocs/op") alloc = $(i - 1) + 0
    }
    floor = basembs[name] * (100 - tol) / 100
    if (mbs >= 0 && basembs[name] > 0 && mbs < floor) {
        printf "benchguard: FAIL %s: %.1f MB/s is >%s%% below baseline %.1f\n", name, mbs, tol, basembs[name]
        fail = 1
    } else if (alloc >= 0 && (name in basealloc) && alloc > basealloc[name]) {
        printf "benchguard: FAIL %s: %d allocs/op exceeds budget %d\n", name, alloc, basealloc[name]
        fail = 1
    } else if (basembs[name] > 0) {
        printf "benchguard: ok   %s: %.1f MB/s (floor %.1f), %d allocs/op (budget %d)\n", name, mbs, floor, alloc, basealloc[name]
    } else {
        printf "benchguard: ok   %s: %d allocs/op (budget %d), no MB/s floor\n", name, alloc, basealloc[name]
    }
}
END {
    for (n in known) {
        if (!(n in seen)) {
            printf "benchguard: FAIL %s: present in baseline but missing from bench output\n", n
            fail = 1
        }
    }
    exit fail
}' "$OUT"
