// Command restartprobe is the client half of the CI restart smoke
// (scripts/docs_smoke.sh): it proves over the wire, with the typed
// SDK, that a job submitted to a `ptychoserve -state-dir` server
// survives a SIGKILL of that server.
//
// Two phases, because the shell between them owns the server process:
//
//	restartprobe -server URL -submit -iters N
//	    synthesizes a dataset in memory, submits an N-iteration job,
//	    and prints the job ID — the shell then kill -9's the server.
//	restartprobe -server URL -wait JOB
//	    against the RESTARTED server: the same job ID must still
//	    exist, carry a recovered_from marker, finish successfully
//	    (client.Wait), and serve its final OBJCKv1 object.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"ptychopath/client"
	"ptychopath/internal/dataio"
	"ptychopath/internal/phantom"
	"ptychopath/internal/physics"
	"ptychopath/internal/scan"
	"ptychopath/internal/solver"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:8627", "ptychoserve base URL")
	submit := flag.Bool("submit", false, "submit phase: enqueue a job and print its ID")
	wait := flag.String("wait", "", "wait phase: job ID that must survive the restart")
	iters := flag.Int("iters", 2000, "iteration count of the submitted job (long enough to be mid-run when the server dies)")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	c, err := client.New(*server)
	if err == nil {
		switch {
		case *submit:
			err = runSubmit(ctx, c, *iters)
		case *wait != "":
			err = runWait(ctx, c, *wait, *iters)
		default:
			err = fmt.Errorf("need -submit or -wait JOB")
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "restartprobe: FAIL:", err)
		os.Exit(1)
	}
}

func runSubmit(ctx context.Context, c *client.Client, iters int) error {
	pat, err := scan.Raster(scan.RasterConfig{Cols: 4, Rows: 4, StepPix: 5, RadiusPix: 6, MarginPix: 8})
	if err != nil {
		return err
	}
	obj := phantom.RandomObject(pat.ImageW, pat.ImageH, 1, 1)
	prob, err := solver.Simulate(solver.SimulateConfig{
		Optics: physics.PaperOptics(), Pattern: pat, Object: obj, WindowN: 16, Seed: 7,
	})
	if err != nil {
		return err
	}
	var ds bytes.Buffer
	if err := dataio.Write(&ds, prob); err != nil {
		return err
	}
	job, err := c.Submit(ctx, client.SubmitRequest{
		Algorithm: "serial", Iterations: iters, CheckpointEvery: 50,
	}, &ds)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	// The ID is the phase's output: the shell passes it to -wait after
	// killing and restarting the server.
	fmt.Println(job.ID)
	return nil
}

func runWait(ctx context.Context, c *client.Client, id string, iters int) error {
	job, err := c.Get(ctx, id)
	if err != nil {
		return fmt.Errorf("job %s did not survive the restart: %w", id, err)
	}
	if job.RecoveredFrom == "" {
		return fmt.Errorf("job %s carries no recovered_from marker (state %s) — was the server actually killed mid-run?", id, job.State)
	}
	fmt.Printf("restartprobe: %s recovered_from=%s, waiting for completion\n", id, job.RecoveredFrom)
	job, err = c.Wait(ctx, id)
	if err != nil {
		return fmt.Errorf("waiting for recovered job: %w", err)
	}
	if job.State != client.StateDone || job.Iter != iters {
		return fmt.Errorf("recovered job ended %s at iter %d/%d: %s", job.State, job.Iter, iters, job.Error)
	}
	rc, _, err := c.Object(ctx, id)
	if err != nil {
		return fmt.Errorf("final object after recovery: %w", err)
	}
	defer rc.Close()
	if _, err := dataio.ReadObject(rc); err != nil {
		return fmt.Errorf("decoding recovered object: %w", err)
	}
	fmt.Printf("restartprobe: OK — %s finished %d iterations across a SIGKILL (recovered_from=%s)\n",
		id, job.Iter, job.RecoveredFrom)
	return nil
}
