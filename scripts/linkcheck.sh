#!/usr/bin/env bash
# linkcheck.sh — verify that every relative markdown link in the given
# files points at something that exists in the repository. External
# (http/https/mailto) links and pure #anchors are skipped; everything
# else must resolve relative to the file that contains it.
#
# Usage: scripts/linkcheck.sh FILE.md [FILE.md ...]
set -euo pipefail

fail=0
for f in "$@"; do
    if [ ! -f "$f" ]; then
        echo "linkcheck: no such file: $f" >&2
        fail=1
        continue
    fi
    dir=$(dirname "$f")
    checked=0
    while IFS= read -r link; do
        target=${link%%#*}
        [ -z "$target" ] && continue # pure anchor
        case "$target" in
        http://* | https://* | mailto:*) continue ;;
        esac
        checked=$((checked + 1))
        if [ ! -e "$dir/$target" ]; then
            echo "$f: broken link -> ($link)"
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//' || true)
    echo "linkcheck: $f — $checked relative links checked"
done
exit $fail
