// Command clientprobe drives a LIVE ptychoserve through the typed Go
// SDK (the top-level client package) — the non-curl half of the docs
// smoke: scripts/docs_smoke.sh runs it after the HTTP_API.md examples,
// so CI proves the SDK against the same server the documentation was
// just executed against.
//
// It synthesizes a tiny dataset in memory, then exercises: health
// check, idempotent submit (same key twice → same job), Wait, the span
// timeline (request-ID propagation, per-rank compute spans, Chrome
// export), the /metrics exposition (strict lint + histogram movement),
// the fleet-status rollup (predicted-vs-actual scoring, job census),
// the per-job debug bundle (params, spans, flight-recorder events),
// cost history, PNG preview, OBJCKv1 object download, cursor
// pagination via the auto-paginating iterator, and a full streaming
// round trip (open → SSE events → frame chunks → EOF → done).
//
// Against a wfq server with the CI tenant table (-sched wfq -tenant
// alpha:3:1 -tenant beta:1) it additionally probes the fairness
// surface through two API keys: the tenant concurrency quota (429
// quota_exceeded with a live Retry-After) and interactive preemption
// (preempted_count on the victim, "preempted" span on its trace, the
// /v1/status tenant rollup). On a FIFO server those probes are
// skipped.
//
// Usage: go run ./scripts/clientprobe [-server http://127.0.0.1:8617]
package main

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"image/png"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"ptychopath/client"
	"ptychopath/internal/dataio"
	"ptychopath/internal/obs"
	"ptychopath/internal/phantom"
	"ptychopath/internal/physics"
	"ptychopath/internal/scan"
	"ptychopath/internal/solver"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:8617", "ptychoserve base URL")
	flag.Parse()
	if err := run(*server); err != nil {
		fmt.Fprintln(os.Stderr, "clientprobe: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("clientprobe: OK — SDK drove submit/idempotency/wait/trace/metrics/status/debug/history/preview/object/pagination/streaming against", *server)
}

func run(server string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	c, err := client.New(server)
	if err != nil {
		return err
	}
	if err := c.Healthz(ctx); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	// A tiny in-memory dataset: no files, no datagen dependency.
	pat, err := scan.Raster(scan.RasterConfig{Cols: 4, Rows: 4, StepPix: 5, RadiusPix: 6, MarginPix: 8})
	if err != nil {
		return err
	}
	prob, err := solver.Simulate(solver.SimulateConfig{
		Optics:  physics.PaperOptics(),
		Pattern: pat,
		Object:  phantom.RandomObject(pat.ImageW, pat.ImageH, 1, 1),
		WindowN: 16,
		Seed:    1,
	})
	if err != nil {
		return err
	}
	var dataset bytes.Buffer
	if err := dataio.Write(&dataset, prob); err != nil {
		return err
	}

	// Idempotent submit: the same key twice must yield the same job.
	// A gd job so the span timeline carries per-rank compute/comm
	// phases, and an explicit request ID so trace-context propagation
	// is probed end to end.
	var kb [8]byte
	rand.Read(kb[:])
	req := client.SubmitRequest{
		Algorithm: "gd", Iterations: 5, CheckpointEvery: 2,
		MeshRows: 1, MeshCols: 2,
		IdempotencyKey: "clientprobe-" + hex.EncodeToString(kb[:]),
		RequestID:      "clientprobe-trace-" + hex.EncodeToString(kb[:4]),
	}
	job, err := c.Submit(ctx, req, bytes.NewReader(dataset.Bytes()))
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	replay, err := c.Submit(ctx, req, bytes.NewReader(dataset.Bytes()))
	if err != nil {
		return fmt.Errorf("idempotent resubmit: %w", err)
	}
	if replay.ID != job.ID {
		return fmt.Errorf("idempotency broken: %s then %s for one key", job.ID, replay.ID)
	}

	final, err := c.Wait(ctx, job.ID)
	if err != nil {
		return fmt.Errorf("wait: %w", err)
	}
	if final.State != client.StateDone {
		return fmt.Errorf("job %s ended %s: %s", final.ID, final.State, final.Error)
	}
	// The span timeline: the submitted request ID is the trace context,
	// the gd run contributes per-rank compute spans with real durations.
	tr, err := c.Trace(ctx, job.ID)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if tr.Job.RequestID != req.RequestID {
		return fmt.Errorf("trace request_id %q, want %q", tr.Job.RequestID, req.RequestID)
	}
	iterSpans, computeSpans := 0, 0
	for _, sp := range tr.Spans {
		switch sp.Name {
		case "iteration":
			iterSpans++
		case "compute":
			if sp.MS > 0 {
				computeSpans++
			}
		}
	}
	if iterSpans != 5 {
		return fmt.Errorf("trace has %d iteration spans, want 5", iterSpans)
	}
	if computeSpans == 0 {
		return fmt.Errorf("trace has no compute span with a positive duration")
	}

	// The /metrics scrape: strictly lintable, and the job above must
	// have moved the latency histograms.
	resp, err := http.Get(server + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	scrape, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if err := obs.LintExposition(scrape); err != nil {
		return fmt.Errorf("metrics exposition lint: %w", err)
	}
	for _, family := range []string{
		"ptychoserve_iteration_duration_seconds_count",
		"ptychoserve_job_queue_wait_seconds_count",
		"ptychoserve_http_request_duration_seconds_bucket",
	} {
		if !strings.Contains(string(scrape), family) {
			return fmt.Errorf("metrics scrape missing %s", family)
		}
	}

	// The fleet-status rollup: the finished job must have been scored
	// against its prediction, and the grid the CI docs job attaches must
	// show live workers.
	st, err := c.Status(ctx)
	if err != nil {
		return fmt.Errorf("status: %w", err)
	}
	if st.Prediction.Jobs == 0 || st.Prediction.LastErrorRatio <= 0 {
		return fmt.Errorf("status: no prediction scored after a finished job: %+v", st.Prediction)
	}
	if st.Jobs["done"] == 0 {
		return fmt.Errorf("status: job census has no done jobs: %v", st.Jobs)
	}
	if st.Grid != nil {
		for _, wk := range st.Grid.Workers {
			if wk.LastSeen.IsZero() {
				return fmt.Errorf("status: grid worker %d (%s) has no last_seen", wk.ID, wk.Name)
			}
		}
	}

	// The debug bundle: one fetch carries the summary with full history,
	// the submitted params, the span timeline and the flight recorder.
	db, err := c.Debug(ctx, job.ID)
	if err != nil {
		return fmt.Errorf("debug: %w", err)
	}
	if db.Params.Algorithm != "gd" || db.Params.Iterations != 5 {
		return fmt.Errorf("debug params %+v do not match the submission", db.Params)
	}
	if len(db.Spans) == 0 || len(db.Events) == 0 {
		return fmt.Errorf("debug bundle empty: %d spans, %d events", len(db.Spans), len(db.Events))
	}
	if db.Job.Prediction == nil || db.Job.ActualSeconds <= 0 {
		return fmt.Errorf("debug job missing predicted-vs-actual: %+v", db.Job)
	}

	hist, err := c.History(ctx, job.ID, -1)
	if err != nil {
		return fmt.Errorf("history: %w", err)
	}
	if len(hist) != 5 {
		return fmt.Errorf("history has %d entries, want 5", len(hist))
	}
	raw, err := c.PreviewPNG(ctx, job.ID, client.PreviewOptions{Kind: "phase"})
	if err != nil {
		return fmt.Errorf("preview: %w", err)
	}
	if _, err := png.Decode(bytes.NewReader(raw)); err != nil {
		return fmt.Errorf("preview is not a PNG: %w", err)
	}
	body, iters, err := c.Object(ctx, job.ID)
	if err != nil {
		return fmt.Errorf("object: %w", err)
	}
	obj, err := dataio.ReadObject(body)
	body.Close()
	if err != nil {
		return fmt.Errorf("object decode: %w", err)
	}
	if iters != 5 || len(obj) != prob.Slices {
		return fmt.Errorf("object: %d iterations, %d slices", iters, len(obj))
	}

	// Pagination: the iterator must walk every page and find our job.
	found := false
	count := 0
	for j, err := range c.Jobs(ctx, client.ListOptions{Limit: 2}) {
		if err != nil {
			return fmt.Errorf("pagination: %w", err)
		}
		count++
		if j.ID == job.ID {
			found = true
		}
		if count > 10000 {
			return fmt.Errorf("pagination does not terminate")
		}
	}
	if !found {
		return fmt.Errorf("paginated listing (%d jobs) never yielded %s", count, job.ID)
	}

	// Streaming round trip, with the SSE feed decoded concurrently.
	var opening bytes.Buffer
	if err := dataio.WriteStreamHeader(&opening, dataio.HeaderFromProblem(prob)); err != nil {
		return err
	}
	sjob, err := c.SubmitStreaming(ctx, client.SubmitRequest{
		Algorithm: "serial", Iterations: 3, CheckpointEvery: 1,
	}, &opening)
	if err != nil {
		return fmt.Errorf("submit streaming: %w", err)
	}
	es, err := c.Events(ctx, sjob.ID)
	if err != nil {
		return fmt.Errorf("events: %w", err)
	}
	defer es.Close()
	evErr := make(chan error, 1)
	go func() {
		states := 0
		for {
			e, err := es.Next()
			if err == io.EOF {
				if states == 0 {
					evErr <- fmt.Errorf("feed closed without a state event")
				} else {
					evErr <- nil
				}
				return
			}
			if err != nil {
				evErr <- err
				return
			}
			if e.Type == "state" {
				states++
			}
		}
	}()
	frames := dataio.FramesFromProblem(prob)
	half := len(frames) / 2
	for _, span := range [][2]int{{0, half}, {half, len(frames)}} {
		var chunk bytes.Buffer
		if err := dataio.WriteFrameChunk(&chunk, prob.WindowN, frames[span[0]:span[1]]); err != nil {
			return err
		}
		if _, err := c.AppendFrames(ctx, sjob.ID, chunk.Bytes()); err != nil {
			return fmt.Errorf("frames [%d,%d): %w", span[0], span[1], err)
		}
	}
	if _, err := c.CloseStream(ctx, sjob.ID); err != nil {
		return fmt.Errorf("eof: %w", err)
	}
	sfinal, err := c.Wait(ctx, sjob.ID)
	if err != nil {
		return fmt.Errorf("wait streaming: %w", err)
	}
	if sfinal.State != client.StateDone || sfinal.Frames != len(frames) {
		return fmt.Errorf("streaming job: %+v", sfinal)
	}
	if err := <-evErr; err != nil {
		return fmt.Errorf("event feed: %w", err)
	}

	// The multi-tenant probes need a wfq server with the CI tenant
	// table (-sched wfq -tenant alpha:3:1 -tenant beta:1); on a plain
	// FIFO server they are skipped, not failed.
	if st.SchedPolicy == "wfq" {
		if err := probeFairness(ctx, server, dataset.Bytes()); err != nil {
			return fmt.Errorf("fairness: %w", err)
		}
		fmt.Println("clientprobe: wfq fairness probed — tenant quota 429 with live Retry-After, interactive preemption on trace")
	} else {
		fmt.Printf("clientprobe: sched policy %q — skipping the wfq fairness probes\n", st.SchedPolicy)
	}
	return nil
}

// probeFairness drives the admission-control and preemption surface
// through two API keys against a wfq server where tenant alpha has
// max-active 1: (1) alpha's second in-flight submission must 429 with
// quota_exceeded and a live Retry-After; (2) an interactive alpha job
// submitted while bulk beta work holds every worker must displace a
// victim, visible as preempted_count and a "preempted" span on the
// victim's trace.
func probeFairness(ctx context.Context, server string, dataset []byte) error {
	// Retries off: the probe asserts the 429 itself, not riding it out.
	alpha, err := client.New(server, client.WithAPIKey("alpha"), client.WithRetry(0, 0))
	if err != nil {
		return err
	}
	beta, err := client.New(server, client.WithAPIKey("beta"), client.WithRetry(0, 0))
	if err != nil {
		return err
	}
	st, err := alpha.Status(ctx)
	if err != nil {
		return err
	}

	// Tenant quota: alpha is capped at one in-flight job.
	blocker, err := alpha.Submit(ctx, client.SubmitRequest{Algorithm: "serial", Iterations: 50_000_000},
		bytes.NewReader(dataset))
	if err != nil {
		return fmt.Errorf("alpha blocker submit: %w", err)
	}
	if blocker.Tenant != "alpha" {
		return fmt.Errorf("submitted job tenant %q, want alpha (X-API-Key lost)", blocker.Tenant)
	}
	_, err = alpha.Submit(ctx, client.SubmitRequest{Algorithm: "serial", Iterations: 5},
		bytes.NewReader(dataset))
	var apiErr *client.Error
	if !errors.As(err, &apiErr) || apiErr.Code != client.CodeQuotaExceeded {
		return fmt.Errorf("alpha over-cap submit: got %v, want 429 quota_exceeded", err)
	}
	if apiErr.Status != 429 || apiErr.RetryAfter <= 0 {
		return fmt.Errorf("quota 429 lacks a live Retry-After: status=%d retry_after=%v",
			apiErr.Status, apiErr.RetryAfter)
	}
	if _, err := alpha.Cancel(ctx, blocker.ID); err != nil {
		return fmt.Errorf("cancel alpha blocker: %w", err)
	}

	// Preemption: saturate every worker with bulk beta jobs, then land
	// an interactive alpha job. It must run ahead of the backlog by
	// displacing one victim at an iteration boundary.
	var victims []string
	for i := 0; i < st.Workers; i++ {
		vj, err := beta.Submit(ctx, client.SubmitRequest{Algorithm: "serial", Iterations: 50_000_000},
			bytes.NewReader(dataset))
		if err != nil {
			return fmt.Errorf("beta saturation submit %d: %w", i, err)
		}
		victims = append(victims, vj.ID)
	}
	defer func() {
		for _, id := range victims {
			beta.Cancel(ctx, id)
		}
	}()
	for _, id := range victims {
		for {
			vj, err := beta.Get(ctx, id)
			if err != nil {
				return err
			}
			if vj.State == client.StateRunning {
				break
			}
			if vj.Terminal() {
				return fmt.Errorf("saturation job %s ended %s before the probe", id, vj.State)
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(10 * time.Millisecond):
			}
		}
	}
	ij, err := alpha.Submit(ctx, client.SubmitRequest{
		Algorithm: "serial", Iterations: 3, Priority: "interactive",
	}, bytes.NewReader(dataset))
	if err != nil {
		return fmt.Errorf("interactive submit: %w", err)
	}
	if ij.Priority != "interactive" {
		return fmt.Errorf("interactive class lost on the wire: %q", ij.Priority)
	}
	ifinal, err := alpha.Wait(ctx, ij.ID)
	if err != nil {
		return fmt.Errorf("wait interactive: %w", err)
	}
	if ifinal.State != client.StateDone {
		return fmt.Errorf("interactive job ended %s: %s", ifinal.State, ifinal.Error)
	}
	var victim *client.Job
	for _, id := range victims {
		vj, err := beta.Get(ctx, id)
		if err != nil {
			return err
		}
		if vj.PreemptedCount >= 1 {
			victim = vj
			break
		}
	}
	if victim == nil {
		return fmt.Errorf("no saturation job shows preempted_count after the interactive run")
	}
	tr, err := beta.Trace(ctx, victim.ID)
	if err != nil {
		return fmt.Errorf("victim trace: %w", err)
	}
	preemptSpans := 0
	for _, sp := range tr.Spans {
		if sp.Name == "preempted" {
			preemptSpans++
		}
	}
	if preemptSpans == 0 {
		return fmt.Errorf("victim %s trace has no preempted span", victim.ID)
	}

	// The fairness rollup reflects what just happened.
	st, err = alpha.Status(ctx)
	if err != nil {
		return err
	}
	var sawBeta bool
	for _, ten := range st.Tenants {
		if ten.Name == "beta" {
			sawBeta = true
			if ten.Preempted < 1 {
				return fmt.Errorf("beta rollup shows no preemption: %+v", ten)
			}
		}
		if ten.Name == "alpha" && ten.QuotaRejections < 1 {
			return fmt.Errorf("alpha rollup shows no quota rejection: %+v", ten)
		}
	}
	if !sawBeta {
		return fmt.Errorf("status tenants lack beta: %+v", st.Tenants)
	}
	return nil
}
