#!/usr/bin/env bash
# docs_smoke.sh — execute every ```bash block of docs/HTTP_API.md, in
# order, against a live ptychoserve, then drive the same server through
# the typed Go SDK (scripts/clientprobe). This is the CI guarantee that
# both halves of the public contract actually work: if an endpoint, a
# parameter or an SDK method changes without the doc/client, this
# script fails.
#
# It finishes with the restart smoke: a second, private ptychoserve is
# started with -state-dir, SIGKILLed mid-job, restarted on the same
# directory, and the SDK (scripts/restartprobe) verifies the job came
# back under its original ID and ran to completion.
#
# Prerequisites (the CI docs job sets them up): a running ptychoserve
# on 127.0.0.1:8617 with -grid 127.0.0.1:8619, a ptychoworker with 4
# ranks attached, datagen/ptychofeed/ptychoserve on PATH alongside jq
# and curl, and a Go toolchain for the SDK probes.
#
# Usage: scripts/docs_smoke.sh [doc.md]
set -euo pipefail

repo=$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)
doc=${1:-docs/HTTP_API.md}
doc=$(realpath "$doc")
work=$(mktemp -d)
restart_pid=""
cleanup() {
    [ -n "$restart_pid" ] && kill "$restart_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

awk '/^```bash$/{code=1; next} /^```/{code=0} code' "$doc" > "$work/examples.sh"
lines=$(grep -c . "$work/examples.sh" || true)
if [ "$lines" -lt 10 ]; then
    echo "docs_smoke: only $lines example lines extracted from $doc — extraction broken?" >&2
    exit 1
fi
echo "docs_smoke: running $lines example lines from $doc"
(cd "$work" && bash -euo pipefail examples.sh)
echo "docs_smoke: all examples executed successfully"

echo "docs_smoke: driving the live server through the client SDK"
(cd "$repo" && go run ./scripts/clientprobe -server http://127.0.0.1:8617)
echo "docs_smoke: SDK probe passed"

# Dashboard smoke: one ptychotop snapshot against the live server must
# render the fleet (pool, job census, grid table) and exit 0.
echo "docs_smoke: ptychotop -once snapshot"
top_out=$(cd "$repo" && go run ./cmd/ptychotop -once -server http://127.0.0.1:8617)
echo "$top_out"
echo "$top_out" | grep -q "pool" || { echo "docs_smoke: ptychotop snapshot missing pool line" >&2; exit 1; }
echo "$top_out" | grep -q "grid" || { echo "docs_smoke: ptychotop snapshot missing grid table" >&2; exit 1; }
echo "docs_smoke: ptychotop snapshot passed"

# pprof smoke: when the server was started with -debug-addr (the CI
# docs job uses 127.0.0.1:8620), a 1-second CPU profile must come back
# non-empty. Skipped when no debug server is listening, so the script
# still works against a plain server.
if curl -fs --max-time 2 "http://127.0.0.1:8620/debug/pprof/" >/dev/null 2>&1; then
    echo "docs_smoke: pprof smoke — pulling a 1s CPU profile"
    curl -fs --max-time 30 -o "$work/cpu.pprof" \
        "http://127.0.0.1:8620/debug/pprof/profile?seconds=1"
    [ -s "$work/cpu.pprof" ] || { echo "docs_smoke: empty CPU profile" >&2; exit 1; }
    echo "docs_smoke: pprof smoke passed ($(wc -c < "$work/cpu.pprof") bytes)"
else
    echo "docs_smoke: no debug server on :8620, skipping pprof smoke"
fi

# Restart smoke: durable job state survives a SIGKILL. This server is
# private to the smoke (own port, own -state-dir), so killing it
# cannot disturb the docs server above.
echo "docs_smoke: restart smoke — submit, SIGKILL, restart, recover"
RESTART_URL=http://127.0.0.1:8627
start_restart_server() {
    ptychoserve -addr 127.0.0.1:8627 -workers 1 -state-dir "$work/state" \
        >> "$work/restart-serve.log" 2>&1 &
    restart_pid=$!
    for i in $(seq 50); do
        curl -fs "$RESTART_URL/healthz" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    echo "docs_smoke: restart server never came up" >&2
    cat "$work/restart-serve.log" >&2
    return 1
}
start_restart_server
JOB=$(cd "$repo" && go run ./scripts/restartprobe -server "$RESTART_URL" -submit -iters 2000)
echo "docs_smoke: submitted $JOB, killing the server mid-run"
kill -9 "$restart_pid"
wait "$restart_pid" 2>/dev/null || true
start_restart_server
(cd "$repo" && go run ./scripts/restartprobe -server "$RESTART_URL" -wait "$JOB" -iters 2000)
kill -TERM "$restart_pid" 2>/dev/null || true
wait "$restart_pid" 2>/dev/null || true
restart_pid=""
echo "docs_smoke: restart smoke passed — $JOB survived the kill"
