#!/usr/bin/env bash
# docs_smoke.sh — execute every ```bash block of docs/HTTP_API.md, in
# order, against a live ptychoserve, then drive the same server through
# the typed Go SDK (scripts/clientprobe). This is the CI guarantee that
# both halves of the public contract actually work: if an endpoint, a
# parameter or an SDK method changes without the doc/client, this
# script fails.
#
# Prerequisites (the CI docs job sets them up): a running ptychoserve
# on 127.0.0.1:8617 with -grid 127.0.0.1:8619, a ptychoworker with 4
# ranks attached, datagen/ptychofeed on PATH alongside jq and curl, and
# a Go toolchain for the SDK probe.
#
# Usage: scripts/docs_smoke.sh [doc.md]
set -euo pipefail

repo=$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)
doc=${1:-docs/HTTP_API.md}
doc=$(realpath "$doc")
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

awk '/^```bash$/{code=1; next} /^```/{code=0} code' "$doc" > "$work/examples.sh"
lines=$(grep -c . "$work/examples.sh" || true)
if [ "$lines" -lt 10 ]; then
    echo "docs_smoke: only $lines example lines extracted from $doc — extraction broken?" >&2
    exit 1
fi
echo "docs_smoke: running $lines example lines from $doc"
(cd "$work" && bash -euo pipefail examples.sh)
echo "docs_smoke: all examples executed successfully"

echo "docs_smoke: driving the live server through the client SDK"
(cd "$repo" && go run ./scripts/clientprobe -server http://127.0.0.1:8617)
echo "docs_smoke: SDK probe passed"
