// Command ptychoworker is a grid worker process: it dials a ptychoserve
// coordinator's grid address, registers its rank endpoints, and serves
// distributed reconstruction sessions — each session runs one rank of
// the unmodified gradsync or halo engine over the CRC-framed TCP
// transport (internal/transport), so a 4x4-tile job can span four
// machines running four ranks each.
//
// Usage:
//
//	ptychoworker -connect HOST:PORT [-ranks 1] [-name NAME]
//	             [-timeout 30s] [-retry]
//	             [-log-format text|json] [-log-level info]
//
// Logs are structured (log/slog) on stderr, same flags and formats as
// ptychoserve. Session lines include the trace context the coordinator
// sends in the PTGW SETUP frame, so a job's request ID can be grepped
// across both processes.
//
// A worker stays connected between jobs; Ctrl-C closes its connections
// immediately (a mid-session stop fails the job over to its last
// checkpoint — resume it once the worker pool is healthy again). See
// README.md for the coordinator + two workers quickstart and
// docs/FORMATS.md for the wire protocol.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ptychopath/internal/gridworker"
	"ptychopath/internal/obs"
)

func main() {
	connect := flag.String("connect", "127.0.0.1:8619", "coordinator grid address (ptychoserve -grid)")
	ranks := flag.Int("ranks", 1, "rank endpoints this process contributes")
	name := flag.String("name", "", "worker name in the coordinator registry (default: hostname-pid)")
	timeout := flag.Duration("timeout", 30*time.Second, "idle transport timeout (sessions use the coordinator's)")
	retry := flag.Bool("retry", false, "keep reconnecting when the coordinator is unreachable or restarts")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	flag.Parse()

	log, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptychoworker:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = gridworker.Run(ctx, *connect, gridworker.Options{
		Name: *name, Ranks: *ranks, Timeout: *timeout, Reconnect: *retry,
		// gridworker's logging seam is printf-shaped; render through the
		// structured logger so both daemons share format and level flags.
		Logf: func(format string, args ...any) {
			log.Info(fmt.Sprintf(format, args...))
		},
	})
	if err != nil {
		log.Error("exiting", "err", err)
		os.Exit(1)
	}
}
