// Command ptychobench regenerates every table and figure of the paper's
// evaluation section (SC22, "Image Gradient Decomposition for Parallel
// and Memory-Efficient Ptychographic Reconstruction").
//
// Usage:
//
//	ptychobench -exp table1|table2|table3|fig7a|fig7b|fig8|fig9|all
//	           [-out DIR]   write CSVs and PNGs next to the console output
//	           [-quick]     shrink the functional experiments (CI mode)
//
// Paper-scale results (tables II/III, fig 7) come from the calibrated
// discrete-event model of a Summit-like machine; functional results
// (fig 8, fig 9) run the real algorithms on goroutine workers at laptop
// scale. See DESIGN.md and EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ptychopath"
	"ptychopath/internal/cluster"
	"ptychopath/internal/perfmodel"
	"ptychopath/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: table1, table2, table3, fig7a, fig7b, fig8, fig9, all")
	out := flag.String("out", "", "optional output directory for CSV/PNG artifacts")
	quick := flag.Bool("quick", false, "shrink functional experiments for fast runs")
	flag.Parse()

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}
	runners := map[string]func(outDir string, quick bool) error{
		"table1":   table1,
		"table2":   table2,
		"table3":   table3,
		"fig7a":    fig7a,
		"fig7b":    fig7b,
		"fig8":     fig8,
		"fig9":     fig9,
		"ablation": ablation,
		"frontier": frontier,
	}
	order := []string{"table1", "table2", "table3", "fig7a", "fig7b", "fig8", "fig9", "ablation", "frontier"}
	if *exp == "all" {
		for _, id := range order {
			report.Rule(os.Stdout, id)
			if err := runners[id](*out, *quick); err != nil {
				fatal(fmt.Errorf("%s: %w", id, err))
			}
		}
		return
	}
	fn, ok := runners[*exp]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q (want table1..3, fig7a, fig7b, fig8, fig9, ablation, all)", *exp))
	}
	if err := fn(*out, *quick); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptychobench:", err)
	os.Exit(1)
}

// table1 prints the dataset-size table (paper Table I).
func table1(string, bool) error {
	small := cluster.SmallLeadTitanate()
	large := cluster.LargeLeadTitanate()
	report.KV(os.Stdout, "Table I: dataset sizes", [][2]string{
		{"Sample name", fmt.Sprintf("%-28s %s", small.Name, large.Name)},
		{"Measurements y size", fmt.Sprintf("%-28s %s",
			fmt.Sprintf("%dx%dx%d", small.DetectorN, small.DetectorN, small.Locations),
			fmt.Sprintf("%dx%dx%d", large.DetectorN, large.DetectorN, large.Locations))},
		{"Reconstruction V size", fmt.Sprintf("%-28s %s",
			fmt.Sprintf("%dx%dx%d", small.ImageW, small.ImageH, small.Slices),
			fmt.Sprintf("%dx%dx%d", large.ImageW, large.ImageH, large.Slices))},
		{"Image resolution", fmt.Sprintf("%-28s %s", small.VoxelPM3, large.VoxelPM3)},
	})
	return nil
}

func table2(outDir string, _ bool) error {
	cfg := perfmodel.DefaultConfig(cluster.SmallLeadTitanate())
	gd := cfg.GDTable(perfmodel.PaperGPUCountsSmall)
	report.PerfTable(os.Stdout,
		"Table II(a): Gradient Decomposition, small Lead Titanate dataset (model)", gd)
	hve := cfg.HVETable(perfmodel.PaperGPUCountsSmall)
	report.PerfTable(os.Stdout,
		"Table II(b): Halo Voxel Exchange, same dataset (model; NA = tile-size constraint)", hve)
	return writeCSVs(outDir, map[string][]perfmodel.Row{
		"table2a_gd_small.csv":  gd,
		"table2b_hve_small.csv": hve,
	})
}

func table3(outDir string, _ bool) error {
	cfg := perfmodel.DefaultConfig(cluster.LargeLeadTitanate())
	gd := cfg.GDTable(perfmodel.PaperGPUCountsLarge)
	report.PerfTable(os.Stdout,
		"Table III(a): Gradient Decomposition, large Lead Titanate dataset (model)", gd)
	hve := cfg.HVETable(append(append([]int{}, perfmodel.PaperHVECountsLarge...), 924))
	report.PerfTable(os.Stdout,
		"Table III(b): Halo Voxel Exchange, same dataset (model; 924 GPUs shown to expose the constraint)", hve)
	return writeCSVs(outDir, map[string][]perfmodel.Row{
		"table3a_gd_large.csv":  gd,
		"table3b_hve_large.csv": hve,
	})
}

func fig7a(outDir string, _ bool) error {
	counts := []int{6, 24, 54, 126, 198, 462, 924, 2048, 4158}
	smallCfg := perfmodel.DefaultConfig(cluster.SmallLeadTitanate())
	largeCfg := perfmodel.DefaultConfig(cluster.LargeLeadTitanate())

	var series []report.Series
	mk := func(name string, cfg perfmodel.Config, counts []int) report.Series {
		s := report.Series{Name: name}
		for _, k := range counts {
			r := cfg.GDRow(k)
			s.X = append(s.X, float64(k))
			s.Y = append(s.Y, r.RuntimeMin)
		}
		return s
	}
	small := mk("small(min)", smallCfg, counts[:7])
	large := mk("large(min)", largeCfg, counts)
	// Ideal O(1/P) lines anchored at the 6-GPU runtime.
	ideal := report.Series{Name: "ideal-large"}
	for i, k := range counts {
		_ = i
		ideal.X = append(ideal.X, float64(k))
		ideal.Y = append(ideal.Y, large.Y[0]*6/float64(k))
	}
	series = append(series, small, large, ideal)
	report.SeriesTable(os.Stdout,
		"Fig 7a: strong scaling, runtime (minutes, 100 iterations) vs GPUs (model)",
		"GPUs", series)
	if outDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(outDir, "fig7a_scaling.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "gpus,small_min,large_min,ideal_large_min")
	for i, k := range counts {
		smallV := ""
		if i < len(small.Y) {
			smallV = fmt.Sprintf("%.3f", small.Y[i])
		}
		fmt.Fprintf(f, "%d,%s,%.3f,%.3f\n", k, smallV, large.Y[i], ideal.Y[i])
	}
	return nil
}

func fig7b(outDir string, _ bool) error {
	cfg := perfmodel.DefaultConfig(cluster.LargeLeadTitanate())
	counts := []int{24, 54, 126, 198, 462}
	var labels []string
	var rows []perfmodel.Breakdown
	for _, k := range counts {
		with := cfg.GDRow(k)
		without := cfg.GDRowNoAPPP(k)
		labels = append(labels, fmt.Sprintf("%d", k), fmt.Sprintf("%d w/o", k))
		rows = append(rows, with.Breakdown, without.Breakdown)
	}
	report.BreakdownTable(os.Stdout,
		"Fig 7b: runtime breakdown, large dataset, with and without APPP (model)",
		labels, rows)
	if outDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(outDir, "fig7b_breakdown.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "gpus,appp,compute_min,wait_min,comm_min")
	for i, k := range counts {
		w := rows[2*i]
		wo := rows[2*i+1]
		fmt.Fprintf(f, "%d,with,%.3f,%.3f,%.3f\n", k, w.ComputeMin, w.WaitMin, w.CommMin)
		fmt.Fprintf(f, "%d,without,%.3f,%.3f,%.3f\n", k, wo.ComputeMin, wo.WaitMin, wo.CommMin)
	}
	return nil
}

// fig8 runs the functional seam-artifact study. Border artifacts are
// measured on the RESIDUAL (reconstruction minus ground truth, after
// global-phase alignment) as the concentration of error in a band
// around the tile borders — the copy-paste artifact signature of the
// paper's Fig 8(a). The lattice itself cancels in the residual, and the
// serial run provides the artifact-free reference at the same borders.
// At this laptop scale the effect is a consistent ~10% excess border
// error for Halo Voxel Exchange while Gradient Decomposition stays at
// or below the serial baseline; the paper's visually obvious seams
// occur at 3072^2 x 100-slice scale (see EXPERIMENTS.md).
func fig8(outDir string, quick bool) error {
	scanN, iters := 12, 32
	if quick {
		scanN, iters = 8, 12
	}
	ds, err := ptycho.SimulateDataset(ptycho.SimulateOptions{
		ScanCols: scanN, ScanRows: scanN, OverlapRatio: 0.75,
		ProbeRadiusPix: 12, WindowN: 24, Slices: 1,
		Phantom: ptycho.PhantomLeadTitanate, Seed: 1,
	})
	if err != nil {
		return err
	}
	serial, err := ds.Reconstruct(ptycho.ReconstructOptions{
		Algorithm: ptycho.Serial, SerialSequential: true,
		StepSize: 0.01, Iterations: iters,
	})
	if err != nil {
		return err
	}
	gd, err := ds.Reconstruct(ptycho.ReconstructOptions{
		Algorithm: ptycho.GradientDecomposition, MeshRows: 2, MeshCols: 2,
		StepSize: 0.01, Iterations: iters, FaithfulAlg1: true,
	})
	if err != nil {
		return err
	}
	hve := map[int]*ptycho.Result{}
	for _, extra := range []int{1, 2} {
		extra := extra
		r, err := ds.Reconstruct(ptycho.ReconstructOptions{
			Algorithm: ptycho.HaloVoxelExchange, MeshRows: 2, MeshCols: 2,
			StepSize: 0.01, Iterations: iters, HVEExtraRows: extra,
		})
		if err != nil {
			return err
		}
		hve[extra] = r
	}
	const band = 6
	base := ds.ResidualBorderRatio(serial, 0, 2, 2, band)
	gdScore := ds.ResidualBorderRatio(gd, 0, 2, 2, band)
	pairs := [][2]string{
		{"serial border-error ratio (artifact-free reference)", fmt.Sprintf("%.3f", base)},
		{"Gradient Decomposition border-error ratio", fmt.Sprintf("%.3f (%.2fx serial)", gdScore, gdScore/base)},
	}
	for _, extra := range []int{2, 1} {
		score := ds.ResidualBorderRatio(hve[extra], 0, 2, 2, band)
		pairs = append(pairs, [2]string{
			fmt.Sprintf("Halo Voxel Exchange border-error ratio (%d extra rows)", extra),
			fmt.Sprintf("%.3f (%.2fx serial)", score, score/base),
		})
	}
	pairs = append(pairs,
		[2]string{"serial relative error vs truth", fmt.Sprintf("%.4f", serial.RelativeErrorTo(ds, 0))},
		[2]string{"GD relative error vs truth", fmt.Sprintf("%.4f", gd.RelativeErrorTo(ds, 0))},
		[2]string{"HVE relative error vs truth (1 extra row)", fmt.Sprintf("%.4f", hve[1].RelativeErrorTo(ds, 0))},
	)
	report.KV(os.Stdout, "Fig 8: border artifacts (functional run, 2x2 mesh; higher ratio = error piled at tile borders)", pairs)
	if outDir == "" {
		return nil
	}
	if err := ptycho.SavePNG(filepath.Join(outDir, "fig8_hve_phase.png"),
		ptycho.PhaseImage(hve[1].Slices[0])); err != nil {
		return err
	}
	if err := ptycho.SavePNG(filepath.Join(outDir, "fig8_gd_phase.png"),
		ptycho.PhaseImage(gd.Slices[0])); err != nil {
		return err
	}
	return ptycho.SavePNG(filepath.Join(outDir, "fig8_truth_phase.png"),
		ptycho.PhaseImage(ds.GroundTruthSlice(0)))
}

// fig9 runs the functional convergence study: Gradient Decomposition
// with three communication frequencies (Alg 1's T).
func fig9(outDir string, quick bool) error {
	scanN, iters := 6, 20
	if quick {
		scanN, iters = 4, 10
	}
	ds, err := ptycho.SimulateDataset(ptycho.SimulateOptions{
		ScanCols: scanN, ScanRows: scanN, OverlapRatio: 0.75,
		WindowN: 16, Slices: 1, Phantom: ptycho.PhantomRandom, Seed: 5,
	})
	if err != nil {
		return err
	}
	perTile := ds.NumLocations()/4 + 1 // ~ one round per location
	freqs := []struct {
		name   string
		rounds int
	}{
		{"every-location", perTile},
		{"twice-per-iter", 2},
		{"once-per-iter", 1},
	}
	var series []report.Series
	for _, f := range freqs {
		res, err := ds.Reconstruct(ptycho.ReconstructOptions{
			Algorithm: ptycho.GradientDecomposition, MeshRows: 2, MeshCols: 2,
			StepSize: 0.01, Iterations: iters,
			RoundsPerIteration: f.rounds, FaithfulAlg1: true,
		})
		if err != nil {
			return err
		}
		s := report.Series{Name: f.name}
		for i, c := range res.CostHistory {
			s.X = append(s.X, float64(i+1))
			s.Y = append(s.Y, c)
		}
		series = append(series, s)
	}
	report.SeriesTable(os.Stdout,
		"Fig 9: convergence (cost F(V)) vs iteration for three pass frequencies (functional run)",
		"iteration", series)
	if outDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(outDir, "fig9_convergence.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "iteration,every_location,twice_per_iter,once_per_iter")
	for i := 0; i < iters; i++ {
		fmt.Fprintf(f, "%d,%.6g,%.6g,%.6g\n", i+1, series[0].Y[i], series[1].Y[i], series[2].Y[i])
	}
	return nil
}

func writeCSVs(outDir string, tables map[string][]perfmodel.Row) error {
	if outDir == "" {
		return nil
	}
	for name, rows := range tables {
		f, err := os.Create(filepath.Join(outDir, name))
		if err != nil {
			return err
		}
		report.PerfCSV(f, rows)
		f.Close()
	}
	return nil
}

// ablation prints the design-choice sensitivity studies DESIGN.md calls
// out: the Gradient Decomposition halo width (memory/communication) and
// the Halo Voxel Exchange redundant-row count (redundant compute).
func ablation(outDir string, _ bool) error {
	cfg := perfmodel.DefaultConfig(cluster.LargeLeadTitanate())
	cfg.SimIterations = 1

	halos := []float64{300, 600, 900, 1200, 2400}
	haloPts := cfg.HaloSensitivity(462, halos)
	var haloSeries []report.Series
	mem := report.Series{Name: "memory(GB)"}
	comm := report.Series{Name: "comm(MB/iter)"}
	for _, p := range haloPts {
		mem.X = append(mem.X, p.HaloPM)
		mem.Y = append(mem.Y, p.MemoryGB)
		comm.X = append(comm.X, p.HaloPM)
		comm.Y = append(comm.Y, p.CommBytesPerIter/1e6)
	}
	haloSeries = append(haloSeries, mem, comm)
	report.SeriesTable(os.Stdout,
		"Ablation: GD halo width at 462 GPUs (paper uses 600 pm — the minimum covering the probe)",
		"halo(pm)", haloSeries)

	rowsPts := cfg.ExtraRowsSensitivity(198, []int{0, 1, 2, 3, 4})
	var rowSeries []report.Series
	red := report.Series{Name: "redundant(%)"}
	rmem := report.Series{Name: "memory(GB)"}
	for _, p := range rowsPts {
		red.X = append(red.X, float64(p.ExtraRows))
		red.Y = append(red.Y, p.RedundantPercent)
		rmem.X = append(rmem.X, float64(p.ExtraRows))
		rmem.Y = append(rmem.Y, p.MemoryGB)
	}
	rowSeries = append(rowSeries, red, rmem)
	report.SeriesTable(os.Stdout,
		"Ablation: HVE extra probe-location rows at 198 GPUs (paper uses 2)",
		"rows", rowSeries)
	return nil
}

// frontier quantifies the paper's motivation: the largest reconstruction
// that fits per-GPU memory at each scale, for both methods, at the
// paper's scan density. Gradient Decomposition's smaller footprint buys
// strictly higher achievable resolution everywhere, and Halo Voxel
// Exchange additionally hits its tile-size wall.
func frontier(outDir string, _ bool) error {
	cfg := perfmodel.DefaultConfig(cluster.LargeLeadTitanate())
	pts := cfg.Frontier([]int{6, 54, 198, 462, 924, 4158})
	gd := report.Series{Name: "GD max px"}
	hve := report.Series{Name: "HVE max px"}
	adv := report.Series{Name: "advantage"}
	for _, p := range pts {
		gd.X = append(gd.X, float64(p.GPUs))
		gd.Y = append(gd.Y, float64(p.MaxImageGD))
		hve.X = append(hve.X, float64(p.GPUs))
		hve.Y = append(hve.Y, float64(p.MaxImageHVE))
		adv.X = append(adv.X, float64(p.GPUs))
		adv.Y = append(adv.Y, p.ResolutionAdvantage)
	}
	report.SeriesTable(os.Stdout,
		"Feasibility frontier: largest image edge (px) fitting 16 GB/GPU at the paper's scan density",
		"GPUs", []report.Series{gd, hve, adv})

	// The sharper frontier: what resolution fits a wall-clock budget
	// (the paper's "near real-time" guidance scenario), choosing the
	// best GPU count from Summit's pool for each method.
	pool := []int{6, 24, 54, 126, 198, 462, 924, 4158}
	tb := cfg.TimeBudget([]float64{2.5, 5, 15, 60}, pool)
	gdT := report.Series{Name: "GD max px"}
	hveT := report.Series{Name: "HVE max px"}
	for _, p := range tb {
		gdT.X = append(gdT.X, p.BudgetMin)
		gdT.Y = append(gdT.Y, float64(p.MaxImageGD))
		hveT.X = append(hveT.X, p.BudgetMin)
		hveT.Y = append(hveT.Y, float64(p.MaxImageHVE))
	}
	report.SeriesTable(os.Stdout,
		"Time-budget frontier: largest image edge reconstructable within a wall-clock budget (0 = infeasible at any size)",
		"budget(min)", []report.Series{gdT, hveT})
	return nil
}
