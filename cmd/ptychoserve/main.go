// Command ptychoserve runs the concurrent reconstruction job service: an
// HTTP server that accepts PTYCHOv1 dataset uploads, schedules
// reconstructions on a bounded worker pool, writes periodic OBJCKv1
// checkpoints, serves live phase-image previews, and supports cancel and
// checkpoint-resume — the operational front end for steering a running
// microscopy experiment.
//
// Usage:
//
//	ptychoserve [-addr :8617] [-workers 2] [-queue 16]
//	            [-spool DIR] [-checkpoint-every 5] [-ingest 4096]
//	            [-grid ADDR] [-max-upload BYTES] [-state-dir DIR]
//	            [-sched fifo|wfq] [-tenant NAME:WEIGHT[:MAX[:BYTES]]]...
//	            [-interactive-reserve N]
//	            [-log-format text|json] [-log-level info] [-debug-addr ADDR]
//
// -sched wfq turns on weighted-fair queueing: jobs are accounted to the
// tenant named by their X-API-Key header ("anonymous" without one) and
// dispatched by start-time fair queueing over the tenants' weights,
// with "interactive"-priority jobs served ahead of "bulk" work — an
// interactive arrival may preempt a running bulk job at its next
// iteration boundary (checkpoint + requeue, no work lost). Repeatable
// -tenant flags declare per-tenant weight and quotas:
// NAME:WEIGHT[:MAX-ACTIVE[:INGEST-BYTES]], e.g. -tenant alpha:3:4
// gives tenant alpha weight 3 and at most 4 in-flight jobs. Undeclared
// tenants get weight 1 and no quotas. -interactive-reserve holds N
// queue slots that only interactive submissions may use, so bulk
// floods shed before interactive work does. The default -sched fifo
// preserves strict arrival order; quotas and per-tenant accounting
// still apply.
//
// Logs are structured (log/slog) on stderr: text for humans by
// default, -log-format json for machine ingestion. Every request line
// carries the X-Request-ID, every job line the job ID and its
// request_id trace context, so one grep follows a submission across the
// HTTP, job and grid layers. -log-level debug adds per-iteration and
// per-checkpoint lines. -debug-addr serves net/http/pprof on a
// SEPARATE listener (keep it on localhost or behind a firewall — it is
// deliberately not mounted on the public API address).
//
// With -state-dir, job state is durable: every lifecycle transition is
// append-logged to DIR/jobs.wal (PTYWALv2, periodically compacted into
// DIR/jobs.snap), datasets and stream frames are spooled beside it, and
// a restarted server replays the log — history, pagination and
// idempotency keys come back, and jobs that were queued or running at
// crash time re-enter the queue under their original IDs, warm-started
// from their last OBJCKv1 checkpoint (look for "recovered_from" on the
// job object). Without the flag nothing survives the process, as
// before. Unless -spool is set, checkpoints then default to
// DIR/checkpoints so they survive restarts too.
//
// The public HTTP surface is versioned under /v1 (problem-envelope
// errors, multipart submission, cursor pagination, idempotent submits);
// the pre-/v1 routes remain as deprecated aliases for one release. Go
// programs should use the typed SDK in the top-level client package.
//
// With -grid, the server additionally runs the worker-grid coordinator:
// ptychoworker processes dial ADDR over the CRC-framed TCP transport,
// and jobs submitted with ?grid=1 run their parallel engine across
// those processes — one rank per mesh tile — with the same checkpoint,
// preview, cancel and resume behavior as local jobs.
//
// See docs/HTTP_API.md for the complete endpoint reference (CI-verified
// curl examples) and README.md for the quickstarts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ptychopath/internal/jobs"
	"ptychopath/internal/jobs/httpapi"
	"ptychopath/internal/jobs/sched"
	"ptychopath/internal/jobs/store"
	"ptychopath/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8617", "listen address")
	workers := flag.Int("workers", max(1, runtime.NumCPU()/2), "concurrent reconstructions (worker pool size)")
	queue := flag.Int("queue", 16, "bounded FIFO depth for queued jobs")
	spool := flag.String("spool", "", "checkpoint spool directory (default: fresh temp dir)")
	ckEvery := flag.Int("checkpoint-every", 5, "default iterations between OBJCKv1 checkpoints / preview snapshots")
	timeout := flag.Duration("timeout", 5*time.Minute, "parallel-engine communication timeout")
	ingest := flag.Int("ingest", 4096, "default per-job frame buffer for streaming jobs (429 backpressure beyond it)")
	gridAddr := flag.String("grid", "", "worker-grid coordinator listen address (e.g. :8619); empty disables distributed jobs")
	maxUpload := flag.Int64("max-upload", httpapi.DefaultMaxUploadBytes,
		"largest accepted request body in bytes (dataset uploads, frame chunks); beyond it requests answer 413 payload_too_large")
	stateDir := flag.String("state-dir", "",
		"durable job-state directory (WAL + snapshot + dataset spools); restarts recover interrupted jobs. Empty keeps state in memory")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	debugAddr := flag.String("debug-addr", "",
		"net/http/pprof listen address (e.g. 127.0.0.1:8620); empty disables the debug server. Do not expose publicly")
	schedPolicy := flag.String("sched", "fifo", "queue policy: fifo (arrival order) or wfq (weighted-fair by tenant, interactive priority preempts bulk)")
	interactiveReserve := flag.Int("interactive-reserve", 0, "queue slots reserved for interactive-priority submissions (bulk sheds first)")
	tenants := map[string]sched.TenantConfig{}
	flag.Func("tenant", "tenant config NAME:WEIGHT[:MAX-ACTIVE[:INGEST-BYTES]] (repeatable)", func(v string) error {
		name, tc, err := parseTenant(v)
		if err != nil {
			return err
		}
		tenants[name] = tc
		return nil
	})
	flag.Parse()

	log, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptychoserve:", err)
		os.Exit(1)
	}
	schedCfg := sched.Config{Policy: *schedPolicy, Tenants: tenants, InteractiveReserve: *interactiveReserve}
	if err := run(log, *addr, *workers, *queue, *spool, *ckEvery, *timeout, *ingest, *gridAddr, *maxUpload, *stateDir, *debugAddr, schedCfg); err != nil {
		log.Error("exiting", "err", err)
		os.Exit(1)
	}
}

// parseTenant decodes one -tenant flag value:
// NAME:WEIGHT[:MAX-ACTIVE[:INGEST-BYTES]].
func parseTenant(v string) (string, sched.TenantConfig, error) {
	parts := strings.Split(v, ":")
	if len(parts) < 2 || len(parts) > 4 || parts[0] == "" {
		return "", sched.TenantConfig{}, fmt.Errorf("tenant %q: want NAME:WEIGHT[:MAX-ACTIVE[:INGEST-BYTES]]", v)
	}
	var tc sched.TenantConfig
	w, err := strconv.ParseFloat(parts[1], 64)
	if err != nil || w <= 0 {
		return "", sched.TenantConfig{}, fmt.Errorf("tenant %q: weight %q must be a positive number", v, parts[1])
	}
	tc.Weight = w
	if len(parts) >= 3 {
		if tc.MaxActive, err = strconv.Atoi(parts[2]); err != nil || tc.MaxActive < 0 {
			return "", sched.TenantConfig{}, fmt.Errorf("tenant %q: max-active %q must be a non-negative integer", v, parts[2])
		}
	}
	if len(parts) == 4 {
		if tc.IngestBytes, err = strconv.ParseInt(parts[3], 10, 64); err != nil || tc.IngestBytes < 0 {
			return "", sched.TenantConfig{}, fmt.Errorf("tenant %q: ingest-bytes %q must be a non-negative integer", v, parts[3])
		}
	}
	return parts[0], tc, nil
}

func run(log *slog.Logger, addr string, workers, queue int, spool string, ckEvery int, timeout time.Duration, ingest int, gridAddr string, maxUpload int64, stateDir, debugAddr string, schedCfg sched.Config) error {
	var st store.Store
	if stateDir != "" {
		wal, err := store.OpenWAL(store.WALConfig{Dir: stateDir})
		if err != nil {
			return err
		}
		defer wal.Close()
		st = wal
		if spool == "" {
			// Checkpoints must survive restarts too, or recovery has
			// nothing to warm-start from.
			spool = filepath.Join(stateDir, "checkpoints")
		}
	}
	svc, err := jobs.NewService(jobs.Config{
		Workers: workers, QueueDepth: queue, SpoolDir: spool,
		CheckpointEvery: ckEvery, Timeout: timeout, IngestFrames: ingest,
		GridAddr: gridAddr, Store: st, Logger: log, Sched: schedCfg,
	})
	if err != nil {
		return err
	}
	log.Info("service configured", "workers", svc.Config().Workers,
		"queue_depth", svc.Config().QueueDepth, "spool", svc.Config().SpoolDir,
		"sched", svc.Config().Sched.Policy, "tenants", len(svc.Config().Sched.Tenants))
	if stateDir != "" {
		recovered, restored, unrecoverable, records, torn := svc.RecoveryStats()
		log.Info("durable state replayed", "state_dir", stateDir,
			"records", records, "torn", torn, "re_enqueued", recovered,
			"restored", restored, "unrecoverable", unrecoverable)
	}
	if svc.GridEnabled() {
		log.Info("grid coordinator listening", "grid_addr", svc.GridAddr())
	}

	if debugAddr != "" {
		// pprof on its own listener so profiling never shares the public
		// API surface (bind it to localhost). An explicit mux rather than
		// DefaultServeMux: nothing else can accidentally register here.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Info("debug server listening", "debug_addr", debugAddr)
			if err := http.ListenAndServe(debugAddr, dmux); err != nil {
				log.Error("debug server failed", "err", err)
			}
		}()
	}

	// Slowloris hardening: a client must deliver its headers quickly,
	// finish any request body within the read window (uploads are bulk
	// transfers, not trickles — the body bound itself is -max-upload),
	// and keep-alive connections are reaped when idle. The SSE events
	// route clears the write deadline per connection — a live feed
	// legitimately outlives any response window (see httpapi).
	srv := &http.Server{
		Addr:              addr,
		Handler:           httpapi.New(svc, httpapi.WithMaxUpload(maxUpload), httpapi.WithLogger(log)).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Info("listening", "addr", addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Info("shutting down, cancelling in-flight jobs (checkpoints let them resume)")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	// Graceful stop: reject new submissions, cancel every queued and
	// running job at its next iteration boundary (final checkpoint
	// flushed, streaming jobs woken from their ingest wait), drain the
	// pool, exit 0. A restarted server can resume the work from the
	// spool.
	svc.Shutdown()
	log.Info("all jobs checkpointed, bye")
	return nil
}
