// Command ptychoserve runs the concurrent reconstruction job service: an
// HTTP server that accepts PTYCHOv1 dataset uploads, schedules
// reconstructions on a bounded worker pool, writes periodic OBJCKv1
// checkpoints, serves live phase-image previews, and supports cancel and
// checkpoint-resume — the operational front end for steering a running
// microscopy experiment.
//
// Usage:
//
//	ptychoserve [-addr :8617] [-workers 2] [-queue 16]
//	            [-spool DIR] [-checkpoint-every 5] [-ingest 4096]
//	            [-grid ADDR] [-max-upload BYTES]
//
// The public HTTP surface is versioned under /v1 (problem-envelope
// errors, multipart submission, cursor pagination, idempotent submits);
// the pre-/v1 routes remain as deprecated aliases for one release. Go
// programs should use the typed SDK in the top-level client package.
//
// With -grid, the server additionally runs the worker-grid coordinator:
// ptychoworker processes dial ADDR over the CRC-framed TCP transport,
// and jobs submitted with ?grid=1 run their parallel engine across
// those processes — one rank per mesh tile — with the same checkpoint,
// preview, cancel and resume behavior as local jobs.
//
// See docs/HTTP_API.md for the complete endpoint reference (CI-verified
// curl examples) and README.md for the quickstarts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ptychopath/internal/jobs"
	"ptychopath/internal/jobs/httpapi"
)

func main() {
	addr := flag.String("addr", ":8617", "listen address")
	workers := flag.Int("workers", max(1, runtime.NumCPU()/2), "concurrent reconstructions (worker pool size)")
	queue := flag.Int("queue", 16, "bounded FIFO depth for queued jobs")
	spool := flag.String("spool", "", "checkpoint spool directory (default: fresh temp dir)")
	ckEvery := flag.Int("checkpoint-every", 5, "default iterations between OBJCKv1 checkpoints / preview snapshots")
	timeout := flag.Duration("timeout", 5*time.Minute, "parallel-engine communication timeout")
	ingest := flag.Int("ingest", 4096, "default per-job frame buffer for streaming jobs (429 backpressure beyond it)")
	gridAddr := flag.String("grid", "", "worker-grid coordinator listen address (e.g. :8619); empty disables distributed jobs")
	maxUpload := flag.Int64("max-upload", httpapi.DefaultMaxUploadBytes,
		"largest accepted request body in bytes (dataset uploads, frame chunks); beyond it requests answer 413 payload_too_large")
	flag.Parse()

	if err := run(*addr, *workers, *queue, *spool, *ckEvery, *timeout, *ingest, *gridAddr, *maxUpload); err != nil {
		fmt.Fprintln(os.Stderr, "ptychoserve:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queue int, spool string, ckEvery int, timeout time.Duration, ingest int, gridAddr string, maxUpload int64) error {
	svc, err := jobs.NewService(jobs.Config{
		Workers: workers, QueueDepth: queue, SpoolDir: spool,
		CheckpointEvery: ckEvery, Timeout: timeout, IngestFrames: ingest,
		GridAddr: gridAddr,
	})
	if err != nil {
		return err
	}
	fmt.Printf("ptychoserve: %d workers, queue depth %d, spool %s\n",
		svc.Config().Workers, svc.Config().QueueDepth, svc.Config().SpoolDir)
	if svc.GridEnabled() {
		fmt.Printf("ptychoserve: grid coordinator on %s (connect ptychoworker processes, submit with ?grid=1)\n",
			svc.GridAddr())
	}

	// Slowloris hardening: a client must deliver its headers quickly,
	// finish any request body within the read window (uploads are bulk
	// transfers, not trickles — the body bound itself is -max-upload),
	// and keep-alive connections are reaped when idle. The SSE events
	// route clears the write deadline per connection — a live feed
	// legitimately outlives any response window (see httpapi).
	srv := &http.Server{
		Addr:              addr,
		Handler:           httpapi.New(svc, httpapi.WithMaxUpload(maxUpload)).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("ptychoserve: listening on %s\n", addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Println("ptychoserve: shutting down, cancelling in-flight jobs (checkpoints let them resume)")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	// Graceful stop: reject new submissions, cancel every queued and
	// running job at its next iteration boundary (final checkpoint
	// flushed, streaming jobs woken from their ingest wait), drain the
	// pool, exit 0. A restarted server can resume the work from the
	// spool.
	svc.Shutdown()
	fmt.Println("ptychoserve: all jobs checkpointed, bye")
	return nil
}
