// Command ptychorecon is the end-to-end reconstruction CLI: it loads a
// PTYCHOv1 dataset (see cmd/datagen), reconstructs it with the selected
// algorithm, reports convergence and per-worker statistics, and can
// write phase/magnitude PNGs of the result.
//
// Usage:
//
//	ptychorecon -i dataset.ptycho [-alg gd|hve|serial] [-mesh 2x2]
//	            [-iters 20] [-step 0.01] [-rounds 1] [-faithful]
//	            [-no-appp] [-png out_prefix]
//	            [-checkpoint ck.objck] [-checkpoint-every 5]
//	            [-resume ck.objck] [-save final.objck]
//
// With -checkpoint, the in-progress object is written every
// -checkpoint-every iterations (atomically: tmp + rename), so an
// interrupted batch run can restart from where it stopped via -resume.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ptychopath/internal/dataio"
	"ptychopath/internal/gradsync"
	"ptychopath/internal/grid"
	"ptychopath/internal/halo"
	"ptychopath/internal/phantom"
	"ptychopath/internal/solver"
	"ptychopath/internal/tiling"
	"ptychopath/internal/trace"

	"ptychopath"
)

func main() {
	in := flag.String("i", "", "input dataset (PTYCHOv1 file, required)")
	alg := flag.String("alg", "gd", "algorithm: gd (gradient decomposition), hve (halo voxel exchange), serial")
	meshStr := flag.String("mesh", "2x2", "tile mesh ROWSxCOLS for parallel algorithms")
	iters := flag.Int("iters", 20, "iterations")
	step := flag.Float64("step", 0.01, "gradient step size")
	rounds := flag.Int("rounds", 1, "communication rounds per iteration (Alg 1's T)")
	faithful := flag.Bool("faithful", false, "use the paper's literal Alg 1 (local + accumulated updates)")
	noAPPP := flag.Bool("no-appp", false, "disable asynchronous pipelining (barrier-separated passes)")
	workers := flag.Int("workers", 1, "goroutines per gd worker for gradient computation (batch mode)")
	pngPrefix := flag.String("png", "", "write <prefix>_phase.png and <prefix>_mag.png of slice 0")
	save := flag.String("save", "", "write the reconstructed object to this checkpoint file (OBJCKv1)")
	resume := flag.String("resume", "", "start from an object checkpoint instead of vacuum")
	checkpoint := flag.String("checkpoint", "", "write the in-progress object to this OBJCKv1 file every -checkpoint-every iterations")
	ckEvery := flag.Int("checkpoint-every", 5, "iterations between -checkpoint writes")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "ptychorecon: -i dataset required (generate one with datagen)")
		os.Exit(2)
	}
	cfg := config{
		in: *in, alg: *alg, mesh: *meshStr, iters: *iters, step: *step,
		rounds: *rounds, workers: *workers, faithful: *faithful, noAPPP: *noAPPP,
		pngPrefix: *pngPrefix, savePath: *save, resumePath: *resume,
		checkpointPath: *checkpoint, checkpointEvery: *ckEvery,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "ptychorecon:", err)
		os.Exit(1)
	}
}

// config carries the parsed flags.
type config struct {
	in, alg, mesh                   string
	iters                           int
	step                            float64
	rounds, workers                 int
	faithful, noAPPP                bool
	pngPrefix, savePath, resumePath string
	checkpointPath                  string
	checkpointEvery                 int
}

func parseMesh(s string) (rows, cols int, err error) {
	parts := strings.SplitN(strings.ToLower(s), "x", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("mesh %q: want ROWSxCOLS", s)
	}
	if rows, err = strconv.Atoi(parts[0]); err != nil {
		return 0, 0, fmt.Errorf("mesh %q: %w", s, err)
	}
	if cols, err = strconv.Atoi(parts[1]); err != nil {
		return 0, 0, fmt.Errorf("mesh %q: %w", s, err)
	}
	return rows, cols, nil
}

// checkpointWriter returns an OnSnapshot hook that writes the
// in-progress object atomically (tmp + rename), or nil when -checkpoint
// is unset.
func checkpointWriter(path string) func(iter int, slices []*grid.Complex2D) error {
	if path == "" {
		return nil
	}
	return func(iter int, slices []*grid.Complex2D) error {
		if err := dataio.WriteObjectFileAtomic(path, slices); err != nil {
			return err
		}
		fmt.Printf("  checkpoint after iter %d -> %s\n", iter+1, path)
		return nil
	}
}

func run(cfg config) error {
	rec := trace.NewRecorder()
	var prob *solver.Problem
	var err error
	rec.Time("load", func() { prob, err = dataio.ReadFile(cfg.in) })
	if err != nil {
		return err
	}
	fmt.Printf("loaded %s: %d locations, %dx%d px, %d slices\n",
		cfg.in, prob.Pattern.N(), prob.Pattern.ImageW, prob.Pattern.ImageH, prob.Slices)

	init := phantom.Vacuum(prob.ImageBounds(), prob.Slices)
	if cfg.resumePath != "" {
		ck, err := dataio.ReadObjectFile(cfg.resumePath)
		if err != nil {
			return err
		}
		if len(ck) != prob.Slices || !ck[0].Bounds.Eq(prob.ImageBounds()) {
			return fmt.Errorf("checkpoint %s does not match dataset geometry", cfg.resumePath)
		}
		init.Slices = ck
		fmt.Printf("resumed from %s\n", cfg.resumePath)
	}
	onIter := func(it int, cost float64) {
		fmt.Printf("  iter %3d  cost %.6g\n", it+1, cost)
	}
	onSnap := checkpointWriter(cfg.checkpointPath)
	snapEvery := 0
	if onSnap != nil {
		snapEvery = cfg.checkpointEvery
		if snapEvery <= 0 {
			return fmt.Errorf("-checkpoint-every must be positive with -checkpoint, got %d", snapEvery)
		}
	}

	var slices []*grid.Complex2D
	switch cfg.alg {
	case "serial":
		var r *solver.Result
		rec.Time("reconstruct", func() {
			r, err = solver.Reconstruct(prob, init.Slices, solver.Options{
				StepSize: cfg.step, Iterations: cfg.iters, Mode: solver.Batch, OnIteration: onIter,
				SnapshotEvery: snapEvery, OnSnapshot: onSnap,
			})
		})
		if err != nil {
			return err
		}
		slices = r.Slices

	case "gd":
		rows, cols, merr := parseMesh(cfg.mesh)
		if merr != nil {
			return merr
		}
		mesh, merr2 := tiling.NewMesh(prob.ImageBounds(), rows, cols, tiling.HaloForWindow(prob.WindowN))
		if merr2 != nil {
			return merr2
		}
		mode := gradsync.ModeBatch
		if cfg.faithful {
			mode = gradsync.ModeFaithful
		}
		var r *gradsync.Result
		rec.Time("reconstruct", func() {
			r, err = gradsync.Reconstruct(prob, init.Slices, gradsync.Options{
				Mesh: mesh, Mode: mode, StepSize: cfg.step, Iterations: cfg.iters,
				RoundsPerIteration: cfg.rounds, DisableAPPP: cfg.noAPPP,
				IntraWorkers: cfg.workers,
				Timeout:      5 * time.Minute, OnIteration: onIter,
				SnapshotEvery: snapEvery, OnSnapshot: onSnap,
			})
		})
		if err != nil {
			return err
		}
		slices = r.Slices
		fmt.Printf("workers %d, exchanged %.2f MB in %d messages\n",
			mesh.NumTiles(), float64(r.BytesSent)/1e6, r.MessagesSent)
		printMem(r.PerRankMemBytes)

	case "hve":
		rows, cols, merr := parseMesh(cfg.mesh)
		if merr != nil {
			return merr
		}
		mesh, merr2 := tiling.NewMesh(prob.ImageBounds(), rows, cols, tiling.HaloForWindow(prob.WindowN))
		if merr2 != nil {
			return merr2
		}
		var r *halo.Result
		rec.Time("reconstruct", func() {
			r, err = halo.Reconstruct(prob, init.Slices, halo.Options{
				Mesh: mesh, HaloWidth: mesh.Halo, ExtraRows: 1,
				StepSize: cfg.step, Iterations: cfg.iters,
				ExchangesPerIteration: cfg.rounds,
				Timeout:               5 * time.Minute, OnIteration: onIter,
				SnapshotEvery: snapEvery, OnSnapshot: onSnap,
			})
		})
		if err != nil {
			return err
		}
		slices = r.Slices
		fmt.Printf("workers %d, exchanged %.2f MB in %d messages (redundant locations: %d of %d owned)\n",
			mesh.NumTiles(), float64(r.BytesSent)/1e6, r.MessagesSent,
			sum(r.PerRankLocations)-sum(r.PerRankOwned), sum(r.PerRankOwned))
		printMem(r.PerRankMemBytes)

	default:
		return fmt.Errorf("unknown algorithm %q (want gd, hve, serial)", cfg.alg)
	}

	if cfg.savePath != "" {
		if err := dataio.WriteObjectFile(cfg.savePath, slices); err != nil {
			return err
		}
		fmt.Printf("checkpoint written to %s\n", cfg.savePath)
	}
	if cfg.pngPrefix != "" {
		rec.Time("png", func() {
			f := ptycho.Field{W: slices[0].W(), H: slices[0].H(), Data: slices[0].Data}
			if err = ptycho.SavePNG(cfg.pngPrefix+"_phase.png", ptycho.PhaseImage(f)); err != nil {
				return
			}
			err = ptycho.SavePNG(cfg.pngPrefix+"_mag.png", ptycho.MagnitudeImage(f))
		})
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s_phase.png and %s_mag.png\n", cfg.pngPrefix, cfg.pngPrefix)
	}
	rec.Report(os.Stdout, "wall-clock phases")
	return nil
}

func printMem(perRank []int64) {
	var peak int64
	for _, m := range perRank {
		if m > peak {
			peak = m
		}
	}
	fmt.Printf("peak worker footprint %.2f MB\n", float64(peak)/1e6)
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
