// Command datagen synthesizes a ptychography dataset — PbTiO3-like
// phantom, raster scan, defocused probe, multi-slice diffraction — and
// writes it to the binary PTYCHOv1 container that ptychorecon consumes.
//
// Usage:
//
//	datagen -o dataset.ptycho [-scan 8] [-overlap 0.75] [-slices 2]
//	        [-window 16] [-radius 8] [-phantom pbtio3|random]
//	        [-dose 0] [-seed 1] [-stream] [-chunk 64]
//	        [-info existing.ptycho]
//
// With -info, datagen prints a summary of an existing file instead of
// generating one. With -stream, the output is a PTYCHS stream
// (opening + CRC-framed chunks of -chunk frames + EOF marker) instead
// of a PTYCHOv1 batch container — the input format of the streaming
// endpoints and a ready-made body for POST /jobs/stream (see
// docs/FORMATS.md and docs/HTTP_API.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"ptychopath/internal/dataio"
	"ptychopath/internal/phantom"
	"ptychopath/internal/physics"
	"ptychopath/internal/scan"
	"ptychopath/internal/solver"
)

func main() {
	out := flag.String("o", "dataset.ptycho", "output file")
	scanN := flag.Int("scan", 8, "scan grid edge (scan x scan probe locations)")
	overlap := flag.Float64("overlap", 0.75, "linear probe overlap ratio [0,1)")
	slices := flag.Int("slices", 2, "object slices")
	window := flag.Int("window", 16, "probe window / detector edge, pixels")
	radius := flag.Float64("radius", 8, "probe circle radius, pixels")
	kind := flag.String("phantom", "pbtio3", "phantom: pbtio3 or random")
	dose := flag.Float64("dose", 0, "mean electrons per pattern (0 = noise-free)")
	seed := flag.Int64("seed", 1, "random seed")
	stream := flag.Bool("stream", false, "write a PTYCHS stream instead of a PTYCHOv1 batch file")
	chunk := flag.Int("chunk", 64, "frames per CRC-framed chunk in -stream mode")
	info := flag.String("info", "", "print a summary of an existing dataset file and exit")
	flag.Parse()

	if *info != "" {
		if err := printInfo(*info); err != nil {
			fatal(err)
		}
		return
	}
	if err := generate(*out, *scanN, *overlap, *slices, *window, *radius, *kind, *dose, *seed, *stream, *chunk); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}

func generate(out string, scanN int, overlap float64, slices, window int,
	radius float64, kind string, dose float64, seed int64, stream bool, chunk int) error {
	step := scan.StepForOverlap(radius, overlap)
	pat, err := scan.Raster(scan.RasterConfig{
		Cols: scanN, Rows: scanN, StepPix: step, RadiusPix: radius,
		MarginPix: float64(window)/2 + 2,
	})
	if err != nil {
		return err
	}
	var obj *phantom.Object
	switch kind {
	case "pbtio3":
		cfg := phantom.DefaultLeadTitanate(pat.ImageW, pat.ImageH, slices)
		cfg.Seed = seed
		if pat.ImageW < 160 {
			cfg.UnitCellPix = float64(pat.ImageW) / 5
		}
		if obj, err = phantom.LeadTitanate(cfg); err != nil {
			return err
		}
	case "random":
		obj = phantom.RandomObject(pat.ImageW, pat.ImageH, slices, seed)
	default:
		return fmt.Errorf("unknown phantom %q (want pbtio3 or random)", kind)
	}
	prob, err := solver.Simulate(solver.SimulateConfig{
		Optics:        physics.PaperOptics(),
		Pattern:       pat,
		Object:        obj,
		WindowN:       window,
		DoseElectrons: dose,
		Seed:          seed,
	})
	if err != nil {
		return err
	}
	if stream {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := dataio.WriteStream(f, prob, chunk); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	} else if err := dataio.WriteFile(out, prob); err != nil {
		return err
	}
	fi, err := os.Stat(out)
	if err != nil {
		return err
	}
	format := "PTYCHOv1"
	if stream {
		format = "PTYCHSv2"
	}
	fmt.Printf("wrote %s (%s): %d locations, %dx%d image, %d slices, window %d (%.1f MB)\n",
		out, format, pat.N(), pat.ImageW, pat.ImageH, slices, window,
		float64(fi.Size())/1e6)
	return nil
}

func printInfo(path string) error {
	prob, err := dataio.ReadFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s:\n", path)
	fmt.Printf("  probe locations     %d\n", prob.Pattern.N())
	fmt.Printf("  image extent        %dx%d px\n", prob.Pattern.ImageW, prob.Pattern.ImageH)
	fmt.Printf("  object slices       %d\n", prob.Slices)
	fmt.Printf("  window / detector   %dx%d px\n", prob.WindowN, prob.WindowN)
	fmt.Printf("  scan step           %.3f px\n", prob.Pattern.StepPix)
	fmt.Printf("  probe radius        %.3f px\n", prob.Pattern.RadiusPix)
	overlap := 1 - prob.Pattern.StepPix/(2*prob.Pattern.RadiusPix)
	fmt.Printf("  overlap ratio       %.0f%%\n", 100*overlap)
	fmt.Printf("  propagator          %v\n", prob.Prop != nil)
	return nil
}
