// Command ptychofeed replays an existing PTYCHOv1 dataset against a
// running ptychoserve as a LIVE acquisition: it opens a streaming job
// from the dataset's geometry, then pushes the diffraction frames in
// rate-limited chunks exactly as a beamline detector would, honoring
// the server's 429 backpressure, and finally closes the stream. It is
// the demo driver and the end-to-end test vehicle for the streaming
// subsystem — point it at any dataset and watch previews sharpen
// while "acquisition" is still underway.
//
// ptychofeed speaks the versioned /v1 API exclusively, through the
// typed SDK in the top-level client package — idempotent submission,
// typed problem-envelope errors, and Retry-After-honoring backoff all
// come from the SDK rather than hand-rolled HTTP.
//
// Usage:
//
//	ptychofeed -file dataset.ptycho [-server http://127.0.0.1:8617]
//	           [-chunk 16] [-interval 200ms] [-alg serial] [-step 0.01]
//	           [-iters 20] [-fold-every 1] [-checkpoint-every 5]
//	           [-mesh 2x2] [-wait]
//
// -iters is the tail: iterations run over the complete dataset after
// the feed closes the stream. With -wait, ptychofeed polls the job to
// completion and exits non-zero if it did not finish Done.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"ptychopath/client"
	"ptychopath/internal/dataio"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:8617", "ptychoserve base URL")
	file := flag.String("file", "", "PTYCHOv1 dataset to replay (required)")
	chunk := flag.Int("chunk", 16, "frames per chunk")
	interval := flag.Duration("interval", 200*time.Millisecond, "delay between chunks (acquisition rate)")
	alg := flag.String("alg", "serial", "reconstruction algorithm: serial or gd")
	step := flag.Float64("step", 0, "gradient step size (0 = server default)")
	iters := flag.Int("iters", 20, "tail iterations after the stream closes")
	foldEvery := flag.Int("fold-every", 0, "iterations between ingest folds (0 = server default)")
	ckEvery := flag.Int("checkpoint-every", 0, "iterations between checkpoints/previews (0 = server default)")
	mesh := flag.String("mesh", "", "gd tile mesh, ROWSxCOLS")
	wait := flag.Bool("wait", false, "poll the job to completion and report the outcome")
	flag.Parse()

	if *file == "" {
		fmt.Fprintln(os.Stderr, "ptychofeed: -file is required")
		os.Exit(2)
	}
	if err := run(*server, *file, *chunk, *interval, *alg, *step, *iters, *foldEvery, *ckEvery, *mesh, *wait); err != nil {
		fmt.Fprintln(os.Stderr, "ptychofeed:", err)
		os.Exit(1)
	}
}

func run(server, file string, chunk int, interval time.Duration, alg string,
	step float64, iters, foldEvery, ckEvery int, mesh string, wait bool) error {
	if chunk <= 0 {
		return fmt.Errorf("chunk must be positive, got %d", chunk)
	}
	req := client.SubmitRequest{
		Algorithm:       alg,
		Iterations:      iters,
		StepSize:        step,
		FoldEvery:       foldEvery,
		CheckpointEvery: ckEvery,
	}
	if mesh != "" {
		rows, cols, ok := strings.Cut(strings.ToLower(mesh), "x")
		if !ok {
			return fmt.Errorf("mesh %q: want ROWSxCOLS", mesh)
		}
		var err error
		if req.MeshRows, err = strconv.Atoi(rows); err != nil {
			return fmt.Errorf("mesh %q: %w", mesh, err)
		}
		if req.MeshCols, err = strconv.Atoi(cols); err != nil {
			return fmt.Errorf("mesh %q: %w", mesh, err)
		}
	}

	prob, err := dataio.ReadFile(file)
	if err != nil {
		return err
	}
	frames := dataio.FramesFromProblem(prob)
	fmt.Printf("ptychofeed: replaying %s: %d frames in chunks of %d every %v\n",
		file, len(frames), chunk, interval)

	ctx := context.Background()
	// A detector pipeline never gives up on backpressure: the frames
	// exist only once. Effectively unbounded retries (the SDK default
	// of 8 would abort an acquisition after ~8s of solver lag).
	c, err := client.New(server,
		client.WithRetry(math.MaxInt32, 30*time.Second),
		client.WithRetryNotify(func(err error, delay time.Duration) {
			fmt.Printf("ptychofeed: server busy (%v), backing off %v\n", err, delay)
		}))
	if err != nil {
		return err
	}

	// Open the streaming job from the dataset's geometry alone.
	var opening bytes.Buffer
	if err := dataio.WriteStreamHeader(&opening, dataio.HeaderFromProblem(prob)); err != nil {
		return err
	}
	job, err := c.SubmitStreaming(ctx, req, &opening)
	if err != nil {
		return fmt.Errorf("opening stream job: %w", err)
	}
	fmt.Printf("ptychofeed: opened %s (%s)\n", job.ID, job.State)

	// Feed the frames. Backoff on a full ingest is the SDK's job — it
	// retries the same chunk after the server's Retry-After hint
	// (acceptance is all-or-nothing, so the retry cannot double-feed).
	for lo := 0; lo < len(frames); lo += chunk {
		hi := min(lo+chunk, len(frames))
		var body bytes.Buffer
		if err := dataio.WriteFrameChunk(&body, prob.WindowN, frames[lo:hi]); err != nil {
			return err
		}
		ack, err := c.AppendFrames(ctx, job.ID, body.Bytes())
		if err != nil {
			return fmt.Errorf("chunk [%d,%d): %w", lo, hi, err)
		}
		fmt.Printf("ptychofeed: fed frames [%d,%d) — %d/%d ingested\n", lo, hi, ack.Total, len(frames))
		if hi < len(frames) {
			time.Sleep(interval)
		}
	}

	if _, err := c.CloseStream(ctx, job.ID); err != nil {
		return fmt.Errorf("closing stream: %w", err)
	}
	fmt.Println("ptychofeed: stream closed; job finishing its tail iterations")
	jobURL := strings.TrimRight(server, "/") + "/v1/jobs/" + job.ID
	if !wait {
		fmt.Printf("ptychofeed: follow with  curl -N %s/events\n", jobURL)
		return nil
	}

	final, err := c.Wait(ctx, job.ID)
	if err != nil {
		return err
	}
	if final.State != client.StateDone {
		return fmt.Errorf("job %s %s: %s", final.ID, final.State, final.Error)
	}
	fmt.Printf("ptychofeed: %s done — %d iterations, %d folds, %d frames, final cost %.6g\n",
		final.ID, final.Iter, final.Folds, final.Frames, final.Cost)
	fmt.Printf("ptychofeed: preview at %s/preview.png, object at %s/object\n", jobURL, jobURL)
	return nil
}
