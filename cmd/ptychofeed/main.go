// Command ptychofeed replays an existing PTYCHOv1 dataset against a
// running ptychoserve as a LIVE acquisition: it opens a streaming job
// from the dataset's geometry, then pushes the diffraction frames in
// rate-limited chunks exactly as a beamline detector would, honoring
// the server's 429 backpressure, and finally closes the stream. It is
// the demo driver and the end-to-end test vehicle for the streaming
// subsystem — point it at any dataset and watch previews sharpen
// while "acquisition" is still underway.
//
// Usage:
//
//	ptychofeed -file dataset.ptycho [-server http://127.0.0.1:8617]
//	           [-chunk 16] [-interval 200ms] [-alg serial] [-step 0.01]
//	           [-iters 20] [-fold-every 1] [-checkpoint-every 5]
//	           [-mesh 2x2] [-wait]
//
// -iters is the tail: iterations run over the complete dataset after
// the feed closes the stream. With -wait, ptychofeed polls the job to
// completion and exits non-zero if it did not finish Done.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"ptychopath/internal/dataio"
	"ptychopath/internal/jobs"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:8617", "ptychoserve base URL")
	file := flag.String("file", "", "PTYCHOv1 dataset to replay (required)")
	chunk := flag.Int("chunk", 16, "frames per chunk")
	interval := flag.Duration("interval", 200*time.Millisecond, "delay between chunks (acquisition rate)")
	alg := flag.String("alg", "serial", "reconstruction algorithm: serial or gd")
	step := flag.Float64("step", 0, "gradient step size (0 = server default)")
	iters := flag.Int("iters", 20, "tail iterations after the stream closes")
	foldEvery := flag.Int("fold-every", 0, "iterations between ingest folds (0 = server default)")
	ckEvery := flag.Int("checkpoint-every", 0, "iterations between checkpoints/previews (0 = server default)")
	mesh := flag.String("mesh", "", "gd tile mesh, ROWSxCOLS")
	wait := flag.Bool("wait", false, "poll the job to completion and report the outcome")
	flag.Parse()

	if *file == "" {
		fmt.Fprintln(os.Stderr, "ptychofeed: -file is required")
		os.Exit(2)
	}
	if err := run(*server, *file, *chunk, *interval, *alg, *step, *iters, *foldEvery, *ckEvery, *mesh, *wait); err != nil {
		fmt.Fprintln(os.Stderr, "ptychofeed:", err)
		os.Exit(1)
	}
}

func run(server, file string, chunk int, interval time.Duration, alg string,
	step float64, iters, foldEvery, ckEvery int, mesh string, wait bool) error {
	if chunk <= 0 {
		return fmt.Errorf("chunk must be positive, got %d", chunk)
	}
	prob, err := dataio.ReadFile(file)
	if err != nil {
		return err
	}
	frames := dataio.FramesFromProblem(prob)
	fmt.Printf("ptychofeed: replaying %s: %d frames in chunks of %d every %v\n",
		file, len(frames), chunk, interval)

	// Open the streaming job from the dataset's geometry alone.
	var opening bytes.Buffer
	if err := dataio.WriteStreamHeader(&opening, dataio.HeaderFromProblem(prob)); err != nil {
		return err
	}
	u := fmt.Sprintf("%s/jobs/stream?alg=%s&iters=%d", server, alg, iters)
	if step > 0 {
		u += fmt.Sprintf("&step=%g", step)
	}
	if foldEvery > 0 {
		u += fmt.Sprintf("&fold-every=%d", foldEvery)
	}
	if ckEvery > 0 {
		u += fmt.Sprintf("&checkpoint-every=%d", ckEvery)
	}
	if mesh != "" {
		u += "&mesh=" + mesh
	}
	var info jobs.Info
	if err := postExpect(u, opening.Bytes(), http.StatusAccepted, &info); err != nil {
		return fmt.Errorf("opening stream job: %w", err)
	}
	fmt.Printf("ptychofeed: opened %s (%s)\n", info.ID, info.State)
	jobURL := server + "/jobs/" + info.ID

	// Feed the frames, backing off on 429 like a well-behaved detector
	// pipeline.
	for lo := 0; lo < len(frames); lo += chunk {
		hi := min(lo+chunk, len(frames))
		var body bytes.Buffer
		if err := dataio.WriteFrameChunk(&body, prob.WindowN, frames[lo:hi]); err != nil {
			return err
		}
		for {
			resp, err := http.Post(jobURL+"/frames", "application/octet-stream", bytes.NewReader(body.Bytes()))
			if err != nil {
				return err
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				backoff := time.Second
				if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
					backoff = time.Duration(ra) * time.Second
				}
				resp.Body.Close()
				fmt.Printf("ptychofeed: ingest full, backing off %v\n", backoff)
				time.Sleep(backoff)
				continue
			}
			var ack struct {
				Accepted int `json:"accepted"`
				Total    int `json:"total"`
			}
			err = decodeOrError(resp, http.StatusOK, &ack)
			if err != nil {
				return fmt.Errorf("chunk [%d,%d): %w", lo, hi, err)
			}
			fmt.Printf("ptychofeed: fed frames [%d,%d) — %d/%d ingested\n", lo, hi, ack.Total, len(frames))
			break
		}
		if hi < len(frames) {
			time.Sleep(interval)
		}
	}

	if err := postExpect(jobURL+"/eof", nil, http.StatusOK, nil); err != nil {
		return fmt.Errorf("closing stream: %w", err)
	}
	fmt.Println("ptychofeed: stream closed; job finishing its tail iterations")
	if !wait {
		fmt.Printf("ptychofeed: follow with  curl -N %s/events\n", jobURL)
		return nil
	}

	for {
		resp, err := http.Get(jobURL)
		if err != nil {
			return err
		}
		var cur jobs.Info
		if err := decodeOrError(resp, http.StatusOK, &cur); err != nil {
			return err
		}
		switch cur.State {
		case "done":
			fmt.Printf("ptychofeed: %s done — %d iterations, %d folds, %d frames, final cost %.6g\n",
				cur.ID, cur.Iter, cur.Folds, cur.Frames, cur.Cost)
			fmt.Printf("ptychofeed: preview at %s/preview.png, object at %s/object\n", jobURL, jobURL)
			return nil
		case "failed", "cancelled":
			return fmt.Errorf("job %s %s: %s", cur.ID, cur.State, cur.Error)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// postExpect POSTs body and decodes the JSON response when the status
// matches.
func postExpect(url string, body []byte, want int, v any) error {
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return err
	}
	return decodeOrError(resp, want, v)
}

// decodeOrError consumes resp: on the wanted status it decodes into v
// (when non-nil); otherwise it surfaces the server's error message.
func decodeOrError(resp *http.Response, want int, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != want {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("status %d: %s", resp.StatusCode, e.Error)
	}
	if v == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
