// Command ptychotop is a live terminal dashboard for a running
// ptychoserve: fleet health at a glance, refreshed in place — the "top"
// of the reconstruction service.
//
// Usage:
//
//	ptychotop [-server http://127.0.0.1:8617] [-interval 2s] [-once]
//
// Each refresh polls GET /v1/status and the job list through the typed
// client SDK and renders: uptime, pool and queue state, per-state job
// counts, prediction accuracy (how well the performance model forecasts
// runtimes, and the live throughput calibration), the grid workers with
// last-seen liveness and transport totals, WAL durability counters, and
// the most recent jobs with predicted-vs-actual runtime and flagged
// straggler ranks.
//
// -once prints a single snapshot without clearing the screen and exits
// with status 0 — the scriptable form (CI smoke-runs it; use it in
// cron/health checks). Without it, the dashboard redraws every
// -interval using ANSI clear codes until interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"ptychopath/client"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:8617", "base URL of the ptychoserve to watch")
	interval := flag.Duration("interval", 2*time.Second, "refresh period")
	once := flag.Bool("once", false, "print one snapshot and exit (no screen clearing)")
	flag.Parse()

	c, err := client.New(*server)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptychotop:", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *once {
		if err := render(ctx, c, os.Stdout, *server); err != nil {
			fmt.Fprintln(os.Stderr, "ptychotop:", err)
			os.Exit(1)
		}
		return
	}
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		var b strings.Builder
		if err := render(ctx, c, &b, *server); err != nil {
			if ctx.Err() != nil {
				return
			}
			b.Reset()
			fmt.Fprintf(&b, "ptychotop: %v (retrying every %s)\n", err, *interval)
		}
		// Clear + home, then the fresh frame in one write to avoid flicker.
		fmt.Fprint(os.Stdout, "\x1b[2J\x1b[H"+b.String())
		select {
		case <-tick.C:
		case <-ctx.Done():
			fmt.Fprintln(os.Stdout)
			return
		}
	}
}

// render writes one dashboard frame from a fresh status + job-list poll.
func render(ctx context.Context, c *client.Client, w interface{ Write([]byte) (int, error) }, server string) error {
	pctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	st, err := c.Status(pctx)
	if err != nil {
		return err
	}
	page, err := c.List(pctx, client.ListOptions{Limit: 100})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "ptychotop — %s — %s up %s\n\n",
		server, st.Time.Local().Format("15:04:05"), fmtDur(time.Duration(st.UptimeSeconds*float64(time.Second))))
	fmt.Fprintf(w, "pool    %d workers (%d idle)   queue %d waiting\n",
		st.Workers, st.WorkersIdle, st.QueueDepth)
	fmt.Fprintf(w, "jobs    %s\n", jobCounts(st.Jobs))
	if st.Prediction.Jobs > 0 {
		fmt.Fprintf(w, "predict %d scored, mean abs error %.1f%%, last ratio %.2f",
			st.Prediction.Jobs, st.Prediction.MeanAbsErrorPct, st.Prediction.LastErrorRatio)
	} else {
		fmt.Fprint(w, "predict no finished jobs scored yet")
	}
	if st.Prediction.CalibrationIters > 0 {
		fmt.Fprintf(w, "   calibration %.3g flops/rank over %d iters", st.Prediction.CalibratedFlops, st.Prediction.CalibrationIters)
	}
	fmt.Fprintln(w)
	if st.WAL != nil {
		fmt.Fprintf(w, "wal     %d records, %d syncs, %d compactions, %d bytes, %d errors\n",
			st.WAL.Records, st.WAL.Syncs, st.WAL.Compactions, st.WAL.Bytes, st.WAL.Errors)
	}

	if len(st.Tenants) > 0 {
		fmt.Fprintf(w, "\nsched %s — %d tenants\n", st.SchedPolicy, len(st.Tenants))
		fmt.Fprintf(w, "  %-16s %6s %6s %8s %9s %7s %7s %6s\n",
			"TENANT", "WEIGHT", "ACTIVE", "SUBMIT", "PREEMPT", "QUOTA!", "DONE", "SHARE")
		for _, ten := range st.Tenants {
			cap := ""
			if ten.MaxActive > 0 {
				cap = fmt.Sprintf("/%d", ten.MaxActive)
			}
			share := "-"
			if ten.Share > 0 {
				share = fmt.Sprintf("%.0f%%", ten.Share*100)
			}
			fmt.Fprintf(w, "  %-16s %6.1f %6s %8d %9d %7d %7s %6s\n",
				trunc(ten.Name, 16), ten.Weight,
				fmt.Sprintf("%d%s", ten.Active, cap), ten.Submitted,
				ten.Preempted, ten.QuotaRejections, fmtSecs(ten.CompletedCostSeconds), share)
		}
	}

	if st.Grid != nil {
		fmt.Fprintf(w, "\ngrid %s — %d workers (%d busy), %d sessions, %s routed\n",
			st.Grid.Addr, len(st.Grid.Workers), st.Grid.Busy, st.Grid.Sessions, fmtBytes(st.Grid.BytesRouted))
		fmt.Fprintf(w, "  %-4s %-24s %-5s %-10s %10s %10s %9s %5s\n",
			"ID", "NAME", "BUSY", "LAST SEEN", "IN", "OUT", "MSGS", "SESS")
		for _, wk := range st.Grid.Workers {
			fmt.Fprintf(w, "  %-4d %-24s %-5v %-10s %10s %10s %9d %5d\n",
				wk.ID, trunc(wk.Name, 24), wk.Busy, sinceShort(wk.LastSeen),
				fmtBytes(wk.BytesIn), fmtBytes(wk.BytesOut), wk.Messages, wk.Sessions)
		}
	}

	jobs := page.Jobs
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Created.After(jobs[j].Created) })
	if len(jobs) > 10 {
		jobs = jobs[:10]
	}
	fmt.Fprintf(w, "\n  %-14s %-9s %-6s %9s %12s %12s %7s %s\n",
		"JOB", "STATE", "ALG", "ITER", "PREDICTED", "ACTUAL", "RATIO", "NOTES")
	for _, j := range jobs {
		iter := fmt.Sprintf("%d", j.Iter)
		if j.TotalIters > 0 {
			iter = fmt.Sprintf("%d/%d", j.Iter, j.TotalIters)
		}
		pred, actual, ratio := "-", "-", "-"
		if j.Prediction != nil {
			pred = fmtSecs(j.Prediction.Seconds)
		}
		if j.ActualSeconds > 0 {
			actual = fmtSecs(j.ActualSeconds)
		}
		if j.PredictionErrorRatio > 0 {
			ratio = fmt.Sprintf("%.2f", j.PredictionErrorRatio)
		}
		var notes []string
		if len(j.StragglerRanks) > 0 {
			notes = append(notes, fmt.Sprintf("stragglers %v", j.StragglerRanks))
		}
		if j.ImbalanceRatio > 1 {
			notes = append(notes, fmt.Sprintf("imbalance %.2f", j.ImbalanceRatio))
		}
		if j.PreemptedCount > 0 {
			notes = append(notes, fmt.Sprintf("preempted x%d", j.PreemptedCount))
		}
		if j.Priority == "interactive" {
			notes = append(notes, "interactive")
		}
		if j.Tenant != "" && j.Tenant != "anonymous" {
			notes = append(notes, "tenant "+j.Tenant)
		}
		if j.RecoveredFrom != "" {
			notes = append(notes, "recovered "+j.RecoveredFrom)
		}
		if j.Error != "" {
			notes = append(notes, trunc(j.Error, 40))
		}
		fmt.Fprintf(w, "  %-14s %-9s %-6s %9s %12s %12s %7s %s\n",
			trunc(j.ID, 14), j.State, j.Algorithm, iter, pred, actual, ratio, strings.Join(notes, "; "))
	}
	return nil
}

// jobCounts renders the per-state counts in lifecycle order.
func jobCounts(counts map[string]int) string {
	var b strings.Builder
	for _, state := range []string{
		client.StateQueued, client.StateRunning, client.StateDone,
		client.StateFailed, client.StateCancelled,
	} {
		if b.Len() > 0 {
			b.WriteString("   ")
		}
		fmt.Fprintf(&b, "%d %s", counts[state], state)
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%dh%02dm", int(d.Hours()), int(d.Minutes())%60)
	case d >= time.Minute:
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	default:
		return fmt.Sprintf("%ds", int(d.Seconds()))
	}
}

func fmtSecs(s float64) string {
	if s < 10 {
		return fmt.Sprintf("%.2fs", s)
	}
	return fmtDur(time.Duration(s * float64(time.Second)))
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// sinceShort renders worker liveness as an age ("3s", "2m11s"); "never"
// for the zero time.
func sinceShort(t time.Time) string {
	if t.IsZero() {
		return "never"
	}
	return fmtDur(time.Since(t).Truncate(time.Second))
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
