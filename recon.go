package ptycho

import (
	"context"
	"fmt"
	"time"

	"ptychopath/internal/grid"
	"ptychopath/internal/gradsync"
	"ptychopath/internal/halo"
	"ptychopath/internal/metrics"
	"ptychopath/internal/phantom"
	"ptychopath/internal/solver"
	"ptychopath/internal/tiling"
)

// Algorithm selects the reconstruction engine.
type Algorithm int

const (
	// Serial runs single-worker gradient descent — the reference.
	Serial Algorithm = iota
	// GradientDecomposition runs the paper's parallel algorithm: tiled
	// gradients, directional accumulation passes, APPP pipelining.
	GradientDecomposition
	// HaloVoxelExchange runs the state-of-the-art baseline the paper
	// compares against.
	HaloVoxelExchange
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Serial:
		return "serial"
	case GradientDecomposition:
		return "gradient-decomposition"
	case HaloVoxelExchange:
		return "halo-voxel-exchange"
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

// ReconstructOptions configures a reconstruction run.
type ReconstructOptions struct {
	Algorithm Algorithm
	// MeshRows and MeshCols shape the tile mesh (parallel algorithms;
	// each tile is one worker, the stand-in for one GPU). Default 2x2.
	MeshRows, MeshCols int
	// StepSize is the gradient-descent step. Default 0.01.
	StepSize float64
	// Iterations is the number of full cycles. Default 20.
	Iterations int
	// RoundsPerIteration is the Gradient Decomposition communication
	// frequency (Alg 1's T, expressed as rounds per iteration; Fig 9).
	// Default 1.
	RoundsPerIteration int
	// FaithfulAlg1 selects the paper's literal Alg 1 (local SGD update
	// per location plus accumulated update). Default false = batch mode,
	// which exactly matches the serial reference.
	FaithfulAlg1 bool
	// DisableAPPP inserts barriers between the directional passes (the
	// Fig 7b ablation); numerics are unchanged.
	DisableAPPP bool
	// SerialSequential switches the serial algorithm to PIE-style
	// per-location updates.
	SerialSequential bool
	// ProbeRefineStep, when positive, enables joint object-probe
	// refinement on the Serial algorithm (aberration correction): each
	// probe update moves the probe by a calibrated fraction of its own
	// magnitude. Typical values 0.02-0.1. The refined probe is returned
	// in Result.RefinedProbe.
	ProbeRefineStep float64
	// HVEExtraRows is the baseline's redundant probe-location rows
	// (paper: 2). Default 1 at laptop scale.
	HVEExtraRows int
	// IntraWorkers is how many goroutines each Gradient Decomposition
	// worker uses for its own gradient computations (the stand-in for
	// GPU-internal parallelism). Batch mode only; <= 1 disables.
	IntraWorkers int
	// OnIteration receives (iteration, cost) as the run progresses.
	OnIteration func(iter int, cost float64)
	// Timeout bounds parallel communication; 0 selects a generous
	// default.
	Timeout time.Duration
	// InitialObject warm-starts the reconstruction from the given
	// slices instead of vacuum — the resume-from-checkpoint path. Must
	// match the dataset's slice count and image size.
	InitialObject []Field
	// Ctx, when non-nil, cancels the run at iteration boundaries. On
	// cancellation Reconstruct returns the PARTIAL Result (slices and
	// cost history so far) together with Ctx's error, so the caller can
	// checkpoint the in-progress object and resume later via
	// InitialObject.
	Ctx context.Context
	// SnapshotEvery, together with OnSnapshot, emits the current object
	// after every SnapshotEvery-th iteration — live previews and
	// periodic checkpoints. The fields are copies owned by the callee.
	// A non-nil error aborts the run.
	SnapshotEvery int
	OnSnapshot    func(iter int, slices []Field) error
}

func (o *ReconstructOptions) setDefaults() {
	if o.MeshRows == 0 {
		o.MeshRows = 2
	}
	if o.MeshCols == 0 {
		o.MeshCols = 2
	}
	if o.StepSize == 0 {
		o.StepSize = 0.01
	}
	if o.Iterations == 0 {
		o.Iterations = 20
	}
	if o.RoundsPerIteration == 0 {
		o.RoundsPerIteration = 1
	}
	if o.HVEExtraRows == 0 {
		o.HVEExtraRows = 1
	}
}

// Result carries a reconstruction and its run statistics.
type Result struct {
	// Slices is the reconstructed object (stitched over tiles for the
	// parallel algorithms).
	Slices []Field
	// CostHistory is F(V) per iteration.
	CostHistory []float64
	// Workers is the number of parallel workers used (1 for Serial).
	Workers int
	// BytesSent / MessagesSent aggregate inter-worker traffic.
	BytesSent    int64
	MessagesSent int64
	// PerRankLocations / PerRankMemBytes hold the per-worker footprint
	// statistics of the parallel algorithms (nil for Serial).
	PerRankLocations []int
	PerRankMemBytes  []int64
	// RefinedProbe holds the jointly-refined probe when
	// ProbeRefineStep was set on a Serial run (zero Field otherwise).
	RefinedProbe Field

	meshRows, meshCols int
	imageW, imageH     int
}

// Reconstruct runs the selected algorithm, starting from
// Options.InitialObject when set (resume / warm start) and from a
// vacuum object otherwise. On cancellation via Options.Ctx it returns
// the partial Result together with the context's error.
func (d *Dataset) Reconstruct(opt ReconstructOptions) (*Result, error) {
	opt.setDefaults()
	bounds := d.prob.ImageBounds()
	init := phantom.Vacuum(bounds, d.prob.Slices)
	if opt.InitialObject != nil {
		if len(opt.InitialObject) != d.prob.Slices {
			return nil, fmt.Errorf("ptycho: initial object has %d slices, dataset has %d",
				len(opt.InitialObject), d.prob.Slices)
		}
		for i, f := range opt.InitialObject {
			if f.W != bounds.W() || f.H != bounds.H() {
				return nil, fmt.Errorf("ptycho: initial object slice %d is %dx%d, dataset image is %dx%d",
					i, f.W, f.H, bounds.W(), bounds.H())
			}
			init.Slices[i] = f.toGrid()
		}
	}
	var onSnapshot func(iter int, slices []*grid.Complex2D) error
	if opt.OnSnapshot != nil {
		onSnapshot = func(iter int, slices []*grid.Complex2D) error {
			return opt.OnSnapshot(iter, toFields(slices))
		}
	}

	res := &Result{imageW: bounds.W(), imageH: bounds.H()}
	switch opt.Algorithm {
	case Serial:
		mode := solver.Batch
		if opt.SerialSequential {
			mode = solver.Sequential
		}
		r, err := solver.Reconstruct(d.prob, init.Slices, solver.Options{
			StepSize: opt.StepSize, Iterations: opt.Iterations,
			Mode: mode, ProbeStepSize: opt.ProbeRefineStep,
			OnIteration: opt.OnIteration,
			Ctx:         opt.Ctx,
			SnapshotEvery: opt.SnapshotEvery, OnSnapshot: onSnapshot,
		})
		if r == nil {
			return nil, err
		}
		res.Slices = toFields(r.Slices)
		res.CostHistory = r.CostHistory
		res.Workers = 1
		if r.RefinedProbe != nil {
			res.RefinedProbe = fieldFrom(r.RefinedProbe)
		}
		return res, err

	case GradientDecomposition:
		mesh, err := d.mesh(opt.MeshRows, opt.MeshCols)
		if err != nil {
			return nil, err
		}
		mode := gradsync.ModeBatch
		if opt.FaithfulAlg1 {
			mode = gradsync.ModeFaithful
		}
		r, err := gradsync.Reconstruct(d.prob, init.Slices, gradsync.Options{
			Mesh: mesh, Mode: mode,
			StepSize: opt.StepSize, Iterations: opt.Iterations,
			RoundsPerIteration: opt.RoundsPerIteration,
			DisableAPPP:        opt.DisableAPPP,
			IntraWorkers:       opt.IntraWorkers,
			Timeout:            opt.Timeout,
			OnIteration:        opt.OnIteration,
			Ctx:                opt.Ctx,
			SnapshotEvery:      opt.SnapshotEvery, OnSnapshot: onSnapshot,
		})
		if r == nil {
			return nil, err
		}
		res.Slices = toFields(r.Slices)
		res.CostHistory = r.CostHistory
		res.Workers = mesh.NumTiles()
		res.BytesSent = r.BytesSent
		res.MessagesSent = r.MessagesSent
		res.PerRankLocations = r.PerRankLocations
		res.PerRankMemBytes = r.PerRankMemBytes
		res.meshRows, res.meshCols = opt.MeshRows, opt.MeshCols
		return res, err

	case HaloVoxelExchange:
		mesh, err := d.mesh(opt.MeshRows, opt.MeshCols)
		if err != nil {
			return nil, err
		}
		r, err := halo.Reconstruct(d.prob, init.Slices, halo.Options{
			Mesh: mesh, HaloWidth: mesh.Halo, ExtraRows: opt.HVEExtraRows,
			StepSize: opt.StepSize, Iterations: opt.Iterations,
			ExchangesPerIteration: opt.RoundsPerIteration,
			Timeout:               opt.Timeout,
			OnIteration:           opt.OnIteration,
			Ctx:                   opt.Ctx,
			SnapshotEvery:         opt.SnapshotEvery, OnSnapshot: onSnapshot,
		})
		if r == nil {
			return nil, err
		}
		res.Slices = toFields(r.Slices)
		res.CostHistory = r.CostHistory
		res.Workers = mesh.NumTiles()
		res.BytesSent = r.BytesSent
		res.MessagesSent = r.MessagesSent
		res.PerRankLocations = r.PerRankLocations
		res.PerRankMemBytes = r.PerRankMemBytes
		res.meshRows, res.meshCols = opt.MeshRows, opt.MeshCols
		return res, err
	}
	return nil, fmt.Errorf("ptycho: unknown algorithm %v", opt.Algorithm)
}

// mesh builds the tile mesh with the halo sized so every tile covers its
// own probe windows (the Gradient Decomposition requirement).
func (d *Dataset) mesh(rows, cols int) (*tiling.Mesh, error) {
	return tiling.NewMesh(d.prob.ImageBounds(), rows, cols,
		tiling.HaloForWindow(d.prob.WindowN))
}

func toFields(slices []*grid.Complex2D) []Field {
	out := make([]Field, len(slices))
	for i, s := range slices {
		out[i] = fieldFrom(s)
	}
	return out
}

// SeamScore quantifies tile-border artifacts in slice s of the result
// (Fig 8): ~1 means seam-free, substantially higher means visible
// copy-paste seams. Requires a parallel reconstruction (the mesh shape
// is remembered from the run).
func (r *Result) SeamScore(s int) (float64, error) {
	if r.meshRows == 0 || r.meshCols == 0 {
		return 0, fmt.Errorf("ptycho: seam score requires a parallel reconstruction")
	}
	img := r.Slices[s].toGrid()
	mesh, err := tiling.NewMesh(img.Bounds, r.meshRows, r.meshCols, 0)
	if err != nil {
		return 0, err
	}
	return metrics.SeamScore(img, mesh), nil
}

// RelativeErrorTo returns ||rec - truth|| / ||truth|| for slice s after
// global-phase alignment.
func (r *Result) RelativeErrorTo(d *Dataset, s int) float64 {
	return metrics.RelativeError(r.Slices[s].toGrid(), d.truth.Slices[s])
}

// ResidualSeamScore evaluates the seam metric on the residual
// (reconstruction minus ground truth, after global-phase alignment) for
// slice s over a meshRows x meshCols tile grid. Reconstruction error
// that concentrates along tile borders — the copy-paste artifact of the
// paper's Fig 8(a) — scores above 1; border-free error scores ~1 or
// below. Using the residual rather than the raw image cancels the
// object's own contrast (atomic lattices dominate raw gradients).
func (d *Dataset) ResidualSeamScore(r *Result, s, meshRows, meshCols int) float64 {
	rec := r.Slices[s].toGrid()
	aligned := metrics.AlignGlobalPhase(rec, d.truth.Slices[s])
	aligned.AddScaled(d.truth.Slices[s], -1)
	mesh, err := tiling.NewMesh(aligned.Bounds, meshRows, meshCols, 0)
	if err != nil {
		return 0
	}
	return metrics.SeamScore(aligned, mesh)
}

// ResidualBorderRatio measures how strongly the reconstruction error of
// slice s concentrates in a band of half-width `band` pixels around the
// interior boundaries of a meshRows x meshCols tile grid: mean |error|
// inside the band over mean |error| outside. Border-localized artifacts
// (the paper's Fig 8(a) copy-paste seams) push the ratio up; an
// algorithm free of border artifacts matches the serial run's ratio.
func (d *Dataset) ResidualBorderRatio(r *Result, s, meshRows, meshCols, band int) float64 {
	rec := r.Slices[s].toGrid()
	aligned := metrics.AlignGlobalPhase(rec, d.truth.Slices[s])
	aligned.AddScaled(d.truth.Slices[s], -1)
	mesh, err := tiling.NewMesh(aligned.Bounds, meshRows, meshCols, 0)
	if err != nil {
		return 0
	}
	return metrics.BorderErrorRatio(aligned, mesh, band)
}
