// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section, plus ablation benches for the design
// choices DESIGN.md calls out. Paper-scale artifacts (Tables II/III,
// Fig 7) run the calibrated discrete-event model; functional artifacts
// (Fig 8, Fig 9) run the real algorithms at laptop scale.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// or print the actual tables with cmd/ptychobench.
package ptycho_test

import (
	"testing"

	"ptychopath"
	"ptychopath/internal/cluster"
	"ptychopath/internal/perfmodel"
)

// BenchmarkTable1DatasetSpecs regenerates Table I's derived quantities
// (sizes, scan steps, flop counts) — trivially fast, present so every
// table has a bench target.
func BenchmarkTable1DatasetSpecs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		small := cluster.SmallLeadTitanate()
		large := cluster.LargeLeadTitanate()
		_ = small.FlopsPerLocation()
		_ = large.FlopsPerLocation()
		_ = small.StepPix()
		_ = large.StepPix()
	}
}

// BenchmarkTable2SmallDataset regenerates Table II: both methods on the
// small Lead Titanate dataset across the paper's GPU counts.
func BenchmarkTable2SmallDataset(b *testing.B) {
	cfg := perfmodel.DefaultConfig(cluster.SmallLeadTitanate())
	cfg.SimIterations = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = cfg.GDTable(perfmodel.PaperGPUCountsSmall)
		_ = cfg.HVETable(perfmodel.PaperGPUCountsSmall)
	}
}

// BenchmarkTable3LargeDataset regenerates Table III on the large
// dataset, including the 4158-GPU Gradient Decomposition run.
func BenchmarkTable3LargeDataset(b *testing.B) {
	cfg := perfmodel.DefaultConfig(cluster.LargeLeadTitanate())
	cfg.SimIterations = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = cfg.GDTable(perfmodel.PaperGPUCountsLarge)
		_ = cfg.HVETable(perfmodel.PaperHVECountsLarge)
	}
}

// BenchmarkFig7aStrongScaling regenerates the strong-scaling curves for
// both datasets.
func BenchmarkFig7aStrongScaling(b *testing.B) {
	smallCfg := perfmodel.DefaultConfig(cluster.SmallLeadTitanate())
	largeCfg := perfmodel.DefaultConfig(cluster.LargeLeadTitanate())
	smallCfg.SimIterations = 1
	largeCfg.SimIterations = 1
	counts := []int{6, 24, 54, 126, 198, 462, 924}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, k := range counts {
			_ = smallCfg.GDRow(k)
			_ = largeCfg.GDRow(k)
		}
	}
}

// BenchmarkFig7bBreakdown regenerates the APPP ablation breakdown at the
// figure's largest GPU count.
func BenchmarkFig7bBreakdown(b *testing.B) {
	cfg := perfmodel.DefaultConfig(cluster.LargeLeadTitanate())
	cfg.SimIterations = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = cfg.GDRow(462)
		_ = cfg.GDRowNoAPPP(462)
	}
}

// fig8Dataset builds the functional seam-study dataset once per process.
func fig8Dataset(b *testing.B) *ptycho.Dataset {
	b.Helper()
	ds, err := ptycho.SimulateDataset(ptycho.SimulateOptions{
		ScanCols: 8, ScanRows: 8, OverlapRatio: 0.75,
		ProbeRadiusPix: 12, WindowN: 24, Slices: 1,
		Phantom: ptycho.PhantomLeadTitanate, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// BenchmarkFig8SeamArtifacts regenerates the functional border-artifact
// comparison (reduced iterations; the full figure comes from
// ptychobench -exp fig8).
func BenchmarkFig8SeamArtifacts(b *testing.B) {
	ds := fig8Dataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gd, err := ds.Reconstruct(ptycho.ReconstructOptions{
			Algorithm: ptycho.GradientDecomposition, MeshRows: 2, MeshCols: 2,
			StepSize: 0.01, Iterations: 6, FaithfulAlg1: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		hve, err := ds.Reconstruct(ptycho.ReconstructOptions{
			Algorithm: ptycho.HaloVoxelExchange, MeshRows: 2, MeshCols: 2,
			StepSize: 0.01, Iterations: 6, HVEExtraRows: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = ds.ResidualBorderRatio(gd, 0, 2, 2, 6)
		_ = ds.ResidualBorderRatio(hve, 0, 2, 2, 6)
	}
}

// BenchmarkFig9Convergence regenerates the communication-frequency
// convergence comparison (reduced size).
func BenchmarkFig9Convergence(b *testing.B) {
	ds, err := ptycho.SimulateDataset(ptycho.SimulateOptions{
		ScanCols: 4, ScanRows: 4, OverlapRatio: 0.75,
		WindowN: 16, Slices: 1, Phantom: ptycho.PhantomRandom, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rounds := range []int{1, 2, 4} {
			_, err := ds.Reconstruct(ptycho.ReconstructOptions{
				Algorithm: ptycho.GradientDecomposition, MeshRows: 2, MeshCols: 2,
				StepSize: 0.01, Iterations: 4,
				RoundsPerIteration: rounds, FaithfulAlg1: true,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationAPPPFunctional measures the functional (goroutine)
// runtime effect of disabling APPP's pipelining — barriers between the
// directional passes.
func BenchmarkAblationAPPPFunctional(b *testing.B) {
	ds := fig8Dataset(b)
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"with-appp", false}, {"without-appp", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := ds.Reconstruct(ptycho.ReconstructOptions{
					Algorithm: ptycho.GradientDecomposition, MeshRows: 2, MeshCols: 2,
					StepSize: 0.01, Iterations: 4, DisableAPPP: mode.disable,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMeshSize measures how the functional reconstruction
// scales with worker count on a fixed dataset.
func BenchmarkAblationMeshSize(b *testing.B) {
	ds := fig8Dataset(b)
	for _, mesh := range []struct {
		name       string
		rows, cols int
	}{{"1x1", 1, 1}, {"1x2", 1, 2}, {"2x2", 2, 2}} {
		b.Run(mesh.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := ds.Reconstruct(ptycho.ReconstructOptions{
					Algorithm: ptycho.GradientDecomposition,
					MeshRows:  mesh.rows, MeshCols: mesh.cols,
					StepSize: 0.01, Iterations: 4,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCommFrequency measures the communication-volume cost
// of Alg 1's T parameter at the functional level.
func BenchmarkAblationCommFrequency(b *testing.B) {
	ds := fig8Dataset(b)
	for _, rounds := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "rounds-1", 4: "rounds-4", 16: "rounds-16"}[rounds], func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				res, err := ds.Reconstruct(ptycho.ReconstructOptions{
					Algorithm: ptycho.GradientDecomposition, MeshRows: 2, MeshCols: 2,
					StepSize: 0.01, Iterations: 2, RoundsPerIteration: rounds,
				})
				if err != nil {
					b.Fatal(err)
				}
				bytes = res.BytesSent
			}
			b.ReportMetric(float64(bytes), "bytes/run")
		})
	}
}

// BenchmarkSerialReference measures the serial reconstruction the
// parallel speedups are judged against.
func BenchmarkSerialReference(b *testing.B) {
	ds := fig8Dataset(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := ds.Reconstruct(ptycho.ReconstructOptions{
			Algorithm: ptycho.Serial, StepSize: 0.01, Iterations: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationHaloWidth regenerates the GD halo-width sensitivity
// sweep (memory and pass traffic vs halo).
func BenchmarkAblationHaloWidth(b *testing.B) {
	cfg := perfmodel.DefaultConfig(cluster.LargeLeadTitanate())
	cfg.SimIterations = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = cfg.HaloSensitivity(462, []float64{300, 600, 1200, 2400})
	}
}

// BenchmarkAblationExtraRows regenerates the HVE redundancy sweep.
func BenchmarkAblationExtraRows(b *testing.B) {
	cfg := perfmodel.DefaultConfig(cluster.LargeLeadTitanate())
	cfg.SimIterations = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = cfg.ExtraRowsSensitivity(198, []int{0, 1, 2, 4})
	}
}

// BenchmarkIntraWorkerScaling measures the functional speedup of
// multi-core gradient computation inside each Gradient Decomposition
// worker (the stand-in for GPU-internal parallelism).
func BenchmarkIntraWorkerScaling(b *testing.B) {
	ds := fig8Dataset(b)
	for _, w := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "workers-1", 2: "workers-2", 4: "workers-4"}[w], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := ds.Reconstruct(ptycho.ReconstructOptions{
					Algorithm: ptycho.GradientDecomposition, MeshRows: 1, MeshCols: 2,
					StepSize: 0.01, Iterations: 3, IntraWorkers: w,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
