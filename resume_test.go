// Checkpoint/resume tests: a reconstruction interrupted after N
// iterations, checkpointed through the OBJCKv1 on-disk format, and
// warm-started from the file must land exactly where an uninterrupted
// 2N-iteration run lands. This is the contract cmd/ptychorecon's
// -checkpoint/-resume flags and the ptychoserve job service build on.
package ptycho_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"ptychopath"
	"ptychopath/internal/dataio"
	"ptychopath/internal/grid"
)

func resumeDataset(t *testing.T) *ptycho.Dataset {
	t.Helper()
	ds, err := ptycho.SimulateDataset(ptycho.SimulateOptions{
		ScanCols: 5, ScanRows: 5, WindowN: 16, Slices: 2,
		Phantom: ptycho.PhantomRandom, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func fieldsToGrids(fields []ptycho.Field) []*grid.Complex2D {
	out := make([]*grid.Complex2D, len(fields))
	for i, f := range fields {
		a := grid.NewComplex2DSize(f.W, f.H)
		copy(a.Data, f.Data)
		out[i] = a
	}
	return out
}

func gridsToFields(grids []*grid.Complex2D) []ptycho.Field {
	out := make([]ptycho.Field, len(grids))
	for i, a := range grids {
		f := ptycho.NewField(a.W(), a.H())
		copy(f.Data, a.Data)
		out[i] = f
	}
	return out
}

// TestSerialResumeThroughCheckpointBitIdentical runs N iterations,
// round-trips the object through an OBJCKv1 file, warm-starts N more,
// and demands bit-identical agreement with an uninterrupted 2N run —
// batch gradient descent is memoryless and the format stores float64
// exactly, so any difference is a resume bug.
func TestSerialResumeThroughCheckpointBitIdentical(t *testing.T) {
	ds := resumeDataset(t)
	const n = 6

	first, err := ds.Reconstruct(ptycho.ReconstructOptions{
		Algorithm: ptycho.Serial, Iterations: n,
	})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "halfway.objck")
	if err := dataio.WriteObjectFile(path, fieldsToGrids(first.Slices)); err != nil {
		t.Fatal(err)
	}
	loaded, err := dataio.ReadObjectFile(path)
	if err != nil {
		t.Fatal(err)
	}

	resumed, err := ds.Reconstruct(ptycho.ReconstructOptions{
		Algorithm: ptycho.Serial, Iterations: n,
		InitialObject: gridsToFields(loaded),
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := ds.Reconstruct(ptycho.ReconstructOptions{
		Algorithm: ptycho.Serial, Iterations: 2 * n,
	})
	if err != nil {
		t.Fatal(err)
	}
	for s := range full.Slices {
		for i, v := range full.Slices[s].Data {
			if resumed.Slices[s].Data[i] != v {
				t.Fatalf("slice %d pixel %d: resumed %v != uninterrupted %v",
					s, i, resumed.Slices[s].Data[i], v)
			}
		}
	}
	// The resumed cost history continues the uninterrupted one.
	for i, c := range resumed.CostHistory {
		if full.CostHistory[n+i] != c {
			t.Fatalf("iteration %d: resumed cost %g != uninterrupted %g", n+i, c, full.CostHistory[n+i])
		}
	}
}

// TestGradientDecompositionResumeMatches does the same through the
// parallel engine: the stitched checkpoint restarts the tiled run and
// must match the uninterrupted trajectory to machine precision (tile
// summation order may differ in the last bits).
func TestGradientDecompositionResumeMatches(t *testing.T) {
	ds := resumeDataset(t)
	const n = 4
	opts := func(iters int, init []ptycho.Field) ptycho.ReconstructOptions {
		return ptycho.ReconstructOptions{
			Algorithm: ptycho.GradientDecomposition, MeshRows: 2, MeshCols: 2,
			Iterations: iters, InitialObject: init,
		}
	}
	first, err := ds.Reconstruct(opts(n, nil))
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ds.Reconstruct(opts(n, first.Slices))
	if err != nil {
		t.Fatal(err)
	}
	full, err := ds.Reconstruct(opts(2*n, nil))
	if err != nil {
		t.Fatal(err)
	}
	for s := range full.Slices {
		for i, v := range full.Slices[s].Data {
			got := resumed.Slices[s].Data[i]
			if d := cabs(got - v); d > 1e-12 {
				t.Fatalf("slice %d pixel %d: |resumed-uninterrupted| = %g", s, i, d)
			}
		}
	}
}

func cabs(v complex128) float64 {
	re, im := real(v), imag(v)
	if re < 0 {
		re = -re
	}
	if im < 0 {
		im = -im
	}
	if re > im {
		return re
	}
	return im
}

// TestPublicCancellation: the public API honors Ctx at iteration
// boundaries and returns the partial result for checkpointing.
func TestPublicCancellation(t *testing.T) {
	ds := resumeDataset(t)
	ctx, cancel := context.WithCancel(context.Background())
	res, err := ds.Reconstruct(ptycho.ReconstructOptions{
		Algorithm: ptycho.Serial, Iterations: 50,
		Ctx: ctx,
		OnIteration: func(iter int, cost float64) {
			if iter == 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.CostHistory) != 3 {
		t.Fatalf("partial result missing or wrong length: %+v", res)
	}
	if len(res.Slices) != ds.NumSlices() {
		t.Fatalf("partial result has %d slices, want %d", len(res.Slices), ds.NumSlices())
	}
}

// TestPublicSnapshots: OnSnapshot delivers Field copies at the period.
func TestPublicSnapshots(t *testing.T) {
	ds := resumeDataset(t)
	var iters []int
	_, err := ds.Reconstruct(ptycho.ReconstructOptions{
		Algorithm: ptycho.Serial, Iterations: 6, SnapshotEvery: 3,
		OnSnapshot: func(iter int, slices []ptycho.Field) error {
			iters = append(iters, iter)
			if len(slices) != ds.NumSlices() {
				t.Errorf("snapshot has %d slices, want %d", len(slices), ds.NumSlices())
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != 2 || iters[0] != 2 || iters[1] != 5 {
		t.Fatalf("snapshot iterations %v, want [2 5]", iters)
	}
}

// TestInitialObjectValidation rejects geometry mismatches.
func TestInitialObjectValidation(t *testing.T) {
	ds := resumeDataset(t)
	if _, err := ds.Reconstruct(ptycho.ReconstructOptions{
		Algorithm: ptycho.Serial, Iterations: 1,
		InitialObject: []ptycho.Field{ptycho.NewField(4, 4)},
	}); err == nil {
		t.Fatal("wrong slice count accepted")
	}
	wrong := make([]ptycho.Field, ds.NumSlices())
	for i := range wrong {
		wrong[i] = ptycho.NewField(4, 4)
	}
	if _, err := ds.Reconstruct(ptycho.ReconstructOptions{
		Algorithm: ptycho.Serial, Iterations: 1,
		InitialObject: wrong,
	}); err == nil {
		t.Fatal("wrong image size accepted")
	}
}
