package ptycho_test

import (
	"fmt"

	"ptychopath"
)

// ExampleSimulateDataset shows the minimal simulate step: a 4x4 scan
// over a random object.
func ExampleSimulateDataset() {
	ds, err := ptycho.SimulateDataset(ptycho.SimulateOptions{
		ScanCols: 4, ScanRows: 4,
		Phantom: ptycho.PhantomRandom,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("locations:", ds.NumLocations())
	fmt.Println("window:", ds.WindowN())
	// Output:
	// locations: 16
	// window: 16
}

// ExampleDataset_Reconstruct runs the paper's Gradient Decomposition on
// four workers and checks it converged.
func ExampleDataset_Reconstruct() {
	ds, err := ptycho.SimulateDataset(ptycho.SimulateOptions{
		ScanCols: 4, ScanRows: 4, Phantom: ptycho.PhantomRandom,
	})
	if err != nil {
		panic(err)
	}
	res, err := ds.Reconstruct(ptycho.ReconstructOptions{
		Algorithm: ptycho.GradientDecomposition,
		MeshRows:  2, MeshCols: 2,
		StepSize: 0.02, Iterations: 10,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("workers:", res.Workers)
	fmt.Println("converged:", res.CostHistory[9] < res.CostHistory[0])
	// Output:
	// workers: 4
	// converged: true
}

// ExampleAlgorithm_String lists the available engines.
func ExampleAlgorithm_String() {
	fmt.Println(ptycho.Serial)
	fmt.Println(ptycho.GradientDecomposition)
	fmt.Println(ptycho.HaloVoxelExchange)
	// Output:
	// serial
	// gradient-decomposition
	// halo-voxel-exchange
}

// ExampleResult_RelativeErrorTo evaluates reconstruction quality against
// the simulation's ground truth.
func ExampleResult_RelativeErrorTo() {
	ds, err := ptycho.SimulateDataset(ptycho.SimulateOptions{
		ScanCols: 4, ScanRows: 4, Phantom: ptycho.PhantomRandom,
	})
	if err != nil {
		panic(err)
	}
	res, err := ds.Reconstruct(ptycho.ReconstructOptions{
		Algorithm: ptycho.Serial, StepSize: 0.02, Iterations: 15,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("error below 10%:", res.RelativeErrorTo(ds, 0) < 0.1)
	// Output:
	// error below 10%: true
}
