// Quickstart: simulate a small ptychography acquisition and reconstruct
// it with the paper's parallel Gradient Decomposition algorithm in a few
// lines of the public API.
package main

import (
	"fmt"
	"log"

	"ptychopath"
)

func main() {
	// 1. Simulate an acquisition: a 6x6 raster scan over a PbTiO3-like
	// crystal with 75% probe overlap (the paper's high-overlap regime).
	ds, err := ptycho.SimulateDataset(ptycho.SimulateOptions{
		ScanCols: 6, ScanRows: 6,
		OverlapRatio: 0.75,
		Slices:       2,
		Phantom:      ptycho.PhantomLeadTitanate,
	})
	if err != nil {
		log.Fatal(err)
	}
	w, h := ds.ImageSize()
	fmt.Printf("simulated %d probe locations over a %dx%d px, %d-slice object\n",
		ds.NumLocations(), w, h, ds.NumSlices())

	// 2. Reconstruct with Gradient Decomposition on a 2x2 worker mesh
	// (each worker stands in for one GPU of the paper's Summit runs).
	res, err := ds.Reconstruct(ptycho.ReconstructOptions{
		Algorithm:  ptycho.GradientDecomposition,
		MeshRows:   2,
		MeshCols:   2,
		StepSize:   0.02,
		Iterations: 15,
		OnIteration: func(it int, cost float64) {
			fmt.Printf("  iteration %2d: cost %.5g\n", it+1, cost)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the result.
	fmt.Printf("\n%d workers exchanged %.1f kB of gradients in %d messages\n",
		res.Workers, float64(res.BytesSent)/1e3, res.MessagesSent)
	fmt.Printf("relative error vs ground truth: %.4f\n", res.RelativeErrorTo(ds, 0))
	fmt.Printf("cost reduced %.5g -> %.5g over %d iterations\n",
		res.CostHistory[0], res.CostHistory[len(res.CostHistory)-1], len(res.CostHistory))

	// 4. Save the reconstructed phase image.
	if err := ptycho.SavePNG("quickstart_phase.png", ptycho.PhaseImage(res.Slices[0])); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart_phase.png")
}
