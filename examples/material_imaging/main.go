// Material imaging: the paper's motivating workload — multi-slice
// electron ptychography of a Lead Titanate (PbTiO3) crystal, the
// material used for ultrasound transducers and ceramic capacitors
// (paper Sec. VI-A, Fig 6).
//
// This example walks the full scientific workflow: simulate a defocused
// 200 keV acquisition with shot noise, reconstruct the 3-D object
// (multiple slices) in parallel, and quantify how well the atomic
// lattice was recovered slice by slice.
package main

import (
	"fmt"
	"log"

	"ptychopath"
)

func main() {
	const slices = 3

	// The paper's acquisition: 200 keV beam, 25 nm defocus, 30 mrad
	// probe-forming aperture (the SimulateOptions default), with
	// realistic detector shot noise.
	ds, err := ptycho.SimulateDataset(ptycho.SimulateOptions{
		ScanCols: 8, ScanRows: 8,
		OverlapRatio:   0.8, // deep overlap, the regime HVE struggles in
		ProbeRadiusPix: 10,
		WindowN:        24,
		Slices:         slices,
		Phantom:        ptycho.PhantomLeadTitanate,
		DoseElectrons:  5e5,
		Seed:           7,
	})
	if err != nil {
		log.Fatal(err)
	}
	w, h := ds.ImageSize()
	fmt.Printf("PbTiO3 acquisition: %d locations, %dx%d px, %d slices, 80%% overlap, shot noise\n",
		ds.NumLocations(), w, h, slices)

	// Reconstruct with the paper's Alg 1 exactly: per-location local
	// updates plus accumulated gradient exchanges once per iteration.
	res, err := ds.Reconstruct(ptycho.ReconstructOptions{
		Algorithm:    ptycho.GradientDecomposition,
		MeshRows:     2,
		MeshCols:     2,
		StepSize:     0.01,
		Iterations:   25,
		FaithfulAlg1: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged: cost %.5g -> %.5g\n",
		res.CostHistory[0], res.CostHistory[len(res.CostHistory)-1])
	for s := 0; s < slices; s++ {
		fmt.Printf("  slice %d: relative error vs ground truth %.4f\n",
			s, res.RelativeErrorTo(ds, s))
	}

	// Per-worker accounting — the quantities Tables II/III report at
	// Summit scale.
	fmt.Println("per-worker footprint (the paper's per-GPU memory column, laptop scale):")
	for rank, mem := range res.PerRankMemBytes {
		fmt.Printf("  worker %d: %d probe locations, %.2f MB\n",
			rank, res.PerRankLocations[rank], float64(mem)/1e6)
	}

	for s := 0; s < slices; s++ {
		name := fmt.Sprintf("pbtio3_slice%d_phase.png", s)
		if err := ptycho.SavePNG(name, ptycho.PhaseImage(res.Slices[s])); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", name)
	}
}
