// Seam study: reproduce the qualitative comparison of the paper's Fig 8
// — Halo Voxel Exchange leaves artifacts at tile borders, Gradient
// Decomposition does not — and write the phase images plus residual maps
// so the difference can be inspected visually.
package main

import (
	"fmt"
	"log"

	"ptychopath"
)

func main() {
	ds, err := ptycho.SimulateDataset(ptycho.SimulateOptions{
		ScanCols: 12, ScanRows: 12, OverlapRatio: 0.75,
		ProbeRadiusPix: 12, WindowN: 24,
		Slices: 1, Phantom: ptycho.PhantomLeadTitanate, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	w, h := ds.ImageSize()
	fmt.Printf("dataset: %d locations over %dx%d px\n", ds.NumLocations(), w, h)

	const (
		meshR, meshC = 2, 2
		iters        = 30
		band         = 6
	)
	run := func(alg ptycho.Algorithm, label string) *ptycho.Result {
		res, err := ds.Reconstruct(ptycho.ReconstructOptions{
			Algorithm: alg, MeshRows: meshR, MeshCols: meshC,
			StepSize: 0.01, Iterations: iters,
			FaithfulAlg1: true, HVEExtraRows: 1,
			SerialSequential: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s cost %.5g -> %.5g, error vs truth %.4f\n",
			label, res.CostHistory[0], res.CostHistory[len(res.CostHistory)-1],
			res.RelativeErrorTo(ds, 0))
		return res
	}

	serial := run(ptycho.Serial, "serial reference")
	gd := run(ptycho.GradientDecomposition, "gradient decomposition")
	hve := run(ptycho.HaloVoxelExchange, "halo voxel exchange")

	base := ds.ResidualBorderRatio(serial, 0, meshR, meshC, band)
	fmt.Println("\nborder-error concentration (error near tile borders / elsewhere):")
	fmt.Printf("  serial (no tiles, reference)  %.3f\n", base)
	fmt.Printf("  gradient decomposition        %.3f (%.2fx serial — seam-free)\n",
		ds.ResidualBorderRatio(gd, 0, meshR, meshC, band),
		ds.ResidualBorderRatio(gd, 0, meshR, meshC, band)/base)
	fmt.Printf("  halo voxel exchange           %.3f (%.2fx serial — border artifacts)\n",
		ds.ResidualBorderRatio(hve, 0, meshR, meshC, band),
		ds.ResidualBorderRatio(hve, 0, meshR, meshC, band)/base)

	for name, res := range map[string]*ptycho.Result{
		"seam_gd": gd, "seam_hve": hve, "seam_serial": serial,
	} {
		if err := ptycho.SavePNG(name+"_phase.png", ptycho.PhaseImage(res.Slices[0])); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote " + name + "_phase.png")
	}
	if err := ptycho.SavePNG("seam_truth_phase.png",
		ptycho.PhaseImage(ds.GroundTruthSlice(0))); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote seam_truth_phase.png")
}
