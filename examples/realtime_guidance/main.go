// Real-time guidance: the paper's introduction motivates fast
// reconstruction by the need to reconstruct WHILE collecting data and
// use the partial result to steer the acquisition on-the-fly.
//
// This example simulates that loop: diffraction patterns arrive scan row
// by scan row; after each batch the object is re-reconstructed from the
// measurements received so far, and a simple acquisition monitor watches
// the reconstruction error to decide whether the scan can stop early
// (e.g. the sample region proved uninteresting or the quality target was
// already met).
package main

import (
	"fmt"
	"log"

	"ptychopath"
)

func main() {
	const (
		scanRows   = 8
		scanCols   = 8
		qualityBar = 0.045 // relative-error target for "good enough"
	)

	// The "instrument": a full pre-simulated acquisition we reveal one
	// scan row at a time.
	full, err := ptycho.SimulateDataset(ptycho.SimulateOptions{
		ScanCols: scanCols, ScanRows: scanRows,
		OverlapRatio: 0.75, Slices: 1,
		Phantom: ptycho.PhantomLeadTitanate, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streaming acquisition: %d rows of %d probe locations\n", scanRows, scanCols)

	errs := map[int]float64{}
	for rows := 2; rows <= scanRows; rows++ {
		// Re-simulate the world as seen so far: only the first `rows`
		// scan rows have been acquired. (A real instrument would append
		// measurements; the simulation regenerates the same prefix —
		// same seed, same optics — so the data match exactly.)
		partial, err := ptycho.SimulateDataset(ptycho.SimulateOptions{
			ScanCols: scanCols, ScanRows: rows,
			OverlapRatio: 0.75, Slices: 1,
			Phantom: ptycho.PhantomLeadTitanate, Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := partial.Reconstruct(ptycho.ReconstructOptions{
			Algorithm: ptycho.GradientDecomposition,
			MeshRows:  1, MeshCols: 2, // thin mesh matching the partial strip
			StepSize: 0.02, Iterations: 10,
		})
		if err != nil {
			log.Fatal(err)
		}
		errs[rows] = res.RelativeErrorTo(partial, 0)
		fmt.Printf("  after row %d/%d: cost %.5g, relative error %.4f\n",
			rows, scanRows, res.CostHistory[len(res.CostHistory)-1], errs[rows])
	}
	// The guidance decision: the earliest row at which the running
	// reconstruction already met the quality bar — everything after it
	// was acquisition time a live experiment could have saved.
	stop := scanRows
	for rows := 2; rows <= scanRows; rows++ {
		if errs[rows] < qualityBar {
			stop = rows
			break
		}
	}
	if stop < scanRows {
		fmt.Printf("guidance: quality %.3f reached after row %d — %d of %d rows (%.0f%%) of beam time saved\n",
			qualityBar, stop, scanRows-stop, scanRows, 100*float64(scanRows-stop)/float64(scanRows))
	} else {
		fmt.Println("guidance: full scan needed for this sample")
	}
	_ = full
}
