// Aberration correction: maximum-likelihood ptychography can refine the
// probe model alongside the object ("correct microscope aberration and
// defects in the reconstruction through complex imaging system
// modeling", paper Sec. II-B) — one of its key advantages over Fourier
// deconvolution methods.
//
// This example simulates a microscope whose assumed defocus is 40% off
// the true value, reconstructs with the wrong probe held fixed, then
// again with joint object-probe refinement, and compares the fits.
package main

import (
	"fmt"
	"log"

	"ptychopath"
)

func main() {
	ds, err := ptycho.SimulateDataset(ptycho.SimulateOptions{
		ScanCols: 6, ScanRows: 6, OverlapRatio: 0.75,
		Slices: 1, Phantom: ptycho.PhantomLeadTitanate, Seed: 9,
		// The instrument lies about its defocus by 40%.
		ProbeDefocusErrorPct: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("acquisition simulated with the TRUE probe; solver receives a probe with 40% extra defocus")

	fixed, err := ds.Reconstruct(ptycho.ReconstructOptions{
		Algorithm: ptycho.Serial, StepSize: 0.02, Iterations: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	refined, err := ds.Reconstruct(ptycho.ReconstructOptions{
		Algorithm: ptycho.Serial, StepSize: 0.02, Iterations: 40,
		ProbeRefineStep: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}

	last := len(fixed.CostHistory) - 1
	fmt.Printf("\nfixed wrong probe:   final cost %.5g, object error %.4f\n",
		fixed.CostHistory[last], fixed.RelativeErrorTo(ds, 0))
	fmt.Printf("probe refinement on: final cost %.5g, object error %.4f\n",
		refined.CostHistory[last], refined.RelativeErrorTo(ds, 0))
	fmt.Printf("data-fit improvement from refinement: %.1f%%\n",
		100*(1-refined.CostHistory[last]/fixed.CostHistory[last]))

	if refined.RefinedProbe.W > 0 {
		if err := ptycho.SavePNG("probe_refined_mag.png",
			ptycho.MagnitudeImage(refined.RefinedProbe)); err != nil {
			log.Fatal(err)
		}
		if err := ptycho.SavePNG("probe_initial_mag.png",
			ptycho.MagnitudeImage(ds.Probe())); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote probe_initial_mag.png and probe_refined_mag.png")
	}
}
