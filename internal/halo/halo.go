// Package halo implements the state-of-the-art baseline the paper
// compares against: the Halo Voxel Exchange method (Nashed et al. 2014,
// Yu et al. 2021; paper Sec. II-C).
//
// Each tile is assigned its own probe locations PLUS the neighboring
// locations within ExtraRows scan rows of its boundary (Fig 2(d)), and
// its halo is widened to cover all of them. Tiles then reconstruct
// independently — including redundant work for the extra locations —
// and, every exchange period, paste their interior voxels into all
// neighbors' halos through synchronous point-to-point communication
// (Fig 2(g)). The copy-paste overwrite is what produces the seam
// artifacts of Fig 8, and the widened halos are what limit memory
// reduction and scalability (Tables II/III).
//
// The method carries an inherent tile-size constraint: a tile must be at
// least as large as its neighbors' halos, or the pasted region cannot be
// sourced from a single owner. At high GPU counts tiles shrink below the
// halo width and the method cannot run — reproduced here as
// ErrTileTooSmall and reported as "NA", matching Table II(b).
package halo

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ptychopath/internal/collective"
	"ptychopath/internal/grid"
	"ptychopath/internal/simmpi"
	"ptychopath/internal/solver"
	"ptychopath/internal/tiling"
)

// ErrTileTooSmall reports the baseline's algorithmic scaling limit: the
// interior tile is smaller than the halo that neighbors need pasted.
var ErrTileTooSmall = errors.New("halo: tile smaller than neighbor halo width (method cannot scale this far; see Table II(b) 'NA')")

// Options configures a Halo Voxel Exchange reconstruction.
type Options struct {
	Mesh *tiling.Mesh
	// HaloWidth is the voxel-exchange halo in pixels. The paper uses a
	// wider halo than Gradient Decomposition (890 pm vs 600 pm) because
	// it must cover the extra probe locations. Must be >= Mesh.Halo.
	HaloWidth int
	// ExtraRows is how many rows of neighboring probe locations each
	// tile additionally reconstructs (paper: 2).
	ExtraRows int
	// StepSize is the local gradient-descent step.
	StepSize float64
	// Iterations is the number of full cycles.
	Iterations int
	// ExchangesPerIteration is how many voxel copy-paste exchanges run
	// per iteration (>= 1).
	ExchangesPerIteration int
	// Timeout bounds blocking communication.
	Timeout time.Duration
	// OnIteration, when non-nil, receives the global cost per iteration
	// (measured over owned locations only, like the GD solver).
	OnIteration func(iter int, cost float64)
	// Ctx, when non-nil, cancels the run at iteration boundaries. The
	// decision is collective (all-reduced) so every rank stops at the
	// same iteration; Reconstruct then returns the PARTIAL stitched
	// Result together with Ctx's error.
	Ctx context.Context
	// SnapshotEvery, together with OnSnapshot, emits periodic object
	// snapshots: after every SnapshotEvery-th iteration the tiles are
	// stitched and OnSnapshot runs on rank 0 with the 0-based iteration
	// index and the stitched slices (freshly allocated — safe to
	// retain). A non-nil error aborts the run on every rank.
	SnapshotEvery int
	OnSnapshot    func(iter int, slices []*grid.Complex2D) error
}

func (o *Options) validate(prob *solver.Problem) error {
	if o.Mesh == nil {
		return fmt.Errorf("halo: nil mesh")
	}
	if o.HaloWidth < 0 {
		return fmt.Errorf("halo: negative halo width %d", o.HaloWidth)
	}
	if o.ExtraRows < 0 {
		return fmt.Errorf("halo: negative extra rows %d", o.ExtraRows)
	}
	if o.StepSize <= 0 {
		return fmt.Errorf("halo: step size must be positive, got %g", o.StepSize)
	}
	if o.Iterations <= 0 {
		return fmt.Errorf("halo: iterations must be positive, got %d", o.Iterations)
	}
	if o.ExchangesPerIteration < 0 {
		return fmt.Errorf("halo: negative exchanges per iteration")
	}
	if err := prob.Validate(); err != nil {
		return err
	}
	if !o.Mesh.Image.Eq(prob.ImageBounds()) {
		return fmt.Errorf("halo: mesh image %v != problem image %v", o.Mesh.Image, prob.ImageBounds())
	}
	return nil
}

// CheckTileConstraint returns ErrTileTooSmall when any interior tile is
// narrower than the exchange halo — the baseline's scalability ceiling.
func CheckTileConstraint(m *tiling.Mesh, haloWidth int) error {
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			tile := m.Tile(r, c)
			if tile.W() < haloWidth || tile.H() < haloWidth {
				return fmt.Errorf("%w: tile (%d,%d) is %dx%d, halo %d",
					ErrTileTooSmall, r, c, tile.W(), tile.H(), haloWidth)
			}
		}
	}
	return nil
}

// Result carries the stitched reconstruction and run statistics.
type Result struct {
	Slices      []*grid.Complex2D
	CostHistory []float64
	// BytesSent / MessagesSent aggregate the voxel paste traffic.
	BytesSent    int64
	MessagesSent int64
	// PerRankLocations counts owned + extra locations per rank — the
	// redundant-computation overhead versus Gradient Decomposition.
	PerRankLocations []int
	// PerRankOwned counts only the owned locations.
	PerRankOwned []int
	// PerRankMemBytes estimates the per-rank footprint including the
	// extra measurements and the widened halo.
	PerRankMemBytes []int64
}

const tagPaste = 10

// neighborOffsets enumerates the 8-connected neighborhood pasted to
// (Fig 2(g): tile 4 pastes to 1, 2, 5, 7, 8 — all extended-tile
// neighbors including diagonals).
var neighborOffsets = [8][2]int{
	{-1, -1}, {-1, 0}, {-1, 1},
	{0, -1}, {0, 1},
	{1, -1}, {1, 0}, {1, 1},
}

type hworker struct {
	comm   simmpi.Transport
	mesh   *tiling.Mesh
	prob   *solver.Problem
	opt    *Options
	r, c   int
	ext    grid.Rect // tile + exchange halo
	slices []*grid.Complex2D
	ws     *solver.Workspace // per-rank gradient scratch arena
	owned  []int             // own locations
	all    []int             // own + extra locations (reconstructed redundantly)
}

// RankOutcome is one rank's view of a finished (or cancelled) Halo
// Voxel Exchange run — the per-process counterpart of gradsync's
// RankOutcome, shipped back to the grid coordinator for stitching.
type RankOutcome struct {
	// Slices is the rank's reconstruction on its widened extended-tile
	// bounds.
	Slices []*grid.Complex2D
	// CostHistory holds the all-reduced global cost per iteration.
	CostHistory []float64
	// Locations counts owned + extra (redundant) locations; Owned only
	// the owned ones.
	Locations, Owned int
	// MemBytes estimates the rank's resident footprint.
	MemBytes int64
	// SentBytes and SentMessages count this rank's outgoing paste
	// traffic.
	SentBytes, SentMessages int64
	// Cancelled reports a collective Ctx-cancellation stop.
	Cancelled bool
}

// RunRank executes one rank of the Halo Voxel Exchange baseline against
// an arbitrary transport endpoint. Every rank of comm's world must call
// RunRank with identical prob, init and opt; Reconstruct does so over
// an in-process world, the distributed grid over TCP.
func RunRank(comm simmpi.Transport, prob *solver.Problem, init []*grid.Complex2D, opt Options) (*RankOutcome, error) {
	if err := opt.validate(prob); err != nil {
		return nil, err
	}
	if len(init) != prob.Slices {
		return nil, fmt.Errorf("halo: %d initial slices, want %d", len(init), prob.Slices)
	}
	m := opt.Mesh
	if comm.Size() != m.NumTiles() {
		return nil, fmt.Errorf("halo: world size %d != mesh tiles %d", comm.Size(), m.NumTiles())
	}
	haloW := opt.HaloWidth
	if haloW == 0 {
		haloW = m.Halo
	}
	if err := CheckTileConstraint(m, haloW); err != nil {
		return nil, err
	}
	// Deterministic from pattern + mesh: every rank computes the same
	// partition locally.
	owned := m.AssignLocations(prob.Pattern)
	snaps := collective.NewSnapshots(m, opt.SnapshotEvery, opt.OnSnapshot)

	exchanges := opt.ExchangesPerIteration
	if exchanges <= 0 {
		exchanges = 1
	}

	rank := comm.Rank()
	r, c := m.RowCol(rank)
	extra := m.ExtraRowLocations(prob.Pattern, owned, r, c, opt.ExtraRows)
	ext := m.ExtendedWithHalo(r, c, haloW)
	w := &hworker{
		comm: comm, mesh: m, prob: prob, opt: &opt,
		r: r, c: c, ext: ext,
		owned: owned[rank],
		all:   append(append([]int{}, owned[rank]...), extra...),
	}
	w.slices = make([]*grid.Complex2D, prob.Slices)
	for s := 0; s < prob.Slices; s++ {
		w.slices[s] = grid.NewComplex2D(ext)
		w.slices[s].CopyRegion(init[s], ext)
	}
	// One Workspace per rank for the whole run; the per-location
	// loop below never touches the heap after warm-up.
	w.ws = prob.NewWorkspace(ext)

	n2 := int64(prob.WindowN * prob.WindowN)
	out := &RankOutcome{
		Locations: len(w.all),
		Owned:     len(w.owned),
		MemBytes: int64(ext.Area())*16*int64(prob.Slices)*2 +
			int64(len(w.all))*n2*8 + n2*16*int64(prob.Slices+4),
	}

	hist := make([]float64, 0, opt.Iterations)
	step := complex(opt.StepSize, 0)
	for iter := 0; iter < opt.Iterations; iter++ {
		var cost float64
		nloc := len(w.all)
		done := 0
		for ex := 0; ex < exchanges; ex++ {
			upto := (ex + 1) * nloc / exchanges
			for ; done < upto; done++ {
				li := w.all[done]
				loc := prob.Pattern.Locations[li]
				w.ws.ZeroGrads()
				f := w.ws.LossGrad(w.slices, loc.Window(prob.WindowN), prob.Meas[li])
				// Cost is reported over owned locations only, so the
				// histories are comparable with Gradient Decomposition.
				if done < len(w.owned) {
					cost += f
				}
				for s := range w.slices {
					w.slices[s].AddScaled(w.ws.Grads()[s], -step)
				}
			}
			if err := w.exchangeVoxels(haloW); err != nil {
				return nil, fmt.Errorf("rank %d: %w", rank, err)
			}
		}
		global, err := comm.AllreduceSum(cost)
		if err != nil {
			return nil, err
		}
		hist = append(hist, global)
		if rank == 0 && opt.OnIteration != nil {
			opt.OnIteration(iter, global)
		}
		if snaps.Due(iter) {
			if err := snaps.Run(comm, w.slices, iter); err != nil {
				return nil, fmt.Errorf("halo: snapshot at iteration %d: %w", iter, err)
			}
		}
		if stop, err := collective.Cancelled(comm, opt.Ctx); err != nil {
			return nil, err
		} else if stop {
			out.Cancelled = true
			break
		}
	}
	out.Slices = w.slices
	out.CostHistory = hist
	out.SentBytes = comm.SentBytes()
	out.SentMessages = comm.SentMessages()
	return out, nil
}

// Reconstruct runs the Halo Voxel Exchange baseline over an in-process
// world (one goroutine per rank).
func Reconstruct(prob *solver.Problem, init []*grid.Complex2D, opt Options) (*Result, error) {
	if err := opt.validate(prob); err != nil {
		return nil, err
	}
	if len(init) != prob.Slices {
		return nil, fmt.Errorf("halo: %d initial slices, want %d", len(init), prob.Slices)
	}
	m := opt.Mesh
	haloW := opt.HaloWidth
	if haloW == 0 {
		haloW = m.Halo
	}
	if err := CheckTileConstraint(m, haloW); err != nil {
		return nil, err
	}
	ranks := m.NumTiles()
	outs := make([]*RankOutcome, ranks)
	world := simmpi.NewWorld(ranks, opt.Timeout)
	err := world.RunAll(func(comm *simmpi.Comm) error {
		out, err := RunRank(comm, prob, init, opt)
		if err != nil {
			return err
		}
		outs[comm.Rank()] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := assembleResult(m, outs)
	res.BytesSent = world.BytesSent()
	res.MessagesSent = world.MessagesSent()
	if outs[0].Cancelled {
		return res, opt.Ctx.Err()
	}
	return res, nil
}

// assembleResult stitches per-rank outcomes into the aggregate Result.
func assembleResult(m *tiling.Mesh, outs []*RankOutcome) *Result {
	ranks := len(outs)
	tiles := make([][]*grid.Complex2D, ranks)
	res := &Result{
		CostHistory:      outs[0].CostHistory,
		PerRankLocations: make([]int, ranks),
		PerRankOwned:     make([]int, ranks),
		PerRankMemBytes:  make([]int64, ranks),
	}
	for rank, out := range outs {
		tiles[rank] = out.Slices
		res.PerRankLocations[rank] = out.Locations
		res.PerRankOwned[rank] = out.Owned
		res.PerRankMemBytes[rank] = out.MemBytes
	}
	res.Slices = m.StitchSlices(tiles)
	return res
}

// AssembleResult is the exported outcome stitch for drivers outside
// this package (the grid coordinator). outs must have exactly
// mesh.NumTiles() entries in rank order, every entry non-nil.
func AssembleResult(m *tiling.Mesh, outs []*RankOutcome) (*Result, error) {
	if len(outs) != m.NumTiles() {
		return nil, fmt.Errorf("halo: %d outcomes for %d tiles", len(outs), m.NumTiles())
	}
	for i, o := range outs {
		if o == nil || len(o.Slices) == 0 {
			return nil, fmt.Errorf("halo: missing outcome for rank %d", i)
		}
	}
	res := assembleResult(m, outs)
	for _, o := range outs {
		res.BytesSent += o.SentBytes
		res.MessagesSent += o.SentMessages
	}
	return res, nil
}

// exchangeVoxels performs the synchronous copy-paste: this tile's
// interior voxels that fall inside each neighbor's halo are sent and
// pasted verbatim into the neighbor's slices (overwriting — the seam
// mechanism), and vice versa.
func (w *hworker) exchangeVoxels(haloW int) error {
	m := w.mesh
	type pending struct {
		req    simmpi.Pending
		region grid.Rect
	}
	var recvs []pending
	// Post all receives, then sends (isend/irecv avoids ordering
	// deadlocks even though the algorithm is logically synchronous).
	for _, d := range neighborOffsets {
		nr, nc := w.r+d[0], w.c+d[1]
		if nr < 0 || nr >= m.Rows || nc < 0 || nc >= m.Cols {
			continue
		}
		// Region we receive: neighbor's interior tile ∩ our extended tile.
		region := m.Tile(nr, nc).Intersect(w.ext)
		if region.Empty() {
			continue
		}
		recvs = append(recvs, pending{
			req:    w.comm.Irecv(m.Rank(nr, nc), tagPaste),
			region: region,
		})
	}
	for _, d := range neighborOffsets {
		nr, nc := w.r+d[0], w.c+d[1]
		if nr < 0 || nr >= m.Rows || nc < 0 || nc >= m.Cols {
			continue
		}
		nbExt := m.ExtendedWithHalo(nr, nc, haloW)
		region := m.Tile(w.r, w.c).Intersect(nbExt)
		if region.Empty() {
			continue
		}
		w.comm.Isend(m.Rank(nr, nc), tagPaste, packRegion(w.slices, region))
	}
	// Receives from different neighbors arrive in arbitrary order; tags
	// are identical, but each neighbor sends exactly one message per
	// exchange and FIFO per (src, tag) keeps rounds aligned. Match by
	// source via the posted order (Irecv stored the src).
	for _, p := range recvs {
		data, err := p.req.Wait()
		if err != nil {
			return err
		}
		if err := unpackRegion(w.slices, p.region, data); err != nil {
			return err
		}
	}
	return nil
}

// packRegion flattens the region of each slice into one payload (the
// shared slices-major layout of collective.PackRegion — one definition
// so the engines' wire payloads can never drift apart).
func packRegion(arrs []*grid.Complex2D, region grid.Rect) []complex128 {
	return collective.PackRegion(arrs, region)
}

func unpackRegion(arrs []*grid.Complex2D, region grid.Rect, data []complex128) error {
	if len(data) != region.Area()*len(arrs) {
		return fmt.Errorf("halo: payload %d for region %v x %d slices",
			len(data), region, len(arrs))
	}
	k := 0
	for _, a := range arrs {
		for y := region.Y0; y < region.Y1; y++ {
			row := a.Row(y)
			x0 := region.X0 - a.Bounds.X0
			copy(row[x0:x0+region.W()], data[k:k+region.W()])
			k += region.W()
		}
	}
	return nil
}
