package halo

import (
	"testing"

	"ptychopath/internal/grid"
	"ptychopath/internal/phantom"
	"ptychopath/internal/tiling"
)

// TestHaloGradientAllocationFree guards the Halo Voxel Exchange hot
// path: the per-location body of the reconstruction loop — zero the
// workspace gradients, evaluate the location, descend the local tile —
// performs no heap allocations once the rank's arena is warm.
func TestHaloGradientAllocationFree(t *testing.T) {
	prob, _ := buildProblem(t, 4, 4, 0.6, 2)
	m := mesh(t, prob, 1, 1, tiling.HaloForWindow(prob.WindowN))
	init := phantom.Vacuum(prob.ImageBounds(), prob.Slices)

	// Mirror the worker setup of Reconstruct: slices on the widened
	// extended tile plus one Workspace for the whole run.
	ext := m.ExtendedWithHalo(0, 0, m.Halo)
	ws := prob.NewWorkspace(ext)
	tile := make([]*grid.Complex2D, prob.Slices)
	for s := range tile {
		tile[s] = grid.NewComplex2D(ext)
		tile[s].CopyRegion(init.Slices[s], ext)
	}

	li := 0
	win := prob.Pattern.Locations[li].Window(prob.WindowN)
	step := complex(0.01, 0)
	ws.ZeroGrads()
	ws.LossGrad(tile, win, prob.Meas[li])
	if got := testing.AllocsPerRun(20, func() {
		ws.ZeroGrads()
		ws.LossGrad(tile, win, prob.Meas[li])
		for s := range tile {
			tile[s].AddScaled(ws.Grads()[s], -step)
		}
	}); got != 0 {
		t.Errorf("halo per-location kernel allocates %v, want 0", got)
	}
}
