package halo

import (
	"errors"
	"testing"
	"time"

	"ptychopath/internal/phantom"
	"ptychopath/internal/physics"
	"ptychopath/internal/scan"
	"ptychopath/internal/solver"
	"ptychopath/internal/tiling"
)

const testTimeout = 10 * time.Second

func buildProblem(t testing.TB, scanCols, scanRows int, overlap float64, slices int) (*solver.Problem, *phantom.Object) {
	t.Helper()
	radius := 8.0
	step := scan.StepForOverlap(radius, overlap)
	pat, err := scan.Raster(scan.RasterConfig{
		Cols: scanCols, Rows: scanRows, StepPix: step, RadiusPix: radius, MarginPix: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	obj := phantom.RandomObject(pat.ImageW, pat.ImageH, slices, 5)
	prob, err := solver.Simulate(solver.SimulateConfig{
		Optics:  physics.PaperOptics(),
		Pattern: pat,
		Object:  obj,
		WindowN: 16,
		Seed:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prob, obj
}

func mesh(t testing.TB, prob *solver.Problem, rows, cols, halo int) *tiling.Mesh {
	t.Helper()
	m, err := tiling.NewMesh(prob.ImageBounds(), rows, cols, halo)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestHVEConverges(t *testing.T) {
	prob, obj := buildProblem(t, 4, 4, 0.7, 1)
	init := phantom.Vacuum(obj.Bounds(), 1)
	m := mesh(t, prob, 2, 2, tiling.HaloForWindow(prob.WindowN))
	res, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m, HaloWidth: tiling.HaloForWindow(prob.WindowN), ExtraRows: 1,
		StepSize: 0.01, Iterations: 8, ExchangesPerIteration: 1, Timeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.CostHistory[0], res.CostHistory[len(res.CostHistory)-1]
	if last >= first*0.8 {
		t.Fatalf("HVE did not converge: %g -> %g", first, last)
	}
	for _, sl := range res.Slices {
		if !sl.IsFinite() {
			t.Fatal("non-finite reconstruction")
		}
	}
}

func TestHVERedundantLocations(t *testing.T) {
	// The defining overhead: with extra rows, every rank reconstructs
	// strictly more locations than it owns; total computed > total owned.
	prob, obj := buildProblem(t, 6, 6, 0.75, 1)
	init := phantom.Vacuum(obj.Bounds(), 1)
	m := mesh(t, prob, 3, 3, tiling.HaloForWindow(prob.WindowN))
	res, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m, HaloWidth: tiling.HaloForWindow(prob.WindowN), ExtraRows: 2,
		StepSize: 0.01, Iterations: 1, Timeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	totalOwned, totalAll := 0, 0
	for rank := range res.PerRankLocations {
		totalOwned += res.PerRankOwned[rank]
		totalAll += res.PerRankLocations[rank]
		if res.PerRankLocations[rank] < res.PerRankOwned[rank] {
			t.Fatalf("rank %d: all=%d < owned=%d", rank,
				res.PerRankLocations[rank], res.PerRankOwned[rank])
		}
	}
	if totalOwned != prob.Pattern.N() {
		t.Fatalf("owned sum %d != %d", totalOwned, prob.Pattern.N())
	}
	if totalAll <= totalOwned {
		t.Fatal("extra rows produced no redundant work — baseline mis-modeled")
	}
}

func TestHVEMemoryExceedsOwnedOnlyFootprint(t *testing.T) {
	// HVE at the same mesh must use more memory per rank than an
	// owned-only assignment would (the paper's memory argument).
	prob, obj := buildProblem(t, 6, 6, 0.75, 1)
	init := phantom.Vacuum(obj.Bounds(), 1)
	m := mesh(t, prob, 3, 3, tiling.HaloForWindow(prob.WindowN))
	withExtra, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m, HaloWidth: tiling.HaloForWindow(prob.WindowN), ExtraRows: 2,
		StepSize: 0.01, Iterations: 1, Timeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m, HaloWidth: tiling.HaloForWindow(prob.WindowN), ExtraRows: 0,
		StepSize: 0.01, Iterations: 1, Timeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	center := 4 // rank of center tile in 3x3
	if withExtra.PerRankMemBytes[center] <= without.PerRankMemBytes[center] {
		t.Fatalf("extra rows did not increase memory: %d vs %d",
			withExtra.PerRankMemBytes[center], without.PerRankMemBytes[center])
	}
}

func TestTileConstraintNA(t *testing.T) {
	// Oversubscribing the mesh must fail with ErrTileTooSmall — the
	// paper's "NA" entries in Table II(b).
	prob, obj := buildProblem(t, 4, 4, 0.7, 1)
	init := phantom.Vacuum(obj.Bounds(), 1)
	// Many tiny tiles with a big halo.
	m := mesh(t, prob, 6, 6, 2)
	_, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m, HaloWidth: 20, ExtraRows: 2,
		StepSize: 0.01, Iterations: 1, Timeout: testTimeout,
	})
	if !errors.Is(err, ErrTileTooSmall) {
		t.Fatalf("expected ErrTileTooSmall, got %v", err)
	}
}

func TestCheckTileConstraintDirect(t *testing.T) {
	prob, _ := buildProblem(t, 4, 4, 0.7, 1)
	m := mesh(t, prob, 2, 2, 4)
	if err := CheckTileConstraint(m, 5); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	if err := CheckTileConstraint(m, 1000); !errors.Is(err, ErrTileTooSmall) {
		t.Fatalf("expected ErrTileTooSmall, got %v", err)
	}
}

func TestHVECommunicatesVoxels(t *testing.T) {
	prob, obj := buildProblem(t, 4, 4, 0.7, 1)
	init := phantom.Vacuum(obj.Bounds(), 1)
	m := mesh(t, prob, 2, 2, tiling.HaloForWindow(prob.WindowN))
	res, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m, HaloWidth: tiling.HaloForWindow(prob.WindowN), ExtraRows: 1,
		StepSize: 0.01, Iterations: 2, ExchangesPerIteration: 2, Timeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesSent == 0 || res.MessagesSent == 0 {
		t.Fatal("HVE must exchange voxels")
	}
	// Doubling exchange frequency should roughly double traffic.
	res1, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m, HaloWidth: tiling.HaloForWindow(prob.WindowN), ExtraRows: 1,
		StepSize: 0.01, Iterations: 2, ExchangesPerIteration: 1, Timeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesSent <= res1.BytesSent {
		t.Fatal("more exchanges should send more bytes")
	}
}

func TestHVEOptionValidation(t *testing.T) {
	prob, obj := buildProblem(t, 3, 3, 0.6, 1)
	init := phantom.Vacuum(obj.Bounds(), 1)
	m := mesh(t, prob, 2, 2, 4)
	cases := []Options{
		{Mesh: nil, StepSize: 1, Iterations: 1},
		{Mesh: m, StepSize: 0, Iterations: 1},
		{Mesh: m, StepSize: 1, Iterations: 0},
		{Mesh: m, StepSize: 1, Iterations: 1, HaloWidth: -1},
		{Mesh: m, StepSize: 1, Iterations: 1, ExtraRows: -1},
	}
	for i, o := range cases {
		o.Timeout = testTimeout
		if _, err := Reconstruct(prob, init.Slices, o); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestHVESingleTileMatchesSerialSequential(t *testing.T) {
	// On a 1x1 mesh HVE degenerates to the serial sequential solver.
	prob, obj := buildProblem(t, 3, 3, 0.6, 1)
	init := phantom.Vacuum(obj.Bounds(), 1)
	m := mesh(t, prob, 1, 1, 0)
	hres, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m, HaloWidth: 0, ExtraRows: 0,
		StepSize: 0.02, Iterations: 3, Timeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	sres, err := solver.Reconstruct(prob, init.Slices, solver.Options{
		StepSize: 0.02, Iterations: 3, Mode: solver.Sequential,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hres.Slices[0].MaxDiff(sres.Slices[0]) > 1e-10 {
		t.Fatal("1x1 HVE deviates from serial sequential solver")
	}
}
