// Package transport implements simmpi.Transport over TCP: the
// distributed counterpart of the in-process goroutine world, carrying
// the same tagged point-to-point messages and collectives between
// worker PROCESSES so the unmodified reconstruction engines (gradsync,
// halo) scale past one machine.
//
// Topology is a star: every worker holds one persistent connection to a
// coordinator hub, reused across reconstruction sessions, and the hub
// routes rank-to-rank frames, counts barrier entries, and computes
// allreduce sums in rank order (bit-identical to simmpi). The hub side
// lives in Hub (run by ptychoserve's grid coordinator), the worker side
// in Client (run by ptychoworker / internal/gridworker).
//
// Every frame is length-prefixed and CRC-protected; the byte-level
// layout is specified in docs/FORMATS.md ("PTGW wire frames").
// Blocking operations carry deadlines mirroring simmpi.ErrTimeout, so a
// deadlocked exchange or a vanished peer fails loudly — never hangs.
package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"
)

// ProtoVersion is the wire-protocol generation. A hub refuses a client
// with any other version during the handshake (ErrVersionMismatch) —
// mixed deployments fail fast instead of corrupting a run.
//
// v2 extended ITER: every rank (not just rank 0) reports per-iteration
// compute/comm timings in a 24-byte ITER payload, and SETUP carries a
// trace-context string. A v1 hub would misread the 24-byte stats
// payload as a progress report, hence the bump.
const ProtoVersion = 2

// frameMagic opens every frame on the wire.
var frameMagic = [4]byte{'P', 'T', 'G', 'W'}

// Frame types.
const (
	frameHello      = 0x01 // worker → hub: version + worker name
	frameWelcome    = 0x02 // hub → worker: version + assigned worker id
	frameSetup      = 0x03 // hub → worker: gob(Setup) — a session begins
	frameData       = 0x04 // worker ↔ worker (routed): complex128 payload
	frameBarrier    = 0x05 // worker → hub: enter barrier
	frameBarrierOK  = 0x06 // hub → worker: barrier released
	frameReduce     = 0x07 // worker → hub: float64 contribution
	frameReduceOK   = 0x08 // hub → worker: float64 rank-ordered sum
	frameSnapshot   = 0x09 // rank 0 → hub: int64 iter + opaque object bytes
	frameSnapshotOK = 0x0A // hub → rank 0: uint8 ok + error string
	frameIter       = 0x0B // worker → hub, no reply: 16 B = rank 0 progress (int64 iter + float64 cost); 24 B = any rank's timings (int64 iter + int64 computeNS + int64 commNS)
	frameResult     = 0x0C // worker → hub: gob(RankResult) — session ends for this rank
	frameError      = 0x0D // either: uint8 code + message; aborts the session or conn
	frameCancel     = 0x0E // hub → worker: stop at the next iteration boundary
	frameGoodbye    = 0x0F // worker → hub: graceful teardown
)

// Error codes carried by frameError payloads.
const (
	codeGeneric  = 0x00
	codeVersion  = 0x01
	codePeerLost = 0x02
	codeAborted  = 0x03
)

// hubRank is the src/dst pseudo-rank of the coordinator hub in frame
// headers.
const hubRank = -1

// maxFramePayload bounds a single frame. The largest legitimate payload
// is a full extended-tile snapshot; 1 GiB leaves generous headroom
// while keeping a corrupt length field from committing the reader to an
// absurd allocation.
const maxFramePayload = 1 << 30

// handshakeTimeout bounds the hello/welcome exchange.
const handshakeTimeout = 10 * time.Second

// Typed transport errors. Blocking-operation timeouts additionally wrap
// simmpi.ErrTimeout so engine-level errors.Is checks behave identically
// on both transports.
var (
	// ErrVersionMismatch is returned by Dial when the hub speaks a
	// different ProtoVersion.
	ErrVersionMismatch = errors.New("transport: protocol version mismatch")
	// ErrFrameCorrupt is returned when a frame fails validation: bad
	// magic, a CRC that does not match the payload, an over-limit
	// length, or a stream truncated mid-frame.
	ErrFrameCorrupt = errors.New("transport: corrupt or truncated frame")
	// ErrPeerLost is surfaced by blocking operations when another rank
	// of the session disconnected mid-run — the session cannot
	// complete.
	ErrPeerLost = errors.New("transport: peer lost mid-session")
	// ErrSessionAborted is surfaced when the coordinator abandoned the
	// session (a rank reported failure, or the coordinator shut down).
	ErrSessionAborted = errors.New("transport: session aborted by coordinator")
	// ErrClosed is returned on operations against a closed endpoint.
	ErrClosed = errors.New("transport: connection closed")
)

// frame is one decoded wire frame.
type frame struct {
	typ      uint8
	src, dst int32
	tag      int32
	payload  []byte
}

// frameHeaderLen is the byte length of type..length, the CRC-covered
// fixed header that follows the magic.
const frameHeaderLen = 1 + 4 + 4 + 4 + 4

// writeFrame encodes and writes one frame:
//
//	magic[4] | type[1] | src[4] | dst[4] | tag[4] | len[4] | payload | crc[4]
//
// crc is IEEE CRC-32 over type..payload. The caller serializes writes
// per connection.
func writeFrame(w io.Writer, f frame) error {
	if len(f.payload) > maxFramePayload {
		return fmt.Errorf("%w: payload %d exceeds %d", ErrFrameCorrupt, len(f.payload), maxFramePayload)
	}
	buf := make([]byte, 4+frameHeaderLen, 4+frameHeaderLen+len(f.payload)+4)
	copy(buf, frameMagic[:])
	buf[4] = f.typ
	binary.LittleEndian.PutUint32(buf[5:], uint32(f.src))
	binary.LittleEndian.PutUint32(buf[9:], uint32(f.dst))
	binary.LittleEndian.PutUint32(buf[13:], uint32(f.tag))
	binary.LittleEndian.PutUint32(buf[17:], uint32(len(f.payload)))
	buf = append(buf, f.payload...)
	crc := crc32.ChecksumIEEE(buf[4:])
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	_, err := w.Write(buf)
	return err
}

// readFrame reads and validates one frame. Truncation, bad magic, an
// over-limit length and a CRC mismatch all return ErrFrameCorrupt; a
// clean EOF between frames returns io.EOF.
func readFrame(r io.Reader) (frame, error) {
	var hdr [4 + frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return frame{}, io.EOF
		}
		return frame{}, fmt.Errorf("%w: truncated header: %v", ErrFrameCorrupt, err)
	}
	if [4]byte(hdr[:4]) != frameMagic {
		return frame{}, fmt.Errorf("%w: bad magic %q", ErrFrameCorrupt, hdr[:4])
	}
	f := frame{
		typ: hdr[4],
		src: int32(binary.LittleEndian.Uint32(hdr[5:])),
		dst: int32(binary.LittleEndian.Uint32(hdr[9:])),
		tag: int32(binary.LittleEndian.Uint32(hdr[13:])),
	}
	n := binary.LittleEndian.Uint32(hdr[17:])
	if n > maxFramePayload {
		return frame{}, fmt.Errorf("%w: payload length %d exceeds %d", ErrFrameCorrupt, n, maxFramePayload)
	}
	payloadAndCRC := make([]byte, int(n)+4)
	if _, err := io.ReadFull(r, payloadAndCRC); err != nil {
		return frame{}, fmt.Errorf("%w: truncated payload: %v", ErrFrameCorrupt, err)
	}
	crc := crc32.ChecksumIEEE(hdr[4:])
	crc = crc32.Update(crc, crc32.IEEETable, payloadAndCRC[:n])
	if got := binary.LittleEndian.Uint32(payloadAndCRC[n:]); got != crc {
		return frame{}, fmt.Errorf("%w: crc %08x, want %08x", ErrFrameCorrupt, got, crc)
	}
	f.payload = payloadAndCRC[:n]
	return f, nil
}

// complexToBytes serializes a []complex128 payload as interleaved
// little-endian float64 pairs — exact (bit-preserving) both ways.
func complexToBytes(data []complex128) []byte {
	out := make([]byte, 16*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(out[16*i:], math.Float64bits(real(v)))
		binary.LittleEndian.PutUint64(out[16*i+8:], math.Float64bits(imag(v)))
	}
	return out
}

func bytesToComplex(b []byte) ([]complex128, error) {
	if len(b)%16 != 0 {
		return nil, fmt.Errorf("%w: data payload %d bytes is not a complex128 array", ErrFrameCorrupt, len(b))
	}
	out := make([]complex128, len(b)/16)
	for i := range out {
		out[i] = complex(
			math.Float64frombits(binary.LittleEndian.Uint64(b[16*i:])),
			math.Float64frombits(binary.LittleEndian.Uint64(b[16*i+8:])),
		)
	}
	return out, nil
}

// errorPayload encodes a frameError payload.
func errorPayload(code uint8, msg string) []byte {
	return append([]byte{code}, msg...)
}

// decodeError maps a frameError payload to a typed error.
func decodeError(payload []byte) error {
	code, msg := uint8(codeGeneric), ""
	if len(payload) > 0 {
		code, msg = payload[0], string(payload[1:])
	}
	switch code {
	case codeVersion:
		return fmt.Errorf("%w: %s", ErrVersionMismatch, msg)
	case codePeerLost:
		return fmt.Errorf("%w: %s", ErrPeerLost, msg)
	case codeAborted:
		return fmt.Errorf("%w: %s", ErrSessionAborted, msg)
	default:
		return fmt.Errorf("transport: remote error: %s", msg)
	}
}

// Setup is the job description a coordinator sends each worker to open
// a session: which rank it is, the mesh geometry, the engine
// parameters, and the serialized dataset and initial object. Problem
// and Init are opaque byte blobs (PTYCHOv1 and OBJCKv1 respectively —
// see internal/dataio and docs/FORMATS.md); the transport does not
// interpret them.
type Setup struct {
	// JobID names the coordinator-side job this session executes.
	JobID string
	// Rank and Size place this worker in the session's world; the hub
	// fills them in at StartSession.
	Rank int
	Size int

	// Algorithm selects the engine: "gd" (gradsync) or "hve" (halo).
	Algorithm string
	// MeshRows, MeshCols and Halo reproduce the coordinator's tile
	// mesh exactly on every rank.
	MeshRows, MeshCols int
	Halo               int
	HaloWidth          int // hve exchange halo (0 = mesh halo)
	ExtraRows          int // hve redundant scan rows
	// StepSize through SnapshotEvery mirror the engine Options of the
	// in-process run.
	StepSize           float64
	Iterations         int
	RoundsPerIteration int
	IntraWorkers       int
	SnapshotEvery      int
	// TimeoutMS bounds the session's blocking transport operations
	// (milliseconds; 0 keeps the worker's dial-time default).
	TimeoutMS int64
	// Trace is the coordinator's trace context (the job's request ID):
	// workers tag their logs with it so one grep follows a request
	// from HTTP accept through every rank. Empty disables nothing —
	// timings are always reported.
	Trace string

	// Problem is the full PTYCHOv1 dataset; every rank derives its own
	// shard deterministically from the mesh (tile-by-tile location
	// assignment), so no per-rank slicing happens coordinator-side.
	Problem []byte
	// Init is the OBJCKv1 warm-start object on full image bounds.
	Init []byte
}

// RankResult is one rank's outcome, shipped worker → hub when its part
// of the session finishes (successfully or not). Tile is an opaque
// OBJCKv1 blob of the rank's extended-tile slices.
type RankResult struct {
	// Rank identifies the sender within the session.
	Rank int
	// Err, when non-empty, reports the rank failed; other fields may be
	// zero. A failing rank still reports in-band — it never tears down
	// the connection.
	Err string
	// Cancelled marks a collective Ctx-cancellation stop with partial
	// state in Tile.
	Cancelled bool

	// CostHistory is the all-reduced global cost per iteration.
	CostHistory []float64
	// Locations counts the rank's assigned probe locations (for hve,
	// including redundant ones; Owned excludes them).
	Locations, Owned int
	// MemBytes estimates the rank's resident footprint; ComputeNS and
	// CommNS split its wall-clock between gradient work and passes.
	MemBytes          int64
	ComputeNS, CommNS int64
	// SentBytes and SentMessages count the rank's outgoing payload
	// traffic.
	SentBytes, SentMessages int64
	// Tile is the rank's extended-tile object as OBJCKv1 bytes.
	Tile []byte
}

func encodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("transport: encoding %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

func decodeGob(b []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(v); err != nil {
		return fmt.Errorf("transport: decoding %T: %w", v, err)
	}
	return nil
}
