// Package transport implements simmpi.Transport over TCP: the
// distributed counterpart of the in-process goroutine world, carrying
// the same tagged point-to-point messages and collectives between
// worker PROCESSES so the unmodified reconstruction engines (gradsync,
// halo) scale past one machine.
//
// Topology is a star: every worker holds one persistent connection to a
// coordinator hub, reused across reconstruction sessions, and the hub
// routes rank-to-rank frames, counts barrier entries, and computes
// allreduce sums in rank order (bit-identical to simmpi). The hub side
// lives in Hub (run by ptychoserve's grid coordinator), the worker side
// in Client (run by ptychoworker / internal/gridworker).
//
// Every frame is length-prefixed and CRC-protected; the byte-level
// layout is specified in docs/FORMATS.md ("PTGW wire frames").
// Blocking operations carry deadlines mirroring simmpi.ErrTimeout, so a
// deadlocked exchange or a vanished peer fails loudly — never hangs.
package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"ptychopath/internal/wire"
)

// ProtoVersion is the wire-protocol generation. The handshake
// negotiates downward: a v3 hub accepts workers back to
// MinProtoVersion and echoes the agreed version in WELCOME; anything
// outside the range is refused (ErrVersionMismatch) — mixed
// deployments fail fast instead of corrupting a run.
//
// v2 extended ITER: every rank (not just rank 0) reports per-iteration
// compute/comm timings in a 24-byte ITER payload, and SETUP carries a
// trace-context string. A v1 hub would misread the 24-byte stats
// payload as a progress report, hence the bump.
//
// v3 switched the frame CRC to the Castagnoli generation
// (internal/wire): both ends of a v3 connection emit hardware-speed
// CRC-32C. Readers accept either generation per frame, and handshake
// frames are always legacy-framed so any version can parse the
// refusal; a v2 worker on a v3 hub simply keeps IEEE framing for its
// connection. Deploy coordinator-first: a v3 worker needs a v3 hub.
const ProtoVersion = 3

// MinProtoVersion is the oldest worker generation the hub still
// accepts.
const MinProtoVersion = 2

// frameMagic opens every frame on the wire.
var frameMagic = [4]byte{'P', 'T', 'G', 'W'}

// Frame types.
const (
	frameHello      = 0x01 // worker → hub: version + worker name
	frameWelcome    = 0x02 // hub → worker: version + assigned worker id
	frameSetup      = 0x03 // hub → worker: gob(Setup) — a session begins
	frameData       = 0x04 // worker ↔ worker (routed): complex128 payload
	frameBarrier    = 0x05 // worker → hub: enter barrier
	frameBarrierOK  = 0x06 // hub → worker: barrier released
	frameReduce     = 0x07 // worker → hub: float64 contribution
	frameReduceOK   = 0x08 // hub → worker: float64 rank-ordered sum
	frameSnapshot   = 0x09 // rank 0 → hub: int64 iter + opaque object bytes
	frameSnapshotOK = 0x0A // hub → rank 0: uint8 ok + error string
	frameIter       = 0x0B // worker → hub, no reply: 16 B = rank 0 progress (int64 iter + float64 cost); 24 B = any rank's timings (int64 iter + int64 computeNS + int64 commNS)
	frameResult     = 0x0C // worker → hub: gob(RankResult) — session ends for this rank
	frameError      = 0x0D // either: uint8 code + message; aborts the session or conn
	frameCancel     = 0x0E // hub → worker: stop at the next iteration boundary
	frameGoodbye    = 0x0F // worker → hub: graceful teardown
)

// Error codes carried by frameError payloads.
const (
	codeGeneric  = 0x00
	codeVersion  = 0x01
	codePeerLost = 0x02
	codeAborted  = 0x03
)

// hubRank is the src/dst pseudo-rank of the coordinator hub in frame
// headers.
const hubRank = -1

// maxFramePayload bounds a single frame. The largest legitimate payload
// is a full extended-tile snapshot; 1 GiB leaves generous headroom
// while keeping a corrupt length field from committing the reader to an
// absurd allocation.
const maxFramePayload = 1 << 30

// handshakeTimeout bounds the hello/welcome exchange.
const handshakeTimeout = 10 * time.Second

// Typed transport errors. Blocking-operation timeouts additionally wrap
// simmpi.ErrTimeout so engine-level errors.Is checks behave identically
// on both transports.
var (
	// ErrVersionMismatch is returned by Dial when the hub speaks a
	// different ProtoVersion.
	ErrVersionMismatch = errors.New("transport: protocol version mismatch")
	// ErrFrameCorrupt is returned when a frame fails validation: bad
	// magic, a CRC that does not match the payload, an over-limit
	// length, or a stream truncated mid-frame.
	ErrFrameCorrupt = errors.New("transport: corrupt or truncated frame")
	// ErrPeerLost is surfaced by blocking operations when another rank
	// of the session disconnected mid-run — the session cannot
	// complete.
	ErrPeerLost = errors.New("transport: peer lost mid-session")
	// ErrSessionAborted is surfaced when the coordinator abandoned the
	// session (a rank reported failure, or the coordinator shut down).
	ErrSessionAborted = errors.New("transport: session aborted by coordinator")
	// ErrClosed is returned on operations against a closed endpoint.
	ErrClosed = errors.New("transport: connection closed")
)

// frame is one decoded wire frame.
type frame struct {
	typ      uint8
	src, dst int32
	tag      int32
	payload  []byte
}

// frameHeaderLen is the byte length of type..length, the CRC-covered
// fixed header that follows the magic.
const frameHeaderLen = 1 + 4 + 4 + 4 + 4

// appendFrame encodes one frame into dst:
//
//	magic[4] | type[1] | src[4] | dst[4] | tag[4] | len[4] | payload | crc[4]
//
// crc is the generation-g CRC-32 over type..payload. Appending lets a
// caller batch several frames into one scratch buffer and hand the
// kernel a single write.
func appendFrame(dst []byte, f frame, g wire.Gen) ([]byte, error) {
	if len(f.payload) > maxFramePayload {
		return dst, fmt.Errorf("%w: payload %d exceeds %d", ErrFrameCorrupt, len(f.payload), maxFramePayload)
	}
	start := len(dst)
	dst = append(dst, frameMagic[:]...)
	dst = append(dst, f.typ)
	dst = wire.AppendUint32(dst, uint32(f.src))
	dst = wire.AppendUint32(dst, uint32(f.dst))
	dst = wire.AppendUint32(dst, uint32(f.tag))
	dst = wire.AppendUint32(dst, uint32(len(f.payload)))
	dst = append(dst, f.payload...)
	return wire.AppendUint32(dst, wire.Checksum(g, dst[start+4:])), nil
}

// writeFrame encodes and writes one current-generation frame. The
// caller serializes writes per connection. Hot paths batch through
// appendFrame instead.
func writeFrame(w io.Writer, f frame) error {
	return writeFrameGen(w, f, wire.GenCurrent)
}

// writeFrameGen writes one frame under an explicit checksum
// generation. Handshake frames (HELLO, and the hub's version-refusal
// ERROR) pass wire.GenIEEE so a peer of either generation can parse
// them.
func writeFrameGen(w io.Writer, f frame, g wire.Gen) error {
	buf, err := appendFrame(make([]byte, 0, 4+frameHeaderLen+len(f.payload)+4), f, g)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// frameReader decodes frames from one connection, reusing a payload
// scratch buffer across reads: a returned frame's payload is valid
// only until the next read, so handlers must copy anything they
// retain (DATA payloads are copied by bytesToComplex, gob payloads by
// decoding).
type frameReader struct {
	r       io.Reader
	scratch []byte
}

// read reads and validates one frame. Truncation, bad magic, an
// over-limit length and a CRC mismatch all return ErrFrameCorrupt; a
// clean EOF between frames returns io.EOF. Either checksum generation
// (Castagnoli or legacy IEEE) is accepted per frame.
func (d *frameReader) read() (frame, error) {
	var hdr [4 + frameHeaderLen]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		if err == io.EOF {
			return frame{}, io.EOF
		}
		return frame{}, fmt.Errorf("%w: truncated header: %v", ErrFrameCorrupt, err)
	}
	if [4]byte(hdr[:4]) != frameMagic {
		return frame{}, fmt.Errorf("%w: bad magic %q", ErrFrameCorrupt, hdr[:4])
	}
	f := frame{
		typ: hdr[4],
		src: int32(binary.LittleEndian.Uint32(hdr[5:])),
		dst: int32(binary.LittleEndian.Uint32(hdr[9:])),
		tag: int32(binary.LittleEndian.Uint32(hdr[13:])),
	}
	n := binary.LittleEndian.Uint32(hdr[17:])
	if n > maxFramePayload {
		return frame{}, fmt.Errorf("%w: payload length %d exceeds %d", ErrFrameCorrupt, n, maxFramePayload)
	}
	// Payload and trailing CRC in one capped read: memory tracks the
	// bytes that actually arrive, so a lying length cannot balloon it.
	buf, err := wire.ReadCapped(d.r, d.scratch, int64(n)+4)
	if err != nil {
		return frame{}, fmt.Errorf("%w: truncated payload: %v", ErrFrameCorrupt, err)
	}
	d.scratch = buf
	payload := buf[:n]
	got := binary.LittleEndian.Uint32(buf[n:])
	// The CRC covers type..payload — continue it across the two spans,
	// current generation first so the happy path is one hardware pass.
	want := wire.Update(wire.GenCurrent, wire.Checksum(wire.GenCurrent, hdr[4:]), payload)
	if got != want && got != wire.Update(wire.GenIEEE, wire.Checksum(wire.GenIEEE, hdr[4:]), payload) {
		return frame{}, fmt.Errorf("%w: crc %08x, want %08x", ErrFrameCorrupt, got, want)
	}
	f.payload = payload
	return f, nil
}

// readFrame reads one frame with a throwaway scratch — handshake and
// test convenience; connection loops hold a frameReader.
func readFrame(r io.Reader) (frame, error) {
	d := frameReader{r: r}
	return d.read()
}

// complexToBytes serializes a []complex128 payload as interleaved
// little-endian float64 pairs — exact (bit-preserving) both ways.
func complexToBytes(data []complex128) []byte {
	out := make([]byte, 16*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(out[16*i:], math.Float64bits(real(v)))
		binary.LittleEndian.PutUint64(out[16*i+8:], math.Float64bits(imag(v)))
	}
	return out
}

func bytesToComplex(b []byte) ([]complex128, error) {
	if len(b)%16 != 0 {
		return nil, fmt.Errorf("%w: data payload %d bytes is not a complex128 array", ErrFrameCorrupt, len(b))
	}
	out := make([]complex128, len(b)/16)
	for i := range out {
		out[i] = complex(
			math.Float64frombits(binary.LittleEndian.Uint64(b[16*i:])),
			math.Float64frombits(binary.LittleEndian.Uint64(b[16*i+8:])),
		)
	}
	return out, nil
}

// errorPayload encodes a frameError payload.
func errorPayload(code uint8, msg string) []byte {
	return append([]byte{code}, msg...)
}

// decodeError maps a frameError payload to a typed error.
func decodeError(payload []byte) error {
	code, msg := uint8(codeGeneric), ""
	if len(payload) > 0 {
		code, msg = payload[0], string(payload[1:])
	}
	switch code {
	case codeVersion:
		return fmt.Errorf("%w: %s", ErrVersionMismatch, msg)
	case codePeerLost:
		return fmt.Errorf("%w: %s", ErrPeerLost, msg)
	case codeAborted:
		return fmt.Errorf("%w: %s", ErrSessionAborted, msg)
	default:
		return fmt.Errorf("transport: remote error: %s", msg)
	}
}

// Setup is the job description a coordinator sends each worker to open
// a session: which rank it is, the mesh geometry, the engine
// parameters, and the serialized dataset and initial object. Problem
// and Init are opaque byte blobs (PTYCHOv1 and OBJCKv1 respectively —
// see internal/dataio and docs/FORMATS.md); the transport does not
// interpret them.
type Setup struct {
	// JobID names the coordinator-side job this session executes.
	JobID string
	// Rank and Size place this worker in the session's world; the hub
	// fills them in at StartSession.
	Rank int
	Size int

	// Algorithm selects the engine: "gd" (gradsync) or "hve" (halo).
	Algorithm string
	// MeshRows, MeshCols and Halo reproduce the coordinator's tile
	// mesh exactly on every rank.
	MeshRows, MeshCols int
	Halo               int
	HaloWidth          int // hve exchange halo (0 = mesh halo)
	ExtraRows          int // hve redundant scan rows
	// StepSize through SnapshotEvery mirror the engine Options of the
	// in-process run.
	StepSize           float64
	Iterations         int
	RoundsPerIteration int
	IntraWorkers       int
	SnapshotEvery      int
	// TimeoutMS bounds the session's blocking transport operations
	// (milliseconds; 0 keeps the worker's dial-time default).
	TimeoutMS int64
	// Trace is the coordinator's trace context (the job's request ID):
	// workers tag their logs with it so one grep follows a request
	// from HTTP accept through every rank. Empty disables nothing —
	// timings are always reported.
	Trace string

	// Problem is the full PTYCHOv1 dataset; every rank derives its own
	// shard deterministically from the mesh (tile-by-tile location
	// assignment), so no per-rank slicing happens coordinator-side.
	Problem []byte
	// Init is the OBJCKv1 warm-start object on full image bounds.
	Init []byte
}

// RankResult is one rank's outcome, shipped worker → hub when its part
// of the session finishes (successfully or not). Tile is an opaque
// OBJCKv1 blob of the rank's extended-tile slices.
type RankResult struct {
	// Rank identifies the sender within the session.
	Rank int
	// Err, when non-empty, reports the rank failed; other fields may be
	// zero. A failing rank still reports in-band — it never tears down
	// the connection.
	Err string
	// Cancelled marks a collective Ctx-cancellation stop with partial
	// state in Tile.
	Cancelled bool

	// CostHistory is the all-reduced global cost per iteration.
	CostHistory []float64
	// Locations counts the rank's assigned probe locations (for hve,
	// including redundant ones; Owned excludes them).
	Locations, Owned int
	// MemBytes estimates the rank's resident footprint; ComputeNS and
	// CommNS split its wall-clock between gradient work and passes.
	MemBytes          int64
	ComputeNS, CommNS int64
	// SentBytes and SentMessages count the rank's outgoing payload
	// traffic.
	SentBytes, SentMessages int64
	// Tile is the rank's extended-tile object as OBJCKv1 bytes.
	Tile []byte
}

func encodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("transport: encoding %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

func decodeGob(b []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(v); err != nil {
		return fmt.Errorf("transport: decoding %T: %w", v, err)
	}
	return nil
}
