package transport

import (
	"bytes"
	"testing"

	"ptychopath/internal/wire"
)

// benchFrame is a routed-data frame with a 512 KiB payload — the
// shape of a halo-exchange message at production window sizes.
func benchFrame() frame {
	payload := make([]byte, 512<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	return frame{typ: frameData, src: 1, dst: 2, tag: 7, payload: payload}
}

// BenchmarkFrameEncode measures appending one PTGW frame into a warm
// batch buffer — the per-frame cost of Client.send.
func BenchmarkFrameEncode(b *testing.B) {
	f := benchFrame()
	buf, err := appendFrame(nil, f, wire.GenCurrent)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = appendFrame(buf[:0], f, wire.GenCurrent)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameDecode measures one CRC-verified frame read with a
// warm frameReader — the per-frame cost of the hub and client read
// loops.
func BenchmarkFrameDecode(b *testing.B) {
	raw, err := appendFrame(nil, benchFrame(), wire.GenCurrent)
	if err != nil {
		b.Fatal(err)
	}
	r := bytes.NewReader(raw)
	rd := frameReader{r: r}
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(raw)
		if _, err := rd.read(); err != nil {
			b.Fatal(err)
		}
	}
}
