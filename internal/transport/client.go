package transport

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"ptychopath/internal/simmpi"
	"ptychopath/internal/wire"
)

// Client is a worker's endpoint on the grid: one persistent TCP
// connection to the coordinator hub, reused across sessions. Between
// sessions the client idles in WaitSetup; during a session it
// implements simmpi.Transport for exactly one rank, so the parallel
// engines run over it unmodified.
//
// Concurrency contract: one goroutine drives the session (the rank
// loop); the internal reader goroutine is the only other actor. The
// blocking operations are not safe for concurrent use with each other —
// the same contract a simmpi rank has.
type Client struct {
	conn    net.Conn
	name    string
	id      int
	timeout time.Duration
	gen     wire.Gen // checksum generation negotiated at handshake

	// wmu serializes frame writes. Outgoing frames are batched into
	// wbuf — small collective and progress frames coalesce into one
	// kernel write — and flushed when the batch passes flushThreshold
	// or, crucially, before EVERY operation that blocks on a reply
	// (await, WaitSetup, SendResult, Close): nothing this endpoint
	// waits on can depend on bytes still sitting in its own buffer.
	wmu  sync.Mutex
	wbuf []byte

	mu       sync.Mutex
	signal   chan struct{} // pulsed on every state change; single waiter
	inbox    []message
	setups   []*Setup
	barriers int     // pending barrier releases
	reduces  []float64
	snapAcks []error
	fatal         error  // connection dead — permanent
	sessErr       error  // current session aborted — cleared on the next SETUP
	onCancel      func() // session cancel hook (frameCancel)
	pendingCancel bool   // a frameCancel arrived before the hook was installed

	rank, size int
	sentBytes  int64
	sentMsgs   int64
}

type message struct {
	src, tag int
	data     []complex128
}

// Client implements simmpi.Transport during a session.
var _ simmpi.Transport = (*Client)(nil)

// DialOptions configures a worker connection.
type DialOptions struct {
	// Name identifies the worker in the hub's registry (hostname-pid by
	// default).
	Name string
	// Timeout bounds every blocking operation between frames; sessions
	// override it with their Setup.TimeoutMS. 0 selects
	// simmpi.DefaultTimeout.
	Timeout time.Duration
}

// Dial connects to a hub, performs the hello/welcome handshake, and
// returns the registered client. A hub speaking a different
// ProtoVersion yields ErrVersionMismatch.
func Dial(addr string, opts DialOptions) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	c, err := newClient(conn, opts)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

func newClient(conn net.Conn, opts DialOptions) (*Client, error) {
	if opts.Timeout <= 0 {
		opts.Timeout = simmpi.DefaultTimeout
	}
	c := &Client{
		conn:    conn,
		name:    opts.Name,
		timeout: opts.Timeout,
		signal:  make(chan struct{}, 1),
	}
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	// HELLO is always legacy-framed so a hub of any generation can
	// parse it and refuse with a proper version error.
	hello := append(uint32le(ProtoVersion), []byte(opts.Name)...)
	if err := writeFrameGen(conn, frame{typ: frameHello, dst: hubRank, payload: hello}, wire.GenIEEE); err != nil {
		return nil, fmt.Errorf("transport: handshake send: %w", err)
	}
	fr, err := readFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("transport: handshake: %w", err)
	}
	switch fr.typ {
	case frameWelcome:
		if len(fr.payload) < 8 {
			return nil, fmt.Errorf("%w: short welcome", ErrFrameCorrupt)
		}
		v := le32(fr.payload)
		if v < MinProtoVersion || v > ProtoVersion {
			return nil, fmt.Errorf("%w: hub speaks v%d, client v%d", ErrVersionMismatch, v, ProtoVersion)
		}
		// The hub echoes the negotiated version; v3 connections frame
		// with the Castagnoli generation from here on.
		if v >= 3 {
			c.gen = wire.GenCastagnoli
		} else {
			c.gen = wire.GenIEEE
		}
		c.id = int(int32(le32(fr.payload[4:])))
	case frameError:
		return nil, decodeError(fr.payload)
	default:
		return nil, fmt.Errorf("%w: unexpected handshake frame 0x%02x", ErrFrameCorrupt, fr.typ)
	}
	conn.SetDeadline(time.Time{})
	go c.readLoop()
	return c, nil
}

// ID returns the hub-assigned worker id.
func (c *Client) ID() int { return c.id }

// pulse wakes the (single) waiting goroutine.
func (c *Client) pulse() {
	select {
	case c.signal <- struct{}{}:
	default:
	}
}

// readLoop is the sole frame reader: it classifies incoming frames into
// the client's queues and wakes the session goroutine.
func (c *Client) readLoop() {
	rd := frameReader{r: c.conn}
	for {
		fr, err := rd.read()
		if err != nil {
			c.setFatal(fmt.Errorf("transport: connection lost: %w", err))
			return
		}
		switch fr.typ {
		case frameSetup:
			var s Setup
			if err := decodeGob(fr.payload, &s); err != nil {
				c.setFatal(err)
				return
			}
			c.mu.Lock()
			// A SETUP opens a fresh session: everything still queued
			// belongs to a previous one (per-connection TCP ordering —
			// the hub never interleaves new-session traffic before the
			// SETUP), so clear it HERE, not in WaitSetup, where traffic
			// that raced ahead of the pop would be wiped with it.
			c.inbox = nil
			c.barriers = 0
			c.reduces = nil
			c.snapAcks = nil
			c.sessErr = nil
			c.onCancel = nil
			c.pendingCancel = false
			c.setups = append(c.setups, &s)
			c.mu.Unlock()
			c.pulse()
		case frameData:
			data, err := bytesToComplex(fr.payload)
			if err != nil {
				c.setFatal(err)
				return
			}
			c.mu.Lock()
			c.inbox = append(c.inbox, message{src: int(fr.src), tag: int(fr.tag), data: data})
			c.mu.Unlock()
			c.pulse()
		case frameBarrierOK:
			c.mu.Lock()
			c.barriers++
			c.mu.Unlock()
			c.pulse()
		case frameReduceOK:
			if len(fr.payload) < 8 {
				c.setFatal(fmt.Errorf("%w: short reduce result", ErrFrameCorrupt))
				return
			}
			c.mu.Lock()
			c.reduces = append(c.reduces, float64FromLE(fr.payload))
			c.mu.Unlock()
			c.pulse()
		case frameSnapshotOK:
			var ack error
			if len(fr.payload) == 0 || fr.payload[0] != 0 {
				msg := "snapshot rejected"
				if len(fr.payload) > 1 {
					msg = string(fr.payload[1:])
				}
				ack = fmt.Errorf("transport: coordinator: %s", msg)
			}
			c.mu.Lock()
			c.snapAcks = append(c.snapAcks, ack)
			c.mu.Unlock()
			c.pulse()
		case frameCancel:
			c.mu.Lock()
			fn := c.onCancel
			if fn == nil {
				// The session goroutine has not installed its hook yet
				// (the cancel raced the WaitSetup pop); deliver it then.
				c.pendingCancel = true
			}
			c.mu.Unlock()
			if fn != nil {
				fn()
			}
		case frameError:
			// Session-level abort: the connection stays healthy, the
			// current session's blocking operations fail.
			c.mu.Lock()
			c.sessErr = decodeError(fr.payload)
			c.mu.Unlock()
			c.pulse()
		default:
			c.setFatal(fmt.Errorf("%w: unexpected frame 0x%02x", ErrFrameCorrupt, fr.typ))
			return
		}
	}
}

func (c *Client) setFatal(err error) {
	c.mu.Lock()
	if c.fatal == nil {
		c.fatal = err
	}
	c.mu.Unlock()
	c.pulse()
}

// failed returns the error that should interrupt a blocking operation,
// or nil. Caller holds c.mu.
func (c *Client) failedLocked() error {
	if c.fatal != nil {
		return c.fatal
	}
	return c.sessErr
}

// await blocks until ready() reports true (under c.mu) or the deadline,
// a connection failure, or a session abort intervenes. what describes
// the wait for the timeout error.
func (c *Client) await(ready func() bool, what string) error {
	c.flush() // whatever we wait on may depend on our batched frames
	deadline := time.Now().Add(c.timeout)
	c.mu.Lock()
	for {
		if err := c.failedLocked(); err != nil {
			c.mu.Unlock()
			return err
		}
		if ready() {
			c.mu.Unlock()
			return nil
		}
		c.mu.Unlock()
		wait := time.Until(deadline)
		if wait <= 0 {
			return fmt.Errorf("%w: rank %d %s", simmpi.ErrTimeout, c.rank, what)
		}
		timer := time.NewTimer(wait)
		select {
		case <-c.signal:
			timer.Stop()
		case <-timer.C:
			return fmt.Errorf("%w: rank %d %s", simmpi.ErrTimeout, c.rank, what)
		}
		c.mu.Lock()
	}
}

// WaitSetup blocks until the coordinator opens a session on this
// connection and returns its Setup. It resets all per-session state
// (inbox, collectives, a previous session's abort) and installs
// onCancel as the frameCancel hook. ctx bounds the idle wait; a closed
// connection returns the underlying error.
func (c *Client) WaitSetup(ctx context.Context, onCancel func()) (*Setup, error) {
	c.flush() // a previous session's last frames must not sit batched
	stop := context.AfterFunc(ctx, c.pulse)
	defer stop()
	var setup *Setup
	c.mu.Lock()
	for {
		if c.fatal != nil {
			err := c.fatal
			c.mu.Unlock()
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			c.mu.Unlock()
			return nil, err
		}
		if len(c.setups) > 0 {
			setup = c.setups[0]
			c.setups = c.setups[1:]
			break
		}
		c.mu.Unlock()
		<-c.signal
		c.mu.Lock()
	}
	// Per-session queues were already reset when the SETUP frame
	// arrived (see readLoop); here we only bind the session hooks.
	c.onCancel = onCancel
	deliverCancel := c.pendingCancel && onCancel != nil
	c.pendingCancel = false
	c.rank = setup.Rank
	c.size = setup.Size
	if setup.TimeoutMS > 0 {
		c.timeout = time.Duration(setup.TimeoutMS) * time.Millisecond
	}
	c.mu.Unlock()
	if deliverCancel {
		onCancel()
	}
	return setup, nil
}

// flushThreshold bounds the outgoing batch: a frame that pushes the
// buffer past it is written out immediately, so large DATA payloads
// go straight to the kernel while small gradient-iteration frames
// (barrier, reduce, iter stats) coalesce into one write per flush.
const flushThreshold = 64 << 10

// send queues one frame on the outgoing batch, flushing when it
// passes flushThreshold. A write failure is recorded as fatal (it
// surfaces on the next blocking operation, matching the eager Send
// contract).
func (c *Client) send(f frame) {
	c.wmu.Lock()
	buf, err := appendFrame(c.wbuf, f, c.gen)
	c.wbuf = buf
	if err == nil && len(c.wbuf) >= flushThreshold {
		err = c.flushLocked()
	}
	c.wmu.Unlock()
	if err != nil {
		c.setFatal(fmt.Errorf("transport: send: %w", err))
	}
}

// flush writes out any batched frames. Called before every blocking
// wait — the deadlock-freedom rule of the batching scheme.
func (c *Client) flush() {
	c.wmu.Lock()
	err := c.flushLocked()
	c.wmu.Unlock()
	if err != nil {
		c.setFatal(fmt.Errorf("transport: send: %w", err))
	}
}

func (c *Client) flushLocked() error {
	if len(c.wbuf) == 0 {
		return nil
	}
	_, err := c.conn.Write(c.wbuf)
	c.wbuf = c.wbuf[:0]
	return err
}

// Rank returns this endpoint's rank in the current session.
func (c *Client) Rank() int { return c.rank }

// Size returns the current session's world size.
func (c *Client) Size() int { return c.size }

// Send transmits data to dst with the given tag (eager: never blocks
// on the receiver; the frame may ride the outgoing batch until the
// next flush, and a delivery failure surfaces on the next blocking
// call).
func (c *Client) Send(dst, tag int, data []complex128) {
	if dst < 0 || dst >= c.size {
		panic(fmt.Sprintf("transport: send to invalid rank %d (size %d)", dst, c.size))
	}
	c.send(frame{typ: frameData, src: int32(c.rank), dst: int32(dst), tag: int32(tag),
		payload: complexToBytes(data)})
	c.mu.Lock()
	c.sentBytes += int64(16 * len(data))
	c.sentMsgs++
	c.mu.Unlock()
}

// Recv blocks until a message with matching (src, tag) arrives — FIFO
// per pair, src may be simmpi.AnySource — or the deadline fires.
func (c *Client) Recv(src, tag int) ([]complex128, error) {
	var data []complex128
	err := c.await(func() bool {
		for i, m := range c.inbox {
			if (src == simmpi.AnySource || m.src == src) && m.tag == tag {
				data = m.data
				c.inbox = append(c.inbox[:i], c.inbox[i+1:]...)
				return true
			}
		}
		return false
	}, fmt.Sprintf("waiting for src=%d tag=%d", src, tag))
	if err != nil {
		return nil, err
	}
	return data, nil
}

// request mirrors simmpi.Request for the TCP endpoint.
type request struct {
	c        *Client
	src, tag int
	done     bool
	data     []complex128
	err      error
}

// Wait completes the request.
func (r *request) Wait() ([]complex128, error) {
	if r.done {
		return r.data, r.err
	}
	r.data, r.err = r.c.Recv(r.src, r.tag)
	r.done = true
	return r.data, r.err
}

// Isend starts a non-blocking send (eager: complete immediately).
func (c *Client) Isend(dst, tag int, data []complex128) simmpi.Pending {
	c.Send(dst, tag, data)
	return &request{c: c, done: true}
}

// Irecv posts a non-blocking receive; the match happens at Wait.
func (c *Client) Irecv(src, tag int) simmpi.Pending {
	return &request{c: c, src: src, tag: tag}
}

// Barrier blocks until every rank of the session has entered it (the
// hub counts entries and broadcasts the release).
func (c *Client) Barrier() error {
	c.send(frame{typ: frameBarrier, src: int32(c.rank), dst: hubRank})
	return c.await(func() bool {
		if c.barriers > 0 {
			c.barriers--
			return true
		}
		return false
	}, "in barrier")
}

// AllreduceSum returns the sum of x across all ranks. The hub
// accumulates contributions in rank order, so the result is bit-for-bit
// deterministic and identical to the in-process world's.
func (c *Client) AllreduceSum(x float64) (float64, error) {
	c.send(frame{typ: frameReduce, src: int32(c.rank), dst: hubRank, payload: float64le(x)})
	var sum float64
	err := c.await(func() bool {
		if len(c.reduces) > 0 {
			sum = c.reduces[0]
			c.reduces = c.reduces[1:]
			return true
		}
		return false
	}, "in allreduce")
	return sum, err
}

// SentBytes returns this endpoint's cumulative outgoing payload bytes.
func (c *Client) SentBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sentBytes
}

// SentMessages returns this endpoint's cumulative outgoing messages.
func (c *Client) SentMessages() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sentMsgs
}

// SendIteration reports rank 0's per-iteration progress to the
// coordinator (fire-and-forget; drives job progress and SSE events).
func (c *Client) SendIteration(iter int, cost float64) {
	payload := append(int64le(int64(iter)), float64le(cost)...)
	c.send(frame{typ: frameIter, src: int32(c.rank), dst: hubRank, payload: payload})
}

// SendIterStats reports this rank's compute/communication time split
// for one iteration (fire-and-forget; feeds the coordinator's span
// trace). Every rank sends one per iteration; the hub discriminates
// the 24-byte stats payload from the 16-byte progress payload by
// length.
func (c *Client) SendIterStats(iter int, computeNS, commNS int64) {
	payload := append(int64le(int64(iter)), int64le(computeNS)...)
	payload = append(payload, int64le(commNS)...)
	c.send(frame{typ: frameIter, src: int32(c.rank), dst: hubRank, payload: payload})
}

// SendSnapshot ships a stitched object snapshot (opaque OBJCKv1 bytes)
// to the coordinator and waits for the acknowledgement — the
// coordinator writes the checkpoint before the run proceeds, mirroring
// the synchronous OnSnapshot contract of the engines. A rejected
// snapshot returns the coordinator's error, aborting the run on every
// rank through the engines' collective verdict.
func (c *Client) SendSnapshot(iter int, object []byte) error {
	payload := append(int64le(int64(iter)), object...)
	c.send(frame{typ: frameSnapshot, src: int32(c.rank), dst: hubRank, payload: payload})
	var ack error
	err := c.await(func() bool {
		if len(c.snapAcks) > 0 {
			ack = c.snapAcks[0]
			c.snapAcks = c.snapAcks[1:]
			return true
		}
		return false
	}, "waiting for snapshot ack")
	if err != nil {
		return err
	}
	return ack
}

// SendResult ships this rank's outcome, ending its part of the session.
// The hub returns the worker to the idle pool on receipt.
func (c *Client) SendResult(res *RankResult) error {
	payload, err := encodeGob(res)
	if err != nil {
		return err
	}
	c.send(frame{typ: frameResult, src: int32(c.rank), dst: hubRank, payload: payload})
	c.flush() // the hub frees this worker only once the RESULT arrives
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fatal
}

// Err returns the connection's fatal error, if any.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fatal
}

// Close performs the graceful teardown: a goodbye frame, then the
// connection closes. Safe to call more than once.
func (c *Client) Close() error {
	c.wmu.Lock()
	if buf, err := appendFrame(c.wbuf, frame{typ: frameGoodbye, dst: hubRank}, c.gen); err == nil {
		c.wbuf = buf
	}
	c.flushLocked()
	c.wmu.Unlock()
	c.setFatal(ErrClosed)
	return c.conn.Close()
}

// Little-endian scalar helpers.
func uint32le(v uint32) []byte { return binary.LittleEndian.AppendUint32(nil, v) }
func le32(b []byte) uint32     { return binary.LittleEndian.Uint32(b) }
func int64le(v int64) []byte   { return binary.LittleEndian.AppendUint64(nil, uint64(v)) }
func int64FromLE(b []byte) int64 {
	return int64(binary.LittleEndian.Uint64(b))
}
func float64le(v float64) []byte {
	return binary.LittleEndian.AppendUint64(nil, math.Float64bits(v))
}
func float64FromLE(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
