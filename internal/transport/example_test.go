package transport_test

import (
	"context"
	"fmt"

	"ptychopath/internal/transport"
)

// Example_dialAndServe shows the transport's two halves working
// together on loopback TCP: a coordinator hub serving the rendezvous,
// and two worker clients that dial in, receive a session setup, run a
// tiny "reconstruction" (one point-to-point exchange and one
// allreduce — the same primitives gradsync issues), and ship results
// back. In production the hub lives inside ptychoserve and the clients
// inside ptychoworker processes on other machines.
func Example_dialAndServe() {
	hub, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer hub.Close()

	// Two workers dial the coordinator (ptychoworker -connect does
	// exactly this) and wait for work.
	results := make(chan string, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			c, err := transport.Dial(hub.Addr().String(), transport.DialOptions{
				Name: fmt.Sprintf("worker-%d", i),
			})
			if err != nil {
				panic(err)
			}
			defer c.Close()
			setup, err := c.WaitSetup(context.Background(), nil)
			if err != nil {
				panic(err)
			}
			// c now implements simmpi.Transport for this rank: the
			// engines run on it unmodified. Exchange one tagged message
			// with the peer, then allreduce a per-rank value.
			peer := 1 - setup.Rank
			c.Send(peer, 7, []complex128{complex(float64(setup.Rank), 0)})
			data, err := c.Recv(peer, 7)
			if err != nil {
				panic(err)
			}
			sum, err := c.AllreduceSum(float64(setup.Rank + 1))
			if err != nil {
				panic(err)
			}
			results <- fmt.Sprintf("rank %d got %g from rank %d, allreduce sum %g",
				setup.Rank, real(data[0]), peer, sum)
			if err := c.SendResult(&transport.RankResult{Rank: setup.Rank}); err != nil {
				panic(err)
			}
		}(i)
	}

	// The coordinator waits for both registrations, opens a 2-rank
	// session, and collects the outcomes.
	for hub.IdleWorkers() < 2 {
	}
	sess, err := hub.StartSession([]*transport.Setup{
		{JobID: "example", Algorithm: "gd"},
		{JobID: "example", Algorithm: "gd"},
	}, transport.SessionCallbacks{})
	if err != nil {
		panic(err)
	}
	ranks, err := sess.Wait(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Println(<-results)
	fmt.Println(<-results)
	fmt.Println("session results:", len(ranks))
	// Unordered output:
	// rank 0 got 1 from rank 1, allreduce sum 3
	// rank 1 got 0 from rank 0, allreduce sum 3
	// session results: 2
}
