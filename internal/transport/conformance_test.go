package transport

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"

	"ptychopath/internal/wire"
	"ptychopath/internal/wire/wiretest"
)

// conformanceFrame is a fixed routed-data frame used for the golden
// vectors: deterministic header fields and a payload long enough to
// exercise the CRC over both header and body.
func conformanceFrame() frame {
	return frame{
		typ: frameData, src: 1, dst: 2, tag: 7,
		payload: []byte("ptychowire golden frame payload 0123456789"),
	}
}

// TestGoldenFrame pins the PTGW encoding under both checksum
// generations, proves re-encode is bit-identical, and runs the
// differential check: the one reader accepts both generations and
// decodes them to the same frame.
func TestGoldenFrame(t *testing.T) {
	f := conformanceFrame()
	current, err := appendFrame(nil, f, wire.GenCurrent)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := appendFrame(nil, f, wire.GenIEEE)
	if err != nil {
		t.Fatal(err)
	}
	wiretest.Golden(t, "frame_castagnoli.golden", current)
	wiretest.Golden(t, "frame_ieee.golden", legacy)
	if bytes.Equal(current, legacy) {
		t.Fatal("generations should differ in the trailing CRC")
	}
	if !bytes.Equal(current[:len(current)-4], legacy[:len(legacy)-4]) {
		t.Fatal("generations should differ only in the trailing CRC")
	}

	for name, raw := range map[string][]byte{"castagnoli": current, "ieee": legacy} {
		got, err := readFrame(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.typ != f.typ || got.src != f.src || got.dst != f.dst || got.tag != f.tag || !bytes.Equal(got.payload, f.payload) {
			t.Fatalf("%s: decoded frame differs: %+v", name, got)
		}
		reenc, err := appendFrame(nil, got, wire.GenCurrent)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(reenc, current) {
			t.Fatalf("%s: re-encode is not bit-identical to the current generation", name)
		}
	}
}

// TestFrameCodecAllocs is the allocation-budget guard for the
// transport hot path: appending into a warm batch buffer is
// zero-alloc, and a warm frameReader spends at most the payload slice
// header it hands back.
func TestFrameCodecAllocs(t *testing.T) {
	f := conformanceFrame()
	buf, err := appendFrame(nil, f, wire.GenCurrent)
	if err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf...)

	encAllocs := testing.AllocsPerRun(100, func() {
		buf, err = appendFrame(buf[:0], f, wire.GenCurrent)
		if err != nil {
			t.Fatal(err)
		}
	})
	if encAllocs > 0 {
		t.Errorf("warm appendFrame: %.0f allocs/op, budget 0", encAllocs)
	}

	r := bytes.NewReader(raw)
	rd := frameReader{r: r}
	if _, err := rd.read(); err != nil {
		t.Fatal(err)
	}
	decAllocs := testing.AllocsPerRun(100, func() {
		r.Reset(raw)
		if _, err := rd.read(); err != nil {
			t.Fatal(err)
		}
	})
	if decAllocs > 2 {
		t.Errorf("warm frameReader.read: %.0f allocs/op, budget 2", decAllocs)
	}
}

// TestHubSpeaksIEEEToV2Worker is the downgrade-compat check: a worker
// that negotiates protocol v2 must get v2 semantics back — the WELCOME
// echoes version 2, and every hub frame on that connection carries an
// IEEE CRC so an old, single-generation reader can verify it.
func TestHubSpeaksIEEEToV2Worker(t *testing.T) {
	h := startHub(t)
	conn, err := net.Dial("tcp", h.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := append(uint32le(MinProtoVersion), []byte("v2-worker")...)
	if err := writeFrameGen(conn, frame{typ: frameHello, dst: hubRank, payload: hello}, wire.GenIEEE); err != nil {
		t.Fatal(err)
	}

	// Read the WELCOME raw so the trailing CRC's generation is visible.
	var hdr [4 + frameHeaderLen]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		t.Fatal(err)
	}
	n := binary.LittleEndian.Uint32(hdr[17:])
	body := make([]byte, int(n)+4)
	if _, err := io.ReadFull(conn, body); err != nil {
		t.Fatal(err)
	}
	payload, crc := body[:n], binary.LittleEndian.Uint32(body[n:])
	covered := append(append([]byte(nil), hdr[4:]...), payload...)
	if hdr[4] != frameWelcome {
		t.Fatalf("frame type 0x%02x, want frameWelcome", hdr[4])
	}
	if got := binary.LittleEndian.Uint32(payload); got != MinProtoVersion {
		t.Fatalf("WELCOME echoes version %d, want the negotiated %d", got, MinProtoVersion)
	}
	if crc != wire.Checksum(wire.GenIEEE, covered) {
		t.Fatal("hub sent a non-IEEE CRC to a v2 worker")
	}
	if crc == wire.Checksum(wire.GenCastagnoli, covered) {
		t.Fatal("CRC ambiguously matches both generations; fixture needs new bytes")
	}
}

// FuzzReadFrame hammers the frame decoder with the shared framing
// corpus plus PTGW-specific attacks (the length field is a uint32, so
// the lying lengths are patched separately). Every outcome must be a
// typed error or a faithful frame — never a panic, never an
// unbounded allocation.
func FuzzReadFrame(f *testing.F) {
	fr := conformanceFrame()
	current, err := appendFrame(nil, fr, wire.GenCurrent)
	if err != nil {
		f.Fatal(err)
	}
	legacy, err := appendFrame(nil, fr, wire.GenIEEE)
	if err != nil {
		f.Fatal(err)
	}
	// Shared corpus: truncations at the structural boundaries around
	// the length field (offset 17 = magic+type+src+dst+tag), CRC
	// bit-flips, and 8-byte length lies that also clobber payload.
	for _, m := range wiretest.Mutations(current, 17) {
		f.Add(m)
	}
	for _, m := range wiretest.Mutations(legacy, 17) {
		f.Add(m)
	}
	// PTGW-specific: the real length field is a uint32.
	f.Add(wiretest.PatchUint32(current, 17, maxFramePayload+1))
	f.Add(wiretest.PatchUint32(current, 17, 0xFFFFFFFF))
	f.Add(wiretest.PatchUint32(current, 17, 3))
	f.Add([]byte("PTGW"))
	f.Add([]byte("NOPE then some bytes that are long enough for a header"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rd := frameReader{r: bytes.NewReader(data)}
		for {
			got, err := rd.read()
			if err != nil {
				return // typed rejection is fine; panics are not
			}
			if len(got.payload) > maxFramePayload {
				t.Fatalf("read returned %d payload bytes past the cap", len(got.payload))
			}
			// A frame the reader accepts must survive re-encode →
			// re-read unchanged.
			reenc, err := appendFrame(nil, got, wire.GenCurrent)
			if err != nil {
				t.Fatalf("accepted frame fails re-encode: %v", err)
			}
			back, err := readFrame(bytes.NewReader(reenc))
			if err != nil {
				t.Fatalf("re-encoded frame fails re-read: %v", err)
			}
			if back.typ != got.typ || back.src != got.src || back.dst != got.dst || back.tag != got.tag || !bytes.Equal(back.payload, got.payload) {
				t.Fatal("frame did not survive re-encode round trip")
			}
		}
	})
}
