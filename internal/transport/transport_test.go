package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"ptychopath/internal/simmpi"
)

const testTimeout = 5 * time.Second

func startHub(t *testing.T) *Hub {
	t.Helper()
	h, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	return h
}

func dialWorker(t *testing.T, h *Hub, name string) *Client {
	t.Helper()
	c, err := Dial(h.Addr().String(), DialOptions{Name: name, Timeout: testTimeout})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func waitWorkers(t *testing.T, h *Hub, n int) {
	t.Helper()
	deadline := time.Now().Add(testTimeout)
	for time.Now().Before(deadline) {
		if len(h.Workers()) == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("hub registered %d workers, want %d", len(h.Workers()), n)
}

func testSetups(n int) []*Setup {
	out := make([]*Setup, n)
	for i := range out {
		out[i] = &Setup{JobID: "test", Algorithm: "test"}
	}
	return out
}

// TestFrameRoundTrip checks the encoder against the decoder, and that
// a flipped payload byte is caught by the CRC.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := frame{typ: frameData, src: 2, dst: 3, tag: 7, payload: []byte("hello frames")}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	out, err := readFrame(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if out.typ != in.typ || out.src != in.src || out.dst != in.dst ||
		out.tag != in.tag || !bytes.Equal(out.payload, in.payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}

	raw[25] ^= 0x40 // corrupt one payload byte
	if _, err := readFrame(bytes.NewReader(raw)); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("corrupted frame: got %v, want ErrFrameCorrupt", err)
	}

	if _, err := readFrame(bytes.NewReader(raw[:10])); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("truncated header: got %v, want ErrFrameCorrupt", err)
	}
	full := buf.Bytes()
	if _, err := readFrame(bytes.NewReader(full[:len(full)-3])); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("truncated payload: got %v, want ErrFrameCorrupt", err)
	}
}

// TestHandshakeVersionMismatch: a worker announcing the wrong protocol
// version is refused with a typed error — on both sides of the wire.
func TestHandshakeVersionMismatch(t *testing.T) {
	h := startHub(t)

	// Hub side: a raw client sending version 99 receives a frameError
	// that decodes to ErrVersionMismatch.
	conn, err := net.Dial("tcp", h.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := append(uint32le(99), []byte("old-worker")...)
	if err := writeFrame(conn, frame{typ: frameHello, dst: hubRank, payload: hello}); err != nil {
		t.Fatal(err)
	}
	fr, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if fr.typ != frameError {
		t.Fatalf("frame type 0x%02x, want frameError", fr.typ)
	}
	if err := decodeError(fr.payload); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("decoded %v, want ErrVersionMismatch", err)
	}
	if len(h.Workers()) != 0 {
		t.Fatalf("mismatched worker was registered")
	}

	// Client side: a hub answering with a different version fails Dial
	// with the typed error.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		readFrame(c) // hello
		writeFrame(c, frame{typ: frameWelcome, src: hubRank,
			payload: append(uint32le(99), uint32le(1)...)})
	}()
	if _, err := Dial(ln.Addr().String(), DialOptions{Timeout: testTimeout}); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("dial against v99 hub: got %v, want ErrVersionMismatch", err)
	}
}

// TestTruncatedFrameSurfacesTypedError: a stream cut mid-frame turns
// into ErrFrameCorrupt on the next blocking call instead of a hang.
func TestTruncatedFrameSurfacesTypedError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		readFrame(c) // hello
		writeFrame(c, frame{typ: frameWelcome, src: hubRank,
			payload: append(uint32le(ProtoVersion), uint32le(1)...)})
		// A frame header promising a payload that never arrives.
		c.Write([]byte{'P', 'T', 'G', 'W', frameData, 0, 0, 0, 0})
		c.Close()
	}()
	c, err := Dial(ln.Addr().String(), DialOptions{Timeout: testTimeout})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Recv(0, 1); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("recv after truncated frame: got %v, want ErrFrameCorrupt", err)
	}
}

// TestWorldSemantics runs a 4-rank session over loopback TCP and
// exercises the full Transport contract: ring point-to-point with tags,
// AnySource, barrier, and the rank-ordered allreduce.
func TestWorldSemantics(t *testing.T) {
	h := startHub(t)
	const n = 4
	clients := make([]*Client, n)
	for i := range clients {
		clients[i] = dialWorker(t, h, fmt.Sprintf("w%d", i))
	}
	waitWorkers(t, h, n)

	sess, err := h.StartSession(testSetups(n), SessionCallbacks{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			errs[i] = func() error {
				setup, err := c.WaitSetup(context.Background(), nil)
				if err != nil {
					return err
				}
				rank, size := setup.Rank, setup.Size
				if rank != c.Rank() || size != c.Size() || size != n {
					return fmt.Errorf("rank/size mismatch: %d/%d", c.Rank(), c.Size())
				}
				// Ring exchange with a tag.
				c.Send((rank+1)%size, 7, []complex128{complex(float64(rank), 1)})
				data, err := c.Recv((rank+size-1)%size, 7)
				if err != nil {
					return err
				}
				want := complex(float64((rank+size-1)%size), 1)
				if len(data) != 1 || data[0] != want {
					return fmt.Errorf("ring payload %v, want %v", data, want)
				}
				// AnySource receive via isend/irecv.
				req := c.Irecv(simmpi.AnySource, 9)
				c.Isend(rank, 9, []complex128{complex(0, float64(rank))})
				if data, err = req.Wait(); err != nil {
					return err
				}
				if len(data) != 1 || data[0] != complex(0, float64(rank)) {
					return fmt.Errorf("anysource payload %v", data)
				}
				if err := c.Barrier(); err != nil {
					return err
				}
				sum, err := c.AllreduceSum(float64(rank + 1))
				if err != nil {
					return err
				}
				if sum != 10 { // 1+2+3+4
					return fmt.Errorf("allreduce sum %g, want 10", sum)
				}
				if c.SentBytes() == 0 || c.SentMessages() == 0 {
					return fmt.Errorf("sent counters not advancing")
				}
				return c.SendResult(&RankResult{Rank: rank, CostHistory: []float64{sum}})
			}()
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	results, err := sess.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for rank, r := range results {
		if r.Rank != rank || len(r.CostHistory) != 1 || r.CostHistory[0] != 10 {
			t.Fatalf("result %d: %+v", rank, r)
		}
	}
	if h.BytesRouted() == 0 || h.MessagesRouted() == 0 {
		t.Fatal("hub routed nothing")
	}
}

// TestSessionReuse: the same worker connections serve two sessions in a
// row — per-peer connection reuse, no re-dial between jobs.
func TestSessionReuse(t *testing.T) {
	h := startHub(t)
	const n = 2
	clients := make([]*Client, n)
	for i := range clients {
		clients[i] = dialWorker(t, h, fmt.Sprintf("w%d", i))
	}
	waitWorkers(t, h, n)

	for round := 0; round < 2; round++ {
		sess, err := h.StartSession(testSetups(n), SessionCallbacks{})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		var wg sync.WaitGroup
		errs := make([]error, n)
		for i, c := range clients {
			wg.Add(1)
			go func(i int, c *Client) {
				defer wg.Done()
				errs[i] = func() error {
					setup, err := c.WaitSetup(context.Background(), nil)
					if err != nil {
						return err
					}
					sum, err := c.AllreduceSum(float64(setup.Rank))
					if err != nil {
						return err
					}
					if sum != 1 {
						return fmt.Errorf("sum %g, want 1", sum)
					}
					return c.SendResult(&RankResult{Rank: setup.Rank})
				}()
			}(i, c)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d rank %d: %v", round, i, err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
		if _, err := sess.Wait(ctx); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		cancel()
	}
	if got := h.SessionsStarted(); got != 2 {
		t.Fatalf("sessions started %d, want 2", got)
	}
	if len(h.Workers()) != n {
		t.Fatalf("workers dropped between sessions: %v", h.Workers())
	}
}

// TestPeerDropMidAllreduce: one rank's process dies while the other is
// blocked in an allreduce; the survivor gets ErrPeerLost (not a hang,
// not a timeout), and the session fails the same way.
func TestPeerDropMidAllreduce(t *testing.T) {
	h := startHub(t)
	c0 := dialWorker(t, h, "survivor")
	c1 := dialWorker(t, h, "casualty")
	waitWorkers(t, h, 2)

	sess, err := h.StartSession(testSetups(2), SessionCallbacks{})
	if err != nil {
		t.Fatal(err)
	}
	var survivorErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := c0.WaitSetup(context.Background(), nil); err != nil {
			survivorErr = err
			return
		}
		// Blocks: the peer never contributes.
		_, survivorErr = c0.AllreduceSum(1)
	}()
	if _, err := c1.WaitSetup(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	c1.Close() // the disconnect, mid-collective

	wg.Wait()
	if !errors.Is(survivorErr, ErrPeerLost) {
		t.Fatalf("survivor got %v, want ErrPeerLost", survivorErr)
	}
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	if _, err := sess.Wait(ctx); !errors.Is(err, ErrPeerLost) {
		t.Fatalf("session wait got %v, want ErrPeerLost", err)
	}
}

// TestFailedSessionHoldsLeaseUntilResult: when a session aborts, a
// surviving worker must NOT return to the idle pool until its final
// RankResult arrives — otherwise a new session could be leased onto
// the connection and poisoned by the old session's stale frames.
func TestFailedSessionHoldsLeaseUntilResult(t *testing.T) {
	h := startHub(t)
	c0 := dialWorker(t, h, "survivor")
	c1 := dialWorker(t, h, "casualty")
	waitWorkers(t, h, 2)

	sess, err := h.StartSession(testSetups(2), SessionCallbacks{})
	if err != nil {
		t.Fatal(err)
	}
	setup0, err := c0.WaitSetup(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.WaitSetup(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	if _, err := sess.Wait(ctx); !errors.Is(err, ErrPeerLost) {
		t.Fatalf("session wait got %v, want ErrPeerLost", err)
	}
	// The survivor has not reported in: it must still be leased (busy),
	// so a new 1-rank session cannot grab its connection.
	if got := h.IdleWorkers(); got != 0 {
		t.Fatalf("idle workers %d right after abort, want 0 (survivor still mid-engine)", got)
	}
	if _, err := h.StartSession(testSetups(1), SessionCallbacks{}); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("leasing a mid-abort worker: got %v, want ErrNoWorkers", err)
	}
	// Once the survivor ships its (failed) result it returns to the pool.
	if err := c0.SendResult(&RankResult{Rank: setup0.Rank, Err: "peer lost"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(testTimeout)
	for time.Now().Before(deadline) && h.IdleWorkers() != 1 {
		time.Sleep(time.Millisecond)
	}
	if got := h.IdleWorkers(); got != 1 {
		t.Fatalf("idle workers %d after survivor's result, want 1", got)
	}
	if _, err := h.StartSession(testSetups(1), SessionCallbacks{}); err != nil {
		t.Fatalf("worker not leasable after returning to pool: %v", err)
	}
}

// TestRecvDeadline: a receive nobody will ever satisfy fails with the
// engine-visible simmpi.ErrTimeout instead of hanging — the deadlock
// detector of the TCP world.
func TestRecvDeadline(t *testing.T) {
	h := startHub(t)
	c0 := dialWorker(t, h, "w0")
	c1 := dialWorker(t, h, "w1")
	waitWorkers(t, h, 2)
	if _, err := h.StartSession(testSetups(2), SessionCallbacks{}); err != nil {
		t.Fatal(err)
	}
	for _, c := range []*Client{c0, c1} {
		if _, err := c.WaitSetup(context.Background(), nil); err != nil {
			t.Fatal(err)
		}
	}
	c0.timeout = 100 * time.Millisecond
	start := time.Now()
	if _, err := c0.Recv(1, 42); !errors.Is(err, simmpi.ErrTimeout) {
		t.Fatalf("got %v, want simmpi.ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > testTimeout {
		t.Fatalf("deadline took %v", elapsed)
	}
}

// TestNoWorkers: a session larger than the idle pool is refused with
// the typed error.
func TestNoWorkers(t *testing.T) {
	h := startHub(t)
	dialWorker(t, h, "only")
	waitWorkers(t, h, 1)
	if _, err := h.StartSession(testSetups(3), SessionCallbacks{}); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("got %v, want ErrNoWorkers", err)
	}
	// The lone idle worker must not stay leased after the refusal.
	if h.IdleWorkers() != 1 {
		t.Fatalf("idle workers %d after refused session, want 1", h.IdleWorkers())
	}
}
