package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ptychopath/internal/wire"
)

// Hub is the coordinator's side of the grid: it accepts worker
// connections (rendezvous + version handshake), keeps the registry of
// idle workers, and routes session traffic — DATA frames rank-to-rank,
// barrier counting, rank-ordered allreduce sums, snapshot and progress
// relay. One Hub serves many sessions over the workers' persistent
// connections; a worker participates in at most one session at a time.
type Hub struct {
	ln net.Listener

	mu      sync.Mutex
	workers map[int]*hubConn
	nextID  int
	closed  bool

	bytesRouted atomic.Int64
	msgsRouted  atomic.Int64
	sessions    atomic.Int64
}

// hubConn is one worker's registered connection.
type hubConn struct {
	id   int
	name string
	conn net.Conn
	gen  wire.Gen // checksum generation negotiated at handshake

	wmu  sync.Mutex // serializes frame writes
	wbuf []byte     // per-connection encode scratch, guarded by wmu

	// Per-connection liveness and traffic counters, surfaced via
	// Workers() for the fleet-health endpoints. lastSeen is unix nanos
	// of the most recent frame read from the worker (registration time
	// until the first frame arrives).
	lastSeen atomic.Int64
	bytesIn  atomic.Int64
	bytesOut atomic.Int64
	msgs     atomic.Int64
	sessCnt  atomic.Int64

	mu   sync.Mutex
	sess *Session // nil while idle
	rank int
	done bool // this rank's RESULT arrived for the current session
}

// NewHub starts a hub on the given listener and begins accepting
// workers. Close the hub to stop.
func NewHub(ln net.Listener) *Hub {
	h := &Hub{ln: ln, workers: make(map[int]*hubConn)}
	go h.acceptLoop()
	return h
}

// Listen is the net.Listen + NewHub convenience.
func Listen(addr string) (*Hub, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return NewHub(ln), nil
}

// Addr returns the hub's listen address.
func (h *Hub) Addr() net.Addr { return h.ln.Addr() }

// BytesRouted returns the cumulative DATA payload bytes the hub has
// forwarded between ranks.
func (h *Hub) BytesRouted() int64 { return h.bytesRouted.Load() }

// MessagesRouted returns the cumulative DATA frames forwarded.
func (h *Hub) MessagesRouted() int64 { return h.msgsRouted.Load() }

// SessionsStarted returns the number of sessions the hub has opened.
func (h *Hub) SessionsStarted() int64 { return h.sessions.Load() }

// Close stops accepting and closes every worker connection.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	conns := make([]*hubConn, 0, len(h.workers))
	for _, w := range h.workers {
		conns = append(conns, w)
	}
	h.mu.Unlock()
	h.ln.Close()
	for _, w := range conns {
		w.conn.Close()
	}
}

func (h *Hub) acceptLoop() {
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go h.serveConn(conn)
	}
}

// serveConn performs the handshake and then pumps the worker's frames
// for the rest of the connection's life.
func (h *Hub) serveConn(conn net.Conn) {
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	rd := frameReader{r: conn}
	fr, err := rd.read()
	if err != nil || fr.typ != frameHello || len(fr.payload) < 4 {
		conn.Close()
		return
	}
	v := le32(fr.payload)
	if v < MinProtoVersion || v > ProtoVersion {
		// Version mismatch: tell the client precisely why, then hang
		// up — legacy-framed, so a worker of any generation parses it.
		writeFrameGen(conn, frame{typ: frameError, src: hubRank,
			payload: errorPayload(codeVersion, fmt.Sprintf("hub speaks v%d-v%d, worker sent v%d", MinProtoVersion, ProtoVersion, v))}, wire.GenIEEE)
		conn.Close()
		return
	}
	name := string(fr.payload[4:])

	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		conn.Close()
		return
	}
	h.nextID++
	// The connection frames with the Castagnoli generation only when
	// the worker is v3+; a v2 worker's reader knows only IEEE.
	gen := wire.GenIEEE
	if v >= 3 {
		gen = wire.GenCastagnoli
	}
	w := &hubConn{id: h.nextID, name: name, conn: conn, gen: gen}
	h.mu.Unlock()

	// WELCOME must be on the wire before the worker becomes leasable:
	// registering first would let a concurrent StartSession write its
	// SETUP ahead of the handshake reply. It echoes the negotiated
	// version — the agreed dialect, not the hub's newest.
	welcome := append(uint32le(v), uint32le(uint32(w.id))...)
	if err := w.write(frame{typ: frameWelcome, src: hubRank, payload: welcome}); err != nil {
		conn.Close()
		return
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		conn.Close()
		return
	}
	h.workers[w.id] = w
	h.mu.Unlock()
	conn.SetDeadline(time.Time{})
	w.lastSeen.Store(time.Now().UnixNano())

	for {
		fr, err := rd.read()
		if err != nil {
			h.drop(w, err)
			return
		}
		w.lastSeen.Store(time.Now().UnixNano())
		w.msgs.Add(1)
		w.bytesIn.Add(int64(len(fr.payload)))
		if fr.typ == frameGoodbye {
			h.drop(w, nil)
			return
		}
		w.mu.Lock()
		sess := w.sess
		w.mu.Unlock()
		if sess == nil {
			continue // stale frame from an already-finished session
		}
		sess.handle(w, fr)
	}
}

// drop unregisters a worker connection; if it was mid-session the
// session fails (the capstone "worker disconnect" path).
func (h *Hub) drop(w *hubConn, err error) {
	h.mu.Lock()
	delete(h.workers, w.id)
	h.mu.Unlock()
	w.conn.Close()
	w.mu.Lock()
	sess := w.sess
	w.sess = nil
	w.mu.Unlock()
	if sess != nil {
		reason := fmt.Errorf("%w: worker %d (%s) disconnected", ErrPeerLost, w.id, w.name)
		if err != nil && !errors.Is(err, net.ErrClosed) {
			reason = fmt.Errorf("%w: worker %d (%s): %v", ErrPeerLost, w.id, w.name, err)
		}
		sess.fail(reason)
	}
}

func (w *hubConn) write(f frame) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	w.bytesOut.Add(int64(len(f.payload)))
	buf, err := appendFrame(w.wbuf[:0], f, w.gen)
	w.wbuf = buf
	if err != nil {
		return err
	}
	_, err = w.conn.Write(buf)
	return err
}

// WorkerInfo describes one registered worker for status endpoints:
// identity, lease state, last-seen liveness, and the connection's
// cumulative traffic/session counters.
type WorkerInfo struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	Busy bool   `json:"busy"`
	// LastSeen is when the hub last read a frame from this worker
	// (its registration time until the first frame).
	LastSeen time.Time `json:"last_seen"`
	// BytesIn/BytesOut count frame payload bytes received from / sent
	// to the worker over the connection's whole life; Messages counts
	// frames received; Sessions counts session leases.
	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"`
	Messages int64 `json:"messages"`
	Sessions int64 `json:"sessions"`
}

// Workers lists the registered workers, idle and busy, in id order.
func (h *Hub) Workers() []WorkerInfo {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]WorkerInfo, 0, len(h.workers))
	for _, w := range h.workers {
		w.mu.Lock()
		busy := w.sess != nil
		w.mu.Unlock()
		out = append(out, WorkerInfo{
			ID: w.id, Name: w.name, Busy: busy,
			LastSeen: time.Unix(0, w.lastSeen.Load()),
			BytesIn:  w.bytesIn.Load(),
			BytesOut: w.bytesOut.Load(),
			Messages: w.msgs.Load(),
			Sessions: w.sessCnt.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IdleWorkers returns how many registered workers are not in a session.
func (h *Hub) IdleWorkers() int {
	n := 0
	for _, w := range h.Workers() {
		if !w.Busy {
			n++
		}
	}
	return n
}

// SessionCallbacks receive a session's relayed progress on hub-side
// goroutines. OnSnapshot blocks rank 0 until it returns (synchronous
// checkpointing); a non-nil error aborts the run on every rank.
// OnRankTiming receives every rank's per-iteration compute/comm time
// split (the v2 extended ITER frames) and may be called concurrently
// for different ranks.
type SessionCallbacks struct {
	OnIteration  func(iter int, cost float64)
	OnSnapshot   func(iter int, object []byte) error
	OnRankTiming func(rank, iter int, computeNS, commNS int64)
}

// ErrNoWorkers is returned by StartSession when fewer idle workers are
// registered than the session needs.
var ErrNoWorkers = errors.New("transport: not enough idle grid workers")

// Session is one distributed reconstruction in flight: size ranks
// pinned to size workers, traffic routed until every rank's RankResult
// arrives or a member is lost.
type Session struct {
	hub  *Hub
	size int
	cb   SessionCallbacks

	mu         sync.Mutex
	members    []*hubConn // index = rank
	barrierCnt int
	reduceVals []float64
	reduceSeen []bool
	reduceCnt  int
	results    []*RankResult
	resultCnt  int
	err        error
	finished   bool
	done       chan struct{}
}

// StartSession leases len(setups) idle workers (lowest ids first, so
// placement is deterministic), assigns setups[i] to the i-th of them
// with Rank/Size filled in, and begins routing. It fails with
// ErrNoWorkers when the pool is too small — the caller decides whether
// to queue or fail the job.
func (h *Hub) StartSession(setups []*Setup, cb SessionCallbacks) (*Session, error) {
	size := len(setups)
	if size == 0 {
		return nil, fmt.Errorf("transport: empty session")
	}
	s := &Session{
		hub: h, size: size, cb: cb,
		reduceVals: make([]float64, size),
		reduceSeen: make([]bool, size),
		results:    make([]*RankResult, size),
		done:       make(chan struct{}),
	}

	// Lease idle workers under the hub lock so concurrent sessions
	// cannot double-book a worker.
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, ErrClosed
	}
	ids := make([]int, 0, len(h.workers))
	for id := range h.workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if len(s.members) == size {
			break
		}
		w := h.workers[id]
		w.mu.Lock()
		if w.sess == nil {
			w.sess = s
			w.rank = len(s.members)
			w.done = false
			s.members = append(s.members, w)
		}
		w.mu.Unlock()
	}
	h.mu.Unlock()
	if len(s.members) < size {
		got := len(s.members)
		s.release()
		return nil, fmt.Errorf("%w: need %d, have %d idle", ErrNoWorkers, size, got)
	}

	h.sessions.Add(1)
	for _, w := range s.members {
		w.sessCnt.Add(1)
	}
	// Every SETUP goes out under ALL members' write locks. Routing is
	// already live (the members are leased), so a rank that receives its
	// SETUP early can have its first halo message routed to a peer
	// before that peer's own SETUP is written — and the client clears
	// its queues when a SETUP arrives, wiping the early message and
	// wedging the session. Holding the write locks parks any routed
	// frame until every SETUP is on the wire.
	for _, w := range s.members {
		w.wmu.Lock()
	}
	var setupErr, lostErr error
	for rank, w := range s.members {
		setups[rank].Rank = rank
		setups[rank].Size = size
		payload, err := encodeGob(setups[rank])
		if err != nil {
			setupErr = err
			break
		}
		w.bytesOut.Add(int64(len(payload)))
		if err := writeFrameGen(w.conn, frame{typ: frameSetup, src: hubRank, dst: int32(rank), payload: payload}, w.gen); err != nil {
			lostErr = fmt.Errorf("%w: worker %d: %v", ErrPeerLost, w.id, err)
			break
		}
	}
	for _, w := range s.members {
		w.wmu.Unlock()
	}
	if setupErr != nil {
		s.fail(setupErr)
		return nil, setupErr
	}
	if lostErr != nil {
		s.fail(lostErr)
		return s, nil // Wait surfaces the failure
	}
	return s, nil
}

// release detaches every member that has not already been detached.
func (s *Session) release() {
	for _, w := range s.members {
		w.mu.Lock()
		if w.sess == s {
			w.sess = nil
		}
		w.mu.Unlock()
	}
}

// fail aborts the session once: members still attached are notified
// (their blocking operations return ErrPeerLost) and Wait unblocks with
// err. Members are NOT detached here — a surviving worker's engine is
// still unwinding and its final RankResult is yet to arrive; returning
// it to the idle pool now would let a new session lease the connection
// and misattribute that stale frame. Each member goes idle only when
// its RESULT arrives (frameResult handler) or its connection drops.
func (s *Session) fail(err error) {
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		return
	}
	s.finished = true
	s.err = err
	members := append([]*hubConn(nil), s.members...)
	s.mu.Unlock()
	for _, w := range members {
		w.mu.Lock()
		active := w.sess == s
		w.mu.Unlock()
		if active {
			w.write(frame{typ: frameError, src: hubRank,
				payload: errorPayload(codePeerLost, err.Error())})
		}
	}
	close(s.done)
}

// Cancel asks every rank to stop at its next iteration boundary (the
// engines' collective cancellation). The session then completes
// normally with Cancelled outcomes. Only members still attached to
// THIS session are signalled — a rank that already shipped its result
// may have been leased into a new session, which must not inherit the
// cancel.
func (s *Session) Cancel() {
	s.mu.Lock()
	members := append([]*hubConn(nil), s.members...)
	finished := s.finished
	s.mu.Unlock()
	if finished {
		return
	}
	for _, w := range members {
		w.mu.Lock()
		active := w.sess == s
		w.mu.Unlock()
		if active {
			w.write(frame{typ: frameCancel, src: hubRank})
		}
	}
}

// Wait blocks until every rank's result arrived, a member was lost, or
// ctx fires (which aborts the session). On success the results are in
// rank order; a rank that reported a failure turns into an error here.
func (s *Session) Wait(ctx context.Context) ([]*RankResult, error) {
	select {
	case <-s.done:
	case <-ctx.Done():
		s.fail(fmt.Errorf("%w: coordinator gave up: %v", ErrSessionAborted, ctx.Err()))
		<-s.done
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return nil, s.err
	}
	return s.results, nil
}

// handle routes one frame from member w. Runs on w's read goroutine.
func (s *Session) handle(w *hubConn, fr frame) {
	s.mu.Lock()
	finished := s.finished
	s.mu.Unlock()
	if finished && fr.typ != frameResult {
		return // drain: the worker has not yet observed the abort
	}
	switch fr.typ {
	case frameData:
		dst := int(fr.dst)
		if dst < 0 || dst >= s.size {
			s.fail(fmt.Errorf("%w: rank %d sent to invalid rank %d", ErrFrameCorrupt, fr.src, dst))
			return
		}
		s.hub.bytesRouted.Add(int64(len(fr.payload)))
		s.hub.msgsRouted.Add(1)
		if err := s.members[dst].write(fr); err != nil {
			s.hub.drop(s.members[dst], err)
		}
	case frameBarrier:
		s.mu.Lock()
		s.barrierCnt++
		release := s.barrierCnt == s.size
		if release {
			s.barrierCnt = 0
		}
		s.mu.Unlock()
		if release {
			s.broadcast(frame{typ: frameBarrierOK, src: hubRank})
		}
	case frameReduce:
		if len(fr.payload) < 8 {
			s.fail(fmt.Errorf("%w: short reduce payload from rank %d", ErrFrameCorrupt, fr.src))
			return
		}
		rank := int(fr.src)
		s.mu.Lock()
		if rank < 0 || rank >= s.size || s.reduceSeen[rank] {
			s.mu.Unlock()
			s.fail(fmt.Errorf("%w: duplicate reduce from rank %d", ErrFrameCorrupt, rank))
			return
		}
		s.reduceSeen[rank] = true
		s.reduceVals[rank] = float64FromLE(fr.payload)
		s.reduceCnt++
		complete := s.reduceCnt == s.size
		var sum float64
		if complete {
			// Rank order, exactly like simmpi.AllreduceSum — bit-for-bit
			// deterministic.
			for _, v := range s.reduceVals {
				sum += v
			}
			s.reduceCnt = 0
			for i := range s.reduceSeen {
				s.reduceSeen[i] = false
				s.reduceVals[i] = 0
			}
		}
		s.mu.Unlock()
		if complete {
			s.broadcast(frame{typ: frameReduceOK, src: hubRank, payload: float64le(sum)})
		}
	case frameSnapshot:
		if len(fr.payload) < 8 {
			s.fail(fmt.Errorf("%w: short snapshot from rank %d", ErrFrameCorrupt, fr.src))
			return
		}
		var cbErr error
		if s.cb.OnSnapshot != nil {
			// The payload aliases the connection's read scratch; the
			// callback gets its own copy so it may outlive this frame.
			obj := append([]byte(nil), fr.payload[8:]...)
			cbErr = s.cb.OnSnapshot(int(int64FromLE(fr.payload)), obj)
		}
		ack := []byte{0}
		if cbErr != nil {
			ack = append([]byte{1}, cbErr.Error()...)
		}
		if err := w.write(frame{typ: frameSnapshotOK, src: hubRank, payload: ack}); err != nil {
			s.hub.drop(w, err)
		}
	case frameIter:
		switch {
		case len(fr.payload) >= 24:
			// Extended stats payload: any rank's per-iteration
			// compute/comm split.
			if s.cb.OnRankTiming != nil {
				s.cb.OnRankTiming(int(fr.src), int(int64FromLE(fr.payload)),
					int64FromLE(fr.payload[8:]), int64FromLE(fr.payload[16:]))
			}
		case len(fr.payload) >= 16:
			// Progress payload: rank 0's iteration index and cost.
			if s.cb.OnIteration != nil {
				s.cb.OnIteration(int(int64FromLE(fr.payload)), float64FromLE(fr.payload[8:]))
			}
		}
	case frameResult:
		var res RankResult
		if err := decodeGob(fr.payload, &res); err != nil {
			s.fail(err)
			return
		}
		// The worker is done with this session either way: return it to
		// the idle pool before deciding the session's fate.
		w.mu.Lock()
		first := !w.done && w.sess == s
		w.done = true
		w.sess = nil
		w.mu.Unlock()
		if !first {
			return
		}
		if res.Err != "" {
			s.fail(fmt.Errorf("transport: rank %d failed: %s", res.Rank, res.Err))
			return
		}
		s.mu.Lock()
		if s.finished {
			s.mu.Unlock()
			return
		}
		rank := int(fr.src)
		if rank < 0 || rank >= s.size || s.results[rank] != nil {
			s.mu.Unlock()
			s.fail(fmt.Errorf("%w: duplicate result from rank %d", ErrFrameCorrupt, rank))
			return
		}
		s.results[rank] = &res
		s.resultCnt++
		complete := s.resultCnt == s.size
		if complete {
			s.finished = true
		}
		s.mu.Unlock()
		if complete {
			close(s.done)
		}
	default:
		s.fail(fmt.Errorf("%w: unexpected frame 0x%02x from rank %d", ErrFrameCorrupt, fr.typ, fr.src))
	}
}

// broadcast writes a frame to every member; write failures drop the
// member (which fails the session).
func (s *Session) broadcast(f frame) {
	s.mu.Lock()
	members := append([]*hubConn(nil), s.members...)
	s.mu.Unlock()
	for _, w := range members {
		if err := w.write(f); err != nil {
			s.hub.drop(w, err)
			return
		}
	}
}
