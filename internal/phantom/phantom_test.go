package phantom

import (
	"math"
	"math/cmplx"
	"testing"

	"ptychopath/internal/grid"
)

func TestLeadTitanateBasics(t *testing.T) {
	cfg := DefaultLeadTitanate(128, 128, 4)
	obj, err := LeadTitanate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if obj.NumSlices() != 4 {
		t.Fatalf("slices = %d, want 4", obj.NumSlices())
	}
	if obj.Bounds() != grid.RectWH(0, 0, 128, 128) {
		t.Fatalf("bounds = %v", obj.Bounds())
	}
	for s, sl := range obj.Slices {
		if !sl.IsFinite() {
			t.Fatalf("slice %d has non-finite values", s)
		}
	}
}

func TestLeadTitanateTransmissionPhysical(t *testing.T) {
	// |t| must be in (0, 1]; phase bounded by PhaseScale.
	cfg := DefaultLeadTitanate(96, 96, 3)
	obj, err := LeadTitanate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s, sl := range obj.Slices {
		for i, v := range sl.Data {
			a := cmplx.Abs(v)
			if a <= 0 || a > 1+1e-12 {
				t.Fatalf("slice %d elem %d: |t| = %g outside (0,1]", s, i, a)
			}
			ph := math.Abs(cmplx.Phase(v))
			if ph > cfg.PhaseScale+1e-9 {
				t.Fatalf("slice %d elem %d: phase %g exceeds scale %g", s, i, ph, cfg.PhaseScale)
			}
		}
	}
}

func TestLeadTitanateHasAtomicContrast(t *testing.T) {
	// The potential maps must contain actual structure, and the heavy
	// Pb columns must dominate (peak normalized to 1).
	obj, err := LeadTitanate(DefaultLeadTitanate(128, 128, 2))
	if err != nil {
		t.Fatal(err)
	}
	var peak float64
	var sum float64
	for _, p := range obj.PotentialPerSlice {
		_, hi := p.MinMax()
		if hi > peak {
			peak = hi
		}
		sum += p.Sum()
	}
	if peak <= 0 {
		t.Fatal("phantom has no potential")
	}
	if sum <= 0 {
		t.Fatal("phantom total potential must be positive")
	}
}

func TestLeadTitanatePeriodicity(t *testing.T) {
	// A perfect crystal (no disorder) repeats with the unit cell:
	// potential(x) == potential(x + a) away from boundaries.
	cfg := LeadTitanateConfig{
		W: 156, H: 156, Slices: 1, UnitCellPix: 39,
		PhaseScale: 0.3, Seed: 1,
	}
	obj, err := LeadTitanate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := obj.PotentialPerSlice[0]
	a := int(cfg.UnitCellPix)
	for y := 40; y < 80; y++ {
		for x := 40; x < 80; x++ {
			d := math.Abs(p.At(x, y) - p.At(x+a, y))
			if d > 1e-6 {
				t.Fatalf("periodicity violated at (%d,%d): delta %g", x, y, d)
			}
		}
	}
}

func TestLeadTitanateDisorderBreaksPeriodicity(t *testing.T) {
	cfg := LeadTitanateConfig{
		W: 156, H: 156, Slices: 1, UnitCellPix: 39,
		PhaseScale: 0.3, Seed: 7, Disorder: 1.5,
	}
	obj, err := LeadTitanate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := obj.PotentialPerSlice[0]
	a := int(cfg.UnitCellPix)
	var maxDelta float64
	for y := 40; y < 80; y++ {
		for x := 40; x < 80; x++ {
			if d := math.Abs(p.At(x, y) - p.At(x+a, y)); d > maxDelta {
				maxDelta = d
			}
		}
	}
	if maxDelta < 1e-3 {
		t.Fatal("disorder should break strict periodicity")
	}
}

func TestLeadTitanateDeterministic(t *testing.T) {
	cfg := DefaultLeadTitanate(64, 64, 2)
	cfg.Disorder = 1.0
	a, err := LeadTitanate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := LeadTitanate(cfg)
	for s := range a.Slices {
		if a.Slices[s].MaxDiff(b.Slices[s]) > 0 {
			t.Fatal("same seed must reproduce the same phantom")
		}
	}
}

func TestLeadTitanateValidation(t *testing.T) {
	bad := []LeadTitanateConfig{
		{W: 0, H: 10, Slices: 1, UnitCellPix: 39, PhaseScale: 0.3},
		{W: 10, H: 10, Slices: 0, UnitCellPix: 39, PhaseScale: 0.3},
		{W: 10, H: 10, Slices: 1, UnitCellPix: 1, PhaseScale: 0.3},
		{W: 10, H: 10, Slices: 1, UnitCellPix: 39, PhaseScale: 0},
		{W: 10, H: 10, Slices: 1, UnitCellPix: 39, PhaseScale: 0.3, Absorption: 1},
	}
	for i, c := range bad {
		if _, err := LeadTitanate(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAtomsCoverAllSlices(t *testing.T) {
	cfg := DefaultLeadTitanate(128, 128, 5)
	seen := map[int]bool{}
	for _, a := range cfg.Atoms() {
		if a.Slice < 0 || a.Slice >= cfg.Slices {
			t.Fatalf("atom slice %d out of range", a.Slice)
		}
		seen[a.Slice] = true
	}
	if len(seen) != cfg.Slices {
		t.Fatalf("atoms populate %d of %d slices", len(seen), cfg.Slices)
	}
}

func TestRandomObjectSmoothAndBounded(t *testing.T) {
	obj := RandomObject(48, 48, 3, 42)
	if obj.NumSlices() != 3 {
		t.Fatal("slice count")
	}
	for _, sl := range obj.Slices {
		for _, v := range sl.Data {
			if a := cmplx.Abs(v); a <= 0 || a > 1 {
				t.Fatalf("|t| = %g outside (0,1]", a)
			}
		}
	}
	// Determinism.
	obj2 := RandomObject(48, 48, 3, 42)
	if obj.Slices[0].MaxDiff(obj2.Slices[0]) > 0 {
		t.Fatal("RandomObject must be deterministic per seed")
	}
	// Different seeds differ.
	obj3 := RandomObject(48, 48, 3, 43)
	if obj.Slices[0].MaxDiff(obj3.Slices[0]) == 0 {
		t.Fatal("different seeds should differ")
	}
}

func TestVacuumObject(t *testing.T) {
	v := Vacuum(grid.RectWH(0, 0, 8, 8), 2)
	for _, sl := range v.Slices {
		for _, x := range sl.Data {
			if x != 1 {
				t.Fatal("vacuum must be identity transmission")
			}
		}
	}
}

func TestObjectClone(t *testing.T) {
	obj, err := LeadTitanate(DefaultLeadTitanate(32, 32, 2))
	if err != nil {
		t.Fatal(err)
	}
	cl := obj.Clone()
	cl.Slices[0].Data[0] += 1
	if obj.Slices[0].Data[0] == cl.Slices[0].Data[0] {
		t.Fatal("clone must not alias")
	}
	cl.PotentialPerSlice[0].Data[0] += 1
	if obj.PotentialPerSlice[0].Data[0] == cl.PotentialPerSlice[0].Data[0] {
		t.Fatal("potential clone must not alias")
	}
}
