// Package phantom synthesizes ground-truth objects for simulated
// ptychography experiments. The flagship generator builds a Lead
// Titanate (PbTiO3) perovskite-like crystal: columns of heavy Pb atoms
// on the unit-cell corners, Ti at the cell center, and O on the faces,
// projected into a stack of object slices — the same class of simulated
// material data the paper evaluates on (Fig 6 shows each bright circle
// as a small group of atoms).
package phantom

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"ptychopath/internal/grid"
)

// Atom is a 2-D projected atomic column.
type Atom struct {
	X, Y    float64 // center, pixels
	Slice   int     // which object slice the column contributes to
	Weight  float64 // projected potential strength (arbitrary units)
	SigmaPX float64 // Gaussian width, pixels
}

// Object is a ground-truth multi-slice object. Slices hold the complex
// transmission function per slice (|t| <= 1, phase from the projected
// potential), all sharing the same 2-D bounds.
type Object struct {
	Slices []*grid.Complex2D
	// PotentialPerSlice retains the real projected potential used to
	// build each transmission slice, for inspection and metrics.
	PotentialPerSlice []*grid.Float2D
}

// Bounds returns the shared 2-D extent of the object slices.
func (o *Object) Bounds() grid.Rect {
	if len(o.Slices) == 0 {
		return grid.Rect{}
	}
	return o.Slices[0].Bounds
}

// NumSlices returns the slice count.
func (o *Object) NumSlices() int { return len(o.Slices) }

// Clone deep-copies the object.
func (o *Object) Clone() *Object {
	out := &Object{
		Slices:            make([]*grid.Complex2D, len(o.Slices)),
		PotentialPerSlice: make([]*grid.Float2D, len(o.PotentialPerSlice)),
	}
	for i, s := range o.Slices {
		out.Slices[i] = s.Clone()
	}
	for i, p := range o.PotentialPerSlice {
		out.PotentialPerSlice[i] = p.Clone()
	}
	return out
}

// LeadTitanateConfig configures the PbTiO3-like phantom.
type LeadTitanateConfig struct {
	// W, H: object extent in pixels.
	W, H int
	// Slices: number of object slices (paper: 100 at 125 pm each; tests
	// use far fewer).
	Slices int
	// UnitCellPix: perovskite unit-cell edge in pixels. PbTiO3 has
	// a ~390 pm cell; at 10 pm pixels that is 39 px.
	UnitCellPix float64
	// PhaseScale: peak phase shift (radians) contributed by the
	// heaviest column through all slices; keeps transmissions in a
	// weakly-scattering regime when small (e.g. 0.3).
	PhaseScale float64
	// Absorption: fractional amplitude attenuation at the heaviest
	// column (0 = pure phase object).
	Absorption float64
	// Seed drives the deterministic displacement disorder.
	Seed int64
	// Disorder: RMS random displacement of atoms in pixels, emulating
	// thermal/static disorder. Zero gives a perfect crystal.
	Disorder float64
}

// DefaultLeadTitanate returns a laptop-scale configuration used by
// examples and functional experiments.
func DefaultLeadTitanate(w, h, slices int) LeadTitanateConfig {
	return LeadTitanateConfig{
		W: w, H: h, Slices: slices,
		UnitCellPix: 39, // 390 pm cell at 10 pm pixels
		PhaseScale:  0.3,
		Absorption:  0.05,
		Seed:        1,
	}
}

// Validate reports an error for degenerate configurations.
func (c LeadTitanateConfig) Validate() error {
	switch {
	case c.W <= 0 || c.H <= 0:
		return fmt.Errorf("phantom: extent must be positive, got %dx%d", c.W, c.H)
	case c.Slices <= 0:
		return fmt.Errorf("phantom: slice count must be positive, got %d", c.Slices)
	case c.UnitCellPix <= 2:
		return fmt.Errorf("phantom: unit cell too small: %g px", c.UnitCellPix)
	case c.PhaseScale <= 0:
		return fmt.Errorf("phantom: phase scale must be positive, got %g", c.PhaseScale)
	case c.Absorption < 0 || c.Absorption >= 1:
		return fmt.Errorf("phantom: absorption must be in [0,1), got %g", c.Absorption)
	}
	return nil
}

// Atoms generates the projected atomic columns for the configuration.
// Weights approximate projected-potential ratios: Pb (Z=82) dominates,
// Ti (Z=22) at cell centers, O (Z=8) on the faces.
func (c LeadTitanateConfig) Atoms() []Atom {
	rng := rand.New(rand.NewSource(c.Seed))
	disp := func() float64 {
		if c.Disorder == 0 {
			return 0
		}
		return rng.NormFloat64() * c.Disorder
	}
	var atoms []Atom
	a := c.UnitCellPix
	sigmaPb := a * 0.08
	sigmaTi := a * 0.07
	sigmaO := a * 0.06
	// Atom columns repeat per unit cell; distribute species across
	// slices cyclically so every slice carries structure.
	cellRows := int(float64(c.H)/a) + 2
	cellCols := int(float64(c.W)/a) + 2
	slice := 0
	nextSlice := func() int {
		s := slice
		slice = (slice + 1) % c.Slices
		return s
	}
	for cy := 0; cy < cellRows; cy++ {
		for cx := 0; cx < cellCols; cx++ {
			ox := float64(cx) * a
			oy := float64(cy) * a
			// Pb at cell corner.
			atoms = append(atoms, Atom{
				X: ox + disp(), Y: oy + disp(),
				Slice: nextSlice(), Weight: 1.0, SigmaPX: sigmaPb,
			})
			// Ti at cell center.
			atoms = append(atoms, Atom{
				X: ox + a/2 + disp(), Y: oy + a/2 + disp(),
				Slice: nextSlice(), Weight: 22.0 / 82.0, SigmaPX: sigmaTi,
			})
			// O on two face centers (projected).
			atoms = append(atoms, Atom{
				X: ox + a/2 + disp(), Y: oy + disp(),
				Slice: nextSlice(), Weight: 8.0 / 82.0, SigmaPX: sigmaO,
			})
			atoms = append(atoms, Atom{
				X: ox + disp(), Y: oy + a/2 + disp(),
				Slice: nextSlice(), Weight: 8.0 / 82.0, SigmaPX: sigmaO,
			})
		}
	}
	return atoms
}

// LeadTitanate builds the multi-slice PbTiO3-like object.
func LeadTitanate(c LeadTitanateConfig) (*Object, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	bounds := grid.RectWH(0, 0, c.W, c.H)
	obj := &Object{
		Slices:            make([]*grid.Complex2D, c.Slices),
		PotentialPerSlice: make([]*grid.Float2D, c.Slices),
	}
	for s := 0; s < c.Slices; s++ {
		obj.PotentialPerSlice[s] = grid.NewFloat2D(bounds)
	}
	for _, at := range c.Atoms() {
		splatGaussian(obj.PotentialPerSlice[at.Slice], at)
	}
	// Normalize the peak projected potential to 1, then convert to
	// transmission t = (1 - absorption*v) * exp(i * phaseScale * v).
	var peak float64
	for _, p := range obj.PotentialPerSlice {
		if _, hi := p.MinMax(); hi > peak {
			peak = hi
		}
	}
	if peak == 0 {
		peak = 1
	}
	for s := 0; s < c.Slices; s++ {
		pot := obj.PotentialPerSlice[s]
		t := grid.NewComplex2D(bounds)
		for i, v := range pot.Data {
			vn := v / peak
			amp := 1 - c.Absorption*vn
			t.Data[i] = complex(amp, 0) * cmplx.Exp(complex(0, c.PhaseScale*vn))
		}
		obj.Slices[s] = t
	}
	return obj, nil
}

// splatGaussian adds a truncated Gaussian bump to the potential map.
func splatGaussian(p *grid.Float2D, a Atom) {
	cut := 4 * a.SigmaPX
	bb := grid.NewRect(
		int(math.Floor(a.X-cut)), int(math.Floor(a.Y-cut)),
		int(math.Ceil(a.X+cut))+1, int(math.Ceil(a.Y+cut))+1,
	).Clamp(p.Bounds)
	if bb.Empty() {
		return
	}
	inv2s2 := 1 / (2 * a.SigmaPX * a.SigmaPX)
	for y := bb.Y0; y < bb.Y1; y++ {
		dy := float64(y) - a.Y
		for x := bb.X0; x < bb.X1; x++ {
			dx := float64(x) - a.X
			p.Set(x, y, p.At(x, y)+a.Weight*math.Exp(-(dx*dx+dy*dy)*inv2s2))
		}
	}
}

// RandomObject builds an unstructured random-texture multi-slice object,
// useful for solver stress tests where crystal symmetry could mask bugs.
// Phases are smooth (low-pass filtered noise) to keep the forward model
// well conditioned.
func RandomObject(w, h, slices int, seed int64) *Object {
	rng := rand.New(rand.NewSource(seed))
	bounds := grid.RectWH(0, 0, w, h)
	obj := &Object{
		Slices:            make([]*grid.Complex2D, slices),
		PotentialPerSlice: make([]*grid.Float2D, slices),
	}
	for s := 0; s < slices; s++ {
		pot := grid.NewFloat2D(bounds)
		for i := range pot.Data {
			pot.Data[i] = rng.Float64()
		}
		smooth(pot, 3)
		obj.PotentialPerSlice[s] = pot
		t := grid.NewComplex2D(bounds)
		for i, v := range pot.Data {
			t.Data[i] = cmplx.Exp(complex(0, 0.4*v)) * complex(1-0.03*v, 0)
		}
		obj.Slices[s] = t
	}
	return obj
}

// Vacuum returns an all-ones (identity transmission) object — the
// standard reconstruction starting point.
func Vacuum(bounds grid.Rect, slices int) *Object {
	obj := &Object{Slices: make([]*grid.Complex2D, slices)}
	for s := range obj.Slices {
		t := grid.NewComplex2D(bounds)
		t.Fill(1)
		obj.Slices[s] = t
	}
	return obj
}

// smooth applies `passes` iterations of a 3x3 box blur in place.
func smooth(p *grid.Float2D, passes int) {
	w, h := p.W(), p.H()
	tmp := make([]float64, len(p.Data))
	for pass := 0; pass < passes; pass++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				var s float64
				var n float64
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						xx, yy := x+dx, y+dy
						if xx < 0 || xx >= w || yy < 0 || yy >= h {
							continue
						}
						s += p.Data[yy*w+xx]
						n++
					}
				}
				tmp[y*w+x] = s / n
			}
		}
		copy(p.Data, tmp)
	}
}
