package stream

import (
	"bytes"
	"testing"

	"ptychopath/internal/dataio"
	"ptychopath/internal/grid"
	"ptychopath/internal/phantom"
	"ptychopath/internal/scan"
	"ptychopath/internal/solver"
)

func appendFrames(t *testing.T, prob *solver.Problem, frames []dataio.Frame) {
	t.Helper()
	locs := make([]scan.Location, len(frames))
	meas := make([]*grid.Float2D, len(frames))
	for i, f := range frames {
		locs[i], meas[i] = f.Loc, f.Meas
	}
	if err := prob.AppendLocations(locs, meas); err != nil {
		t.Fatal(err)
	}
}

// TestStreamingKernelAllocationFree guards the hot path under the
// streaming engine: folding frames grows the active set, but the
// per-location gradient kernel — and in fact the whole streaming
// iteration — must stay at zero heap allocations, because the engine
// reuses one solver.Workspace for the life of the run exactly like the
// batch engines.
func TestStreamingKernelAllocationFree(t *testing.T) {
	prob := acquisition(t, 2)
	frames := dataio.FramesFromProblem(prob)
	hdr := dataio.HeaderFromProblem(prob)

	grown := hdr.NewProblem()
	init := phantom.Vacuum(grown.ImageBounds(), grown.Slices).Slices
	eng := newSerialEngine(grown, init, 0.01)

	// First fold, then warm the workspace.
	appendFrames(t, grown, frames[:8])
	eng.iterate()
	if got := testing.AllocsPerRun(20, func() { eng.iterate() }); got != 0 {
		t.Errorf("streaming iteration allocates %v after first fold, want 0", got)
	}

	// A mid-run fold must not reintroduce allocations.
	appendFrames(t, grown, frames[8:])
	eng.iterate()
	if got := testing.AllocsPerRun(20, func() { eng.iterate() }); got != 0 {
		t.Errorf("streaming iteration allocates %v after second fold, want 0", got)
	}

	// And the per-location kernel alone is allocation-free too.
	loc := grown.Pattern.Locations[0]
	win := loc.Window(grown.WindowN)
	if got := testing.AllocsPerRun(20, func() {
		eng.ws.ZeroGrads()
		eng.ws.LossGrad(eng.slices, win, grown.Meas[0])
	}); got != 0 {
		t.Errorf("per-location kernel allocates %v under the streaming engine, want 0", got)
	}

	// The engine's state is still a valid object.
	var buf bytes.Buffer
	if err := dataio.WriteObject(&buf, eng.object()); err != nil {
		t.Fatalf("streamed object does not serialize: %v", err)
	}
}
