package stream

import (
	"context"
	"fmt"
	"time"

	"ptychopath/internal/dataio"
	"ptychopath/internal/gradsync"
	"ptychopath/internal/grid"
	"ptychopath/internal/phantom"
	"ptychopath/internal/scan"
	"ptychopath/internal/solver"
	"ptychopath/internal/tiling"
)

// Options configures a streaming reconstruction.
type Options struct {
	// Algorithm is "serial" (default) or "gd" (Gradient Decomposition
	// with per-epoch tile re-partitioning). Halo Voxel Exchange is not
	// supported: its redundant boundary locations are assigned once,
	// which contradicts a growing location set.
	Algorithm string
	// StepSize is the gradient step. Default 0.01.
	StepSize float64
	// TailIterations is how many iterations run over the complete set
	// after the stream closes — the "finish its epochs" phase.
	// Default 20.
	TailIterations int
	// FoldEvery is the number of iterations between ingest polls while
	// the stream is open (and the epoch length of the gd engine).
	// Default 1: new frames fold in at every iteration boundary.
	FoldEvery int
	// MaxIterations, when positive, bounds iterations run BEFORE the
	// stream closes; exceeding it returns ErrIterationBudget with the
	// partial (checkpointable) result. Guards against a stalled feed
	// spinning the solver forever. 0 means unlimited.
	MaxIterations int
	// MeshRows and MeshCols shape the gd tile mesh. Default 2x2.
	MeshRows, MeshCols int
	// RoundsPerIteration is the gd communication frequency. Default 1.
	RoundsPerIteration int
	// IntraWorkers is the gd per-rank goroutine count.
	IntraWorkers int
	// Timeout bounds gd communication. 0 uses the gradsync default.
	Timeout time.Duration
	// InitialObject warm-starts the run (copied, not mutated); nil
	// means vacuum.
	InitialObject []*grid.Complex2D
	// Ctx, when non-nil, cancels the run at iteration boundaries (and
	// wakes the engine when it is blocked waiting for the first
	// frames). Run returns the partial result with Ctx's error.
	Ctx context.Context
	// OnIteration receives the 0-based global iteration index and the
	// cost over the active set measured during that iteration.
	OnIteration func(iter int, cost float64)
	// OnFold fires after each fold that grew the active set: the
	// iteration count completed so far, the number of frames folded,
	// and the new active-set size.
	OnFold func(iter, added, active int)
	// OnFoldTimed additionally reports when the fold started and how
	// long it took (the AppendLocations work); nil skips the timing.
	OnFoldTimed func(iter, added, active int, start time.Time, d time.Duration)
	// SnapshotEvery, with OnSnapshot, emits periodic object snapshots
	// exactly like the batch engines (0-based iteration index; live
	// buffers for the serial engine — copy to retain). The cadence is
	// exact for the serial engine; the gd engine snapshots at epoch
	// boundaries, so cadence is exact when FoldEvery is 1.
	SnapshotEvery int
	OnSnapshot    func(iter int, slices []*grid.Complex2D) error
}

func (o *Options) setDefaults() {
	if o.Algorithm == "" {
		o.Algorithm = "serial"
	}
	if o.StepSize == 0 {
		o.StepSize = 0.01
	}
	if o.TailIterations == 0 {
		o.TailIterations = 20
	}
	if o.FoldEvery <= 0 {
		o.FoldEvery = 1
	}
	if o.MeshRows == 0 {
		o.MeshRows = 2
	}
	if o.MeshCols == 0 {
		o.MeshCols = 2
	}
	if o.RoundsPerIteration == 0 {
		o.RoundsPerIteration = 1
	}
}

func (o *Options) validate(hdr *dataio.StreamHeader) error {
	if err := hdr.Validate(); err != nil {
		return err
	}
	switch o.Algorithm {
	case "serial", "gd":
	default:
		return fmt.Errorf("stream: unknown algorithm %q (want serial or gd)", o.Algorithm)
	}
	if o.StepSize <= 0 {
		return fmt.Errorf("stream: step size must be positive, got %g", o.StepSize)
	}
	if o.TailIterations <= 0 {
		return fmt.Errorf("stream: tail iterations must be positive, got %d", o.TailIterations)
	}
	if o.MaxIterations < 0 {
		return fmt.Errorf("stream: max iterations must be non-negative, got %d", o.MaxIterations)
	}
	if o.MeshRows <= 0 || o.MeshCols <= 0 {
		return fmt.Errorf("stream: invalid mesh %dx%d", o.MeshRows, o.MeshCols)
	}
	if o.InitialObject != nil {
		if len(o.InitialObject) != hdr.Slices {
			return fmt.Errorf("stream: initial object has %d slices, stream has %d",
				len(o.InitialObject), hdr.Slices)
		}
		bounds := grid.RectWH(0, 0, hdr.ImageW, hdr.ImageH)
		if !o.InitialObject[0].Bounds.Eq(bounds) {
			return fmt.Errorf("stream: initial object bounds %v != image %v",
				o.InitialObject[0].Bounds, bounds)
		}
	}
	return nil
}

// Result carries the streaming reconstruction and its run statistics.
type Result struct {
	// Slices is the reconstructed object over the full image.
	Slices []*grid.Complex2D
	// CostHistory holds the active-set cost per iteration. Entries
	// from before the final fold are costs over a PARTIAL set — not
	// comparable with later entries in absolute terms.
	CostHistory []float64
	// Iterations is the number of iterations completed.
	Iterations int
	// Frames is the number of frames folded into the reconstruction.
	Frames int
	// Folds is the number of ingest folds that grew the active set —
	// the epoch count of the run.
	Folds int
}

// recorder is the per-run progress state shared by both engines.
type recorder struct {
	opt   *Options
	hist  []float64
	done  int // completed iterations
	folds int
}

// record publishes one completed iteration (serial engine: the
// recorder numbers iterations itself).
func (r *recorder) record(cost float64) {
	r.recordIndexed(r.done, cost)
}

// recordIndexed publishes one completed iteration whose 0-based global
// index the engine reports directly — the gd engine's gradsync epochs
// carry IterOffset, so the index arriving here is already continuous
// across epochs and becomes the recorder's progress counter.
func (r *recorder) recordIndexed(iter int, cost float64) {
	r.hist = append(r.hist, cost)
	r.done = iter + 1
	if r.opt.OnIteration != nil {
		r.opt.OnIteration(iter, cost)
	}
}

// snapshotDue reports whether the global cadence owes a snapshot after
// r.done completed iterations.
func (r *recorder) snapshotDue() bool {
	return r.opt.SnapshotEvery > 0 && r.opt.OnSnapshot != nil &&
		r.done > 0 && r.done%r.opt.SnapshotEvery == 0
}

// serialEngine runs the exact batch gradient-descent step of
// internal/solver over the growing active set: one Workspace for the
// whole run, so the per-location kernel stays allocation-free no
// matter how many folds have happened.
type serialEngine struct {
	prob   *solver.Problem
	slices []*grid.Complex2D
	ws     *solver.Workspace
	step   complex128
}

func newSerialEngine(prob *solver.Problem, init []*grid.Complex2D, stepSize float64) *serialEngine {
	return &serialEngine{
		prob:   prob,
		slices: init,
		ws:     prob.NewWorkspace(init[0].Bounds),
		step:   complex(stepSize, 0),
	}
}

// iterate runs ONE batch iteration — identical operation order to the
// Batch branch of solver.Reconstruct, which is what makes a streaming
// run bit-identical to a batch run warm-started from any post-fold
// checkpoint. No allocations in steady state (guarded by
// TestStreamingKernelAllocationFree).
func (e *serialEngine) iterate() float64 {
	e.ws.ZeroGrads()
	var cost float64
	for i, l := range e.prob.Pattern.Locations {
		cost += e.ws.LossGrad(e.slices, l.Window(e.prob.WindowN), e.prob.Meas[i])
	}
	grads := e.ws.Grads()
	for s := range e.slices {
		e.slices[s].AddScaled(grads[s], -e.step)
	}
	return cost
}

// run executes up to n iterations, honoring cancellation and the
// snapshot cadence at every iteration boundary.
func (e *serialEngine) run(n int, rec *recorder) error {
	opt := rec.opt
	for k := 0; k < n; k++ {
		cost := e.iterate()
		rec.record(cost)
		if rec.snapshotDue() {
			if err := opt.OnSnapshot(rec.done-1, e.slices); err != nil {
				return fmt.Errorf("stream: snapshot at iteration %d: %w", rec.done-1, err)
			}
		}
		if opt.Ctx != nil && opt.Ctx.Err() != nil {
			return context.Cause(opt.Ctx)
		}
	}
	return nil
}

func (e *serialEngine) object() []*grid.Complex2D { return e.slices }

// gdEngine runs Gradient Decomposition in epochs: each call
// re-partitions the grown location set across the tile mesh
// (Mesh.AssignLocations inside gradsync.Reconstruct) and advances the
// object by one epoch of iterations, warm-starting from the previous
// epoch's stitched result. IterOffset keeps reported iteration indices
// continuous across epochs.
type gdEngine struct {
	prob *solver.Problem
	cur  []*grid.Complex2D
	mesh *tiling.Mesh
	opt  *Options
}

func newGDEngine(prob *solver.Problem, init []*grid.Complex2D, opt *Options) (*gdEngine, error) {
	mesh, err := tiling.NewMesh(prob.ImageBounds(), opt.MeshRows, opt.MeshCols,
		tiling.HaloForWindow(prob.WindowN))
	if err != nil {
		return nil, err
	}
	return &gdEngine{prob: prob, cur: init, mesh: mesh, opt: opt}, nil
}

func (e *gdEngine) run(n int, rec *recorder) error {
	opt := rec.opt
	r, err := gradsync.Reconstruct(e.prob, e.cur, gradsync.Options{
		Mesh: e.mesh, Mode: gradsync.ModeBatch,
		StepSize: opt.StepSize, Iterations: n,
		RoundsPerIteration: opt.RoundsPerIteration,
		IntraWorkers:       opt.IntraWorkers,
		Timeout:            opt.Timeout,
		IterOffset:         rec.done,
		OnIteration:        rec.recordIndexed,
		Ctx:                opt.Ctx,
	})
	if r != nil {
		e.cur = r.Slices
	}
	if err != nil {
		return err
	}
	// Epoch-boundary snapshot: the stitched full-image object is only
	// available between epochs.
	if rec.snapshotDue() {
		if serr := opt.OnSnapshot(rec.done-1, e.cur); serr != nil {
			return fmt.Errorf("stream: snapshot at iteration %d: %w", rec.done-1, serr)
		}
	}
	return nil
}

func (e *gdEngine) object() []*grid.Complex2D { return e.cur }

// engine is the per-algorithm stepping interface of the streaming loop.
type engine interface {
	// run advances the reconstruction by up to n iterations over the
	// CURRENT active set, reporting progress through rec. A non-nil
	// error with partial progress (cancellation) leaves object() valid.
	run(n int, rec *recorder) error
	// object returns the current full-image slices (live buffers).
	object() []*grid.Complex2D
}

// Run reconstructs an acquisition streamed through in, starting from
// geometry metadata only. Frames are folded into the active set at
// iteration boundaries; after the stream closes, TailIterations more
// iterations run over the complete set. On cancellation (or
// ErrIterationBudget) the partial result is returned alongside the
// error so the caller can checkpoint it.
func Run(hdr *dataio.StreamHeader, in *Ingest, opt Options) (*Result, error) {
	opt.setDefaults()
	if err := opt.validate(hdr); err != nil {
		return nil, err
	}
	if in == nil {
		return nil, fmt.Errorf("stream: nil ingest")
	}
	prob := hdr.NewProblem()
	init := opt.InitialObject
	if init == nil {
		init = phantom.Vacuum(prob.ImageBounds(), prob.Slices).Slices
	} else {
		cp := make([]*grid.Complex2D, len(init))
		for i, s := range init {
			cp[i] = s.Clone()
		}
		init = cp
	}
	var eng engine
	var err error
	switch opt.Algorithm {
	case "serial":
		eng = newSerialEngine(prob, init, opt.StepSize)
	case "gd":
		if eng, err = newGDEngine(prob, init, &opt); err != nil {
			return nil, err
		}
	}

	rec := &recorder{opt: &opt}
	result := func() *Result {
		return &Result{
			Slices:      eng.object(),
			CostHistory: rec.hist,
			Iterations:  rec.done,
			Frames:      prob.Pattern.N(),
			Folds:       rec.folds,
		}
	}
	fold := func(frames []dataio.Frame) error {
		if len(frames) == 0 {
			return nil
		}
		start := time.Now()
		locs := make([]scan.Location, len(frames))
		meas := make([]*grid.Float2D, len(frames))
		for i, f := range frames {
			locs[i], meas[i] = f.Loc, f.Meas
		}
		if err := prob.AppendLocations(locs, meas); err != nil {
			return err
		}
		rec.folds++
		if opt.OnFold != nil {
			opt.OnFold(rec.done, len(frames), prob.Pattern.N())
		}
		if opt.OnFoldTimed != nil {
			opt.OnFoldTimed(rec.done, len(frames), prob.Pattern.N(), start, time.Since(start))
		}
		return nil
	}

	// Streaming phase: fold arrivals at iteration boundaries, iterate
	// over the active set between folds.
	eofFolded := false
	for !eofFolded {
		var frames []dataio.Frame
		var eof bool
		if prob.Pattern.N() == 0 {
			// Nothing to iterate on yet: block until the acquisition
			// produces frames, closes, or the run is cancelled.
			if frames, eof, err = in.wait(opt.Ctx); err != nil {
				return result(), err
			}
		} else {
			frames, eof = in.poll()
		}
		if err := fold(frames); err != nil {
			return result(), err
		}
		eofFolded = eof
		if prob.Pattern.N() == 0 {
			if eofFolded {
				return nil, ErrNoFrames
			}
			continue
		}
		if eofFolded {
			break // tail phase iterates the complete set
		}
		if opt.MaxIterations > 0 && rec.done >= opt.MaxIterations {
			return result(), fmt.Errorf("%w: %d iterations", ErrIterationBudget, rec.done)
		}
		if err := eng.run(opt.FoldEvery, rec); err != nil {
			return result(), err
		}
	}

	// Tail phase: the active set is complete; every iteration from
	// here is an exact batch step, so checkpoints taken now warm-start
	// bit-identical batch runs.
	chunk := opt.FoldEvery
	for left := opt.TailIterations; left > 0; left -= chunk {
		if err := eng.run(min(chunk, left), rec); err != nil {
			return result(), err
		}
	}
	return result(), nil
}
