package stream

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ptychopath/internal/dataio"
	"ptychopath/internal/gradsync"
	"ptychopath/internal/grid"
	"ptychopath/internal/phantom"
	"ptychopath/internal/physics"
	"ptychopath/internal/scan"
	"ptychopath/internal/solver"
	"ptychopath/internal/tiling"
)

// acquisition builds the synthetic dataset the tests replay as a live
// feed: 16 locations, 8 px window.
func acquisition(t testing.TB, slices int) *solver.Problem {
	t.Helper()
	pat, err := scan.Raster(scan.RasterConfig{Cols: 4, Rows: 4, StepPix: 5, RadiusPix: 6, MarginPix: 6})
	if err != nil {
		t.Fatal(err)
	}
	obj := phantom.RandomObject(pat.ImageW, pat.ImageH, slices, 1)
	prob, err := solver.Simulate(solver.SimulateConfig{
		Optics: physics.PaperOptics(), Pattern: pat, Object: obj, WindowN: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prob
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// capture collects engine callbacks across goroutines.
type capture struct {
	mu     sync.Mutex
	iters  int
	folds  int
	active int
	snaps  []snap
}

type snap struct {
	iter   int // 0-based completed iteration index
	active int // active-set size when the snapshot was taken
	slices []*grid.Complex2D
}

func (c *capture) options(base Options) Options {
	base.OnIteration = func(int, float64) {
		c.mu.Lock()
		c.iters++
		c.mu.Unlock()
	}
	base.OnFold = func(_, _, active int) {
		c.mu.Lock()
		c.folds++
		c.active = active
		c.mu.Unlock()
	}
	base.SnapshotEvery = 1
	base.OnSnapshot = func(iter int, slices []*grid.Complex2D) error {
		cp := make([]*grid.Complex2D, len(slices))
		for i, s := range slices {
			cp[i] = s.Clone()
		}
		c.mu.Lock()
		c.snaps = append(c.snaps, snap{iter: iter, active: c.active, slices: cp})
		c.mu.Unlock()
		return nil
	}
	return base
}

func (c *capture) foldCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.folds
}

func (c *capture) iterCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.iters
}

// feed streams the dataset into in as three chunks, interleaving with
// live iterations: after each chunk it waits for the fold and then for
// at least two more iterations over the enlarged active set, so the
// engine demonstrably reconstructs WHILE frames arrive.
func feed(t *testing.T, in *Ingest, frames []dataio.Frame, c *capture) {
	t.Helper()
	bounds := []int{0, 6, 11, len(frames)}
	for i := 0; i < 3; i++ {
		if _, err := in.Append(frames[bounds[i]:bounds[i+1]]); err != nil {
			t.Errorf("chunk %d: %v", i, err)
			return
		}
		want := i + 1
		waitFor(t, "fold", func() bool { return c.foldCount() >= want })
		base := c.iterCount()
		waitFor(t, "post-fold iterations", func() bool { return c.iterCount() >= base+2 })
	}
	in.CloseEOF()
}

// runCapstone drives the acceptance scenario for one algorithm: a
// dataset streamed in 3 chunks mid-run, the stream closed, the job
// finishing its epochs — and the result bit-identical to a batch run
// of the same algorithm warm-started from a mid-stream checkpoint
// (round-tripped through OBJCKv1, exactly as the job service would).
func runCapstone(t *testing.T, alg string) {
	prob := acquisition(t, 2)
	hdr := dataio.HeaderFromProblem(prob)
	frames := dataio.FramesFromProblem(prob)
	in := NewIngest(0)
	c := &capture{}
	const step = 0.01
	const tail = 12

	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := Run(hdr, in, c.options(Options{
			Algorithm: alg, StepSize: step, TailIterations: tail,
			MeshRows: 2, MeshCols: 2, Timeout: 2 * time.Minute,
		}))
		done <- outcome{res, err}
	}()
	feed(t, in, frames, c)
	out := <-done
	if out.err != nil {
		t.Fatalf("streaming run: %v", out.err)
	}
	res := out.res

	if res.Frames != len(frames) {
		t.Errorf("folded %d frames, want %d", res.Frames, len(frames))
	}
	if res.Folds < 3 {
		t.Errorf("only %d folds; the 3 chunks should fold separately", res.Folds)
	}
	if res.Iterations <= tail {
		t.Errorf("%d total iterations with a %d-iteration tail: nothing ran mid-stream", res.Iterations, tail)
	}

	// Pick the FIRST checkpoint taken after the active set became
	// complete — a genuinely mid-stream state, many iterations before
	// the end — and round-trip it through OBJCKv1.
	var ck *snap
	partial := 0
	for i := range c.snaps {
		if c.snaps[i].active == len(frames) {
			ck = &c.snaps[i]
			break
		}
		partial++
	}
	if ck == nil {
		t.Fatal("no snapshot saw the complete active set")
	}
	if partial == 0 {
		t.Error("no snapshot over a partial active set: frames did not arrive mid-run")
	}
	var buf bytes.Buffer
	if err := dataio.WriteObject(&buf, ck.slices); err != nil {
		t.Fatal(err)
	}
	warm, err := dataio.ReadObject(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Batch run of the SAME algorithm from the checkpoint, for the
	// remaining iterations.
	remaining := res.Iterations - (ck.iter + 1)
	if remaining <= 0 {
		t.Fatalf("checkpoint at iteration %d leaves no iterations to replay", ck.iter)
	}
	var ref []*grid.Complex2D
	switch alg {
	case "serial":
		r, err := solver.Reconstruct(prob, warm, solver.Options{
			StepSize: step, Iterations: remaining, Mode: solver.Batch,
		})
		if err != nil {
			t.Fatal(err)
		}
		ref = r.Slices
	case "gd":
		m, err := tiling.NewMesh(prob.ImageBounds(), 2, 2, tiling.HaloForWindow(prob.WindowN))
		if err != nil {
			t.Fatal(err)
		}
		r, err := gradsync.Reconstruct(prob, warm, gradsync.Options{
			Mesh: m, Mode: gradsync.ModeBatch, StepSize: step,
			Iterations: remaining, Timeout: 2 * time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		ref = r.Slices
	}
	for s := range ref {
		for i, v := range ref[s].Data {
			if v != res.Slices[s].Data[i] {
				t.Fatalf("%s slice %d pixel %d: batch-from-checkpoint %v != streamed %v",
					alg, s, i, v, res.Slices[s].Data[i])
			}
		}
	}
}

// TestStreamingBitIdenticalToBatchWarmStart is the capstone: the
// streaming world inherits the batch world's exact-resume guarantee.
func TestStreamingBitIdenticalToBatchWarmStart(t *testing.T) {
	runCapstone(t, "serial")
}

// TestStreamingGDBitIdentical extends the capstone to the parallel
// Gradient Decomposition engine with per-epoch tile re-partitioning.
func TestStreamingGDBitIdentical(t *testing.T) {
	runCapstone(t, "gd")
}

func TestIngestBackpressure(t *testing.T) {
	in := NewIngest(4)
	prob := acquisition(t, 1)
	frames := dataio.FramesFromProblem(prob)

	// A chunk bigger than the whole buffer is rejected with the
	// NON-retryable error: 429-style backoff could never succeed.
	if _, err := in.Append(frames[:5]); !errors.Is(err, ErrChunkTooLarge) {
		t.Fatalf("oversized chunk: got %v, want ErrChunkTooLarge", err)
	}
	if total, err := in.Append(frames[:3]); err != nil || total != 3 {
		t.Fatalf("first append: total %d, err %v", total, err)
	}
	// All-or-nothing: 3 buffered + 2 arriving > 4.
	if _, err := in.Append(frames[3:5]); !errors.Is(err, ErrIngestFull) {
		t.Fatalf("overflow append: got %v, want ErrIngestFull", err)
	}
	if in.Pending() != 3 || in.Total() != 3 {
		t.Fatalf("rejected chunk mutated the buffer: pending %d total %d", in.Pending(), in.Total())
	}
	if got, eof := in.poll(); len(got) != 3 || eof {
		t.Fatalf("poll: %d frames, eof %v", len(got), eof)
	}
	// Room again after the fold.
	if total, err := in.Append(frames[3:5]); err != nil || total != 5 {
		t.Fatalf("append after drain: total %d, err %v", total, err)
	}
	in.CloseEOF()
	if _, err := in.Append(frames[5:6]); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("append after EOF: got %v, want ErrStreamClosed", err)
	}
	if got, eof := in.poll(); len(got) != 2 || !eof {
		t.Fatalf("final poll: %d frames, eof %v (buffered frames must survive EOF)", len(got), eof)
	}
}

func TestRunEmptyStream(t *testing.T) {
	prob := acquisition(t, 1)
	in := NewIngest(0)
	in.CloseEOF()
	if _, err := Run(dataio.HeaderFromProblem(prob), in, Options{}); !errors.Is(err, ErrNoFrames) {
		t.Fatalf("empty stream: got %v, want ErrNoFrames", err)
	}
}

func TestRunCancelledWhileWaiting(t *testing.T) {
	prob := acquisition(t, 1)
	in := NewIngest(0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Run(dataio.HeaderFromProblem(prob), in, Options{Ctx: ctx})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not wake the engine waiting for frames")
	}
}

func TestRunIterationBudget(t *testing.T) {
	prob := acquisition(t, 1)
	in := NewIngest(0)
	if _, err := in.Append(dataio.FramesFromProblem(prob)[:4]); err != nil {
		t.Fatal(err)
	}
	// The stream never closes: the budget must stop the spin.
	res, err := Run(dataio.HeaderFromProblem(prob), in, Options{MaxIterations: 3})
	if !errors.Is(err, ErrIterationBudget) {
		t.Fatalf("got %v, want ErrIterationBudget", err)
	}
	if res == nil || res.Iterations != 3 {
		t.Fatalf("budgeted run result: %+v", res)
	}
	if res.Slices == nil {
		t.Fatal("budgeted run returned no checkpointable object")
	}
}

func TestRunValidation(t *testing.T) {
	prob := acquisition(t, 1)
	hdr := dataio.HeaderFromProblem(prob)
	in := NewIngest(0)
	if _, err := Run(hdr, in, Options{Algorithm: "hve"}); err == nil {
		t.Error("hve accepted (unsupported for streaming)")
	}
	if _, err := Run(hdr, in, Options{StepSize: -1}); err == nil {
		t.Error("negative step accepted")
	}
	if _, err := Run(hdr, in, Options{TailIterations: -2}); err == nil {
		t.Error("negative tail accepted")
	}
	if _, err := Run(hdr, nil, Options{}); err == nil {
		t.Error("nil ingest accepted")
	}
	bad := &dataio.StreamHeader{WindowN: -1}
	if _, err := Run(bad, in, Options{}); err == nil {
		t.Error("invalid header accepted")
	}
}
