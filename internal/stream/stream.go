// Package stream is the online-reconstruction subsystem: it
// reconstructs a ptychographic dataset WHILE the acquisition is still
// producing it. A streaming job opens with geometry and probe metadata
// only (dataio.StreamHeader — the PTYCHS opening), diffraction
// frames are appended in chunks as the microscope scans, and the
// engine folds newly arrived probe locations into the active set at
// iteration boundaries, refining the object continuously instead of
// waiting for the full dataset to land on disk. This is the paper's
// real-time-steering motivation made operational: the scientist
// watches previews sharpen while the scan is still running.
//
// The subsystem has two halves:
//
//   - Ingest, a bounded frame buffer between the transport (HTTP
//     chunk uploads) and the engine. When the producer outruns the
//     reconstruction, Append returns ErrIngestFull and the HTTP layer
//     surfaces 429 + Retry-After — backpressure instead of unbounded
//     memory.
//   - Run, the engine loop. It drains the ingest at every iteration
//     boundary (Problem.AppendLocations), iterates over the active
//     set with the same allocation-free solver.Workspace kernel the
//     batch engines use, and after the stream closes runs
//     TailIterations more passes over the complete set.
//
// Exactness: after the final fold the active set equals the full
// dataset and every subsequent serial iteration is the exact batch
// gradient-descent step of internal/solver. A checkpoint taken at any
// post-fold iteration boundary therefore warm-starts a batch run that
// reproduces the streaming result bit-for-bit — the streaming
// extension of the service's exact-resume guarantee, verified by the
// tests here and in internal/jobs/httpapi.
package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"ptychopath/internal/dataio"
)

// Errors returned by the subsystem.
var (
	// ErrIngestFull is returned by Append when accepting the frames
	// would overflow the bounded buffer: the reconstruction is not
	// folding frames as fast as they arrive. Retry after a fold.
	ErrIngestFull = errors.New("stream: ingest buffer full")
	// ErrChunkTooLarge is returned by Append for a chunk bigger than
	// the buffer's TOTAL capacity — retrying can never succeed (the
	// HTTP layer maps it to 400, not 429). Split the chunk instead.
	ErrChunkTooLarge = errors.New("stream: chunk exceeds ingest capacity")
	// ErrStreamClosed is returned by Append after CloseEOF.
	ErrStreamClosed = errors.New("stream: stream closed")
	// ErrNoFrames is returned by Run when the stream closes before a
	// single frame arrived.
	ErrNoFrames = errors.New("stream: stream closed with no frames")
	// ErrIterationBudget is returned by Run (with the partial result)
	// when MaxIterations pass before the stream closes — a stalled
	// feed, not a solver failure. The result is checkpointable.
	ErrIterationBudget = errors.New("stream: iteration budget exhausted before end of stream")
)

// Ingest is the bounded buffer between frame producers and the engine.
// Producers call Append and CloseEOF from any goroutine; the engine
// drains it at iteration boundaries. Capacity is in frames.
type Ingest struct {
	mu       sync.Mutex
	buf      []dataio.Frame
	capacity int
	eof      bool
	total    int           // frames ever accepted
	wake     chan struct{} // 1-buffered: new frames or EOF
}

// NewIngest returns a buffer holding at most capacity frames
// (default 4096 when <= 0).
func NewIngest(capacity int) *Ingest {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Ingest{capacity: capacity, wake: make(chan struct{}, 1)}
}

// Capacity returns the buffer bound in frames.
func (in *Ingest) Capacity() int { return in.capacity }

// Append accepts a chunk of frames, all-or-nothing: if the buffer
// cannot hold every frame it accepts none and returns ErrIngestFull,
// so a producer can retry the whole chunk after backoff. It returns
// the total number of frames accepted so far.
func (in *Ingest) Append(frames []dataio.Frame) (int, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.eof {
		return in.total, ErrStreamClosed
	}
	if len(frames) > in.capacity {
		// Even an empty buffer could not hold it: a retryable "full"
		// signal here would livelock a producer that honors it.
		return in.total, fmt.Errorf("%w: %d frames > capacity %d",
			ErrChunkTooLarge, len(frames), in.capacity)
	}
	if len(frames) > in.capacity-len(in.buf) {
		return in.total, fmt.Errorf("%w: %d buffered + %d arriving > capacity %d",
			ErrIngestFull, len(in.buf), len(frames), in.capacity)
	}
	in.buf = append(in.buf, frames...)
	in.total += len(frames)
	in.signal()
	return in.total, nil
}

// CloseEOF marks the end of the acquisition. Idempotent; frames
// already buffered are still folded.
func (in *Ingest) CloseEOF() {
	in.mu.Lock()
	in.eof = true
	in.signal()
	in.mu.Unlock()
}

// signal wakes a blocked take without blocking the producer.
// Called with mu held.
func (in *Ingest) signal() {
	select {
	case in.wake <- struct{}{}:
	default:
	}
}

// Total returns the number of frames accepted so far.
func (in *Ingest) Total() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.total
}

// Pending returns the number of buffered frames not yet folded.
func (in *Ingest) Pending() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.buf)
}

// EOF reports whether the stream has been closed.
func (in *Ingest) EOF() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.eof
}

// poll drains every buffered frame without blocking. eof reports that
// the stream is closed AND fully drained — the engine's signal to
// start its tail iterations.
func (in *Ingest) poll() (frames []dataio.Frame, eof bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	frames = in.buf
	in.buf = nil
	return frames, in.eof
}

// wait blocks until frames are available, the stream closes, or ctx is
// cancelled, then drains like poll.
func (in *Ingest) wait(ctx context.Context) (frames []dataio.Frame, eof bool, err error) {
	for {
		in.mu.Lock()
		if len(in.buf) > 0 || in.eof {
			frames = in.buf
			in.buf = nil
			eof = in.eof
			in.mu.Unlock()
			return frames, eof, nil
		}
		in.mu.Unlock()
		if ctx == nil {
			<-in.wake
			continue
		}
		select {
		case <-in.wake:
		case <-ctx.Done():
			return nil, false, context.Cause(ctx)
		}
	}
}
