package stream

import (
	"bytes"
	"io"
	"testing"

	"ptychopath/internal/dataio"
	"ptychopath/internal/grid"
	"ptychopath/internal/phantom"
	"ptychopath/internal/scan"
)

// benchFrames synthesizes chunkSize frames with windowN x windowN
// measurements (no physics — ingest benchmarks measure plumbing, not
// the forward model).
func benchFrames(windowN, chunkSize int) []dataio.Frame {
	frames := make([]dataio.Frame, chunkSize)
	for i := range frames {
		m := grid.NewFloat2DSize(windowN, windowN)
		for k := range m.Data {
			m.Data[k] = float64(i + k)
		}
		frames[i] = dataio.Frame{
			Loc:  scan.Location{Index: i, X: float64(10 + i), Y: 10, Radius: 6},
			Meas: m,
		}
	}
	return frames
}

// BenchmarkIngestAppendPoll measures the producer→engine handoff: one
// Append of a 64-frame chunk plus the fold-side poll. Bytes/op is the
// frame payload, so MB/s is wire-equivalent ingest throughput.
func BenchmarkIngestAppendPoll(b *testing.B) {
	const windowN, chunk = 64, 64
	frames := benchFrames(windowN, chunk)
	in := NewIngest(4 * chunk)
	b.SetBytes(int64(chunk * (8 + 3*8 + 8*windowN*windowN)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Append(frames); err != nil {
			b.Fatal(err)
		}
		if got, _ := in.poll(); len(got) != chunk {
			b.Fatal("short poll")
		}
	}
	b.ReportMetric(float64(chunk), "frames/op")
}

// BenchmarkChunkDecode measures the codec fast path: one CRC-verified
// 64-frame PTYCHS chunk decoded zero-copy from memory — what a spool
// replay or batch buffer pays per chunk. This is the headline
// single-core decode number the BENCH baseline gates.
func BenchmarkChunkDecode(b *testing.B) {
	const windowN, chunk = 64, 64
	frames := benchFrames(windowN, chunk)
	var buf bytes.Buffer
	if err := dataio.WriteFrameChunk(&buf, windowN, frames); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, eof, _, err := dataio.DecodeChunk(raw, windowN)
		if err != nil || eof || len(got) != chunk {
			b.Fatalf("decode: %d frames, eof %v, err %v", len(got), eof, err)
		}
	}
	b.ReportMetric(float64(chunk), "frames/op")
}

// BenchmarkChunkDecodeStream is the HTTP-body variant: the same chunk
// pulled through io.Reader with a warm decoder, which adds the
// unavoidable copy into the decoder's scratch — the delta against
// BenchmarkChunkDecode is that copy's cost.
func BenchmarkChunkDecodeStream(b *testing.B) {
	const windowN, chunk = 64, 64
	frames := benchFrames(windowN, chunk)
	var buf bytes.Buffer
	if err := dataio.WriteFrameChunk(&buf, windowN, frames); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	dec := new(dataio.ChunkDecoder)
	r := bytes.NewReader(raw)
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(raw)
		got, eof, err := dec.ReadChunk(r, windowN)
		if err != nil || eof || len(got) != chunk {
			b.Fatalf("decode: %d frames, eof %v, err %v", len(got), eof, err)
		}
	}
	b.ReportMetric(float64(chunk), "frames/op")
}

// BenchmarkChunkEncode is the feeder-side counterpart: a warm encoder
// framing 64 frames (build + hardware CRC). The sink is io.Discard so
// the number is the codec's, not the socket's.
func BenchmarkChunkEncode(b *testing.B) {
	const windowN, chunk = 64, 64
	frames := benchFrames(windowN, chunk)
	enc := new(dataio.ChunkEncoder)
	var buf bytes.Buffer
	if err := enc.WriteFrameChunk(&buf, windowN, frames); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.WriteFrameChunk(io.Discard, windowN, frames); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(chunk), "frames/op")
}

// BenchmarkStreamingIteration measures one full engine iteration over
// a 16-location active set — the unit of work between ingest polls.
func BenchmarkStreamingIteration(b *testing.B) {
	prob := acquisition(b, 1)
	hdr := dataio.HeaderFromProblem(prob)
	grown := hdr.NewProblem()
	frames := dataio.FramesFromProblem(prob)
	locs := make([]scan.Location, len(frames))
	meas := make([]*grid.Float2D, len(frames))
	for i, f := range frames {
		locs[i], meas[i] = f.Loc, f.Meas
	}
	if err := grown.AppendLocations(locs, meas); err != nil {
		b.Fatal(err)
	}
	eng := newSerialEngine(grown, phantom.Vacuum(grown.ImageBounds(), grown.Slices).Slices, 0.01)
	eng.iterate()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.iterate()
	}
}
