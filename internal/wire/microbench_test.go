package wire

import (
	"testing"
)

func BenchmarkBulkAppend(b *testing.B) {
	src := make([]float64, 64*64*64)
	dst := AppendFloat64s(nil, src)
	b.SetBytes(int64(len(dst)))
	for i := 0; i < b.N; i++ {
		dst = AppendFloat64s(dst[:0], src)
	}
}

func BenchmarkBulkDecode(b *testing.B) {
	src := make([]float64, 64*64*64)
	raw := AppendFloat64s(nil, src)
	out := make([]float64, len(src))
	b.SetBytes(int64(len(raw)))
	for i := 0; i < b.N; i++ {
		Float64s(out, raw)
	}
}

func BenchmarkCRC(b *testing.B) {
	raw := make([]byte, 64*64*64*8)
	b.SetBytes(int64(len(raw)))
	for i := 0; i < b.N; i++ {
		_ = Checksum(GenCastagnoli, raw)
	}
}
