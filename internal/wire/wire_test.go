package wire

import (
	"bytes"
	"hash/crc32"
	"io"
	"testing"
)

func TestChecksumGenerations(t *testing.T) {
	p := []byte("the quick brown fox jumps over the lazy dog")
	if got, want := Checksum(GenIEEE, p), crc32.ChecksumIEEE(p); got != want {
		t.Fatalf("GenIEEE checksum %08x, want %08x", got, want)
	}
	if got, want := Checksum(GenCastagnoli, p), crc32.Checksum(p, crc32.MakeTable(crc32.Castagnoli)); got != want {
		t.Fatalf("GenCastagnoli checksum %08x, want %08x", got, want)
	}
	if Checksum(GenIEEE, p) == Checksum(GenCastagnoli, p) {
		t.Fatal("generations agree on a non-trivial payload — table mixup")
	}
	// Both generations checksum the empty payload to 0 — the EOF-chunk
	// invariant FORMATS.md documents.
	if Checksum(GenIEEE, nil) != 0 || Checksum(GenCastagnoli, nil) != 0 {
		t.Fatal("empty payload checksum is not 0")
	}
	// Update must continue exactly like a one-shot checksum.
	for _, g := range []Gen{GenIEEE, GenCastagnoli} {
		crc := Update(g, Update(g, 0, p[:7]), p[7:])
		if crc != Checksum(g, p) {
			t.Fatalf("%v: split Update %08x != Checksum %08x", g, crc, Checksum(g, p))
		}
	}
}

func TestVerifyAcceptsBothGenerations(t *testing.T) {
	p := []byte("payload")
	if _, ok := Verify(Checksum(GenCastagnoli, p), p); !ok {
		t.Fatal("current-generation sum rejected")
	}
	if _, ok := Verify(Checksum(GenIEEE, p), p); !ok {
		t.Fatal("legacy-generation sum rejected")
	}
	want, ok := Verify(Checksum(GenIEEE, p)^1, p)
	if ok {
		t.Fatal("corrupt sum accepted")
	}
	if want != Checksum(GenCurrent, p) {
		t.Fatalf("Verify want = %08x, want current-generation %08x", want, Checksum(GenCurrent, p))
	}
}

func TestScalarRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUint32(b, 0xDEADBEEF)
	b = AppendUint64(b, 1<<60)
	b = AppendInt64(b, -42)
	b = AppendFloat64(b, 3.25)
	if Uint32(b) != 0xDEADBEEF || Uint64(b[4:]) != 1<<60 || Int64(b[12:]) != -42 || Float64(b[20:]) != 3.25 {
		t.Fatalf("scalar round trip failed: % x", b)
	}

	f := []float64{0, -1.5, 1e300, -0.0}
	fb := AppendFloat64s(nil, f)
	got := make([]float64, len(f))
	Float64s(got, fb)
	for i := range f {
		if got[i] != f[i] && !(f[i] == 0 && got[i] == 0) {
			t.Fatalf("float64 %d: %g != %g", i, got[i], f[i])
		}
	}

	c := []complex128{complex(1, -2), complex(0, 3.5)}
	cb := AppendComplex128s(nil, c)
	gotC := make([]complex128, len(c))
	Complex128s(gotC, cb)
	for i := range c {
		if gotC[i] != c[i] {
			t.Fatalf("complex %d: %v != %v", i, gotC[i], c[i])
		}
	}
}

func TestChunkFraming(t *testing.T) {
	payload := []byte("hello chunk")
	for _, g := range []Gen{GenIEEE, GenCastagnoli} {
		one := AppendChunk(nil, 'F', payload, g)

		// BeginChunk/EndChunk building the payload in place must produce
		// the identical bytes.
		two, start := BeginChunk(nil, 'F')
		two = append(two, payload...)
		two = EndChunk(two, start, g)
		if !bytes.Equal(one, two) {
			t.Fatalf("%v: AppendChunk % x != Begin/End % x", g, one, two)
		}

		if one[0] != 'F' || Uint64(one[1:]) != uint64(len(payload)) {
			t.Fatalf("%v: bad chunk header % x", g, one[:9])
		}
		sum := Uint32(one[len(one)-4:])
		if sum != Checksum(g, payload) {
			t.Fatalf("%v: chunk crc %08x != %08x", g, sum, Checksum(g, payload))
		}
		if _, ok := Verify(sum, payload); !ok {
			t.Fatalf("%v: Verify rejects its own framing", g)
		}
		if len(one) != len(payload)+ChunkOverhead {
			t.Fatalf("%v: chunk length %d, want %d", g, len(one), len(payload)+ChunkOverhead)
		}
	}
}

func TestReadCapped(t *testing.T) {
	data := bytes.Repeat([]byte{0xAB}, 3*readStep/2) // forces two increments
	got, err := ReadCapped(bytes.NewReader(data), nil, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("ReadCapped corrupted the payload")
	}

	// Lying length: a reader that runs dry mid-payload reports
	// ErrUnexpectedEOF without having read more than what arrived.
	if _, err := ReadCapped(bytes.NewReader(data[:10]), nil, 1<<40); err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}

	// Scratch reuse: with a warm scratch the read allocates nothing.
	scratch := make([]byte, 0, len(data))
	r := bytes.NewReader(data)
	allocs := testing.AllocsPerRun(20, func() {
		r.Reset(data)
		buf, err := ReadCapped(r, scratch, int64(len(data)))
		if err != nil {
			t.Fatal(err)
		}
		scratch = buf
	})
	if allocs != 0 {
		t.Fatalf("warm ReadCapped allocates %.1f/op, want 0", allocs)
	}
}

// drip yields one byte at a time — exercises the io.ReadFull loop.
type drip struct{ rest []byte }

func (d *drip) Read(p []byte) (int, error) {
	if len(d.rest) == 0 {
		return 0, io.EOF
	}
	p[0] = d.rest[0]
	d.rest = d.rest[1:]
	return 1, nil
}

func TestReadCappedShortReads(t *testing.T) {
	data := []byte("short-read payload")
	got, err := ReadCapped(&drip{rest: data}, nil, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("ReadCapped mishandled short reads")
	}
}

// TestPortableMatchesFastPath pins the big-endian fallback loops to
// the memcpy fast path: both directions, both element types.
func TestPortableMatchesFastPath(t *testing.T) {
	if !hostLittleEndian {
		t.Skip("host is big-endian; the fallback IS the only path")
	}
	floats := []float64{0, 1, -2.5, 3e300, -4e-300}
	cplx := []complex128{complex(1, -2), complex(-3e7, 4e-7)}
	fastF := AppendFloat64s(nil, floats)
	fastC := AppendComplex128s(nil, cplx)
	hostLittleEndian = false
	slowF := AppendFloat64s(nil, floats)
	slowC := AppendComplex128s(nil, cplx)
	gotF := make([]float64, len(floats))
	gotC := make([]complex128, len(cplx))
	Float64s(gotF, fastF)
	Complex128s(gotC, fastC)
	hostLittleEndian = true
	if !bytes.Equal(fastF, slowF) || !bytes.Equal(fastC, slowC) {
		t.Fatal("fast and portable encodings differ")
	}
	for i := range floats {
		if gotF[i] != floats[i] {
			t.Fatalf("float64 %d: %v != %v", i, gotF[i], floats[i])
		}
	}
	for i := range cplx {
		if gotC[i] != cplx[i] {
			t.Fatalf("complex128 %d: %v != %v", i, gotC[i], cplx[i])
		}
	}
}
