// Package wire is the shared byte-level toolkit behind every framed
// codec in the repository: the PTYCHSv1/v2 stream chunks
// (internal/dataio), the PTGW grid frames (internal/transport) and the
// PTYWAL job-state records (internal/jobs/store). It owns two things
// the codecs previously each reimplemented:
//
//   - The checksum generations. Generation 0 is the original IEEE
//     CRC-32 framing; generation 1 is Castagnoli (crc32.Castagnoli),
//     which hash/crc32 computes with dedicated SIMD instructions on
//     amd64 and arm64 — the difference between ~1 GB/s and
//     hardware-speed checksumming on the wire hot path. Writers emit
//     the current generation; readers accept BOTH via Verify, so files
//     written and peers deployed before the switch keep decoding
//     (docs/FORMATS.md, "Checksum generations").
//
//   - Allocation-free little-endian encode/decode primitives: append
//     helpers that grow a caller-owned scratch buffer (amortized zero
//     allocations, the scratch-arena recipe the gradient kernel uses),
//     bulk float64 conversions, and the house chunk framing
//     (kind byte, int64 length, payload, uint32 CRC) shared by
//     PTYCHS chunks and PTYWAL records.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"
)

// hostLittleEndian reports whether host memory layout already matches
// the wire's little-endian encoding. On such hosts (amd64, arm64, …)
// the bulk float64 conversions degenerate into memcpy — the other half,
// with hardware CRC, of the ≥4 GB/s codec budget. Big-endian hosts
// take the portable per-element path below.
var hostLittleEndian = func() bool {
	var v uint16 = 1
	return *(*byte)(unsafe.Pointer(&v)) == 1
}()

// Gen is a checksum generation. The zero value is the legacy
// generation, so pre-generation code and fixtures read naturally.
type Gen uint8

const (
	// GenIEEE is generation 0: the original IEEE CRC-32 polynomial,
	// software slicing-by-8. Legacy files and protocol peers frame
	// with it; writers no longer emit it.
	GenIEEE Gen = 0
	// GenCastagnoli is generation 1: the Castagnoli polynomial,
	// computed with dedicated instructions (SSE4.2 CRC32 / ARMv8 CRC)
	// on amd64 and arm64. All current writers emit it.
	GenCastagnoli Gen = 1
	// GenCurrent is what writers emit today.
	GenCurrent = GenCastagnoli
)

func (g Gen) String() string {
	switch g {
	case GenIEEE:
		return "ieee"
	case GenCastagnoli:
		return "castagnoli"
	default:
		return fmt.Sprintf("gen%d", uint8(g))
	}
}

// castagnoli is built once; crc32.MakeTable caches the SIMD dispatch.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC-32 of p under generation g.
func Checksum(g Gen, p []byte) uint32 {
	if g == GenCastagnoli {
		return crc32.Checksum(p, castagnoli)
	}
	return crc32.ChecksumIEEE(p)
}

// Update continues a running CRC-32 under generation g.
func Update(g Gen, crc uint32, p []byte) uint32 {
	if g == GenCastagnoli {
		return crc32.Update(crc, castagnoli, p)
	}
	return crc32.Update(crc, crc32.IEEETable, p)
}

// Verify reports whether sum matches p under any accepted generation,
// current first (one hardware-speed pass on the happy path; the legacy
// pass only runs when the first mismatches). The returned want is the
// current-generation checksum — what an error message should cite.
func Verify(sum uint32, p []byte) (want uint32, ok bool) {
	want = Checksum(GenCurrent, p)
	if sum == want {
		return want, true
	}
	return want, sum == Checksum(GenIEEE, p)
}

// --- scalar append helpers ------------------------------------------

// AppendUint32 appends v little-endian.
func AppendUint32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

// AppendUint64 appends v little-endian.
func AppendUint64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// AppendInt64 appends v little-endian.
func AppendInt64(dst []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(v))
}

// AppendFloat64 appends v's bit pattern little-endian — exact both ways.
func AppendFloat64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// AppendFloat64s appends every element of src, 8 bytes each. One grow,
// then straight 8-byte stores — the bulk half of the codec fast path.
func AppendFloat64s(dst []byte, src []float64) []byte {
	off := len(dst)
	dst = Grow(dst, 8*len(src))
	out := dst[off:]
	if hostLittleEndian && len(src) > 0 {
		copy(out, unsafe.Slice((*byte)(unsafe.Pointer(&src[0])), 8*len(src)))
		return dst
	}
	for i, v := range src {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return dst
}

// AppendComplex128s appends src as interleaved (re, im) float64 pairs.
func AppendComplex128s(dst []byte, src []complex128) []byte {
	off := len(dst)
	dst = Grow(dst, 16*len(src))
	out := dst[off:]
	if hostLittleEndian && len(src) > 0 {
		copy(out, unsafe.Slice((*byte)(unsafe.Pointer(&src[0])), 16*len(src)))
		return dst
	}
	for i, v := range src {
		binary.LittleEndian.PutUint64(out[16*i:], math.Float64bits(real(v)))
		binary.LittleEndian.PutUint64(out[16*i+8:], math.Float64bits(imag(v)))
	}
	return dst
}

// Grow extends dst by n bytes of unspecified content, reallocating
// (with doubling, so repeated calls amortize) only when capacity is
// short. Callers overwrite the appended region.
func Grow(dst []byte, n int) []byte {
	l := len(dst)
	if cap(dst)-l < n {
		grown := make([]byte, l, nextCap(l+n, cap(dst)))
		copy(grown, dst)
		dst = grown
	}
	return dst[:l+n]
}

// nextCap doubles until need fits, so repeated Grow calls amortize.
func nextCap(need, have int) int {
	if have < 64 {
		have = 64
	}
	for have < need {
		have *= 2
	}
	return have
}

// --- scalar decode helpers ------------------------------------------

// Uint32 reads a little-endian uint32 at src[0:4].
func Uint32(src []byte) uint32 { return binary.LittleEndian.Uint32(src) }

// Uint64 reads a little-endian uint64 at src[0:8].
func Uint64(src []byte) uint64 { return binary.LittleEndian.Uint64(src) }

// Int64 reads a little-endian int64 at src[0:8].
func Int64(src []byte) int64 { return int64(binary.LittleEndian.Uint64(src)) }

// Float64 reads a little-endian float64 bit pattern at src[0:8].
func Float64(src []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(src))
}

// Float64s fills dst from src (8 bytes per element); src must hold at
// least 8*len(dst) bytes. The bulk half of the decode fast path.
func Float64s(dst []float64, src []byte) {
	if len(dst) == 0 {
		return
	}
	if hostLittleEndian {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), 8*len(dst)), src[:8*len(dst)])
		return
	}
	_ = src[8*len(dst)-1] // one bounds check, not len(dst)
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
}

// Complex128s fills dst from src as interleaved (re, im) float64
// pairs; src must hold at least 16*len(dst) bytes.
func Complex128s(dst []complex128, src []byte) {
	if len(dst) == 0 {
		return
	}
	if hostLittleEndian {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), 16*len(dst)), src[:16*len(dst)])
		return
	}
	_ = src[16*len(dst)-1]
	for i := range dst {
		dst[i] = complex(
			math.Float64frombits(binary.LittleEndian.Uint64(src[16*i:])),
			math.Float64frombits(binary.LittleEndian.Uint64(src[16*i+8:])),
		)
	}
}

// --- the house chunk framing ----------------------------------------
//
// PTYCHS chunks and PTYWAL records share one frame shape:
//
//	kind    [1]byte
//	length  int64: payload byte count
//	payload length bytes
//	crc     uint32 CRC-32 of the payload (generation per writer)
//
// Encoders build the payload in place inside the caller's scratch:
// BeginChunk reserves the header, EndChunk backfills the length and
// appends the checksum — no intermediate payload buffer exists.

// ChunkOverhead is the framing bytes around a chunk payload.
const ChunkOverhead = 1 + 8 + 4

// BeginChunk appends kind and a length placeholder to dst and returns
// the buffer plus the payload start offset for EndChunk.
func BeginChunk(dst []byte, kind byte) (out []byte, payloadStart int) {
	dst = append(dst, kind)
	dst = AppendUint64(dst, 0) // backfilled by EndChunk
	return dst, len(dst)
}

// EndChunk completes a chunk begun with BeginChunk: everything
// appended since payloadStart is the payload; the length field is
// backfilled and the generation-g CRC of the payload appended.
func EndChunk(dst []byte, payloadStart int, g Gen) []byte {
	payload := dst[payloadStart:]
	binary.LittleEndian.PutUint64(dst[payloadStart-8:], uint64(len(payload)))
	return AppendUint32(dst, Checksum(g, payload))
}

// AppendChunk appends one complete chunk framing an existing payload.
func AppendChunk(dst []byte, kind byte, payload []byte, g Gen) []byte {
	dst = append(dst, kind)
	dst = AppendUint64(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return AppendUint32(dst, Checksum(g, payload))
}

// --- bounded payload reading ----------------------------------------

// readStep bounds a single payload-read increment: memory tracks the
// bytes that ACTUALLY arrive, so a lying length field cannot commit
// the reader to an absurd allocation (the dataio decoders' rule).
const readStep = 1 << 20

// ReadCapped reads exactly n bytes from r, reusing scratch when its
// capacity suffices (zero allocations steady-state). It grows in
// bounded increments while bytes keep arriving; a stream that runs dry
// mid-payload returns io.ErrUnexpectedEOF having allocated only what
// arrived. The filled buffer aliases scratch's backing array whenever
// possible — callers own the result until their next call.
func ReadCapped(r io.Reader, scratch []byte, n int64) ([]byte, error) {
	buf := scratch[:0]
	var got int64
	for got < n {
		step := min(n-got, readStep)
		buf = Grow(buf, int(step))
		if _, err := io.ReadFull(r, buf[got:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		got += step
	}
	return buf, nil
}
