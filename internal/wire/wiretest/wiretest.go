// Package wiretest is the shared toolkit of the wire-conformance
// suites in dataio, transport and jobs/store: golden byte-vector
// comparison with an -update regeneration flag, and the house corpus
// of framing attacks (truncation, CRC bit-flips, lying length fields)
// that every codec fuzzer seeds from — so a defense added against one
// format's decoder is immediately rehearsed against the others.
package wiretest

import (
	"bytes"
	"encoding/binary"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden wire fixtures in place")

// Golden compares got against the fixture testdata/<name>. With
// -update the fixture is (re)written instead — run that once, eyeball
// the diff, commit the bytes. A missing fixture fails with the
// regeneration hint.
func Golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden fixture %s missing (regenerate with go test -run %s -update): %v", path, t.Name(), err)
	}
	if bytes.Equal(got, want) {
		return
	}
	off := 0
	for off < len(got) && off < len(want) && got[off] == want[off] {
		off++
	}
	t.Fatalf("%s: %d bytes, want %d; first difference at offset %d", path, len(got), len(want), off)
}

// PatchInt64 returns a copy of b with a little-endian int64 written at
// off — the standard way the fuzz corpora forge a length field.
func PatchInt64(b []byte, off int, v int64) []byte {
	out := append([]byte(nil), b...)
	binary.LittleEndian.PutUint64(out[off:], uint64(v))
	return out
}

// PatchUint32 returns a copy of b with a little-endian uint32 at off.
func PatchUint32(b []byte, off int, v uint32) []byte {
	out := append([]byte(nil), b...)
	binary.LittleEndian.PutUint32(out[off:], v)
	return out
}

// FlipBit returns a copy of b with one bit at byte offset off flipped.
func FlipBit(b []byte, off int) []byte {
	out := append([]byte(nil), b...)
	out[off] ^= 0x40
	return out
}

// Mutations derives the house corpus of framing attacks from one valid
// encoding whose first record's length field sits at lenOff: the valid
// bytes themselves, truncations cutting inside the header / payload /
// trailing checksum, a CRC bit-flip, and lying lengths (negative,
// shorter than the payload so the CRC lands mid-bytes, and far past
// any cap). Seed every codec fuzzer with all of them:
//
//	for _, m := range wiretest.Mutations(valid, off) { f.Add(m) }
func Mutations(valid []byte, lenOff int) [][]byte {
	out := [][]byte{append([]byte(nil), valid...)}
	cuts := []int{
		lenOff,         // before the length field
		lenOff + 4,     // inside the length field
		lenOff + 8,     // header intact, zero payload bytes
		len(valid) / 2, // mid-payload
		len(valid) - 4, // payload intact, checksum missing
		len(valid) - 1, // inside the checksum
	}
	seen := map[int]bool{len(valid): true}
	for _, cut := range cuts {
		if cut < 0 || seen[cut] {
			continue
		}
		seen[cut] = true
		out = append(out, append([]byte(nil), valid[:cut]...))
	}
	out = append(out, FlipBit(valid, len(valid)-2)) // corrupt the trailing CRC
	if mid := (lenOff + 8 + len(valid)) / 2; mid < len(valid) {
		out = append(out, FlipBit(valid, mid)) // corrupt the payload under an intact CRC
	}
	for _, lie := range []int64{-1, 3, 1 << 40, int64(len(valid))} {
		out = append(out, PatchInt64(valid, lenOff, lie))
	}
	return out
}
