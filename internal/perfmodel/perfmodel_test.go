package perfmodel

import (
	"math"
	"testing"

	"ptychopath/internal/cluster"
)

// paperTol asserts a model value lies within frac of the paper value.
func paperTol(t *testing.T, name string, got, paper, frac float64) {
	t.Helper()
	if math.Abs(got-paper) > frac*paper {
		t.Errorf("%s: model %.3g vs paper %.3g (tolerance %.0f%%)", name, got, paper, frac*100)
	}
}

func TestGDLargeDatasetMatchesTableIII(t *testing.T) {
	// Runtime anchors (the calibration targets) must land close.
	cfg := DefaultConfig(cluster.LargeLeadTitanate())
	paper := map[int]struct{ mem, run float64 }{
		6:    {9.14, 5543.0},
		54:   {1.54, 183.0},
		198:  {0.66, 37.5},
		462:  {0.42, 14.2},
		924:  {0.32, 7.0},
		4158: {0.18, 2.2},
	}
	rows := cfg.GDTable(PaperGPUCountsLarge)
	for _, r := range rows {
		p := paper[r.GPUs]
		paperTol(t, fmtGPU("runtime", r.GPUs), r.RuntimeMin, p.run, 0.15)
		paperTol(t, fmtGPU("memory", r.GPUs), r.MemoryGB, p.mem, 0.25)
	}
	// Super-linear strong scaling at 4158 GPUs (paper: 364%).
	last := rows[len(rows)-1]
	if last.EfficiencyPct < 250 || last.EfficiencyPct > 500 {
		t.Errorf("efficiency at 4158 GPUs = %.0f%%, paper reports 364%%", last.EfficiencyPct)
	}
	// Memory monotone decreasing.
	for i := 1; i < len(rows); i++ {
		if rows[i].MemoryGB >= rows[i-1].MemoryGB {
			t.Errorf("memory not decreasing at %d GPUs", rows[i].GPUs)
		}
		if rows[i].RuntimeMin >= rows[i-1].RuntimeMin {
			t.Errorf("runtime not decreasing at %d GPUs", rows[i].GPUs)
		}
	}
}

func TestGDSmallDatasetPredictsTableII(t *testing.T) {
	// The small dataset is a PREDICTION (calibrated only on the large
	// one) — allow wider tolerance but require the paper's shape.
	cfg := DefaultConfig(cluster.SmallLeadTitanate())
	paper := map[int]struct{ mem, run float64 }{
		6:   {2.53, 360.0},
		24:  {1.20, 73.0},
		54:  {0.58, 20.6},
		126: {0.39, 11.5},
		198: {0.31, 5.5},
		462: {0.23, 3.0},
	}
	rows := cfg.GDTable(PaperGPUCountsSmall)
	for _, r := range rows {
		p := paper[r.GPUs]
		paperTol(t, fmtGPU("runtime", r.GPUs), r.RuntimeMin, p.run, 0.45)
		paperTol(t, fmtGPU("memory", r.GPUs), r.MemoryGB, p.mem, 0.35)
	}
	// Super-linear scaling throughout (paper: 123%-198%).
	for _, r := range rows[1:] {
		if r.EfficiencyPct < 100 {
			t.Errorf("efficiency at %d GPUs = %.0f%%, paper reports super-linear", r.GPUs, r.EfficiencyPct)
		}
	}
}

func TestHVELargeDatasetMatchesTableIIIb(t *testing.T) {
	cfg := DefaultConfig(cluster.LargeLeadTitanate())
	paper := map[int]struct{ mem, run float64 }{
		6:   {9.47, 7213.3},
		54:  {1.8, 271.7},
		198: {0.78, 59.2},
		462: {0.48, 189.5},
	}
	rows := cfg.HVETable(PaperHVECountsLarge)
	for _, r := range rows {
		if r.NA {
			t.Fatalf("HVE NA at %d GPUs; paper reports values", r.GPUs)
		}
		p := paper[r.GPUs]
		paperTol(t, fmtGPU("hve runtime", r.GPUs), r.RuntimeMin, p.run, 0.30)
		paperTol(t, fmtGPU("hve memory", r.GPUs), r.MemoryGB, p.mem, 0.30)
	}
	// The defining shape: runtime INCREASES from 198 to 462 GPUs (the
	// scalability collapse).
	if rows[3].RuntimeMin <= rows[2].RuntimeMin {
		t.Errorf("HVE collapse missing: %.1f min at 462 vs %.1f at 198",
			rows[3].RuntimeMin, rows[2].RuntimeMin)
	}
	// Beyond 462 the tile constraint fails (paper stops reporting).
	if r := cfg.HVERow(924); !r.NA {
		t.Error("HVE at 924 GPUs should hit the tile-size constraint")
	}
}

func TestHVESmallDatasetNABoundary(t *testing.T) {
	// Table II(b): values through 54 GPUs, NA from 126 on.
	cfg := DefaultConfig(cluster.SmallLeadTitanate())
	paper := map[int]struct{ mem, run float64 }{
		6:  {2.80, 463.3},
		24: {1.20, 95.3},
		54: {0.78, 43.7},
	}
	for gpus, p := range paper {
		r := cfg.HVERow(gpus)
		if r.NA {
			t.Fatalf("HVE NA at %d GPUs; paper reports values", gpus)
		}
		paperTol(t, fmtGPU("hve-small runtime", gpus), r.RuntimeMin, p.run, 0.35)
		paperTol(t, fmtGPU("hve-small memory", gpus), r.MemoryGB, p.mem, 0.35)
	}
	if r := cfg.HVERow(126); !r.NA {
		t.Error("HVE at 126 GPUs must be NA (paper Table II(b))")
	}
}

func TestGDBeatsHVEEverywhere(t *testing.T) {
	// The headline comparisons: GD is faster and leaner at every
	// common GPU count, on both datasets.
	for _, spec := range []cluster.DatasetSpec{cluster.SmallLeadTitanate(), cluster.LargeLeadTitanate()} {
		cfg := DefaultConfig(spec)
		for _, gpus := range []int{6, 54, 198} {
			gd := cfg.GDRow(gpus)
			hve := cfg.HVERow(gpus)
			if hve.NA {
				continue
			}
			if gd.RuntimeMin >= hve.RuntimeMin {
				t.Errorf("%s %d GPUs: GD %.1f min not faster than HVE %.1f",
					spec.Name, gpus, gd.RuntimeMin, hve.RuntimeMin)
			}
			if gd.MemoryGB >= hve.MemoryGB {
				t.Errorf("%s %d GPUs: GD %.2f GB not leaner than HVE %.2f",
					spec.Name, gpus, gd.MemoryGB, hve.MemoryGB)
			}
		}
	}
}

func TestHeadlineFactors(t *testing.T) {
	// Paper abstract: 86x faster, 2.7x more memory efficient, 51x
	// memory reduction across the GD scaling range, ~2519x speedup.
	cfg := DefaultConfig(cluster.LargeLeadTitanate())
	gdBest := cfg.GDRow(4158)
	hveBest := cfg.HVERow(198) // HVE's best runtime
	speedFactor := hveBest.RuntimeMin / gdBest.RuntimeMin
	if speedFactor < 20 || speedFactor > 250 {
		t.Errorf("GD vs HVE best-case speed factor %.0fx, paper reports 86x", speedFactor)
	}
	memFactor := cfg.HVERow(462).MemoryGB / gdBest.MemoryGB
	if memFactor < 1.5 || memFactor > 6 {
		t.Errorf("memory factor %.1fx, paper reports 2.7x", memFactor)
	}
	reduction := cfg.GDRow(6).MemoryGB / gdBest.MemoryGB
	if reduction < 30 || reduction > 80 {
		t.Errorf("GD memory reduction %.0fx, paper reports 51x", reduction)
	}
	speedup := cfg.GDRow(6).RuntimeMin / gdBest.RuntimeMin
	if speedup < 1500 || speedup > 4000 {
		t.Errorf("GD 6->4158 speedup %.0fx, paper reports 2519x", speedup)
	}
}

func TestAPPPAblationCommBlowup(t *testing.T) {
	// Fig 7b: without APPP, communication dominates at scale; the
	// paper reports a 16x communication gap at 462 GPUs. The all-reduce
	// model should produce a large (>= 10x) gap.
	cfg := DefaultConfig(cluster.LargeLeadTitanate())
	cfg.SimIterations = 1
	with := cfg.GDRow(462)
	without := cfg.GDRowNoAPPP(462)
	if without.Breakdown.CommMin < 10*with.Breakdown.CommMin {
		t.Errorf("comm without APPP %.2f min vs with %.2f min — expected >= 10x gap",
			without.Breakdown.CommMin, with.Breakdown.CommMin)
	}
	if without.RuntimeMin <= with.RuntimeMin {
		t.Error("disabling APPP must slow the reconstruction")
	}
}

func TestWaitTimeDecreasesWithGPUs(t *testing.T) {
	// Fig 7b: wait time falls as GPUs increase (more GPUs, fewer
	// locations each, less imbalance).
	cfg := DefaultConfig(cluster.LargeLeadTitanate())
	cfg.SimIterations = 1
	prev := math.Inf(1)
	for _, gpus := range []int{24, 54, 198, 462} {
		r := cfg.GDRow(gpus)
		if r.Breakdown.WaitMin > prev {
			t.Errorf("wait time increased at %d GPUs: %.2f min", gpus, r.Breakdown.WaitMin)
		}
		prev = r.Breakdown.WaitMin
	}
}

func TestMostSquareGridPaperCounts(t *testing.T) {
	cases := map[int][2]int{
		6: {2, 3}, 24: {4, 6}, 54: {6, 9}, 126: {9, 14},
		198: {11, 18}, 462: {21, 22}, 924: {28, 33}, 4158: {63, 66},
	}
	for k, want := range cases {
		r, c := cluster.MostSquareGrid(k)
		if r != want[0] || c != want[1] {
			t.Errorf("grid(%d) = %dx%d, want %dx%d", k, r, c, want[0], want[1])
		}
	}
}

func TestTableEfficiencyBase(t *testing.T) {
	rows := []Row{
		{GPUs: 6, RuntimeMin: 600},
		{GPUs: 12, RuntimeMin: 300},
		{GPUs: 24, RuntimeMin: 100},
	}
	rows = Table(rows)
	if math.Abs(rows[0].EfficiencyPct-100) > 1e-9 {
		t.Fatalf("base efficiency %.1f", rows[0].EfficiencyPct)
	}
	if math.Abs(rows[1].EfficiencyPct-100) > 1e-9 {
		t.Fatalf("linear row efficiency %.1f", rows[1].EfficiencyPct)
	}
	if math.Abs(rows[2].EfficiencyPct-150) > 1e-9 {
		t.Fatalf("superlinear row efficiency %.1f", rows[2].EfficiencyPct)
	}
}

func TestCacheFactorInterpolation(t *testing.T) {
	cal := cluster.DefaultCalibration()
	if cal.CacheFactor(20) != 1.0 {
		t.Error("clamp above largest anchor")
	}
	if cal.CacheFactor(0.01) != 1.67 {
		t.Error("clamp below smallest anchor")
	}
	mid := cal.CacheFactor(1.0)
	if mid <= 1.22 || mid >= 1.48 {
		t.Errorf("cf(1.0) = %g, want within (1.22, 1.48)", mid)
	}
	// Monotone decreasing in ws.
	prev := 0.0
	for _, ws := range []float64{10, 5, 2, 1, 0.5, 0.3, 0.1} {
		f := cal.CacheFactor(ws)
		if f < prev {
			t.Errorf("cache factor not monotone at ws=%g", ws)
		}
		prev = f
	}
}

func fmtGPU(what string, gpus int) string {
	return what + "@" + itoa(gpus)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
