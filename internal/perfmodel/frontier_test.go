package perfmodel

import (
	"testing"

	"ptychopath/internal/cluster"
)

func TestFrontierGDScalesWithGPUs(t *testing.T) {
	cfg := DefaultConfig(cluster.LargeLeadTitanate())
	pts := cfg.Frontier([]int{6, 54, 462, 4158})
	prev := 0
	for _, p := range pts {
		if p.MaxImageGD <= 0 {
			t.Fatalf("GD infeasible at %d GPUs", p.GPUs)
		}
		if p.MaxImageGD < prev {
			t.Fatalf("GD frontier shrank at %d GPUs: %d < %d", p.GPUs, p.MaxImageGD, prev)
		}
		prev = p.MaxImageGD
	}
	// The paper's large dataset (3072 px) must be feasible well below
	// 4158 GPUs and infeasible... at 6 GPUs the model says 9.47 GB < 16
	// GB, so 3072 fits even at 6 GPUs — but not much more.
	if pts[0].MaxImageGD < 3072 {
		t.Fatalf("3072 px must fit at 6 GPUs (paper ran it): frontier %d", pts[0].MaxImageGD)
	}
	if pts[0].MaxImageGD > 3*3072 {
		t.Fatalf("frontier at 6 GPUs implausibly large: %d", pts[0].MaxImageGD)
	}
	// At 4158 GPUs a much larger reconstruction fits.
	if pts[3].MaxImageGD < 4*3072 {
		t.Fatalf("frontier at 4158 GPUs too small: %d", pts[3].MaxImageGD)
	}
}

func TestFrontierGDBeatsHVE(t *testing.T) {
	cfg := DefaultConfig(cluster.LargeLeadTitanate())
	pts := cfg.Frontier([]int{6, 54, 198})
	for _, p := range pts {
		if p.MaxImageHVE <= 0 {
			t.Fatalf("HVE should be feasible at %d GPUs for some size", p.GPUs)
		}
		if p.MaxImageGD <= p.MaxImageHVE {
			t.Fatalf("GD frontier %d not above HVE %d at %d GPUs",
				p.MaxImageGD, p.MaxImageHVE, p.GPUs)
		}
		if p.ResolutionAdvantage <= 1 {
			t.Fatalf("resolution advantage %g at %d GPUs", p.ResolutionAdvantage, p.GPUs)
		}
	}
}

func TestFrontierHVEInfeasibleAtScale(t *testing.T) {
	// At very high GPU counts HVE's tile constraint can make EVERY
	// image size infeasible for a fixed scan density... the constraint
	// reach is fixed in pixels while tiles shrink with K for fixed
	// image, but the frontier grows the image. Verify the advantage
	// ratio at least widens or HVE drops out.
	cfg := DefaultConfig(cluster.LargeLeadTitanate())
	pts := cfg.Frontier([]int{54, 924})
	if pts[1].MaxImageHVE > 0 && pts[1].ResolutionAdvantage < pts[0].ResolutionAdvantage*0.8 {
		t.Fatalf("HVE unexpectedly caught up at scale: %+v", pts)
	}
}

func TestScaledSpecKeepsDensity(t *testing.T) {
	cfg := DefaultConfig(cluster.LargeLeadTitanate())
	big := scaledSpec(cfg, 6144)
	if big.Spec.ImageW != 6144 || big.Spec.ImageH != 6144 {
		t.Fatal("image not scaled")
	}
	// Locations must grow ~4x for a 2x edge.
	ratio := float64(big.Spec.Locations) / float64(cfg.Spec.Locations)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("location scaling %g, want ~4", ratio)
	}
	// Scan step (density) preserved within rounding.
	if d := big.Spec.StepPix() - cfg.Spec.StepPix(); d > 1 || d < -1 {
		t.Fatalf("scan density changed: %g vs %g", big.Spec.StepPix(), cfg.Spec.StepPix())
	}
}

func TestMaxFeasibleEdge(t *testing.T) {
	if got := maxFeasibleEdge(1, 100, func(e int) bool { return e <= 42 }); got != 42 {
		t.Fatalf("binary search got %d, want 42", got)
	}
	if got := maxFeasibleEdge(10, 100, func(e int) bool { return false }); got != 0 {
		t.Fatalf("infeasible case got %d, want 0", got)
	}
	if got := maxFeasibleEdge(10, 100, func(e int) bool { return true }); got != 100 {
		t.Fatalf("all-feasible case got %d, want 100", got)
	}
}

func TestAnalyticRuntimeMatchesDES(t *testing.T) {
	// The analytic shortcut used by the time-budget frontier must stay
	// within a few percent of the DES for the table anchors.
	cfg := DefaultConfig(cluster.LargeLeadTitanate())
	cfg.SimIterations = 1
	for _, k := range []int{54, 462} {
		a, ok := analyticRuntimeMin(cfg, k, false)
		if !ok {
			t.Fatalf("GD infeasible at %d", k)
		}
		d := cfg.GDRow(k).RuntimeMin
		if a < 0.9*d || a > 1.1*d {
			t.Fatalf("GD@%d analytic %.1f vs DES %.1f", k, a, d)
		}
		ah, ok := analyticRuntimeMin(cfg, k, true)
		if !ok {
			t.Fatalf("HVE infeasible at %d", k)
		}
		dh := cfg.HVERow(k).RuntimeMin
		if ah < 0.85*dh || ah > 1.15*dh {
			t.Fatalf("HVE@%d analytic %.1f vs DES %.1f", k, ah, dh)
		}
	}
}

func TestTimeBudgetFrontier(t *testing.T) {
	cfg := DefaultConfig(cluster.LargeLeadTitanate())
	pool := []int{6, 54, 198, 462, 924, 4158}
	pts := cfg.TimeBudget([]float64{2.5, 60}, pool)
	// At the paper's 2.2-2.5 min regime, GD must handle ~3072 px while
	// HVE is infeasible at any size (its best runtime is ~1 hour).
	if pts[0].MaxImageGD < 3000 {
		t.Fatalf("GD at 2.5 min budget only %d px", pts[0].MaxImageGD)
	}
	if pts[0].MaxImageHVE != 0 {
		t.Fatalf("HVE should be infeasible within 2.5 min, got %d px", pts[0].MaxImageHVE)
	}
	// With an hour both work, GD still ahead.
	if pts[1].MaxImageHVE == 0 || pts[1].MaxImageGD <= pts[1].MaxImageHVE {
		t.Fatalf("60-min frontier wrong: %+v", pts[1])
	}
	// More budget, more resolution.
	if pts[1].MaxImageGD <= pts[0].MaxImageGD {
		t.Fatal("frontier must grow with budget")
	}
}

func TestWeakScalingRoughlyFlat(t *testing.T) {
	// With constant locations per GPU the compute term is flat; the
	// cache-factor gain even makes it slightly super-linear until the
	// fixed overheads bite. Efficiency must stay within a sane band.
	cfg := DefaultConfig(cluster.LargeLeadTitanate())
	pts := cfg.WeakScaling([]int{6, 24, 96, 384, 1536})
	if pts[0].EfficiencyPct != 100 {
		t.Fatalf("base efficiency %g", pts[0].EfficiencyPct)
	}
	for _, p := range pts[1:] {
		if p.EfficiencyPct < 60 || p.EfficiencyPct > 220 {
			t.Fatalf("weak scaling efficiency %d GPUs: %.0f%% out of band", p.GPUs, p.EfficiencyPct)
		}
	}
	// Image must actually grow.
	if pts[4].ImageEdge <= pts[0].ImageEdge*10 {
		t.Fatalf("edge did not scale: %d -> %d", pts[0].ImageEdge, pts[4].ImageEdge)
	}
}
