package perfmodel

// Ablations for the design choices DESIGN.md calls out: the Gradient
// Decomposition halo width (memory/communication trade-off) and the
// Halo Voxel Exchange redundant-row count (compute/quality trade-off).

// HaloPoint is one row of the halo-width sensitivity sweep.
type HaloPoint struct {
	HaloPM           float64
	MemoryGB         float64
	CommBytesPerIter float64 // total gradient bytes exchanged per rank per iteration
	RuntimeMin       float64
}

// HaloSensitivity sweeps the Gradient Decomposition halo width at a
// fixed GPU count. Wider halos grow the per-GPU footprint and the pass
// traffic quadratically in the overlap band while leaving compute
// unchanged — the reason the paper's 600 pm halo (just covering the
// probe) is the sweet spot.
func (c Config) HaloSensitivity(gpus int, haloPMs []float64) []HaloPoint {
	out := make([]HaloPoint, 0, len(haloPMs))
	for _, halo := range haloPMs {
		cfg := c
		cfg.HaloGDPM = halo
		g := cfg.geom(gpus, halo)
		s := float64(cfg.Spec.Slices)
		bytesV := g.extW * minf(2*g.haloPx, g.extH) * s * cfg.Cal.VoxelBytes
		bytesH := g.extH * minf(2*g.haloPx, g.extW) * s * cfg.Cal.VoxelBytes
		row := cfg.GDRow(gpus)
		out = append(out, HaloPoint{
			HaloPM:           halo,
			MemoryGB:         cfg.MemoryGDGB(gpus),
			CommBytesPerIter: 2 * (bytesV + bytesH),
			RuntimeMin:       row.RuntimeMin,
		})
	}
	return out
}

// ExtraRowsPoint is one row of the HVE redundancy sweep.
type ExtraRowsPoint struct {
	ExtraRows        int
	MemoryGB         float64
	RedundantLocs    float64 // extra probe locations per GPU
	RedundantPercent float64 // redundant compute relative to owned work
	RuntimeMin       float64
	NA               bool
}

// ExtraRowsSensitivity sweeps the Halo Voxel Exchange redundant-row
// count at a fixed GPU count: more rows mean more redundant compute and
// memory (the paper's Figs 2(d)-(e) argument) but better tile
// consistency.
func (c Config) ExtraRowsSensitivity(gpus int, rows []int) []ExtraRowsPoint {
	out := make([]ExtraRowsPoint, 0, len(rows))
	for _, er := range rows {
		cfg := c
		cfg.HVEExtraRows = er
		g := cfg.geom(gpus, cfg.HaloHVEPM)
		extra := cfg.hveExtraLocs(g)
		row := cfg.HVERow(gpus)
		out = append(out, ExtraRowsPoint{
			ExtraRows:        er,
			MemoryGB:         row.MemoryGB,
			RedundantLocs:    extra,
			RedundantPercent: 100 * extra / g.locsPerGPU,
			RuntimeMin:       row.RuntimeMin,
			NA:               row.NA,
		})
	}
	return out
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
