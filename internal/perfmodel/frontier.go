package perfmodel

import "math"

// The paper's motivation (Sec. I): memory constrains the achievable
// image resolution, forcing applications to compromise. This file
// computes the feasibility frontier — the largest reconstruction each
// method fits into GPU memory at a given scale — which turns the
// motivation into a quantitative artifact.

// FrontierPoint reports the largest square reconstruction (pixels per
// edge) that fits the per-GPU memory budget at a GPU count, for both
// methods, keeping the paper's scan density (locations scale with
// image area).
type FrontierPoint struct {
	GPUs int
	// MaxImageGD / MaxImageHVE are the largest feasible image edges in
	// pixels (0 when nothing fits, e.g. HVE past its tile constraint).
	MaxImageGD  int
	MaxImageHVE int
	// ResolutionAdvantage = MaxImageGD / MaxImageHVE (0 when HVE is
	// infeasible at any size).
	ResolutionAdvantage float64
}

// scaledSpec returns the dataset spec rescaled to a new image edge,
// keeping scan density constant (locations grow with area).
func scaledSpec(base Config, edge int) Config {
	cfg := base
	ratio := float64(edge) / float64(base.Spec.ImageW)
	cfg.Spec.ImageW = edge
	cfg.Spec.ImageH = edge
	cfg.Spec.ScanCols = maxInt(1, int(float64(base.Spec.ScanCols)*ratio))
	cfg.Spec.ScanRows = maxInt(1, int(float64(base.Spec.ScanRows)*ratio))
	cfg.Spec.Locations = cfg.Spec.ScanCols * cfg.Spec.ScanRows
	return cfg
}

// maxFeasibleEdge binary-searches the largest image edge whose per-GPU
// footprint fits the budget. feasible must be monotone in the edge.
func maxFeasibleEdge(lo, hi int, feasible func(edge int) bool) int {
	if !feasible(lo) {
		return 0
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Frontier computes the feasibility frontier across GPU counts for the
// configured dataset family and the machine's per-GPU memory.
func (c Config) Frontier(gpuCounts []int) []FrontierPoint {
	budget := c.Machine.MemPerGPUGB
	const loEdge, hiEdge = 256, 65536
	out := make([]FrontierPoint, 0, len(gpuCounts))
	for _, k := range gpuCounts {
		gd := maxFeasibleEdge(loEdge, hiEdge, func(edge int) bool {
			return scaledSpec(c, edge).MemoryGDGB(k) <= budget
		})
		// HVE feasibility is an interval: the tile-size constraint rules
		// out SMALL images (tiles shrink below the fixed-pixel halo
		// reach) while memory rules out LARGE ones. Find the memory
		// ceiling, then verify the constraint still holds there.
		hveMem := maxFeasibleEdge(loEdge, hiEdge, func(edge int) bool {
			return scaledSpec(c, edge).MemoryHVEGB(k) <= budget
		})
		hve := 0
		if hveMem > 0 {
			cfg := scaledSpec(c, hveMem)
			g := cfg.geom(k, cfg.HaloHVEPM)
			reach := g.haloPx + float64(cfg.HVEExtraRows)*cfg.Spec.StepPix()
			if reach < minf(g.tileW, g.tileH) {
				hve = hveMem
			}
		}
		pt := FrontierPoint{GPUs: k, MaxImageGD: gd, MaxImageHVE: hve}
		if hve > 0 {
			pt.ResolutionAdvantage = float64(gd) / float64(hve)
		}
		out = append(out, pt)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// analyticRuntimeMin estimates the reconstruction runtime (minutes, the
// paper's 100 iterations) without running the DES: compute + wait, plus
// the HVE contention term. Accurate to a few percent of the DES for the
// table rows; used by the time-budget frontier where thousands of
// evaluations are needed.
func analyticRuntimeMin(c Config, gpus int, hve bool) (float64, bool) {
	if hve {
		g := c.geom(gpus, c.HaloHVEPM)
		reach := g.haloPx + float64(c.HVEExtraRows)*c.Spec.StepPix()
		minTile := minf(g.tileW, g.tileH)
		if reach >= minTile {
			return 0, false
		}
		ws := c.MemoryHVEGB(gpus)
		if ws > c.Machine.MemPerGPUGB {
			return 0, false
		}
		perLoc := c.perLocSeconds(ws)
		nAll := g.locsPerGPU + c.hveExtraLocs(g)
		gamma := c.Cal.WaitFrac(int(nAll))
		s := float64(c.Spec.Slices)
		pasteBytes := (g.extW*g.extH - g.tileW*g.tileH) * s * c.Cal.VoxelBytes
		contention := 1.0
		if reach/minTile < 1 {
			contention = math.Pow(1/(1-reach/minTile), c.Cal.HVEContentionExp)
		}
		syncSec := contention * (pasteBytes/c.Machine.IBBW + 8*c.Machine.LatInter)
		iter := nAll*perLoc*(1+gamma) + c.Cal.IterOverheadSec + syncSec
		return iter * float64(c.Iterations) / 60, true
	}
	ws := c.MemoryGDGB(gpus)
	if ws > c.Machine.MemPerGPUGB {
		return 0, false
	}
	g := c.geom(gpus, c.HaloGDPM)
	perLoc := c.perLocSeconds(ws)
	gamma := c.Cal.WaitFrac(int(g.locsPerGPU))
	s := float64(c.Spec.Slices)
	bytesV := g.extW * minf(2*g.haloPx, g.extH) * s * c.Cal.VoxelBytes
	bytesH := g.extH * minf(2*g.haloPx, g.extW) * s * c.Cal.VoxelBytes
	// Unhidden chain communication matters only when compute per
	// iteration is tiny (the 4158-GPU uptick).
	chain := 2 * float64(g.rows+g.cols) * (c.Machine.LatInter + (bytesV+bytesH)/2/c.Machine.IBBW)
	compute := g.locsPerGPU * perLoc * (1 + gamma)
	iter := compute + c.Cal.IterOverheadSec + minf(chain, maxf(0, chain-compute/4)+chain/4)
	return iter * float64(c.Iterations) / 60, true
}

// TimeBudgetPoint reports the largest reconstruction each method can
// finish within a wall-clock budget, choosing the best GPU count from
// the available pool (the paper's "near real-time" scenario).
type TimeBudgetPoint struct {
	BudgetMin   float64
	MaxImageGD  int
	MaxImageHVE int
	GDGPUs      int // GPU count achieving the GD frontier
	HVEGPUs     int
}

// TimeBudget computes the real-time resolution frontier for a set of
// wall-clock budgets, searching image edges and the given GPU pool.
func (c Config) TimeBudget(budgetsMin []float64, gpuPool []int) []TimeBudgetPoint {
	const loEdge, hiEdge = 256, 32768
	best := func(edge int, hve bool) (float64, int) {
		cfg := scaledSpec(c, edge)
		bestT, bestK := -1.0, 0
		for _, k := range gpuPool {
			t, ok := analyticRuntimeMin(cfg, k, hve)
			if !ok {
				continue
			}
			if bestT < 0 || t < bestT {
				bestT, bestK = t, k
			}
		}
		return bestT, bestK
	}
	// The feasible-edge set is NOT an interval for HVE (its tile
	// constraint excludes small images at every GPU count), so scan a
	// geometric edge grid instead of binary searching.
	var edges []int
	for e := float64(loEdge); e <= hiEdge; e *= 1.09 {
		edges = append(edges, int(e))
	}
	out := make([]TimeBudgetPoint, 0, len(budgetsMin))
	for _, budget := range budgetsMin {
		pt := TimeBudgetPoint{BudgetMin: budget}
		for _, e := range edges {
			if t, k := best(e, false); t >= 0 && t <= budget && e > pt.MaxImageGD {
				pt.MaxImageGD, pt.GDGPUs = e, k
			}
			if t, k := best(e, true); t >= 0 && t <= budget && e > pt.MaxImageHVE {
				pt.MaxImageHVE, pt.HVEGPUs = e, k
			}
		}
		out = append(out, pt)
	}
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// WeakScalingPoint reports runtime when the problem grows with the
// machine: locations per GPU held constant (the dataset edge scales
// with sqrt(GPUs)). Flat runtime = perfect weak scaling.
type WeakScalingPoint struct {
	GPUs       int
	ImageEdge  int
	RuntimeMin float64
	// EfficiencyPct is T(first)/T(K) * 100 (100% = flat).
	EfficiencyPct float64
}

// WeakScaling evaluates Gradient Decomposition weak scaling starting
// from the configured dataset at the first GPU count.
func (c Config) WeakScaling(gpuCounts []int) []WeakScalingPoint {
	if len(gpuCounts) == 0 {
		return nil
	}
	base := float64(c.Spec.ImageW) / math.Sqrt(float64(gpuCounts[0]))
	out := make([]WeakScalingPoint, 0, len(gpuCounts))
	for _, k := range gpuCounts {
		edge := int(base * math.Sqrt(float64(k)))
		cfg := scaledSpec(c, edge)
		t, ok := analyticRuntimeMin(cfg, k, false)
		if !ok {
			t = math.Inf(1)
		}
		out = append(out, WeakScalingPoint{GPUs: k, ImageEdge: edge, RuntimeMin: t})
	}
	t0 := out[0].RuntimeMin
	for i := range out {
		if out[i].RuntimeMin > 0 && !math.IsInf(out[i].RuntimeMin, 1) {
			out[i].EfficiencyPct = t0 / out[i].RuntimeMin * 100
		}
	}
	return out
}
