package perfmodel

import (
	"testing"

	"ptychopath/internal/cluster"
)

func TestHaloSensitivityMonotone(t *testing.T) {
	cfg := DefaultConfig(cluster.LargeLeadTitanate())
	cfg.SimIterations = 1
	pts := cfg.HaloSensitivity(462, []float64{300, 600, 1200, 2400})
	if len(pts) != 4 {
		t.Fatal("point count")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].MemoryGB <= pts[i-1].MemoryGB {
			t.Fatalf("memory not increasing with halo: %+v", pts)
		}
		if pts[i].CommBytesPerIter <= pts[i-1].CommBytesPerIter {
			t.Fatalf("comm volume not increasing with halo: %+v", pts)
		}
	}
	// The paper's 600 pm halo stays close to the minimal-memory end:
	// quadrupling the halo should cost well over 30% more memory.
	if pts[3].MemoryGB < 1.3*pts[1].MemoryGB {
		t.Fatalf("halo ablation too flat: %.3f vs %.3f GB", pts[3].MemoryGB, pts[1].MemoryGB)
	}
}

func TestExtraRowsSensitivity(t *testing.T) {
	cfg := DefaultConfig(cluster.LargeLeadTitanate())
	cfg.SimIterations = 1
	pts := cfg.ExtraRowsSensitivity(198, []int{0, 1, 2, 4})
	if pts[0].RedundantLocs != 0 || pts[0].RedundantPercent != 0 {
		t.Fatalf("zero rows must mean zero redundancy: %+v", pts[0])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].RedundantLocs <= pts[i-1].RedundantLocs {
			t.Fatal("redundant locations must grow with rows")
		}
		if !pts[i].NA && !pts[i-1].NA && pts[i].MemoryGB <= pts[i-1].MemoryGB {
			t.Fatal("memory must grow with rows")
		}
	}
	// At 198 GPUs the paper's 2 rows already means substantial
	// redundant work (>= 30% of owned locations).
	if pts[2].RedundantPercent < 30 {
		t.Fatalf("redundancy at 2 rows only %.1f%%", pts[2].RedundantPercent)
	}
}

func TestExtraRowsCanTriggerNA(t *testing.T) {
	cfg := DefaultConfig(cluster.LargeLeadTitanate())
	cfg.SimIterations = 1
	// At 462 GPUs the tile barely fits 2 rows; many more rows push the
	// reach past the tile and the method reports NA.
	pts := cfg.ExtraRowsSensitivity(462, []int{2, 6})
	if pts[0].NA {
		t.Fatal("2 rows at 462 GPUs should still run (paper reports it)")
	}
	if !pts[1].NA {
		t.Fatal("6 rows at 462 GPUs should violate the tile constraint")
	}
}
