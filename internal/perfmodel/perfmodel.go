// Package perfmodel reproduces the paper's evaluation at Summit scale:
// Tables II and III (runtime, per-GPU memory, strong-scaling efficiency
// for Gradient Decomposition and Halo Voxel Exchange on both Lead
// Titanate datasets), Fig 7a (strong-scaling curves) and Fig 7b (runtime
// breakdown with and without APPP).
//
// Runtimes come from replaying each algorithm's communication schedule
// on the discrete-event simulator (internal/des) with compute times from
// the calibrated model in internal/cluster; memory footprints come from
// the analytic accounting below. DESIGN.md and EXPERIMENTS.md document
// the calibration and the paper-vs-model deviations.
package perfmodel

import (
	"fmt"
	"math"

	"ptychopath/internal/cluster"
	"ptychopath/internal/des"
)

// Config parameterizes a model run.
type Config struct {
	Machine cluster.Machine
	Cal     cluster.Calibration
	Spec    cluster.DatasetSpec
	// Iterations is the reconstruction length the paper reports (100).
	Iterations int
	// SimIterations is how many iterations the DES actually replays
	// before extrapolating (>= 1; passes reach steady state quickly).
	SimIterations int
	// HaloGDPM / HaloHVEPM are the halo widths in picometers
	// (paper: 600 and 890).
	HaloGDPM, HaloHVEPM float64
	// HVEExtraRows is the baseline's extra probe-location rows (2).
	HVEExtraRows int
}

// DefaultConfig returns the paper's experimental configuration for a
// dataset.
func DefaultConfig(spec cluster.DatasetSpec) Config {
	return Config{
		Machine:       cluster.Summit(),
		Cal:           cluster.DefaultCalibration(),
		Spec:          spec,
		Iterations:    100,
		SimIterations: 2,
		HaloGDPM:      600,
		HaloHVEPM:     890,
		HVEExtraRows:  2,
	}
}

// Breakdown is the per-GPU average runtime split (minutes over the full
// reconstruction), matching Fig 7b's bar categories.
type Breakdown struct {
	ComputeMin float64
	WaitMin    float64
	CommMin    float64
}

// Total returns the summed breakdown.
func (b Breakdown) Total() float64 { return b.ComputeMin + b.WaitMin + b.CommMin }

// Row is one column of Tables II/III.
type Row struct {
	Nodes         int
	GPUs          int
	MemoryGB      float64
	RuntimeMin    float64
	EfficiencyPct float64
	NA            bool
	Breakdown     Breakdown
}

// geometry captures the derived per-GPU decomposition quantities.
type geometry struct {
	rows, cols     int
	tileW, tileH   float64 // interior tile, pixels
	extW, extH     float64 // halo-extended tile, pixels
	haloPx         float64
	locsPerGPU     float64
	scanTileW      float64 // probe locations per tile row
	scanTileH      float64
}

func (c Config) geom(gpus int, haloPM float64) geometry {
	rows, cols := cluster.MostSquareGrid(gpus)
	h := haloPM / c.Spec.PixelSizePM
	tw := float64(c.Spec.ImageW) / float64(cols)
	th := float64(c.Spec.ImageH) / float64(rows)
	ew := math.Min(tw+2*h, float64(c.Spec.ImageW))
	eh := math.Min(th+2*h, float64(c.Spec.ImageH))
	return geometry{
		rows: rows, cols: cols,
		tileW: tw, tileH: th, extW: ew, extH: eh, haloPx: h,
		locsPerGPU: float64(c.Spec.Locations) / float64(gpus),
		scanTileW:  float64(c.Spec.ScanCols) / float64(cols),
		scanTileH:  float64(c.Spec.ScanRows) / float64(rows),
	}
}

// hveExtraLocs models the baseline's additional probe locations per tile
// for ExtraRows rows of neighbors around the tile boundary.
func (c Config) hveExtraLocs(g geometry) float64 {
	er := float64(c.HVEExtraRows)
	return er*(g.scanTileW+g.scanTileH) + er*er
}

// MemoryGDGB returns the Gradient Decomposition per-GPU footprint:
// owned measurements (compact detector precision), object + gradient
// buffer on the extended tile, staging buffers for the halo bands, and
// the fixed model overhead (probe, checkpointed wavefront stack, FFT
// workspaces).
func (c Config) MemoryGDGB(gpus int) float64 {
	g := c.geom(gpus, c.HaloGDPM)
	meas := g.locsPerGPU * c.Spec.MeasBytesPerLocation(c.Cal)
	extA := g.extW * g.extH
	tileA := g.tileW * g.tileH
	s := float64(c.Spec.Slices)
	tiles := 2 * extA * s * c.Cal.VoxelBytes
	staging := 2 * (extA - tileA) * s * c.Cal.VoxelBytes
	return (meas+tiles+staging)/1e9 + c.Cal.FixedOverheadGB
}

// MemoryHVEGB returns the Halo Voxel Exchange per-GPU footprint: the
// wider halo, the extra probe locations' measurements, and one-way paste
// staging.
func (c Config) MemoryHVEGB(gpus int) float64 {
	g := c.geom(gpus, c.HaloHVEPM)
	nAll := g.locsPerGPU + c.hveExtraLocs(g)
	meas := nAll * c.Spec.MeasBytesPerLocation(c.Cal)
	extA := g.extW * g.extH
	tileA := g.tileW * g.tileH
	s := float64(c.Spec.Slices)
	tiles := 2 * extA * s * c.Cal.VoxelBytes
	staging := (extA - tileA) * s * c.Cal.VoxelBytes
	return (meas+tiles+staging)/1e9 + c.Cal.FixedOverheadGB
}

// perLocSeconds returns the modeled gradient cost of one probe location
// at the given per-GPU working set.
func (c Config) perLocSeconds(wsGB float64) float64 {
	thr := c.Cal.BaseFlops * c.Cal.Scale(c.Spec.Name) * c.Cal.CacheFactor(wsGB)
	return c.Spec.FlopsPerLocation() / thr
}

// jitter returns a deterministic per-rank uniform value in [0, 1).
func jitter(rank int) float64 {
	z := uint64(rank)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	return float64(z>>11) / float64(1<<53)
}

const (
	tagVF = 1
	tagVB = 2
	tagHF = 3
	tagHB = 4
	tagHV = 9
)

// GDRow models a Gradient Decomposition run at the given GPU count via
// the DES replay of the pass schedule (with APPP: asynchronous sends, no
// barriers).
func (c Config) GDRow(gpus int) Row { return c.gdRow(gpus, true) }

// GDRowNoAPPP models the ablation of Fig 7b: the directional passes are
// replaced by a barrier-separated global all-reduce of the image
// gradient (the "natural choice" the paper rejects in Sec. V).
func (c Config) GDRowNoAPPP(gpus int) Row { return c.gdRow(gpus, false) }

func (c Config) gdRow(gpus int, appp bool) Row {
	g := c.geom(gpus, c.HaloGDPM)
	ws := c.MemoryGDGB(gpus)
	perLoc := c.perLocSeconds(ws)
	gamma := c.Cal.WaitFrac(int(math.Round(g.locsPerGPU)))
	s := float64(c.Spec.Slices)
	bytesV := int64(g.extW * math.Min(2*g.haloPx, g.extH) * s * c.Cal.VoxelBytes)
	bytesH := int64(g.extH * math.Min(2*g.haloPx, g.extW) * s * c.Cal.VoxelBytes)
	// The with-APPP runs still pay message-injection time: the GPU must
	// stream each overlap buffer onto the wire even when the flight time
	// is hidden by pipelining.
	injectSec := float64(2*bytesV+2*bytesH) / c.Machine.IBBW
	// The no-APPP ablation replaces the pipelined passes with the
	// "natural choice" the paper rejects (Sec. V): a global all-reduce
	// of the gradient buffers — root gather of every extended-tile
	// buffer plus a tree broadcast of the assembled image gradient.
	fullGrad := float64(c.Spec.ImageW) * float64(c.Spec.ImageH) * s * c.Cal.VoxelBytes
	tileBuf := g.extW * g.extH * s * c.Cal.VoxelBytes
	allReduceSec := (float64(gpus)*tileBuf+math.Log2(float64(gpus))*fullGrad)/c.Machine.IBBW +
		2*float64(gpus-1)*c.Machine.LatInter

	simIters := c.SimIterations
	if simIters <= 0 {
		simIters = 1
	}
	rows, cols := g.rows, g.cols
	rankOf := func(r, cc int) int { return r*cols + cc }

	stats, makespan, err := des.Simulate(gpus, c.Machine.Transfer, func(e *des.Env) error {
		r, cc := e.Rank()/cols, e.Rank()%cols
		nLocs := locsFor(e.Rank(), gpus, c.Spec.Locations)
		compute := float64(nLocs) * perLoc * (1 + gamma*jitter(e.Rank()))
		for it := 0; it < simIters; it++ {
			e.Compute(compute + c.Cal.IterOverheadSec)
			if appp {
				// Vertical forward (add downward).
				if r > 0 {
					e.Recv(rankOf(r-1, cc), tagVF)
				}
				if r < rows-1 {
					e.Send(rankOf(r+1, cc), tagVF, bytesV)
				}
				// Vertical backward (replace upward).
				if r < rows-1 {
					e.Recv(rankOf(r+1, cc), tagVB)
				}
				if r > 0 {
					e.Send(rankOf(r-1, cc), tagVB, bytesV)
				}
				// Horizontal forward.
				if cc > 0 {
					e.Recv(rankOf(r, cc-1), tagHF)
				}
				if cc < cols-1 {
					e.Send(rankOf(r, cc+1), tagHF, bytesH)
				}
				// Horizontal backward.
				if cc < cols-1 {
					e.Recv(rankOf(r, cc+1), tagHB)
				}
				if cc > 0 {
					e.Send(rankOf(r, cc-1), tagHB, bytesH)
				}
				e.ChargeComm(injectSec)
			} else {
				e.Barrier()
				e.ChargeComm(allReduceSec)
				e.Barrier()
			}
		}
		return nil
	})
	if err != nil {
		panic(fmt.Sprintf("perfmodel: GD DES failed: %v", err))
	}

	scale := float64(c.Iterations) / float64(simIters)
	var avg des.Stats
	for _, st := range stats {
		avg.Compute += st.Compute
		avg.Wait += st.Wait
		avg.Comm += st.Comm
	}
	n := float64(len(stats))
	return Row{
		Nodes:      nodesFor(gpus, c.Machine),
		GPUs:       gpus,
		MemoryGB:   ws,
		RuntimeMin: makespan * scale / 60,
		Breakdown: Breakdown{
			ComputeMin: avg.Compute / n * scale / 60,
			WaitMin:    avg.Wait / n * scale / 60,
			CommMin:    avg.Comm / n * scale / 60,
		},
	}
}

// HVERow models the Halo Voxel Exchange baseline at the given GPU count.
// A Row with NA set reproduces the paper's "NA" entries: the method's
// tile-size constraint (interior tile must exceed the halo plus the
// extra probe-row reach) fails.
func (c Config) HVERow(gpus int) Row {
	g := c.geom(gpus, c.HaloHVEPM)
	reach := g.haloPx + float64(c.HVEExtraRows)*c.Spec.StepPix()
	minTile := math.Min(g.tileW, g.tileH)
	row := Row{Nodes: nodesFor(gpus, c.Machine), GPUs: gpus}
	if reach >= minTile {
		row.NA = true
		return row
	}
	ws := c.MemoryHVEGB(gpus)
	row.MemoryGB = ws
	perLoc := c.perLocSeconds(ws)
	nAll := g.locsPerGPU + c.hveExtraLocs(g)
	gamma := c.Cal.WaitFrac(int(math.Round(nAll)))
	s := float64(c.Spec.Slices)
	pasteBytes := (g.extW*g.extH - g.tileW*g.tileH) * s * c.Cal.VoxelBytes
	// Synchronization contention grows without bound as tiles shrink
	// toward the halo reach (phenomenological; see package comment).
	contention := math.Pow(1/(1-reach/minTile), c.Cal.HVEContentionExp)
	syncSec := contention * (pasteBytes/c.Machine.IBBW + 8*c.Machine.LatInter)

	simIters := c.SimIterations
	if simIters <= 0 {
		simIters = 1
	}
	rows, cols := g.rows, g.cols

	stats, makespan, err := des.Simulate(gpus, c.Machine.Transfer, func(e *des.Env) error {
		r, cc := e.Rank()/cols, e.Rank()%cols
		nLocs := float64(locsFor(e.Rank(), gpus, c.Spec.Locations)) + c.hveExtraLocs(g)
		compute := nLocs * perLoc * (1 + gamma*jitter(e.Rank()))
		per := int64(pasteBytes / 8)
		for it := 0; it < simIters; it++ {
			e.Compute(compute + c.Cal.IterOverheadSec)
			// Synchronous neighborhood paste: barrier models the
			// rendezvous, then the eight neighbor transfers, then the
			// contention penalty.
			e.Barrier()
			for _, d := range [8][2]int{{-1, -1}, {-1, 0}, {-1, 1}, {0, -1}, {0, 1}, {1, -1}, {1, 0}, {1, 1}} {
				nr, nc := r+d[0], cc+d[1]
				if nr < 0 || nr >= rows || nc < 0 || nc >= cols {
					continue
				}
				e.Send(nr*cols+nc, tagHV, per)
			}
			for _, d := range [8][2]int{{-1, -1}, {-1, 0}, {-1, 1}, {0, -1}, {0, 1}, {1, -1}, {1, 0}, {1, 1}} {
				nr, nc := r+d[0], cc+d[1]
				if nr < 0 || nr >= rows || nc < 0 || nc >= cols {
					continue
				}
				e.Recv(nr*cols+nc, tagHV)
			}
			e.ChargeComm(syncSec)
		}
		return nil
	})
	if err != nil {
		panic(fmt.Sprintf("perfmodel: HVE DES failed: %v", err))
	}

	scale := float64(c.Iterations) / float64(simIters)
	var avg des.Stats
	for _, st := range stats {
		avg.Compute += st.Compute
		avg.Wait += st.Wait
		avg.Comm += st.Comm
	}
	n := float64(len(stats))
	row.RuntimeMin = makespan * scale / 60
	row.Breakdown = Breakdown{
		ComputeMin: avg.Compute / n * scale / 60,
		WaitMin:    avg.Wait / n * scale / 60,
		CommMin:    avg.Comm / n * scale / 60,
	}
	return row
}

// Table fills rows for the GPU counts and computes strong-scaling
// efficiency relative to the first non-NA row:
// eff(K) = T0*K0 / (T(K)*K) * 100.
func Table(rows []Row) []Row {
	baseIdx := -1
	for i, r := range rows {
		if !r.NA {
			baseIdx = i
			break
		}
	}
	if baseIdx < 0 {
		return rows
	}
	t0 := rows[baseIdx].RuntimeMin * float64(rows[baseIdx].GPUs)
	for i := range rows {
		if rows[i].NA || rows[i].RuntimeMin == 0 {
			continue
		}
		rows[i].EfficiencyPct = t0 / (rows[i].RuntimeMin * float64(rows[i].GPUs)) * 100
	}
	return rows
}

// GDTable runs the Gradient Decomposition model across GPU counts.
func (c Config) GDTable(gpus []int) []Row {
	rows := make([]Row, len(gpus))
	for i, k := range gpus {
		rows[i] = c.GDRow(k)
	}
	return Table(rows)
}

// HVETable runs the Halo Voxel Exchange model across GPU counts.
func (c Config) HVETable(gpus []int) []Row {
	rows := make([]Row, len(gpus))
	for i, k := range gpus {
		rows[i] = c.HVERow(k)
	}
	return Table(rows)
}

// locsFor distributes total locations across gpus deterministically
// (first `total % gpus` ranks own one extra).
func locsFor(rank, gpus, total int) int {
	base := total / gpus
	if rank < total%gpus {
		return base + 1
	}
	return base
}

func nodesFor(gpus int, m cluster.Machine) int {
	return (gpus + m.GPUsPerNode - 1) / m.GPUsPerNode
}

// PaperGPUCountsSmall / Large are the column headers of Tables II / III.
var (
	PaperGPUCountsSmall = []int{6, 24, 54, 126, 198, 462}
	PaperGPUCountsLarge = []int{6, 54, 198, 462, 924, 4158}
	// PaperHVECountsSmall/Large are the columns the paper reports for
	// the baseline (it cannot scale further).
	PaperHVECountsSmall = []int{6, 24, 54, 126}
	PaperHVECountsLarge = []int{6, 54, 198, 462}
)
