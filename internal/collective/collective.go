// Package collective holds the small collective-operation helpers the
// parallel reconstruction engines (gradsync, halo) share: the
// two-barrier rank-0 snapshot handshake and the all-reduced
// cancellation decision. Keeping them in one place keeps the subtle
// ordering invariants — who may write what between which barriers, and
// why every rank must reach the same verdict — from drifting between
// the two engines.
package collective

import (
	"context"

	"ptychopath/internal/grid"
	"ptychopath/internal/simmpi"
	"ptychopath/internal/tiling"
)

// Snapshots coordinates periodic rank-0 object snapshots across a
// world: each rank publishes its tile, rank 0 stitches them and runs
// the callback, and the callback's error (if any) reaches every rank.
// The err field is ordered by the two barriers in Run: rank 0 writes it
// between them, every rank reads it after the second — the barrier
// provides the happens-before edge.
type Snapshots struct {
	mesh  *tiling.Mesh
	every int
	fn    func(iter int, slices []*grid.Complex2D) error
	tiles [][]*grid.Complex2D
	err   error
}

// NewSnapshots returns the shared per-world snapshot state, or nil
// (a no-op for Due) when snapshots are not configured.
func NewSnapshots(mesh *tiling.Mesh, every int,
	fn func(iter int, slices []*grid.Complex2D) error) *Snapshots {
	if every <= 0 || fn == nil {
		return nil
	}
	return &Snapshots{
		mesh: mesh, every: every, fn: fn,
		tiles: make([][]*grid.Complex2D, mesh.NumTiles()),
	}
}

// Due reports whether a snapshot is owed after the given 0-based
// iteration. The verdict depends only on configuration and iter, so it
// is identical on every rank — a requirement, since Run barriers.
func (s *Snapshots) Due(iter int) bool {
	return s != nil && (iter+1)%s.every == 0
}

// Run performs one snapshot handshake. Every rank must call it at the
// same iteration with its own (extended-tile) slices. Rank 0 receives
// the stitched full-image object, freshly allocated — the callback may
// retain it. All ranks return the callback's error together.
func (s *Snapshots) Run(comm *simmpi.Comm, slices []*grid.Complex2D, iter int) error {
	s.tiles[comm.Rank()] = slices
	if err := comm.Barrier(); err != nil {
		return err
	}
	if comm.Rank() == 0 {
		s.err = s.fn(iter, s.mesh.StitchSlices(s.tiles))
	}
	if err := comm.Barrier(); err != nil {
		return err
	}
	return s.err
}

// Cancelled makes the collective cancellation decision at an iteration
// boundary: a rank may observe ctx done slightly before its peers, so
// every rank contributes its view to an allreduce and the verdict is
// identical everywhere — all ranks stop together, no deadlocked
// exchanges. A nil ctx never cancels (and performs no allreduce, so
// runs without a context keep their exact communication volume).
func Cancelled(comm *simmpi.Comm, ctx context.Context) (bool, error) {
	if ctx == nil {
		return false, nil
	}
	flag := 0.0
	if ctx.Err() != nil {
		flag = 1
	}
	tot, err := comm.AllreduceSum(flag)
	if err != nil {
		return false, err
	}
	return tot > 0, nil
}
