// Package collective holds the small collective-operation helpers the
// parallel reconstruction engines (gradsync, halo) share: the rank-0
// snapshot gather and the all-reduced cancellation decision. Keeping
// them in one place keeps the subtle ordering invariants — which rank
// sends what when, and why every rank must reach the same verdict —
// from drifting between the two engines.
//
// Both helpers are written against simmpi.Transport, so they behave
// identically whether the world is goroutines in one process or worker
// processes on a TCP grid (internal/transport).
package collective

import (
	"context"
	"errors"
	"fmt"

	"ptychopath/internal/grid"
	"ptychopath/internal/simmpi"
	"ptychopath/internal/tiling"
)

// TagSnapshot is the reserved message tag of the snapshot gather. The
// engines' own exchange tags stay below it.
const TagSnapshot = 1000

// ErrSnapshotCallback is returned on every rank other than 0 when rank
// 0's snapshot callback failed: the collective verdict travels through
// an allreduce, the concrete error only exists on rank 0 (which returns
// it directly, and which the in-process and grid drivers both surface
// first).
var ErrSnapshotCallback = errors.New("collective: snapshot callback failed on rank 0")

// Snapshots coordinates periodic rank-0 object snapshots across a
// world: each rank ships its interior tile to rank 0 over the
// transport, rank 0 stitches the full image and runs the callback, and
// the callback's verdict reaches every rank through an allreduce. Only
// interior tiles travel — stitching abandons halos anyway — so the
// gather costs one tile-sized message per non-zero rank.
//
// Every rank of a world must construct Snapshots with the same mesh and
// period, and call Due/Run at the same iterations; the gather blocks
// rank 0 until every peer has sent.
type Snapshots struct {
	mesh  *tiling.Mesh
	every int
	fn    func(iter int, slices []*grid.Complex2D) error

	// cbErr carries rank 0's callback error between the gather and the
	// verdict allreduce within one Run call (other ranks never write
	// it; Snapshots is per-rank state, never shared).
	cbErr error
}

// NewSnapshots returns the per-rank snapshot state, or nil (a no-op for
// Due) when snapshots are not configured. fn runs on rank 0 only; ranks
// that can never be rank 0 may pass a callback that is never invoked,
// but every rank must agree on whether snapshots are configured at all
// (nil-ness of fn and the period) or the gather deadlocks.
func NewSnapshots(mesh *tiling.Mesh, every int,
	fn func(iter int, slices []*grid.Complex2D) error) *Snapshots {
	if every <= 0 || fn == nil {
		return nil
	}
	return &Snapshots{mesh: mesh, every: every, fn: fn}
}

// Due reports whether a snapshot is owed after the given 0-based
// iteration. The verdict depends only on configuration and iter, so it
// is identical on every rank — a requirement, since Run is collective.
func (s *Snapshots) Due(iter int) bool {
	return s != nil && (iter+1)%s.every == 0
}

// Run performs one snapshot gather. Every rank must call it at the same
// iteration with its own slices (on bounds covering its interior tile).
// Rank 0 receives the stitched full-image object, freshly allocated —
// the callback may retain it. All ranks fail together when the callback
// errors: rank 0 returns the callback's error, the others
// ErrSnapshotCallback.
func (s *Snapshots) Run(comm simmpi.Transport, slices []*grid.Complex2D, iter int) error {
	m := s.mesh
	if comm.Rank() == 0 {
		tiles := make([][]*grid.Complex2D, m.NumTiles())
		tiles[0] = slices
		for rank := 1; rank < comm.Size(); rank++ {
			data, err := comm.Recv(rank, TagSnapshot)
			if err != nil {
				return err
			}
			r, c := m.RowCol(rank)
			tile, err := UnpackTile(data, m.Tile(r, c), len(slices))
			if err != nil {
				return err
			}
			tiles[rank] = tile
		}
		s.cbErr = s.fn(iter, m.StitchSlices(tiles))
	} else {
		r, c := m.RowCol(comm.Rank())
		comm.Send(0, TagSnapshot, PackRegion(slices, m.Tile(r, c)))
	}
	return s.verdict(comm)
}

// verdict broadcasts whether rank 0's callback failed and turns the
// flag back into an error on every rank.
func (s *Snapshots) verdict(comm simmpi.Transport) error {
	flag := 0.0
	if comm.Rank() == 0 && s.cbErr != nil {
		flag = 1
	}
	tot, err := comm.AllreduceSum(flag)
	if err != nil {
		return err
	}
	if tot > 0 {
		if comm.Rank() == 0 {
			err := s.cbErr
			s.cbErr = nil
			return err
		}
		return ErrSnapshotCallback
	}
	return nil
}

// PackRegion flattens the given region of each slice into one payload,
// slices-major, row-major within a slice — the layout UnpackTile and
// the engines' overlap exchanges share.
func PackRegion(arrs []*grid.Complex2D, region grid.Rect) []complex128 {
	out := make([]complex128, 0, region.Area()*len(arrs))
	for _, a := range arrs {
		for y := region.Y0; y < region.Y1; y++ {
			row := a.Row(y)
			x0 := region.X0 - a.Bounds.X0
			out = append(out, row[x0:x0+region.W()]...)
		}
	}
	return out
}

// UnpackTile materializes a PackRegion payload as freshly allocated
// arrays on exactly the packed bounds.
func UnpackTile(data []complex128, bounds grid.Rect, slices int) ([]*grid.Complex2D, error) {
	if len(data) != bounds.Area()*slices {
		return nil, fmt.Errorf("collective: payload %d for tile %v x %d slices",
			len(data), bounds, slices)
	}
	out := make([]*grid.Complex2D, slices)
	k := bounds.Area()
	for s := range out {
		out[s] = grid.NewComplex2D(bounds)
		copy(out[s].Data, data[s*k:(s+1)*k])
	}
	return out, nil
}

// Cancelled makes the collective cancellation decision at an iteration
// boundary: a rank may observe ctx done slightly before its peers, so
// every rank contributes its view to an allreduce and the verdict is
// identical everywhere — all ranks stop together, no deadlocked
// exchanges. A nil ctx never cancels (and performs no allreduce, so
// runs without a context keep their exact communication volume).
func Cancelled(comm simmpi.Transport, ctx context.Context) (bool, error) {
	if ctx == nil {
		return false, nil
	}
	flag := 0.0
	if ctx.Err() != nil {
		flag = 1
	}
	tot, err := comm.AllreduceSum(flag)
	if err != nil {
		return false, err
	}
	return tot > 0, nil
}
