// Package tiling implements the tile-mesh geometry both parallel
// algorithms are built on: the partition of the reconstruction into a
// Rows x Cols grid of contiguous interior tiles, the halo-extended tiles
// that cover each tile's probe circles, the overlap rectangles between
// extended tiles that gradients are exchanged over, probe-location
// assignment, and final stitching (paper Figs. 2-4).
package tiling

import (
	"fmt"
	"math"

	"ptychopath/internal/grid"
	"ptychopath/internal/scan"
)

// Mesh is a Rows x Cols decomposition of an image with a fixed halo
// width. Tile (r, c) refers to row r (vertical position) and column c.
// Ranks are assigned row-major: rank = r*Cols + c, matching the paper's
// "tile 1..9" numbering for a 3x3 mesh (rank = tile number - 1).
type Mesh struct {
	Image grid.Rect
	Rows  int
	Cols  int
	Halo  int

	xCuts []int // len Cols+1, column boundaries
	yCuts []int // len Rows+1, row boundaries
}

// NewMesh builds a mesh over image with the given tile grid and halo
// width (pixels). Every tile must be non-empty.
func NewMesh(image grid.Rect, rows, cols, halo int) (*Mesh, error) {
	if image.Empty() {
		return nil, fmt.Errorf("tiling: empty image %v", image)
	}
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("tiling: invalid mesh %dx%d", rows, cols)
	}
	if halo < 0 {
		return nil, fmt.Errorf("tiling: negative halo %d", halo)
	}
	if cols > image.W() || rows > image.H() {
		return nil, fmt.Errorf("tiling: mesh %dx%d larger than image %dx%d",
			rows, cols, image.W(), image.H())
	}
	m := &Mesh{Image: image, Rows: rows, Cols: cols, Halo: halo}
	m.xCuts = cuts(image.X0, image.X1, cols)
	m.yCuts = cuts(image.Y0, image.Y1, rows)
	return m, nil
}

// cuts splits [lo, hi) into n near-equal contiguous spans.
func cuts(lo, hi, n int) []int {
	out := make([]int, n+1)
	span := hi - lo
	for i := 0; i <= n; i++ {
		out[i] = lo + span*i/n
	}
	return out
}

// NumTiles returns Rows*Cols.
func (m *Mesh) NumTiles() int { return m.Rows * m.Cols }

// Rank maps (row, col) to the row-major rank.
func (m *Mesh) Rank(r, c int) int { return r*m.Cols + c }

// RowCol maps a rank back to (row, col).
func (m *Mesh) RowCol(rank int) (r, c int) { return rank / m.Cols, rank % m.Cols }

// Tile returns the interior tile rectangle for (r, c). Interior tiles
// partition the image exactly.
func (m *Mesh) Tile(r, c int) grid.Rect {
	m.check(r, c)
	return grid.NewRect(m.xCuts[c], m.yCuts[r], m.xCuts[c+1], m.yCuts[r+1])
}

// Extended returns the halo-extended tile for (r, c), clamped to the
// image bounds (paper Fig 3(b): gray halos).
func (m *Mesh) Extended(r, c int) grid.Rect {
	return m.Tile(r, c).Inflate(m.Halo).Clamp(m.Image)
}

// ExtendedWithHalo returns the tile extended by an explicit halo width,
// clamped to the image. Used by the Halo Voxel Exchange baseline, whose
// halos are wider than the mesh default.
func (m *Mesh) ExtendedWithHalo(r, c, halo int) grid.Rect {
	return m.Tile(r, c).Inflate(halo).Clamp(m.Image)
}

// TileOf returns the (row, col) of the interior tile containing pixel
// (x, y). The pixel must be inside the image.
func (m *Mesh) TileOf(x, y int) (r, c int) {
	if !m.Image.Contains(x, y) {
		panic(fmt.Sprintf("tiling: pixel (%d,%d) outside image %v", x, y, m.Image))
	}
	c = searchCut(m.xCuts, x)
	r = searchCut(m.yCuts, y)
	return r, c
}

func searchCut(cuts []int, v int) int {
	lo, hi := 0, len(cuts)-2
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if cuts[mid] <= v {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

func (m *Mesh) check(r, c int) {
	if r < 0 || r >= m.Rows || c < 0 || c >= m.Cols {
		panic(fmt.Sprintf("tiling: tile (%d,%d) outside %dx%d mesh", r, c, m.Rows, m.Cols))
	}
}

// VerticalOverlap returns the overlap rectangle between the extended
// tiles (r, c) and (r+1, c) — the region the vertical forward/backward
// passes exchange (paper Fig 4(a), blue/red regions). Empty when r is
// the last row.
func (m *Mesh) VerticalOverlap(r, c int) grid.Rect {
	if r+1 >= m.Rows {
		return grid.Rect{}
	}
	return m.Extended(r, c).Intersect(m.Extended(r+1, c))
}

// HorizontalOverlap returns the overlap between extended tiles (r, c)
// and (r, c+1) (Fig 4(c)/(d)). Empty when c is the last column.
func (m *Mesh) HorizontalOverlap(r, c int) grid.Rect {
	if c+1 >= m.Cols {
		return grid.Rect{}
	}
	return m.Extended(r, c).Intersect(m.Extended(r, c+1))
}

// OverlapBetween returns the overlap of any two extended tiles
// (including diagonal neighbors and, for very wide halos, non-adjacent
// tiles). Used by tests and by the direct-neighbor accumulation path.
func (m *Mesh) OverlapBetween(r1, c1, r2, c2 int) grid.Rect {
	return m.Extended(r1, c1).Intersect(m.Extended(r2, c2))
}

// MaxNeighborDistance returns how many tiles away (Chebyshev distance)
// an extended tile can overlap another extended tile. 1 means only
// direct neighbors overlap; >= 2 is the paper's "high overlap ratio"
// regime (Fig 2(f)) that requires the chained forward/backward passes.
func (m *Mesh) MaxNeighborDistance() int {
	maxD := 0
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			for dr := 0; dr < m.Rows; dr++ {
				for dc := 0; dc < m.Cols; dc++ {
					if dr == r && dc == c {
						continue
					}
					if !m.OverlapBetween(r, c, dr, dc).Empty() {
						d := abs(dr - r)
						if a := abs(dc - c); a > d {
							d = a
						}
						if d > maxD {
							maxD = d
						}
					}
				}
			}
		}
	}
	return maxD
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// AssignLocations distributes the pattern's probe locations to tiles by
// circle-center containment (the rule both the paper's methods use).
// The result is indexed by rank; every location appears exactly once.
func (m *Mesh) AssignLocations(p *scan.Pattern) [][]int {
	out := make([][]int, m.NumTiles())
	for i, l := range p.Locations {
		x := clampInt(int(math.Round(l.X)), m.Image.X0, m.Image.X1-1)
		y := clampInt(int(math.Round(l.Y)), m.Image.Y0, m.Image.Y1-1)
		r, c := m.TileOf(x, y)
		rank := m.Rank(r, c)
		out[rank] = append(out[rank], i)
	}
	return out
}

// ExtraRowLocations returns, for tile (r, c), the indices of locations
// owned by OTHER tiles that lie within `rows` probe-rows of the tile
// boundary — the Halo Voxel Exchange baseline's "additional probe
// locations" (paper Fig 2(d)). The distance is measured in scan steps.
func (m *Mesh) ExtraRowLocations(p *scan.Pattern, owned [][]int, r, c, rows int) []int {
	tile := m.Tile(r, c)
	reach := float64(rows) * p.StepPix
	grow := grid.NewRect(
		tile.X0-int(math.Ceil(reach)), tile.Y0-int(math.Ceil(reach)),
		tile.X1+int(math.Ceil(reach)), tile.Y1+int(math.Ceil(reach)),
	)
	self := m.Rank(r, c)
	ownedBySelf := map[int]bool{}
	for _, i := range owned[self] {
		ownedBySelf[i] = true
	}
	var out []int
	for i, l := range p.Locations {
		if ownedBySelf[i] {
			continue
		}
		if grow.Contains(int(math.Round(l.X)), int(math.Round(l.Y))) {
			out = append(out, i)
		}
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Stitch assembles per-rank tile arrays into a full image, copying only
// each tile's interior region (halos are abandoned, paper Alg 1 line
// 20). tiles[rank] must cover the interior tile of that rank.
func (m *Mesh) Stitch(tiles []*grid.Complex2D) *grid.Complex2D {
	if len(tiles) != m.NumTiles() {
		panic(fmt.Sprintf("tiling: %d tiles for %dx%d mesh", len(tiles), m.Rows, m.Cols))
	}
	out := grid.NewComplex2D(m.Image)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.CopyRegion(tiles[m.Rank(r, c)], m.Tile(r, c))
		}
	}
	return out
}

// StitchSlices stitches a stack of per-rank slice arrays:
// tiles[rank][slice] -> image per slice.
func (m *Mesh) StitchSlices(tiles [][]*grid.Complex2D) []*grid.Complex2D {
	if len(tiles) == 0 {
		return nil
	}
	s := len(tiles[0])
	out := make([]*grid.Complex2D, s)
	per := make([]*grid.Complex2D, len(tiles))
	for i := 0; i < s; i++ {
		for rank := range tiles {
			per[rank] = tiles[rank][i]
		}
		out[i] = m.Stitch(per)
	}
	return out
}

// HaloForWindow returns the minimum halo width that guarantees every
// probe window of size n anchored at a location inside a tile stays
// within the extended tile: ceil(n/2) (+1 for rounding slack).
func HaloForWindow(n int) int { return n/2 + 1 }
