package tiling

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ptychopath/internal/grid"
	"ptychopath/internal/scan"
)

func mustMesh(t *testing.T, img grid.Rect, rows, cols, halo int) *Mesh {
	t.Helper()
	m, err := NewMesh(img, rows, cols, halo)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTilesPartitionImage(t *testing.T) {
	// Every pixel belongs to exactly one interior tile.
	img := grid.RectWH(0, 0, 37, 29) // awkward sizes on purpose
	m := mustMesh(t, img, 3, 4, 5)
	count := grid.NewFloat2D(img)
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			tile := m.Tile(r, c)
			if tile.Empty() {
				t.Fatalf("tile (%d,%d) empty", r, c)
			}
			for y := tile.Y0; y < tile.Y1; y++ {
				for x := tile.X0; x < tile.X1; x++ {
					count.Set(x, y, count.At(x, y)+1)
				}
			}
		}
	}
	lo, hi := count.MinMax()
	if lo != 1 || hi != 1 {
		t.Fatalf("tile coverage min=%g max=%g, want exactly 1", lo, hi)
	}
}

func TestTilePartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		w := 8 + rng.Intn(50)
		h := 8 + rng.Intn(50)
		rows := 1 + rng.Intn(4)
		cols := 1 + rng.Intn(4)
		if rows > h || cols > w {
			return true
		}
		m, err := NewMesh(grid.RectWH(0, 0, w, h), rows, cols, rng.Intn(6))
		if err != nil {
			return false
		}
		// Total area equals image area and TileOf agrees with Tile.
		total := 0
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				tile := m.Tile(r, c)
				total += tile.Area()
				rr, cc := m.TileOf(tile.X0, tile.Y0)
				if rr != r || cc != c {
					return false
				}
				rr, cc = m.TileOf(tile.X1-1, tile.Y1-1)
				if rr != r || cc != c {
					return false
				}
			}
		}
		return total == w*h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeshValidation(t *testing.T) {
	img := grid.RectWH(0, 0, 10, 10)
	cases := []struct {
		rows, cols, halo int
	}{
		{0, 1, 0}, {1, 0, 0}, {1, 1, -1}, {11, 1, 0}, {1, 11, 0},
	}
	for i, c := range cases {
		if _, err := NewMesh(img, c.rows, c.cols, c.halo); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := NewMesh(grid.Rect{}, 1, 1, 0); err == nil {
		t.Error("empty image accepted")
	}
}

func TestExtendedCoversTileAndClamps(t *testing.T) {
	img := grid.RectWH(0, 0, 30, 30)
	m := mustMesh(t, img, 3, 3, 4)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			tile := m.Tile(r, c)
			ext := m.Extended(r, c)
			if !ext.ContainsRect(tile) {
				t.Fatalf("extended (%d,%d) does not cover its tile", r, c)
			}
			if !img.ContainsRect(ext) {
				t.Fatalf("extended (%d,%d) escapes image", r, c)
			}
		}
	}
	// Center tile extends by the full halo in all directions.
	center := m.Extended(1, 1)
	tile := m.Tile(1, 1)
	if center != tile.Inflate(4) {
		t.Fatalf("center extended %v, want %v", center, tile.Inflate(4))
	}
}

func TestRankRowColRoundTrip(t *testing.T) {
	m := mustMesh(t, grid.RectWH(0, 0, 24, 24), 3, 4, 2)
	for rank := 0; rank < m.NumTiles(); rank++ {
		r, c := m.RowCol(rank)
		if m.Rank(r, c) != rank {
			t.Fatalf("rank %d -> (%d,%d) -> %d", rank, r, c, m.Rank(r, c))
		}
	}
	// Paper's 3x3 numbering: tile 5 (rank 4) is the center.
	m9 := mustMesh(t, grid.RectWH(0, 0, 9, 9), 3, 3, 1)
	if r, c := m9.RowCol(4); r != 1 || c != 1 {
		t.Fatalf("rank 4 = (%d,%d), want center (1,1)", r, c)
	}
}

func TestVerticalHorizontalOverlaps(t *testing.T) {
	m := mustMesh(t, grid.RectWH(0, 0, 30, 30), 3, 3, 3)
	// Vertical overlap between (0,c) and (1,c): rows [10-3, 10+3).
	v := m.VerticalOverlap(0, 1)
	if v.Empty() {
		t.Fatal("vertical overlap empty")
	}
	if v.Y0 != 10-3 || v.Y1 != 10+3 {
		t.Fatalf("vertical overlap rows [%d,%d), want [7,13)", v.Y0, v.Y1)
	}
	// It must equal the intersection of the two extended tiles.
	if v != m.OverlapBetween(0, 1, 1, 1) {
		t.Fatal("vertical overlap != extended intersection")
	}
	// Horizontal symmetry.
	hz := m.HorizontalOverlap(1, 0)
	if hz != m.OverlapBetween(1, 0, 1, 1) {
		t.Fatal("horizontal overlap != extended intersection")
	}
	// Last row/col overlaps are empty.
	if !m.VerticalOverlap(2, 0).Empty() || !m.HorizontalOverlap(0, 2).Empty() {
		t.Fatal("boundary overlaps must be empty")
	}
}

func TestOverlapSymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		m, err := NewMesh(grid.RectWH(0, 0, 40, 40), 1+rng.Intn(4), 1+rng.Intn(4), rng.Intn(8))
		if err != nil {
			return false
		}
		r1, c1 := rng.Intn(m.Rows), rng.Intn(m.Cols)
		r2, c2 := rng.Intn(m.Rows), rng.Intn(m.Cols)
		return m.OverlapBetween(r1, c1, r2, c2) == m.OverlapBetween(r2, c2, r1, c1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxNeighborDistance(t *testing.T) {
	// Small halo: only direct neighbors overlap.
	m1 := mustMesh(t, grid.RectWH(0, 0, 30, 30), 3, 3, 3)
	if d := m1.MaxNeighborDistance(); d != 1 {
		t.Fatalf("halo 3 on 10px tiles: distance = %d, want 1", d)
	}
	// Halo wider than a tile: non-adjacent tiles overlap (paper Fig 2(f)
	// high-overlap regime).
	m2 := mustMesh(t, grid.RectWH(0, 0, 30, 30), 3, 3, 12)
	if d := m2.MaxNeighborDistance(); d < 2 {
		t.Fatalf("halo 12 on 10px tiles: distance = %d, want >= 2", d)
	}
}

func TestTileOfOutsidePanics(t *testing.T) {
	m := mustMesh(t, grid.RectWH(0, 0, 10, 10), 2, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("TileOf outside image must panic")
		}
	}()
	m.TileOf(10, 0)
}

func TestAssignLocationsPartition(t *testing.T) {
	p, err := scan.Raster(scan.RasterConfig{Cols: 6, Rows: 6, StepPix: 8, RadiusPix: 7})
	if err != nil {
		t.Fatal(err)
	}
	m := mustMesh(t, p.Bounds(), 3, 3, 8)
	owned := m.AssignLocations(p)
	seen := map[int]int{}
	for rank, locs := range owned {
		for _, i := range locs {
			if prev, dup := seen[i]; dup {
				t.Fatalf("location %d assigned to ranks %d and %d", i, prev, rank)
			}
			seen[i] = rank
		}
	}
	if len(seen) != p.N() {
		t.Fatalf("assigned %d of %d locations", len(seen), p.N())
	}
	// The 3x3 mesh over a 6x6 scan must give 4 locations per tile.
	for rank, locs := range owned {
		if len(locs) != 4 {
			t.Fatalf("rank %d owns %d locations, want 4", rank, len(locs))
		}
	}
}

func TestExtraRowLocations(t *testing.T) {
	// HVE's extra locations: tile (0,0) with 1 extra row must pick up
	// neighbors' locations within one scan step of its boundary.
	p, err := scan.Raster(scan.RasterConfig{Cols: 6, Rows: 6, StepPix: 8, RadiusPix: 7})
	if err != nil {
		t.Fatal(err)
	}
	m := mustMesh(t, p.Bounds(), 3, 3, 8)
	owned := m.AssignLocations(p)
	extra := m.ExtraRowLocations(p, owned, 0, 0, 1)
	if len(extra) == 0 {
		t.Fatal("corner tile must receive extra locations")
	}
	// None of the extras are owned by (0,0) itself.
	own := map[int]bool{}
	for _, i := range owned[m.Rank(0, 0)] {
		own[i] = true
	}
	for _, i := range extra {
		if own[i] {
			t.Fatalf("extra location %d already owned", i)
		}
	}
	// More extra rows can only grow the set.
	extra2 := m.ExtraRowLocations(p, owned, 0, 0, 2)
	if len(extra2) < len(extra) {
		t.Fatal("extra rows must be monotone")
	}
}

func TestStitchSplitIdentity(t *testing.T) {
	// Splitting an image into extended tiles and stitching interiors
	// back must reproduce the original exactly.
	rng := rand.New(rand.NewSource(3))
	img := grid.RectWH(0, 0, 33, 21)
	full := grid.NewComplex2D(img)
	for i := range full.Data {
		full.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	m := mustMesh(t, img, 2, 3, 4)
	tiles := make([]*grid.Complex2D, m.NumTiles())
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			tiles[m.Rank(r, c)] = full.Extract(m.Extended(r, c))
		}
	}
	got := m.Stitch(tiles)
	if got.MaxDiff(full) > 0 {
		t.Fatal("stitch(split(x)) != x")
	}
}

func TestStitchSplitProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func() bool {
		w := 10 + rng.Intn(40)
		h := 10 + rng.Intn(40)
		rows := 1 + rng.Intn(3)
		cols := 1 + rng.Intn(3)
		if rows > h || cols > w {
			return true
		}
		m, err := NewMesh(grid.RectWH(0, 0, w, h), rows, cols, rng.Intn(5))
		if err != nil {
			return false
		}
		full := grid.NewComplex2D(m.Image)
		for i := range full.Data {
			full.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		tiles := make([]*grid.Complex2D, m.NumTiles())
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				tiles[m.Rank(r, c)] = full.Extract(m.Extended(r, c))
			}
		}
		return m.Stitch(tiles).MaxDiff(full) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStitchSlices(t *testing.T) {
	img := grid.RectWH(0, 0, 12, 12)
	m := mustMesh(t, img, 2, 2, 2)
	tiles := make([][]*grid.Complex2D, m.NumTiles())
	for rank := range tiles {
		r, c := m.RowCol(rank)
		ext := m.Extended(r, c)
		tiles[rank] = make([]*grid.Complex2D, 2)
		for s := range tiles[rank] {
			a := grid.NewComplex2D(ext)
			a.Fill(complex(float64(rank), float64(s)))
			tiles[rank][s] = a
		}
	}
	out := m.StitchSlices(tiles)
	if len(out) != 2 {
		t.Fatal("slice count")
	}
	// Pixel in tile 3's interior must carry rank 3's value.
	tile3 := m.Tile(1, 1)
	if out[1].At(tile3.X0, tile3.Y0) != complex(3, 1) {
		t.Fatalf("stitched value %v", out[1].At(tile3.X0, tile3.Y0))
	}
}

func TestStitchWrongCountPanics(t *testing.T) {
	m := mustMesh(t, grid.RectWH(0, 0, 10, 10), 2, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("must panic")
		}
	}()
	m.Stitch(make([]*grid.Complex2D, 3))
}

func TestHaloForWindow(t *testing.T) {
	if HaloForWindow(16) != 9 {
		t.Fatalf("HaloForWindow(16) = %d", HaloForWindow(16))
	}
	// The guarantee: a window centered anywhere in a tile fits in the
	// extended tile (away from image borders, where clamping applies).
	m := mustMesh(t, grid.RectWH(0, 0, 64, 64), 2, 2, HaloForWindow(16))
	tile := m.Tile(0, 0)
	ext := m.Extended(0, 0)
	l := scan.Location{X: float64(tile.X1 - 1), Y: float64(tile.Y1 - 1), Radius: 8}
	win := l.Window(16).Clamp(m.Image)
	if !ext.ContainsRect(win) {
		t.Fatalf("window %v escapes extended tile %v", win, ext)
	}
}
