package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAddAndGet(t *testing.T) {
	r := NewRecorder()
	r.Add("compute", 2*time.Second)
	r.Add("compute", time.Second)
	r.Add("comm", 500*time.Millisecond)
	if r.Get("compute") != 3*time.Second {
		t.Fatalf("compute = %v", r.Get("compute"))
	}
	if r.Get("missing") != 0 {
		t.Fatal("missing phase must be 0")
	}
	if r.Total() != 3500*time.Millisecond {
		t.Fatalf("total = %v", r.Total())
	}
}

func TestTimeMeasuresFunction(t *testing.T) {
	r := NewRecorder()
	r.Time("sleep", func() { time.Sleep(20 * time.Millisecond) })
	if r.Get("sleep") < 15*time.Millisecond {
		t.Fatalf("sleep phase %v too short", r.Get("sleep"))
	}
}

func TestPhasesOrder(t *testing.T) {
	r := NewRecorder()
	r.Add("b", 1)
	r.Add("a", 1)
	r.Add("b", 1)
	got := r.Phases()
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("phases %v", got)
	}
}

func TestConcurrentAdds(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Add("p", time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if r.Get("p") != 3200*time.Millisecond {
		t.Fatalf("p = %v", r.Get("p"))
	}
}

func TestReportFormat(t *testing.T) {
	r := NewRecorder()
	r.Add("compute", 3*time.Second)
	r.Add("comm", time.Second)
	var sb strings.Builder
	r.Report(&sb, "breakdown")
	out := sb.String()
	for _, want := range []string{"breakdown", "compute", "comm", "total", "75.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// Longest phase first.
	if strings.Index(out, "compute") > strings.Index(out, "comm") {
		t.Fatal("phases not sorted by duration")
	}
}
