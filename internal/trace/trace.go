// Package trace provides lightweight wall-clock phase timers used by the
// CLI tools and functional experiments to report where time went
// (compute, communication, assembly) without any external dependency.
//
// The implementation lives in internal/obs (which extends it with span
// traces, histograms and structured logging for the serving stack);
// this package remains as the stable alias the CLI tools import.
package trace

import "ptychopath/internal/obs"

// Recorder accumulates named phase durations; safe for concurrent use.
// It is an alias of obs.Recorder.
type Recorder = obs.Recorder

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return obs.NewRecorder() }
