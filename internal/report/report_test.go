package report

import (
	"strings"
	"testing"

	"ptychopath/internal/perfmodel"
)

func sampleRows() []perfmodel.Row {
	return []perfmodel.Row{
		{Nodes: 1, GPUs: 6, MemoryGB: 9.14, RuntimeMin: 5543, EfficiencyPct: 100},
		{Nodes: 9, GPUs: 54, MemoryGB: 1.54, RuntimeMin: 183, EfficiencyPct: 336},
		{Nodes: 21, GPUs: 126, NA: true},
	}
}

func TestPerfTableLayout(t *testing.T) {
	var sb strings.Builder
	PerfTable(&sb, "Table X", sampleRows())
	out := sb.String()
	for _, want := range []string{
		"Table X", "Nodes", "GPUs", "Memory footprint per GPU (GB)",
		"Runtime (mins)", "Strong scaling efficiency",
		"9.14", "5543.0", "336%", "NA",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	// Transposed: one line per metric, so GPU counts share a line.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "GPUs") {
			if !strings.Contains(line, "6") || !strings.Contains(line, "54") || !strings.Contains(line, "126") {
				t.Fatalf("GPU header line incomplete: %q", line)
			}
		}
	}
}

func TestPerfCSV(t *testing.T) {
	var sb strings.Builder
	PerfCSV(&sb, sampleRows())
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header + 3 rows, got %d lines", len(lines))
	}
	if lines[0] != "nodes,gpus,memory_gb,runtime_min,efficiency_pct,na" {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,6,9.14") {
		t.Fatalf("row 1: %q", lines[1])
	}
	if !strings.HasSuffix(lines[3], "true") {
		t.Fatalf("NA row must end with true: %q", lines[3])
	}
}

func TestSeriesTableAlignsAndFillsMissing(t *testing.T) {
	var sb strings.Builder
	SeriesTable(&sb, "Fig Y", "GPUs", []Series{
		{Name: "a", X: []float64{6, 54}, Y: []float64{1, 2}},
		{Name: "b", X: []float64{54, 198}, Y: []float64{3, 4}},
	})
	out := sb.String()
	for _, want := range []string{"Fig Y", "GPUs", "a", "b", "198"} {
		if !strings.Contains(out, want) {
			t.Fatalf("series table missing %q:\n%s", want, out)
		}
	}
	// x=6 exists only in series a; series b must show "-".
	var row6 string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "6 ") || strings.HasPrefix(line, "6\t") || strings.HasPrefix(line, "6") && strings.Contains(line, " ") {
			row6 = line
			break
		}
	}
	if row6 == "" || !strings.Contains(row6, "-") {
		t.Fatalf("missing-point marker absent in %q", row6)
	}
}

func TestBreakdownTable(t *testing.T) {
	var sb strings.Builder
	BreakdownTable(&sb, "Fig 7b", []string{"24", "24 w/o"}, []perfmodel.Breakdown{
		{ComputeMin: 10, WaitMin: 2, CommMin: 0.5},
		{ComputeMin: 10, WaitMin: 2, CommMin: 8},
	})
	out := sb.String()
	for _, want := range []string{"Fig 7b", "compute(min)", "wait(min)", "comm(min)", "total(min)", "12.50", "20.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("breakdown missing %q:\n%s", want, out)
		}
	}
}

func TestKVAlignment(t *testing.T) {
	var sb strings.Builder
	KV(&sb, "title", [][2]string{{"short", "1"}, {"much longer key", "2"}})
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	// Values must start at the same column.
	i1 := strings.Index(lines[1], "1")
	i2 := strings.Index(lines[2], "2")
	if i1 != i2 {
		t.Fatalf("values not aligned: %d vs %d\n%s", i1, i2, out)
	}
}

func TestRule(t *testing.T) {
	var sb strings.Builder
	Rule(&sb, "table3")
	out := sb.String()
	if !strings.Contains(out, " table3 ") || !strings.Contains(out, "====") {
		t.Fatalf("rule format: %q", out)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		6:      "6",
		4158:   "4158",
		2.17:   "2.17",
		5539.7: "5539.7",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%g) = %q, want %q", in, got, want)
		}
	}
}
