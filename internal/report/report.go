// Package report renders experiment results in the paper's layout:
// transposed performance tables (one column per GPU count, like Tables
// II/III), aligned ASCII series for figures, and CSV for downstream
// plotting.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"ptychopath/internal/perfmodel"
)

// PerfTable renders rows in the paper's Tables II/III format.
func PerfTable(w io.Writer, title string, rows []perfmodel.Row) {
	fmt.Fprintf(w, "%s\n", title)
	cells := func(label string, f func(r perfmodel.Row) string) {
		fmt.Fprintf(w, "%-28s", label)
		for _, r := range rows {
			fmt.Fprintf(w, "%12s", f(r))
		}
		fmt.Fprintln(w)
	}
	cells("Nodes", func(r perfmodel.Row) string { return fmt.Sprintf("%d", r.Nodes) })
	cells("GPUs", func(r perfmodel.Row) string { return fmt.Sprintf("%d", r.GPUs) })
	cells("Memory footprint per GPU (GB)", func(r perfmodel.Row) string {
		if r.NA {
			return "NA"
		}
		return fmt.Sprintf("%.2f", r.MemoryGB)
	})
	cells("Runtime (mins)", func(r perfmodel.Row) string {
		if r.NA {
			return "NA"
		}
		return fmt.Sprintf("%.1f", r.RuntimeMin)
	})
	cells("Strong scaling efficiency", func(r perfmodel.Row) string {
		if r.NA {
			return "NA"
		}
		return fmt.Sprintf("%.0f%%", r.EfficiencyPct)
	})
	fmt.Fprintln(w)
}

// PerfCSV writes rows as CSV with a header.
func PerfCSV(w io.Writer, rows []perfmodel.Row) {
	fmt.Fprintln(w, "nodes,gpus,memory_gb,runtime_min,efficiency_pct,na")
	for _, r := range rows {
		fmt.Fprintf(w, "%d,%d,%.4f,%.4f,%.2f,%v\n",
			r.Nodes, r.GPUs, r.MemoryGB, r.RuntimeMin, r.EfficiencyPct, r.NA)
	}
}

// Series is one named line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// SeriesTable prints aligned columns: x then one column per series
// (missing points render as "-").
func SeriesTable(w io.Writer, title, xLabel string, series []Series) {
	fmt.Fprintf(w, "%s\n", title)
	// Collect the union of x values in order of first appearance.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	fmt.Fprintf(w, "%-12s", xLabel)
	for _, s := range series {
		fmt.Fprintf(w, "%16s", s.Name)
	}
	fmt.Fprintln(w)
	for _, x := range xs {
		fmt.Fprintf(w, "%-12s", trimFloat(x))
		for _, s := range series {
			v, ok := lookup(s, x)
			if !ok {
				fmt.Fprintf(w, "%16s", "-")
			} else {
				fmt.Fprintf(w, "%16s", trimFloat(v))
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

func lookup(s Series, x float64) (float64, bool) {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%d", int64(v))
	}
	if math.Abs(v) >= 100 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// Breakdown renders a Fig 7b-style stacked breakdown table.
func BreakdownTable(w io.Writer, title string, labels []string, rows []perfmodel.Breakdown) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-14s%14s%14s%14s%14s\n", "run", "compute(min)", "wait(min)", "comm(min)", "total(min)")
	for i, b := range rows {
		fmt.Fprintf(w, "%-14s%14.2f%14.2f%14.2f%14.2f\n",
			labels[i], b.ComputeMin, b.WaitMin, b.CommMin, b.Total())
	}
	fmt.Fprintln(w)
}

// KV prints aligned key: value lines for scalar results.
func KV(w io.Writer, title string, pairs [][2]string) {
	fmt.Fprintf(w, "%s\n", title)
	width := 0
	for _, p := range pairs {
		if len(p[0]) > width {
			width = len(p[0])
		}
	}
	for _, p := range pairs {
		fmt.Fprintf(w, "  %-*s  %s\n", width, p[0], p[1])
	}
	fmt.Fprintln(w)
}

// Rule prints a horizontal divider with a centered label.
func Rule(w io.Writer, label string) {
	const width = 72
	pad := width - len(label) - 2
	if pad < 2 {
		pad = 2
	}
	left := pad / 2
	right := pad - left
	fmt.Fprintf(w, "%s %s %s\n", strings.Repeat("=", left), label, strings.Repeat("=", right))
}
