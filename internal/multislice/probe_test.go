package multislice

import (
	"math"
	"math/rand"
	"testing"

	"ptychopath/internal/grid"
	"ptychopath/internal/phantom"
	"ptychopath/internal/physics"
)

// TestProbeGradientMatchesFiniteDifferences validates the probe adjoint
// the same way the object adjoint is validated: against central
// differences in the real and imaginary directions.
func TestProbeGradientMatchesFiniteDifferences(t *testing.T) {
	for _, tc := range []struct {
		name   string
		slices int
		useH   bool
	}{
		{"1slice", 1, false},
		{"2slice-prop", 2, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := 8
			o := physics.PaperOptics()
			baseProbe := o.Probe(n)
			var h *grid.Complex2D
			if tc.useH {
				h = physics.FresnelPropagator(n, o.PixelSizePM, o.Wavelength(), o.SliceThickPM)
			}
			obj := phantom.RandomObject(n+4, n+4, tc.slices, 21)
			target := phantom.RandomObject(n+4, n+4, tc.slices, 22)
			win := grid.RectWH(1, 2, n, n)

			eng := NewEngine(baseProbe, h)
			y := eng.Simulate(target.Slices, win)

			grads := make([]*grid.Complex2D, tc.slices)
			for i := range grads {
				grads[i] = grid.NewComplex2D(obj.Slices[i].Bounds)
			}
			pGrad := grid.NewComplex2DSize(n, n)
			eng.LossGradProbe(obj.Slices, win, y, grads, pGrad)

			lossWithProbe := func(p *grid.Complex2D) float64 {
				e2 := NewEngine(p, h)
				return e2.Loss(obj.Slices, win, y)
			}
			const eps = 1e-6
			rng := rand.New(rand.NewSource(5))
			for trial := 0; trial < 10; trial++ {
				idx := rng.Intn(n * n)
				g := pGrad.Data[idx]
				perturb := func(d complex128) float64 {
					p := baseProbe.Clone()
					p.Data[idx] += d
					return lossWithProbe(p)
				}
				fdRe := (perturb(complex(eps, 0)) - perturb(complex(-eps, 0))) / (2 * eps)
				fdIm := (perturb(complex(0, eps)) - perturb(complex(0, -eps))) / (2 * eps)
				if math.Abs(fdRe-2*real(g)) > 1e-4*(1+math.Abs(fdRe)) {
					t.Fatalf("probe idx %d: d/dRe fd=%g adj=%g", idx, fdRe, 2*real(g))
				}
				if math.Abs(fdIm-2*imag(g)) > 1e-4*(1+math.Abs(fdIm)) {
					t.Fatalf("probe idx %d: d/dIm fd=%g adj=%g", idx, fdIm, 2*imag(g))
				}
			}
		})
	}
}

func TestProbeGradientAccumulates(t *testing.T) {
	n := 8
	o := physics.PaperOptics()
	probe := o.Probe(n)
	obj := phantom.RandomObject(n+4, n+4, 1, 23)
	target := phantom.RandomObject(n+4, n+4, 1, 24)
	win := grid.RectWH(0, 0, n, n)
	eng := NewEngine(probe, nil)
	y := eng.Simulate(target.Slices, win)
	grads := []*grid.Complex2D{grid.NewComplex2D(obj.Slices[0].Bounds)}

	g1 := grid.NewComplex2DSize(n, n)
	eng.LossGradProbe(obj.Slices, win, y, grads, g1)
	g2 := grid.NewComplex2DSize(n, n)
	eng.LossGradProbe(obj.Slices, win, y, grads, g2)
	eng.LossGradProbe(obj.Slices, win, y, grads, g2)
	for i := range g2.Data {
		if d := g2.Data[i] - 2*g1.Data[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-20 {
			t.Fatal("probe gradient must accumulate additively")
		}
	}
}

func TestLossGradProbeSameObjectGradient(t *testing.T) {
	// Requesting the probe gradient must not change the object gradient
	// or the loss.
	n := 8
	o := physics.PaperOptics()
	probe := o.Probe(n)
	obj := phantom.RandomObject(n+4, n+4, 2, 25)
	target := phantom.RandomObject(n+4, n+4, 2, 26)
	win := grid.RectWH(2, 2, n, n)
	h := physics.FresnelPropagator(n, o.PixelSizePM, o.Wavelength(), o.SliceThickPM)
	eng := NewEngine(probe, h)
	y := eng.Simulate(target.Slices, win)

	gA := []*grid.Complex2D{grid.NewComplex2D(obj.Slices[0].Bounds), grid.NewComplex2D(obj.Slices[1].Bounds)}
	fA := eng.LossGrad(obj.Slices, win, y, gA)
	gB := []*grid.Complex2D{grid.NewComplex2D(obj.Slices[0].Bounds), grid.NewComplex2D(obj.Slices[1].Bounds)}
	pg := grid.NewComplex2DSize(n, n)
	fB := eng.LossGradProbe(obj.Slices, win, y, gB, pg)
	if math.Abs(fA-fB) > 1e-12*(1+fA) {
		t.Fatalf("loss changed: %g vs %g", fA, fB)
	}
	for s := range gA {
		if gA[s].MaxDiff(gB[s]) > 1e-12 {
			t.Fatal("object gradient changed when probe gradient requested")
		}
	}
	if pg.Norm2() == 0 {
		t.Fatal("probe gradient identically zero")
	}
}

func TestSetProbeDoesNotAliasCaller(t *testing.T) {
	n := 8
	probe := physics.PaperOptics().Probe(n)
	eng := NewEngine(probe, nil)
	// Mutating the caller's probe must not affect the engine.
	orig := eng.Probe().Clone()
	probe.Data[0] += 99
	if eng.Probe().MaxDiff(orig) != 0 {
		t.Fatal("engine probe aliases constructor argument")
	}
	// SetProbe copies too.
	p2 := orig.Clone()
	eng.SetProbe(p2)
	p2.Data[1] += 99
	if eng.Probe().MaxDiff(orig) != 0 {
		t.Fatal("engine probe aliases SetProbe argument")
	}
}

func TestSetProbeShapeMismatchPanics(t *testing.T) {
	eng := NewEngine(physics.PaperOptics().Probe(8), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("must panic")
		}
	}()
	eng.SetProbe(grid.NewComplex2DSize(16, 16))
}

func TestProbeGradShapeMismatchPanics(t *testing.T) {
	n := 8
	eng := NewEngine(physics.PaperOptics().Probe(n), nil)
	obj := phantom.RandomObject(n, n, 1, 27)
	y := eng.Simulate(obj.Slices, grid.RectWH(0, 0, n, n))
	grads := []*grid.Complex2D{grid.NewComplex2D(obj.Slices[0].Bounds)}
	defer func() {
		if recover() == nil {
			t.Fatal("must panic")
		}
	}()
	eng.LossGradProbe(obj.Slices, grid.RectWH(0, 0, n, n), y, grads, grid.NewComplex2DSize(4, 4))
}
