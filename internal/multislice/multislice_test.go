package multislice

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"ptychopath/internal/fft"
	"ptychopath/internal/grid"
	"ptychopath/internal/phantom"
	"ptychopath/internal/physics"
)

// testSetup builds a small engine plus a random object.
func testSetup(t *testing.T, n, slices int, seed int64) (*Engine, []*grid.Complex2D) {
	t.Helper()
	o := physics.PaperOptics()
	probe := o.Probe(n)
	h := physics.FresnelPropagator(n, o.PixelSizePM, o.Wavelength(), o.SliceThickPM)
	eng := NewEngine(probe, h)
	obj := phantom.RandomObject(n+8, n+8, slices, seed)
	return eng, obj.Slices
}

func TestSimulateVacuumReproducesProbeSpectrum(t *testing.T) {
	// Through vacuum (t=1 everywhere) the far field is |F probe|,
	// regardless of slice count (propagators are unitary phase ramps
	// composed with FFTs, and |F P psi| = |H F psi| = |F psi|).
	n := 32
	o := physics.PaperOptics()
	probe := o.Probe(n)
	h := physics.FresnelPropagator(n, o.PixelSizePM, o.Wavelength(), o.SliceThickPM)
	eng := NewEngine(probe, h)
	vac := phantom.Vacuum(grid.RectWH(0, 0, n, n), 3)
	got := eng.Simulate(vac.Slices, grid.RectWH(0, 0, n, n))

	want := probe.Clone()
	fft.NewPlan2D(n, n, false).Transform(want, fft.Forward)
	for i := range got.Data {
		if math.Abs(got.Data[i]-cmplx.Abs(want.Data[i])) > 1e-9 {
			t.Fatalf("vacuum far field differs at %d: %g vs %g",
				i, got.Data[i], cmplx.Abs(want.Data[i]))
		}
	}
}

func TestSimulateEnergyConservedForPhaseObject(t *testing.T) {
	// A pure phase object with unit-modulus slices conserves energy:
	// sum |D|^2 = N^2 * sum |probe|^2 (Parseval with unnormalized FFT).
	n := 32
	o := physics.PaperOptics()
	probe := o.Probe(n)
	h := physics.FresnelPropagator(n, o.PixelSizePM, o.Wavelength(), o.SliceThickPM)
	eng := NewEngine(probe, h)

	bounds := grid.RectWH(0, 0, n, n)
	slices := make([]*grid.Complex2D, 3)
	rng := rand.New(rand.NewSource(5))
	for s := range slices {
		sl := grid.NewComplex2D(bounds)
		for i := range sl.Data {
			sl.Data[i] = cmplx.Exp(complex(0, rng.Float64()))
		}
		slices[s] = sl
	}
	amp := eng.Simulate(slices, bounds)
	var e float64
	for _, a := range amp.Data {
		e += a * a
	}
	want := float64(n*n) * probe.Norm2()
	if math.Abs(e-want) > 1e-6*want {
		t.Fatalf("energy %g, want %g", e, want)
	}
}

func TestLossZeroAtGroundTruth(t *testing.T) {
	eng, slices := testSetup(t, 16, 2, 1)
	win := grid.RectWH(2, 2, 16, 16)
	y := eng.Simulate(slices, win)
	if f := eng.Loss(slices, win, y); f > 1e-18 {
		t.Fatalf("loss at ground truth = %g, want ~0", f)
	}
}

func TestLossPositiveAwayFromTruth(t *testing.T) {
	eng, slices := testSetup(t, 16, 2, 2)
	win := grid.RectWH(0, 0, 16, 16)
	y := eng.Simulate(slices, win)
	perturbed := make([]*grid.Complex2D, len(slices))
	for i, s := range slices {
		perturbed[i] = s.Clone()
	}
	perturbed[0].Set(5, 5, perturbed[0].At(5, 5)+0.3) // inside the window
	if f := eng.Loss(perturbed, win, y); f <= 0 {
		t.Fatalf("loss = %g, want positive", f)
	}
}

// TestGradientMatchesFiniteDifferences is the central correctness test
// for the whole reconstruction: the hand-derived adjoint must agree with
// central differences in both the real and imaginary directions, for
// single and multiple slices, with and without propagation.
func TestGradientMatchesFiniteDifferences(t *testing.T) {
	cases := []struct {
		name   string
		slices int
		useH   bool
	}{
		{"1slice-noprop", 1, false},
		{"1slice-prop", 1, true},
		{"3slice-prop", 3, true},
		{"2slice-noprop", 2, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := 8
			o := physics.PaperOptics()
			probe := o.Probe(n)
			var h *grid.Complex2D
			if tc.useH {
				h = physics.FresnelPropagator(n, o.PixelSizePM, o.Wavelength(), o.SliceThickPM)
			}
			eng := NewEngine(probe, h)
			obj := phantom.RandomObject(n+4, n+4, tc.slices, 7)
			win := grid.RectWH(2, 1, n, n)

			// Synthetic measurement from a different object so the
			// residual (and gradient) is non-zero.
			target := phantom.RandomObject(n+4, n+4, tc.slices, 8)
			y := eng.Simulate(target.Slices, win)

			grads := make([]*grid.Complex2D, tc.slices)
			for i := range grads {
				grads[i] = grid.NewComplex2D(obj.Slices[i].Bounds)
			}
			eng.LossGrad(obj.Slices, win, y, grads)

			const eps = 1e-6
			rng := rand.New(rand.NewSource(9))
			for trial := 0; trial < 12; trial++ {
				s := rng.Intn(tc.slices)
				// Probe a pixel inside the window.
				x := win.X0 + rng.Intn(n)
				yy := win.Y0 + rng.Intn(n)
				if !obj.Slices[s].Bounds.Contains(x, yy) {
					continue
				}
				g := grads[s].At(x, yy)

				perturb := func(d complex128) float64 {
					p := make([]*grid.Complex2D, tc.slices)
					for i := range p {
						p[i] = obj.Slices[i]
					}
					p[s] = obj.Slices[s].Clone()
					p[s].Set(x, yy, p[s].At(x, yy)+d)
					return eng.Loss(p, win, y)
				}
				fdRe := (perturb(complex(eps, 0)) - perturb(complex(-eps, 0))) / (2 * eps)
				fdIm := (perturb(complex(0, eps)) - perturb(complex(0, -eps))) / (2 * eps)
				if math.Abs(fdRe-2*real(g)) > 1e-4*(1+math.Abs(fdRe)) {
					t.Fatalf("slice %d (%d,%d): d/dRe fd=%g adj=%g", s, x, yy, fdRe, 2*real(g))
				}
				if math.Abs(fdIm-2*imag(g)) > 1e-4*(1+math.Abs(fdIm)) {
					t.Fatalf("slice %d (%d,%d): d/dIm fd=%g adj=%g", s, x, yy, fdIm, 2*imag(g))
				}
			}
		})
	}
}

func TestLossGradReturnsSameLossAsLoss(t *testing.T) {
	eng, slices := testSetup(t, 16, 2, 3)
	win := grid.RectWH(1, 1, 16, 16)
	target := phantom.RandomObject(24, 24, 2, 11)
	y := eng.Simulate(target.Slices, win)
	grads := []*grid.Complex2D{
		grid.NewComplex2D(slices[0].Bounds),
		grid.NewComplex2D(slices[1].Bounds),
	}
	f1 := eng.LossGrad(slices, win, y, grads)
	f2 := eng.Loss(slices, win, y)
	if math.Abs(f1-f2) > 1e-12*(1+f1) {
		t.Fatalf("LossGrad loss %g != Loss %g", f1, f2)
	}
}

func TestGradientAccumulates(t *testing.T) {
	// Two calls must sum into the gradient arrays (Eqn 2 summation).
	eng, slices := testSetup(t, 8, 1, 4)
	win := grid.RectWH(0, 0, 8, 8)
	target := phantom.RandomObject(16, 16, 1, 12)
	y := eng.Simulate(target.Slices, win)

	g1 := []*grid.Complex2D{grid.NewComplex2D(slices[0].Bounds)}
	eng.LossGrad(slices, win, y, g1)
	g2 := []*grid.Complex2D{grid.NewComplex2D(slices[0].Bounds)}
	eng.LossGrad(slices, win, y, g2)
	eng.LossGrad(slices, win, y, g2)
	for i := range g2[0].Data {
		if cmplx.Abs(g2[0].Data[i]-2*g1[0].Data[i]) > 1e-12*(1+cmplx.Abs(g2[0].Data[i])) {
			t.Fatal("gradient accumulation is not additive")
		}
	}
}

func TestGradientVanishesOutsideWindow(t *testing.T) {
	eng, slices := testSetup(t, 8, 2, 5)
	win := grid.RectWH(3, 3, 8, 8)
	target := phantom.RandomObject(16, 16, 2, 13)
	y := eng.Simulate(target.Slices, win)
	grads := []*grid.Complex2D{
		grid.NewComplex2D(slices[0].Bounds),
		grid.NewComplex2D(slices[1].Bounds),
	}
	eng.LossGrad(slices, win, y, grads)
	for _, g := range grads {
		for yy := g.Bounds.Y0; yy < g.Bounds.Y1; yy++ {
			for x := g.Bounds.X0; x < g.Bounds.X1; x++ {
				if !win.Contains(x, yy) && g.At(x, yy) != 0 {
					t.Fatalf("gradient leaked outside window at (%d,%d)", x, yy)
				}
			}
		}
	}
}

func TestWindowPartiallyOutsideObject(t *testing.T) {
	// Windows hanging off the object edge must not panic and must
	// produce finite loss and gradients (vacuum padding).
	eng, slices := testSetup(t, 8, 2, 6)
	win := grid.RectWH(-4, -4, 8, 8) // top-left corner overhang
	target := phantom.RandomObject(16, 16, 2, 14)
	y := eng.Simulate(target.Slices, win)
	grads := []*grid.Complex2D{
		grid.NewComplex2D(slices[0].Bounds),
		grid.NewComplex2D(slices[1].Bounds),
	}
	f := eng.LossGrad(slices, win, y, grads)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		t.Fatalf("loss = %g", f)
	}
	for _, g := range grads {
		if !g.IsFinite() {
			t.Fatal("gradient not finite")
		}
	}
}

func TestGradientRestrictedToArrayBounds(t *testing.T) {
	// Gradient arrays narrower than the window (a tile) receive only
	// their in-bounds portion — the tile-decomposition contract.
	eng, slices := testSetup(t, 8, 1, 7)
	win := grid.RectWH(0, 0, 8, 8)
	target := phantom.RandomObject(16, 16, 1, 15)
	y := eng.Simulate(target.Slices, win)

	full := []*grid.Complex2D{grid.NewComplex2D(slices[0].Bounds)}
	eng.LossGrad(slices, win, y, full)

	tile := grid.NewRect(2, 3, 7, 8)
	part := []*grid.Complex2D{grid.NewComplex2D(tile)}
	eng.LossGrad(slices, win, y, part)
	for yy := tile.Y0; yy < tile.Y1; yy++ {
		for x := tile.X0; x < tile.X1; x++ {
			if cmplx.Abs(part[0].At(x, yy)-full[0].At(x, yy)) > 1e-12 {
				t.Fatal("restricted gradient differs from full gradient on the tile")
			}
		}
	}
}

func TestMismatchedGradCountPanics(t *testing.T) {
	eng, slices := testSetup(t, 8, 2, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("must panic on grads/slices mismatch")
		}
	}()
	eng.LossGrad(slices, grid.RectWH(0, 0, 8, 8), grid.NewFloat2DSize(8, 8), nil)
}

func TestNonSquareProbePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("must panic on non-square probe")
		}
	}()
	NewEngine(grid.NewComplex2DSize(8, 9), nil)
}

func TestPropagatorShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("must panic on propagator shape mismatch")
		}
	}()
	NewEngine(grid.NewComplex2DSize(8, 8), grid.NewComplex2DSize(16, 16))
}

func TestFlopsPerLocationScaling(t *testing.T) {
	// More slices and larger windows must cost more; doubling n should
	// grow cost superlinearly (N log N per FFT).
	f1 := FlopsPerLocation(64, 4)
	f2 := FlopsPerLocation(64, 8)
	f3 := FlopsPerLocation(128, 4)
	if f2 <= f1 || f3 <= f1 {
		t.Fatal("flop model not monotone")
	}
	if f3/f1 < 4 {
		t.Fatalf("expected >= 4x cost for 2x window, got %g", f3/f1)
	}
}

func BenchmarkLossGrad64x64x4(b *testing.B) {
	o := physics.PaperOptics()
	probe := o.Probe(64)
	h := physics.FresnelPropagator(64, o.PixelSizePM, o.Wavelength(), o.SliceThickPM)
	eng := NewEngine(probe, h)
	obj := phantom.RandomObject(96, 96, 4, 1)
	win := grid.RectWH(10, 10, 64, 64)
	y := eng.Simulate(obj.Slices, win)
	grads := make([]*grid.Complex2D, 4)
	for i := range grads {
		grads[i] = grid.NewComplex2D(obj.Slices[i].Bounds)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.LossGrad(obj.Slices, win, y, grads)
	}
}
