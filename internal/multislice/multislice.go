// Package multislice implements the paper's forward model G and its
// adjoint. G simulates far-field diffraction at one probe location by
// transmitting the probe wave through a stack of object slices with
// Fresnel propagation between them (Maiden/Humphry/Rodenburg 2012), and
// the adjoint backpropagates the measurement residual into a gradient of
// the cost F(V) = sum_i (|y_i| - |G(p_i, V)|)^2 with respect to the
// complex object slices — the "individual image gradient" of the paper's
// Eqn. (2).
//
// Conventions: object slices hold the complex transmission function.
// Windows outside the object bounds are treated as vacuum (t = 1), and
// gradient contributions outside the bounds are discarded; this makes
// edge probe locations well defined for both the serial solver and the
// tile-decomposed parallel algorithms.
package multislice

import (
	"fmt"
	"math"
	"math/cmplx"

	"ptychopath/internal/fft"
	"ptychopath/internal/grid"
)

// Engine evaluates the forward model and gradients for a fixed probe,
// propagator and window size. An Engine is the wavefield half of the
// per-worker scratch arena: it owns the exit-wave stack, the residual
// (chi) buffer, the window-extraction buffer and an fft.Scratch, so
// steady-state Loss/LossGrad calls perform zero heap allocations. It is
// NOT safe for concurrent use; parallel workers each construct their
// own (construction is cheap — FFT plans are cached globally).
type Engine struct {
	n     int
	probe *grid.Complex2D // anchored at (0,0), n x n, read-only
	h     *grid.Complex2D // Fresnel kernel, n x n, read-only; nil = no propagation
	plan  *fft.Plan2D
	scr   fft.Scratch // per-engine FFT workspace arena

	// Scratch: per-slice wavefronts psi[0..S] kept from the last forward
	// evaluation for use by the backward pass.
	psi   []*grid.Complex2D
	fwork *grid.Complex2D // far-field / residual workspace
	bwork *grid.Complex2D // backward wave workspace
	twin  *grid.Complex2D // window extraction of the current slice
}

// NewEngine builds an engine for the given probe and propagation kernel.
// probe must be square; h must match its shape (or be nil to disable
// inter-slice propagation, which collapses G to single-slice CDI).
func NewEngine(probe, h *grid.Complex2D) *Engine {
	n := probe.W()
	if probe.H() != n {
		panic(fmt.Sprintf("multislice: probe must be square, got %dx%d", probe.W(), probe.H()))
	}
	if h != nil && (h.W() != n || h.H() != n) {
		panic(fmt.Sprintf("multislice: propagator %dx%d does not match probe %d", h.W(), h.H(), n))
	}
	// Always copy: the engine's probe is mutable via SetProbe and must
	// never alias the caller's array (problems share one probe across
	// many engines).
	p := probe.Clone()
	p.Bounds = grid.RectWH(0, 0, n, n)
	e := &Engine{
		n:     n,
		probe: p,
		h:     h,
		plan:  fft.NewPlan2D(n, n, false),
		fwork: grid.NewComplex2DSize(n, n),
		bwork: grid.NewComplex2DSize(n, n),
		twin:  grid.NewComplex2DSize(n, n),
	}
	e.scr.Warm(e.plan)
	return e
}

// N returns the window size.
func (e *Engine) N() int { return e.n }

// Probe returns the engine's (origin-anchored) probe field.
func (e *Engine) Probe() *grid.Complex2D { return e.probe }

// SetProbe replaces the engine's probe values (shape must match). Used
// by joint object-probe refinement between iterations.
func (e *Engine) SetProbe(p *grid.Complex2D) {
	if p.W() != e.n || p.H() != e.n {
		panic(fmt.Sprintf("multislice: probe must be %dx%d, got %dx%d", e.n, e.n, p.W(), p.H()))
	}
	copy(e.probe.Data, p.Data)
}

// ensurePsi sizes the wavefront stack for S slices.
func (e *Engine) ensurePsi(s int) {
	for len(e.psi) < s+1 {
		e.psi = append(e.psi, grid.NewComplex2DSize(e.n, e.n))
	}
}

// extractWindow copies the window region win of slice into dst (n x n at
// origin), padding out-of-bounds texels with vacuum (1).
func extractWindow(dst *grid.Complex2D, slice *grid.Complex2D, win grid.Rect) {
	dst.Fill(1)
	inter := win.Intersect(slice.Bounds)
	if inter.Empty() {
		return
	}
	n := dst.W()
	for y := inter.Y0; y < inter.Y1; y++ {
		srcRow := slice.Row(y)
		dy := y - win.Y0
		dx0 := inter.X0 - win.X0
		sx0 := inter.X0 - slice.Bounds.X0
		copy(dst.Data[dy*n+dx0:dy*n+dx0+inter.W()], srcRow[sx0:sx0+inter.W()])
	}
}

// forward runs the multi-slice recursion, leaving psi[s] for s=0..S
// populated and returning the far-field D (stored in fwork).
func (e *Engine) forward(slices []*grid.Complex2D, win grid.Rect) *grid.Complex2D {
	s := len(slices)
	if s == 0 {
		panic("multislice: empty slice stack")
	}
	e.ensurePsi(s)
	copy(e.psi[0].Data, e.probe.Data)
	for i, sl := range slices {
		if sl.W() < e.n || sl.H() < e.n {
			// Slices smaller than the window are legal (vacuum pad), but
			// warn-level situations are caught by callers in tests.
			_ = sl
		}
		extractWindow(e.twin, sl, win)
		cur, next := e.psi[i], e.psi[i+1]
		for j := range cur.Data {
			next.Data[j] = cur.Data[j] * e.twin.Data[j]
		}
		if e.h != nil && i < len(slices)-1 {
			e.plan.TransformScratch(next, fft.Forward, &e.scr)
			for j := range next.Data {
				next.Data[j] *= e.h.Data[j]
			}
			e.plan.TransformScratch(next, fft.Inverse, &e.scr)
		}
	}
	copy(e.fwork.Data, e.psi[s].Data)
	e.plan.TransformScratch(e.fwork, fft.Forward, &e.scr)
	return e.fwork
}

// Simulate computes the far-field amplitude |G(p, V)| for the window win
// of the object. The result is a fresh n x n array (origin-anchored).
func (e *Engine) Simulate(slices []*grid.Complex2D, win grid.Rect) *grid.Float2D {
	d := e.forward(slices, win)
	out := grid.NewFloat2DSize(e.n, e.n)
	for i, v := range d.Data {
		out.Data[i] = cmplx.Abs(v)
	}
	return out
}

// Loss computes f_i = sum_q (|y(q)| - |D(q)|)^2 for the window win
// against the measured amplitude yAmp (n x n).
func (e *Engine) Loss(slices []*grid.Complex2D, win grid.Rect, yAmp *grid.Float2D) float64 {
	d := e.forward(slices, win)
	return amplitudeLoss(d, yAmp)
}

func amplitudeLoss(d *grid.Complex2D, yAmp *grid.Float2D) float64 {
	var f float64
	for i, v := range d.Data {
		r := yAmp.Data[i] - cmplx.Abs(v)
		f += r * r
	}
	return f
}

// LossGrad computes the loss at one probe location and ACCUMULATES the
// Wirtinger gradient dF/d(conj t_s) into grads (one array per slice,
// same bounds as the object slices), restricted to the window region
// clipped to the gradient arrays' bounds. It returns the loss value.
//
// The gradient convention matches central finite differences:
// d f / d Re(t) == 2*Re(g), d f / d Im(t) == 2*Im(g).
func (e *Engine) LossGrad(slices []*grid.Complex2D, win grid.Rect, yAmp *grid.Float2D, grads []*grid.Complex2D) float64 {
	return e.lossGrad(slices, win, yAmp, grads, nil)
}

// LossGradProbe is LossGrad extended with the gradient of the loss with
// respect to the PROBE wavefunction, accumulated into probeGrad (n x n,
// origin-anchored). This is the quantity joint object-probe refinement
// (aberration/defect correction, paper Sec. II-B point 3) descends on.
func (e *Engine) LossGradProbe(slices []*grid.Complex2D, win grid.Rect, yAmp *grid.Float2D,
	grads []*grid.Complex2D, probeGrad *grid.Complex2D) float64 {
	if probeGrad.W() != e.n || probeGrad.H() != e.n {
		panic(fmt.Sprintf("multislice: probe gradient must be %dx%d", e.n, e.n))
	}
	return e.lossGrad(slices, win, yAmp, grads, probeGrad)
}

func (e *Engine) lossGrad(slices []*grid.Complex2D, win grid.Rect, yAmp *grid.Float2D,
	grads []*grid.Complex2D, probeGrad *grid.Complex2D) float64 {
	if len(grads) != len(slices) {
		panic(fmt.Sprintf("multislice: %d gradient arrays for %d slices", len(grads), len(slices)))
	}
	s := len(slices)
	d := e.forward(slices, win)
	f := amplitudeLoss(d, yAmp)

	// chi = dF/d(conj D) = (|D| - |y|) * D / |D|.
	chi := e.bwork
	for i, v := range d.Data {
		m := cmplx.Abs(v)
		if m < 1e-300 {
			chi.Data[i] = 0
			continue
		}
		chi.Data[i] = v * complex((m-yAmp.Data[i])/m, 0)
	}
	// psi_bar_S = F^H chi = N * F^-1 chi.
	e.plan.TransformScratch(chi, fft.Inverse, &e.scr)
	scale := complex(float64(e.n*e.n), 0)
	for i := range chi.Data {
		chi.Data[i] *= scale
	}

	// Backward slice loop: chi currently holds psi_bar after slice s.
	for i := s - 1; i >= 0; i-- {
		if e.h != nil && i < s-1 {
			// Adjoint of the propagation applied after slice i.
			e.plan.TransformScratch(chi, fft.Forward, &e.scr)
			for j := range chi.Data {
				chi.Data[j] *= cmplx.Conj(e.h.Data[j])
			}
			e.plan.TransformScratch(chi, fft.Inverse, &e.scr)
		}
		// g_t(i) = conj(psi_i) * psi_bar'  (psi_i = wave entering slice i).
		extractWindow(e.twin, slices[i], win)
		g := grads[i]
		inter := win.Intersect(g.Bounds)
		for y := inter.Y0; y < inter.Y1; y++ {
			gRow := g.Row(y)
			wy := y - win.Y0
			for x := inter.X0; x < inter.X1; x++ {
				wx := x - win.X0
				idx := wy*e.n + wx
				gRow[x-g.Bounds.X0] += cmplx.Conj(e.psi[i].Data[idx]) * chi.Data[idx]
			}
		}
		// psi_bar_{i-1} = conj(t_i) * psi_bar'.
		if i > 0 || probeGrad != nil {
			for j := range chi.Data {
				chi.Data[j] *= cmplx.Conj(e.twin.Data[j])
			}
		}
	}
	// After the i == 0 step, chi = conj(t_0) * psi_bar'_0 = dF/d(conj
	// psi_0) = dF/d(conj p) since psi_0 is the probe itself.
	if probeGrad != nil {
		for j := range chi.Data {
			probeGrad.Data[j] += chi.Data[j]
		}
	}
	return f
}

// FlopsPerLocation estimates the floating-point operations to evaluate
// one location's loss and gradient: roughly 2 FFTs per slice on the
// forward pass and 2 per slice on the backward pass, each costing
// 5*n^2*log2(n^2), plus element-wise work. Used by the performance
// model, not by the numerics.
func FlopsPerLocation(n, slices int) float64 {
	n2 := float64(n * n)
	fftCost := 5 * n2 * math.Log2(n2)
	perSlice := 4*fftCost + 6*n2
	return float64(slices)*perSlice + 2*fftCost
}
