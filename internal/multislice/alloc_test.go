package multislice

import (
	"testing"

	"ptychopath/internal/grid"
)

// benchEngine builds an engine plus a realistic surrounding problem: a
// 2-slice 64x64 object with a Fresnel-like kernel and a window that
// hangs off the object edge (the vacuum-padding path).
func benchEngine(n int) (*Engine, []*grid.Complex2D, []*grid.Complex2D, *grid.Float2D, grid.Rect) {
	probe := grid.NewComplex2DSize(n, n)
	h := grid.NewComplex2DSize(n, n)
	for i := range probe.Data {
		probe.Data[i] = complex(1, 0.25)
		h.Data[i] = complex(0.8, 0.1)
	}
	e := NewEngine(probe, h)
	slices := []*grid.Complex2D{grid.NewComplex2DSize(64, 64), grid.NewComplex2DSize(64, 64)}
	grads := []*grid.Complex2D{grid.NewComplex2DSize(64, 64), grid.NewComplex2DSize(64, 64)}
	for _, s := range slices {
		s.Fill(complex(1, 0))
	}
	y := grid.NewFloat2DSize(n, n)
	for i := range y.Data {
		y.Data[i] = 0.5
	}
	win := grid.RectWH(10, 10, n, n)
	return e, slices, grads, y, win
}

// BenchmarkGradientKernel measures the per-probe-location gradient
// kernel shared by all three reconstruction engines — the hot path the
// paper's memory-efficiency argument rests on. Covers both FFT kernels:
// n=24 exercises Bluestein (the paper's non-power-of-2 window sizes),
// n=32 the radix-2 path.
func BenchmarkGradientKernel(b *testing.B) {
	for _, bc := range []struct {
		name string
		n    int
	}{{"n24-bluestein", 24}, {"n32-pow2", 32}} {
		b.Run(bc.name, func(b *testing.B) {
			e, slices, grads, y, win := benchEngine(bc.n)
			e.LossGrad(slices, win, y, grads)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.LossGrad(slices, win, y, grads)
			}
		})
	}
}

// TestLossGradAllocationFree guards the tentpole invariant: after the
// engine's scratch arena has warmed up, evaluating a probe location's
// loss+gradient performs zero heap allocations, for both FFT kernels
// and for the probe-gradient variant used by joint refinement.
func TestLossGradAllocationFree(t *testing.T) {
	for _, n := range []int{24, 32} {
		e, slices, grads, y, win := benchEngine(n)
		if got := testing.AllocsPerRun(20, func() {
			e.LossGrad(slices, win, y, grads)
		}); got != 0 {
			t.Errorf("n=%d: LossGrad allocates %v per location, want 0", n, got)
		}
		probeGrad := grid.NewComplex2DSize(n, n)
		if got := testing.AllocsPerRun(20, func() {
			e.LossGradProbe(slices, win, y, grads, probeGrad)
		}); got != 0 {
			t.Errorf("n=%d: LossGradProbe allocates %v per location, want 0", n, got)
		}
		if got := testing.AllocsPerRun(20, func() {
			e.Loss(slices, win, y)
		}); got != 0 {
			t.Errorf("n=%d: Loss allocates %v per location, want 0", n, got)
		}
	}
}
