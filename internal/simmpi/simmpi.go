// Package simmpi provides an MPI-flavored message-passing runtime over
// goroutines: ranks, point-to-point Send/Recv with tags, non-blocking
// Isend/Irecv with Wait, barriers and sum-allreduce. The paper's
// parallel algorithms are written against this interface exactly as they
// would be against MPI; a rank stands in for one GPU.
//
// Semantics follow MPI's eager protocol: Send copies the payload and
// enqueues it immediately (never blocks), Recv blocks until a matching
// message arrives. Every blocking operation carries a deadlock timeout
// so an incorrectly ordered exchange fails a test loudly instead of
// hanging it. Per-rank byte/message counters feed communication-volume
// assertions and the experiment reports.
//
// The Transport interface abstracts the communicator: this package's
// *Comm is the in-process implementation, and internal/transport
// provides a TCP implementation with identical semantics, so the same
// engine code runs single-process or distributed across machines.
package simmpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// AnySource matches messages from any sender in Recv/Irecv.
const AnySource = -1

// Pending is the handle of a non-blocking operation (Isend/Irecv).
// Wait blocks until the operation completes; for receives it returns
// the matched payload.
type Pending interface {
	Wait() ([]complex128, error)
}

// Transport is the abstract communicator every parallel engine in this
// repository is written against: MPI-flavored tagged point-to-point
// messaging plus the two collectives the algorithms need. A rank holds
// exactly one Transport endpoint for the lifetime of a run.
//
// Two implementations exist: *Comm (this package), whose world is a set
// of goroutines sharing mailboxes in one process, and
// transport.Client (internal/transport), whose world is a set of
// processes exchanging CRC-framed messages over TCP through a
// coordinator hub. The engines cannot tell them apart — the capstone
// tests assert bit-identical reconstructions across the two.
//
// Contract, matching MPI's eager protocol:
//
//   - Send copies the payload and never blocks. Delivery failures on a
//     remote transport surface on the next blocking call.
//   - Recv blocks until a message with matching (src, tag) arrives,
//     FIFO per pair; src may be AnySource. Every blocking call carries
//     a deadline and fails with an error wrapping ErrTimeout instead of
//     hanging on a deadlocked exchange.
//   - Barrier returns once every rank has entered it.
//   - AllreduceSum returns the rank-order sum of x across the world on
//     every rank — rank-order so results are bit-for-bit deterministic
//     regardless of scheduling.
//   - SentBytes/SentMessages are this endpoint's cumulative outgoing
//     payload counters (complex128 = 16 bytes), feeding the
//     communication-volume instrumentation.
type Transport interface {
	Rank() int
	Size() int
	Send(dst, tag int, data []complex128)
	Recv(src, tag int) ([]complex128, error)
	Isend(dst, tag int, data []complex128) Pending
	Irecv(src, tag int) Pending
	Barrier() error
	AllreduceSum(x float64) (float64, error)
	SentBytes() int64
	SentMessages() int64
}

// DefaultTimeout bounds every blocking operation; tests override it to
// fail fast.
const DefaultTimeout = 30 * time.Second

// ErrTimeout is returned when a blocking operation exceeds the world's
// timeout — almost always a deadlocked exchange pattern.
var ErrTimeout = errors.New("simmpi: blocking operation timed out (deadlock?)")

// Msg is an in-flight message.
type Msg struct {
	Src  int
	Tag  int
	Data []complex128
}

// World owns the mailboxes and synchronization state for one parallel
// run.
type World struct {
	size    int
	timeout time.Duration
	boxes   []*mailbox

	barrierMu  sync.Mutex
	barrierGen int
	barrierCnt int
	barrierCh  chan struct{}

	reduceMu   sync.Mutex
	reduceVals []float64
	reduceGen  int

	bytesSent atomic.Int64
	msgsSent  atomic.Int64
}

type mailbox struct {
	mu     sync.Mutex
	queue  []Msg
	signal chan struct{}

	bytesIn atomic.Int64

	// Outgoing counters of the rank that OWNS this mailbox (not traffic
	// into it) — the per-endpoint view Transport requires.
	bytesOut atomic.Int64
	msgsOut  atomic.Int64
}

// Comm implements Transport over the in-process world.
var _ Transport = (*Comm)(nil)

// Comm is one rank's handle on the world.
type Comm struct {
	rank  int
	world *World
}

// NewWorld creates a world of the given size. timeout <= 0 selects
// DefaultTimeout.
func NewWorld(size int, timeout time.Duration) *World {
	if size <= 0 {
		panic(fmt.Sprintf("simmpi: invalid world size %d", size))
	}
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	w := &World{size: size, timeout: timeout, barrierCh: make(chan struct{})}
	w.boxes = make([]*mailbox, size)
	for i := range w.boxes {
		w.boxes[i] = &mailbox{signal: make(chan struct{}, 1)}
	}
	return w
}

// Run executes fn on every rank concurrently and waits for all to
// finish, collecting the first error (rank panics become errors).
func Run(size int, timeout time.Duration, fn func(c *Comm) error) error {
	w := NewWorld(size, timeout)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("simmpi: rank %d panicked: %v", rank, p)
				}
			}()
			errs[rank] = fn(&Comm{rank: rank, world: w})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Send copies data and enqueues it for dst. It never blocks (eager
// protocol).
func (c *Comm) Send(dst, tag int, data []complex128) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("simmpi: send to invalid rank %d (size %d)", dst, c.world.size))
	}
	cp := make([]complex128, len(data))
	copy(cp, data)
	m := Msg{Src: c.rank, Tag: tag, Data: cp}
	box := c.world.boxes[dst]
	box.mu.Lock()
	box.queue = append(box.queue, m)
	box.mu.Unlock()
	select {
	case box.signal <- struct{}{}:
	default:
	}
	nbytes := int64(16 * len(data))
	c.world.bytesSent.Add(nbytes)
	c.world.msgsSent.Add(1)
	box.bytesIn.Add(nbytes)
	own := c.world.boxes[c.rank]
	own.bytesOut.Add(nbytes)
	own.msgsOut.Add(1)
}

// SentBytes returns the payload bytes this rank has sent.
func (c *Comm) SentBytes() int64 { return c.world.boxes[c.rank].bytesOut.Load() }

// SentMessages returns the number of messages this rank has sent.
func (c *Comm) SentMessages() int64 { return c.world.boxes[c.rank].msgsOut.Load() }

// Request represents a pending non-blocking operation.
type Request struct {
	comm *Comm
	src  int
	tag  int
	sent bool // true for send requests (already complete)
	data []complex128
	err  error
	done bool
}

// Isend starts a non-blocking send. With eager semantics the operation
// completes immediately; the returned request exists for API symmetry
// with MPI_Isend (the paper's APPP uses isend/irecv pairs).
func (c *Comm) Isend(dst, tag int, data []complex128) Pending {
	c.Send(dst, tag, data)
	return &Request{comm: c, sent: true, done: true}
}

// Irecv posts a non-blocking receive. The match is performed at Wait.
func (c *Comm) Irecv(src, tag int) Pending {
	return &Request{comm: c, src: src, tag: tag}
}

// Wait completes the request. For receive requests it blocks until a
// matching message arrives (or the timeout fires) and returns its
// payload; for send requests it returns immediately.
func (r *Request) Wait() ([]complex128, error) {
	if r.done {
		return r.data, r.err
	}
	r.data, r.err = r.comm.Recv(r.src, r.tag)
	r.done = true
	return r.data, r.err
}

// Recv blocks until a message with matching source and tag arrives and
// returns its payload. src may be AnySource. Matching is FIFO per
// (src, tag) pair.
func (c *Comm) Recv(src, tag int) ([]complex128, error) {
	box := c.world.boxes[c.rank]
	deadline := time.Now().Add(c.world.timeout)
	for {
		box.mu.Lock()
		for i, m := range box.queue {
			if (src == AnySource || m.Src == src) && m.Tag == tag {
				box.queue = append(box.queue[:i], box.queue[i+1:]...)
				box.mu.Unlock()
				return m.Data, nil
			}
		}
		box.mu.Unlock()
		wait := time.Until(deadline)
		if wait <= 0 {
			return nil, fmt.Errorf("%w: rank %d waiting for src=%d tag=%d",
				ErrTimeout, c.rank, src, tag)
		}
		timer := time.NewTimer(wait)
		select {
		case <-box.signal:
			timer.Stop()
		case <-timer.C:
			return nil, fmt.Errorf("%w: rank %d waiting for src=%d tag=%d",
				ErrTimeout, c.rank, src, tag)
		}
	}
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() error {
	w := c.world
	w.barrierMu.Lock()
	gen := w.barrierGen
	w.barrierCnt++
	if w.barrierCnt == w.size {
		w.barrierCnt = 0
		w.barrierGen++
		close(w.barrierCh)
		w.barrierCh = make(chan struct{})
		w.barrierMu.Unlock()
		return nil
	}
	ch := w.barrierCh
	w.barrierMu.Unlock()

	timer := time.NewTimer(w.timeout)
	defer timer.Stop()
	select {
	case <-ch:
		return nil
	case <-timer.C:
		return fmt.Errorf("%w: rank %d in barrier generation %d", ErrTimeout, c.rank, gen)
	}
}

// AllreduceSum returns the sum of x across all ranks on every rank. The
// reduction is performed in rank order so results are bit-for-bit
// deterministic across runs regardless of goroutine scheduling.
func (c *Comm) AllreduceSum(x float64) (float64, error) {
	w := c.world
	w.reduceMu.Lock()
	if w.reduceVals == nil {
		w.reduceVals = make([]float64, w.size)
	}
	w.reduceVals[c.rank] = x
	w.reduceMu.Unlock()
	if err := c.Barrier(); err != nil {
		return 0, err
	}
	w.reduceMu.Lock()
	var sum float64
	for _, v := range w.reduceVals {
		sum += v
	}
	gen := w.reduceGen
	w.reduceMu.Unlock()
	if err := c.Barrier(); err != nil {
		return 0, err
	}
	// The first rank through the second barrier resets the slots for
	// the next reduction; the generation counter guards double resets.
	w.reduceMu.Lock()
	if w.reduceGen == gen {
		for i := range w.reduceVals {
			w.reduceVals[i] = 0
		}
		w.reduceGen++
	}
	w.reduceMu.Unlock()
	return sum, nil
}

// BytesSent returns the total payload bytes sent across the world.
func (w *World) BytesSent() int64 { return w.bytesSent.Load() }

// MessagesSent returns the total message count across the world.
func (w *World) MessagesSent() int64 { return w.msgsSent.Load() }

// BytesReceivedBy returns payload bytes delivered into rank's mailbox.
func (w *World) BytesReceivedBy(rank int) int64 { return w.boxes[rank].bytesIn.Load() }

// World returns the communicator's world, exposing counters to the
// harness that launched Run via NewWorld + manual goroutines.
func (c *Comm) World() *World { return c.world }

// RunWorld executes fn on every rank of an existing world (the caller
// keeps the world handle for counter inspection).
func (w *World) RunAll(fn func(c *Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("simmpi: rank %d panicked: %v", rank, p)
				}
			}()
			errs[rank] = fn(&Comm{rank: rank, world: w})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
