package simmpi

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

const testTimeout = 5 * time.Second

func TestPingPong(t *testing.T) {
	err := Run(2, testTimeout, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []complex128{1 + 2i, 3})
			data, err := c.Recv(1, 8)
			if err != nil {
				return err
			}
			if len(data) != 1 || data[0] != 42 {
				return fmt.Errorf("rank 0 got %v", data)
			}
		} else {
			data, err := c.Recv(0, 7)
			if err != nil {
				return err
			}
			if len(data) != 2 || data[0] != 1+2i {
				return fmt.Errorf("rank 1 got %v", data)
			}
			c.Send(0, 8, []complex128{42})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	err := Run(2, testTimeout, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []complex128{1, 2, 3}
			c.Send(1, 0, buf)
			buf[0] = 99 // mutate after send; receiver must see original
			c.Send(1, 1, buf)
		} else {
			first, err := c.Recv(0, 0)
			if err != nil {
				return err
			}
			if first[0] != 1 {
				return fmt.Errorf("send did not copy: %v", first[0])
			}
			if _, err := c.Recv(0, 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	// A receiver asking for tag 2 first must get the tag-2 message even
	// though tag 1 arrived first.
	err := Run(2, testTimeout, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []complex128{1})
			c.Send(1, 2, []complex128{2})
		} else {
			d2, err := c.Recv(0, 2)
			if err != nil {
				return err
			}
			d1, err := c.Recv(0, 1)
			if err != nil {
				return err
			}
			if d2[0] != 2 || d1[0] != 1 {
				return fmt.Errorf("tag matching broken: %v %v", d1, d2)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerSenderAndTag(t *testing.T) {
	err := Run(2, testTimeout, func(c *Comm) error {
		const n = 100
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 0, []complex128{complex(float64(i), 0)})
			}
		} else {
			for i := 0; i < n; i++ {
				d, err := c.Recv(0, 0)
				if err != nil {
					return err
				}
				if real(d[0]) != float64(i) {
					return fmt.Errorf("out of order: got %v want %d", d[0], i)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySource(t *testing.T) {
	err := Run(4, testTimeout, func(c *Comm) error {
		if c.Rank() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 3; i++ {
				d, err := c.Recv(AnySource, 5)
				if err != nil {
					return err
				}
				seen[int(real(d[0]))] = true
			}
			if len(seen) != 3 {
				return fmt.Errorf("expected 3 distinct sources, got %v", seen)
			}
		} else {
			c.Send(0, 5, []complex128{complex(float64(c.Rank()), 0)})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvWait(t *testing.T) {
	err := Run(2, testTimeout, func(c *Comm) error {
		other := 1 - c.Rank()
		// Symmetric non-blocking exchange — would deadlock with
		// synchronous sends, must succeed with isend/irecv (the APPP
		// communication pattern).
		req := c.Irecv(other, 3)
		s := c.Isend(other, 3, []complex128{complex(float64(c.Rank()), 0)})
		if _, err := s.Wait(); err != nil {
			return err
		}
		d, err := req.Wait()
		if err != nil {
			return err
		}
		if real(d[0]) != float64(other) {
			return fmt.Errorf("got %v want %d", d[0], other)
		}
		// Waiting twice is idempotent.
		d2, err := req.Wait()
		if err != nil || real(d2[0]) != float64(other) {
			return fmt.Errorf("second Wait: %v %v", d2, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTimeoutDetectsDeadlock(t *testing.T) {
	start := time.Now()
	err := Run(2, 100*time.Millisecond, func(c *Comm) error {
		if c.Rank() == 0 {
			_, err := c.Recv(1, 9) // never sent
			return err
		}
		return nil
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("expected ErrTimeout, got %v", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("timeout took too long")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	var before, after atomic.Int32
	err := Run(8, testTimeout, func(c *Comm) error {
		before.Add(1)
		if err := c.Barrier(); err != nil {
			return err
		}
		// After the barrier, every rank must have incremented.
		if before.Load() != 8 {
			return fmt.Errorf("rank %d passed barrier with before=%d", c.Rank(), before.Load())
		}
		after.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after.Load() != 8 {
		t.Fatal("not all ranks completed")
	}
}

func TestBarrierReusable(t *testing.T) {
	err := Run(4, testTimeout, func(c *Comm) error {
		for i := 0; i < 50; i++ {
			if err := c.Barrier(); err != nil {
				return fmt.Errorf("iteration %d: %w", i, err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSum(t *testing.T) {
	err := Run(6, testTimeout, func(c *Comm) error {
		for iter := 0; iter < 10; iter++ {
			x := float64(c.Rank() + 1 + iter)
			sum, err := c.AllreduceSum(x)
			if err != nil {
				return err
			}
			want := float64(21 + 6*iter) // sum(1..6) + 6*iter
			if sum != want {
				return fmt.Errorf("iter %d rank %d: sum=%g want %g", iter, c.Rank(), sum, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestByteAndMessageCounters(t *testing.T) {
	w := NewWorld(2, testTimeout)
	err := w.RunAll(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]complex128, 10)) // 160 bytes
			c.Send(1, 1, make([]complex128, 5))  // 80 bytes
		} else {
			if _, err := c.Recv(0, 0); err != nil {
				return err
			}
			if _, err := c.Recv(0, 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.BytesSent(); got != 240 {
		t.Fatalf("BytesSent = %d, want 240", got)
	}
	if got := w.MessagesSent(); got != 2 {
		t.Fatalf("MessagesSent = %d, want 2", got)
	}
	if got := w.BytesReceivedBy(1); got != 240 {
		t.Fatalf("BytesReceivedBy(1) = %d, want 240", got)
	}
	if got := w.BytesReceivedBy(0); got != 0 {
		t.Fatalf("BytesReceivedBy(0) = %d, want 0", got)
	}
}

func TestRankPanicBecomesError(t *testing.T) {
	err := Run(3, testTimeout, func(c *Comm) error {
		if c.Rank() == 2 {
			panic("boom")
		}
		return nil
	})
	if err == nil || !contains(err.Error(), "rank 2 panicked") {
		t.Fatalf("got %v", err)
	}
}

func TestSendInvalidRankPanics(t *testing.T) {
	err := Run(1, testTimeout, func(c *Comm) error {
		c.Send(5, 0, nil)
		return nil
	})
	if err == nil {
		t.Fatal("send to invalid rank must error via panic capture")
	}
}

func TestRingAllToAll(t *testing.T) {
	// Classic ring: each rank sends to (rank+1)%n and receives from
	// (rank-1+n)%n, n times, accumulating all values.
	const n = 8
	err := Run(n, testTimeout, func(c *Comm) error {
		next := (c.Rank() + 1) % n
		prev := (c.Rank() + n - 1) % n
		val := complex(float64(c.Rank()), 0)
		var acc complex128
		cur := val
		for step := 0; step < n; step++ {
			acc += cur
			req := c.Irecv(prev, step)
			c.Isend(next, step, []complex128{cur})
			d, err := req.Wait()
			if err != nil {
				return err
			}
			cur = d[0]
		}
		if real(acc) != float64(n*(n-1)/2) {
			return fmt.Errorf("rank %d acc=%v", c.Rank(), acc)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		})())
}

func TestNewWorldInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("must panic")
		}
	}()
	NewWorld(0, testTimeout)
}
