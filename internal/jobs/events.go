package jobs

import (
	"time"

	"ptychopath/internal/obs/flight"
)

// Event is one entry of a job's live feed — what the SSE endpoint
// (GET /jobs/{id}/events) streams to a beamline GUI so it can follow a
// reconstruction without polling.
//
// Types:
//
//	state      lifecycle transition; State holds the new state
//	iteration  an iteration completed; Iter (completed count) and Cost
//	frames     ingest accepted a chunk; Frames is the running total
//	fold       the engine folded arrivals; Frames is the active set
//	eof        the producer closed the stream
//	snapshot   a preview/checkpoint was published; Iter is its
//	           completed-iteration count
type Event struct {
	Type   string    `json:"type"`
	Job    string    `json:"job"`
	State  string    `json:"state,omitempty"`
	Iter   int       `json:"iter,omitempty"`
	Cost   float64   `json:"cost,omitempty"`
	Frames int       `json:"frames,omitempty"`
	Time   time.Time `json:"time"`
}

// Subscribe registers a listener for the job's events. The returned
// channel is buffered (buffer entries; 64 when <= 0) and NEVER blocks
// the reconstruction: when a consumer falls behind, events are dropped
// — the feed is advisory, the polling API is the source of truth. The
// channel closes when the job reaches a terminal state (after a final
// "state" event) or when the cancel function runs. Subscribing to an
// already-terminal job yields the final state event and an immediately
// closed channel.
func (j *Job) Subscribe(buffer int) (<-chan Event, func()) {
	if buffer <= 0 {
		buffer = 64
	}
	ch := make(chan Event, buffer)
	j.mu.Lock()
	if j.state.Terminal() {
		ch <- Event{Type: "state", Job: j.id, State: j.state.String(), Time: time.Now()}
		close(ch)
		j.mu.Unlock()
		return ch, func() {}
	}
	if j.subs == nil {
		j.subs = make(map[int]chan Event)
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	j.mu.Unlock()
	cancel := func() {
		j.mu.Lock()
		if c, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(c)
		}
		j.mu.Unlock()
	}
	return ch, cancel
}

// publishLocked fans an event out to every subscriber without
// blocking, and lands it in the job's flight recorder — the recorder
// keeps the tail of the feed even when nobody is subscribed, which is
// exactly the post-mortem case GET /v1/jobs/{id}/debug serves. Callers
// hold j.mu.
func (j *Job) publishLocked(e Event) {
	e.Job = j.id
	e.Time = time.Now()
	j.rec.Record(flight.Event{
		Time: e.Time, Kind: e.Type, State: e.State,
		Iter: e.Iter, Cost: e.Cost, Frames: e.Frames,
	})
	if len(j.subs) == 0 {
		return
	}
	for _, ch := range j.subs {
		select {
		case ch <- e:
		default: // slow consumer: drop, never stall the solver
		}
	}
}

// closeSubsLocked ends every subscription (terminal state reached).
// Callers hold j.mu and have already published the final state event.
func (j *Job) closeSubsLocked() {
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
}
