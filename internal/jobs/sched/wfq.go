package sched

import "container/heap"

// minCost floors an item's virtual cost: a job with no runtime
// prediction (streaming, empty dataset) still advances its tenant's
// virtual clock, so it cannot submit for free forever.
const minCost = 1e-3

// wfq is start-time fair queueing over two strict priority lanes.
//
// Each lane keeps a virtual clock; each tenant keeps the virtual
// finish tag of its last accepted item (per lane, so a tenant's bulk
// backlog cannot push its interactive work into the future). An
// arriving item is tagged start = max(lane clock, tenant last finish)
// and finish = start + cost/weight; Pop takes the smallest start tag
// (submission order breaks ties) and advances the lane clock to it.
// Backlogged tenants therefore interleave in proportion to their
// weights — a tenant with weight 3 accrues virtual time a third as
// fast per second of predicted work as a tenant with weight 1 — while
// an idle tenant's first submission starts at the current clock
// instead of being punished for its idle past (the max() is exactly
// the SFQ idle-tenant rule).
//
// The Interactive lane drains strictly before Bulk: fairness applies
// within a class, priority between classes.
type wfq struct {
	cfg   Config
	seq2i map[string]*Item // id → item, for Remove
	lanes [2]wfqLane       // indexed by Class
}

type wfqLane struct {
	virt       float64            // lane virtual clock
	lastFinish map[string]float64 // tenant → virtual finish of last push
	heap       itemHeap
}

func newWFQ(cfg Config) *wfq {
	q := &wfq{cfg: cfg, seq2i: map[string]*Item{}}
	for i := range q.lanes {
		q.lanes[i].lastFinish = map[string]float64{}
	}
	return q
}

func (q *wfq) Push(it *Item) {
	lane := &q.lanes[laneIndex(it.Class)]
	cost := it.Cost
	if cost <= 0 {
		cost = minCost
	}
	start := lane.virt
	if lf := lane.lastFinish[it.Tenant]; lf > start {
		start = lf
	}
	it.start = start
	lane.lastFinish[it.Tenant] = start + cost/q.cfg.Weight(it.Tenant)
	heap.Push(&lane.heap, it)
	q.seq2i[it.ID] = it
}

func (q *wfq) Pop() (*Item, bool) {
	// Interactive before Bulk, always.
	for i := len(q.lanes) - 1; i >= 0; i-- {
		lane := &q.lanes[i]
		if lane.heap.Len() == 0 {
			continue
		}
		it := heap.Pop(&lane.heap).(*Item)
		if it.start > lane.virt {
			lane.virt = it.start
		}
		delete(q.seq2i, it.ID)
		return it, true
	}
	return nil, false
}

// Remove deletes a queued item. The tenant's virtual finish tag is
// deliberately NOT rolled back: the tag encodes work the tenant asked
// for, and un-asking must not let it line-jump work it submitted
// after the removed item.
func (q *wfq) Remove(id string) bool {
	it, ok := q.seq2i[id]
	if !ok {
		return false
	}
	delete(q.seq2i, id)
	lane := &q.lanes[laneIndex(it.Class)]
	for i, h := range lane.heap {
		if h == it {
			heap.Remove(&lane.heap, i)
			return true
		}
	}
	return false
}

func (q *wfq) Len() int { return q.lanes[0].heap.Len() + q.lanes[1].heap.Len() }

func (q *wfq) Items() []*Item {
	out := make([]*Item, 0, q.Len())
	for i := len(q.lanes) - 1; i >= 0; i-- {
		lane := append([]*Item(nil), q.lanes[i].heap...)
		sortByStart(lane)
		out = append(out, lane...)
	}
	return out
}

func (q *wfq) Policy() string { return "wfq" }

func laneIndex(c Class) int {
	if c == Interactive {
		return 1
	}
	return 0
}

// itemHeap orders by (virtual start, seq).
type itemHeap []*Item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(a, b int) bool {
	if h[a].start != h[b].start {
		return h[a].start < h[b].start
	}
	return h[a].Seq < h[b].Seq
}
func (h itemHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }

func (h *itemHeap) Push(x any) { *h = append(*h, x.(*Item)) }

func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}
