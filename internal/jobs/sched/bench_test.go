package sched

import (
	"fmt"
	"testing"
)

// The scheduler runs under the service mutex on the submit path, so
// its per-decision overhead is a latency tax on every enqueue and
// every worker dispatch. These benchmarks pin it (gated in CI by
// scripts/benchguard.sh against BENCH_2026-08-08_sched_overhead.json).

func benchQueue(b *testing.B, policy string, tenants int) {
	cfg := Config{Policy: policy, Tenants: map[string]TenantConfig{}}
	for i := 0; i < tenants; i++ {
		cfg.Tenants[fmt.Sprintf("tenant-%d", i)] = TenantConfig{Weight: float64(i%4 + 1)}
	}
	if err := cfg.SetDefaults(); err != nil {
		b.Fatal(err)
	}
	q, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, tenants)
	ids := make([]string, 256)
	for i := range names {
		names[i] = fmt.Sprintf("tenant-%d", i)
	}
	for i := range ids {
		ids[i] = fmt.Sprintf("job-%04d", i)
	}
	items := make([]Item, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		// One decision = push into a 255-deep backlog + pop: the
		// steady-state cost of a full queue turning over.
		it := &items[n%256]
		*it = Item{ID: ids[n%256], Tenant: names[n%tenants],
			Class: Class(n % 2), Cost: float64(n%7 + 1), Seq: uint64(n)}
		q.Push(it)
		if q.Len() >= 256 {
			q.Pop()
		}
	}
}

func BenchmarkSchedDecisionFIFO(b *testing.B)         { benchQueue(b, "fifo", 1) }
func BenchmarkSchedDecisionWFQ2Tenants(b *testing.B)  { benchQueue(b, "wfq", 2) }
func BenchmarkSchedDecisionWFQ64Tenants(b *testing.B) { benchQueue(b, "wfq", 64) }
