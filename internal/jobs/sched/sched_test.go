package sched

import (
	"fmt"
	"testing"
)

func mustNew(t *testing.T, cfg Config) Queue {
	t.Helper()
	if err := cfg.SetDefaults(); err != nil {
		t.Fatal(err)
	}
	q, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func push(q Queue, id, tenant string, class Class, cost float64, seq uint64) {
	q.Push(&Item{ID: id, Tenant: tenant, Class: class, Cost: cost, Seq: seq})
}

func drain(t *testing.T, q Queue) []string {
	t.Helper()
	var out []string
	for {
		it, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, it.ID)
	}
}

func TestParseClass(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Class
		ok   bool
	}{
		{"", Bulk, true}, {"bulk", Bulk, true}, {"interactive", Interactive, true},
		{"urgent", Bulk, false}, {"BULK", Bulk, false},
	} {
		got, ok := ParseClass(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("ParseClass(%q) = %v, %v; want %v, %v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
	if Bulk.String() != "bulk" || Interactive.String() != "interactive" {
		t.Errorf("class names: %q / %q", Bulk, Interactive)
	}
}

func TestFIFOOrderAndRemove(t *testing.T) {
	q := mustNew(t, Config{})
	if q.Policy() != "fifo" {
		t.Fatalf("default policy %q, want fifo", q.Policy())
	}
	// FIFO ignores class, tenant and cost — arrival order only.
	push(q, "a", "t1", Bulk, 9, 1)
	push(q, "b", "t2", Interactive, 1, 2)
	push(q, "c", "t1", Bulk, 1, 3)
	if !q.Remove("b") || q.Remove("b") {
		t.Fatal("Remove must delete exactly once")
	}
	if q.Len() != 2 {
		t.Fatalf("len %d, want 2", q.Len())
	}
	if got := drain(t, q); fmt.Sprint(got) != "[a c]" {
		t.Fatalf("drain order %v, want [a c]", got)
	}
}

func TestWFQInteractiveBeforeBulk(t *testing.T) {
	q := mustNew(t, Config{Policy: "wfq"})
	push(q, "b1", "t", Bulk, 1, 1)
	push(q, "b2", "t", Bulk, 1, 2)
	push(q, "i1", "t", Interactive, 100, 3)
	if got := drain(t, q); fmt.Sprint(got) != "[i1 b1 b2]" {
		t.Fatalf("drain order %v, want interactive first", got)
	}
}

func TestWFQWeightedInterleave(t *testing.T) {
	// Tenant a (weight 3) and tenant b (weight 1) each backlog six
	// equal-cost jobs; the drain order must give a three slots for
	// every one of b's.
	q := mustNew(t, Config{Policy: "wfq", Tenants: map[string]TenantConfig{
		"a": {Weight: 3}, "b": {Weight: 1},
	}})
	seq := uint64(0)
	for i := 0; i < 6; i++ {
		seq++
		push(q, fmt.Sprintf("a%d", i), "a", Bulk, 1, seq)
	}
	for i := 0; i < 6; i++ {
		seq++
		push(q, fmt.Sprintf("b%d", i), "b", Bulk, 1, seq)
	}
	order := drain(t, q)
	// Prefix shares: after every 4 dispatches the ratio is exactly 3:1.
	counts := map[byte]int{}
	for i, id := range order {
		counts[id[0]]++
		if n := i + 1; n%4 == 0 && n <= 8 {
			if counts['a'] != 3*n/4 || counts['b'] != n/4 {
				t.Fatalf("after %d dispatches: a=%d b=%d (order %v), want 3:1",
					n, counts['a'], counts['b'], order)
			}
		}
	}
	if counts['a'] != 6 || counts['b'] != 6 {
		t.Fatalf("drain lost items: %v", order)
	}
}

func TestWFQIdleTenantNotPunished(t *testing.T) {
	// Tenant a burns through virtual time; a late arrival from idle
	// tenant b must start at the current clock, not at zero, and not
	// behind a's entire backlog.
	q := mustNew(t, Config{Policy: "wfq"})
	for i := 0; i < 10; i++ {
		push(q, fmt.Sprintf("a%d", i), "a", Bulk, 1, uint64(i+1))
	}
	// Drain half; the lane clock has advanced.
	for i := 0; i < 5; i++ {
		q.Pop()
	}
	push(q, "b0", "b", Bulk, 1, 11)
	order := drain(t, q)
	if order[0] != "b0" && order[1] != "b0" {
		t.Fatalf("idle tenant's first job dispatched at %v, want near the front", order)
	}
}

func TestWFQRemoveDoesNotRefund(t *testing.T) {
	q := mustNew(t, Config{Policy: "wfq"})
	push(q, "a0", "a", Bulk, 10, 1)
	push(q, "b0", "b", Bulk, 1, 2)
	if !q.Remove("a0") {
		t.Fatal("remove failed")
	}
	// a's next push still pays for the removed a0: its start tag is
	// a0's finish, so b0 dispatches first.
	push(q, "a1", "a", Bulk, 1, 3)
	if got := drain(t, q); fmt.Sprint(got) != "[b0 a1]" {
		t.Fatalf("drain order %v, want [b0 a1] (no refund for removed work)", got)
	}
}

func TestWFQZeroCostClamped(t *testing.T) {
	q := mustNew(t, Config{Policy: "wfq"})
	for i := 0; i < 3; i++ {
		push(q, fmt.Sprintf("z%d", i), "z", Bulk, 0, uint64(i+1))
	}
	push(q, "p0", "p", Bulk, 0, 4)
	// All zero-cost: clamping keeps the tenant clocks moving, so p's
	// first item beats z's third (start tags 0 vs 2*minCost).
	order := drain(t, q)
	if len(order) != 4 {
		t.Fatalf("drain %v", order)
	}
	if order[1] != "p0" && order[0] != "p0" {
		t.Fatalf("zero-cost items starved tenant p: %v", order)
	}
}

func TestItemsApproximatesDispatchOrder(t *testing.T) {
	for _, policy := range []string{"fifo", "wfq"} {
		q := mustNew(t, Config{Policy: policy})
		push(q, "b1", "t1", Bulk, 2, 1)
		push(q, "i1", "t2", Interactive, 1, 2)
		push(q, "b2", "t1", Bulk, 2, 3)
		items := q.Items()
		if len(items) != 3 || q.Len() != 3 {
			t.Fatalf("%s: Items() len %d", policy, len(items))
		}
		got := make([]string, len(items))
		for i, it := range items {
			got[i] = it.ID
		}
		want := "[b1 i1 b2]"
		if policy == "wfq" {
			want = "[i1 b1 b2]"
		}
		if fmt.Sprint(got) != want {
			t.Fatalf("%s: Items() order %v, want %s", policy, got, want)
		}
		// Items must match what Pop actually does.
		if d := drain(t, q); fmt.Sprint(d) != want {
			t.Fatalf("%s: drain %v disagrees with Items %v", policy, d, got)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Policy: "lifo"},
		{DefaultWeight: -1},
		{InteractiveReserve: -1},
		{MaxTenants: -2},
		{Tenants: map[string]TenantConfig{"x": {Weight: -1}}},
		{Tenants: map[string]TenantConfig{"x": {MaxActive: -1}}},
		{Tenants: map[string]TenantConfig{"x": {IngestBytes: -1}}},
	}
	for i, cfg := range bad {
		if err := cfg.SetDefaults(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	var cfg Config
	if err := cfg.SetDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.Policy != "fifo" || cfg.DefaultWeight != 1 || cfg.MaxTenants != 64 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if w := cfg.Weight("unknown"); w != 1 {
		t.Fatalf("unknown tenant weight %g, want default 1", w)
	}
}
