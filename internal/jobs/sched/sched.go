// Package sched is the scheduling seam of the jobs service: a
// pluggable ordering policy for the bounded queue between Submit and
// the worker pool.
//
// The service used to hard-code a FIFO slice. Package sched keeps that
// behavior as the zero-config default (Policy "fifo") and adds a
// weighted-fair policy ("wfq") for multi-tenant deployments:
// start-time fair queueing over per-tenant virtual clocks, weighted by
// configured tenant shares, with the job's predicted runtime (the
// perfmodel estimate the analysis layer already computes) as its
// virtual cost, and two strict priority classes — Interactive items
// always dispatch before Bulk ones.
//
// A Queue is a pure ordering policy: it is NOT safe for concurrent use
// and holds no locks of its own. The jobs service calls it under its
// own mutex, exactly where the FIFO slice used to live, so admission
// checks and ordering stay in one critical section.
package sched

import (
	"fmt"
	"sort"
)

// Class is a scheduling priority class.
type Class int

const (
	// Bulk is the default class: throughput work that yields to
	// interactive jobs.
	Bulk Class = iota
	// Interactive is the latency-sensitive class: always dispatched
	// before Bulk, and (under the wfq policy) allowed to preempt a
	// running Bulk job at its next iteration boundary.
	Interactive
)

// String returns the wire name of the class.
func (c Class) String() string {
	if c == Interactive {
		return "interactive"
	}
	return "bulk"
}

// ParseClass maps a wire priority name to its Class. The empty string
// is Bulk (the default); unknown names return false.
func ParseClass(s string) (Class, bool) {
	switch s {
	case "", "bulk":
		return Bulk, true
	case "interactive":
		return Interactive, true
	}
	return Bulk, false
}

// Item is one queued unit of work. The scheduler never looks inside
// Payload; the jobs service stores its *Job there.
type Item struct {
	// ID identifies the item for Remove.
	ID string
	// Tenant keys the fair-share accounting.
	Tenant string
	// Class is the item's priority class.
	Class Class
	// Cost is the item's virtual cost in (predicted) seconds of work.
	// Non-positive costs are clamped to a small floor so a missing
	// prediction cannot make an item infinitely cheap.
	Cost float64
	// Seq is a service-assigned monotonic sequence number: the
	// submission order, used as the deterministic tie-break.
	Seq uint64
	// Payload is the scheduled work, opaque to the policy.
	Payload any

	// start is the virtual start tag the wfq policy assigned at Push.
	start float64
}

// Queue is the pluggable ordering policy. Implementations are not
// thread-safe; the caller serializes access (the jobs service calls
// every method under its service mutex).
type Queue interface {
	// Push adds an item.
	Push(*Item)
	// Pop removes and returns the next item to dispatch; false when
	// empty.
	Pop() (*Item, bool)
	// Remove deletes the item with the given ID (cancellation while
	// queued); false when absent.
	Remove(id string) bool
	// Len returns the number of queued items.
	Len() int
	// Items returns the queued items in approximate dispatch order —
	// the order Pop would drain them if nothing else arrived. Used to
	// derive honest Retry-After estimates; the returned slice is fresh
	// and the caller may not mutate the items.
	Items() []*Item
	// Policy names the active policy ("fifo" or "wfq").
	Policy() string
}

// TenantConfig is one tenant's scheduling contract.
type TenantConfig struct {
	// Weight is the tenant's fair share relative to other tenants
	// (wfq policy). Zero means Config.DefaultWeight.
	Weight float64
	// MaxActive caps the tenant's in-flight (queued + running) jobs;
	// submissions beyond it are rejected with a quota error. 0 means
	// unlimited.
	MaxActive int
	// IngestBytes caps the bytes a tenant's live streaming jobs may
	// hold in their ingest buffers; appends beyond it are rejected
	// with a quota error. 0 means unlimited.
	IngestBytes int64
}

// Config selects and parameterizes the policy.
type Config struct {
	// Policy is "fifo" (default) or "wfq".
	Policy string
	// DefaultWeight is the share of tenants without an explicit
	// TenantConfig. Default 1.
	DefaultWeight float64
	// Tenants maps tenant names (API keys) to their contracts. Tenants
	// not listed get DefaultWeight and no caps.
	Tenants map[string]TenantConfig
	// InteractiveReserve holds back this many queue slots for
	// Interactive submissions: Bulk items are rejected queue-full at
	// depth QueueDepth-InteractiveReserve, Interactive ones at the
	// full depth — load shedding drops bulk before interactive.
	// Default 0 (no reservation; single-class behavior unchanged).
	InteractiveReserve int
	// MaxTenants bounds the metric label cardinality: the first
	// MaxTenants distinct tenants get their own per-tenant metric
	// rows, later ones aggregate under the label "other". Default 64.
	MaxTenants int
}

// SetDefaults normalizes the config in place and validates it.
func (c *Config) SetDefaults() error {
	if c.Policy == "" {
		c.Policy = "fifo"
	}
	if c.Policy != "fifo" && c.Policy != "wfq" {
		return fmt.Errorf("sched: unknown policy %q (want fifo or wfq)", c.Policy)
	}
	if c.DefaultWeight == 0 {
		c.DefaultWeight = 1
	}
	if c.DefaultWeight < 0 {
		return fmt.Errorf("sched: default weight must be positive, got %g", c.DefaultWeight)
	}
	if c.MaxTenants == 0 {
		c.MaxTenants = 64
	}
	if c.MaxTenants < 0 {
		return fmt.Errorf("sched: max tenants must be positive, got %d", c.MaxTenants)
	}
	if c.InteractiveReserve < 0 {
		return fmt.Errorf("sched: interactive reserve must be non-negative, got %d", c.InteractiveReserve)
	}
	for name, tc := range c.Tenants {
		if tc.Weight < 0 {
			return fmt.Errorf("sched: tenant %q weight must be non-negative, got %g", name, tc.Weight)
		}
		if tc.MaxActive < 0 {
			return fmt.Errorf("sched: tenant %q max-active must be non-negative, got %d", name, tc.MaxActive)
		}
		if tc.IngestBytes < 0 {
			return fmt.Errorf("sched: tenant %q ingest quota must be non-negative, got %d", name, tc.IngestBytes)
		}
	}
	return nil
}

// Weight returns the effective share of a tenant.
func (c *Config) Weight(tenant string) float64 {
	if tc, ok := c.Tenants[tenant]; ok && tc.Weight > 0 {
		return tc.Weight
	}
	return c.DefaultWeight
}

// New builds the queue the config selects. The config must already be
// normalized with SetDefaults.
func New(cfg Config) (Queue, error) {
	switch cfg.Policy {
	case "", "fifo":
		return &fifo{}, nil
	case "wfq":
		return newWFQ(cfg), nil
	}
	return nil, fmt.Errorf("sched: unknown policy %q", cfg.Policy)
}

// sortByStart orders items by (virtual start, seq) — the wfq dispatch
// order within one class lane.
func sortByStart(items []*Item) {
	sort.Slice(items, func(a, b int) bool {
		if items[a].start != items[b].start {
			return items[a].start < items[b].start
		}
		return items[a].Seq < items[b].Seq
	})
}
