package sched

// fifo is the historical policy: strict arrival order, classes and
// tenants ignored. It reproduces the service's original bounded-slice
// behavior exactly, so a zero-config service schedules as it always
// did.
type fifo struct {
	items []*Item
}

func (q *fifo) Push(it *Item) { q.items = append(q.items, it) }

func (q *fifo) Pop() (*Item, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	it := q.items[0]
	q.items = q.items[1:]
	return it, true
}

func (q *fifo) Remove(id string) bool {
	for i, it := range q.items {
		if it.ID == id {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	return false
}

func (q *fifo) Len() int { return len(q.items) }

func (q *fifo) Items() []*Item { return append([]*Item(nil), q.items...) }

func (q *fifo) Policy() string { return "fifo" }
