package jobs

// Crash-recovery matrix: kill the store's filesystem at every
// interesting point of the job lifecycle, restart the service on the
// same state directory, and require the recovered run to converge to
// the SAME OBJECT BYTES an uninterrupted run produces. The serial
// algorithm is deterministic, datasets round-trip bit-exactly through
// the spool, and checkpoints hold the exact object — so "recovered"
// is not "approximately resumed", it is bit-identical.

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"ptychopath/internal/dataio"
	"ptychopath/internal/jobs/sched"
	"ptychopath/internal/jobs/store"
	"ptychopath/internal/jobs/store/faultfs"

	"path/filepath"
)

// life is one process lifetime of a durable service: a fault-injected
// filesystem under a WAL store under a service, all on dir.
type life struct {
	t     *testing.T
	fault *faultfs.Fault
	st    *store.WAL
	svc   *Service
}

// openLife starts a service on dir's WAL through a fresh fault
// injector. Every call with the same dir is one more process lifetime
// over the same durable state.
func openLife(t *testing.T, dir string, cfg Config) *life {
	t.Helper()
	fault := faultfs.Wrap(faultfs.OS{})
	st, err := store.OpenWAL(store.WALConfig{Dir: dir, FS: fault})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = st
	cfg.SpoolDir = filepath.Join(dir, "checkpoints")
	svc, err := NewService(cfg)
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	l := &life{t: t, fault: fault, st: st, svc: svc}
	t.Cleanup(l.stop) // idempotent; after crash() it is a no-op
	return l
}

// crash kills the filesystem — every byte written so far stays, every
// write from here on fails, exactly as if the process had died this
// instant — then tears down the in-process half. Shutdown (not Close)
// because a blocked streaming job would otherwise drain forever; its
// post-kill terminal writes all fail, so the disk state stays frozen
// at the kill point.
func (l *life) crash() {
	l.fault.Kill()
	l.stop()
}

func (l *life) stop() {
	l.svc.Shutdown()
	l.st.Close()
}

// objectBytes serializes a job's final object: the in-memory snapshot
// when one exists, otherwise the checkpoint file (restored-history
// jobs hold no snapshot, only the file recovery preserved).
func objectBytes(t *testing.T, j *Job) []byte {
	t.Helper()
	slices, _ := j.Snapshot()
	if slices == nil {
		path, _ := j.CheckpointPath()
		if path == "" {
			t.Fatal("job has neither snapshot nor checkpoint")
		}
		var err error
		slices, err = dataio.ReadObjectFile(path)
		if err != nil {
			t.Fatalf("reading checkpoint: %v", err)
		}
	}
	var buf bytes.Buffer
	if err := dataio.WriteObject(&buf, slices); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// baselineBatch runs the job uninterrupted on an in-memory service and
// returns its final object bytes — the reference every crashed-and-
// recovered run must reproduce exactly.
func baselineBatch(t *testing.T, p Params) []byte {
	t.Helper()
	prob := tinyProblem(t)
	s := newTestService(t, Config{Workers: 1, QueueDepth: 4})
	j, err := s.Submit(prob, p)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "baseline done", func() bool { return j.State() == Done })
	return objectBytes(t, j)
}

// baselineStream mirrors the streaming crash phase without the crash:
// a blocker job pins the single worker, so the target receives its
// complete stream (all frames, then EOF) while still queued and runs
// one deterministic fold-then-tail once released. The crashed run is
// driven through the same single-fold shape, which is what makes the
// streaming comparison bit-exact.
func baselineStream(t *testing.T, p Params) []byte {
	t.Helper()
	prob := tinyProblem(t)
	hdr := dataio.HeaderFromProblem(prob)
	frames := dataio.FramesFromProblem(prob)
	s := newTestService(t, Config{Workers: 1, QueueDepth: 4})

	blocker, err := s.SubmitStreaming(hdr, Params{Algorithm: "serial", Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "baseline blocker running", func() bool { return blocker.State() == Running })
	j, err := s.SubmitStreaming(hdr, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendFrames(j.ID(), frames); err != nil {
		t.Fatal(err)
	}
	if err := s.CloseStream(j.ID()); err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(blocker.ID()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "baseline stream done", func() bool { return j.State() == Done })
	return objectBytes(t, j)
}

// TestCrashRecoveryMatrix is the headline acceptance test: one subtest
// per lifecycle phase, each crashing the store at that phase and
// requiring recovery to (1) bring the job back under its original ID
// with the right recovered_from marker and (2) finish with object
// bytes identical to an uninterrupted run.
func TestCrashRecoveryMatrix(t *testing.T) {
	t.Run("queued", func(t *testing.T) {
		p := Params{Algorithm: "serial", Iterations: 8, CheckpointEvery: 3}
		want := baselineBatch(t, p)
		dir := t.TempDir()

		l1 := openLife(t, dir, Config{Workers: 1, QueueDepth: 4})
		prob := tinyProblem(t)
		// Pin the single worker with a streaming job that never sees
		// EOF, so the target dies while still queued.
		blocker, err := l1.svc.SubmitStreaming(dataio.HeaderFromProblem(prob), Params{Algorithm: "serial", Iterations: 2})
		if err != nil {
			t.Fatal(err)
		}
		waitFor(t, "blocker running", func() bool { return blocker.State() == Running })
		j, err := l1.svc.Submit(prob, p)
		if err != nil {
			t.Fatal(err)
		}
		id := j.ID()
		if j.State() != Queued {
			t.Fatalf("target state %v, want queued", j.State())
		}
		l1.crash()

		l2 := openLife(t, dir, Config{Workers: 1, QueueDepth: 4})
		recovered, _, unrecoverable, records, torn := l2.svc.RecoveryStats()
		if recovered != 2 || unrecoverable != 0 || torn != 0 || records == 0 {
			t.Fatalf("recovery stats: recovered=%d unrecoverable=%d records=%d torn=%d",
				recovered, unrecoverable, records, torn)
		}
		// The blocker came back too (still EOF-less); release the pool.
		if err := l2.svc.Cancel(blocker.ID()); err != nil {
			t.Fatal(err)
		}
		rj, ok := l2.svc.Get(id)
		if !ok {
			t.Fatalf("job %s not recovered", id)
		}
		waitFor(t, "recovered job done", func() bool { return rj.State() == Done })
		info := rj.Info(-1)
		if info.RecoveredFrom != "scratch" {
			t.Errorf("recovered_from %q, want scratch", info.RecoveredFrom)
		}
		if info.Iter != 8 || len(info.CostHistory) != 8 {
			t.Errorf("recovered run iter=%d history=%d, want 8/8", info.Iter, len(info.CostHistory))
		}
		if got := objectBytes(t, rj); !bytes.Equal(got, want) {
			t.Errorf("recovered object differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
		}
	})

	t.Run("running_pre_checkpoint", func(t *testing.T) {
		// CheckpointEvery beyond the iteration count: the job crashes
		// mid-run with NO checkpoint on disk, so recovery restarts it
		// from scratch — and must still land on the same bytes.
		p := Params{Algorithm: "serial", Iterations: 500, CheckpointEvery: 100_000}
		want := baselineBatch(t, p)
		dir := t.TempDir()

		l1 := openLife(t, dir, Config{Workers: 1, QueueDepth: 4})
		j, err := l1.svc.Submit(tinyProblem(t), p)
		if err != nil {
			t.Fatal(err)
		}
		id := j.ID()
		waitFor(t, "target mid-run", func() bool { return j.Info(0).Iter >= 2 })
		l1.crash()
		if j.Info(0).Iter >= 500 {
			t.Fatal("job completed before the crash; nothing was interrupted")
		}

		l2 := openLife(t, dir, Config{Workers: 1, QueueDepth: 4})
		rj, ok := l2.svc.Get(id)
		if !ok {
			t.Fatalf("job %s not recovered", id)
		}
		waitFor(t, "recovered job done", func() bool { return rj.State() == Done })
		info := rj.Info(-1)
		if info.RecoveredFrom != "scratch" {
			t.Errorf("recovered_from %q, want scratch (no checkpoint existed)", info.RecoveredFrom)
		}
		if info.Iter != 500 {
			t.Errorf("recovered run iter=%d, want 500", info.Iter)
		}
		if got := objectBytes(t, rj); !bytes.Equal(got, want) {
			t.Errorf("recovered object differs from uninterrupted run")
		}
	})

	t.Run("running_post_checkpoint", func(t *testing.T) {
		p := Params{Algorithm: "serial", Iterations: 500, CheckpointEvery: 4}
		want := baselineBatch(t, p)
		dir := t.TempDir()

		l1 := openLife(t, dir, Config{Workers: 1, QueueDepth: 4})
		j, err := l1.svc.Submit(tinyProblem(t), p)
		if err != nil {
			t.Fatal(err)
		}
		id := j.ID()
		waitFor(t, "first checkpoint", func() bool { _, ck := j.CheckpointPath(); return ck >= 4 })
		l1.crash()
		if j.Info(0).Iter >= 500 {
			t.Fatal("job completed before the crash; nothing was interrupted")
		}

		l2 := openLife(t, dir, Config{Workers: 1, QueueDepth: 4})
		rj, ok := l2.svc.Get(id)
		if !ok {
			t.Fatalf("job %s not recovered", id)
		}
		waitFor(t, "recovered job done", func() bool { return rj.State() == Done })
		info := rj.Info(-1)
		// The exact checkpoint iteration races with the kill; what must
		// hold is that recovery warm-started from one, not from zero.
		if !strings.HasPrefix(info.RecoveredFrom, "checkpoint@") {
			t.Errorf("recovered_from %q, want checkpoint@k", info.RecoveredFrom)
		}
		if info.Iter != 500 {
			t.Errorf("recovered run iter=%d, want 500", info.Iter)
		}
		if got := objectBytes(t, rj); !bytes.Equal(got, want) {
			t.Errorf("warm-started object differs from uninterrupted run")
		}

		// The durability counters are on /metrics for this restart.
		var sb strings.Builder
		if err := l2.svc.WriteMetrics(&sb); err != nil {
			t.Fatal(err)
		}
		for _, m := range []string{
			"ptychoserve_jobs_recovered_total 1",
			"ptychoserve_wal_replay_records",
			"ptychoserve_wal_replay_torn 0",
		} {
			if !strings.Contains(sb.String(), m) {
				t.Errorf("metrics missing %q", m)
			}
		}
	})

	t.Run("streaming_mid_ingest", func(t *testing.T) {
		p := Params{Algorithm: "serial", Iterations: 6, FoldEvery: 1}
		want := baselineStream(t, p)
		dir := t.TempDir()
		prob := tinyProblem(t)
		hdr := dataio.HeaderFromProblem(prob)
		frames := dataio.FramesFromProblem(prob)

		l1 := openLife(t, dir, Config{Workers: 1, QueueDepth: 4})
		blocker, err := l1.svc.SubmitStreaming(hdr, Params{Algorithm: "serial", Iterations: 2})
		if err != nil {
			t.Fatal(err)
		}
		waitFor(t, "blocker running", func() bool { return blocker.State() == Running })
		j, err := l1.svc.SubmitStreaming(hdr, p)
		if err != nil {
			t.Fatal(err)
		}
		id := j.ID()
		// All frames land (acknowledged ⇒ spooled and synced), but the
		// producer dies before EOF: the stream is mid-ingest on disk.
		if _, err := l1.svc.AppendFrames(id, frames); err != nil {
			t.Fatal(err)
		}
		l1.crash()

		l2 := openLife(t, dir, Config{Workers: 1, QueueDepth: 4})
		rj, ok := l2.svc.Get(id)
		if !ok {
			t.Fatalf("job %s not recovered", id)
		}
		info := rj.Info(0)
		if info.RecoveredFrom != "stream" || info.Frames != len(frames) || info.EOF {
			t.Fatalf("recovered stream: recovered_from=%q frames=%d eof=%v, want stream/%d/false",
				info.RecoveredFrom, info.Frames, info.EOF, len(frames))
		}
		// The reconnecting producer finds its frames survived and only
		// has to close the stream; then release the worker.
		if err := l2.svc.CloseStream(id); err != nil {
			t.Fatal(err)
		}
		if err := l2.svc.Cancel(blocker.ID()); err != nil {
			t.Fatal(err)
		}
		waitFor(t, "recovered stream done", func() bool { return rj.State() == Done })
		fin := rj.Info(0)
		if fin.ActiveFrames != len(frames) || !fin.EOF {
			t.Errorf("final stream info: active=%d eof=%v", fin.ActiveFrames, fin.EOF)
		}
		if got := objectBytes(t, rj); !bytes.Equal(got, want) {
			t.Errorf("refolded object differs from uninterrupted run")
		}
	})

	t.Run("done", func(t *testing.T) {
		p := Params{Algorithm: "serial", Iterations: 6, CheckpointEvery: 2}
		dir := t.TempDir()

		l1 := openLife(t, dir, Config{Workers: 1, QueueDepth: 4})
		j, err := l1.svc.Submit(tinyProblem(t), p)
		if err != nil {
			t.Fatal(err)
		}
		id := j.ID()
		waitFor(t, "job done", func() bool { return j.State() == Done })
		want := objectBytes(t, j)
		wantInfo := j.Info(-1)
		l1.crash()

		l2 := openLife(t, dir, Config{Workers: 1, QueueDepth: 4})
		recovered, restored, _, _, _ := l2.svc.RecoveryStats()
		if recovered != 0 || restored != 1 {
			t.Fatalf("recovery stats: recovered=%d restored=%d, want 0/1 (history only)", recovered, restored)
		}
		rj, ok := l2.svc.Get(id)
		if !ok {
			t.Fatalf("job %s not restored", id)
		}
		info := rj.Info(-1)
		if info.State != "done" || info.Iter != wantInfo.Iter || info.Cost != wantInfo.Cost {
			t.Errorf("restored info %s iter=%d cost=%g, want %s/%d/%g",
				info.State, info.Iter, info.Cost, wantInfo.State, wantInfo.Iter, wantInfo.Cost)
		}
		if len(info.CostHistory) != len(wantInfo.CostHistory) {
			t.Errorf("restored history %d entries, want %d", len(info.CostHistory), len(wantInfo.CostHistory))
		}
		// The final object is still servable: restored history keeps no
		// in-memory snapshot, but its checkpoint file survived.
		if got := objectBytes(t, rj); !bytes.Equal(got, want) {
			t.Errorf("restored object differs from pre-crash object")
		}
	})
}

// TestShutdownCleanReopen is the graceful-stop half of durability: a
// Shutdown-ed service leaves a fully synced WAL, so the next start
// replays pure history — nothing re-enqueued, nothing torn, nothing
// lost.
func TestShutdownCleanReopen(t *testing.T) {
	dir := t.TempDir()
	l1 := openLife(t, dir, Config{Workers: 1, QueueDepth: 4})
	j, err := l1.svc.Submit(tinyProblem(t), Params{Algorithm: "serial", Iterations: 4, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job done", func() bool { return j.State() == Done })
	l1.stop() // Shutdown + store close, no fault injected

	l2 := openLife(t, dir, Config{Workers: 1, QueueDepth: 4})
	recovered, restored, unrecoverable, records, torn := l2.svc.RecoveryStats()
	if recovered != 0 || unrecoverable != 0 || torn != 0 {
		t.Fatalf("clean reopen did recovery work: recovered=%d unrecoverable=%d torn=%d",
			recovered, unrecoverable, torn)
	}
	if restored != 1 || records == 0 {
		t.Fatalf("clean reopen: restored=%d records=%d, want 1 restored from >0 records", restored, records)
	}
	if l2.svc.QueueDepth() != 0 {
		t.Fatalf("clean reopen re-enqueued %d jobs", l2.svc.QueueDepth())
	}
	// The reopened service is fully live: new work runs alongside the
	// restored history.
	j2, err := l2.svc.Submit(tinyProblem(t), Params{Algorithm: "serial", Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-reopen job done", func() bool { return j2.State() == Done })
}

// TestRecoveryPreservesTenantAndClass: the WAL submit record carries
// the scheduling identity, so a crashed queued job re-enqueues as the
// same tenant's work in the same priority class — an interactive job
// that was next in line before the crash is next in line after, and
// the restarted tenant ledger charges the right principal.
func TestRecoveryPreservesTenantAndClass(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, QueueDepth: 8, Sched: sched.Config{Policy: "wfq"}}

	l1 := openLife(t, dir, cfg)
	prob := tinyProblem(t)
	blocker, err := l1.svc.SubmitStreaming(dataio.HeaderFromProblem(prob), Params{Algorithm: "serial", Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "blocker running", func() bool { return blocker.State() == Running })
	// Two queued jobs: a bulk one submitted FIRST, then an interactive
	// one. WFQ dispatches the interactive lane first; recovery must
	// preserve that order, not fall back to arrival order.
	bulk, err := l1.svc.Submit(prob, Params{Algorithm: "serial", Iterations: 4, Tenant: "batchfarm"})
	if err != nil {
		t.Fatal(err)
	}
	vip, err := l1.svc.Submit(prob, Params{Algorithm: "serial", Iterations: 4, Tenant: "vip", Priority: "interactive"})
	if err != nil {
		t.Fatal(err)
	}
	l1.crash()

	l2 := openLife(t, dir, cfg)
	rvip, ok := l2.svc.Get(vip.ID())
	if !ok {
		t.Fatalf("interactive job %s not recovered", vip.ID())
	}
	rbulk, ok := l2.svc.Get(bulk.ID())
	if !ok {
		t.Fatalf("bulk job %s not recovered", bulk.ID())
	}
	vinfo, binfo := rvip.Info(0), rbulk.Info(0)
	if vinfo.Tenant != "vip" || vinfo.Priority != "interactive" {
		t.Errorf("recovered interactive job is tenant=%q priority=%q, want vip/interactive",
			vinfo.Tenant, vinfo.Priority)
	}
	if binfo.Tenant != "batchfarm" || binfo.Priority != "bulk" {
		t.Errorf("recovered bulk job is tenant=%q priority=%q, want batchfarm/bulk",
			binfo.Tenant, binfo.Priority)
	}
	if err := l2.svc.Cancel(blocker.ID()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "recovered jobs done", func() bool {
		return rvip.State() == Done && rbulk.State() == Done
	})
	if !rvip.Info(0).Started.Before(rbulk.Info(0).Started) {
		t.Errorf("recovered bulk job dispatched before the interactive one — class lost in replay")
	}
	// The restarted ledger accounts the recovered work to its tenants.
	var haveVip, haveBatch bool
	for _, ten := range l2.svc.Status().Tenants {
		switch ten.Name {
		case "vip":
			haveVip = true
		case "batchfarm":
			haveBatch = true
		}
	}
	if !haveVip || !haveBatch {
		t.Errorf("restarted tenant rollup lacks recovered principals (vip=%v batchfarm=%v)", haveVip, haveBatch)
	}
}

// TestParamsVersionTolerance pins the PTYWALv2 addendum both ways:
// records written before the scheduler existed (no tenant/priority
// keys) read back as anonymous bulk work, and an anonymous bulk
// submission still writes those keys as absent — the addendum does not
// fork the format for unkeyed traffic.
func TestParamsVersionTolerance(t *testing.T) {
	old := []byte(`{"algorithm":"serial","iterations":4,"step_size":0.01}`)
	p, err := unmarshalParams(old)
	if err != nil {
		t.Fatal(err)
	}
	if p.Tenant != AnonymousTenant || p.Priority != "bulk" {
		t.Errorf("pre-sched record reads tenant=%q priority=%q, want anonymous/bulk", p.Tenant, p.Priority)
	}

	raw := marshalParams(Params{Algorithm: "serial", Iterations: 4, Tenant: AnonymousTenant, Priority: "bulk"})
	if strings.Contains(string(raw), "tenant") || strings.Contains(string(raw), "priority") {
		t.Errorf("anonymous bulk record carries scheduler keys: %s", raw)
	}
	keyed := marshalParams(Params{Algorithm: "serial", Iterations: 4, Tenant: "vip", Priority: "interactive"})
	rt, err := unmarshalParams(keyed)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Tenant != "vip" || rt.Priority != "interactive" {
		t.Errorf("keyed record round-trips as tenant=%q priority=%q", rt.Tenant, rt.Priority)
	}
}

// TestIdempotencyAfterCrash: a claimed idempotency key holds across a
// crash — racing retries of the original submission against the
// restarted service all land on the original job, and none enqueues.
func TestIdempotencyAfterCrash(t *testing.T) {
	const key = "beamline-acq-42"
	dir := t.TempDir()

	l1 := openLife(t, dir, Config{Workers: 1, QueueDepth: 8})
	j, created, err := l1.svc.SubmitWithKey(tinyProblem(t), Params{Algorithm: "serial", Iterations: 4, CheckpointEvery: 2}, key)
	if err != nil || !created {
		t.Fatalf("first submit: created=%v err=%v", created, err)
	}
	id := j.ID()
	waitFor(t, "job done", func() bool { return j.State() == Done })
	l1.crash()

	l2 := openLife(t, dir, Config{Workers: 1, QueueDepth: 8})
	prob := tinyProblem(t)
	const racers = 8
	var wg sync.WaitGroup
	ids := make(chan string, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rj, created, err := l2.svc.SubmitWithKey(prob, Params{Algorithm: "serial", Iterations: 4}, key)
			if err != nil {
				t.Errorf("replayed submit: %v", err)
				return
			}
			if created {
				t.Error("replayed submit claims a fresh enqueue")
			}
			ids <- rj.ID()
		}()
	}
	wg.Wait()
	close(ids)
	for got := range ids {
		if got != id {
			t.Fatalf("replayed submit returned %s, want original %s", got, id)
		}
	}
	if n := len(l2.svc.List()); n != 1 {
		t.Fatalf("registry holds %d jobs after replayed retries, want 1", n)
	}
	// A different key is a different acquisition: it enqueues.
	j2, created, err := l2.svc.SubmitWithKey(prob, Params{Algorithm: "serial", Iterations: 2}, key+"-next")
	if err != nil || !created {
		t.Fatalf("fresh key: created=%v err=%v", created, err)
	}
	waitFor(t, "fresh-key job done", func() bool { return j2.State() == Done })
}
