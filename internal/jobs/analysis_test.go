package jobs

import (
	"bytes"
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"ptychopath/internal/gridworker"
)

// metricValue scrapes one sample from the service's exposition.
func metricValue(t *testing.T, s *Service, name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("metric %s: parsing %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not in exposition:\n%s", name, buf.String())
	return 0
}

func TestRankTrackerStragglerDetection(t *testing.T) {
	tr := newRankTracker(4)
	// Six complete rows where rank 2 computes 10x the others.
	for iter := 1; iter <= 6; iter++ {
		var lastRatio float64
		var full bool
		for rank := 0; rank < 4; rank++ {
			c := int64(time.Millisecond)
			if rank == 2 {
				c = int64(10 * time.Millisecond)
			}
			lastRatio, full = tr.observe(rank, iter, c, int64(time.Microsecond))
			if full != (rank == 3) {
				t.Fatalf("iter %d rank %d: row complete = %v", iter, rank, full)
			}
		}
		// max/mean = 10 / ((3*1+10)/4) = 40/13.
		if want := 40.0 / 13.0; lastRatio < want-1e-9 || lastRatio > want+1e-9 {
			t.Fatalf("iter %d: row ratio %v, want %v", iter, lastRatio, want)
		}
	}
	sum := tr.summary()
	if sum.Rows != 6 {
		t.Errorf("rows %d, want 6", sum.Rows)
	}
	if len(sum.Stragglers) != 1 || sum.Stragglers[0] != 2 {
		t.Errorf("stragglers %v, want [2]", sum.Stragglers)
	}
	if sum.MeanRatio <= 1.5 {
		t.Errorf("mean ratio %v, want > 1.5", sum.MeanRatio)
	}
	if sum.Slow[2] != 6 || sum.Slow[0] != 0 {
		t.Errorf("slow counts %v, want rank 2 slow in all 6 rows", sum.Slow)
	}
}

func TestRankTrackerBalancedRanksNotFlagged(t *testing.T) {
	tr := newRankTracker(2)
	for iter := 1; iter <= 5; iter++ {
		tr.observe(0, iter, int64(time.Millisecond), 0)
		tr.observe(1, iter, int64(time.Millisecond)+int64(50*time.Microsecond), 0)
	}
	sum := tr.summary()
	if len(sum.Stragglers) != 0 {
		t.Errorf("stragglers %v on a balanced run, want none", sum.Stragglers)
	}
	if sum.MeanRatio < 1 || sum.MeanRatio > 1.1 {
		t.Errorf("mean ratio %v, want ~1", sum.MeanRatio)
	}
	// nil tracker (serial jobs) must no-op everywhere.
	var nilTr *rankTracker
	if _, full := nilTr.observe(0, 1, 1, 1); full {
		t.Error("nil tracker reported a complete row")
	}
	if s := nilTr.summary(); s.Rows != 0 {
		t.Error("nil tracker summary not empty")
	}
}

func TestThroughputEstimateEWMA(t *testing.T) {
	var e throughputEstimate
	e.observe(1000)
	if f, n := e.value(); f != 1000 || n != 1 {
		t.Fatalf("after first sample: %v/%d, want 1000/1", f, n)
	}
	e.observe(2000) // 1000 + 0.2*(2000-1000) = 1200
	if f, _ := e.value(); f != 1200 {
		t.Fatalf("EWMA %v, want 1200", f)
	}
	e.observe(-5) // rejected
	if _, n := e.value(); n != 2 {
		t.Fatalf("negative sample folded in (n=%d)", n)
	}
}

// TestPredictionRecorded runs a deterministic 2-rank grid job and
// checks the predicted-vs-actual loop end to end: the prediction rides
// the wire object from submission, completion scores it into the error
// histogram and the status summary, and the next submission predicts
// from the live calibration.
func TestPredictionRecorded(t *testing.T) {
	prob := tinyProblem(t)
	s := newTestService(t, Config{
		Workers: 2, QueueDepth: 8, CheckpointEvery: 4,
		Timeout: 30 * time.Second, GridAddr: "127.0.0.1:0",
	})
	startGridWorkers(t, s, 2)

	params := Params{Algorithm: "gd", Iterations: 6, StepSize: 0.02,
		MeshRows: 1, MeshCols: 2, Grid: true}
	j, err := s.Submit(prob, params)
	if err != nil {
		t.Fatal(err)
	}
	info := j.Info(0)
	if info.Prediction == nil {
		t.Fatal("no prediction on the wire object at submission")
	}
	if info.Prediction.Seconds <= 0 || info.Prediction.Ranks != 2 || info.Prediction.Source != "model" {
		t.Errorf("prediction %+v, want positive runtime over 2 ranks from the model", info.Prediction)
	}
	waitFor(t, "grid job done", func() bool { return j.State() == Done })

	info = j.Info(0)
	if info.ActualSeconds <= 0 {
		t.Errorf("actual_seconds %v, want > 0 after completion", info.ActualSeconds)
	}
	if info.PredictionErrorRatio <= 0 {
		t.Errorf("prediction_error_ratio %v, want > 0 after completion", info.PredictionErrorRatio)
	}
	if n := metricValue(t, s, "ptychoserve_job_runtime_prediction_error_ratio_count"); n != 1 {
		t.Errorf("prediction-error histogram count %v, want 1", n)
	}
	st := s.Status()
	if st.Prediction.Jobs != 1 || st.Prediction.LastErrorRatio != info.PredictionErrorRatio {
		t.Errorf("status prediction summary %+v does not match the job's ratio %v",
			st.Prediction, info.PredictionErrorRatio)
	}
	if st.Prediction.CalibrationIters == 0 {
		t.Error("no calibration iterations folded in by a 6-iteration job")
	}

	// The predicted-* spans overlay the actual timeline in the trace.
	names := map[string]bool{}
	for _, sp := range j.Trace().Spans() {
		names[sp.Name] = true
	}
	for _, want := range []string{"predicted-runtime", "predicted-compute", "predicted-wait", "predicted-comm"} {
		if !names[want] {
			t.Errorf("trace missing %q span", want)
		}
	}
	// Flight recorder saw the prediction and the lifecycle.
	kinds := map[string]bool{}
	for _, e := range j.FlightEvents() {
		kinds[e.Kind] = true
	}
	for _, want := range []string{"prediction", "state", "iteration"} {
		if !kinds[want] {
			t.Errorf("flight recorder missing %q event (have %v)", want, kinds)
		}
	}

	// The second submission predicts from the live throughput EWMA.
	j2, err := s.Submit(prob, params)
	if err != nil {
		t.Fatal(err)
	}
	if src := j2.Info(0).Prediction.Source; src != "calibrated" {
		t.Errorf("second prediction source %q, want calibrated", src)
	}
	waitFor(t, "second grid job done", func() bool { return j2.State() == Done })
}

// TestStragglerFlagged injects a genuine per-iteration delay into one of
// two grid workers and checks the straggler pipeline: the slowed rank is
// flagged on the wire object, annotated as a span in the trace, noted in
// the flight recorder, and every completed per-rank row lands in the
// imbalance histogram.
func TestStragglerFlagged(t *testing.T) {
	prob := tinyProblem(t)
	s := newTestService(t, Config{
		Workers: 2, QueueDepth: 8, CheckpointEvery: 100,
		Timeout: 30 * time.Second, GridAddr: "127.0.0.1:0",
	})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go gridworker.Run(ctx, s.GridAddr(), gridworker.Options{Name: "fast"})
	go gridworker.Run(ctx, s.GridAddr(), gridworker.Options{Name: "slow",
		StatsDelay: func(rank, iter int) time.Duration { return 10 * time.Millisecond },
	})
	waitFor(t, "grid workers registered", func() bool { return len(s.GridWorkers()) == 2 })

	const iters = 6
	j, err := s.Submit(prob, Params{Algorithm: "gd", Iterations: iters, StepSize: 0.02,
		MeshRows: 1, MeshCols: 2, Grid: true})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "grid job done", func() bool { return j.State() == Done })

	info := j.Info(0)
	if len(info.StragglerRanks) != 1 {
		t.Fatalf("straggler_ranks %v, want exactly the slowed rank", info.StragglerRanks)
	}
	slowRank := info.StragglerRanks[0]
	if info.ImbalanceRatio <= 1.5 {
		t.Errorf("imbalance_ratio %v, want well above 1.5 with a 10ms/iter delay", info.ImbalanceRatio)
	}
	if n := metricValue(t, s, "ptychoserve_job_rank_imbalance_ratio_count"); n != iters {
		t.Errorf("imbalance histogram count %v, want one row per iteration (%d)", n, iters)
	}
	var span bool
	for _, sp := range j.Trace().Spans() {
		if sp.Name == "straggler" && sp.Rank == slowRank {
			span = true
		}
	}
	if !span {
		t.Errorf("no straggler span for rank %d in the trace", slowRank)
	}
	var flight bool
	for _, e := range j.FlightEvents() {
		if e.Kind == "straggler" && strings.Contains(e.Detail, fmt.Sprintf("rank %d", slowRank)) {
			flight = true
		}
	}
	if !flight {
		t.Errorf("no straggler entry in the flight recorder for rank %d", slowRank)
	}
}

// TestStatusRollup pins the shape of the fleet-health document on a
// plain (no grid, in-memory store) service.
func TestStatusRollup(t *testing.T) {
	prob := tinyProblem(t)
	s := newTestService(t, Config{Workers: 2, QueueDepth: 4})
	j, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job done", func() bool { return j.State() == Done })

	st := s.Status()
	if st.Workers != 2 || st.WorkersIdle != 2 || st.QueueDepth != 0 {
		t.Errorf("pool block %d/%d idle, queue %d; want 2/2 idle, queue 0",
			st.Workers, st.WorkersIdle, st.QueueDepth)
	}
	if st.Jobs["done"] != 1 || st.Jobs["running"] != 0 {
		t.Errorf("job census %v, want one done", st.Jobs)
	}
	if st.Grid != nil {
		t.Error("grid block present without a grid")
	}
	if st.WAL != nil {
		t.Error("wal block present on the in-memory store")
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("uptime %v, want > 0", st.UptimeSeconds)
	}
	if st.Prediction.Jobs != 1 {
		t.Errorf("prediction summary scored %d jobs, want 1", st.Prediction.Jobs)
	}
	// Serial jobs predict too (ranks=1); idle gauge matches the pool.
	if v := metricValue(t, s, "ptychoserve_workers_idle"); v != 2 {
		t.Errorf("workers_idle gauge %v, want 2", v)
	}
}
