package jobs

import (
	"errors"
	"sync"
	"testing"
)

// submitN enqueues n jobs against a service whose single worker is
// never started draining them (Workers: 1 with a long first job), so
// the registry order and the job states are fully deterministic for
// pagination tests: the first job pins the worker, the rest stay
// queued. The blocker is cancelled on cleanup so Close does not wait
// it out.
func submitN(t *testing.T, s *Service, n int) []string {
	t.Helper()
	prob := tinyProblem(t)
	ids := make([]string, n)
	for i := range ids {
		iters := 1
		if i == 0 {
			iters = 1000000
		}
		j, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: iters})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = j.ID()
	}
	t.Cleanup(func() { s.Cancel(ids[0]) })
	return ids
}

func TestListPagePagination(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueDepth: 64})
	ids := submitN(t, s, 7)

	// Page through with limit 3: 3 + 3 + 1, in submit order, with the
	// cursor chain terminating.
	var got []string
	cursor := ""
	pages := 0
	for {
		page, next, err := s.ListPage(ListOptions{Limit: 3, Cursor: cursor})
		if err != nil {
			t.Fatal(err)
		}
		pages++
		for _, info := range page {
			got = append(got, info.ID)
		}
		if next == "" {
			break
		}
		cursor = next
		if pages > 10 {
			t.Fatal("cursor chain does not terminate")
		}
	}
	if len(got) != len(ids) {
		t.Fatalf("paged listing returned %d jobs, want %d", len(got), len(ids))
	}
	for i, id := range ids {
		if got[i] != id {
			t.Fatalf("page order[%d] = %s, want %s (deterministic submit order)", i, got[i], id)
		}
	}
	if pages != 3 {
		t.Errorf("7 jobs with limit 3 took %d pages, want 3", pages)
	}

	// Cursor at the very end: empty page, no next, no error.
	page, next, err := s.ListPage(ListOptions{Cursor: ids[len(ids)-1], Limit: 3})
	if err != nil {
		t.Fatalf("cursor at end: %v", err)
	}
	if len(page) != 0 || next != "" {
		t.Fatalf("cursor at end: %d jobs, next %q; want empty page", len(page), next)
	}

	// Unknown cursor is a client error.
	if _, _, err := s.ListPage(ListOptions{Cursor: "job-9999"}); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("unknown cursor: %v, want ErrBadCursor", err)
	}
	// ErrBadCursor is its own sentinel, distinct from ErrInvalidParams
	// (the HTTP layer maps both to bad_params).
	if errors.Is(ErrBadCursor, ErrInvalidParams) {
		t.Fatal("ErrBadCursor must not wrap ErrInvalidParams")
	}

	// Unknown status filter is a client error.
	if _, _, err := s.ListPage(ListOptions{Status: "bogus"}); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("unknown status: %v, want ErrInvalidParams", err)
	}

	// Status filter: everything is queued or running here; filtering on
	// "done" yields an empty page with no error and no cursor.
	page, next, err = s.ListPage(ListOptions{Status: "done", Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != 0 || next != "" {
		t.Fatalf("done filter: %d jobs, next %q; want none", len(page), next)
	}

	// Unfiltered, unbounded: identical to List.
	all, next, err := s.ListPage(ListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if next != "" {
		t.Fatalf("unbounded page still has a cursor %q", next)
	}
	if len(all) != len(s.List()) {
		t.Fatalf("ListPage returned %d, List %d", len(all), len(s.List()))
	}
}

// TestSubmitIdempotentRace: two goroutines race the same
// Idempotency-Key; exactly one job may exist, and both calls must
// return it.
func TestSubmitIdempotentRace(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueDepth: 64})
	prob := tinyProblem(t)

	const attempts = 16
	var wg sync.WaitGroup
	jobs := make([]*Job, attempts)
	created := make([]bool, attempts)
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, c, err := s.SubmitWithKey(prob, Params{Algorithm: "serial", Iterations: 1}, "retry-key-1")
			if err != nil {
				t.Error(err)
				return
			}
			jobs[i], created[i] = j, c
		}(i)
	}
	wg.Wait()

	creations := 0
	for i := range jobs {
		if jobs[i] == nil {
			t.Fatal("a submission returned no job")
		}
		if jobs[i] != jobs[0] {
			t.Fatalf("submissions returned different jobs: %s vs %s", jobs[i].ID(), jobs[0].ID())
		}
		if created[i] {
			creations++
		}
	}
	if creations != 1 {
		t.Fatalf("%d submissions claim to have created the job, want exactly 1", creations)
	}
	if n := len(s.List()); n != 1 {
		t.Fatalf("registry holds %d jobs, want 1", n)
	}

	// A different key is a different job.
	j2, c2, err := s.SubmitWithKey(prob, Params{Algorithm: "serial", Iterations: 1}, "retry-key-2")
	if err != nil {
		t.Fatal(err)
	}
	if !c2 || j2 == jobs[0] {
		t.Fatalf("distinct key replayed the first job")
	}

	// No key never replays.
	j3, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if j3 == jobs[0] || j3 == j2 {
		t.Fatal("keyless submit replayed an existing job")
	}
}

// TestSubmitIdempotentKeyFreeOnReject: a queue-full rejection must not
// claim the key, or the retry the 429 demands could never succeed.
func TestSubmitIdempotentKeyFreeOnReject(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueDepth: 1})
	prob := tinyProblem(t)

	// Fill the worker and the depth-1 queue.
	if _, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 1000000}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "worker busy", func() bool { return s.QueueDepth() == 0 })
	if _, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 1000000}); err != nil {
		t.Fatal(err)
	}

	_, _, err := s.SubmitWithKey(prob, Params{Algorithm: "serial", Iterations: 1}, "key-after-full")
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: %v, want ErrQueueFull", err)
	}

	// Free the queue slot, retry the same key: it must enqueue.
	for _, info := range s.List() {
		s.Cancel(info.ID)
	}
	j, created, err := s.SubmitWithKey(prob, Params{Algorithm: "serial", Iterations: 1}, "key-after-full")
	if err != nil {
		t.Fatalf("retry after queue drain: %v", err)
	}
	if !created {
		t.Fatalf("retry replayed a rejected submission (job %s)", j.ID())
	}
	s.Cancel(j.ID())
}
