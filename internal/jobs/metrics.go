package jobs

import (
	"fmt"
	"io"
	"sync/atomic"
)

// counters aggregates service activity for the /metrics endpoint.
type counters struct {
	submitted   atomic.Int64
	rejected    atomic.Int64
	replayed    atomic.Int64
	completed   atomic.Int64
	failed      atomic.Int64
	cancelled   atomic.Int64
	iterations  atomic.Int64
	checkpoints atomic.Int64
	running     atomic.Int64
	frames      atomic.Int64
	folds       atomic.Int64
}

// WriteMetrics emits the service's counters and gauges in Prometheus
// text exposition format.
func (s *Service) WriteMetrics(w io.Writer) error {
	type metric struct {
		name, help, typ string
		value           int64
	}
	ms := []metric{
		{"ptychoserve_jobs_submitted_total", "Jobs accepted into the queue.", "counter", s.met.submitted.Load()},
		{"ptychoserve_jobs_rejected_total", "Submissions rejected because the queue was full.", "counter", s.met.rejected.Load()},
		{"ptychoserve_jobs_replayed_total", "Idempotent submissions answered with an existing job.", "counter", s.met.replayed.Load()},
		{"ptychoserve_jobs_completed_total", "Jobs that ran all iterations.", "counter", s.met.completed.Load()},
		{"ptychoserve_jobs_failed_total", "Jobs that ended with an error.", "counter", s.met.failed.Load()},
		{"ptychoserve_jobs_cancelled_total", "Jobs cancelled while queued or running.", "counter", s.met.cancelled.Load()},
		{"ptychoserve_iterations_total", "Reconstruction iterations completed across all jobs.", "counter", s.met.iterations.Load()},
		{"ptychoserve_checkpoints_total", "OBJCKv1 checkpoints written.", "counter", s.met.checkpoints.Load()},
		{"ptychoserve_frames_ingested_total", "Diffraction frames accepted by streaming-job ingests.", "counter", s.met.frames.Load()},
		{"ptychoserve_folds_total", "Ingest folds performed by streaming jobs.", "counter", s.met.folds.Load()},
		{"ptychoserve_jobs_running", "Jobs currently executing on the worker pool.", "gauge", s.met.running.Load()},
		{"ptychoserve_queue_depth", "Jobs waiting for a worker.", "gauge", int64(s.QueueDepth())},
		{"ptychoserve_workers", "Size of the worker pool.", "gauge", int64(s.cfg.Workers)},
	}
	if s.grid != nil {
		workers := s.grid.Workers()
		busy := 0
		for _, w := range workers {
			if w.Busy {
				busy++
			}
		}
		ms = append(ms,
			metric{"ptychoserve_grid_workers", "Grid worker endpoints registered with the coordinator.", "gauge", int64(len(workers))},
			metric{"ptychoserve_grid_workers_busy", "Grid worker endpoints currently in a session.", "gauge", int64(busy)},
			metric{"ptychoserve_grid_sessions_total", "Distributed sessions started on the grid.", "counter", s.grid.SessionsStarted()},
			metric{"ptychoserve_grid_bytes_routed_total", "Rank-to-rank payload bytes routed by the coordinator hub.", "counter", s.grid.BytesRouted()},
		)
	}
	for _, m := range ms {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			m.name, m.help, m.name, m.typ, m.name, m.value); err != nil {
			return err
		}
	}
	return nil
}
