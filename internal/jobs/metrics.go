package jobs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync/atomic"

	"ptychopath/internal/obs"
)

// counters aggregates service activity for the /metrics endpoint.
type counters struct {
	submitted   atomic.Int64
	rejected    atomic.Int64
	replayed    atomic.Int64
	completed   atomic.Int64
	failed      atomic.Int64
	cancelled   atomic.Int64
	iterations  atomic.Int64
	checkpoints atomic.Int64
	running     atomic.Int64
	frames      atomic.Int64
	folds       atomic.Int64

	// Scheduler counters (non-zero only when tenancy/preemption fire).
	preempted     atomic.Int64 // bulk jobs checkpointed and requeued for interactive work
	quotaRejected atomic.Int64 // submissions rejected by per-tenant quotas

	// Durability counters (non-zero only with a durable Config.Store).
	recovered   atomic.Int64 // interrupted jobs re-enqueued at startup
	restored    atomic.Int64 // terminal jobs restored as history at startup
	unrecovered atomic.Int64 // jobs whose payloads could not be reloaded
	walErrors   atomic.Int64 // store write failures (degraded durability)
}

// histograms holds the service-side latency distributions. Each is a
// lock-free fixed-bucket obs.Histogram; observations happen on the hot
// path (iteration boundaries, WAL fsyncs), scrapes walk the buckets.
type histograms struct {
	queueWait  *obs.Histogram // submission → pool-worker pickup
	iteration  *obs.Histogram // one engine iteration, boundary to boundary
	checkpoint *obs.Histogram // OBJCKv1 checkpoint write (tmp+sync+rename)
	walFsync   *obs.Histogram // store fsync, fed via SetSyncObserver
	ingest     *obs.Histogram // streaming AppendFrames: buffer + spool + WAL

	// Ratio-valued distributions (dimensionless; observations are
	// encoded on the seconds axis via ratioDuration, bounds are ratios).
	predictionErr *obs.Histogram // actual/predicted runtime at completion
	imbalance     *obs.Histogram // per-iteration max/mean rank compute

	// Per-tenant queue wait: the fairness signal. Cardinality is
	// bounded by sched.Config.MaxTenants — tenants beyond the cap share
	// the "other" label.
	tenantQueueWait *obs.HistogramVec // queue wait by tenant label
}

func newHistograms() histograms {
	return histograms{
		queueWait: obs.NewHistogram("ptychoserve_job_queue_wait_seconds",
			"Time jobs spend queued before a pool worker picks them up.", obs.DefBuckets),
		iteration: obs.NewHistogram("ptychoserve_iteration_duration_seconds",
			"Duration of one reconstruction iteration, boundary to boundary.", obs.DefBuckets),
		checkpoint: obs.NewHistogram("ptychoserve_checkpoint_write_seconds",
			"OBJCKv1 checkpoint write latency (tmp + sync + rename).", obs.DefBuckets),
		walFsync: obs.NewHistogram("ptychoserve_wal_fsync_seconds",
			"WAL fsync latency as observed by the job store.", obs.DefBuckets),
		ingest: obs.NewHistogram("ptychoserve_ingest_append_seconds",
			"Streaming frame-chunk append latency (buffer + spool + WAL).", obs.DefBuckets),
		predictionErr: obs.NewHistogram("ptychoserve_job_runtime_prediction_error_ratio",
			"Actual over predicted job runtime at completion (1.0 = perfect prediction).",
			[]float64{0.1, 0.25, 0.5, 0.75, 0.9, 1, 1.1, 1.25, 1.5, 2, 5, 10, 100}),
		imbalance: obs.NewHistogram("ptychoserve_job_rank_imbalance_ratio",
			"Max over mean per-rank compute time within one iteration (1.0 = perfectly balanced).",
			[]float64{1, 1.05, 1.1, 1.25, 1.5, 2, 3, 5, 10}),
		tenantQueueWait: obs.NewHistogramVec("ptychoserve_tenant_queue_wait_seconds",
			"Time jobs spend queued before pickup, by tenant (bounded cardinality; overflow tenants share label \"other\").",
			[]string{"tenant"}, obs.DefBuckets),
	}
}

// WriteMetrics emits the service's counters and gauges in Prometheus
// text exposition format.
func (s *Service) WriteMetrics(w io.Writer) error {
	type metric struct {
		name, help, typ string
		value           int64
	}
	ms := []metric{
		{"ptychoserve_jobs_submitted_total", "Jobs accepted into the queue.", "counter", s.met.submitted.Load()},
		{"ptychoserve_jobs_rejected_total", "Submissions rejected because the queue was full.", "counter", s.met.rejected.Load()},
		{"ptychoserve_jobs_replayed_total", "Idempotent submissions answered with an existing job.", "counter", s.met.replayed.Load()},
		{"ptychoserve_jobs_completed_total", "Jobs that ran all iterations.", "counter", s.met.completed.Load()},
		{"ptychoserve_jobs_failed_total", "Jobs that ended with an error.", "counter", s.met.failed.Load()},
		{"ptychoserve_jobs_cancelled_total", "Jobs cancelled while queued or running.", "counter", s.met.cancelled.Load()},
		{"ptychoserve_jobs_preempted_total", "Bulk jobs checkpointed and requeued to make room for interactive work.", "counter", s.met.preempted.Load()},
		{"ptychoserve_jobs_quota_rejected_total", "Submissions rejected by per-tenant quotas.", "counter", s.met.quotaRejected.Load()},
		{"ptychoserve_iterations_total", "Reconstruction iterations completed across all jobs.", "counter", s.met.iterations.Load()},
		{"ptychoserve_checkpoints_total", "OBJCKv1 checkpoints written.", "counter", s.met.checkpoints.Load()},
		{"ptychoserve_frames_ingested_total", "Diffraction frames accepted by streaming-job ingests.", "counter", s.met.frames.Load()},
		{"ptychoserve_folds_total", "Ingest folds performed by streaming jobs.", "counter", s.met.folds.Load()},
		{"ptychoserve_jobs_running", "Jobs currently executing on the worker pool.", "gauge", s.met.running.Load()},
		{"ptychoserve_queue_depth", "Jobs waiting for a worker.", "gauge", int64(s.QueueDepth())},
		{"ptychoserve_workers", "Size of the worker pool.", "gauge", int64(s.cfg.Workers)},
		{"ptychoserve_workers_idle", "Pool workers not currently executing a job.", "gauge", idleWorkers(int64(s.cfg.Workers), s.met.running.Load())},
	}
	if s.store.Durable() {
		st := s.store.Stats()
		ms = append(ms,
			metric{"ptychoserve_jobs_recovered_total", "Interrupted jobs re-enqueued by crash recovery at startup.", "counter", s.met.recovered.Load()},
			metric{"ptychoserve_jobs_restored_total", "Terminal jobs restored as history by crash recovery at startup.", "counter", s.met.restored.Load()},
			metric{"ptychoserve_jobs_unrecoverable_total", "Jobs whose spooled payloads could not be reloaded at startup.", "counter", s.met.unrecovered.Load()},
			metric{"ptychoserve_wal_replay_records", "WAL and snapshot records applied by startup recovery.", "gauge", int64(s.replayRecords)},
			metric{"ptychoserve_wal_replay_torn", "Torn WAL tail records dropped by startup recovery.", "gauge", int64(s.replayTorn)},
			metric{"ptychoserve_wal_errors_total", "Store write failures (durability degraded, service continued).", "counter", s.met.walErrors.Load()},
			metric{"ptychoserve_wal_records_total", "WAL records appended by this process.", "counter", st.Records},
			metric{"ptychoserve_wal_syncs_total", "Explicit WAL fsyncs by this process.", "counter", st.Syncs},
			metric{"ptychoserve_wal_compactions_total", "Snapshot compactions performed by this process.", "counter", st.Compactions},
			metric{"ptychoserve_wal_bytes", "Current byte size of the WAL tail.", "gauge", st.WALBytes},
		)
	}
	if s.grid != nil {
		workers := s.grid.Workers()
		busy := 0
		for _, w := range workers {
			if w.Busy {
				busy++
			}
		}
		ms = append(ms,
			metric{"ptychoserve_grid_workers", "Grid worker endpoints registered with the coordinator.", "gauge", int64(len(workers))},
			metric{"ptychoserve_grid_workers_busy", "Grid worker endpoints currently in a session.", "gauge", int64(busy)},
			metric{"ptychoserve_grid_workers_idle", "Grid worker endpoints registered but not in a session.", "gauge", int64(len(workers) - busy)},
			metric{"ptychoserve_grid_sessions_total", "Distributed sessions started on the grid.", "counter", s.grid.SessionsStarted()},
			metric{"ptychoserve_grid_bytes_routed_total", "Rank-to-rank payload bytes routed by the coordinator hub.", "counter", s.grid.BytesRouted()},
		)
	}
	for _, m := range ms {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			m.name, m.help, m.name, m.typ, m.name, m.value); err != nil {
			return err
		}
	}
	if err := s.writeTenantMetrics(w); err != nil {
		return err
	}
	for _, h := range []*obs.Histogram{
		s.hist.queueWait, s.hist.iteration, s.hist.checkpoint,
		s.hist.walFsync, s.hist.ingest,
		s.hist.predictionErr, s.hist.imbalance,
	} {
		h.Write(w)
	}
	s.hist.tenantQueueWait.Write(w)
	return nil
}

// writeTenantMetrics emits the per-tenant accounting families. Series
// are keyed by metric label, not tenant name: tenants past the
// sched.Config.MaxTenants cap fold into one "other" series, so a flood
// of throwaway API keys cannot blow up scrape cardinality.
func (s *Service) writeTenantMetrics(w io.Writer) error {
	type row struct {
		submitted, preempted, quotaRejects int64
		active                             int
		ingestBytes                        int64
		completedSec                       float64
	}
	s.mu.Lock()
	agg := make(map[string]*row, len(s.tenants))
	for _, ts := range s.tenants {
		r := agg[ts.metricLabel]
		if r == nil {
			r = &row{}
			agg[ts.metricLabel] = r
		}
		r.submitted += ts.submitted
		r.preempted += ts.preempted
		r.quotaRejects += ts.quotaRejects
		r.active += ts.active
		r.ingestBytes += ts.ingestBytes
		r.completedSec += ts.completedSec
	}
	s.mu.Unlock()
	if len(agg) == 0 {
		return nil
	}
	labels := make([]string, 0, len(agg))
	for l := range agg {
		labels = append(labels, l)
	}
	sort.Strings(labels)

	emit := func(name, help, typ string, val func(*row) string) error {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ); err != nil {
			return err
		}
		for _, l := range labels {
			if _, err := fmt.Fprintf(w, "%s{tenant=%q} %s\n", name, l, val(agg[l])); err != nil {
				return err
			}
		}
		return nil
	}
	steps := []func() error{
		func() error {
			return emit("ptychoserve_tenant_jobs_submitted_total", "Jobs admitted, by tenant.", "counter",
				func(r *row) string { return strconv.FormatInt(r.submitted, 10) })
		},
		func() error {
			return emit("ptychoserve_tenant_jobs_preempted_total", "Preemptions absorbed, by tenant.", "counter",
				func(r *row) string { return strconv.FormatInt(r.preempted, 10) })
		},
		func() error {
			return emit("ptychoserve_tenant_quota_rejected_total", "Submissions rejected by this tenant's quotas.", "counter",
				func(r *row) string { return strconv.FormatInt(r.quotaRejects, 10) })
		},
		func() error {
			return emit("ptychoserve_tenant_jobs_active", "Jobs queued or running, by tenant.", "gauge",
				func(r *row) string { return strconv.Itoa(r.active) })
		},
		func() error {
			return emit("ptychoserve_tenant_ingest_bytes", "Streaming ingest bytes currently held, by tenant.", "gauge",
				func(r *row) string { return strconv.FormatInt(r.ingestBytes, 10) })
		},
		func() error {
			return emit("ptychoserve_tenant_completed_cost_seconds_total", "Compute seconds delivered to finished work, by tenant.", "counter",
				func(r *row) string { return strconv.FormatFloat(r.completedSec, 'g', -1, 64) })
		},
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}

// idleWorkers clamps pool idleness at zero (running can briefly exceed
// the pool size around worker handoff observation).
func idleWorkers(workers, running int64) int64 {
	if running >= workers {
		return 0
	}
	return workers - running
}
