package jobs

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"ptychopath/internal/phantom"
	"ptychopath/internal/physics"
	"ptychopath/internal/scan"
	"ptychopath/internal/solver"
)

// tinyProblem builds a small synthetic dataset (16 locations, 8 px
// window) shared by the service tests.
func tinyProblem(t *testing.T) *solver.Problem {
	t.Helper()
	pat, err := scan.Raster(scan.RasterConfig{Cols: 4, Rows: 4, StepPix: 5, RadiusPix: 6, MarginPix: 6})
	if err != nil {
		t.Fatal(err)
	}
	obj := phantom.RandomObject(pat.ImageW, pat.ImageH, 1, 1)
	prob, err := solver.Simulate(solver.SimulateConfig{
		Optics: physics.PaperOptics(), Pattern: pat, Object: obj, WindowN: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prob
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.SpoolDir == "" {
		cfg.SpoolDir = t.TempDir()
	}
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestLifecycleDone(t *testing.T) {
	prob := tinyProblem(t)
	s := newTestService(t, Config{Workers: 1, QueueDepth: 4, CheckpointEvery: 3})
	j, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job done", func() bool { return j.State() == Done })

	info := j.Info(-1)
	if info.Iter != 10 || info.TotalIters != 10 {
		t.Errorf("iter %d/%d, want 10/10", info.Iter, info.TotalIters)
	}
	if len(info.CostHistory) != 10 {
		t.Errorf("cost history length %d, want 10", len(info.CostHistory))
	}
	if info.Error != "" {
		t.Errorf("unexpected error %q", info.Error)
	}
	snap, iter := j.Snapshot()
	if snap == nil || iter != 10 {
		t.Fatalf("snapshot at iter %d, want final object at 10", iter)
	}
	path, ckIter := j.CheckpointPath()
	if ckIter != 10 {
		t.Errorf("checkpoint iter %d, want 10", ckIter)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("checkpoint file: %v", err)
	}

	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"ptychoserve_jobs_submitted_total 1",
		"ptychoserve_jobs_completed_total 1",
		"ptychoserve_iterations_total 10",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestParallelAlgorithmsRun(t *testing.T) {
	prob := tinyProblem(t)
	s := newTestService(t, Config{Workers: 2, QueueDepth: 8})
	for _, alg := range []string{"gd", "hve"} {
		j, err := s.Submit(prob, Params{Algorithm: alg, Iterations: 4, MeshRows: 2, MeshCols: 2})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		waitFor(t, alg+" done", func() bool { return j.State().Terminal() })
		if got := j.State(); got != Done {
			t.Errorf("%s: state %v, err %q", alg, got, j.Info(0).Error)
		}
	}
}

func TestQueueBoundsAndCancelQueued(t *testing.T) {
	prob := tinyProblem(t)
	s := newTestService(t, Config{Workers: 1, QueueDepth: 1})
	// Occupy the single worker with a job far too long to finish.
	long, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "long job running", func() bool { return long.State() == Running })

	queued, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 5}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: got %v, want ErrQueueFull", err)
	}

	// Cancelling while queued is immediate and the job never runs.
	if err := s.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	if got := queued.State(); got != Cancelled {
		t.Fatalf("queued job state %v, want cancelled", got)
	}
	if err := s.Cancel(queued.ID()); !errors.Is(err, ErrFinished) {
		t.Errorf("double cancel: got %v, want ErrFinished", err)
	}

	// The cancelled job freed its queue slot immediately: a new submit
	// fits even though no worker has become free.
	refill, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 5})
	if err != nil {
		t.Fatalf("submit after cancelling queued job: %v", err)
	}
	if err := s.Cancel(refill.ID()); err != nil {
		t.Fatal(err)
	}

	// Cancelling the running job interrupts it at an iteration boundary.
	if err := s.Cancel(long.ID()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "long job cancelled", func() bool { return long.State() == Cancelled })
	if iter := long.Info(0).Iter; iter <= 0 || iter >= 1_000_000 {
		t.Errorf("cancelled after %d iterations, want mid-run", iter)
	}
}

func TestCancelResumeMatchesUninterrupted(t *testing.T) {
	prob := tinyProblem(t)
	s := newTestService(t, Config{Workers: 1, QueueDepth: 4, CheckpointEvery: 5})
	const total = 2000
	j, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: total, StepSize: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "mid-run progress", func() bool { return j.Info(0).Iter >= 20 })
	if err := s.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "cancelled", func() bool { return j.State() == Cancelled })
	ck := j.Info(0)
	if ck.Iter >= total {
		t.Fatalf("job ran to completion (%d iters) before cancel; cannot exercise resume", ck.Iter)
	}
	if ck.CheckpointIter != ck.Iter {
		t.Fatalf("cancel checkpoint at iter %d, progress at %d", ck.CheckpointIter, ck.Iter)
	}

	resumed, err := s.Resume(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "resumed done", func() bool { return resumed.State().Terminal() })
	info := resumed.Info(0)
	if resumed.State() != Done {
		t.Fatalf("resumed job %v: %s", resumed.State(), info.Error)
	}
	if info.Iter != total || info.TotalIters != total {
		t.Errorf("resumed progress %d/%d, want %d/%d", info.Iter, info.TotalIters, total, total)
	}
	if info.ResumedFrom != j.ID() {
		t.Errorf("resumed_from %q, want %q", info.ResumedFrom, j.ID())
	}

	// The stitched trajectory (cancel at k, resume k..total) must be
	// bit-identical to an uninterrupted run: batch gradient descent is
	// memoryless and OBJCKv1 round-trips float64 exactly.
	ref, err := solver.Reconstruct(prob, phantom.Vacuum(prob.ImageBounds(), prob.Slices).Slices,
		solver.Options{StepSize: 0.01, Iterations: total, Mode: solver.Batch})
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := resumed.Snapshot()
	for si, ss := range snap {
		for i, v := range ss.Data {
			if v != ref.Slices[si].Data[i] {
				t.Fatalf("slice %d pixel %d: resumed %v != uninterrupted %v", si, i, v, ref.Slices[si].Data[i])
			}
		}
	}

	// A completed job cannot be resumed again.
	if _, err := s.Resume(resumed.ID()); !errors.Is(err, ErrNotResumable) {
		t.Errorf("resume of done job: got %v, want ErrNotResumable", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	prob := tinyProblem(t)
	s := newTestService(t, Config{Workers: 1})
	if _, err := s.Submit(prob, Params{Algorithm: "nope"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := s.Submit(prob, Params{Iterations: -1}); err == nil {
		t.Error("negative iterations accepted")
	}
	if _, err := s.Resume("job-9999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("resume unknown: got %v, want ErrNotFound", err)
	}
	if err := s.Cancel("job-9999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel unknown: got %v, want ErrNotFound", err)
	}
}

func TestCloseRejectsSubmit(t *testing.T) {
	prob := tinyProblem(t)
	s := newTestService(t, Config{Workers: 1})
	s.Close()
	if _, err := s.Submit(prob, Params{}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: got %v, want ErrClosed", err)
	}
}
