package jobs

import (
	"errors"
	"os"
	"strings"
	"testing"

	"ptychopath/internal/dataio"
	"ptychopath/internal/grid"
	"ptychopath/internal/stream"
)

// TestStreamingJobLifecycle drives a streaming job end-to-end at the
// service level: open from metadata, feed three chunks while it runs,
// close the stream, and verify progress reporting, checkpoints and
// metrics.
func TestStreamingJobLifecycle(t *testing.T) {
	prob := tinyProblem(t)
	hdr := dataio.HeaderFromProblem(prob)
	frames := dataio.FramesFromProblem(prob)
	s := newTestService(t, Config{Workers: 1, QueueDepth: 4, CheckpointEvery: 1})

	j, err := s.SubmitStreaming(hdr, Params{Algorithm: "serial", Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !j.Streaming() || j.WindowN() != prob.WindowN {
		t.Fatalf("job streaming=%v windowN=%d", j.Streaming(), j.WindowN())
	}
	waitFor(t, "streaming job running", func() bool { return j.State() == Running })

	bounds := []int{0, 6, 11, len(frames)}
	for i := 0; i < 3; i++ {
		if _, err := s.AppendFrames(j.ID(), frames[bounds[i]:bounds[i+1]]); err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		want := i + 1
		waitFor(t, "fold", func() bool { return j.Info(0).Folds >= want })
	}
	// Mid-stream status: the job reports frame progress, no total.
	mid := j.Info(0)
	if !mid.Streaming || mid.Frames != len(frames) || mid.EOF {
		t.Fatalf("mid-stream info: %+v", mid)
	}
	if mid.TotalIters != 0 {
		t.Errorf("streaming job reports total_iters %d while the stream is open", mid.TotalIters)
	}

	if err := s.CloseStream(j.ID()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "streaming job done", func() bool { return j.State().Terminal() })
	info := j.Info(-1)
	if j.State() != Done {
		t.Fatalf("streaming job %v: %s", j.State(), info.Error)
	}
	if info.ActiveFrames != len(frames) || info.Folds < 3 || !info.EOF {
		t.Errorf("final info: active %d folds %d eof %v", info.ActiveFrames, info.Folds, info.EOF)
	}
	if info.Iter <= 6 {
		t.Errorf("finished after %d iterations; tail alone is 6, so nothing ran mid-stream", info.Iter)
	}
	if len(info.CostHistory) != info.Iter {
		t.Errorf("cost history has %d entries for %d iterations", len(info.CostHistory), info.Iter)
	}
	path, ckIter := j.CheckpointPath()
	if ckIter != info.Iter {
		t.Errorf("final checkpoint at iter %d, progress at %d", ckIter, info.Iter)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("checkpoint file: %v", err)
	}

	// Terminal stream rejects further frames and cannot be resumed.
	if _, err := s.AppendFrames(j.ID(), frames[:1]); !errors.Is(err, ErrFinished) {
		t.Errorf("append after done: got %v, want ErrFinished", err)
	}
	if err := s.CloseStream(j.ID()); !errors.Is(err, ErrFinished) {
		t.Errorf("close after done: got %v, want ErrFinished", err)
	}
	if _, err := s.Resume(j.ID()); !errors.Is(err, ErrNotResumable) {
		t.Errorf("resume streaming job: got %v, want ErrNotResumable", err)
	}

	var sb strings.Builder
	if err := s.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ptychoserve_frames_ingested_total 16",
		"ptychoserve_jobs_completed_total 1",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestStreamingValidationAndBackpressure covers the error surface:
// frames to batch jobs, bad frames, unsupported algorithms, and the
// bounded ingest pushing back while the job is still queued.
func TestStreamingValidationAndBackpressure(t *testing.T) {
	prob := tinyProblem(t)
	hdr := dataio.HeaderFromProblem(prob)
	frames := dataio.FramesFromProblem(prob)
	s := newTestService(t, Config{Workers: 1, QueueDepth: 4})

	// Occupy the only worker so streaming jobs stay queued.
	long, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "long job running", func() bool { return long.State() == Running })
	t.Cleanup(func() {
		s.Cancel(long.ID())
		waitFor(t, "long job cancelled", func() bool { return long.State().Terminal() })
	})

	if _, err := s.AppendFrames(long.ID(), frames[:1]); !errors.Is(err, ErrNotStreaming) {
		t.Errorf("frames to batch job: got %v, want ErrNotStreaming", err)
	}
	if err := s.CloseStream(long.ID()); !errors.Is(err, ErrNotStreaming) {
		t.Errorf("eof to batch job: got %v, want ErrNotStreaming", err)
	}
	if _, err := s.SubmitStreaming(hdr, Params{Algorithm: "hve", Iterations: 4}); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("hve streaming: got %v, want ErrInvalidParams", err)
	}
	if _, err := s.SubmitStreaming(hdr, Params{InitialObject: make([]*grid.Complex2D, 1)}); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("warm-start streaming: got %v, want ErrInvalidParams", err)
	}
	if _, err := s.AppendFrames("job-9999", frames[:1]); !errors.Is(err, ErrNotFound) {
		t.Errorf("frames to unknown job: got %v, want ErrNotFound", err)
	}

	// A queued streaming job buffers frames up to its bound, then
	// pushes back without losing what it holds.
	j, err := s.SubmitStreaming(hdr, Params{Algorithm: "serial", Iterations: 4, IngestCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	bad := grid.NewFloat2DSize(prob.WindowN+1, prob.WindowN)
	if _, err := s.AppendFrames(j.ID(), []dataio.Frame{{Loc: frames[0].Loc, Meas: bad}}); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("wrong-sized frame: got %v, want ErrInvalidParams", err)
	}
	// An out-of-image center must 400 the producer at append time, not
	// fail the whole job at fold time.
	glitch := frames[0]
	glitch.Loc.X = float64(prob.Pattern.ImageW) + 40
	if _, err := s.AppendFrames(j.ID(), []dataio.Frame{glitch}); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("out-of-image frame: got %v, want ErrInvalidParams", err)
	}
	// A chunk larger than the job's ingest capacity is permanently
	// unacceptable: distinct non-retryable error.
	if _, err := s.AppendFrames(j.ID(), frames[:6]); !errors.Is(err, stream.ErrChunkTooLarge) {
		t.Errorf("chunk over capacity: got %v, want stream.ErrChunkTooLarge", err)
	}
	if total, err := s.AppendFrames(j.ID(), frames[:3]); err != nil || total != 3 {
		t.Fatalf("append while queued: total %d, err %v", total, err)
	}
	if _, err := s.AppendFrames(j.ID(), frames[3:6]); !errors.Is(err, stream.ErrIngestFull) {
		t.Errorf("overflow: got %v, want stream.ErrIngestFull", err)
	}
	if got := j.Info(0); got.Frames != 3 {
		t.Errorf("after rejected chunk: %d frames buffered, want 3", got.Frames)
	}
	if err := s.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
}

// TestStreamingIterationBudgetCheckpoints: a streaming job whose feed
// stalls past MaxIterations fails — but its partial result is still
// checkpointed, so the work is salvageable.
func TestStreamingIterationBudgetCheckpoints(t *testing.T) {
	prob := tinyProblem(t)
	frames := dataio.FramesFromProblem(prob)
	// CheckpointEvery 1000: no periodic checkpoint fires, so the file
	// can only come from the failure-path flush.
	s := newTestService(t, Config{Workers: 1, QueueDepth: 4, CheckpointEvery: 1000})
	j, err := s.SubmitStreaming(dataio.HeaderFromProblem(prob),
		Params{Algorithm: "serial", Iterations: 5, MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendFrames(j.ID(), frames[:4]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "budgeted job terminal", func() bool { return j.State().Terminal() })
	info := j.Info(0)
	if j.State() != Failed || !strings.Contains(info.Error, "budget") {
		t.Fatalf("state %v, error %q; want Failed with the budget error", j.State(), info.Error)
	}
	if info.CheckpointIter != 3 {
		t.Errorf("failure checkpoint at iter %d, want 3", info.CheckpointIter)
	}
	if _, err := os.Stat(info.Checkpoint); err != nil {
		t.Errorf("failure checkpoint file: %v", err)
	}
}

// TestShutdownGraceful is the graceful-stop satellite: Shutdown closes
// the intake, cancels queued and running jobs (flushing a final
// checkpoint for the running one), unblocks a streaming job waiting
// for frames, and drains the pool.
func TestShutdownGraceful(t *testing.T) {
	prob := tinyProblem(t)
	s := newTestService(t, Config{Workers: 2, QueueDepth: 8, CheckpointEvery: 2})

	running, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	// A streaming job with no frames: its worker blocks waiting on the
	// ingest; Shutdown must wake and cancel it.
	waiting, err := s.SubmitStreaming(dataio.HeaderFromProblem(prob), Params{Algorithm: "serial", Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "both jobs running", func() bool {
		return running.State() == Running && waiting.State() == Running
	})
	waitFor(t, "mid-run progress", func() bool { return running.Info(0).Iter >= 4 })
	// With both workers busy, this one is still queued at shutdown.
	queued, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}

	s.Shutdown()

	if got := running.State(); got != Cancelled {
		t.Errorf("running job after shutdown: %v, want cancelled", got)
	}
	if got := waiting.State(); got != Cancelled {
		t.Errorf("frame-starved streaming job after shutdown: %v, want cancelled", got)
	}
	if got := queued.State(); got != Cancelled {
		t.Errorf("queued job after shutdown: %v, want cancelled", got)
	}
	// The interrupted run flushed a final checkpoint at its last
	// completed iteration, so a restarted server can resume it.
	info := running.Info(0)
	if info.Iter <= 0 || info.Iter >= 1_000_000 {
		t.Errorf("running job stopped at iteration %d, want mid-run", info.Iter)
	}
	if info.CheckpointIter != info.Iter {
		t.Errorf("final checkpoint at %d, progress at %d", info.CheckpointIter, info.Iter)
	}
	if _, err := os.Stat(info.Checkpoint); err != nil {
		t.Errorf("checkpoint file: %v", err)
	}

	// The intake is closed...
	if _, err := s.Submit(prob, Params{}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after shutdown: got %v, want ErrClosed", err)
	}
	// ...and a second Shutdown (or the usual Close) is a no-op.
	s.Shutdown()
	s.Close()
}

// TestSubscribeEvents checks the live feed: a subscriber sees
// iteration progress and the terminal state, then its channel closes;
// late subscribers get the final state immediately.
func TestSubscribeEvents(t *testing.T) {
	prob := tinyProblem(t)
	s := newTestService(t, Config{Workers: 1, QueueDepth: 4, CheckpointEvery: 2})
	// Occupy the worker so the subscription is in place before the job
	// starts; with 8 iterations the feed (8 iteration + 4 snapshot + 2
	// state events) fits the buffer even if the consumer stalls, so
	// nothing is dropped and the final state event is guaranteed.
	blocker, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "blocker running", func() bool { return blocker.State() == Running })
	j, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := j.Subscribe(256)
	defer cancel()
	if err := s.Cancel(blocker.ID()); err != nil {
		t.Fatal(err)
	}

	var iterations, snapshots int
	var final string
	for e := range ch {
		switch e.Type {
		case "iteration":
			iterations++
		case "snapshot":
			snapshots++
		case "state":
			final = e.State
		}
		if e.Job != j.ID() {
			t.Fatalf("event for job %q on %q's feed", e.Job, j.ID())
		}
	}
	if final != "done" {
		t.Errorf("final state event %q, want done", final)
	}
	if iterations == 0 || snapshots == 0 {
		t.Errorf("feed saw %d iteration and %d snapshot events", iterations, snapshots)
	}

	// Subscribing after the end yields the terminal state, closed.
	late, lateCancel := j.Subscribe(1)
	defer lateCancel()
	e, ok := <-late
	if !ok || e.Type != "state" || e.State != "done" {
		t.Fatalf("late subscription: %+v ok=%v", e, ok)
	}
	if _, ok := <-late; ok {
		t.Fatal("late subscription channel not closed")
	}
}
