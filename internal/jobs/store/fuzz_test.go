package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"ptychopath/internal/wire"
	"ptychopath/internal/wire/wiretest"
)

// fuzzWAL builds a small valid log (magic + a few records) for seeding.
func fuzzWAL() []byte {
	buf := append([]byte(nil), walMagic[:]...)
	buf = appendFrame(buf, recSubmit, []byte(`{"id":"job-0001","key":"k","created":"2026-08-08T10:00:00Z"}`))
	buf = appendFrame(buf, recStart, []byte(`{"id":"job-0001","started":"2026-08-08T10:00:01Z"}`))
	buf = appendFrame(buf, recIteration, []byte(`{"id":"job-0001","iter":1,"cost":0.5}`))
	buf = appendFrame(buf, recCheckpoint, []byte(`{"id":"job-0001","path":"/x/job-0001.objck","iter":1}`))
	buf = appendFrame(buf, recFinish, []byte(`{"id":"job-0001","state":"done","finished":"2026-08-08T10:01:00Z"}`))
	return buf
}

// patchLen overwrites the length field of the record starting at off.
func patchLen(b []byte, off int, v int64) []byte {
	out := append([]byte(nil), b...)
	binary.LittleEndian.PutUint64(out[off+1:off+9], uint64(v))
	return out
}

// FuzzReadWAL fuzzes the record decoder and full replay with the
// mutations a crash or bitrot produces: truncation at every structural
// boundary, lying and oversized lengths, flipped CRCs, unknown kinds.
// The decoder must never panic and never partially apply: every outcome
// is clean EOF, ErrTornRecord, or ErrNotWAL.
func FuzzReadWAL(f *testing.F) {
	valid := fuzzWAL()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:8])  // magic only
	f.Add(valid[:4])  // torn inside the magic
	f.Add(valid[:9])  // kind byte, then nothing
	f.Add(valid[:12]) // torn inside the length field
	f.Add(valid[:17]) // full header, no payload
	f.Add(valid[:30]) // torn mid-payload
	// Lying lengths on the first record (starts at offset 8).
	f.Add(patchLen(valid, 8, 1<<40))          // far past the cap
	f.Add(patchLen(valid, 8, -1))             // negative
	f.Add(patchLen(valid, 8, maxRecordBytes)) // at the cap but beyond the data
	f.Add(patchLen(valid, 8, 3))              // shorter than the real payload: CRC lands mid-bytes
	// Oversized claim on a snapshot kind, which has the larger cap.
	snap := append([]byte(nil), walMagic[:]...)
	snap = appendFrame(snap, recSnapshot, []byte(`{"jobs":[]}`))
	f.Add(patchLen(snap, 8, maxSnapshotBytes))
	// Flip one CRC byte.
	crcFlipped := append([]byte(nil), valid...)
	crcFlipped[len(crcFlipped)-1] ^= 0x01
	f.Add(crcFlipped)
	// Flip one payload byte (CRC now mismatches).
	payloadFlipped := append([]byte(nil), valid...)
	payloadFlipped[20] ^= 0x80
	f.Add(payloadFlipped)
	// Unknown kind byte.
	badKind := append([]byte(nil), valid...)
	badKind[8] = 'Z'
	f.Add(badKind)
	// CRC-valid record whose payload is not JSON.
	notJSON := append([]byte(nil), walMagic[:]...)
	notJSON = appendFrame(notJSON, recSubmit, []byte("not json at all"))
	f.Add(notJSON)
	// Wrong magic entirely.
	f.Add([]byte("OBJCKv1\x00payload"))
	// The shared framing-attack corpus (same mutations the dataio and
	// transport fuzzers rehearse), anchored on the first record's
	// length field at offset 9 (magic + kind byte).
	for _, m := range wiretest.Mutations(valid, 9) {
		f.Add(m)
	}
	// Legacy generation: a v1-magic, IEEE-framed log and its mutations
	// must replay or fail typed exactly like the current generation.
	legacy := append([]byte(nil), walMagicV1[:]...)
	for _, r := range conformanceRecords() {
		legacy = wire.AppendChunk(legacy, r.kind, []byte(r.payload), wire.GenIEEE)
	}
	for _, m := range wiretest.Mutations(legacy, 9) {
		f.Add(m)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// The raw record decoder: every error must be EOF or a torn
		// record — typed, so recovery can distinguish "end of log"
		// from "foreign file".
		r := bytes.NewReader(data)
		for {
			_, payload, err := ReadRecord(r)
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, ErrTornRecord) {
					t.Fatalf("ReadRecord: untyped error %v", err)
				}
				break
			}
			if len(payload) > maxSnapshotBytes {
				t.Fatalf("ReadRecord returned %d bytes past the cap", len(payload))
			}
		}

		// Full replay: must never error except for a foreign magic,
		// and the recovered state must be internally consistent no
		// matter how the input was mangled.
		rec, offset, err := ReplayWAL(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrNotWAL) {
				t.Fatalf("ReplayWAL: untyped error %v", err)
			}
			return
		}
		if offset < 0 || offset > int64(len(data)) {
			t.Fatalf("truncation offset %d outside [0, %d]", offset, len(data))
		}
		seen := make(map[string]bool, len(rec.Jobs))
		for _, j := range rec.Jobs {
			if seen[j.ID] {
				t.Fatalf("job %q recovered twice", j.ID)
			}
			seen[j.ID] = true
		}
		for key, id := range rec.Keys {
			if !seen[id] {
				t.Fatalf("key %q claims unknown job %q", key, id)
			}
		}
	})
}
