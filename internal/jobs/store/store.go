// Package store is the durability layer of the job service: a Store
// interface over everything internal/jobs persists — job lifecycle
// transitions, idempotency-key claims, submitted datasets, streamed
// frames, and OBJCKv1 checkpoints — with two implementations.
//
// Mem is the historical in-memory behavior: nothing survives the
// process, checkpoints go straight to the spool directory, and every
// log call is a no-op. A service configured without a state directory
// behaves exactly as before this package existed.
//
// WAL (wal.go) append-logs every transition as CRC-32-framed,
// length-prefixed records (PTYWALv2 — the house framing style of
// PTYCHS chunks and PTGW wire frames), spools datasets and stream
// frames beside the log, periodically compacts the log into a snapshot
// (PTYSNPv2) plus tail, and on reopen replays everything back into a
// Recovery the service re-enqueues interrupted jobs from. All file I/O
// goes through the faultfs seam, so the crash tests can kill the store
// at any byte and prove recovery is exact.
package store

import (
	"encoding/json"
	"os"
	"time"

	"ptychopath/internal/dataio"
	"ptychopath/internal/grid"
	"ptychopath/internal/solver"
)

// Store is the persistence surface of the job service. Log* methods
// record lifecycle transitions; Spool* methods persist bulk payloads
// (datasets, frames, warm-start objects) and return the path a later
// recovery loads them from; Load* reverse the spooling. Implementations
// must be safe for concurrent use — the service logs from its HTTP
// goroutines and every pool worker.
type Store interface {
	// Durable reports whether the store persists anything. The service
	// uses it to gate recovery metrics and durability error handling.
	Durable() bool

	// Recover returns the state replayed from disk when the store was
	// opened: every job ever logged (merged to its latest state), the
	// idempotency-key claims, and replay statistics. A fresh or
	// in-memory store returns an empty Recovery.
	Recover() (*Recovery, error)

	// LogSubmit records a job entering the registry (and its
	// idempotency-key claim, when Key is non-empty). Durable stores
	// sync before returning: an acknowledged submission survives a
	// crash.
	LogSubmit(rec SubmitRecord) error
	// LogStart records the Queued→Running transition.
	LogStart(id string, started time.Time) error
	// LogIteration records per-iteration progress. High-rate and
	// intentionally unsynced: losing the tail costs progress counters,
	// never correctness (the checkpoint is the durable anchor).
	LogIteration(id string, iter int, cost float64) error
	// LogCheckpoint records a durable OBJCKv1 checkpoint at iter.
	LogCheckpoint(id, path string, iter int) error
	// LogFrames records a streaming job's ingest acceptance (the frames
	// themselves go through SpoolFrames).
	LogFrames(id string, total int) error
	// LogEOF records a streaming job's producer closing the stream.
	LogEOF(id string) error
	// LogFinish records a terminal transition (done, failed,
	// cancelled). Durable stores sync before returning.
	LogFinish(id, state, errMsg string, finished time.Time) error

	// SpoolDataset persists a batch job's dataset (PTYCHOv1) and
	// returns its path ("" for non-durable stores).
	SpoolDataset(id string, prob *solver.Problem) (string, error)
	// SpoolInitObject persists a job's warm-start object (OBJCKv1) and
	// returns its path ("" when slices is nil or the store is not
	// durable).
	SpoolInitObject(id string, slices []*grid.Complex2D) (string, error)
	// SpoolStreamOpen persists a streaming job's PTYCHS opening and
	// returns the spool path frames will be appended to.
	SpoolStreamOpen(id string, hdr *dataio.StreamHeader) (string, error)
	// SpoolFrames appends accepted frames to the job's stream spool and
	// syncs: an acknowledged chunk survives a crash.
	SpoolFrames(id string, windowN int, frames []dataio.Frame) error
	// SpoolStreamEOF appends the end-of-stream marker to the spool.
	SpoolStreamEOF(id string) error

	// LoadDataset reads a spooled PTYCHOv1 dataset.
	LoadDataset(path string) (*solver.Problem, error)
	// LoadObject reads a spooled or checkpointed OBJCKv1 object.
	LoadObject(path string) ([]*grid.Complex2D, error)
	// LoadStream replays a stream spool: the opening header, every
	// intact frame chunk, and whether the EOF marker was written. A
	// torn tail chunk (crash mid-append) is dropped, mirroring the WAL.
	LoadStream(path string) (*dataio.StreamHeader, []dataio.Frame, bool, error)

	// WriteCheckpoint writes an OBJCKv1 checkpoint atomically (tmp +
	// sync + rename) at path.
	WriteCheckpoint(path string, slices []*grid.Complex2D) error
	// RemoveObject deletes a superseded checkpoint file. The service
	// calls it only after the record naming the SUCCESSOR file is in
	// the log, so the log never points at a removed file.
	RemoveObject(path string) error

	// Sync flushes any buffered log tail to stable storage — the
	// service calls it from Shutdown so a SIGTERM drain leaves nothing
	// unsynced.
	Sync() error
	// Stats reports live store counters for /metrics.
	Stats() Stats
	// Close flushes and releases the store. Idempotent.
	Close() error
}

// SubmitRecord is everything LogSubmit persists about a new job.
type SubmitRecord struct {
	ID string `json:"id"`
	// Params is the service's job parameters, marshaled by the caller
	// (the store is deliberately ignorant of the jobs package).
	Params json.RawMessage `json:"params,omitempty"`
	// Streaming marks a streaming job; Dataset then points at its
	// PTYCHS spool instead of a PTYCHOv1 file.
	Streaming bool `json:"streaming,omitempty"`
	// Key is the idempotency key claimed by this submission, if any.
	Key string `json:"key,omitempty"`
	// ResumedFrom / RecoveredFrom carry job lineage (see jobs.Info).
	ResumedFrom   string `json:"resumed_from,omitempty"`
	RecoveredFrom string `json:"recovered_from,omitempty"`
	// Dataset is the spooled dataset path; InitObject the spooled
	// warm-start object path (resume jobs).
	Dataset    string    `json:"dataset,omitempty"`
	InitObject string    `json:"init_object,omitempty"`
	Created    time.Time `json:"created,omitzero"`
}

// JobRecord is one job's state as merged from the log — the unit of
// recovery. States use the lowercase names of jobs.State.String.
type JobRecord struct {
	ID            string          `json:"id"`
	Params        json.RawMessage `json:"params,omitempty"`
	Streaming     bool            `json:"streaming,omitempty"`
	Key           string          `json:"key,omitempty"`
	ResumedFrom   string          `json:"resumed_from,omitempty"`
	RecoveredFrom string          `json:"recovered_from,omitempty"`
	Dataset       string          `json:"dataset,omitempty"`
	InitObject    string          `json:"init_object,omitempty"`

	State          string    `json:"state"`
	Iter           int       `json:"iter,omitempty"`
	Cost           float64   `json:"cost,omitempty"`
	CostHistory    []float64 `json:"cost_history,omitempty"`
	CheckpointPath string    `json:"checkpoint,omitempty"`
	CheckpointIter int       `json:"checkpoint_iter,omitempty"`
	Frames         int       `json:"frames,omitempty"`
	EOF            bool      `json:"eof,omitempty"`
	Error          string    `json:"error,omitempty"`
	Created        time.Time `json:"created"`
	Started        time.Time `json:"started,omitzero"`
	Finished       time.Time `json:"finished,omitzero"`
}

// Terminal reports whether the record's state is final.
func (r *JobRecord) Terminal() bool {
	return r.State == "done" || r.State == "failed" || r.State == "cancelled"
}

// Recovery is the replayed service state a durable store hands back at
// startup.
type Recovery struct {
	// Jobs holds every job ever logged, in submission (ID) order, each
	// merged to its latest recorded state.
	Jobs []JobRecord `json:"jobs"`
	// Keys maps claimed idempotency keys to the job IDs that own them.
	Keys map[string]string `json:"keys,omitempty"`

	// Replay statistics (not persisted in snapshots).
	Records int `json:"-"` // WAL + snapshot records applied
	Torn    int `json:"-"` // corrupt tail records dropped
}

// Stats are live counters a durable store exposes for /metrics.
type Stats struct {
	// Records is the number of WAL records appended by this process.
	Records int64
	// Syncs is the number of explicit WAL fsyncs.
	Syncs int64
	// Compactions is the number of snapshot compactions performed.
	Compactions int64
	// WALBytes is the current byte size of the WAL tail.
	WALBytes int64
}

// Mem is the non-durable store: every Log/Spool call is a no-op and
// checkpoints are written with the pre-store atomic path. The zero
// value is ready to use.
type Mem struct{}

var _ Store = Mem{}

func (Mem) Durable() bool               { return false }
func (Mem) Recover() (*Recovery, error) { return &Recovery{}, nil }

func (Mem) LogSubmit(SubmitRecord) error                { return nil }
func (Mem) LogStart(string, time.Time) error            { return nil }
func (Mem) LogIteration(string, int, float64) error     { return nil }
func (Mem) LogCheckpoint(string, string, int) error     { return nil }
func (Mem) LogFrames(string, int) error                 { return nil }
func (Mem) LogEOF(string) error                         { return nil }
func (Mem) LogFinish(string, string, string, time.Time) error { return nil }

func (Mem) SpoolDataset(string, *solver.Problem) (string, error)        { return "", nil }
func (Mem) SpoolInitObject(string, []*grid.Complex2D) (string, error)   { return "", nil }
func (Mem) SpoolStreamOpen(string, *dataio.StreamHeader) (string, error) { return "", nil }
func (Mem) SpoolFrames(string, int, []dataio.Frame) error               { return nil }
func (Mem) SpoolStreamEOF(string) error                                 { return nil }

func (Mem) LoadDataset(path string) (*solver.Problem, error)  { return dataio.ReadFile(path) }
func (Mem) LoadObject(path string) ([]*grid.Complex2D, error) { return dataio.ReadObjectFile(path) }
func (Mem) LoadStream(string) (*dataio.StreamHeader, []dataio.Frame, bool, error) {
	return nil, nil, false, nil
}

func (Mem) WriteCheckpoint(path string, slices []*grid.Complex2D) error {
	return dataio.WriteObjectFileAtomic(path, slices)
}

func (Mem) RemoveObject(path string) error { return os.Remove(path) }

func (Mem) Sync() error  { return nil }
func (Mem) Stats() Stats { return Stats{} }
func (Mem) Close() error { return nil }
