package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ptychopath/internal/dataio"
	"ptychopath/internal/grid"
	"ptychopath/internal/jobs/store/faultfs"
	"ptychopath/internal/solver"
	"ptychopath/internal/wire"
)

// The write-ahead log (PTYWALv2) is a sequence of CRC-32-framed,
// length-prefixed records in the house framing style of PTYCHS
// chunks and PTGW wire frames:
//
//	magic   [8]byte  "PTYWALv2" ("PTYWALv1" accepted on replay)
//	records any number of:
//	        kind    [1]byte (see record kinds below)
//	        length  int64: payload byte count
//	        payload length bytes of JSON (walRecord)
//	        crc     uint32: CRC-32 of the payload
//
// Version 2 switched the record CRC to the Castagnoli generation
// (internal/wire); replay accepts either generation per record, so a
// v1 log — even one this version has since appended v2 records to —
// recovers exactly as before.
//
// Appends are atomic at record granularity: a reader accepts a record
// only after its CRC verifies, so a crash mid-append leaves a torn
// tail that replay detects (ErrTornRecord), drops, and truncates —
// never a partial apply. Synced records (submit, checkpoint, EOF,
// terminal) survive any crash; unsynced ones (per-iteration progress)
// may be lost, costing only progress counters.
//
// Compaction folds the log into a snapshot (PTYSNPv2: the same framing
// under its own magic + one 'S' record holding the merged job state as
// JSON) plus a fresh tail. The snapshot is written tmp + sync +
// rename, THEN the log is reset, so every crash window replays to the
// same state: records are absolute (latest-wins per field), making
// double-apply across the snapshot boundary harmless. Full byte-level
// spec: docs/FORMATS.md.

var (
	walMagic    = [8]byte{'P', 'T', 'Y', 'W', 'A', 'L', 'v', '2'}
	walMagicV1  = [8]byte{'P', 'T', 'Y', 'W', 'A', 'L', 'v', '1'}
	snapMagic   = [8]byte{'P', 'T', 'Y', 'S', 'N', 'P', 'v', '2'}
	snapMagicV1 = [8]byte{'P', 'T', 'Y', 'S', 'N', 'P', 'v', '1'}
)

// Record kinds.
const (
	recSubmit     = 'J' // job entered the registry
	recStart      = 'R' // Queued→Running
	recIteration  = 'I' // iteration progress (unsynced)
	recCheckpoint = 'C' // OBJCKv1 checkpoint written
	recFrames     = 'F' // streaming ingest accepted frames
	recEOF        = 'E' // streaming producer closed the stream
	recFinish     = 'T' // terminal transition
	recSnapshot   = 'S' // compacted state (snapshot files only)
)

// Payload caps, enforced before any payload-sized allocation: ordinary
// records are small JSON; a snapshot record carries the whole merged
// registry.
const (
	maxRecordBytes   = 1 << 20
	maxSnapshotBytes = 1 << 28
)

// Errors returned by the WAL.
var (
	// ErrTornRecord is returned when a record's framing does not
	// verify: truncated mid-record, a length field beyond the caps, a
	// CRC mismatch, an unknown kind byte, or a payload that is not a
	// record. Replay drops the record and everything after it — the
	// torn tail a crash mid-append leaves behind.
	ErrTornRecord = errors.New("store: torn WAL record")
	// ErrNotWAL is returned when a file's magic identifies it as
	// something other than a PTYWAL log (or PTYSNP snapshot, either version) — the
	// store refuses to guess at foreign files.
	ErrNotWAL = errors.New("store: not a WAL file")
)

// walRecord is the JSON payload of every record kind; which fields are
// meaningful depends on the kind.
type walRecord struct {
	SubmitRecord
	Iter     int       `json:"iter,omitempty"`
	Cost     float64   `json:"cost,omitempty"`
	Path     string    `json:"path,omitempty"`
	Total    int       `json:"total,omitempty"`
	State    string    `json:"state,omitempty"`
	Error    string    `json:"error,omitempty"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
}

// IterCost is one entry of a job's recovered cost history.
type IterCost struct {
	Iter int     `json:"i"`
	Cost float64 `json:"c"`
}

// snapState is the payload of a snapshot's 'S' record.
type snapState struct {
	Jobs []JobRecord       `json:"jobs"`
	Keys map[string]string `json:"keys,omitempty"`
	// Histories carries each job's per-iteration costs (parallel to
	// Jobs) so replay after a snapshot stays idempotent.
	Histories [][]IterCost `json:"histories,omitempty"`
}

// replayState is the merged view of the log, updated record by record —
// the same apply path serves live appends (for compaction) and replay
// (for recovery), so what compaction writes is by construction what
// recovery reads.
type replayState struct {
	jobs  map[string]*JobRecord
	order []string
	keys  map[string]string
	costs map[string]map[int]float64 // per-job iteration→cost (dedupes double-apply)
}

func newReplayState() *replayState {
	return &replayState{
		jobs:  make(map[string]*JobRecord),
		keys:  make(map[string]string),
		costs: make(map[string]map[int]float64),
	}
}

// job returns the record for id, creating it on first sight — records
// can arrive out of submission order (a worker may log start before
// the submitter's goroutine logs submit).
func (st *replayState) job(id string) *JobRecord {
	if j, ok := st.jobs[id]; ok {
		return j
	}
	j := &JobRecord{ID: id, State: "queued"}
	st.jobs[id] = j
	st.order = append(st.order, id)
	return j
}

// apply merges one record into the state. Every record is absolute
// (latest-wins per field), so applying a record twice — possible only
// across a crash-interrupted compaction — is harmless.
func (st *replayState) apply(kind byte, r *walRecord) {
	switch kind {
	case recSubmit:
		j := st.job(r.ID)
		j.Params = r.SubmitRecord.Params
		j.Streaming = r.Streaming
		j.Key = r.Key
		j.ResumedFrom = r.ResumedFrom
		j.RecoveredFrom = r.RecoveredFrom
		j.Dataset = r.Dataset
		j.InitObject = r.InitObject
		j.Created = r.Created
		if r.Key != "" {
			st.keys[r.Key] = r.ID
		}
	case recStart:
		j := st.job(r.ID)
		if j.State == "queued" {
			j.State = "running"
		}
		j.Started = r.Started
	case recIteration:
		j := st.job(r.ID)
		if r.Iter > j.Iter {
			j.Iter = r.Iter
			j.Cost = r.Cost
		}
		m := st.costs[r.ID]
		if m == nil {
			m = make(map[int]float64)
			st.costs[r.ID] = m
		}
		m[r.Iter] = r.Cost
	case recCheckpoint:
		j := st.job(r.ID)
		j.CheckpointPath = r.Path
		j.CheckpointIter = r.Iter
	case recFrames:
		j := st.job(r.ID)
		if r.Total > j.Frames {
			j.Frames = r.Total
		}
	case recEOF:
		st.job(r.ID).EOF = true
	case recFinish:
		j := st.job(r.ID)
		j.State = r.State
		j.Error = r.Error
		j.Finished = r.Finished
	}
}

// load seeds the state from a snapshot payload.
func (st *replayState) load(snap *snapState) {
	for i := range snap.Jobs {
		j := snap.Jobs[i]
		st.jobs[j.ID] = &j
		st.order = append(st.order, j.ID)
		if i < len(snap.Histories) {
			m := make(map[int]float64, len(snap.Histories[i]))
			for _, ic := range snap.Histories[i] {
				m[ic.Iter] = ic.Cost
			}
			st.costs[j.ID] = m
		}
	}
	for k, id := range snap.Keys {
		st.keys[k] = id
	}
}

// snapshot materializes the state into a snapshot payload.
func (st *replayState) snapshot() *snapState {
	snap := &snapState{Keys: st.keys}
	for _, id := range sortedJobIDs(st.order) {
		j := st.jobs[id]
		snap.Jobs = append(snap.Jobs, *j)
		snap.Histories = append(snap.Histories, sortedHistory(st.costs[id]))
	}
	return snap
}

// recovery materializes the state into the form the service consumes.
func (st *replayState) recovery() *Recovery {
	rec := &Recovery{Keys: make(map[string]string, len(st.keys))}
	for k, id := range st.keys {
		if _, ok := st.jobs[id]; ok { // a key may only claim a job that exists
			rec.Keys[k] = id
		}
	}
	for _, id := range sortedJobIDs(st.order) {
		j := *st.jobs[id]
		hist := sortedHistory(st.costs[id])
		j.CostHistory = make([]float64, len(hist))
		for i, ic := range hist {
			j.CostHistory[i] = ic.Cost
		}
		rec.Jobs = append(rec.Jobs, j)
	}
	return rec
}

// sortedJobIDs orders IDs by the numeric suffix the service assigns
// ("job-0042"), falling back to lexicographic for foreign IDs.
func sortedJobIDs(ids []string) []string {
	out := append([]string(nil), ids...)
	num := func(id string) int {
		if i := strings.LastIndexByte(id, '-'); i >= 0 {
			if n, err := strconv.Atoi(id[i+1:]); err == nil {
				return n
			}
		}
		return -1
	}
	sort.SliceStable(out, func(a, b int) bool {
		na, nb := num(out[a]), num(out[b])
		if na != nb {
			return na < nb
		}
		return out[a] < out[b]
	})
	return out
}

func sortedHistory(m map[int]float64) []IterCost {
	out := make([]IterCost, 0, len(m))
	for i, c := range m {
		out = append(out, IterCost{Iter: i, Cost: c})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Iter < out[b].Iter })
	return out
}

// --- record framing --------------------------------------------------

// appendFrame encodes one framed record onto buf (current checksum
// generation; zero allocations once buf has capacity).
func appendFrame(buf []byte, kind byte, payload []byte) []byte {
	return wire.AppendChunk(buf, kind, payload, wire.GenCurrent)
}

// ReadRecord reads one framed record from r. It returns io.EOF when r
// is exhausted before a record starts, and ErrTornRecord for every
// framing violation: truncation mid-record, a length outside the caps,
// an unknown kind, or a CRC mismatch. Exported for the fuzzer and the
// property tests — this is the decoder whose failure mode must always
// be "drop the tail cleanly", never a panic or a partial record.
func ReadRecord(r io.Reader) (kind byte, payload []byte, err error) {
	var k [1]byte
	if _, err := io.ReadFull(r, k[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: reading kind: %v", ErrTornRecord, err)
	}
	kind = k[0]
	switch kind {
	case recSubmit, recStart, recIteration, recCheckpoint, recFrames, recEOF, recFinish, recSnapshot:
	default:
		return 0, nil, fmt.Errorf("%w: unknown kind %q", ErrTornRecord, kind)
	}
	var length int64
	if err := binary.Read(r, binary.LittleEndian, &length); err != nil {
		return 0, nil, fmt.Errorf("%w: reading length: %v", ErrTornRecord, err)
	}
	cap := int64(maxRecordBytes)
	if kind == recSnapshot {
		cap = maxSnapshotBytes
	}
	if length < 0 || length > cap {
		return 0, nil, fmt.Errorf("%w: length %d outside [0, %d]", ErrTornRecord, length, cap)
	}
	// wire.ReadCapped grows as bytes actually arrive, so memory tracks
	// reality, not what a lying length declares.
	payload, rerr := wire.ReadCapped(r, nil, length)
	if rerr != nil {
		return 0, nil, fmt.Errorf("%w: payload truncated: %v", ErrTornRecord, rerr)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: crc truncated: %v", ErrTornRecord, err)
	}
	sum := binary.LittleEndian.Uint32(crcBuf[:])
	// Either checksum generation verifies — v1 logs keep replaying.
	if want, ok := wire.Verify(sum, payload); !ok {
		return 0, nil, fmt.Errorf("%w: crc %08x != %08x", ErrTornRecord, sum, want)
	}
	return kind, payload, nil
}

// frameSize is the on-disk size of a record with the given payload.
func frameSize(payload int) int64 { return 1 + 8 + int64(payload) + 4 }

// ReplayWAL decodes a complete PTYWALv2 (or legacy v1) log from r into
// the recovered state. A torn tail is dropped: the returned Recovery
// holds everything up to the last intact record, Recovery.Torn counts
// the drop, and the error is nil — a crash-torn log is an EXPECTED
// input, not a failure. Only a non-WAL magic returns an error
// (ErrNotWAL). The second return is the byte offset of the end of the
// last intact record — the truncation point for reopening the log.
func ReplayWAL(r io.Reader) (*Recovery, int64, error) {
	st := newReplayState()
	rec := &Recovery{}
	offset, err := replayInto(r, st, rec, walMagic, walMagicV1)
	if err != nil {
		return nil, 0, err
	}
	out := st.recovery()
	out.Records, out.Torn = rec.Records, rec.Torn
	return out, offset, nil
}

// replayInto applies records from r (which must open with the current
// magic or its legacy variant) to st, counting into rec. Returns the
// offset past the last intact record.
func replayInto(r io.Reader, st *replayState, rec *Recovery, magic, legacy [8]byte) (int64, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if n, err := io.ReadFull(br, m[:]); err != nil {
		if n == 0 && errors.Is(err, io.EOF) {
			return 0, nil // empty file: a fresh log
		}
		// A file torn inside its own magic: the creating write never
		// synced. Drop everything.
		rec.Torn++
		return 0, nil
	}
	if m != magic && m != legacy {
		return 0, fmt.Errorf("%w: magic %q", ErrNotWAL, m)
	}
	offset := int64(8)
	for {
		kind, payload, err := ReadRecord(br)
		if errors.Is(err, io.EOF) {
			return offset, nil
		}
		if err != nil {
			rec.Torn++
			return offset, nil // drop the torn tail
		}
		var wr walRecord
		if jerr := json.Unmarshal(payload, &wr); jerr != nil {
			// CRC-valid but not a record: corruption beyond framing.
			rec.Torn++
			return offset, nil
		}
		if kind == recSnapshot {
			var snap snapState
			if jerr := json.Unmarshal(payload, &snap); jerr != nil {
				rec.Torn++
				return offset, nil
			}
			st.load(&snap)
		} else {
			st.apply(kind, &wr)
		}
		rec.Records++
		offset += frameSize(len(payload))
	}
}

// --- the durable store ----------------------------------------------

// WALConfig configures a WAL store.
type WALConfig struct {
	// Dir is the state directory: the log, the snapshot and every
	// spooled dataset live here.
	Dir string
	// FS is the filesystem seam; nil selects the real filesystem.
	FS faultfs.FS
	// CompactEvery is the number of appended records between snapshot
	// compactions. Default 4096.
	CompactEvery int
}

// WAL is the durable Store: every transition append-logged, datasets
// and streams spooled beside the log, snapshots on a record budget.
type WAL struct {
	fs  faultfs.FS
	dir string

	mu        sync.Mutex
	file      faultfs.File // open append handle on the log
	state     *replayState
	recovered *Recovery
	spools    map[string]faultfs.File // open stream-spool handles
	sinceComp int
	compEvery int
	closed    bool

	records, syncs, compactions, walBytes int64

	// scratch is the record-framing buffer reused across appends,
	// guarded by mu.
	scratch []byte

	// syncObs, when set, receives the wall-clock duration of each log
	// fsync (see SetSyncObserver).
	syncObs func(time.Duration)
}

var _ Store = (*WAL)(nil)

// OpenWAL opens (or initializes) the state directory: loads the
// snapshot if present, replays the log, truncates any torn tail, and
// readies the log for appends. The replayed state is available from
// Recover.
func OpenWAL(cfg WALConfig) (*WAL, error) {
	if cfg.Dir == "" {
		return nil, errors.New("store: WAL needs a state directory")
	}
	fs := cfg.FS
	if fs == nil {
		fs = faultfs.OS{}
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = 4096
	}
	if err := fs.MkdirAll(cfg.Dir); err != nil {
		return nil, fmt.Errorf("store: creating state dir: %w", err)
	}
	w := &WAL{
		fs: fs, dir: cfg.Dir,
		state:     newReplayState(),
		spools:    make(map[string]faultfs.File),
		compEvery: cfg.CompactEvery,
	}
	rec := &Recovery{}

	// A tmp snapshot is a compaction that never completed its rename —
	// stale by definition.
	fs.Remove(w.snapPath() + ".tmp")

	// Snapshot first: it is the compacted prefix of the log.
	if f, err := fs.Open(w.snapPath()); err == nil {
		_, rerr := replayInto(f, w.state, rec, snapMagic, snapMagicV1)
		f.Close()
		if rerr != nil {
			return nil, fmt.Errorf("store: reading snapshot: %w", rerr)
		}
	}

	// Then the log tail. Track the end of the last intact record so a
	// torn tail can be truncated away before new appends land.
	offset := int64(0)
	fresh := true
	if f, err := fs.Open(w.walPath()); err == nil {
		fresh = false
		offset, err = replayInto(f, w.state, rec, walMagic, walMagicV1)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("store: replaying WAL: %w", err)
		}
	}
	if fresh || offset == 0 {
		// No log, or one torn inside its own magic: start clean.
		f, err := fs.Create(w.walPath())
		if err != nil {
			return nil, fmt.Errorf("store: creating WAL: %w", err)
		}
		if _, err := f.Write(walMagic[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: writing WAL magic: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: syncing WAL magic: %w", err)
		}
		w.file = f
		w.walBytes = 8
	} else {
		if size, err := fs.Size(w.walPath()); err == nil && size > offset {
			if err := fs.Truncate(w.walPath(), offset); err != nil {
				return nil, fmt.Errorf("store: truncating torn WAL tail: %w", err)
			}
		}
		f, err := fs.OpenAppend(w.walPath())
		if err != nil {
			return nil, fmt.Errorf("store: opening WAL for append: %w", err)
		}
		w.file = f
		w.walBytes = offset
	}

	w.recovered = w.state.recovery()
	w.recovered.Records, w.recovered.Torn = rec.Records, rec.Torn
	return w, nil
}

func (w *WAL) walPath() string  { return filepath.Join(w.dir, "jobs.wal") }
func (w *WAL) snapPath() string { return filepath.Join(w.dir, "jobs.snap") }

// DatasetPath returns the spool path of a batch job's dataset.
func (w *WAL) DatasetPath(id string) string { return filepath.Join(w.dir, id+".ptycho") }

// StreamPath returns the spool path of a streaming job's frame journal.
func (w *WAL) StreamPath(id string) string { return filepath.Join(w.dir, id+".ptychs") }

func (w *WAL) initObjectPath(id string) string { return filepath.Join(w.dir, id+".init.objck") }

func (w *WAL) Durable() bool { return true }

// Recover returns the state replayed when the store was opened.
func (w *WAL) Recover() (*Recovery, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.recovered, nil
}

// append logs one record, optionally syncing, and compacts on the
// record budget.
func (w *WAL) append(kind byte, rec *walRecord, sync bool) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding record: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("store: WAL closed")
	}
	w.scratch = appendFrame(w.scratch[:0], kind, payload)
	frame := w.scratch
	if _, err := w.file.Write(frame); err != nil {
		return fmt.Errorf("store: appending record: %w", err)
	}
	w.walBytes += int64(len(frame))
	w.records++
	w.state.apply(kind, rec)
	if sync {
		if err := w.syncLocked(); err != nil {
			return fmt.Errorf("store: syncing WAL: %w", err)
		}
	}
	w.sinceComp++
	if w.sinceComp >= w.compEvery {
		if err := w.compactLocked(); err != nil {
			return fmt.Errorf("store: compacting: %w", err)
		}
	}
	return nil
}

// compactLocked folds the merged state into the snapshot and resets the
// log. Callers hold w.mu.
func (w *WAL) compactLocked() error {
	payload, err := json.Marshal(w.state.snapshot())
	if err != nil {
		return err
	}
	tmp := w.snapPath() + ".tmp"
	f, err := w.fs.Create(tmp)
	if err != nil {
		return err
	}
	buf := append([]byte(nil), snapMagic[:]...)
	buf = appendFrame(buf, recSnapshot, payload)
	if _, err := f.Write(buf); err != nil {
		f.Close()
		w.fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		w.fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := w.fs.Rename(tmp, w.snapPath()); err != nil {
		w.fs.Remove(tmp)
		return err
	}
	// The snapshot is durable; resetting the log can now tear without
	// losing state (the crash window replays snapshot + old log, and
	// double-apply is harmless — records are absolute).
	w.file.Close()
	f, err = w.fs.Create(w.walPath())
	if err != nil {
		return err
	}
	if _, err := f.Write(walMagic[:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	w.file = f
	w.walBytes = 8
	w.sinceComp = 0
	w.compactions++
	return nil
}

func (w *WAL) LogSubmit(rec SubmitRecord) error {
	return w.append(recSubmit, &walRecord{SubmitRecord: rec}, true)
}

func (w *WAL) LogStart(id string, started time.Time) error {
	return w.append(recStart, &walRecord{SubmitRecord: SubmitRecord{ID: id}, Started: started}, false)
}

func (w *WAL) LogIteration(id string, iter int, cost float64) error {
	return w.append(recIteration, &walRecord{SubmitRecord: SubmitRecord{ID: id}, Iter: iter, Cost: cost}, false)
}

func (w *WAL) LogCheckpoint(id, path string, iter int) error {
	return w.append(recCheckpoint, &walRecord{SubmitRecord: SubmitRecord{ID: id}, Path: path, Iter: iter}, true)
}

func (w *WAL) LogFrames(id string, total int) error {
	return w.append(recFrames, &walRecord{SubmitRecord: SubmitRecord{ID: id}, Total: total}, false)
}

func (w *WAL) LogEOF(id string) error {
	return w.append(recEOF, &walRecord{SubmitRecord: SubmitRecord{ID: id}}, true)
}

func (w *WAL) LogFinish(id, state, errMsg string, finished time.Time) error {
	return w.append(recFinish, &walRecord{
		SubmitRecord: SubmitRecord{ID: id},
		State:        state, Error: errMsg, Finished: finished,
	}, true)
}

// SpoolDataset persists a batch dataset atomically (tmp + sync +
// rename): a submit record referencing the path is only written after
// this returns, so a referenced dataset is always complete.
func (w *WAL) SpoolDataset(id string, prob *solver.Problem) (string, error) {
	path := w.DatasetPath(id)
	if err := w.writeFileAtomic(path, func(f faultfs.File) error {
		return dataio.Write(f, prob)
	}); err != nil {
		return "", fmt.Errorf("store: spooling dataset: %w", err)
	}
	return path, nil
}

func (w *WAL) SpoolInitObject(id string, slices []*grid.Complex2D) (string, error) {
	if slices == nil {
		return "", nil
	}
	path := w.initObjectPath(id)
	if err := w.WriteCheckpoint(path, slices); err != nil {
		return "", fmt.Errorf("store: spooling warm-start object: %w", err)
	}
	return path, nil
}

// SpoolStreamOpen creates the job's frame journal with its PTYCHS
// opening and keeps the handle for appends.
func (w *WAL) SpoolStreamOpen(id string, hdr *dataio.StreamHeader) (string, error) {
	path := w.StreamPath(id)
	f, err := w.fs.Create(path)
	if err != nil {
		return "", fmt.Errorf("store: opening stream spool: %w", err)
	}
	if err := dataio.WriteStreamHeader(f, hdr); err != nil {
		f.Close()
		return "", fmt.Errorf("store: spooling stream opening: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return "", fmt.Errorf("store: syncing stream opening: %w", err)
	}
	w.mu.Lock()
	if old := w.spools[id]; old != nil {
		old.Close()
	}
	w.spools[id] = f
	w.mu.Unlock()
	return path, nil
}

// spoolHandle returns the open journal handle for id, reopening it in
// append mode after a recovery (the recovered incarnation continues the
// original journal).
func (w *WAL) spoolHandle(id string) (faultfs.File, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if f := w.spools[id]; f != nil {
		return f, nil
	}
	f, err := w.fs.OpenAppend(w.StreamPath(id))
	if err != nil {
		return nil, err
	}
	w.spools[id] = f
	return f, nil
}

// SpoolFrames appends one CRC-framed chunk to the journal and syncs:
// once the producer's chunk is acknowledged, the frames are committed.
func (w *WAL) SpoolFrames(id string, windowN int, frames []dataio.Frame) error {
	f, err := w.spoolHandle(id)
	if err != nil {
		return fmt.Errorf("store: opening stream spool: %w", err)
	}
	if err := dataio.WriteFrameChunk(f, windowN, frames); err != nil {
		return fmt.Errorf("store: spooling frames: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: syncing spooled frames: %w", err)
	}
	return nil
}

func (w *WAL) SpoolStreamEOF(id string) error {
	f, err := w.spoolHandle(id)
	if err != nil {
		return fmt.Errorf("store: opening stream spool: %w", err)
	}
	if err := dataio.WriteEOFChunk(f); err != nil {
		return fmt.Errorf("store: spooling stream EOF: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: syncing stream EOF: %w", err)
	}
	return nil
}

func (w *WAL) LoadDataset(path string) (*solver.Problem, error) {
	f, err := w.fs.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return dataio.Read(f)
}

func (w *WAL) LoadObject(path string) ([]*grid.Complex2D, error) {
	f, err := w.fs.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return dataio.ReadObject(f)
}

// LoadStream replays a frame journal: the opening, then every intact
// chunk. A torn tail chunk — the crash landed mid-append, before the
// producer's chunk was acknowledged — is dropped, exactly like a torn
// WAL record.
func (w *WAL) LoadStream(path string) (*dataio.StreamHeader, []dataio.Frame, bool, error) {
	f, err := w.fs.Open(path)
	if err != nil {
		return nil, nil, false, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	// One shared bufio.Reader serves both stages: ReadStreamHeader
	// re-wraps its argument, and bufio.NewReader returns a default-size
	// *bufio.Reader unchanged, so no chunk bytes are swallowed.
	br := bufio.NewReader(f)
	hdr, err := dataio.ReadStreamHeader(br)
	if err != nil {
		return nil, nil, false, fmt.Errorf("store: reading stream spool opening: %w", err)
	}
	var frames []dataio.Frame
	eof := false
	for {
		chunk, isEOF, err := dataio.ReadChunk(br, hdr.WindowN)
		if err != nil {
			break // clean end of journal, or a torn tail chunk: keep what verified
		}
		if isEOF {
			eof = true
			break
		}
		frames = append(frames, chunk...)
	}
	return hdr, frames, eof, nil
}

// WriteCheckpoint writes an OBJCKv1 object atomically through the
// filesystem seam: tmp, write, SYNC, rename. The sync before rename is
// what the pre-store path skipped — without it a crash shortly after
// rename can leave a complete-looking file with unwritten pages.
func (w *WAL) WriteCheckpoint(path string, slices []*grid.Complex2D) error {
	return w.writeFileAtomic(path, func(f faultfs.File) error {
		return dataio.WriteObject(f, slices)
	})
}

// RemoveObject deletes a superseded checkpoint file through the
// filesystem seam (so fault injection sees the removal too).
func (w *WAL) RemoveObject(path string) error { return w.fs.Remove(path) }

func (w *WAL) writeFileAtomic(path string, fill func(faultfs.File) error) error {
	tmp := path + ".tmp"
	f, err := w.fs.Create(tmp)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		w.fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		w.fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		w.fs.Remove(tmp)
		return err
	}
	if err := w.fs.Rename(tmp, path); err != nil {
		w.fs.Remove(tmp)
		return err
	}
	return nil
}

// Sync flushes the log tail to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	if err := w.syncLocked(); err != nil {
		return fmt.Errorf("store: syncing WAL: %w", err)
	}
	return nil
}

// syncLocked fsyncs the log and reports the latency to the observer.
// Callers hold w.mu.
func (w *WAL) syncLocked() error {
	start := time.Now()
	if err := w.file.Sync(); err != nil {
		return err
	}
	w.syncs++
	if w.syncObs != nil {
		w.syncObs(time.Since(start))
	}
	return nil
}

// SetSyncObserver installs a callback that receives the duration of
// every subsequent log fsync — the jobs service feeds it into its
// WAL-latency histogram. Call before the store sees concurrent use;
// nil removes the observer.
func (w *WAL) SetSyncObserver(fn func(time.Duration)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.syncObs = fn
}

func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{Records: w.records, Syncs: w.syncs, Compactions: w.compactions, WALBytes: w.walBytes}
}

// Close flushes and releases every handle. Idempotent.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	var first error
	if err := w.file.Sync(); err != nil && first == nil {
		first = err
	}
	if err := w.file.Close(); err != nil && first == nil {
		first = err
	}
	for _, f := range w.spools {
		f.Close()
	}
	w.spools = nil
	return first
}
