package store

import (
	"bytes"
	"reflect"
	"testing"

	"ptychopath/internal/wire"
	"ptychopath/internal/wire/wiretest"
)

// conformanceRecords is the fixed record sequence behind the WAL
// golden vectors — a full job lifecycle with hand-written timestamps
// so the bytes are stable across runs and machines.
func conformanceRecords() []struct {
	kind    byte
	payload string
} {
	return []struct {
		kind    byte
		payload string
	}{
		{recSubmit, `{"id":"job-0001","key":"k","created":"2026-08-08T10:00:00Z"}`},
		{recStart, `{"id":"job-0001","started":"2026-08-08T10:00:01Z"}`},
		{recIteration, `{"id":"job-0001","iter":1,"cost":0.5}`},
		{recCheckpoint, `{"id":"job-0001","path":"/x/job-0001.objck","iter":1}`},
		{recFinish, `{"id":"job-0001","state":"done","finished":"2026-08-08T10:01:00Z"}`},
	}
}

// conformanceWAL encodes the fixture lifecycle under the given magic
// and checksum generation — GenCurrent reproduces what the production
// writer emits, GenIEEE what the pre-Castagnoli writer emitted.
func conformanceWAL(magic [8]byte, g wire.Gen) []byte {
	buf := append([]byte(nil), magic[:]...)
	for _, r := range conformanceRecords() {
		buf = wire.AppendChunk(buf, r.kind, []byte(r.payload), g)
	}
	return buf
}

// TestGoldenWAL pins both WAL encodings to committed bytes, proves the
// production appendFrame reproduces the current golden, and runs the
// differential replay: legacy and current logs must recover to deeply
// equal state.
func TestGoldenWAL(t *testing.T) {
	current := conformanceWAL(walMagic, wire.GenCurrent)
	legacy := conformanceWAL(walMagicV1, wire.GenIEEE)
	wiretest.Golden(t, "wal_v2_castagnoli.golden", current)
	wiretest.Golden(t, "wal_v1_ieee.golden", legacy)

	reenc := append([]byte(nil), walMagic[:]...)
	for _, r := range conformanceRecords() {
		reenc = appendFrame(reenc, r.kind, []byte(r.payload))
	}
	if !bytes.Equal(reenc, current) {
		t.Fatal("production appendFrame diverges from the golden encoding")
	}

	recCur, offCur, err := ReplayWAL(bytes.NewReader(current))
	if err != nil {
		t.Fatal(err)
	}
	recOld, offOld, err := ReplayWAL(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("replaying legacy IEEE-framed WAL: %v", err)
	}
	if offCur != int64(len(current)) || offOld != int64(len(legacy)) {
		t.Fatalf("replay stopped early: %d/%d and %d/%d bytes", offCur, len(current), offOld, len(legacy))
	}
	if !reflect.DeepEqual(recCur, recOld) {
		t.Fatal("legacy and current WALs recover to different state")
	}
	if len(recCur.Jobs) != 1 || recCur.Jobs[0].ID != "job-0001" {
		t.Fatalf("recovered %+v, want the one fixture job", recCur.Jobs)
	}

	// Mixed-generation log: a v1 file reopened by the current writer
	// gets Castagnoli records appended after its IEEE ones. Per-record
	// dual-accept must replay it all.
	mixed := append([]byte(nil), legacy...)
	mixed = appendFrame(mixed, recIteration, []byte(`{"id":"job-0001","iter":2,"cost":0.25}`))
	if _, off, err := ReplayWAL(bytes.NewReader(mixed)); err != nil || off != int64(len(mixed)) {
		t.Fatalf("mixed-generation replay: offset %d/%d, err %v", off, len(mixed), err)
	}
}

// TestRecordAppendAllocs is the allocation-budget guard for the WAL
// hot path: framing a record into a warm scratch buffer is zero-alloc.
func TestRecordAppendAllocs(t *testing.T) {
	payload := []byte(`{"id":"job-0001","iter":1,"cost":0.5}`)
	buf := appendFrame(nil, recIteration, payload)
	allocs := testing.AllocsPerRun(100, func() {
		buf = appendFrame(buf[:0], recIteration, payload)
	})
	if allocs > 0 {
		t.Errorf("warm appendFrame: %.0f allocs/op, budget 0", allocs)
	}
}
