package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ptychopath/internal/dataio"
	"ptychopath/internal/jobs/store/faultfs"
	"ptychopath/internal/phantom"
	"ptychopath/internal/physics"
	"ptychopath/internal/scan"
	"ptychopath/internal/solver"
)

func sampleProblem(t testing.TB) *solver.Problem {
	t.Helper()
	pat, err := scan.Raster(scan.RasterConfig{Cols: 3, Rows: 3, StepPix: 5, RadiusPix: 6, MarginPix: 6})
	if err != nil {
		t.Fatal(err)
	}
	obj := phantom.RandomObject(pat.ImageW, pat.ImageH, 1, 7)
	prob, err := solver.Simulate(solver.SimulateConfig{
		Optics: physics.PaperOptics(), Pattern: pat, Object: obj, WindowN: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prob
}

func openTestWAL(t testing.TB, dir string, fs faultfs.FS) *WAL {
	t.Helper()
	w, err := OpenWAL(WALConfig{Dir: dir, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// logLifecycle writes one complete batch-job lifecycle and returns the
// finished record's expectations.
func logLifecycle(t testing.TB, w *WAL, id, key string) {
	t.Helper()
	created := time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.LogSubmit(SubmitRecord{
		ID: id, Params: json.RawMessage(`{"iterations":5}`), Key: key,
		Dataset: w.DatasetPath(id), Created: created,
	}))
	must(w.LogStart(id, created.Add(time.Second)))
	must(w.LogIteration(id, 1, 0.9))
	must(w.LogIteration(id, 2, 0.5))
	must(w.LogCheckpoint(id, filepath.Join(w.dir, id+".objck"), 2))
	must(w.LogIteration(id, 3, 0.25))
	must(w.LogFinish(id, "done", "", created.Add(time.Minute)))
}

func findJob(t testing.TB, rec *Recovery, id string) *JobRecord {
	t.Helper()
	for i := range rec.Jobs {
		if rec.Jobs[i].ID == id {
			return &rec.Jobs[i]
		}
	}
	t.Fatalf("job %s not recovered (have %d jobs)", id, len(rec.Jobs))
	return nil
}

// TestWALLifecycleRoundtrip: a full lifecycle survives close + reopen
// with every field merged to its latest state.
func TestWALLifecycleRoundtrip(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, nil)
	logLifecycle(t, w, "job-0001", "key-a")
	if err := w.LogSubmit(SubmitRecord{ID: "job-0002", Streaming: true, Created: time.Now().UTC()}); err != nil {
		t.Fatal(err)
	}
	if err := w.LogFrames("job-0002", 9); err != nil {
		t.Fatal(err)
	}
	if err := w.LogEOF("job-0002"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := openTestWAL(t, dir, nil)
	defer w2.Close()
	rec, err := w2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Torn != 0 {
		t.Fatalf("clean reopen reported %d torn records", rec.Torn)
	}
	if rec.Records != 10 {
		t.Fatalf("replayed %d records, want 10", rec.Records)
	}
	j := findJob(t, rec, "job-0001")
	if !j.Terminal() || j.State != "done" {
		t.Fatalf("state = %q, want done", j.State)
	}
	if j.Iter != 3 || j.Cost != 0.25 {
		t.Fatalf("progress = %d @ %g, want 3 @ 0.25", j.Iter, j.Cost)
	}
	if want := []float64{0.9, 0.5, 0.25}; len(j.CostHistory) != 3 ||
		j.CostHistory[0] != want[0] || j.CostHistory[1] != want[1] || j.CostHistory[2] != want[2] {
		t.Fatalf("history = %v, want %v", j.CostHistory, want)
	}
	if j.CheckpointIter != 2 || j.CheckpointPath == "" {
		t.Fatalf("checkpoint = %q @ %d, want path @ 2", j.CheckpointPath, j.CheckpointIter)
	}
	if rec.Keys["key-a"] != "job-0001" {
		t.Fatalf("idempotency key not recovered: %v", rec.Keys)
	}
	s := findJob(t, rec, "job-0002")
	if !s.Streaming || s.Frames != 9 || !s.EOF || s.State != "queued" {
		t.Fatalf("stream job: %+v", s)
	}
	// Jobs come back in ID order for deterministic re-enqueue.
	if rec.Jobs[0].ID != "job-0001" || rec.Jobs[1].ID != "job-0002" {
		t.Fatalf("order: %s, %s", rec.Jobs[0].ID, rec.Jobs[1].ID)
	}
}

// TestWALSpoolRoundtrip: datasets, warm-start objects and stream
// journals survive the spool + load cycle.
func TestWALSpoolRoundtrip(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, nil)
	defer w.Close()
	prob := sampleProblem(t)

	path, err := w.SpoolDataset("job-0001", prob)
	if err != nil {
		t.Fatal(err)
	}
	got, err := w.LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pattern.N() != prob.Pattern.N() || got.WindowN != prob.WindowN {
		t.Fatalf("dataset mismatch: %d locs, window %d", got.Pattern.N(), got.WindowN)
	}

	objPath, err := w.SpoolInitObject("job-0001", phantom.RandomObject(8, 8, 2, 3).Slices)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := w.LoadObject(objPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(obj) != 2 {
		t.Fatalf("init object slices = %d, want 2", len(obj))
	}
	if p, err := w.SpoolInitObject("job-0002", nil); p != "" || err != nil {
		t.Fatalf("nil init object should spool to nothing, got %q, %v", p, err)
	}

	hdr := dataio.HeaderFromProblem(prob)
	spool, err := w.SpoolStreamOpen("job-0003", hdr)
	if err != nil {
		t.Fatal(err)
	}
	frames := make([]dataio.Frame, prob.Pattern.N())
	for i := range frames {
		frames[i] = dataio.Frame{Loc: prob.Pattern.Locations[i], Meas: prob.Meas[i]}
	}
	if err := w.SpoolFrames("job-0003", hdr.WindowN, frames[:4]); err != nil {
		t.Fatal(err)
	}
	if err := w.SpoolFrames("job-0003", hdr.WindowN, frames[4:]); err != nil {
		t.Fatal(err)
	}
	if err := w.SpoolStreamEOF("job-0003"); err != nil {
		t.Fatal(err)
	}
	ghdr, gframes, eof, err := w.LoadStream(spool)
	if err != nil {
		t.Fatal(err)
	}
	if ghdr.WindowN != hdr.WindowN || len(gframes) != len(frames) || !eof {
		t.Fatalf("stream replay: window %d, %d frames, eof %v", ghdr.WindowN, len(gframes), eof)
	}
	for i := range frames {
		if gframes[i].Loc != frames[i].Loc || gframes[i].Meas.MaxDiff(frames[i].Meas) != 0 {
			t.Fatalf("frame %d differs after replay", i)
		}
	}
}

// TestWALCompaction: crossing the record budget folds state into the
// snapshot, resets the log, and reopen sees identical state.
func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALConfig{Dir: dir, CompactEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	logLifecycle(t, w, "job-0001", "key-a") // 7 records → one compaction
	st := w.Stats()
	if st.Compactions < 1 {
		t.Fatalf("compactions = %d, want ≥ 1", st.Compactions)
	}
	if _, err := os.Stat(filepath.Join(dir, "jobs.snap")); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}
	if st.WALBytes >= 200 {
		t.Fatalf("WAL not reset by compaction: %d bytes", st.WALBytes)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := openTestWAL(t, dir, nil)
	defer w2.Close()
	rec, _ := w2.Recover()
	j := findJob(t, rec, "job-0001")
	if j.State != "done" || j.Iter != 3 || len(j.CostHistory) != 3 {
		t.Fatalf("post-compaction recovery: %+v", j)
	}
	if rec.Keys["key-a"] != "job-0001" {
		t.Fatal("idempotency key lost in compaction")
	}
}

// TestWALDoubleApplyAcrossCompaction models the compaction crash
// window: the snapshot has been renamed into place but the log was not
// yet reset, so replay applies every record twice. State must come out
// identical — records are absolute and history is deduped.
func TestWALDoubleApplyAcrossCompaction(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, nil)
	logLifecycle(t, w, "job-0001", "key-a")
	walCopy, err := os.ReadFile(filepath.Join(dir, "jobs.wal"))
	if err != nil {
		t.Fatal(err)
	}
	// Force the compaction, then restore the pre-compaction log: the
	// exact on-disk state of a crash between snapshot rename and log
	// reset.
	w.mu.Lock()
	if err := w.compactLocked(); err != nil {
		w.mu.Unlock()
		t.Fatal(err)
	}
	w.mu.Unlock()
	w.Close()
	if err := os.WriteFile(filepath.Join(dir, "jobs.wal"), walCopy, 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := openTestWAL(t, dir, nil)
	defer w2.Close()
	rec, _ := w2.Recover()
	j := findJob(t, rec, "job-0001")
	if j.State != "done" || j.Iter != 3 {
		t.Fatalf("double-apply state: %+v", j)
	}
	if len(j.CostHistory) != 3 {
		t.Fatalf("double-apply duplicated history: %v", j.CostHistory)
	}
	if len(rec.Jobs) != 1 {
		t.Fatalf("double-apply duplicated jobs: %d", len(rec.Jobs))
	}
}

// TestWALTornTailTruncated: garbage after the last intact record is
// reported, dropped, and physically truncated so the next incarnation
// reopens clean.
func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, nil)
	logLifecycle(t, w, "job-0001", "key-a")
	w.Close()

	walPath := filepath.Join(dir, "jobs.wal")
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{'J', 0xFF, 0xEE}) // a record that never finished
	f.Close()

	w2 := openTestWAL(t, dir, nil)
	rec, _ := w2.Recover()
	if rec.Torn != 1 {
		t.Fatalf("torn = %d, want 1", rec.Torn)
	}
	j := findJob(t, rec, "job-0001")
	if j.State != "done" {
		t.Fatalf("torn tail corrupted earlier state: %+v", j)
	}
	// The torn bytes are gone from disk and appends continue cleanly.
	if err := w2.LogSubmit(SubmitRecord{ID: "job-0002", Created: time.Now().UTC()}); err != nil {
		t.Fatal(err)
	}
	w2.Close()

	w3 := openTestWAL(t, dir, nil)
	defer w3.Close()
	rec3, _ := w3.Recover()
	if rec3.Torn != 0 {
		t.Fatalf("third open still torn: %d", rec3.Torn)
	}
	findJob(t, rec3, "job-0002")
}

// TestWALCrashMidAppend uses the fault injector to tear a synced append
// exactly as a crash would, then reopens with a clean FS: everything
// acknowledged before the kill is recovered, the torn record is not.
func TestWALCrashMidAppend(t *testing.T) {
	dir := t.TempDir()
	fault := faultfs.Wrap(faultfs.OS{})
	w := openTestWAL(t, dir, fault)
	logLifecycle(t, w, "job-0001", "key-a")

	fault.KillAfterBytes(10) // the next record tears mid-frame
	err := w.LogSubmit(SubmitRecord{ID: "job-0002", Key: "key-b", Created: time.Now().UTC()})
	if !errors.Is(err, faultfs.ErrKilled) {
		t.Fatalf("append after kill: err = %v, want ErrKilled", err)
	}
	w.Close() // releases handles; the directory is frozen

	w2 := openTestWAL(t, dir, nil)
	defer w2.Close()
	rec, _ := w2.Recover()
	if rec.Torn != 1 {
		t.Fatalf("torn = %d, want 1", rec.Torn)
	}
	j := findJob(t, rec, "job-0001")
	if j.State != "done" || j.Iter != 3 {
		t.Fatalf("acknowledged records lost: %+v", j)
	}
	if _, ok := rec.Keys["key-b"]; ok {
		t.Fatal("unacknowledged submission resurrected")
	}
	if len(rec.Jobs) != 1 {
		t.Fatalf("jobs = %d, want 1", len(rec.Jobs))
	}
}

// TestWALSyncFailureSurfaces: a failing fsync must surface on the
// synced append paths — the service treats it as a submission error.
func TestWALSyncFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	fault := faultfs.Wrap(faultfs.OS{})
	w := openTestWAL(t, dir, fault)
	defer w.Close()
	fault.FailSync(true)
	if err := w.LogSubmit(SubmitRecord{ID: "job-0001", Created: time.Now().UTC()}); !errors.Is(err, faultfs.ErrSyncFailed) {
		t.Fatalf("LogSubmit under sync failure: %v, want ErrSyncFailed", err)
	}
	// Unsynced appends do not care.
	if err := w.LogIteration("job-0001", 1, 0.5); err != nil {
		t.Fatalf("LogIteration under sync failure: %v", err)
	}
	fault.FailSync(false)
}

// TestWALForeignFileRefused: a state file with the wrong magic is a
// configuration error, not a torn tail.
func TestWALForeignFileRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "jobs.wal"), []byte("OBJCKv1\x00 definitely not a WAL"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(WALConfig{Dir: dir}); !errors.Is(err, ErrNotWAL) {
		t.Fatalf("err = %v, want ErrNotWAL", err)
	}
}

// TestWALPrefixReplayProperty is the satellite property test: replaying
// ANY byte prefix of a recorded WAL yields a valid state — no error, no
// panic, jobs a consistent subset of the full replay. This is exactly
// the guarantee crash recovery rests on: a crash can cut the log at any
// byte, and every cut must replay to a state the service can serve.
func TestWALPrefixReplayProperty(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, nil)
	logLifecycle(t, w, "job-0001", "key-a")
	if err := w.LogSubmit(SubmitRecord{ID: "job-0002", Key: "key-b", Streaming: true, Created: time.Now().UTC()}); err != nil {
		t.Fatal(err)
	}
	if err := w.LogFrames("job-0002", 4); err != nil {
		t.Fatal(err)
	}
	if err := w.LogEOF("job-0002"); err != nil {
		t.Fatal(err)
	}
	// A tenant-keyed interactive submission (PTYWALv2 sched addendum):
	// the params payload is opaque to the store, and every prefix that
	// contains the record must return it byte-for-byte — scheduling
	// identity survives any crash cut.
	schedParams := json.RawMessage(`{"iterations":7,"tenant":"vip","priority":"interactive"}`)
	if err := w.LogSubmit(SubmitRecord{ID: "job-0003", Key: "key-c", Params: schedParams, Created: time.Now().UTC()}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	data, err := os.ReadFile(filepath.Join(dir, "jobs.wal"))
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := ReplayWAL(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	fullJobs := make(map[string]JobRecord)
	for _, j := range full.Jobs {
		fullJobs[j.ID] = j
	}
	valid := map[string]bool{"queued": true, "running": true, "done": true, "failed": true, "cancelled": true}

	for cut := 0; cut <= len(data); cut++ {
		rec, _, err := ReplayWAL(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatalf("prefix %d: %v", cut, err)
		}
		for _, j := range rec.Jobs {
			fj, ok := fullJobs[j.ID]
			if !ok {
				t.Fatalf("prefix %d invented job %s", cut, j.ID)
			}
			if !valid[j.State] {
				t.Fatalf("prefix %d: job %s in invalid state %q", cut, j.ID, j.State)
			}
			if j.Iter > fj.Iter || j.Frames > fj.Frames {
				t.Fatalf("prefix %d: job %s ahead of full replay", cut, j.ID)
			}
			if j.ID == "job-0003" && !bytes.Equal(j.Params, schedParams) {
				t.Fatalf("prefix %d: job %s params %s, want the submitted sched payload", cut, j.ID, j.Params)
			}
			if len(j.CostHistory) > 0 && j.CostHistory[len(j.CostHistory)-1] != j.Cost && j.Iter > 0 {
				// History tail tracks latest cost once iterations exist.
				t.Fatalf("prefix %d: job %s history tail %g != cost %g",
					cut, j.ID, j.CostHistory[len(j.CostHistory)-1], j.Cost)
			}
		}
		for key, id := range rec.Keys {
			if full.Keys[key] != id {
				t.Fatalf("prefix %d: key %q→%s not in full replay", cut, key, id)
			}
		}
		// A prefix can only tear the final record.
		if rec.Torn > 1 {
			t.Fatalf("prefix %d: torn = %d", cut, rec.Torn)
		}
	}
}
