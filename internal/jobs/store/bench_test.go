package store

import (
	"testing"
)

// BenchmarkRecordAppend measures framing one iteration record into a
// warm scratch buffer — the per-record cost of WAL.append before the
// write syscall.
func BenchmarkRecordAppend(b *testing.B) {
	payload := []byte(`{"id":"job-0001","iter":1,"cost":0.5,"updated":"2026-08-08T10:00:02Z"}`)
	buf := appendFrame(nil, recIteration, payload)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendFrame(buf[:0], recIteration, payload)
	}
}
