// Package faultfs is the filesystem seam of the durable job store — and
// its crash harness. Everything internal/jobs/store writes goes through
// the FS interface (open, write, sync, rename, truncate), so a test can
// swap the real filesystem for a Fault wrapper that kills the "process"
// at byte N, tears a write in half, or fails fsync — and then reopen the
// directory with a clean FS to prove that recovery is exact, not merely
// plausible.
//
// The model is a hard kill (SIGKILL / power loss at the filesystem
// layer): once the injector trips, EVERY subsequent operation on the
// wrapped FS fails with ErrKilled and nothing further reaches the
// directory. A write in flight when the byte budget runs out persists
// only its first remaining-budget bytes — the torn-record case a real
// crash produces. The directory contents at that instant are exactly
// what a restarted process would find.
package faultfs

import (
	"errors"
	"io"
	"os"
	"sync"
)

// FS is the filesystem surface the job store needs. The production
// implementation is OS; tests wrap any FS in a Fault.
type FS interface {
	// Create opens a new (truncated) file for writing.
	Create(name string) (File, error)
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name; missing files are not an error.
	Remove(name string) error
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
	// MkdirAll creates the directory path (and parents).
	MkdirAll(path string) error
	// Size returns the byte size of name.
	Size(name string) (int64, error)
}

// File is one open file on an FS.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
}

// OS is the production FS: a thin veneer over package os.
type OS struct{}

func (OS) Create(name string) (File, error) { return os.Create(name) }

func (OS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_APPEND|os.O_RDWR, 0o644)
}

func (OS) Open(name string) (File, error) { return os.Open(name) }

func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (OS) Remove(name string) error {
	err := os.Remove(name)
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (OS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

func (OS) Size(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Injection errors.
var (
	// ErrKilled is returned by every operation after the injector
	// tripped — the moral equivalent of the process being SIGKILLed.
	ErrKilled = errors.New("faultfs: killed")
	// ErrSyncFailed is returned by File.Sync while sync failure is
	// armed — a full disk or a dying device at the worst moment.
	ErrSyncFailed = errors.New("faultfs: sync failed")
)

// Fault wraps an FS with crash and fault injection. Arm it with
// KillAfterBytes / Kill / FailSync; all methods are safe for concurrent
// use (the store writes from multiple goroutines).
type Fault struct {
	inner FS

	mu       sync.Mutex
	budget   int64 // bytes that may still be written; -1 = unlimited
	killed   bool
	failSync bool

	bytesWritten int64
	syncs        int64
}

// Wrap returns a Fault around inner with no fault armed.
func Wrap(inner FS) *Fault {
	return &Fault{inner: inner, budget: -1}
}

// KillAfterBytes arms the kill switch n written bytes from now: the
// write that crosses the budget persists only its first in-budget bytes
// (a torn write), fails with ErrKilled, and every later operation fails
// too. KillAfterBytes(0) kills on the next write.
func (f *Fault) KillAfterBytes(n int64) {
	f.mu.Lock()
	f.budget = n
	f.mu.Unlock()
}

// Kill trips the switch immediately: all subsequent operations fail
// with ErrKilled. Use it to freeze a directory at an arbitrary moment
// while the service is live.
func (f *Fault) Kill() {
	f.mu.Lock()
	f.killed = true
	f.mu.Unlock()
}

// Killed reports whether the switch has tripped.
func (f *Fault) Killed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.killed
}

// FailSync arms (or disarms) fsync failure: File.Sync returns
// ErrSyncFailed while armed. Writes still succeed — the data is in the
// page cache but has no durability guarantee, exactly the state a real
// fsync failure leaves behind.
func (f *Fault) FailSync(on bool) {
	f.mu.Lock()
	f.failSync = on
	f.mu.Unlock()
}

// BytesWritten returns the total bytes written through the wrapper.
func (f *Fault) BytesWritten() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bytesWritten
}

// Syncs returns the number of successful Sync calls.
func (f *Fault) Syncs() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

// check returns ErrKilled once the switch has tripped.
func (f *Fault) check() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.killed {
		return ErrKilled
	}
	return nil
}

func (f *Fault) Create(name string) (File, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *Fault) OpenAppend(name string) (File, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *Fault) Open(name string) (File, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *Fault) Rename(oldname, newname string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.Rename(oldname, newname)
}

func (f *Fault) Remove(name string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *Fault) Truncate(name string, size int64) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.Truncate(name, size)
}

func (f *Fault) MkdirAll(path string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.MkdirAll(path)
}

func (f *Fault) Size(name string) (int64, error) {
	if err := f.check(); err != nil {
		return 0, err
	}
	return f.inner.Size(name)
}

// faultFile applies the wrapper's state to one open file.
type faultFile struct {
	fs    *Fault
	inner File
}

func (f *faultFile) Read(p []byte) (int, error) {
	if err := f.fs.check(); err != nil {
		return 0, err
	}
	return f.inner.Read(p)
}

// Write spends the byte budget. When the budget runs out mid-write the
// in-budget prefix reaches the inner file — the torn write — and the
// kill switch trips.
func (f *faultFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	if f.fs.killed {
		f.fs.mu.Unlock()
		return 0, ErrKilled
	}
	n := int64(len(p))
	torn := false
	if f.fs.budget >= 0 {
		if f.fs.budget < n {
			n = f.fs.budget
			torn = true
			f.fs.killed = true
		}
		f.fs.budget -= n
	}
	f.fs.bytesWritten += n
	f.fs.mu.Unlock()

	written, err := f.inner.Write(p[:n])
	if err != nil {
		return written, err
	}
	if torn {
		return written, ErrKilled
	}
	return written, nil
}

func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	if f.fs.killed {
		f.fs.mu.Unlock()
		return ErrKilled
	}
	if f.fs.failSync {
		f.fs.mu.Unlock()
		return ErrSyncFailed
	}
	f.fs.syncs++
	f.fs.mu.Unlock()
	return f.inner.Sync()
}

// Close passes through even after a kill: the store's cleanup paths
// must be able to release OS handles of a frozen directory.
func (f *faultFile) Close() error { return f.inner.Close() }
