package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestOSRoundtrip exercises the production FS end to end: append, sync,
// read, rename, truncate, size.
func TestOSRoundtrip(t *testing.T) {
	dir := t.TempDir()
	fs := OS{}
	path := filepath.Join(dir, "a.log")

	f, err := fs.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if n, err := fs.Size(path); err != nil || n != 11 {
		t.Fatalf("size = %d, %v; want 11", n, err)
	}
	if err := fs.Truncate(path, 5); err != nil {
		t.Fatal(err)
	}
	moved := filepath.Join(dir, "b.log")
	if err := fs.Rename(path, moved); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(moved)
	if err != nil || string(data) != "hello" {
		t.Fatalf("after truncate+rename: %q, %v; want \"hello\"", data, err)
	}
	if err := fs.Remove(moved); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(moved); err != nil {
		t.Fatalf("removing a missing file should be a no-op, got %v", err)
	}
}

// TestKillAfterBytesTearsTheCrossingWrite proves the core crash
// semantics: the write that crosses the byte budget persists exactly its
// in-budget prefix, then everything fails with ErrKilled.
func TestKillAfterBytesTearsTheCrossingWrite(t *testing.T) {
	dir := t.TempDir()
	fs := Wrap(OS{})
	path := filepath.Join(dir, "wal")

	f, err := fs.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	fs.KillAfterBytes(4) // next write may only land 4 bytes

	n, err := f.Write([]byte("ABCDEFGH"))
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("crossing write: err = %v, want ErrKilled", err)
	}
	if n != 4 {
		t.Fatalf("crossing write persisted %d bytes, want 4", n)
	}
	if _, err := f.Write([]byte("more")); !errors.Is(err, ErrKilled) {
		t.Fatalf("post-kill write: err = %v, want ErrKilled", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrKilled) {
		t.Fatalf("post-kill sync: err = %v, want ErrKilled", err)
	}
	if _, err := fs.Create(filepath.Join(dir, "new")); !errors.Is(err, ErrKilled) {
		t.Fatalf("post-kill create: err = %v, want ErrKilled", err)
	}
	if err := fs.Rename(path, path+"x"); !errors.Is(err, ErrKilled) {
		t.Fatalf("post-kill rename: err = %v, want ErrKilled", err)
	}
	f.Close() // close still works: handles must be releasable

	// The "disk" holds the pre-kill bytes plus the torn prefix.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "0123456789ABCD" {
		t.Fatalf("disk state %q, want \"0123456789ABCD\"", data)
	}
}

// TestKillFreezesTheDirectory: Kill() with no budget stops everything
// at once.
func TestKillFreezesTheDirectory(t *testing.T) {
	dir := t.TempDir()
	fs := Wrap(OS{})
	f, err := fs.OpenAppend(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("committed")); err != nil {
		t.Fatal(err)
	}
	fs.Kill()
	if !fs.Killed() {
		t.Fatal("Killed() = false after Kill()")
	}
	if _, err := f.Write([]byte("lost")); !errors.Is(err, ErrKilled) {
		t.Fatalf("err = %v, want ErrKilled", err)
	}
	data, _ := os.ReadFile(filepath.Join(dir, "wal"))
	if string(data) != "committed" {
		t.Fatalf("disk state %q, want \"committed\"", data)
	}
}

// TestFailSync: writes succeed, Sync reports ErrSyncFailed, and
// disarming restores normal operation.
func TestFailSync(t *testing.T) {
	dir := t.TempDir()
	fs := Wrap(OS{})
	f, err := fs.OpenAppend(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	fs.FailSync(true)
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("write under FailSync: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("sync: err = %v, want ErrSyncFailed", err)
	}
	fs.FailSync(false)
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after disarm: %v", err)
	}
	if fs.Syncs() != 1 {
		t.Fatalf("Syncs() = %d, want 1 (failed sync must not count)", fs.Syncs())
	}
}

// TestBudgetAccounting: exact-budget writes succeed and the byte
// counter tracks what reached the inner FS.
func TestBudgetAccounting(t *testing.T) {
	dir := t.TempDir()
	fs := Wrap(OS{})
	f, err := fs.OpenAppend(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	fs.KillAfterBytes(5)
	if n, err := f.Write([]byte("12345")); err != nil || n != 5 {
		t.Fatalf("exact-budget write: n=%d err=%v, want 5,nil", n, err)
	}
	// Budget is now 0: the next write tears at 0 bytes.
	if n, err := f.Write([]byte("6")); !errors.Is(err, ErrKilled) || n != 0 {
		t.Fatalf("zero-budget write: n=%d err=%v, want 0,ErrKilled", n, err)
	}
	if fs.BytesWritten() != 5 {
		t.Fatalf("BytesWritten() = %d, want 5", fs.BytesWritten())
	}
}
