package httpapi

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"testing"

	"ptychopath/client"
	"ptychopath/internal/dataio"
)

// TestStatusAndDebugEndpoints drives the fleet-status rollup and the
// per-job debug bundle through the typed SDK: submit, wait, then check
// that one /v1/status poll and one /v1/jobs/{id}/debug fetch carry the
// whole operational picture.
func TestStatusAndDebugEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)
	ctx := context.Background()
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 2 || st.WorkersIdle != 2 || st.QueueDepth != 0 {
		t.Errorf("idle status %d/%d workers, queue %d; want 2/2, 0",
			st.WorkersIdle, st.Workers, st.QueueDepth)
	}
	for _, state := range []string{"queued", "running", "done", "failed", "cancelled"} {
		if _, ok := st.Jobs[state]; !ok {
			t.Errorf("job census missing state %q: %v", state, st.Jobs)
		}
	}
	if st.Grid != nil {
		t.Error("grid block present without a grid")
	}
	if st.Time.IsZero() || st.UptimeSeconds <= 0 {
		t.Errorf("time %v / uptime %v, want populated", st.Time, st.UptimeSeconds)
	}

	var upload bytes.Buffer
	if err := dataio.Write(&upload, testProblem(t)); err != nil {
		t.Fatal(err)
	}
	job, err := c.Submit(ctx, client.SubmitRequest{Algorithm: "serial", Iterations: 3}, &upload)
	if err != nil {
		t.Fatal(err)
	}
	if job.Prediction == nil || job.Prediction.Seconds <= 0 {
		t.Fatalf("submitted job carries no runtime prediction: %+v", job.Prediction)
	}
	job, err = c.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != client.StateDone {
		t.Fatalf("job state %s (%s), want done", job.State, job.Error)
	}
	if job.ActualSeconds <= 0 || job.PredictionErrorRatio <= 0 {
		t.Errorf("finished job actual=%v ratio=%v, want both > 0",
			job.ActualSeconds, job.PredictionErrorRatio)
	}

	st, err = c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs["done"] != 1 {
		t.Errorf("job census %v, want one done", st.Jobs)
	}
	if st.Prediction.Jobs != 1 || st.Prediction.LastErrorRatio != job.PredictionErrorRatio {
		t.Errorf("prediction summary %+v does not reflect the scored job (ratio %v)",
			st.Prediction, job.PredictionErrorRatio)
	}
	if st.Prediction.CalibrationIters == 0 {
		t.Error("no calibration iterations after a 3-iteration job")
	}

	db, err := c.Debug(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if db.Job.ID != job.ID || db.Job.State != client.StateDone {
		t.Errorf("debug job %s/%s, want %s/done", db.Job.ID, db.Job.State, job.ID)
	}
	// The bundle carries the COMPLETE cost history, not the polling tail.
	if len(db.Job.CostHistory) != 3 {
		t.Errorf("debug cost history length %d, want 3", len(db.Job.CostHistory))
	}
	if db.Params.Algorithm != "serial" || db.Params.Iterations != 3 {
		t.Errorf("debug params %+v, want the submitted serial/3", db.Params)
	}
	if len(db.Spans) == 0 {
		t.Error("debug bundle has no spans")
	}
	kinds := map[string]bool{}
	for _, e := range db.Events {
		if e.Time.IsZero() {
			t.Fatalf("flight event without a timestamp: %+v", e)
		}
		kinds[e.Kind] = true
	}
	for _, want := range []string{"prediction", "state", "iteration", "checkpoint"} {
		if !kinds[want] {
			t.Errorf("flight recorder missing %q events (have %v)", want, kinds)
		}
	}

	if _, err := c.Debug(ctx, "no-such-job"); !errors.Is(err, client.ErrNotFound) {
		t.Errorf("debug of a missing job: %v, want ErrNotFound", err)
	}
	// Both endpoints are /v1-only: no deprecated alias.
	if status := getJSON(t, ts.URL+"/status", nil); status != http.StatusNotFound {
		t.Errorf("legacy /status: %d, want 404", status)
	}
	if status := getJSON(t, ts.URL+"/jobs/"+job.ID+"/debug", nil); status != http.StatusNotFound {
		t.Errorf("legacy debug route: %d, want 404", status)
	}
}
