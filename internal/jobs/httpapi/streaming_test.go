package httpapi

import (
	"bufio"
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ptychopath/internal/dataio"
	"ptychopath/internal/jobs"
)

// newHTTPTestServer wraps an externally configured service (tests that
// need specific queue or ingest bounds).
func newHTTPTestServer(t *testing.T, svc *jobs.Service) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(svc).Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Shutdown()
	})
	return ts
}

// chunkBody encodes frames[lo:hi] as one PTYCHSv1 'F' chunk.
func chunkBody(t *testing.T, windowN int, frames []dataio.Frame) *bytes.Reader {
	t.Helper()
	var buf bytes.Buffer
	if err := dataio.WriteFrameChunk(&buf, windowN, frames); err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(buf.Bytes())
}

func pollInfo(t *testing.T, url string, what string, cond func(jobs.Info) bool) jobs.Info {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var cur jobs.Info
		if st := getJSON(t, url, &cur); st != http.StatusOK {
			t.Fatalf("poll %s: status %d", url, st)
		}
		if cond(cur) {
			return cur
		}
		if cur.State == "failed" {
			t.Fatalf("job failed while waiting for %s: %s", what, cur.Error)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
	return jobs.Info{}
}

// TestQueueFullSurfacesAs429 is the backpressure satellite end-to-end:
// overflowing the bounded job queue answers 429 Too Many Requests with
// a Retry-After hint, and the same submission succeeds after a slot
// frees up.
func TestQueueFullSurfacesAs429(t *testing.T) {
	prob := testProblem(t)
	svc, err := jobs.NewService(jobs.Config{
		Workers: 1, QueueDepth: 1, SpoolDir: t.TempDir(), CheckpointEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPTestServer(t, svc)

	var upload bytes.Buffer
	if err := dataio.Write(&upload, prob); err != nil {
		t.Fatal(err)
	}
	submit := func() *http.Response {
		resp, err := http.Post(ts.URL+"/jobs?alg=serial&iters=1000000",
			"application/octet-stream", bytes.NewReader(upload.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	// First job occupies the worker, second fills the depth-1 queue.
	var running, queued jobs.Info
	if st := postJSON(t, ts.URL+"/jobs?alg=serial&iters=1000000", bytes.NewReader(upload.Bytes()), &running); st != http.StatusAccepted {
		t.Fatalf("first submit: %d", st)
	}
	pollInfo(t, ts.URL+"/jobs/"+running.ID, "worker busy", func(i jobs.Info) bool { return i.State == "running" })
	if st := postJSON(t, ts.URL+"/jobs?alg=serial&iters=5", bytes.NewReader(upload.Bytes()), &queued); st != http.StatusAccepted {
		t.Fatalf("second submit: %d", st)
	}

	// Overflow: 429 with a Retry-After hint.
	resp := submit()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without a Retry-After hint")
	}

	// Free the queue slot and retry: accepted.
	if st := postJSON(t, ts.URL+"/jobs/"+queued.ID+"/cancel", nil, nil); st != http.StatusOK {
		t.Fatalf("cancel queued: %d", st)
	}
	var retried jobs.Info
	if st := postJSON(t, ts.URL+"/jobs?alg=serial&iters=5", bytes.NewReader(upload.Bytes()), &retried); st != http.StatusAccepted {
		t.Fatalf("retry after Retry-After: status %d, want 202", st)
	}
	for _, id := range []string{running.ID, retried.ID} {
		postJSON(t, ts.URL+"/jobs/"+id+"/cancel", nil, nil)
	}
}

// TestStreamingEndToEnd drives the live-acquisition scenario over
// HTTP: open a job from a PTYCHSv1 opening, follow it over SSE, feed
// three chunks while it reconstructs, close the stream, and collect
// the finished object.
func TestStreamingEndToEnd(t *testing.T) {
	prob := testProblem(t)
	ts, _ := newTestServer(t)

	var opening bytes.Buffer
	if err := dataio.WriteStreamHeader(&opening, dataio.HeaderFromProblem(prob)); err != nil {
		t.Fatal(err)
	}
	frames := dataio.FramesFromProblem(prob)

	var info jobs.Info
	st := postJSON(t, ts.URL+"/jobs/stream?alg=serial&iters=5&step=0.01&checkpoint-every=1",
		bytes.NewReader(opening.Bytes()), &info)
	if st != http.StatusAccepted {
		t.Fatalf("open stream: status %d", st)
	}
	if !info.Streaming {
		t.Fatalf("job not marked streaming: %+v", info)
	}
	jobURL := ts.URL + "/jobs/" + info.ID

	// Follow the SSE feed concurrently, collecting event types.
	var evMu sync.Mutex
	events := map[string]int{}
	sseDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(jobURL + "/events")
		if err != nil {
			sseDone <- err
			return
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
			sseDone <- fmt.Errorf("events content-type %q", ct)
			return
		}
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if name, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
				evMu.Lock()
				events[name]++
				evMu.Unlock()
			}
		}
		sseDone <- sc.Err()
	}()

	// Feed three chunks, each folded while the job iterates.
	n := len(frames)
	bounds := []int{0, n / 3, 2 * n / 3, n}
	for i := 0; i < 3; i++ {
		resp, err := http.Post(jobURL+"/frames", "application/octet-stream",
			chunkBody(t, prob.WindowN, frames[bounds[i]:bounds[i+1]]))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("chunk %d: status %d", i, resp.StatusCode)
		}
		want := i + 1
		pollInfo(t, jobURL, "fold", func(i jobs.Info) bool { return i.Folds >= want })
	}
	mid := pollInfo(t, jobURL, "all frames ingested", func(i jobs.Info) bool { return i.Frames == n })
	if mid.EOF {
		t.Fatal("stream reports EOF before eof was posted")
	}

	// Close the stream; the job folds the remainder, runs its tail and
	// completes.
	if st := postJSON(t, jobURL+"/eof", nil, nil); st != http.StatusOK {
		t.Fatalf("eof: status %d", st)
	}
	final := pollInfo(t, jobURL, "job done", func(i jobs.Info) bool { return i.State == "done" })
	if final.ActiveFrames != n || !final.EOF || final.Folds < 3 {
		t.Fatalf("final info: %+v", final)
	}
	if final.Iter <= 5 {
		t.Errorf("finished after %d iterations; tail alone is 5, nothing ran mid-stream", final.Iter)
	}

	// The finished object downloads and has the dataset's geometry.
	resp, err := http.Get(jobURL + "/object")
	if err != nil {
		t.Fatal(err)
	}
	obj, err := dataio.ReadObject(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(obj) != prob.Slices || !obj[0].Bounds.Eq(prob.ImageBounds()) {
		t.Fatalf("object: %d slices over %v", len(obj), obj[0].Bounds)
	}

	// The SSE feed ended with the job and saw the whole lifecycle.
	select {
	case err := <-sseDone:
		if err != nil {
			t.Fatalf("SSE: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("SSE feed did not close with the job")
	}
	evMu.Lock()
	defer evMu.Unlock()
	for _, want := range []string{"info", "iteration", "frames", "fold", "snapshot", "eof", "state"} {
		if events[want] == 0 {
			t.Errorf("SSE feed missing %q events (saw %v)", want, events)
		}
	}

	// Frame-level endpoints reject non-streaming and unknown jobs.
	var batchInfo jobs.Info
	var upload bytes.Buffer
	if err := dataio.Write(&upload, prob); err != nil {
		t.Fatal(err)
	}
	if st := postJSON(t, ts.URL+"/jobs?alg=serial&iters=3", bytes.NewReader(upload.Bytes()), &batchInfo); st != http.StatusAccepted {
		t.Fatalf("batch submit: %d", st)
	}
	resp2, err := http.Post(ts.URL+"/jobs/"+batchInfo.ID+"/frames", "application/octet-stream",
		chunkBody(t, prob.WindowN, frames[:1]))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("frames to batch job: status %d, want 409", resp2.StatusCode)
	}
	if st := postJSON(t, ts.URL+"/jobs/job-9999/eof", nil, nil); st != http.StatusNotFound {
		t.Errorf("eof to unknown job: status %d, want 404", st)
	}
}

// TestIngestFullSurfacesAs429: a queued streaming job with a tiny
// ingest bound pushes back on the feeder with 429 + Retry-After, and
// the same chunk succeeds once the engine drains the buffer.
func TestIngestFullSurfacesAs429(t *testing.T) {
	prob := testProblem(t)
	svc, err := jobs.NewService(jobs.Config{
		Workers: 1, QueueDepth: 4, SpoolDir: t.TempDir(), CheckpointEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPTestServer(t, svc)

	// Occupy the only worker so the streaming job cannot drain.
	var upload bytes.Buffer
	if err := dataio.Write(&upload, prob); err != nil {
		t.Fatal(err)
	}
	var blocker jobs.Info
	if st := postJSON(t, ts.URL+"/jobs?alg=serial&iters=1000000", bytes.NewReader(upload.Bytes()), &blocker); st != http.StatusAccepted {
		t.Fatalf("blocker: %d", st)
	}
	pollInfo(t, ts.URL+"/jobs/"+blocker.ID, "blocker running", func(i jobs.Info) bool { return i.State == "running" })

	var opening bytes.Buffer
	if err := dataio.WriteStreamHeader(&opening, dataio.HeaderFromProblem(prob)); err != nil {
		t.Fatal(err)
	}
	var info jobs.Info
	if st := postJSON(t, ts.URL+"/jobs/stream?alg=serial&iters=3&ingest=4", bytes.NewReader(opening.Bytes()), &info); st != http.StatusAccepted {
		t.Fatalf("open stream: %d", st)
	}
	jobURL := ts.URL + "/jobs/" + info.ID
	frames := dataio.FramesFromProblem(prob)

	post := func(lo, hi int) *http.Response {
		resp, err := http.Post(jobURL+"/frames", "application/octet-stream",
			chunkBody(t, prob.WindowN, frames[lo:hi]))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post(0, 3); resp.StatusCode != http.StatusOK {
		t.Fatalf("first chunk: %d", resp.StatusCode)
	}
	resp := post(3, 6) // 3 buffered + 3 > capacity 4
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow chunk: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	// A chunk that can NEVER fit (6 > capacity 4) is a client error,
	// not a retryable 429 — a compliant feeder must split it.
	if resp := post(6, 12); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("chunk over capacity: status %d, want 400", resp.StatusCode)
	}

	// Free the worker; the streaming job folds the backlog and the
	// retried chunk goes through.
	if st := postJSON(t, ts.URL+"/jobs/"+blocker.ID+"/cancel", nil, nil); st != http.StatusOK {
		t.Fatalf("cancel blocker: %d", st)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if resp := post(3, 6); resp.StatusCode == http.StatusOK {
			break
		} else if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("retry: status %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatal("retried chunk never accepted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := postJSON(t, jobURL+"/eof", nil, nil); st != http.StatusOK {
		t.Fatalf("eof: %d", st)
	}
	pollInfo(t, jobURL, "streaming job done", func(i jobs.Info) bool { return i.State == "done" })
}
