package httpapi

// Wire-level crash recovery: the durable pieces of the /v1 surface —
// Idempotency-Key claims, job identity, the recovered_from marker and
// the /object endpoint — must hold across a server restart on the same
// state directory.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"testing"

	"ptychopath/internal/dataio"
	"ptychopath/internal/jobs"
	"ptychopath/internal/jobs/store"
	"ptychopath/internal/jobs/store/faultfs"
)

// durableServer builds one lifetime of the full stack — fault-injected
// filesystem, WAL store, service, HTTP server — on dir. crash() kills
// the filesystem first (synced records stay, every later write fails —
// process death, not graceful drain) and then tears the in-process
// half down.
func durableServer(t *testing.T, dir string) (ts *httptestServer, svc *jobs.Service, crash func()) {
	t.Helper()
	fault := faultfs.Wrap(faultfs.OS{})
	st, err := store.OpenWAL(store.WALConfig{Dir: dir, FS: fault})
	if err != nil {
		t.Fatal(err)
	}
	svc, err = jobs.NewService(jobs.Config{
		Workers: 1, QueueDepth: 8, Store: st,
		SpoolDir: filepath.Join(dir, "checkpoints"), CheckpointEvery: 2,
	})
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	server := newHTTPTestServer(t, svc)
	stopped := false
	teardown := func() {
		if stopped {
			return
		}
		stopped = true
		server.Close()
		svc.Shutdown()
		st.Close()
	}
	t.Cleanup(teardown)
	crash = func() {
		fault.Kill()
		teardown()
	}
	return &httptestServer{server.URL}, svc, crash
}

// httptestServer pins just the URL so a crashed lifetime cannot be
// accidentally reused.
type httptestServer struct{ URL string }

func postIdempotent(t *testing.T, url, key string, body io.Reader, ct string) (jobs.Info, bool) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ct)
	req.Header.Set("Idempotency-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d (%s)", resp.StatusCode, raw)
	}
	var info jobs.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info, resp.Header.Get("Idempotency-Replayed") == "true"
}

// TestV1IdempotencyAcrossRestart drives the crash-retry scenario a
// real producer hits: it submits with an Idempotency-Key, the server
// dies mid-run, and the producer's retry against the restarted server
// must replay the ORIGINAL job — now recovered and finishing — instead
// of enqueueing a duplicate reconstruction.
func TestV1IdempotencyAcrossRestart(t *testing.T) {
	prob := testProblem(t)
	var upload bytes.Buffer
	if err := dataio.Write(&upload, prob); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	const key = "acq-2026-08-08-a"

	ts1, _, crash1 := durableServer(t, dir)
	body, ct := multipartSubmit(t, `{"algorithm":"serial","iterations":300}`, upload.Bytes())
	first, replayed := postIdempotent(t, ts1.URL+"/v1/jobs", key, body, ct)
	if replayed {
		t.Fatal("first submission marked as a replay")
	}
	pollInfo(t, ts1.URL+"/v1/jobs/"+first.ID, "job running", func(i jobs.Info) bool { return i.State == "running" })
	// Crash mid-run: the synced WAL records (submit + key claim +
	// checkpoints) are on disk; the run itself is interrupted.
	crash1()

	ts2, svc2, _ := durableServer(t, dir)
	// Retry of the same submission: same key, same 202, same job ID,
	// flagged as a replay — and the job object now carries the
	// recovery marker.
	body, ct = multipartSubmit(t, `{"algorithm":"serial","iterations":300}`, upload.Bytes())
	second, replayed := postIdempotent(t, ts2.URL+"/v1/jobs", key, body, ct)
	if !replayed {
		t.Error("post-restart retry not marked Idempotency-Replayed")
	}
	if second.ID != first.ID {
		t.Fatalf("post-restart retry enqueued %s, want original %s", second.ID, first.ID)
	}
	if second.RecoveredFrom == "" {
		t.Error("recovered job missing recovered_from on the wire")
	}
	if n := len(svc2.List()); n != 1 {
		t.Fatalf("registry holds %d jobs after the retry, want 1", n)
	}

	fin := pollInfo(t, ts2.URL+"/v1/jobs/"+first.ID, "recovered job done", func(i jobs.Info) bool { return i.State == "done" })
	if fin.Iter != 300 {
		t.Errorf("recovered job finished at iter %d, want 300", fin.Iter)
	}
	// The finished object is servable from the recovered lifetime.
	resp, err := http.Get(ts2.URL + "/v1/jobs/" + first.ID + "/object")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /object after recovery: status %d", resp.StatusCode)
	}
	if _, err := dataio.ReadObject(resp.Body); err != nil {
		t.Fatalf("decoding recovered object: %v", err)
	}
}
