package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ptychopath/internal/dataio"
	"ptychopath/internal/gridworker"
	"ptychopath/internal/jobs"
)

// TestGridEndpointAndSubmit exercises the distributed path end to end
// over HTTP: GET /grid reports the registered workers, POST
// /jobs?alg=gd&grid=1 runs the reconstruction across them, and the job
// completes with the same observable lifecycle as a local one.
func TestGridEndpointAndSubmit(t *testing.T) {
	svc, err := jobs.NewService(jobs.Config{
		Workers: 1, QueueDepth: 4, SpoolDir: t.TempDir(), CheckpointEvery: 2,
		GridAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(svc).Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})

	// No workers yet: /grid reports an enabled, empty pool.
	var grid struct {
		Enabled bool                  `json:"enabled"`
		Addr    string                `json:"addr"`
		Workers []jobs.GridWorkerInfo `json:"workers"`
		Idle    int                   `json:"idle"`
	}
	getJSON(t, ts.URL+"/grid", &grid)
	if !grid.Enabled || grid.Addr == "" || len(grid.Workers) != 0 {
		t.Fatalf("empty grid: %+v", grid)
	}

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	for i := 0; i < 4; i++ {
		go gridworker.Run(ctx, svc.GridAddr(), gridworker.Options{Name: fmt.Sprintf("w%d", i)})
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		getJSON(t, ts.URL+"/grid", &grid)
		if grid.Idle == 4 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if grid.Idle != 4 {
		t.Fatalf("grid never reached 4 idle workers: %+v", grid)
	}

	var buf bytes.Buffer
	if err := dataio.Write(&buf, testProblem(t)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs?alg=gd&grid=1&iters=4&mesh=2x2&checkpoint-every=2",
		"application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var info jobs.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || !info.Grid {
		t.Fatalf("submit: status %d, info %+v", resp.StatusCode, info)
	}

	deadline = time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && info.State != "done" && info.State != "failed" {
		time.Sleep(10 * time.Millisecond)
		getJSON(t, ts.URL+"/jobs/"+info.ID, &info)
	}
	if info.State != "done" {
		t.Fatalf("grid job ended %q (error %q)", info.State, info.Error)
	}
	if info.Iter != 4 {
		t.Fatalf("grid job iter %d, want 4", info.Iter)
	}

	// The hub's routing shows up in /metrics.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var metrics bytes.Buffer
	metrics.ReadFrom(resp.Body)
	for _, want := range []string{"ptychoserve_grid_workers 4", "ptychoserve_grid_sessions_total 1"} {
		if !bytes.Contains(metrics.Bytes(), []byte(want)) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics.String())
		}
	}
}

