// HTTP-layer observability: the request middleware that starts every
// trace (X-Request-ID generation and propagation), the per-route
// latency histogram, structured request logging, and the trace
// timeline endpoint.
//
// The request ID is the trace context of the whole stack: the
// middleware assigns it (or adopts a well-formed one the client sent),
// echoes it on EVERY response — including problem envelopes, since the
// header is set before the handler runs — and the submit handlers
// thread it into jobs.Params so the job's span timeline, its slog
// lines, and the PTGW SETUP frame all carry the same ID.
package httpapi

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strconv"
	"time"

	"ptychopath/client"
	"ptychopath/internal/obs"
)

// requestIDHeader is the trace-context header, assigned by the server
// when the client does not send one.
const requestIDHeader = "X-Request-ID"

// ctxKey keys the request ID into the request context without
// colliding with other packages' context values.
type ctxKey struct{}

// requestIDFrom returns the request's assigned ID ("" outside the
// middleware, e.g. in handler unit tests that bypass Handler()).
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}

// newRequestID returns a fresh 16-hex-char request ID.
func newRequestID() string {
	var b [8]byte
	rand.Read(b[:]) // never fails (crypto/rand panics instead)
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID accepts a client-supplied ID only when it is short
// and printable-token shaped; anything else is discarded so a hostile
// header cannot inject log lines or unbounded label values.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.', c == ':':
		default:
			return ""
		}
	}
	return id
}

// apiKeyHeader names the caller's tenant: submissions are accounted
// (and under wfq, scheduled) against the tenant named by this header.
const apiKeyHeader = "X-API-Key"

// tenantFrom derives a submission's tenant from its X-API-Key header,
// under the same sanitation as request IDs — a hostile key cannot
// inject log lines or metric label values. Empty (or rejected) keys
// return "", which the service books under its anonymous tenant.
func tenantFrom(r *http.Request) string {
	return sanitizeRequestID(r.Header.Get(apiKeyHeader))
}

// respWriter records the response status for the request log and
// histogram. Unwrap keeps http.NewResponseController (and its deadline
// plumbing in the SSE handler) working through the wrapper.
type respWriter struct {
	http.ResponseWriter
	code int
}

func (w *respWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *respWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *respWriter) Flush() {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *respWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *respWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// observe wraps the route mux with the request middleware: assign or
// adopt the X-Request-ID, echo it on the response before the handler
// can write anything (so problem envelopes carry it too), time the
// request, and feed the per-route histogram and the request log.
func (s *Server) observe(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := sanitizeRequestID(r.Header.Get(requestIDHeader))
		if rid == "" {
			rid = newRequestID()
		}
		w.Header().Set(requestIDHeader, rid)
		rw := &respWriter{ResponseWriter: w}
		r = r.WithContext(context.WithValue(r.Context(), ctxKey{}, rid))
		start := time.Now()
		mux.ServeHTTP(rw, r)
		d := time.Since(start)
		// The mux fills in r.Pattern on match — a bounded label set
		// ("GET /v1/jobs/{id}", never the raw path), so the histogram's
		// cardinality cannot be driven by request spam.
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		status := strconv.Itoa(rw.status())
		s.httpDur.Observe(d, route, status)
		s.log.Info("http request",
			"request_id", rid, "method", r.Method, "path", r.URL.Path,
			"route", route, "status", rw.status(), "duration", d)
	})
}

// handleTrace serves a job's span timeline. The default JSON shape is
// the typed client.JobTrace; ?format=chrome exports Chrome trace-event
// JSON for chrome://tracing or ui.perfetto.dev.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	info, spans, err := s.svc.Trace(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, client.JobTrace{
			Job:   wireJob(info),
			Spans: wireSpans(spans),
		})
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition",
			`attachment; filename="`+info.ID+`-trace.json"`)
		obs.WriteChrome(w, info.ID, spans)
	default:
		writeErr(w, badParams("format %q: want json or chrome", format))
	}
}

func wireSpans(spans []obs.Span) []client.TraceSpan {
	out := make([]client.TraceSpan, len(spans))
	for i, sp := range spans {
		out[i] = client.TraceSpan{
			ID:     sp.ID,
			Parent: sp.Parent,
			Name:   sp.Name,
			Rank:   sp.Rank,
			Iter:   sp.Iter,
			Start:  sp.Start,
			End:    sp.End,
			MS:     float64(sp.Duration().Nanoseconds()) / 1e6,
		}
	}
	return out
}
