package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"image/png"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ptychopath/internal/dataio"
	"ptychopath/internal/jobs"
	"ptychopath/internal/phantom"
	"ptychopath/internal/physics"
	"ptychopath/internal/scan"
	"ptychopath/internal/solver"
)

// testProblem builds a dataset big enough that one reconstruction
// iteration takes measurable wall-clock time, so the e2e test can
// reliably observe and cancel a running job.
func testProblem(t *testing.T) *solver.Problem {
	t.Helper()
	pat, err := scan.Raster(scan.RasterConfig{Cols: 6, Rows: 6, StepPix: 6, RadiusPix: 8, MarginPix: 18})
	if err != nil {
		t.Fatal(err)
	}
	obj := phantom.RandomObject(pat.ImageW, pat.ImageH, 1, 1)
	prob, err := solver.Simulate(solver.SimulateConfig{
		Optics: physics.PaperOptics(), Pattern: pat, Object: obj, WindowN: 32, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prob
}

func newTestServer(t *testing.T) (*httptest.Server, *jobs.Service) {
	t.Helper()
	svc, err := jobs.NewService(jobs.Config{
		Workers: 2, QueueDepth: 8, SpoolDir: t.TempDir(), CheckpointEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(svc).Handler())
	t.Cleanup(func() {
		ts.Close()
		for _, info := range svc.List() {
			if info.State == "queued" || info.State == "running" {
				svc.Cancel(info.ID)
			}
		}
		svc.Close()
	})
	return ts, svc
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body io.Reader, v any) int {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if v != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, v); err != nil {
			t.Fatalf("decoding %s (%s): %v", url, raw, err)
		}
	}
	return resp.StatusCode
}

// TestEndToEndCancelResume drives the acceptance scenario over HTTP:
// submit a PTYCHOv1 upload, observe monotone iteration progress, cancel
// mid-run, resume from the written OBJCKv1 checkpoint, and verify the
// final object matches an uninterrupted run to machine precision.
func TestEndToEndCancelResume(t *testing.T) {
	prob := testProblem(t)
	ts, _ := newTestServer(t)

	var upload bytes.Buffer
	if err := dataio.Write(&upload, prob); err != nil {
		t.Fatal(err)
	}
	const total = 200
	const step = 0.01

	var info jobs.Info
	status := postJSON(t, fmt.Sprintf("%s/jobs?alg=serial&iters=%d&step=%g&checkpoint-every=2", ts.URL, total, step),
		bytes.NewReader(upload.Bytes()), &info)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d", status)
	}
	if info.State != "queued" && info.State != "running" {
		t.Fatalf("submitted job state %q", info.State)
	}
	jobURL := ts.URL + "/jobs/" + info.ID

	// Poll until mid-run, asserting the iteration counter is monotone.
	last := -1
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("no mid-run progress (last iter %d)", last)
		}
		var cur jobs.Info
		if st := getJSON(t, jobURL, &cur); st != http.StatusOK {
			t.Fatalf("status poll: %d", st)
		}
		if cur.Iter < last {
			t.Fatalf("iteration went backwards: %d after %d", cur.Iter, last)
		}
		last = cur.Iter
		if cur.State == "done" || cur.State == "failed" {
			t.Fatalf("job reached %q before the test could cancel (iter %d)", cur.State, cur.Iter)
		}
		if cur.Iter >= 6 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// A live preview must be available once the first checkpoint exists.
	resp, err := http.Get(jobURL + "/preview.png")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("preview: status %d", resp.StatusCode)
	}
	if _, err := png.Decode(resp.Body); err != nil {
		t.Fatalf("preview is not a PNG: %v", err)
	}
	resp.Body.Close()

	// Cancel mid-run and wait for the final checkpoint.
	if st := postJSON(t, jobURL+"/cancel", nil, nil); st != http.StatusOK {
		t.Fatalf("cancel: status %d", st)
	}
	var cancelled jobs.Info
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never reached cancelled")
		}
		getJSON(t, jobURL, &cancelled)
		if cancelled.State == "cancelled" {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if cancelled.Iter <= 0 || cancelled.Iter >= total {
		t.Fatalf("cancelled at iteration %d, want mid-run", cancelled.Iter)
	}
	if cancelled.CheckpointIter != cancelled.Iter {
		t.Fatalf("checkpoint at %d, progress at %d", cancelled.CheckpointIter, cancelled.Iter)
	}

	// Resume: a new job warm-starts from the checkpoint and finishes the
	// remaining iterations.
	var resumed jobs.Info
	if st := postJSON(t, jobURL+"/resume", nil, &resumed); st != http.StatusAccepted {
		t.Fatalf("resume: status %d", st)
	}
	if resumed.ResumedFrom != info.ID {
		t.Fatalf("resumed_from %q, want %q", resumed.ResumedFrom, info.ID)
	}
	resumedURL := ts.URL + "/jobs/" + resumed.ID
	for {
		if time.Now().After(deadline) {
			t.Fatal("resumed job never finished")
		}
		var cur jobs.Info
		getJSON(t, resumedURL, &cur)
		if cur.State == "done" {
			resumed = cur
			break
		}
		if cur.State == "failed" || cur.State == "cancelled" {
			t.Fatalf("resumed job %s: %s", cur.State, cur.Error)
		}
		time.Sleep(time.Millisecond)
	}
	if resumed.Iter != total || resumed.TotalIters != total {
		t.Fatalf("resumed finished at %d/%d, want %d/%d", resumed.Iter, resumed.TotalIters, total, total)
	}

	// Download the final object and compare with an uninterrupted run.
	resp, err = http.Get(resumedURL + "/object")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("object download: status %d", resp.StatusCode)
	}
	final, err := dataio.ReadObject(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := solver.Reconstruct(prob, phantom.Vacuum(prob.ImageBounds(), prob.Slices).Slices,
		solver.Options{StepSize: step, Iterations: total, Mode: solver.Batch})
	if err != nil {
		t.Fatal(err)
	}
	for si, ss := range final {
		for i, v := range ss.Data {
			if v != ref.Slices[si].Data[i] {
				t.Fatalf("slice %d pixel %d: resumed %v != uninterrupted %v",
					si, i, v, ref.Slices[si].Data[i])
			}
		}
	}

	// The metrics endpoint reflects the lifecycle.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"ptychoserve_jobs_submitted_total 2",
		"ptychoserve_jobs_cancelled_total 1",
		"ptychoserve_jobs_completed_total 1",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("metrics missing %q:\n%s", want, mbody)
		}
	}
}

// TestHTTPValidation covers the API's error paths.
func TestHTTPValidation(t *testing.T) {
	ts, _ := newTestServer(t)

	// Garbage upload is a 400.
	if st := postJSON(t, ts.URL+"/jobs", strings.NewReader("not a dataset"), nil); st != http.StatusBadRequest {
		t.Errorf("garbage upload: status %d, want 400", st)
	}
	// Unknown job is a 404 everywhere.
	for _, url := range []string{"/jobs/job-9999", "/jobs/job-9999/preview.png", "/jobs/job-9999/object"} {
		if st := getJSON(t, ts.URL+url, nil); st != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", url, st)
		}
	}
	if st := postJSON(t, ts.URL+"/jobs/job-9999/cancel", nil, nil); st != http.StatusNotFound {
		t.Errorf("cancel unknown: status %d, want 404", st)
	}
	// Bad parameters are 400s.
	prob := testProblem(t)
	var upload bytes.Buffer
	if err := dataio.Write(&upload, prob); err != nil {
		t.Fatal(err)
	}
	if st := postJSON(t, ts.URL+"/jobs?iters=abc", bytes.NewReader(upload.Bytes()), nil); st != http.StatusBadRequest {
		t.Errorf("iters=abc: status %d, want 400", st)
	}
	if st := postJSON(t, ts.URL+"/jobs?mesh=2by2", bytes.NewReader(upload.Bytes()), nil); st != http.StatusBadRequest {
		t.Errorf("mesh=2by2: status %d, want 400", st)
	}
	// Semantically invalid parameters (parse fine, fail validation) are
	// client errors too, not 500s.
	if st := postJSON(t, ts.URL+"/jobs?alg=foo", bytes.NewReader(upload.Bytes()), nil); st != http.StatusBadRequest {
		t.Errorf("alg=foo: status %d, want 400", st)
	}
	if st := postJSON(t, ts.URL+"/jobs?iters=-5", bytes.NewReader(upload.Bytes()), nil); st != http.StatusBadRequest {
		t.Errorf("iters=-5: status %d, want 400", st)
	}
	// A healthy server says so.
	if st := getJSON(t, ts.URL+"/healthz", nil); st != http.StatusOK {
		t.Errorf("healthz: status %d", st)
	}

	// A real submission with a gd mesh runs to completion.
	var info jobs.Info
	if st := postJSON(t, ts.URL+"/jobs?alg=gd&iters=3&mesh=2x2", bytes.NewReader(upload.Bytes()), &info); st != http.StatusAccepted {
		t.Fatalf("gd submit: status %d", st)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("gd job never finished")
		}
		var cur jobs.Info
		getJSON(t, ts.URL+"/jobs/"+info.ID, &cur)
		if cur.State == "done" {
			break
		}
		if cur.State == "failed" {
			t.Fatalf("gd job failed: %s", cur.Error)
		}
		time.Sleep(time.Millisecond)
	}
	// List shows both jobs.
	var list []jobs.Info
	if st := getJSON(t, ts.URL+"/jobs", &list); st != http.StatusOK || len(list) != 1 {
		// one job: the garbage/param failures never got registered
		if len(list) != 1 {
			t.Errorf("list has %d jobs, want 1", len(list))
		}
	}
}
