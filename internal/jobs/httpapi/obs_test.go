package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"ptychopath/client"
	"ptychopath/internal/dataio"
	"ptychopath/internal/jobs"
	"ptychopath/internal/obs"
)

// logRecord is one captured slog line: the message plus its attrs.
type logRecord struct {
	msg   string
	attrs map[string]string
}

// captureHandler is a slog.Handler that records every line, so the
// test can assert the request ID threads through HTTP and job logs.
type captureHandler struct {
	mu   sync.Mutex
	recs []logRecord
}

func (h *captureHandler) Enabled(context.Context, slog.Level) bool { return true }
func (h *captureHandler) WithAttrs([]slog.Attr) slog.Handler       { return h }
func (h *captureHandler) WithGroup(string) slog.Handler            { return h }
func (h *captureHandler) Handle(_ context.Context, r slog.Record) error {
	rec := logRecord{msg: r.Message, attrs: map[string]string{}}
	r.Attrs(func(a slog.Attr) bool {
		rec.attrs[a.Key] = a.Value.String()
		return true
	})
	h.mu.Lock()
	h.recs = append(h.recs, rec)
	h.mu.Unlock()
	return nil
}

// find returns the captured records with msg whose attrs include every
// given key=value pair.
func (h *captureHandler) find(msg string, want map[string]string) []logRecord {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []logRecord
next:
	for _, rec := range h.recs {
		if rec.msg != msg {
			continue
		}
		for k, v := range want {
			if rec.attrs[k] != v {
				continue next
			}
		}
		out = append(out, rec)
	}
	return out
}

// TestRequestIDPropagation follows one X-Request-ID end to end: the
// client sends it, every response echoes it (success and problem
// envelopes alike), the job adopts it as trace context, and both the
// HTTP request log and the job lifecycle log carry it.
func TestRequestIDPropagation(t *testing.T) {
	capture := &captureHandler{}
	logger := slog.New(capture)
	svc, err := jobs.NewService(jobs.Config{
		Workers: 2, QueueDepth: 8, SpoolDir: t.TempDir(), CheckpointEvery: 2,
		Logger: logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	ts := httptest.NewServer(New(svc, WithLogger(logger)).Handler())
	t.Cleanup(ts.Close)

	var upload bytes.Buffer
	if err := dataio.Write(&upload, testProblem(t)); err != nil {
		t.Fatal(err)
	}
	const rid = "e2e-trace-ctx-1"
	body, ct := multipartSubmit(t, `{"algorithm":"serial","iterations":2}`, upload.Bytes())
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", body)
	req.Header.Set("Content-Type", ct)
	req.Header.Set("X-Request-ID", rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Request-ID"); got != rid {
		t.Fatalf("submit response X-Request-ID %q, want %q", got, rid)
	}
	var job client.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if job.RequestID != rid {
		t.Fatalf("job request_id %q, want %q", job.RequestID, rid)
	}

	// A problem envelope goes through the same middleware: the header
	// lands before the handler can write the error.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/no-such-job", nil)
	req.Header.Set("X-Request-ID", "lookup-miss-7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "lookup-miss-7" {
		t.Fatalf("problem response X-Request-ID %q, want lookup-miss-7", got)
	}

	// No header (or a malformed one) gets a server-assigned hex ID.
	hexID := regexp.MustCompile(`^[0-9a-f]{16}$`)
	for _, sent := range []string{"", "spaces are not tokens", strings.Repeat("x", 80)} {
		req, _ = http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if sent != "" {
			req.Header.Set("X-Request-ID", sent)
		}
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if got := resp.Header.Get("X-Request-ID"); !hexID.MatchString(got) {
			t.Fatalf("sent %q, got X-Request-ID %q, want a fresh 16-hex-char ID", sent, got)
		}
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		if getJSON(t, ts.URL+"/v1/jobs/"+job.ID, &job); job.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not terminal (state %s)", job.ID, job.State)
		}
		time.Sleep(time.Millisecond)
	}
	if job.State != client.StateDone {
		t.Fatalf("job state %s, want done", job.State)
	}

	// The job's span timeline carries the same ID...
	var tr client.JobTrace
	if status := getJSON(t, ts.URL+"/v1/jobs/"+job.ID+"/trace", &tr); status != http.StatusOK {
		t.Fatalf("trace: status %d", status)
	}
	if tr.Job.RequestID != rid {
		t.Fatalf("trace request_id %q, want %q", tr.Job.RequestID, rid)
	}
	if len(tr.Spans) == 0 {
		t.Fatal("trace has no spans")
	}

	// ...and so do the log lines on both sides of the stack: the HTTP
	// request log and the job lifecycle log.
	if n := len(capture.find("http request", map[string]string{"request_id": rid})); n == 0 {
		t.Fatal("no http request log line with the request ID")
	}
	for _, msg := range []string{"job submitted", "job started", "job finished"} {
		if n := len(capture.find(msg, map[string]string{"request_id": rid, "job_id": job.ID})); n != 1 {
			t.Fatalf("%d %q log lines with request_id=%s job_id=%s, want 1", n, msg, rid, job.ID)
		}
	}
}

// TestTraceEndpoint pins the trace endpoint's three formats: the typed
// JSON timeline, the Chrome trace-event export, and the bad_params
// rejection of anything else. The legacy unversioned surface never had
// the route.
func TestTraceEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var upload bytes.Buffer
	if err := dataio.Write(&upload, testProblem(t)); err != nil {
		t.Fatal(err)
	}
	body, ct := multipartSubmit(t, `{"algorithm":"serial","iterations":3}`, upload.Bytes())
	resp, err := http.Post(ts.URL+"/v1/jobs", ct, body)
	if err != nil {
		t.Fatal(err)
	}
	var job client.Job
	json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()

	deadline := time.Now().Add(30 * time.Second)
	for !job.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s not terminal", job.ID)
		}
		time.Sleep(time.Millisecond)
		getJSON(t, ts.URL+"/v1/jobs/"+job.ID, &job)
	}

	var tr client.JobTrace
	if status := getJSON(t, ts.URL+"/v1/jobs/"+job.ID+"/trace", &tr); status != http.StatusOK {
		t.Fatalf("trace: status %d", status)
	}
	if tr.Job.ID != job.ID {
		t.Fatalf("trace job %q, want %q", tr.Job.ID, job.ID)
	}
	iterations := 0
	for _, sp := range tr.Spans {
		if sp.Name == "iteration" {
			iterations++
			if sp.MS < 0 {
				t.Fatalf("iteration span with negative ms: %+v", sp)
			}
		}
	}
	if iterations != 3 {
		t.Fatalf("%d iteration spans, want 3", iterations)
	}

	// Chrome export: a JSON array of complete ("X") events.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + job.ID + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatalf("chrome export is not a JSON array: %v", err)
	}
	resp.Body.Close()
	if len(events) == 0 {
		t.Fatal("chrome export has no events")
	}
	for _, ev := range events {
		if ev["ph"] != "X" {
			t.Fatalf("chrome event ph %v, want X", ev["ph"])
		}
	}

	if status := getJSON(t, ts.URL+"/v1/jobs/"+job.ID+"/trace?format=flamegraph", nil); status != http.StatusBadRequest {
		t.Fatalf("unknown format: status %d, want 400", status)
	}
	if status := getJSON(t, ts.URL+"/jobs/"+job.ID+"/trace", nil); status != http.StatusNotFound {
		t.Fatalf("legacy trace route: status %d, want 404 (v1-only)", status)
	}
	if status := getJSON(t, ts.URL+"/v1/jobs/absent/trace", nil); status != http.StatusNotFound {
		t.Fatalf("missing job trace: status %d, want 404", status)
	}
}

// TestMetricsExpositionLint drives real traffic through the API and
// then strictly lints the ENTIRE /metrics scrape — every family the
// service and the HTTP layer expose must survive the exposition-format
// linter that is pickier than a Prometheus scraper.
func TestMetricsExpositionLint(t *testing.T) {
	ts, _ := newTestServer(t)
	var upload bytes.Buffer
	if err := dataio.Write(&upload, testProblem(t)); err != nil {
		t.Fatal(err)
	}
	body, ct := multipartSubmit(t, `{"algorithm":"serial","iterations":2}`, upload.Bytes())
	resp, err := http.Post(ts.URL+"/v1/jobs", ct, body)
	if err != nil {
		t.Fatal(err)
	}
	var job client.Job
	json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()
	deadline := time.Now().Add(30 * time.Second)
	for !job.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s not terminal", job.ID)
		}
		time.Sleep(time.Millisecond)
		getJSON(t, ts.URL+"/v1/jobs/"+job.ID, &job)
	}
	// A 404 and an unmatched route land in the histogram too.
	getJSON(t, ts.URL+"/v1/jobs/nope", nil)
	getJSON(t, ts.URL+"/totally/unknown", nil)

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.LintExposition(scrape); err != nil {
		t.Fatalf("/metrics fails the exposition lint: %v\n--- scrape ---\n%s", err, scrape)
	}

	// The observability families must be present and populated.
	for _, want := range []string{
		`ptychoserve_http_request_duration_seconds_bucket{route="POST /v1/jobs",status="202",le="+Inf"}`,
		`ptychoserve_http_request_duration_seconds_bucket{route="GET /v1/jobs/{id}",status="200",le="+Inf"}`,
		`ptychoserve_http_request_duration_seconds_bucket{route="GET /v1/jobs/{id}",status="404",le="+Inf"}`,
		`ptychoserve_http_request_duration_seconds_bucket{route="unmatched",status="404",le="+Inf"}`,
		"ptychoserve_job_queue_wait_seconds_count 1",
		"ptychoserve_iteration_duration_seconds_count 2",
		"ptychoserve_checkpoint_write_seconds_count",
		"ptychoserve_workers_idle 2",
		"ptychoserve_queue_depth 0",
		"ptychoserve_job_runtime_prediction_error_ratio_count 1",
		"ptychoserve_job_rank_imbalance_ratio_count 0",
		// Tenant accounting is always on: an unkeyed submission lands on
		// the anonymous tenant and its bounded-cardinality rows scrape.
		`ptychoserve_tenant_jobs_submitted_total{tenant="anonymous"} 1`,
		`ptychoserve_tenant_jobs_active{tenant="anonymous"} 0`,
		`ptychoserve_tenant_completed_cost_seconds_total{tenant="anonymous"}`,
		`ptychoserve_tenant_queue_wait_seconds_count{tenant="anonymous"} 1`,
		"ptychoserve_jobs_preempted_total 0",
		"ptychoserve_jobs_quota_rejected_total 0",
	} {
		if !strings.Contains(string(scrape), want) {
			t.Fatalf("scrape missing %q\n--- scrape ---\n%s", want, scrape)
		}
	}
}
