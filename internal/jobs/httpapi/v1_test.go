package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ptychopath/client"
	"ptychopath/internal/dataio"
	"ptychopath/internal/jobs"
	"ptychopath/internal/stream"
)

// TestProblemForTable pins THE status/code table of the /v1 API: every
// error the jobs service can surface maps to a documented problem
// envelope. A new service error that reaches HTTP unmapped shows up
// here as the internal/500 row it would leak as.
func TestProblemForTable(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		wantStatus int
		wantCode   string
		wantRetry  int64 // retry_after_ms; 0 = must be absent
	}{
		{"invalid params", fmt.Errorf("wrap: %w", jobs.ErrInvalidParams), http.StatusBadRequest, client.CodeBadParams, 0},
		{"no grid", jobs.ErrNoGrid, http.StatusBadRequest, client.CodeBadParams, 0},
		{"bad cursor", fmt.Errorf("wrap: %w", jobs.ErrBadCursor), http.StatusBadRequest, client.CodeBadParams, 0},
		{"not found", fmt.Errorf("%w: job-9", jobs.ErrNotFound), http.StatusNotFound, client.CodeNotFound, 0},
		{"queue full", fmt.Errorf("%w (depth 4)", jobs.ErrQueueFull), http.StatusTooManyRequests, client.CodeQueueFull, 5000},
		{"queue full live hint", &jobs.Backpressure{Err: fmt.Errorf("%w (depth 4)", jobs.ErrQueueFull), RetryAfter: 2300 * time.Millisecond}, http.StatusTooManyRequests, client.CodeQueueFull, 2300},
		{"ingest full", fmt.Errorf("wrap: %w", stream.ErrIngestFull), http.StatusTooManyRequests, client.CodeIngestFull, 1000},
		{"ingest full live hint", &jobs.Backpressure{Err: fmt.Errorf("wrap: %w", stream.ErrIngestFull), RetryAfter: 450 * time.Millisecond}, http.StatusTooManyRequests, client.CodeIngestFull, 450},
		{"quota exceeded", fmt.Errorf("wrap: %w", jobs.ErrQuotaExceeded), http.StatusTooManyRequests, client.CodeQuotaExceeded, 1000},
		{"quota exceeded live hint", &jobs.Backpressure{Err: fmt.Errorf("wrap: %w", jobs.ErrQuotaExceeded), RetryAfter: 7 * time.Second}, http.StatusTooManyRequests, client.CodeQuotaExceeded, 7000},
		{"chunk too large", fmt.Errorf("wrap: %w", stream.ErrChunkTooLarge), http.StatusBadRequest, client.CodeChunkTooLarge, 0},
		{"finished", fmt.Errorf("%w: job-1 is done", jobs.ErrFinished), http.StatusConflict, client.CodeJobFinished, 0},
		{"not resumable", fmt.Errorf("wrap: %w", jobs.ErrNotResumable), http.StatusConflict, client.CodeNotResumable, 0},
		{"not streaming", fmt.Errorf("wrap: %w", jobs.ErrNotStreaming), http.StatusConflict, client.CodeNotStreaming, 0},
		{"stream closed", fmt.Errorf("wrap: %w", stream.ErrStreamClosed), http.StatusConflict, client.CodeStreamClosed, 0},
		{"service closed", jobs.ErrClosed, http.StatusServiceUnavailable, client.CodeShuttingDown, 0},
		{"body too large", &http.MaxBytesError{Limit: 512}, http.StatusRequestEntityTooLarge, client.CodePayloadTooLarge, 0},
		{"body too large wrapped", fmt.Errorf("decoding: %w", &http.MaxBytesError{Limit: 512}), http.StatusRequestEntityTooLarge, client.CodePayloadTooLarge, 0},
		{"parse error", badParams("parameter iters: junk"), http.StatusBadRequest, client.CodeBadParams, 0},
		{"unmapped", errors.New("disk exploded"), http.StatusInternalServerError, client.CodeInternal, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := problemFor(tc.err)
			if p.Status != tc.wantStatus || p.Code != tc.wantCode {
				t.Fatalf("problemFor(%v) = %d/%s, want %d/%s", tc.err, p.Status, p.Code, tc.wantStatus, tc.wantCode)
			}
			if p.RetryAfterMS != tc.wantRetry {
				t.Fatalf("retry_after_ms = %d, want %d", p.RetryAfterMS, tc.wantRetry)
			}
			if p.Type != client.ProblemType(tc.wantCode) {
				t.Fatalf("type = %q, want %q", p.Type, client.ProblemType(tc.wantCode))
			}
			if p.Title == "" {
				t.Fatalf("code %s has no title", p.Code)
			}
			if p.Detail == "" || p.LegacyError != p.Detail {
				t.Fatalf("detail %q / legacy error %q must both carry the message", p.Detail, p.LegacyError)
			}
		})
	}
}

// multipartSubmit builds a /v1 multipart submission body.
func multipartSubmit(t *testing.T, params string, dataset []byte) (io.Reader, string) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	if params != "" {
		pw, err := mw.CreateFormField("params")
		if err != nil {
			t.Fatal(err)
		}
		io.WriteString(pw, params)
	}
	if dataset != nil {
		dw, err := mw.CreateFormFile("dataset", "dataset")
		if err != nil {
			t.Fatal(err)
		}
		dw.Write(dataset)
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf, mw.FormDataContentType()
}

// decodeProblem asserts resp is a problem envelope and returns it.
func decodeProblem(t *testing.T, resp *http.Response) client.Problem {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/problem+json" {
		t.Fatalf("error response content-type %q, want application/problem+json", ct)
	}
	var p client.Problem
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatalf("decoding problem envelope: %v", err)
	}
	if p.Status != resp.StatusCode {
		t.Fatalf("envelope status %d != HTTP status %d", p.Status, resp.StatusCode)
	}
	return p
}

// TestV1EnvelopeOverTheWire spot-checks that the problemFor table is
// what actually leaves the socket, for the envelope-bearing paths a
// client hits first.
func TestV1EnvelopeOverTheWire(t *testing.T) {
	prob := testProblem(t)
	ts, _ := newTestServer(t)
	var upload bytes.Buffer
	if err := dataio.Write(&upload, prob); err != nil {
		t.Fatal(err)
	}

	t.Run("not_found", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/jobs/job-9999")
		if err != nil {
			t.Fatal(err)
		}
		p := decodeProblem(t, resp)
		if resp.StatusCode != http.StatusNotFound || p.Code != client.CodeNotFound {
			t.Fatalf("got %d/%s", resp.StatusCode, p.Code)
		}
	})

	t.Run("bad_params non-multipart submit", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/octet-stream", bytes.NewReader(upload.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		p := decodeProblem(t, resp)
		if resp.StatusCode != http.StatusBadRequest || p.Code != client.CodeBadParams {
			t.Fatalf("got %d/%s", resp.StatusCode, p.Code)
		}
	})

	t.Run("bad_params unknown params field", func(t *testing.T) {
		body, ct := multipartSubmit(t, `{"algorithm":"serial","iterationz":5}`, upload.Bytes())
		resp, err := http.Post(ts.URL+"/v1/jobs", ct, body)
		if err != nil {
			t.Fatal(err)
		}
		p := decodeProblem(t, resp)
		if resp.StatusCode != http.StatusBadRequest || p.Code != client.CodeBadParams {
			t.Fatalf("got %d/%s", resp.StatusCode, p.Code)
		}
		if !strings.Contains(p.Detail, "SubmitRequest") {
			t.Fatalf("detail %q does not name the schema", p.Detail)
		}
	})

	t.Run("bad_params missing dataset part", func(t *testing.T) {
		body, ct := multipartSubmit(t, `{"algorithm":"serial"}`, nil)
		resp, err := http.Post(ts.URL+"/v1/jobs", ct, body)
		if err != nil {
			t.Fatal(err)
		}
		if p := decodeProblem(t, resp); p.Code != client.CodeBadParams {
			t.Fatalf("got %d/%s", resp.StatusCode, p.Code)
		}
	})

	t.Run("not_streaming frames to batch job", func(t *testing.T) {
		body, ct := multipartSubmit(t, `{"algorithm":"serial","iterations":1}`, upload.Bytes())
		resp, err := http.Post(ts.URL+"/v1/jobs", ct, body)
		if err != nil {
			t.Fatal(err)
		}
		var info jobs.Info
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("multipart submit: %d", resp.StatusCode)
		}
		var chunk bytes.Buffer
		if err := dataio.WriteFrameChunk(&chunk, prob.WindowN, dataio.FramesFromProblem(prob)[:1]); err != nil {
			t.Fatal(err)
		}
		fresp, err := http.Post(ts.URL+"/v1/jobs/"+info.ID+"/frames", "application/octet-stream", &chunk)
		if err != nil {
			t.Fatal(err)
		}
		p := decodeProblem(t, fresp)
		if fresp.StatusCode != http.StatusConflict || p.Code != client.CodeNotStreaming {
			t.Fatalf("got %d/%s", fresp.StatusCode, p.Code)
		}
	})

	t.Run("queue_full retry hint", func(t *testing.T) {
		svc, err := jobs.NewService(jobs.Config{Workers: 1, QueueDepth: 1, SpoolDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		full := newHTTPTestServer(t, svc)
		submit := func() *http.Response {
			body, ct := multipartSubmit(t, `{"algorithm":"serial","iterations":1000000}`, upload.Bytes())
			resp, err := http.Post(full.URL+"/v1/jobs", ct, body)
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}
		var first jobs.Info
		resp := submit()
		json.NewDecoder(resp.Body).Decode(&first)
		resp.Body.Close()
		pollInfo(t, full.URL+"/v1/jobs/"+first.ID, "worker busy", func(i jobs.Info) bool { return i.State == "running" })
		submit().Body.Close() // occupies the queue slot
		resp = submit()
		p := decodeProblem(t, resp)
		if resp.StatusCode != http.StatusTooManyRequests || p.Code != client.CodeQueueFull {
			t.Fatalf("got %d/%s", resp.StatusCode, p.Code)
		}
		// The hint is live-derived from queue depth × predicted runtimes
		// (a million-iteration job is ahead, so it is large); the header
		// must agree with the envelope to the second, rounded up.
		if p.RetryAfterMS <= 0 {
			t.Fatalf("retry_after_ms = %d, want a live positive hint", p.RetryAfterMS)
		}
		wantHeader := strconv.FormatInt((p.RetryAfterMS+999)/1000, 10)
		if got := resp.Header.Get("Retry-After"); got != wantHeader {
			t.Fatalf("Retry-After header %q, want %q (retry_after_ms %d)", got, wantHeader, p.RetryAfterMS)
		}
	})
}

// TestV1MaxUploadPayloadTooLarge: a body beyond WithMaxUpload answers
// 413 with the payload_too_large code instead of resetting the
// connection, on both submission generations.
func TestV1MaxUploadPayloadTooLarge(t *testing.T) {
	svc, err := jobs.NewService(jobs.Config{Workers: 1, QueueDepth: 4, SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(svc, WithMaxUpload(1024)).Handler())
	t.Cleanup(func() { ts.Close(); svc.Close() })

	// A VALID dataset bigger than the cap: the decoder must trip the
	// byte bound mid-read and surface it as 413, not as a decode 400.
	var upload bytes.Buffer
	if err := dataio.Write(&upload, testProblem(t)); err != nil {
		t.Fatal(err)
	}
	big := upload.Bytes()
	if len(big) <= 1024 {
		t.Fatalf("test dataset only %d bytes, not over the 1024 cap", len(big))
	}
	body, ct := multipartSubmit(t, `{"algorithm":"serial"}`, big)
	resp, err := http.Post(ts.URL+"/v1/jobs", ct, body)
	if err != nil {
		t.Fatal(err)
	}
	p := decodeProblem(t, resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge || p.Code != client.CodePayloadTooLarge {
		t.Fatalf("v1 oversized submit: %d/%s, want 413/%s", resp.StatusCode, p.Code, client.CodePayloadTooLarge)
	}

	resp, err = http.Post(ts.URL+"/jobs", "application/octet-stream", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	p = decodeProblem(t, resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge || p.Code != client.CodePayloadTooLarge {
		t.Fatalf("legacy oversized submit: %d/%s, want 413/%s", resp.StatusCode, p.Code, client.CodePayloadTooLarge)
	}
}

// TestV1Pagination drives cursor pagination over the wire, including
// the edge cases: empty page, cursor at the end, invalid cursor.
func TestV1Pagination(t *testing.T) {
	prob := testProblem(t)
	svc, err := jobs.NewService(jobs.Config{Workers: 1, QueueDepth: 16, SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPTestServer(t, svc)
	var upload bytes.Buffer
	if err := dataio.Write(&upload, prob); err != nil {
		t.Fatal(err)
	}

	type page struct {
		Jobs       []jobs.Info `json:"jobs"`
		NextCursor string      `json:"next_cursor"`
	}
	getPage := func(query string) (page, *http.Response) {
		resp, err := http.Get(ts.URL + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		var pg page
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&pg); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
		return pg, resp
	}

	// Empty registry: an empty jobs ARRAY (not null), no cursor.
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), `"jobs":[]`) {
		t.Fatalf("empty listing = %s, want a jobs:[] array", raw)
	}

	var ids []string
	for i := 0; i < 5; i++ {
		body, ct := multipartSubmit(t, `{"algorithm":"serial","iterations":1000000}`, upload.Bytes())
		r, err := http.Post(ts.URL+"/v1/jobs", ct, body)
		if err != nil {
			t.Fatal(err)
		}
		var info jobs.Info
		json.NewDecoder(r.Body).Decode(&info)
		r.Body.Close()
		if r.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, r.StatusCode)
		}
		ids = append(ids, info.ID)
	}

	// Page with limit 2: 2+2+1 in submit order.
	var got []string
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > 5 {
			t.Fatal("cursor chain does not terminate")
		}
		q := "?limit=2"
		if cursor != "" {
			q += "&cursor=" + cursor
		}
		pg, resp := getPage(q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("page: status %d", resp.StatusCode)
		}
		for _, j := range pg.Jobs {
			got = append(got, j.ID)
		}
		if pg.NextCursor == "" {
			break
		}
		cursor = pg.NextCursor
	}
	if fmt.Sprint(got) != fmt.Sprint(ids) {
		t.Fatalf("paged %v, want %v (deterministic submit order)", got, ids)
	}

	// Cursor at the end: empty page, 200.
	pg, resp := getPage("?limit=2&cursor=" + ids[len(ids)-1])
	if resp.StatusCode != http.StatusOK || len(pg.Jobs) != 0 || pg.NextCursor != "" {
		t.Fatalf("cursor at end: status %d, %d jobs, next %q", resp.StatusCode, len(pg.Jobs), pg.NextCursor)
	}

	// Invalid cursor → bad_params envelope.
	_, resp = getPage("?cursor=job-9999")
	if p := decodeProblem(t, resp); resp.StatusCode != http.StatusBadRequest || p.Code != client.CodeBadParams {
		t.Fatalf("invalid cursor: %d/%s", resp.StatusCode, p.Code)
	}
	// Invalid limit and status values too.
	for _, q := range []string{"?limit=0", "?limit=abc", "?limit=1001", "?status=bogus"} {
		_, resp = getPage(q)
		if p := decodeProblem(t, resp); resp.StatusCode != http.StatusBadRequest || p.Code != client.CodeBadParams {
			t.Fatalf("%s: %d/%s, want 400/bad_params", q, resp.StatusCode, p.Code)
		}
	}

	// Status filter matches only the running job (worker pool is 1 and
	// the first job runs forever until cancelled).
	pollInfo(t, ts.URL+"/v1/jobs/"+ids[0], "first job running", func(i jobs.Info) bool { return i.State == "running" })
	pg, resp = getPage("?status=running")
	if resp.StatusCode != http.StatusOK || len(pg.Jobs) != 1 || pg.Jobs[0].ID != ids[0] {
		t.Fatalf("status=running page: %+v", pg)
	}
	for _, id := range ids {
		http.Post(ts.URL+"/v1/jobs/"+id+"/cancel", "", nil)
	}
}

// TestV1IdempotentSubmitRace: concurrent submissions sharing an
// Idempotency-Key enqueue exactly one job, over the wire.
func TestV1IdempotentSubmitRace(t *testing.T) {
	prob := testProblem(t)
	svc, err := jobs.NewService(jobs.Config{Workers: 1, QueueDepth: 16, SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPTestServer(t, svc)
	var upload bytes.Buffer
	if err := dataio.Write(&upload, prob); err != nil {
		t.Fatal(err)
	}

	const racers = 8
	var wg sync.WaitGroup
	idsCh := make(chan string, racers)
	replayed := make(chan bool, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, ct := multipartSubmit(t, `{"algorithm":"serial","iterations":2}`, upload.Bytes())
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", body)
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Content-Type", ct)
			req.Header.Set("Idempotency-Key", "race-key")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("racer: status %d", resp.StatusCode)
				return
			}
			var info jobs.Info
			if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
				t.Error(err)
				return
			}
			idsCh <- info.ID
			replayed <- resp.Header.Get("Idempotency-Replayed") == "true"
		}()
	}
	wg.Wait()
	close(idsCh)
	close(replayed)

	var first string
	for id := range idsCh {
		if first == "" {
			first = id
		}
		if id != first {
			t.Fatalf("racers got different jobs: %s vs %s", id, first)
		}
	}
	fresh := 0
	for r := range replayed {
		if !r {
			fresh++
		}
	}
	if fresh != 1 {
		t.Fatalf("%d responses claim a fresh enqueue, want exactly 1", fresh)
	}
	if n := len(svc.List()); n != 1 {
		t.Fatalf("registry holds %d jobs, want 1", n)
	}
}

// TestLegacyAliasDeprecation: the pre-/v1 routes still serve, but are
// marked deprecated; the /v1 routes are not.
func TestLegacyAliasDeprecation(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy list: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") == "" {
		t.Error("legacy route without a Deprecation header")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, `rel="successor-version"`) {
		t.Errorf("legacy route Link %q does not point at the successor version", link)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v1 list: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "" {
		t.Error("/v1 route carries a Deprecation header")
	}
}
