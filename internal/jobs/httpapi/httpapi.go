// Package httpapi exposes the reconstruction job service (internal/jobs)
// over HTTP — the transport layer of cmd/ptychoserve.
//
// Endpoints:
//
//	POST /jobs?alg=serial|gd|hve&iters=N&step=S&mesh=RxC&rounds=T&workers=W&checkpoint-every=K&grid=0|1
//	     body: a PTYCHOv1 dataset. Returns 202 with the job summary.
//	     grid=1 runs the parallel engine across registered ptychoworker
//	     processes (requires -grid on the server; see GET /grid).
//	POST /jobs/stream?alg=serial|gd&iters=TAIL&fold-every=F&max-iters=M&ingest=FRAMES&...
//	     body: a PTYCHSv1 opening (header + probe, no frames). Opens a
//	     STREAMING job: 202 with the job summary; feed frames next.
//	GET  /jobs                    list all jobs
//	GET  /jobs/{id}               one job, with the cost-history tail
//	                              (?history=N entries, ?history=all)
//	POST /jobs/{id}/frames        body: one PTYCHSv1 chunk ('F' frames, or
//	                              'E' to close). 200 with {accepted,total};
//	                              429 + Retry-After when the ingest is full
//	POST /jobs/{id}/eof           close the stream; the job folds what is
//	                              buffered and runs its tail iterations
//	GET  /jobs/{id}/events        Server-Sent-Events live feed: iteration
//	                              cost, frames ingested, folds, snapshot
//	                              (preview-ready) and state transitions
//	POST /jobs/{id}/cancel        cancel (queued: immediate; running: next iteration boundary)
//	POST /jobs/{id}/resume        new job warm-started from the last OBJCKv1 checkpoint
//	GET  /jobs/{id}/preview.png   live grayscale preview of the latest snapshot
//	                              (?kind=phase|mag, ?slice=N)
//	GET  /jobs/{id}/object        latest object snapshot as an OBJCKv1 stream
//	GET  /grid                    worker-grid status: coordinator address and
//	                              registered ptychoworker endpoints
//	GET  /metrics                 Prometheus text exposition
//	GET  /healthz                 liveness
//
// The complete reference with copy-pasteable curl examples (smoke-run
// by CI) lives in docs/HTTP_API.md.
//
// Backpressure: a full job queue (submit) and a full ingest buffer
// (frames) both answer 429 Too Many Requests with a Retry-After hint —
// the feeder backs off instead of the service buffering without bound.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"image/png"
	"net/http"
	"strconv"
	"strings"

	"ptychopath"
	"ptychopath/internal/dataio"
	"ptychopath/internal/grid"
	"ptychopath/internal/jobs"
	"ptychopath/internal/stream"
)

// MaxUploadBytes bounds dataset uploads (PTYCHOv1 bodies, PTYCHSv1
// openings and frame chunks).
const MaxUploadBytes = 1 << 30

// Server adapts a jobs.Service to HTTP.
type Server struct {
	svc *jobs.Service
}

// New wraps a service.
func New(svc *jobs.Service) *Server { return &Server{svc: svc} }

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("POST /jobs/stream", s.handleSubmitStream)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("POST /jobs/{id}/frames", s.handleFrames)
	mux.HandleFunc("POST /jobs/{id}/eof", s.handleEOF)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /jobs/{id}/resume", s.handleResume)
	mux.HandleFunc("GET /jobs/{id}/preview.png", s.handlePreview)
	mux.HandleFunc("GET /jobs/{id}/object", s.handleObject)
	mux.HandleFunc("GET /grid", s.handleGrid)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// Retry-After hints (seconds) for the two backpressure paths: a full
// ingest drains at the next iteration boundary (fast); a full job
// queue needs a whole job to finish.
const (
	retryAfterIngest = "1"
	retryAfterQueue  = "5"
)

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he *httpError
	switch {
	case errors.As(err, &he):
		status = he.status
	case errors.Is(err, jobs.ErrInvalidParams):
		status = http.StatusBadRequest
	case errors.Is(err, jobs.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, jobs.ErrQueueFull):
		// Backpressure, not failure: the client should retry the same
		// submission after the hint.
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", retryAfterQueue)
	case errors.Is(err, stream.ErrIngestFull):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", retryAfterIngest)
	case errors.Is(err, stream.ErrChunkTooLarge):
		// Non-retryable: the chunk can NEVER fit. 400 so a compliant
		// feeder splits it instead of backing off forever.
		status = http.StatusBadRequest
	case errors.Is(err, jobs.ErrFinished), errors.Is(err, jobs.ErrNotResumable),
		errors.Is(err, jobs.ErrNotStreaming), errors.Is(err, stream.ErrStreamClosed):
		status = http.StatusConflict
	case errors.Is(err, jobs.ErrClosed):
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// queryInt parses an optional integer query parameter.
func queryInt(r *http.Request, key string, def int) (int, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, &httpError{http.StatusBadRequest, fmt.Sprintf("parameter %s: %v", key, err)}
	}
	return n, nil
}

func queryFloat(r *http.Request, key string, def float64) (float64, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, &httpError{http.StatusBadRequest, fmt.Sprintf("parameter %s: %v", key, err)}
	}
	return f, nil
}

func parseParams(r *http.Request) (jobs.Params, error) {
	var p jobs.Params
	var err error
	p.Algorithm = r.URL.Query().Get("alg")
	if p.Iterations, err = queryInt(r, "iters", 0); err != nil {
		return p, err
	}
	if p.StepSize, err = queryFloat(r, "step", 0); err != nil {
		return p, err
	}
	if p.RoundsPerIteration, err = queryInt(r, "rounds", 0); err != nil {
		return p, err
	}
	if p.IntraWorkers, err = queryInt(r, "workers", 0); err != nil {
		return p, err
	}
	if p.CheckpointEvery, err = queryInt(r, "checkpoint-every", 0); err != nil {
		return p, err
	}
	if g := r.URL.Query().Get("grid"); g != "" {
		on, err := strconv.ParseBool(g)
		if err != nil {
			return p, &httpError{http.StatusBadRequest, fmt.Sprintf("parameter grid: %v", err)}
		}
		p.Grid = on
	}
	if mesh := r.URL.Query().Get("mesh"); mesh != "" {
		rows, cols, ok := strings.Cut(strings.ToLower(mesh), "x")
		if !ok {
			return p, &httpError{http.StatusBadRequest, fmt.Sprintf("parameter mesh %q: want ROWSxCOLS", mesh)}
		}
		if p.MeshRows, err = strconv.Atoi(rows); err != nil {
			return p, &httpError{http.StatusBadRequest, fmt.Sprintf("parameter mesh %q: %v", mesh, err)}
		}
		if p.MeshCols, err = strconv.Atoi(cols); err != nil {
			return p, &httpError{http.StatusBadRequest, fmt.Sprintf("parameter mesh %q: %v", mesh, err)}
		}
	}
	return p, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	params, err := parseParams(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	prob, err := dataio.Read(http.MaxBytesReader(w, r.Body, MaxUploadBytes))
	if err != nil {
		writeErr(w, &httpError{http.StatusBadRequest, fmt.Sprintf("decoding PTYCHOv1 body: %v", err)})
		return
	}
	j, err := s.svc.Submit(prob, params)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Info(0))
}

// handleSubmitStream opens a streaming job from a PTYCHSv1 opening
// (header + probe, no frames): the reconstruction engine starts with
// an empty active set and folds frames in as POST /jobs/{id}/frames
// delivers them.
func (s *Server) handleSubmitStream(w http.ResponseWriter, r *http.Request) {
	params, err := parseParams(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	if params.FoldEvery, err = queryInt(r, "fold-every", 0); err != nil {
		writeErr(w, err)
		return
	}
	if params.MaxIterations, err = queryInt(r, "max-iters", 0); err != nil {
		writeErr(w, err)
		return
	}
	if params.IngestCapacity, err = queryInt(r, "ingest", 0); err != nil {
		writeErr(w, err)
		return
	}
	hdr, err := dataio.ReadStreamHeader(http.MaxBytesReader(w, r.Body, MaxUploadBytes))
	if err != nil {
		writeErr(w, &httpError{http.StatusBadRequest, fmt.Sprintf("decoding PTYCHSv1 opening: %v", err)})
		return
	}
	j, err := s.svc.SubmitStreaming(hdr, params)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Info(0))
}

// handleFrames ingests one PTYCHSv1 chunk. An 'F' chunk appends
// frames (429 + Retry-After when the bounded ingest is full — retry
// the same chunk); an 'E' chunk closes the stream like POST eof.
func (s *Server) handleFrames(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	windowN := j.WindowN()
	if windowN == 0 {
		writeErr(w, fmt.Errorf("%w: %s", jobs.ErrNotStreaming, j.ID()))
		return
	}
	frames, eof, err := dataio.ReadChunk(http.MaxBytesReader(w, r.Body, MaxUploadBytes), windowN)
	if err != nil {
		writeErr(w, &httpError{http.StatusBadRequest, fmt.Sprintf("decoding chunk: %v", err)})
		return
	}
	if eof {
		if err := s.svc.CloseStream(j.ID()); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"eof": true, "total": j.Info(0).Frames})
		return
	}
	total, err := s.svc.AppendFrames(j.ID(), frames)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"accepted": len(frames), "total": total})
}

func (s *Server) handleEOF(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	if err := s.svc.CloseStream(j.ID()); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j.Info(0))
}

// handleEvents streams the job's live feed as Server-Sent Events: an
// initial "info" event with the full job summary, then one event per
// iteration, ingest acceptance, fold, snapshot (preview ready) and
// state transition, until the job reaches a terminal state or the
// client disconnects. Pair with GET preview.png: refetch the preview
// whenever a "snapshot" event arrives.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, &httpError{http.StatusNotImplemented, "response writer does not support streaming"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	send := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	ch, cancel := j.Subscribe(256)
	defer cancel()
	if !send("info", j.Info(0)) {
		return
	}
	for {
		select {
		case e, open := <-ch:
			if !open {
				return
			}
			if !send(e.Type, e) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.List())
}

func (s *Server) job(r *http.Request) (*jobs.Job, error) {
	id := r.PathValue("id")
	j, ok := s.svc.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", jobs.ErrNotFound, id)
	}
	return j, nil
}

// defaultHistoryTail bounds the cost history served per status poll;
// history grows one entry per iteration without limit, so a polling
// client should not receive megabytes per request. ?history=N widens
// the tail, ?history=all returns everything.
const defaultHistoryTail = 256

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	tail := defaultHistoryTail
	if v := r.URL.Query().Get("history"); v == "all" {
		tail = -1
	} else if v != "" {
		if tail, err = queryInt(r, "history", defaultHistoryTail); err != nil {
			writeErr(w, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, j.Info(tail))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	if err := s.svc.Cancel(j.ID()); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j.Info(0))
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	resumed, err := s.svc.Resume(j.ID())
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, resumed.Info(0))
}

// handlePreview renders the latest snapshot as a grayscale PNG — the
// live view an operator (or beamline GUI) polls while a job runs.
func (s *Server) handlePreview(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	snap, _ := j.Snapshot()
	if snap == nil {
		writeErr(w, &httpError{http.StatusNotFound, "no snapshot yet (before first checkpoint)"})
		return
	}
	si, err := queryInt(r, "slice", 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	if si < 0 || si >= len(snap) {
		writeErr(w, &httpError{http.StatusBadRequest, fmt.Sprintf("slice %d outside [0,%d)", si, len(snap))})
		return
	}
	f := fieldFrom(snap[si])
	var img = ptycho.PhaseImage(f)
	switch kind := r.URL.Query().Get("kind"); kind {
	case "", "phase":
	case "mag":
		img = ptycho.MagnitudeImage(f)
	default:
		writeErr(w, &httpError{http.StatusBadRequest, fmt.Sprintf("kind %q: want phase or mag", kind)})
		return
	}
	w.Header().Set("Content-Type", "image/png")
	png.Encode(w, img)
}

// handleObject streams the latest snapshot as OBJCKv1 — the same bytes
// a checkpoint file holds, for archival or offline analysis.
func (s *Server) handleObject(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	snap, iter := j.Snapshot()
	if snap == nil {
		writeErr(w, &httpError{http.StatusNotFound, "no snapshot yet (before first checkpoint)"})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Ptycho-Iterations", strconv.Itoa(iter))
	dataio.WriteObject(w, snap)
}

// handleGrid reports the worker-grid coordinator's state: whether a
// grid is configured, its listen address, and every registered worker
// endpoint (submit grid jobs with ?grid=1 when enough are idle).
func (s *Server) handleGrid(w http.ResponseWriter, r *http.Request) {
	workers := s.svc.GridWorkers()
	idle := 0
	for _, wk := range workers {
		if !wk.Busy {
			idle++
		}
	}
	if workers == nil {
		workers = []jobs.GridWorkerInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled": s.svc.GridEnabled(),
		"addr":    s.svc.GridAddr(),
		"workers": workers,
		"idle":    idle,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.svc.WriteMetrics(w)
}

func fieldFrom(a *grid.Complex2D) ptycho.Field {
	f := ptycho.NewField(a.W(), a.H())
	copy(f.Data, a.Data)
	return f
}
