// Package httpapi exposes the reconstruction job service (internal/jobs)
// over HTTP — the transport layer of cmd/ptychoserve.
//
// The public surface is versioned under /v1:
//
//	POST /v1/jobs                 multipart submit: a "params" JSON part
//	                              (client.SubmitRequest, strictly decoded)
//	                              + a "dataset" PTYCHOv1 part. 202 with
//	                              the job summary. Honors Idempotency-Key.
//	POST /v1/jobs/stream          multipart submit of a STREAMING job: a
//	                              "params" part + a "dataset" PTYCHS
//	                              opening (header + probe, no frames).
//	GET  /v1/jobs                 page of jobs in submit order:
//	                              ?limit=N&cursor=C&status=S →
//	                              {"jobs": [...], "next_cursor": "..."}
//	GET  /v1/jobs/{id}            one job, with the cost-history tail
//	                              (?history=N entries, ?history=all)
//	POST /v1/jobs/{id}/frames     body: one PTYCHS chunk ('F' frames,
//	                              'E' closes). 200 with {accepted,total};
//	                              429 ingest_full when the buffer is full
//	POST /v1/jobs/{id}/eof        close the stream; the job folds what is
//	                              buffered and runs its tail iterations
//	GET  /v1/jobs/{id}/events     Server-Sent-Events live feed
//	POST /v1/jobs/{id}/cancel     cancel (queued: immediate; running: next
//	                              iteration boundary)
//	POST /v1/jobs/{id}/resume     new job warm-started from the last
//	                              OBJCKv1 checkpoint
//	GET  /v1/jobs/{id}/preview.png  grayscale preview of the latest
//	                              snapshot (?kind=phase|mag, ?slice=N)
//	GET  /v1/jobs/{id}/object     latest snapshot as an OBJCKv1 stream
//	GET  /v1/jobs/{id}/trace      span timeline of the job (queue wait,
//	                              setup, per-iteration compute/comm per
//	                              rank, checkpoints); ?format=chrome
//	                              exports Chrome trace-event JSON
//	GET  /v1/jobs/{id}/debug      failure dossier: summary with full cost
//	                              history, submitted params, span timeline
//	                              and the flight recorder's recent events
//	GET  /v1/grid                 worker-grid status, with per-worker
//	                              liveness (last_seen) and transport totals
//	GET  /v1/status               fleet-health rollup: queue/pool state,
//	                              per-state job counts, grid, WAL counters,
//	                              prediction accuracy
//	GET  /metrics                 Prometheus text exposition (unversioned)
//	GET  /healthz                 liveness (unversioned)
//
// Every /v1 error response is an RFC 9457-style problem envelope
// (application/problem+json, schema client.Problem) carrying a
// machine-readable "code" — queue_full, ingest_full, not_found,
// bad_params, payload_too_large, … — and retry_after_ms on
// backpressure. The typed Go SDK for this surface is the top-level
// client package.
//
// Every response carries an X-Request-ID header — the client's own, if
// it sent a well-formed one, otherwise server-assigned. A submission's
// request ID becomes the job's trace context: it labels the job's span
// timeline, its structured log lines, and the PTGW SETUP frame sent to
// grid workers (see obs.go).
//
// The pre-/v1 routes (POST /jobs with query-string parameters, GET
// /jobs returning the unpaged array, …) remain mounted as thin aliases
// for one release; they answer with a Deprecation header pointing at
// /v1 and will be removed next release.
//
// The complete reference with copy-pasteable curl examples (smoke-run
// by CI) lives in docs/HTTP_API.md.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"image/png"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ptychopath"
	"ptychopath/client"
	"ptychopath/internal/dataio"
	"ptychopath/internal/grid"
	"ptychopath/internal/jobs"
	"ptychopath/internal/obs"
	"ptychopath/internal/solver"
	"ptychopath/internal/stream"
)

// DefaultMaxUploadBytes bounds request bodies (datasets, stream
// openings, frame chunks) when WithMaxUpload is not given.
const DefaultMaxUploadBytes = 1 << 30

// Pagination bounds of GET /v1/jobs.
const (
	defaultPageLimit = 100
	maxPageLimit     = 1000
)

// legacyDeprecation is the Deprecation header (RFC 9745) served on the
// pre-/v1 alias routes: the @unix-time this API generation was
// deprecated in favor of /v1.
const legacyDeprecation = "@1785110400" // 2026-07-27

// Server adapts a jobs.Service to HTTP.
type Server struct {
	svc       *jobs.Service
	maxUpload int64
	log       *slog.Logger
	// httpDur is the request-latency histogram, labeled by matched
	// route pattern and response status. Written by handleMetrics after
	// the service's own metric families.
	httpDur *obs.HistogramVec
}

// Option configures the server.
type Option func(*Server)

// WithMaxUpload bounds request bodies at n bytes; beyond it requests
// answer 413 payload_too_large instead of buffering without limit.
func WithMaxUpload(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxUpload = n
		}
	}
}

// WithLogger routes the per-request log lines (method, route, status,
// duration, request ID) to l. Requests are not logged by default.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) {
		if l != nil {
			s.log = l
		}
	}
}

// New wraps a service.
func New(svc *jobs.Service, opts ...Option) *Server {
	s := &Server{
		svc:       svc,
		maxUpload: DefaultMaxUploadBytes,
		log:       obs.Discard(),
		httpDur: obs.NewHistogramVec("ptychoserve_http_request_duration_seconds",
			"HTTP request duration by route pattern and status.",
			[]string{"route", "status"}, obs.DefBuckets),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Handler returns the route mux: the /v1 surface, the deprecated
// unversioned aliases, and the unversioned infrastructure endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/jobs", s.handleSubmitV1)
	mux.HandleFunc("POST /v1/jobs/stream", s.handleSubmitStreamV1)
	mux.HandleFunc("GET /v1/jobs", s.handleListV1)
	// /v1-only (no legacy alias): the span timeline, debug bundle and
	// status rollup did not exist before the versioned surface.
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/debug", s.handleDebug)
	mux.HandleFunc("GET /v1/status", s.handleStatus)

	// Routes identical across generations: register under /v1 and as a
	// deprecated alias.
	shared := map[string]http.HandlerFunc{
		"GET /jobs/{id}":             s.handleGet,
		"POST /jobs/{id}/frames":     s.handleFrames,
		"POST /jobs/{id}/eof":        s.handleEOF,
		"GET /jobs/{id}/events":      s.handleEvents,
		"POST /jobs/{id}/cancel":     s.handleCancel,
		"POST /jobs/{id}/resume":     s.handleResume,
		"GET /jobs/{id}/preview.png": s.handlePreview,
		"GET /jobs/{id}/object":      s.handleObject,
		"GET /grid":                  s.handleGrid,
	}
	for pattern, h := range shared {
		method, path, _ := strings.Cut(pattern, " ")
		mux.HandleFunc(method+" /v1"+path, h)
		mux.HandleFunc(pattern, deprecated(h))
	}
	// Legacy submit and list keep their historical request shapes
	// (query-string parameters, raw dataset body, unpaged array).
	mux.HandleFunc("POST /jobs", deprecated(s.handleSubmitLegacy))
	mux.HandleFunc("POST /jobs/stream", deprecated(s.handleSubmitStreamLegacy))
	mux.HandleFunc("GET /jobs", deprecated(s.handleListLegacy))

	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return s.observe(mux)
}

// deprecated marks a legacy alias response: RFC 9745 Deprecation plus
// a pointer at the successor surface.
func deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", legacyDeprecation)
		w.Header().Set("Link", `</v1>; rel="successor-version"`)
		h(w, r)
	}
}

// httpError carries a status and problem code decided at the call
// site, wrapping the underlying cause so sentinel checks (and the
// MaxBytesError probe) still see through it.
type httpError struct {
	status int
	code   string
	msg    string
	cause  error
}

func (e *httpError) Error() string { return e.msg }
func (e *httpError) Unwrap() error { return e.cause }

// badParams is the constructor for the most common client error.
func badParams(format string, args ...any) *httpError {
	err := fmt.Errorf(format, args...)
	return &httpError{status: http.StatusBadRequest, code: client.CodeBadParams, msg: err.Error(), cause: errors.Unwrap(err)}
}

// Static Retry-After fallbacks for the backpressure paths, used only
// when the rejection does not carry a live jobs.Backpressure hint: a
// full ingest drains at the next iteration boundary (fast); a full job
// queue needs a whole job to finish; a tenant at quota frees capacity
// when one of its jobs does.
const (
	retryAfterIngestMS = 1000
	retryAfterQueueMS  = 5000
	retryAfterQuotaMS  = 1000
)

var problemTitles = map[string]string{
	client.CodeBadParams:       "invalid request parameters",
	client.CodeNotFound:        "no such job",
	client.CodeQueueFull:       "job queue full",
	client.CodeIngestFull:      "ingest buffer full",
	client.CodeQuotaExceeded:   "tenant quota exceeded",
	client.CodePayloadTooLarge: "request body too large",
	client.CodeChunkTooLarge:   "chunk exceeds ingest capacity",
	client.CodeJobFinished:     "job already finished",
	client.CodeNotResumable:    "job not resumable",
	client.CodeNotStreaming:    "not a streaming job",
	client.CodeStreamClosed:    "stream already closed",
	client.CodeNoSnapshot:      "no snapshot yet",
	client.CodeShuttingDown:    "service shutting down",
	client.CodeInternal:        "internal error",
}

// problemFor maps an error to its /v1 problem envelope. This is THE
// status/code table of the API — the table-driven envelope test pins
// every row.
func problemFor(err error) client.Problem {
	status, code := http.StatusInternalServerError, client.CodeInternal
	var retryMS int64
	var mbe *http.MaxBytesError
	var he *httpError
	switch {
	case errors.As(err, &mbe):
		// http.MaxBytesReader tripped (possibly deep inside a decoder):
		// the body exceeds -max-upload. Reported before the generic
		// wrapper cases so the cap never masquerades as a decode error.
		status, code = http.StatusRequestEntityTooLarge, client.CodePayloadTooLarge
	case errors.As(err, &he):
		status, code = he.status, he.code
	case errors.Is(err, jobs.ErrBadCursor), errors.Is(err, jobs.ErrInvalidParams):
		status, code = http.StatusBadRequest, client.CodeBadParams
	case errors.Is(err, jobs.ErrNotFound):
		status, code = http.StatusNotFound, client.CodeNotFound
	case errors.Is(err, jobs.ErrQueueFull):
		// Backpressure, not failure: the client should retry the same
		// submission after the hint.
		status, code = http.StatusTooManyRequests, client.CodeQueueFull
		retryMS = retryAfterQueueMS
	case errors.Is(err, stream.ErrIngestFull):
		status, code = http.StatusTooManyRequests, client.CodeIngestFull
		retryMS = retryAfterIngestMS
	case errors.Is(err, jobs.ErrQuotaExceeded):
		status, code = http.StatusTooManyRequests, client.CodeQuotaExceeded
		retryMS = retryAfterQuotaMS
	case errors.Is(err, stream.ErrChunkTooLarge):
		// Non-retryable: the chunk can NEVER fit. 400 so a compliant
		// feeder splits it instead of backing off forever.
		status, code = http.StatusBadRequest, client.CodeChunkTooLarge
	case errors.Is(err, jobs.ErrFinished):
		status, code = http.StatusConflict, client.CodeJobFinished
	case errors.Is(err, jobs.ErrNotResumable):
		status, code = http.StatusConflict, client.CodeNotResumable
	case errors.Is(err, jobs.ErrNotStreaming):
		status, code = http.StatusConflict, client.CodeNotStreaming
	case errors.Is(err, stream.ErrStreamClosed):
		status, code = http.StatusConflict, client.CodeStreamClosed
	case errors.Is(err, jobs.ErrClosed):
		status, code = http.StatusServiceUnavailable, client.CodeShuttingDown
	}
	// Honest admission: when the service wrapped the rejection with a
	// live drain estimate, that overrides the static fallback — the
	// advertised Retry-After shrinks as the queue drains and grows as
	// it fills.
	var bp *jobs.Backpressure
	if retryMS > 0 && errors.As(err, &bp) && bp.RetryAfter > 0 {
		retryMS = bp.RetryAfter.Milliseconds()
	}
	return client.Problem{
		Type:         client.ProblemType(code),
		Title:        problemTitles[code],
		Status:       status,
		Code:         code,
		Detail:       err.Error(),
		RetryAfterMS: retryMS,
		LegacyError:  err.Error(),
	}
}

func writeErr(w http.ResponseWriter, err error) {
	p := problemFor(err)
	w.Header().Set("Content-Type", "application/problem+json")
	if p.RetryAfterMS > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt((p.RetryAfterMS+999)/1000, 10))
	}
	w.WriteHeader(p.Status)
	json.NewEncoder(w).Encode(p)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// wireJob converts the service's job summary to the public wire schema.
// Everything the API serves funnels through this enumeration, so a
// field added to jobs.Info cannot reach (or silently miss) the wire
// without a matching client.Job change — the contract genuinely lives
// in the client package.
func wireJob(info jobs.Info) client.Job {
	return client.Job{
		ID:             info.ID,
		RequestID:      info.RequestID,
		State:          info.State,
		Algorithm:      info.Algorithm,
		Grid:           info.Grid,
		Iter:           info.Iter,
		TotalIters:     info.TotalIters,
		Cost:           info.Cost,
		CostHistory:    info.CostHistory,
		CheckpointIter: info.CheckpointIter,
		Checkpoint:     info.Checkpoint,
		ResumedFrom:    info.ResumedFrom,
		RecoveredFrom:  info.RecoveredFrom,
		Tenant:         info.Tenant,
		Priority:       info.Priority,
		PreemptedCount: info.PreemptedCount,
		Error:          info.Error,
		Created:        info.Created,
		Started:        info.Started,
		Finished:       info.Finished,
		Streaming:      info.Streaming,
		Frames:         info.Frames,
		ActiveFrames:   info.ActiveFrames,
		Folds:          info.Folds,
		EOF:            info.EOF,

		Prediction:           wirePrediction(info.Prediction),
		ActualSeconds:        info.ActualSeconds,
		PredictionErrorRatio: info.PredictionErrorRatio,
		StragglerRanks:       info.StragglerRanks,
		ImbalanceRatio:       info.ImbalanceRatio,
	}
}

func wirePrediction(p *jobs.Prediction) *client.Prediction {
	if p == nil {
		return nil
	}
	return &client.Prediction{
		Seconds:        p.Seconds,
		ComputeSeconds: p.ComputeSeconds,
		WaitSeconds:    p.WaitSeconds,
		CommSeconds:    p.CommSeconds,
		Source:         p.Source,
		Ranks:          p.Ranks,
	}
}

func wireJobs(infos []jobs.Info) []client.Job {
	out := make([]client.Job, len(infos))
	for i, info := range infos {
		out[i] = wireJob(info)
	}
	return out
}

// wireEvent is wireJob for the SSE feed.
func wireEvent(e jobs.Event) client.Event {
	return client.Event{
		Type:   e.Type,
		Job:    e.Job,
		State:  e.State,
		Iter:   e.Iter,
		Cost:   e.Cost,
		Frames: e.Frames,
		Time:   e.Time,
	}
}

// queryInt parses an optional integer query parameter.
func queryInt(r *http.Request, key string, def int) (int, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, badParams("parameter %s: %v", key, err)
	}
	return n, nil
}

func queryFloat(r *http.Request, key string, def float64) (float64, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, badParams("parameter %s: %v", key, err)
	}
	return f, nil
}

// paramsFromRequest maps the wire-contract SubmitRequest onto the
// service's Params. Semantic validation (ranges, algorithm names,
// mesh/grid consistency) stays in jobs — this is a pure rename.
func paramsFromRequest(req client.SubmitRequest) jobs.Params {
	return jobs.Params{
		Algorithm:          req.Algorithm,
		Iterations:         req.Iterations,
		StepSize:           req.StepSize,
		MeshRows:           req.MeshRows,
		MeshCols:           req.MeshCols,
		RoundsPerIteration: req.RoundsPerIteration,
		IntraWorkers:       req.IntraWorkers,
		CheckpointEvery:    req.CheckpointEvery,
		Grid:               req.Grid,
		Priority:           req.Priority,
		FoldEvery:          req.FoldEvery,
		MaxIterations:      req.MaxIterations,
		IngestCapacity:     req.IngestCapacity,
	}
}

// readSubmitParts decodes a /v1 multipart submission: a "params" JSON
// part (optional — defaults apply) decoded strictly against
// client.SubmitRequest, and a required "dataset" part handed to
// decodeDataset as it streams in. Unknown part names are rejected so a
// misspelled part cannot be silently dropped.
func (s *Server) readSubmitParts(w http.ResponseWriter, r *http.Request, decodeDataset func(io.Reader) error) (client.SubmitRequest, error) {
	var req client.SubmitRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.maxUpload)
	mr, err := r.MultipartReader()
	if err != nil {
		return req, badParams("reading multipart submit body (want a params JSON part and a dataset part): %w", err)
	}
	seenDataset := false
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			return req, badParams("reading multipart submit body: %w", err)
		}
		switch part.FormName() {
		case "params":
			dec := json.NewDecoder(part)
			dec.DisallowUnknownFields()
			if err := dec.Decode(&req); err != nil {
				return req, badParams("params part does not decode as a SubmitRequest: %w", err)
			}
		case "dataset":
			if err := decodeDataset(part); err != nil {
				return req, badParams("dataset part: %w", err)
			}
			seenDataset = true
		default:
			return req, badParams("unknown part %q (want params, dataset)", part.FormName())
		}
	}
	if !seenDataset {
		return req, badParams("multipart submit body has no dataset part")
	}
	return req, nil
}

// handleSubmitV1 accepts the versioned multipart submission and
// enqueues a batch job, idempotently when the request carries an
// Idempotency-Key.
func (s *Server) handleSubmitV1(w http.ResponseWriter, r *http.Request) {
	var prob *solver.Problem
	req, err := s.readSubmitParts(w, r, func(body io.Reader) error {
		var derr error
		prob, derr = dataio.Read(body)
		return derr
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	p := paramsFromRequest(req)
	p.RequestID = requestIDFrom(r.Context())
	p.Tenant = tenantFrom(r)
	j, created, err := s.svc.SubmitWithKey(prob, p, r.Header.Get("Idempotency-Key"))
	if err != nil {
		writeErr(w, err)
		return
	}
	if !created {
		w.Header().Set("Idempotency-Replayed", "true")
	}
	writeJSON(w, http.StatusAccepted, wireJob(j.Info(0)))
}

// handleSubmitStreamV1 opens a streaming job from a multipart body
// whose dataset part is a PTYCHS opening.
func (s *Server) handleSubmitStreamV1(w http.ResponseWriter, r *http.Request) {
	var hdr *dataio.StreamHeader
	req, err := s.readSubmitParts(w, r, func(body io.Reader) error {
		var derr error
		hdr, derr = dataio.ReadStreamHeader(body)
		return derr
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	p := paramsFromRequest(req)
	p.RequestID = requestIDFrom(r.Context())
	p.Tenant = tenantFrom(r)
	j, created, err := s.svc.SubmitStreamingWithKey(hdr, p, r.Header.Get("Idempotency-Key"))
	if err != nil {
		writeErr(w, err)
		return
	}
	if !created {
		w.Header().Set("Idempotency-Replayed", "true")
	}
	writeJSON(w, http.StatusAccepted, wireJob(j.Info(0)))
}

// handleListV1 serves one page of jobs: deterministic submit-time
// order, optional status filter, cursor pagination.
func (s *Server) handleListV1(w http.ResponseWriter, r *http.Request) {
	limit, err := queryInt(r, "limit", defaultPageLimit)
	if err != nil {
		writeErr(w, err)
		return
	}
	if limit < 1 || limit > maxPageLimit {
		writeErr(w, badParams("parameter limit: %d outside [1, %d]", limit, maxPageLimit))
		return
	}
	infos, next, err := s.svc.ListPage(jobs.ListOptions{
		Status: r.URL.Query().Get("status"),
		Cursor: r.URL.Query().Get("cursor"),
		Limit:  limit,
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, client.JobPage{Jobs: wireJobs(infos), NextCursor: next})
}

// --- legacy (pre-/v1) submission and listing -------------------------

func parseParams(r *http.Request) (jobs.Params, error) {
	var p jobs.Params
	var err error
	p.Algorithm = r.URL.Query().Get("alg")
	if p.Iterations, err = queryInt(r, "iters", 0); err != nil {
		return p, err
	}
	if p.StepSize, err = queryFloat(r, "step", 0); err != nil {
		return p, err
	}
	if p.RoundsPerIteration, err = queryInt(r, "rounds", 0); err != nil {
		return p, err
	}
	if p.IntraWorkers, err = queryInt(r, "workers", 0); err != nil {
		return p, err
	}
	if p.CheckpointEvery, err = queryInt(r, "checkpoint-every", 0); err != nil {
		return p, err
	}
	if g := r.URL.Query().Get("grid"); g != "" {
		on, err := strconv.ParseBool(g)
		if err != nil {
			return p, badParams("parameter grid: %v", err)
		}
		p.Grid = on
	}
	if mesh := r.URL.Query().Get("mesh"); mesh != "" {
		rows, cols, ok := strings.Cut(strings.ToLower(mesh), "x")
		if !ok {
			return p, badParams("parameter mesh %q: want ROWSxCOLS", mesh)
		}
		if p.MeshRows, err = strconv.Atoi(rows); err != nil {
			return p, badParams("parameter mesh %q: %v", mesh, err)
		}
		if p.MeshCols, err = strconv.Atoi(cols); err != nil {
			return p, badParams("parameter mesh %q: %v", mesh, err)
		}
	}
	return p, nil
}

func (s *Server) handleSubmitLegacy(w http.ResponseWriter, r *http.Request) {
	params, err := parseParams(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	prob, err := dataio.Read(http.MaxBytesReader(w, r.Body, s.maxUpload))
	if err != nil {
		writeErr(w, badParams("decoding PTYCHOv1 body: %w", err))
		return
	}
	params.RequestID = requestIDFrom(r.Context())
	params.Tenant = tenantFrom(r)
	j, err := s.svc.Submit(prob, params)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, wireJob(j.Info(0)))
}

func (s *Server) handleSubmitStreamLegacy(w http.ResponseWriter, r *http.Request) {
	params, err := parseParams(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	if params.FoldEvery, err = queryInt(r, "fold-every", 0); err != nil {
		writeErr(w, err)
		return
	}
	if params.MaxIterations, err = queryInt(r, "max-iters", 0); err != nil {
		writeErr(w, err)
		return
	}
	if params.IngestCapacity, err = queryInt(r, "ingest", 0); err != nil {
		writeErr(w, err)
		return
	}
	hdr, err := dataio.ReadStreamHeader(http.MaxBytesReader(w, r.Body, s.maxUpload))
	if err != nil {
		writeErr(w, badParams("decoding PTYCHS opening: %w", err))
		return
	}
	params.RequestID = requestIDFrom(r.Context())
	params.Tenant = tenantFrom(r)
	j, err := s.svc.SubmitStreaming(hdr, params)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, wireJob(j.Info(0)))
}

func (s *Server) handleListLegacy(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, wireJobs(s.svc.List()))
}

// --- shared handlers -------------------------------------------------

// handleFrames ingests one PTYCHS chunk. An 'F' chunk appends
// frames (429 ingest_full when the bounded ingest is full — retry the
// same chunk); an 'E' chunk closes the stream like POST eof.
func (s *Server) handleFrames(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	windowN := j.WindowN()
	if windowN == 0 {
		writeErr(w, fmt.Errorf("%w: %s", jobs.ErrNotStreaming, j.ID()))
		return
	}
	frames, eof, err := dataio.ReadChunk(http.MaxBytesReader(w, r.Body, s.maxUpload), windowN)
	if err != nil {
		writeErr(w, badParams("decoding chunk: %w", err))
		return
	}
	if eof {
		if err := s.svc.CloseStream(j.ID()); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, client.FrameAck{EOF: true, Total: j.Info(0).Frames})
		return
	}
	total, err := s.svc.AppendFrames(j.ID(), frames)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, client.FrameAck{Accepted: len(frames), Total: total})
}

func (s *Server) handleEOF(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	if err := s.svc.CloseStream(j.ID()); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wireJob(j.Info(0)))
}

// handleEvents streams the job's live feed as Server-Sent Events: an
// initial "info" event with the full job summary, then one event per
// iteration, ingest acceptance, fold, snapshot (preview-ready) and
// state transition, until the job reaches a terminal state or the
// client disconnects. Pair with GET preview.png: refetch the preview
// whenever a "snapshot" event arrives.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, &httpError{status: http.StatusNotImplemented, code: client.CodeInternal,
			msg: "response writer does not support streaming"})
		return
	}
	// The feed outlives any server-wide write deadline (slowloris
	// protection sized for request/response exchanges, not for a feed
	// that legitimately lasts the length of a reconstruction) — exempt
	// this connection. Errors are advisory: a transport without
	// deadline support just keeps its defaults.
	rc := http.NewResponseController(w)
	rc.SetWriteDeadline(time.Time{})
	rc.SetReadDeadline(time.Time{})
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	send := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	ch, cancel := j.Subscribe(256)
	defer cancel()
	if !send("info", wireJob(j.Info(0))) {
		return
	}
	for {
		select {
		case e, open := <-ch:
			if !open {
				return
			}
			if !send(e.Type, wireEvent(e)) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) job(r *http.Request) (*jobs.Job, error) {
	id := r.PathValue("id")
	j, ok := s.svc.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", jobs.ErrNotFound, id)
	}
	return j, nil
}

// defaultHistoryTail bounds the cost history served per status poll;
// history grows one entry per iteration without limit, so a polling
// client should not receive megabytes per request. ?history=N widens
// the tail, ?history=all returns everything.
const defaultHistoryTail = 256

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	tail := defaultHistoryTail
	if v := r.URL.Query().Get("history"); v == "all" {
		tail = -1
	} else if v != "" {
		if tail, err = queryInt(r, "history", defaultHistoryTail); err != nil {
			writeErr(w, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, wireJob(j.Info(tail)))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	if err := s.svc.Cancel(j.ID()); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wireJob(j.Info(0)))
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	resumed, err := s.svc.Resume(j.ID())
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, wireJob(resumed.Info(0)))
}

// handlePreview renders the latest snapshot as a grayscale PNG — the
// live view an operator (or beamline GUI) polls while a job runs.
func (s *Server) handlePreview(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	snap, _ := j.Snapshot()
	if snap == nil {
		writeErr(w, &httpError{status: http.StatusNotFound, code: client.CodeNoSnapshot,
			msg: "no snapshot yet (before first checkpoint)"})
		return
	}
	si, err := queryInt(r, "slice", 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	if si < 0 || si >= len(snap) {
		writeErr(w, badParams("slice %d outside [0,%d)", si, len(snap)))
		return
	}
	f := fieldFrom(snap[si])
	var img = ptycho.PhaseImage(f)
	switch kind := r.URL.Query().Get("kind"); kind {
	case "", "phase":
	case "mag":
		img = ptycho.MagnitudeImage(f)
	default:
		writeErr(w, badParams("kind %q: want phase or mag", kind))
		return
	}
	w.Header().Set("Content-Type", "image/png")
	png.Encode(w, img)
}

// handleObject streams the latest snapshot as OBJCKv1 — the same bytes
// a checkpoint file holds, for archival or offline analysis.
func (s *Server) handleObject(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	snap, iter := j.Snapshot()
	if snap == nil {
		// A job restored from the WAL after a restart has no in-memory
		// snapshot, but its OBJCKv1 checkpoint file survived — serve
		// that, so /object keeps working across crashes.
		if path, ck := j.CheckpointPath(); path != "" {
			if slices, err := dataio.ReadObjectFile(path); err == nil {
				snap, iter = slices, ck
			}
		}
	}
	if snap == nil {
		writeErr(w, &httpError{status: http.StatusNotFound, code: client.CodeNoSnapshot,
			msg: "no snapshot yet (before first checkpoint)"})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Ptycho-Iterations", strconv.Itoa(iter))
	dataio.WriteObject(w, snap)
}

// handleGrid reports the worker-grid coordinator's state: whether a
// grid is configured, its listen address, and every registered worker
// endpoint (submit grid jobs with "grid": true when enough are idle).
func (s *Server) handleGrid(w http.ResponseWriter, r *http.Request) {
	workers := s.svc.GridWorkers()
	idle := 0
	for _, wk := range workers {
		if !wk.Busy {
			idle++
		}
	}
	writeJSON(w, http.StatusOK, client.GridStatus{
		Enabled: s.svc.GridEnabled(),
		Addr:    s.svc.GridAddr(),
		Workers: wireGridWorkers(workers),
		Idle:    idle,
	})
}

func wireGridWorkers(workers []jobs.GridWorkerInfo) []client.GridWorker {
	gw := make([]client.GridWorker, len(workers))
	for i, wk := range workers {
		gw[i] = client.GridWorker{
			ID: wk.ID, Name: wk.Name, Busy: wk.Busy,
			LastSeen: wk.LastSeen,
			BytesIn:  wk.BytesIn, BytesOut: wk.BytesOut,
			Messages: wk.Messages, Sessions: wk.Sessions,
		}
	}
	return gw
}

// handleStatus serves the fleet-health rollup: one JSON object a
// dashboard (cmd/ptychotop) or a probe polls instead of stitching
// /metrics, /v1/grid and the job list together.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := s.svc.Status()
	out := client.Status{
		Time:          st.Time,
		UptimeSeconds: st.UptimeSeconds,
		Workers:       st.Workers,
		WorkersIdle:   st.WorkersIdle,
		QueueDepth:    st.QueueDepth,
		Jobs:          st.Jobs,
		SchedPolicy:   st.SchedPolicy,
		Prediction: client.PredictionSummary{
			Jobs:             st.Prediction.Jobs,
			MeanAbsErrorPct:  st.Prediction.MeanAbsErrorPct,
			LastErrorRatio:   st.Prediction.LastErrorRatio,
			CalibratedFlops:  st.Prediction.CalibratedFlops,
			CalibrationIters: st.Prediction.CalibrationIters,
		},
	}
	if st.Grid != nil {
		out.Grid = &client.GridSummary{
			Addr:        st.Grid.Addr,
			Workers:     wireGridWorkers(st.Grid.Workers),
			Busy:        st.Grid.Busy,
			Sessions:    st.Grid.Sessions,
			BytesRouted: st.Grid.BytesRouted,
		}
	}
	if st.WAL != nil {
		out.WAL = &client.WALSummary{
			Records:       st.WAL.Records,
			Syncs:         st.WAL.Syncs,
			Compactions:   st.WAL.Compactions,
			Bytes:         st.WAL.Bytes,
			Errors:        st.WAL.Errors,
			ReplayRecords: st.WAL.ReplayRecords,
			ReplayTorn:    st.WAL.ReplayTorn,
		}
	}
	for _, ts := range st.Tenants {
		out.Tenants = append(out.Tenants, client.TenantStatus{
			Name: ts.Name, Weight: ts.Weight, Active: ts.Active,
			MaxActive: ts.MaxActive, IngestQuotaBytes: ts.IngestQuotaBytes,
			IngestBytes: ts.IngestBytes, Submitted: ts.Submitted,
			Preempted: ts.Preempted, QuotaRejections: ts.QuotaRejections,
			CompletedCostSeconds: ts.CompletedCostSeconds, Share: ts.Share,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleDebug serves a job's failure dossier in one response: the
// summary with its COMPLETE cost history, the parameters as submitted,
// the span timeline, and the flight recorder's recent events — what an
// operator attaches to a bug report instead of four separate captures.
func (s *Server) handleDebug(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	events := j.FlightEvents()
	fe := make([]client.FlightEvent, len(events))
	for i, e := range events {
		fe[i] = client.FlightEvent{
			Time: e.Time, Kind: e.Kind, State: e.State,
			Iter: e.Iter, Cost: e.Cost, Frames: e.Frames, Detail: e.Detail,
		}
	}
	writeJSON(w, http.StatusOK, client.DebugBundle{
		Job:    wireJob(j.Info(-1)),
		Params: requestFromParams(j.Params()),
		Spans:  wireSpans(j.Trace().Spans()),
		Events: fe,
	})
}

// requestFromParams is paramsFromRequest in reverse: the job's
// effective parameters rendered back onto the wire-contract shape for
// the debug bundle.
func requestFromParams(p jobs.Params) client.SubmitRequest {
	return client.SubmitRequest{
		Algorithm:          p.Algorithm,
		Iterations:         p.Iterations,
		StepSize:           p.StepSize,
		MeshRows:           p.MeshRows,
		MeshCols:           p.MeshCols,
		RoundsPerIteration: p.RoundsPerIteration,
		IntraWorkers:       p.IntraWorkers,
		CheckpointEvery:    p.CheckpointEvery,
		Grid:               p.Grid,
		Priority:           p.Priority,
		FoldEvery:          p.FoldEvery,
		MaxIterations:      p.MaxIterations,
		IngestCapacity:     p.IngestCapacity,
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.svc.WriteMetrics(w)
	s.httpDur.Write(w)
}

func fieldFrom(a *grid.Complex2D) ptycho.Field {
	f := ptycho.NewField(a.W(), a.H())
	copy(f.Data, a.Data)
	return f
}
