package jobs

import (
	"testing"
	"time"

	"ptychopath/internal/obs"
)

// collectSpans indexes a timeline by span name.
func collectSpans(spans []obs.Span) map[string][]obs.Span {
	byName := map[string][]obs.Span{}
	for _, sp := range spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	return byName
}

// sumDur sums the durations of the named coordinator phase spans.
func sumDur(byName map[string][]obs.Span, name string) time.Duration {
	var total time.Duration
	for _, sp := range byName[name] {
		total += sp.Duration()
	}
	return total
}

// TestGridJobTrace is the observability acceptance test: a gd job on a
// 2-rank loopback grid must come back with a complete span timeline —
// queue wait, setup, one coordinator span per iteration, compute AND
// comm spans from BOTH worker ranks, checkpoint writes — and the
// coordinator phases must tile the job's wall clock: their sum
// reconciles with finished-created within 10%.
func TestGridJobTrace(t *testing.T) {
	const iters = 6
	prob := tinyProblem(t)
	s := newTestService(t, Config{
		Workers: 1, QueueDepth: 4, CheckpointEvery: 3,
		Timeout: 30 * time.Second, GridAddr: "127.0.0.1:0",
	})
	startGridWorkers(t, s, 2)

	j, err := s.Submit(prob, Params{
		Algorithm: "gd", Iterations: iters, StepSize: 0.02,
		MeshRows: 1, MeshCols: 2, Grid: true,
		RequestID: "trace-acceptance-1",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "grid job done", func() bool { return j.State() == Done })
	info := j.Info(0)
	if info.Error != "" {
		t.Fatalf("grid job error: %s", info.Error)
	}
	if info.RequestID != "trace-acceptance-1" {
		t.Fatalf("Info.RequestID %q, want the submitted request ID", info.RequestID)
	}

	svcInfo, spans, err := s.Trace(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	if svcInfo.ID != j.ID() {
		t.Fatalf("Service.Trace returned job %q, want %q", svcInfo.ID, j.ID())
	}
	if got := j.Trace().ID(); got != "trace-acceptance-1" {
		t.Fatalf("trace ID %q, want the request ID", got)
	}
	byName := collectSpans(spans)

	// The coordinator timeline: root + the four tiling phases.
	if n := len(byName["job"]); n != 1 {
		t.Fatalf("%d root job spans, want 1", n)
	}
	root := byName["job"][0]
	if root.End.IsZero() {
		t.Fatal("root job span still open after the job finished")
	}
	for _, name := range []string{"queue-wait", "setup", "finalize"} {
		if n := len(byName[name]); n != 1 {
			t.Fatalf("%d %q spans, want 1 (timeline: %v)", n, name, names(spans))
		}
	}
	if n := len(byName["iteration"]); n != iters {
		t.Fatalf("%d iteration spans, want %d", n, iters)
	}
	// CheckpointEvery=3 over 6 iterations: periodic checkpoints at 3
	// and 6, plus the final flush on completion.
	if n := len(byName["checkpoint"]); n != 3 {
		t.Fatalf("%d checkpoint spans, want 3", n)
	}
	for _, sp := range byName["checkpoint"] {
		if sp.Rank != obs.RankCoordinator {
			t.Fatalf("checkpoint span on rank %d, want coordinator", sp.Rank)
		}
	}
	if last := byName["checkpoint"][len(byName["checkpoint"])-1]; last.Iter != iters {
		t.Fatalf("last checkpoint span at iter %d, want %d", last.Iter, iters)
	}

	// Both worker ranks must have reported per-iteration phase timings
	// over the wire: one compute and one comm span per rank per
	// iteration, anchored inside the job's wall clock.
	for _, name := range []string{"compute", "comm"} {
		perRank := map[int]int{}
		for _, sp := range byName[name] {
			perRank[sp.Rank]++
			if sp.Duration() < 0 {
				t.Fatalf("%s span on rank %d has negative duration", name, sp.Rank)
			}
		}
		for rank := 0; rank < 2; rank++ {
			if perRank[rank] != iters {
				t.Fatalf("rank %d has %d %q spans, want %d (per-rank counts: %v)",
					rank, perRank[rank], name, iters, perRank)
			}
		}
	}

	// Wall-clock reconciliation: queue-wait + setup + iterations +
	// finalize tile [created, finished] by construction, so their sum
	// must land within 10% of the job's own wall clock. (compute/comm/
	// checkpoint overlap the iteration spans and stay out of the sum.)
	wall := info.Finished.Sub(info.Created)
	phases := sumDur(byName, "queue-wait") + sumDur(byName, "setup") +
		sumDur(byName, "iteration") + sumDur(byName, "finalize")
	if wall <= 0 {
		t.Fatalf("non-positive wall clock %v", wall)
	}
	diff := wall - phases
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.10*float64(wall) {
		t.Fatalf("span sum %v does not reconcile with wall clock %v (off by %v, >10%%)",
			phases, wall, diff)
	}
}

func names(spans []obs.Span) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

// TestLocalJobTrace: the serial path records the same tiling timeline
// (no rank spans — there are no workers), so the trace endpoint is
// useful for every job, not only grid runs.
func TestLocalJobTrace(t *testing.T) {
	prob := tinyProblem(t)
	s := newTestService(t, Config{Workers: 1, QueueDepth: 4, CheckpointEvery: 2})
	j, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 4, RequestID: "local-trace"})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job done", func() bool { return j.State() == Done })

	_, spans, err := s.Trace(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	byName := collectSpans(spans)
	if n := len(byName["iteration"]); n != 4 {
		t.Fatalf("%d iteration spans, want 4", n)
	}
	if len(byName["queue-wait"]) != 1 || len(byName["setup"]) != 1 || len(byName["finalize"]) != 1 {
		t.Fatalf("incomplete coordinator timeline: %v", names(spans))
	}
	// Periodic checkpoints at 2 and 4, plus the final flush.
	if n := len(byName["checkpoint"]); n != 3 {
		t.Fatalf("%d checkpoint spans, want 3", n)
	}
}
