package jobs

// Store glue: how the service writes its lifecycle into a
// store.Store and how NewService replays a store.Recovery back into a
// live registry. Everything here is a no-op when the service runs on
// the in-memory store (store.Mem), so a service without -state-dir
// behaves exactly as before durability existed.

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"ptychopath/internal/jobs/sched"
	"ptychopath/internal/jobs/store"
	"ptychopath/internal/stream"

	"encoding/json"
)

// persistParams is the JSON shape of jobs.Params in WAL submit records
// — everything except InitialObject, which is spooled as an OBJCKv1
// file and referenced by path.
type persistParams struct {
	Algorithm          string  `json:"algorithm"`
	Iterations         int     `json:"iterations"`
	StepSize           float64 `json:"step_size"`
	MeshRows           int     `json:"mesh_rows,omitempty"`
	MeshCols           int     `json:"mesh_cols,omitempty"`
	RoundsPerIteration int     `json:"rounds_per_iteration,omitempty"`
	IntraWorkers       int     `json:"intra_workers,omitempty"`
	CheckpointEvery    int     `json:"checkpoint_every,omitempty"`
	StartIter          int     `json:"start_iter,omitempty"`
	Grid               bool    `json:"grid,omitempty"`
	FoldEvery          int     `json:"fold_every,omitempty"`
	MaxIterations      int     `json:"max_iterations,omitempty"`
	IngestCapacity     int     `json:"ingest_capacity,omitempty"`

	// Scheduler fields (PTYWALv2 addendum, docs/FORMATS.md): both
	// omitempty, so records written before the sched layer existed
	// read back cleanly — recovery normalizes the zero values to the
	// anonymous tenant and the bulk class.
	Tenant   string `json:"tenant,omitempty"`
	Priority string `json:"priority,omitempty"`
}

func marshalParams(p Params) json.RawMessage {
	// Write the defaults as absent keys: an anonymous bulk submission
	// serializes byte-identically to a pre-sched record, so enabling
	// the scheduler does not fork the WAL format for unkeyed traffic.
	tenant, priority := p.Tenant, p.Priority
	if tenant == AnonymousTenant {
		tenant = ""
	}
	if priority == sched.Bulk.String() {
		priority = ""
	}
	b, err := json.Marshal(persistParams{
		Algorithm: p.Algorithm, Iterations: p.Iterations, StepSize: p.StepSize,
		MeshRows: p.MeshRows, MeshCols: p.MeshCols,
		RoundsPerIteration: p.RoundsPerIteration, IntraWorkers: p.IntraWorkers,
		CheckpointEvery: p.CheckpointEvery, StartIter: p.StartIter, Grid: p.Grid,
		FoldEvery: p.FoldEvery, MaxIterations: p.MaxIterations, IngestCapacity: p.IngestCapacity,
		Tenant: tenant, Priority: priority,
	})
	if err != nil {
		return nil
	}
	return b
}

func unmarshalParams(raw json.RawMessage) (Params, error) {
	if len(raw) == 0 {
		return Params{}, errors.New("no parameters recorded")
	}
	var pp persistParams
	if err := json.Unmarshal(raw, &pp); err != nil {
		return Params{}, err
	}
	// Version tolerance: submit records written before the scheduler
	// existed carry no tenant/priority keys; they recover as the
	// anonymous tenant's bulk work, exactly how they were scheduled
	// when written.
	if pp.Tenant == "" {
		pp.Tenant = AnonymousTenant
	}
	if pp.Priority == "" {
		pp.Priority = sched.Bulk.String()
	}
	return Params{
		Algorithm: pp.Algorithm, Iterations: pp.Iterations, StepSize: pp.StepSize,
		MeshRows: pp.MeshRows, MeshCols: pp.MeshCols,
		RoundsPerIteration: pp.RoundsPerIteration, IntraWorkers: pp.IntraWorkers,
		CheckpointEvery: pp.CheckpointEvery, StartIter: pp.StartIter, Grid: pp.Grid,
		FoldEvery: pp.FoldEvery, MaxIterations: pp.MaxIterations, IngestCapacity: pp.IngestCapacity,
		Tenant: pp.Tenant, Priority: pp.Priority,
	}, nil
}

func stateFromString(s string) (State, bool) {
	for _, st := range []State{Queued, Running, Done, Failed, Cancelled} {
		if st.String() == s {
			return st, true
		}
	}
	return Queued, false
}

// idNumber parses the numeric suffix of a service-assigned job ID
// ("job-0042" → 42), -1 for foreign IDs.
func idNumber(id string) int {
	if i := strings.LastIndexByte(id, '-'); i >= 0 {
		if n, err := strconv.Atoi(id[i+1:]); err == nil {
			return n
		}
	}
	return -1
}

// persistSubmit makes an accepted submission durable: the dataset (or
// stream opening) is spooled first, then the submit record — synced —
// references it, so the WAL never points at a payload that is not
// fully on disk. Runs after enqueue (the ID is assigned there); the
// merge on replay tolerates a worker's start record landing first.
func (s *Service) persistSubmit(j *Job, key string) error {
	if !s.store.Durable() {
		return nil
	}
	j.mu.Lock()
	prob := j.prob
	init := j.params.InitialObject
	p := j.params
	rec := store.SubmitRecord{
		ID: j.id, Streaming: j.streaming, Key: key,
		ResumedFrom: j.resumedFrom, RecoveredFrom: j.recoveredFrom,
		Created: j.created,
	}
	j.mu.Unlock()
	p.InitialObject = nil
	rec.Params = marshalParams(p)

	var err error
	if j.streaming {
		rec.Dataset, err = s.store.SpoolStreamOpen(j.id, j.hdr)
	} else {
		rec.Dataset, err = s.store.SpoolDataset(j.id, prob)
		if err == nil && init != nil {
			rec.InitObject, err = s.store.SpoolInitObject(j.id, init)
		}
	}
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.datasetPath = rec.Dataset
	j.mu.Unlock()
	return s.store.LogSubmit(rec)
}

// Worker-side logging is best effort: a store hiccup mid-run costs
// durability of that transition (recovery redoes more work), never the
// reconstruction itself. Failures are counted for /metrics. These
// helpers double as the structured-log points for the job lifecycle:
// they run at every transition site, durable store or not.

func (s *Service) logStart(j *Job) {
	s.log.Info("job started", "job_id", j.id, "request_id", j.RequestID(),
		"queue_wait", j.queueWait())
	if !s.store.Durable() {
		return
	}
	j.mu.Lock()
	started := j.started
	j.mu.Unlock()
	if err := s.store.LogStart(j.id, started); err != nil {
		s.met.walErrors.Add(1)
	}
}

func (s *Service) logIteration(j *Job, completed int, cost float64) {
	s.log.Debug("iteration", "job_id", j.id, "request_id", j.RequestID(),
		"iter", completed, "cost", cost)
	if !s.store.Durable() {
		return
	}
	if err := s.store.LogIteration(j.id, completed, cost); err != nil {
		s.met.walErrors.Add(1)
	}
}

// logCheckpoint reports whether the record landed (always true for
// non-durable stores — with no recovery, a superseded checkpoint file
// is removable regardless).
func (s *Service) logCheckpoint(j *Job, path string, completed int) bool {
	s.log.Debug("checkpoint written", "job_id", j.id, "request_id", j.RequestID(),
		"iter", completed, "path", path)
	if !s.store.Durable() {
		return true
	}
	if err := s.store.LogCheckpoint(j.id, path, completed); err != nil {
		s.met.walErrors.Add(1)
		return false
	}
	return true
}

func (s *Service) logFinish(j *Job, state State, err error) {
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	if err != nil {
		s.log.Info("job finished", "job_id", j.id, "request_id", j.RequestID(),
			"state", state.String(), "error", msg)
	} else {
		s.log.Info("job finished", "job_id", j.id, "request_id", j.RequestID(),
			"state", state.String())
	}
	if !s.store.Durable() {
		return
	}
	if lerr := s.store.LogFinish(j.id, state.String(), msg, time.Now()); lerr != nil {
		s.met.walErrors.Add(1)
	}
}

// recoverJobs replays a store.Recovery into the registry before the
// worker pool starts: terminal jobs come back as history, interrupted
// jobs re-enter the queue UNDER THEIR ORIGINAL IDs — a client polling
// job-0007 across the crash keeps polling job-0007 — warm-started from
// their last checkpoint (batch) or refolded from their spooled frames
// (streaming). Runs single-threaded from NewService; no locks needed.
func (s *Service) recoverJobs(rec *store.Recovery) {
	s.replayRecords = rec.Records
	s.replayTorn = rec.Torn
	for i := range rec.Jobs {
		jr := &rec.Jobs[i]
		if n := idNumber(jr.ID); n > s.nextID {
			s.nextID = n
		}
		j := s.recoverJob(jr)
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if j.state == Queued {
			// Through the scheduler, not a raw append: a wfq restart
			// re-orders the recovered backlog by class and tenant share
			// exactly like live submissions — an interactive job that
			// was next in line before the crash is next in line after.
			// Recovery never RE-checks quotas (the work was already
			// admitted once; dropping it now would lose accepted jobs),
			// but it does re-charge the tenant ledger so post-restart
			// admission sees the true in-flight count.
			ts := s.tenantLocked(j.params.Tenant)
			ts.active++
			j.tenantLabel = ts.metricLabel
			j.idemKey = jr.Key
			s.q.Push(s.schedItemLocked(j))
		}
	}
	for key, id := range rec.Keys {
		if j, ok := s.jobs[id]; ok {
			s.idem[key] = j
		}
	}
}

// RecoveryStats reports what startup recovery did: interrupted jobs
// re-enqueued, terminal jobs restored as history, jobs whose payloads
// could not be reloaded, and the WAL records replayed / torn records
// dropped doing it.
func (s *Service) RecoveryStats() (recovered, restored, unrecoverable int64, records, torn int) {
	return s.met.recovered.Load(), s.met.restored.Load(), s.met.unrecovered.Load(),
		s.replayRecords, s.replayTorn
}

// recoverJob rebuilds one job from its merged WAL record.
func (s *Service) recoverJob(jr *store.JobRecord) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		id: jr.ID, ctx: ctx, cancel: cancel,
		streaming: jr.Streaming, resumedFrom: jr.ResumedFrom,
		datasetPath: jr.Dataset, created: jr.Created,
	}
	params, perr := unmarshalParams(jr.Params)
	j.params = params

	state, ok := stateFromString(jr.State)
	if !ok || perr != nil {
		err := perr
		if err == nil {
			err = fmt.Errorf("unknown state %q", jr.State)
		}
		return s.unrecoverable(j, err)
	}

	if state.Terminal() {
		// History: restore verbatim. The worker pool never sees it.
		j.state = state
		j.iter = jr.Iter
		j.cost = jr.Cost
		j.costHistory = jr.CostHistory
		j.checkpointPath = jr.CheckpointPath
		j.checkpointIter = jr.CheckpointIter
		j.recoveredFrom = jr.RecoveredFrom
		j.recFrames = jr.Frames
		j.recEOF = jr.EOF
		j.started = jr.Started
		j.finished = jr.Finished
		if jr.Error != "" {
			j.err = errors.New(jr.Error)
		}
		cancel()
		s.met.restored.Add(1)
		return j
	}

	// Interrupted (queued or running at crash time): re-enqueue.
	if jr.Streaming {
		hdr, frames, eof, err := s.store.LoadStream(jr.Dataset)
		if err != nil {
			return s.unrecoverable(j, fmt.Errorf("replaying stream spool: %w", err))
		}
		capacity := params.IngestCapacity
		if capacity == 0 {
			capacity = s.cfg.IngestFrames
		}
		if capacity < len(frames) {
			capacity = len(frames)
		}
		ingest := stream.NewIngest(capacity)
		if len(frames) > 0 {
			if _, err := ingest.Append(frames); err != nil {
				return s.unrecoverable(j, fmt.Errorf("restoring %d spooled frames: %w", len(frames), err))
			}
		}
		if eof {
			ingest.CloseEOF()
		}
		j.hdr = hdr
		j.ingest = ingest
		j.recoveredFrom = "stream"
	} else {
		total := params.StartIter + params.Iterations
		if jr.CheckpointPath != "" && jr.CheckpointIter >= total {
			// The final checkpoint landed; only the terminal record was
			// lost. Nothing to re-run — restore as Done.
			j.state = Done
			j.iter = jr.CheckpointIter
			j.cost = jr.Cost
			j.costHistory = jr.CostHistory
			j.checkpointPath = jr.CheckpointPath
			j.checkpointIter = jr.CheckpointIter
			j.recoveredFrom = fmt.Sprintf("checkpoint@%d", jr.CheckpointIter)
			j.started = jr.Started
			j.finished = jr.Started // best available bound; the true instant died with the process
			cancel()
			s.met.restored.Add(1)
			return j
		}
		prob, err := s.store.LoadDataset(jr.Dataset)
		if err != nil {
			return s.unrecoverable(j, fmt.Errorf("reloading dataset: %w", err))
		}
		j.prob = prob
		if jr.CheckpointPath != "" {
			slices, err := s.store.LoadObject(jr.CheckpointPath)
			if err != nil {
				return s.unrecoverable(j, fmt.Errorf("reloading checkpoint: %w", err))
			}
			j.params.InitialObject = slices
			j.params.StartIter = jr.CheckpointIter
			j.params.Iterations = total - jr.CheckpointIter
			j.iter = jr.CheckpointIter
			j.cost = jr.Cost
			j.checkpointPath = jr.CheckpointPath
			j.checkpointIter = jr.CheckpointIter
			j.recoveredFrom = fmt.Sprintf("checkpoint@%d", jr.CheckpointIter)
		} else {
			if jr.InitObject != "" {
				slices, err := s.store.LoadObject(jr.InitObject)
				if err != nil {
					return s.unrecoverable(j, fmt.Errorf("reloading warm-start object: %w", err))
				}
				j.params.InitialObject = slices
			}
			j.iter = j.params.StartIter
			j.recoveredFrom = "scratch"
		}
	}
	if j.params.Grid && s.grid == nil {
		// The grid coordinator did not come back with us; the parallel
		// algorithms run identically on in-process goroutines.
		j.params.Grid = false
	}
	j.state = Queued
	// Re-enqueued jobs get a fresh trace: the pre-crash spans died with
	// the process, but the re-run is observable like any submission —
	// including a fresh runtime prediction for the remaining work.
	newTracedJob(j)
	s.attachAnalysis(j)
	s.met.recovered.Add(1)

	// Re-log the submission with the recovery-adjusted parameters so a
	// SECOND crash recovers from the same point, not the original one.
	rec := store.SubmitRecord{
		ID: j.id, Params: marshalParams(paramsNoInit(j.params)), Streaming: j.streaming,
		Key: jr.Key, ResumedFrom: j.resumedFrom, RecoveredFrom: j.recoveredFrom,
		Dataset: jr.Dataset, InitObject: jr.InitObject, Created: j.created,
	}
	if err := s.store.LogSubmit(rec); err != nil {
		s.met.walErrors.Add(1)
	}
	return j
}

// logPreempt re-logs a preempted job's submission with its
// checkpoint-adjusted parameters (warm start, remaining iterations), so
// a crash while the job waits in the queue recovers it from the
// preemption point rather than from scratch. Same idea as the re-log in
// recoverJob; called from requeuePreempted with the adjusted params
// already in place.
func (s *Service) logPreempt(j *Job) {
	if !s.store.Durable() {
		return
	}
	j.mu.Lock()
	rec := store.SubmitRecord{
		ID: j.id, Params: marshalParams(paramsNoInit(j.params)), Streaming: j.streaming,
		Key: j.idemKey, ResumedFrom: j.resumedFrom, RecoveredFrom: j.recoveredFrom,
		Dataset: j.datasetPath, Created: j.created,
	}
	j.mu.Unlock()
	if err := s.store.LogSubmit(rec); err != nil {
		s.met.walErrors.Add(1)
	}
}

func paramsNoInit(p Params) Params {
	p.InitialObject = nil
	return p
}

// unrecoverable parks a job whose payloads could not be reloaded as
// Failed history: the loss is visible (state, error, /metrics counter)
// instead of silent.
func (s *Service) unrecoverable(j *Job, err error) *Job {
	j.state = Failed
	j.err = fmt.Errorf("jobs: unrecoverable after restart: %w", err)
	j.finished = time.Now()
	j.cancel()
	s.met.unrecovered.Add(1)
	return j
}
