package jobs

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"time"

	"ptychopath/internal/dataio"
	"ptychopath/internal/gradsync"
	"ptychopath/internal/grid"
	"ptychopath/internal/halo"
	"ptychopath/internal/phantom"
	"ptychopath/internal/tiling"
	"ptychopath/internal/transport"
)

// The grid coordinator: when Config.GridAddr is set, the service runs a
// transport.Hub that worker processes (cmd/ptychoworker) register with,
// and jobs submitted with Params.Grid execute their parallel engine
// across those processes instead of in-process goroutines — one rank
// per leased worker endpoint, mesh tiles sharded across them, traffic
// routed over the CRC-framed TCP transport. Progress, snapshots and
// checkpoints reuse the exact machinery of local jobs: the worker
// running rank 0 relays per-iteration cost and periodic stitched
// snapshots, and the coordinator writes the same OBJCKv1 checkpoints,
// so cancel/resume/previews/SSE behave identically for grid jobs.
//
// A worker lost mid-run fails the session: every other rank's blocking
// operation returns transport.ErrPeerLost, the job transitions to
// Failed, and the last received snapshot is flushed as a final
// checkpoint — Resume then continues the work from it.

// ErrNoGrid is returned by Submit for a Params.Grid job when the
// service was started without a grid listener.
var ErrNoGrid = fmt.Errorf("%w: no worker grid configured (start the service with a grid address)", ErrInvalidParams)

// GridEnabled reports whether the service runs a worker grid.
func (s *Service) GridEnabled() bool { return s.grid != nil }

// GridAddr returns the hub's listen address ("" without a grid).
func (s *Service) GridAddr() string {
	if s.grid == nil {
		return ""
	}
	return s.grid.Addr().String()
}

// GridWorkerInfo describes one registered grid worker endpoint.
type GridWorkerInfo = transport.WorkerInfo

// GridWorkers lists the registered grid workers.
func (s *Service) GridWorkers() []transport.WorkerInfo {
	if s.grid == nil {
		return nil
	}
	return s.grid.Workers()
}

// executeGrid runs one parallel job across leased grid workers. On
// session failure it returns the last snapshot received (possibly nil)
// so the caller flushes a final checkpoint, mirroring the partial-result
// contract of the in-process engines.
func (s *Service) executeGrid(j *Job) ([]*grid.Complex2D, error) {
	p := j.params
	prob := j.prob
	init := p.InitialObject
	if init == nil {
		init = phantom.Vacuum(prob.ImageBounds(), prob.Slices).Slices
	}
	mesh, err := tiling.NewMesh(prob.ImageBounds(), p.MeshRows, p.MeshCols,
		tiling.HaloForWindow(prob.WindowN))
	if err != nil {
		return nil, err
	}
	ranks := mesh.NumTiles()

	// Serialize the dataset and warm-start once; every rank receives
	// the same blobs and derives its shard deterministically from the
	// mesh (see gradsync.RunRank).
	var probBuf, initBuf bytes.Buffer
	if err := dataio.Write(&probBuf, prob); err != nil {
		return nil, fmt.Errorf("grid: encoding problem: %w", err)
	}
	if err := dataio.WriteObject(&initBuf, init); err != nil {
		return nil, fmt.Errorf("grid: encoding initial object: %w", err)
	}
	setups := make([]*transport.Setup, ranks)
	for r := range setups {
		setups[r] = &transport.Setup{
			JobID:     j.id,
			Algorithm: p.Algorithm,
			MeshRows:  p.MeshRows, MeshCols: p.MeshCols, Halo: mesh.Halo,
			HaloWidth: mesh.Halo, ExtraRows: 1, // hve defaults, matching execute()
			StepSize:  p.StepSize, Iterations: p.Iterations,
			RoundsPerIteration: p.RoundsPerIteration,
			IntraWorkers:       p.IntraWorkers,
			SnapshotEvery:      p.CheckpointEvery,
			TimeoutMS:          s.cfg.Timeout.Milliseconds(),
			Trace:              p.RequestID,
			Problem:            probBuf.Bytes(), Init: initBuf.Bytes(),
		}
	}

	// lastSnap tracks the newest decoded snapshot for the final-
	// checkpoint-on-failure guarantee; snapshots arrive on hub
	// goroutines.
	var snapMu sync.Mutex
	var lastSnap []*grid.Complex2D
	j.beginIterations()
	sess, err := s.grid.StartSession(setups, transport.SessionCallbacks{
		OnIteration: func(iter int, cost float64) {
			s.observeIteration(j, j.recordIteration(p.StartIter+iter+1, cost))
			s.logIteration(j, p.StartIter+iter+1, cost)
			s.met.iterations.Add(1)
		},
		OnRankTiming: func(rank, iter int, computeNS, commNS int64) {
			s.recordRankStats(j, rank, p.StartIter+iter+1, computeNS, commNS)
		},
		OnSnapshot: func(iter int, object []byte) error {
			slices, err := dataio.ReadObject(bytes.NewReader(object))
			if err != nil {
				return err
			}
			snapMu.Lock()
			lastSnap = slices
			snapMu.Unlock()
			return s.snapshot(j, p.StartIter+iter+1, slices)
		},
	})
	if err != nil {
		return nil, fmt.Errorf("grid: %w", err)
	}

	// Relay job cancellation: ask every rank to stop at its next
	// iteration boundary, and hard-abort the session if the drain
	// stalls longer than the communication timeout.
	waitCtx, cancelWait := context.WithCancel(context.Background())
	defer cancelWait()
	stopRelay := context.AfterFunc(j.ctx, func() {
		sess.Cancel()
		t := time.AfterFunc(s.cfg.Timeout, cancelWait)
		context.AfterFunc(waitCtx, func() { t.Stop() })
	})
	defer stopRelay()

	results, err := sess.Wait(waitCtx)
	if err != nil {
		snapMu.Lock()
		snap := lastSnap
		snapMu.Unlock()
		return snap, fmt.Errorf("grid: %w", err)
	}
	slices, cancelled, err := assembleGrid(p.Algorithm, mesh, results)
	if err != nil {
		return nil, fmt.Errorf("grid: %w", err)
	}
	if cancelled {
		return slices, context.Canceled
	}
	return slices, nil
}

// assembleGrid decodes per-rank results and stitches them with the
// engine's own assembler, so a grid job's final object is byte-for-byte
// what the in-process run of the same parameters produces.
func assembleGrid(alg string, mesh *tiling.Mesh, results []*transport.RankResult) ([]*grid.Complex2D, bool, error) {
	switch alg {
	case "gd":
		outs := make([]*gradsync.RankOutcome, len(results))
		for i, r := range results {
			slices, err := dataio.ReadObject(bytes.NewReader(r.Tile))
			if err != nil {
				return nil, false, fmt.Errorf("decoding rank %d tile: %w", i, err)
			}
			outs[i] = &gradsync.RankOutcome{
				Slices: slices, CostHistory: r.CostHistory,
				Locations: r.Locations, MemBytes: r.MemBytes,
				ComputeNS: r.ComputeNS, CommNS: r.CommNS,
				SentBytes: r.SentBytes, SentMessages: r.SentMessages,
				Cancelled: r.Cancelled,
			}
		}
		res, err := gradsync.AssembleResult(mesh, outs)
		if err != nil {
			return nil, false, err
		}
		return res.Slices, outs[0].Cancelled, nil
	case "hve":
		outs := make([]*halo.RankOutcome, len(results))
		for i, r := range results {
			slices, err := dataio.ReadObject(bytes.NewReader(r.Tile))
			if err != nil {
				return nil, false, fmt.Errorf("decoding rank %d tile: %w", i, err)
			}
			outs[i] = &halo.RankOutcome{
				Slices: slices, CostHistory: r.CostHistory,
				Locations: r.Locations, Owned: r.Owned, MemBytes: r.MemBytes,
				SentBytes: r.SentBytes, SentMessages: r.SentMessages,
				Cancelled: r.Cancelled,
			}
		}
		res, err := halo.AssembleResult(mesh, outs)
		if err != nil {
			return nil, false, err
		}
		return res.Slices, outs[0].Cancelled, nil
	}
	return nil, false, fmt.Errorf("unknown grid algorithm %q", alg)
}
