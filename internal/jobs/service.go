package jobs

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ptychopath/internal/dataio"
	"ptychopath/internal/gradsync"
	"ptychopath/internal/grid"
	"ptychopath/internal/halo"
	"ptychopath/internal/jobs/sched"
	"ptychopath/internal/jobs/store"
	"ptychopath/internal/obs"
	"ptychopath/internal/obs/flight"
	"ptychopath/internal/phantom"
	"ptychopath/internal/solver"
	"ptychopath/internal/stream"
	"ptychopath/internal/tiling"
	"ptychopath/internal/transport"
)

// Config sizes the service.
type Config struct {
	// Workers is the worker-pool size — how many reconstructions run
	// concurrently. Default 2.
	Workers int
	// QueueDepth bounds the FIFO of jobs waiting for a worker; Submit
	// returns ErrQueueFull beyond it. Default 16.
	QueueDepth int
	// SpoolDir receives OBJCKv1 checkpoint files (<jobid>-i<iter>.objck;
	// superseded checkpoints are removed once the successor is logged).
	// When empty a fresh temporary directory is created.
	SpoolDir string
	// CheckpointEvery is the default iteration period for checkpoints
	// and preview snapshots when a job does not set its own. Default 5.
	CheckpointEvery int
	// Timeout bounds parallel-engine communication. Default 5 minutes.
	Timeout time.Duration
	// IngestFrames is the default per-job frame-buffer bound for
	// Streaming jobs; appends beyond it see stream.ErrIngestFull
	// (HTTP 429 backpressure). Default 4096.
	IngestFrames int
	// GridAddr, when non-empty, starts the worker-grid coordinator: a
	// TCP hub on this address that ptychoworker processes register
	// with, enabling Params.Grid jobs to run their parallel engine
	// across processes (see grid.go and internal/transport). Empty
	// disables the grid.
	GridAddr string
	// Store is the durability layer: job transitions are logged to it
	// and NewService replays its Recovery into the registry (interrupted
	// jobs re-enqueue under their original IDs, warm-started from their
	// last checkpoint). Nil selects store.Mem — the historical in-memory
	// behavior, nothing survives the process. The service syncs the
	// store on Shutdown/Close but does not close it; the creator owns
	// its lifetime.
	Store store.Store
	// Logger receives the service's structured log lines (job
	// lifecycle at Info, per-iteration and checkpoint detail at
	// Debug), each tagged with job_id and request_id. Nil discards.
	Logger *slog.Logger
	// Sched selects the queue ordering policy and the tenant
	// contracts (see internal/jobs/sched). The zero value is the
	// historical FIFO with no quotas — existing single-tenant
	// deployments are untouched.
	Sched sched.Config
}

func (c *Config) setDefaults() error {
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.Workers < 0 {
		return fmt.Errorf("jobs: workers must be positive, got %d", c.Workers)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("jobs: queue depth must be positive, got %d", c.QueueDepth)
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 5
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("jobs: checkpoint period must be non-negative, got %d", c.CheckpointEvery)
	}
	if c.Timeout == 0 {
		c.Timeout = 5 * time.Minute
	}
	if c.IngestFrames == 0 {
		c.IngestFrames = 4096
	}
	if c.IngestFrames < 0 {
		return fmt.Errorf("jobs: ingest capacity must be positive, got %d", c.IngestFrames)
	}
	if c.SpoolDir == "" {
		dir, err := os.MkdirTemp("", "ptychojobs-")
		if err != nil {
			return fmt.Errorf("jobs: creating spool dir: %w", err)
		}
		c.SpoolDir = dir
	} else if err := os.MkdirAll(c.SpoolDir, 0o755); err != nil {
		return fmt.Errorf("jobs: creating spool dir: %w", err)
	}
	if err := c.Sched.SetDefaults(); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	if c.Sched.InteractiveReserve >= c.QueueDepth {
		return fmt.Errorf("jobs: interactive reserve %d must leave bulk room in queue depth %d",
			c.Sched.InteractiveReserve, c.QueueDepth)
	}
	return nil
}

// Service owns the queue, the worker pool and the job registry.
type Service struct {
	cfg   Config
	wg    sync.WaitGroup
	met   counters
	hist  histograms
	log   *slog.Logger
	grid  *transport.Hub // worker-grid coordinator; nil without GridAddr
	store store.Store
	start time.Time // service start, for Status uptime

	// Analysis-layer state (see analysis.go): the live throughput EWMA
	// feeding runtime predictions, and the prediction-error summary.
	throughput throughputEstimate
	preds      predStats

	// WAL replay statistics, set once during NewService recovery.
	replayRecords, replayTorn int

	// Fleet-wide runtime EWMA: the Retry-After fallback for jobs
	// without a prediction (see tenancy.go).
	runtime runtimeEstimate

	mu     sync.Mutex
	notify *sync.Cond  // signals workers: queue non-empty or closing
	q      sched.Queue // bounded queue; ordering policy per Config.Sched
	seq    uint64      // scheduler sequence — submission-order tie-break
	jobs   map[string]*Job
	order  []string                // submission order, for List/ListPage
	idem   map[string]*Job         // Idempotency-Key → the job it created
	running map[string]*Job        // jobs currently on a worker (preemption victims, retry estimates)
	tenants map[string]*tenantState // fair-share accounting, keyed by tenant name
	tenantOrder []string            // first-seen order; bounds the metric registry
	nextID int
	closed bool
}

// NewService validates the config, creates the spool directory,
// replays the store's recovery (see Config.Store) and starts the
// worker pool.
func NewService(cfg Config) (*Service, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	q, err := sched.New(cfg.Sched)
	if err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	s := &Service{
		cfg:     cfg,
		hist:    newHistograms(),
		log:     cfg.Logger,
		store:   cfg.Store,
		start:   time.Now(),
		q:       q,
		jobs:    make(map[string]*Job),
		idem:    make(map[string]*Job),
		running: make(map[string]*Job),
		tenants: make(map[string]*tenantState),
	}
	if s.log == nil {
		s.log = obs.Discard()
	}
	if s.store == nil {
		s.store = store.Mem{}
	}
	// When the store can report fsync latency (the WAL does), feed it
	// into the histogram; stores without the hook stay silent.
	if o, ok := s.store.(interface{ SetSyncObserver(func(time.Duration)) }); ok {
		o.SetSyncObserver(s.hist.walFsync.Observe)
	}
	if cfg.GridAddr != "" {
		hub, err := transport.Listen(cfg.GridAddr)
		if err != nil {
			return nil, fmt.Errorf("jobs: starting grid coordinator: %w", err)
		}
		s.grid = hub
	}
	// Recovery runs before the first worker starts: the queue must be
	// fully rebuilt before anything can pop from it.
	rec, err := s.store.Recover()
	if err != nil {
		return nil, fmt.Errorf("jobs: recovering job state: %w", err)
	}
	s.recoverJobs(rec)
	if s.store.Durable() {
		s.log.Info("recovery complete",
			"records", rec.Records, "torn", rec.Torn, "jobs", len(rec.Jobs))
	}
	s.notify = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				j, ok := s.pop()
				if !ok {
					return
				}
				s.run(j)
			}
		}()
	}
	return s, nil
}

// pop blocks until a job is queued or the service closes with an empty
// queue. The popped job is registered as running-designate so retry
// estimates and preemption see it even before markRunning commits.
func (s *Service) pop() (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.q.Len() == 0 && !s.closed {
		s.notify.Wait()
	}
	it, ok := s.q.Pop()
	if !ok {
		return nil, false
	}
	j := it.Payload.(*Job)
	s.running[j.id] = j
	return j, true
}

// Close stops accepting jobs, waits for queued and running jobs to
// drain, and returns. Cancel running jobs first for a fast shutdown.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.notify.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	if s.grid != nil {
		s.grid.Close()
	}
	if err := s.store.Sync(); err != nil {
		s.met.walErrors.Add(1)
	}
}

// Config returns the effective (defaulted) configuration.
func (s *Service) Config() Config { return s.cfg }

// Submit validates the job and enqueues it, returning ErrQueueFull when
// the bounded FIFO has no room.
func (s *Service) Submit(prob *solver.Problem, p Params) (*Job, error) {
	j, _, err := s.SubmitWithKey(prob, p, "")
	return j, err
}

// SubmitWithKey is Submit with an idempotency key: when key is
// non-empty and a previous submission with the same key succeeded, the
// original job is returned with created == false and nothing is
// enqueued — a client that retries a submission after a lost response
// cannot double-enqueue the work. The key is claimed only by a
// successful enqueue: a submission rejected with ErrQueueFull leaves
// the key free, so the retry the 429 asks for can succeed. The first
// job wins; parameters of replayed submissions are not compared.
func (s *Service) SubmitWithKey(prob *solver.Problem, p Params, key string) (*Job, bool, error) {
	return s.submit(prob, p, "", key)
}

func (s *Service) submit(prob *solver.Problem, p Params, resumedFrom, key string) (*Job, bool, error) {
	p.setDefaults(s.cfg)
	if err := prob.Validate(); err != nil {
		return nil, false, fmt.Errorf("%w: invalid problem: %v", ErrInvalidParams, err)
	}
	if err := p.validate(prob); err != nil {
		return nil, false, err
	}
	if p.Grid && s.grid == nil {
		return nil, false, ErrNoGrid
	}
	ctx, cancel := context.WithCancel(context.Background())
	nj := newTracedJob(&Job{
		prob: prob, params: p, ctx: ctx, cancel: cancel,
		state: Queued, iter: p.StartIter, resumedFrom: resumedFrom,
		created: time.Now(),
	})
	s.attachAnalysis(nj)
	j, created, err := s.enqueue(nj, key)
	if err != nil || !created {
		return j, created, err
	}
	if perr := s.persistSubmit(j, key); perr != nil {
		return nil, false, s.failPersist(j, perr)
	}
	s.log.Info("job submitted", "job_id", j.id, "request_id", p.RequestID,
		"algorithm", p.Algorithm, "grid", p.Grid, "iterations", p.Iterations)
	return j, created, nil
}

// newTracedJob attaches the span trace and the flight recorder to a
// constructed job: the root "job" span opens at submission and closes
// at the terminal state; the recorder keeps the tail of the event feed
// for the debug bundle.
func newTracedJob(j *Job) *Job {
	j.tr = obs.NewTrace(j.params.RequestID)
	j.rootSpan = j.tr.BeginAt("job", 0, obs.RankCoordinator, obs.IterNone, j.created)
	j.rec = flight.NewRecorder(0)
	return j
}

// failPersist unwinds a submission whose durability write failed: the
// job is cancelled (it must not run work the WAL never heard of) and
// the submitter gets the store error instead of an acknowledgment.
func (s *Service) failPersist(j *Job, err error) error {
	s.met.walErrors.Add(1)
	s.Cancel(j.id)
	return fmt.Errorf("jobs: persisting submission: %w", err)
}

// SubmitStreaming opens a Streaming job from geometry and probe
// metadata only (the PTYCHS opening): the reconstruction starts with
// an empty active set and grows as producers push frames through
// AppendFrames. Params.Iterations is the tail — iterations run over
// the complete set after CloseStream. Like any job it waits for a pool
// worker; frames appended while it is still queued are buffered (up to
// the ingest bound) and folded as soon as it starts.
func (s *Service) SubmitStreaming(hdr *dataio.StreamHeader, p Params) (*Job, error) {
	j, _, err := s.SubmitStreamingWithKey(hdr, p, "")
	return j, err
}

// SubmitStreamingWithKey is SubmitStreaming with an idempotency key —
// the same replay contract as SubmitWithKey.
func (s *Service) SubmitStreamingWithKey(hdr *dataio.StreamHeader, p Params, key string) (*Job, bool, error) {
	p.setDefaults(s.cfg)
	if err := p.validateStreaming(hdr); err != nil {
		return nil, false, err
	}
	capacity := p.IngestCapacity
	if capacity == 0 {
		capacity = s.cfg.IngestFrames
	}
	ctx, cancel := context.WithCancel(context.Background())
	j, created, err := s.enqueue(newTracedJob(&Job{
		params: p, ctx: ctx, cancel: cancel,
		streaming: true, hdr: hdr, ingest: stream.NewIngest(capacity),
		state: Queued, created: time.Now(),
	}), key)
	if err != nil || !created {
		return j, created, err
	}
	if perr := s.persistSubmit(j, key); perr != nil {
		return nil, false, s.failPersist(j, perr)
	}
	s.log.Info("job submitted", "job_id", j.id, "request_id", p.RequestID,
		"algorithm", p.Algorithm, "streaming", true)
	return j, created, nil
}

// enqueue registers a constructed job with the bounded queue. The
// idempotency check, the capacity check and the tenant quota share one
// critical section, so two racing submissions with the same key
// resolve to exactly one job: the loser observes the winner's
// registration and returns it.
//
// Load shedding is class-aware: bulk submissions are rejected once the
// queue reaches QueueDepth-InteractiveReserve, interactive ones only
// at the full depth — under pressure the service sheds bulk first.
// Both queue-full and quota rejections carry a live Retry-After
// derived from the backlog's predicted runtimes (see tenancy.go).
func (s *Service) enqueue(j *Job, key string) (*Job, bool, error) {
	class, _ := sched.ParseClass(j.params.Priority)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		j.cancel()
		return nil, false, ErrClosed
	}
	if key != "" {
		if prev, ok := s.idem[key]; ok {
			s.mu.Unlock()
			j.cancel()
			s.met.replayed.Add(1)
			return prev, false, nil
		}
	}
	limit := s.cfg.QueueDepth
	if class == sched.Bulk {
		limit -= s.cfg.Sched.InteractiveReserve
	}
	if s.q.Len() >= limit {
		err := &Backpressure{
			Err:        fmt.Errorf("%w (depth %d)", ErrQueueFull, limit),
			RetryAfter: s.retryAfterLocked(),
		}
		s.mu.Unlock()
		j.cancel()
		s.met.rejected.Add(1)
		return nil, false, err
	}
	if err := s.admitLocked(j); err != nil {
		s.mu.Unlock()
		j.cancel()
		return nil, false, err
	}
	s.nextID++
	j.id = fmt.Sprintf("job-%04d", s.nextID)
	j.idemKey = key
	s.q.Push(s.schedItemLocked(j))
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if key != "" {
		s.idem[key] = j
	}
	s.notify.Signal()
	victim := s.preemptLocked(class)
	s.mu.Unlock()
	if victim != nil {
		victim.cancel()
	}
	s.met.submitted.Add(1)
	return j, true, nil
}

// preemptLocked picks a running bulk job to yield for a just-enqueued
// interactive one (wfq policy only): when every worker is busy and at
// least one runs bulk work, the most recently started bulk job is
// flagged to stop at its next iteration boundary — it checkpoints,
// requeues warm (see requeuePreempted) and loses no work. Returns the
// victim whose context the caller must cancel AFTER releasing s.mu.
// Requires s.mu.
func (s *Service) preemptLocked(class sched.Class) *Job {
	if class != sched.Interactive || s.q.Policy() != "wfq" {
		return nil
	}
	if len(s.running) < s.cfg.Workers {
		return nil // an idle worker will take the interactive job now
	}
	var victim *Job
	var victimStart time.Time
	for _, j := range s.running {
		j.mu.Lock()
		ok := j.state == Running && !j.preempt && !j.userCancel &&
			!j.streaming && j.params.Priority != sched.Interactive.String()
		started := j.started
		j.mu.Unlock()
		if ok && (victim == nil || started.After(victimStart)) {
			victim, victimStart = j, started
		}
	}
	if victim == nil {
		return nil
	}
	victim.mu.Lock()
	victim.preempt = true
	victim.mu.Unlock()
	return victim
}

// AppendFrames pushes a chunk of acquired frames into a streaming
// job's ingest buffer, returning the total accepted so far. Frames are
// validated against the job's window size before they enter the
// buffer. A full buffer returns stream.ErrIngestFull (retry after
// backoff — the HTTP layer maps it to 429 with Retry-After); a closed
// stream returns stream.ErrStreamClosed; a finished job ErrFinished.
func (s *Service) AppendFrames(id string, frames []dataio.Frame) (int, error) {
	j, ok := s.Get(id)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if !j.streaming {
		return 0, fmt.Errorf("%w: %s", ErrNotStreaming, id)
	}
	if j.hdr == nil {
		// A terminal job restored from the WAL: its stream is long gone.
		return j.recFrames, fmt.Errorf("%w: %s is %s", ErrFinished, id, j.State())
	}
	if len(frames) == 0 {
		return j.ingest.Total(), nil
	}
	// Full validation HERE, before acceptance: a frame that would fail
	// the fold (Problem.AppendLocations) must 400 the producer that
	// sent it, not kill the whole non-resumable job minutes later.
	img := grid.RectWH(0, 0, j.hdr.ImageW, j.hdr.ImageH)
	for i, f := range frames {
		if f.Meas == nil || f.Meas.W() != j.hdr.WindowN || f.Meas.H() != j.hdr.WindowN {
			return j.ingest.Total(), fmt.Errorf("%w: frame %d measurement is not %dx%d",
				ErrInvalidParams, i, j.hdr.WindowN, j.hdr.WindowN)
		}
		if !img.Contains(int(math.Round(f.Loc.X)), int(math.Round(f.Loc.Y))) {
			return j.ingest.Total(), fmt.Errorf("%w: frame %d center (%g, %g) outside image %dx%d",
				ErrInvalidParams, i, f.Loc.X, f.Loc.Y, j.hdr.ImageW, j.hdr.ImageH)
		}
	}
	if j.State().Terminal() {
		return j.ingest.Total(), fmt.Errorf("%w: %s is %s", ErrFinished, id, j.State())
	}
	// Tenant ingest quota: reserve the chunk's resident bytes before
	// the buffer accepts them; a rejected reservation is a 429 with a
	// drain-rate Retry-After, same contract as a full buffer.
	need := int64(len(frames)) * frameBytes(j.hdr.WindowN)
	if qerr := s.chargeIngest(j, need); qerr != nil {
		return j.ingest.Total(), qerr
	}
	// Latency of the accept path — buffer append plus (durable stores)
	// the spool write and WAL record that gate the acknowledgment.
	start := time.Now()
	defer func() { s.hist.ingest.Observe(time.Since(start)) }()
	total, err := j.ingest.Append(frames)
	if err != nil {
		s.refundIngest(j, need)
		if errors.Is(err, stream.ErrIngestFull) {
			// Honest backpressure: how long until a fold drains room,
			// from the job's own observed iteration cadence.
			err = &Backpressure{Err: err, RetryAfter: s.ingestRetryHint(j)}
		}
		return total, err
	}
	// Durability before acknowledgment: a chunk the producer sees
	// accepted must survive a crash, so the spool append + WAL record
	// happen before we return the new total. On a spool failure the
	// producer gets the error (no acknowledgment) — the frames are in
	// this process's ingest but have no durability, and a producer that
	// retries may duplicate them; the alternative, acking bytes the
	// disk never saw, silently breaks recovery.
	if s.store.Durable() {
		if serr := s.store.SpoolFrames(j.id, j.hdr.WindowN, frames); serr != nil {
			s.met.walErrors.Add(1)
			return total, fmt.Errorf("jobs: persisting frames: %w", serr)
		}
		if serr := s.store.LogFrames(j.id, total); serr != nil {
			s.met.walErrors.Add(1)
		}
	}
	s.met.frames.Add(int64(len(frames)))
	j.recordFrames(total)
	return total, nil
}

// CloseStream marks the end of a streaming job's acquisition: frames
// already buffered still fold, then the job runs its tail iterations
// and completes. Idempotent.
func (s *Service) CloseStream(id string) error {
	j, ok := s.Get(id)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if !j.streaming {
		return fmt.Errorf("%w: %s", ErrNotStreaming, id)
	}
	if j.State().Terminal() {
		return fmt.Errorf("%w: %s is %s", ErrFinished, id, j.State())
	}
	j.ingest.CloseEOF()
	if s.store.Durable() {
		// Best effort, after the in-memory close (CloseStream is
		// idempotent; a duplicate EOF chunk in the spool is harmless —
		// replay stops at the first).
		if err := s.store.SpoolStreamEOF(id); err != nil {
			s.met.walErrors.Add(1)
		} else if err := s.store.LogEOF(id); err != nil {
			s.met.walErrors.Add(1)
		}
	}
	j.recordEOF()
	return nil
}

// Get returns the job with the given ID.
func (s *Service) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// ListOptions selects a page of the job registry.
type ListOptions struct {
	// Status keeps only jobs in the named lifecycle state ("queued",
	// "running", "done", "failed", "cancelled"); empty keeps all.
	Status string
	// Cursor resumes a listing: the ID of the last job of the previous
	// page (its NextCursor). Empty starts from the oldest job.
	Cursor string
	// Limit bounds the page size; 0 or negative means no bound.
	Limit int
}

// ListPage returns one page of job summaries in deterministic
// submit-time order (the order Submit assigned IDs), optionally
// filtered by state. The second return is the cursor of the next page:
// empty when the listing is exhausted. An unknown cursor returns
// ErrBadCursor — cursors are job IDs handed out by a previous page, and
// jobs are never deleted, so a valid cursor cannot go stale (a cursor
// at the end of the registry yields an empty page, not an error).
func (s *Service) ListPage(opts ListOptions) ([]Info, string, error) {
	if opts.Status != "" {
		switch opts.Status {
		case Queued.String(), Running.String(), Done.String(), Failed.String(), Cancelled.String():
		default:
			return nil, "", fmt.Errorf("%w: unknown status %q", ErrInvalidParams, opts.Status)
		}
	}
	s.mu.Lock()
	start := 0
	if opts.Cursor != "" {
		if _, ok := s.jobs[opts.Cursor]; !ok {
			s.mu.Unlock()
			return nil, "", fmt.Errorf("%w: %q", ErrBadCursor, opts.Cursor)
		}
		for i, id := range s.order {
			if id == opts.Cursor {
				start = i + 1
				break
			}
		}
	}
	tail := make([]*Job, len(s.order)-start)
	for i, id := range s.order[start:] {
		tail[i] = s.jobs[id]
	}
	s.mu.Unlock()

	// Filter and bound outside the service lock: Info takes each job's
	// own lock, and states are read point-in-time (a job may leave the
	// filtered state between selection and serialization — the page is
	// a snapshot, not a transaction).
	page := make([]Info, 0, min(len(tail), max(opts.Limit, 0)))
	next := ""
	for _, j := range tail {
		info := j.Info(0)
		if opts.Status != "" && info.State != opts.Status {
			continue
		}
		if opts.Limit > 0 && len(page) == opts.Limit {
			// One more match exists beyond the bound: point the cursor
			// at the last delivered job so the next page continues
			// there instead of ending on a guaranteed-empty page.
			next = page[len(page)-1].ID
			break
		}
		page = append(page, info)
	}
	return page, next, nil
}

// List returns a summary of every job in submission order.
func (s *Service) List() []Info {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, len(ids))
	for i, id := range ids {
		jobs[i] = s.jobs[id]
	}
	s.mu.Unlock()
	out := make([]Info, len(jobs))
	for i, j := range jobs {
		out[i] = j.Info(0)
	}
	return out
}

// Cancel cancels a job: a queued job transitions to Cancelled
// immediately (and frees its queue slot); a running job is interrupted
// at its next iteration boundary (the worker writes a final checkpoint
// and completes the transition asynchronously). Cancelling a finished
// job returns ErrFinished.
func (s *Service) Cancel(id string) error {
	j, ok := s.Get(id)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	// Lock order: s.mu before j.mu (the queue entry and the state must
	// change together, or a worker could pop a job Cancel believes it
	// removed).
	s.mu.Lock()
	j.mu.Lock()
	switch j.state {
	case Queued:
		// Counter first: once the Cancelled state is observable, the
		// metric must already reflect it (the CI smoke relies on this).
		s.met.cancelled.Add(1)
		j.finishLocked(Cancelled, nil)
		s.q.Remove(j.id)
		j.mu.Unlock()
		s.releaseTenantLocked(j, 0)
		s.mu.Unlock()
		j.cancel()
		// No worker will ever see this job; the terminal record is
		// written here or nowhere.
		s.logFinish(j, Cancelled, nil)
		return nil
	case Running:
		// An explicit cancel beats a pending preemption: the job must
		// end Cancelled, not requeue behind the user's back.
		j.userCancel = true
		j.mu.Unlock()
		s.mu.Unlock()
		j.cancel()
		return nil
	default:
		j.mu.Unlock()
		s.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrFinished, id, j.State())
	}
}

// Resume submits a new job that warm-starts from the latest OBJCKv1
// checkpoint of a cancelled (or failed) job and runs the remaining
// iterations. The new job reports progress continuing from the
// checkpointed iteration count.
func (s *Service) Resume(id string) (*Job, error) {
	old, ok := s.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if old.streaming {
		// A streaming job's dataset lives in its (drained) ingest, not
		// a retained problem; replay the stream to resume instead.
		return nil, fmt.Errorf("%w: %s is a streaming job", ErrNotResumable, id)
	}
	old.mu.Lock()
	state := old.state
	path := old.checkpointPath
	completed := old.checkpointIter
	p := old.params
	prob := old.prob
	datasetPath := old.datasetPath
	old.mu.Unlock()
	if state != Cancelled && state != Failed {
		return nil, fmt.Errorf("%w: %s is %s (want cancelled or failed)", ErrNotResumable, id, state)
	}
	if prob == nil && datasetPath != "" {
		// The in-memory dataset was released (or never survived a
		// restart) but the store spooled it at submission — reload.
		var err error
		prob, err = s.store.LoadDataset(datasetPath)
		if err != nil {
			return nil, fmt.Errorf("jobs: reloading dataset for %s: %w", id, err)
		}
	}
	if path == "" || prob == nil {
		return nil, fmt.Errorf("%w: %s has no checkpoint", ErrNotResumable, id)
	}
	total := p.StartIter + p.Iterations
	if completed >= total {
		return nil, fmt.Errorf("%w: %s already completed %d of %d iterations", ErrNotResumable, id, completed, total)
	}
	slices, err := s.store.LoadObject(path)
	if err != nil {
		return nil, fmt.Errorf("jobs: reading checkpoint for %s: %w", id, err)
	}
	p.InitialObject = slices
	p.StartIter = completed
	p.Iterations = total - completed
	j, _, err := s.submit(prob, p, id, "")
	return j, err
}

// run executes one job on a pool worker. pop() registered the job in
// s.running; every exit either unregisters it (terminal) or hands it
// back to the queue (preemption requeue does both atomically).
func (s *Service) run(j *Job) {
	if !j.markRunning() {
		s.unregisterRunning(j)
		return // cancelled while queued
	}
	wait := j.queueWait()
	s.hist.queueWait.Observe(wait)
	s.hist.tenantQueueWait.Observe(wait, j.tenantLabel)
	s.logStart(j)
	s.met.running.Add(1)
	slices, err := s.execute(j)
	s.met.running.Add(-1)
	// Counters increment BEFORE the terminal state is published, so a
	// /metrics scrape never sees a done/cancelled/failed job that the
	// counters do not yet account for.
	switch {
	case err == nil:
		// Final checkpoint: the finished object is archived and
		// previewable like any snapshot.
		if ckErr := s.snapshot(j, j.completedIters(), slices); ckErr != nil {
			s.met.failed.Add(1)
			s.finishRun(j, Failed, ckErr)
			return
		}
		s.met.completed.Add(1)
		s.finishRun(j, Done, nil)
	case errors.Is(err, context.Canceled):
		// Preemption and cancellation share the engine's stop path —
		// the context fires, the engine returns its partial object at
		// the iteration boundary. A service-initiated preemption
		// requeues the job warm instead of finishing it.
		if s.requeuePreempted(j, slices) {
			return
		}
		// Cancelled at an iteration boundary: persist the partial
		// object so the job can resume exactly where it stopped.
		if slices != nil {
			if ckErr := s.snapshot(j, j.completedIters(), slices); ckErr != nil {
				s.met.failed.Add(1)
				s.finishRun(j, Failed, ckErr)
				return
			}
		}
		s.met.cancelled.Add(1)
		s.finishRun(j, Cancelled, nil)
	default:
		// Engines that fail with partial progress (e.g. a streaming
		// job exhausting stream.ErrIterationBudget on a stalled feed)
		// still hand back their slices — checkpoint them so the work
		// is salvageable. Best effort: the job is failing anyway.
		if slices != nil {
			s.snapshot(j, j.completedIters(), slices)
		}
		s.met.failed.Add(1)
		s.finishRun(j, Failed, err)
	}
}

// unregisterRunning drops a job from the running set.
func (s *Service) unregisterRunning(j *Job) {
	s.mu.Lock()
	delete(s.running, j.id)
	s.mu.Unlock()
}

// finishRun unregisters and finishes a pool-executed job.
func (s *Service) finishRun(j *Job, state State, err error) {
	s.unregisterRunning(j)
	s.finishJob(j, state, err)
}

// requeuePreempted puts a preempted job back in the queue instead of
// finishing it: the boundary object becomes a checkpoint AND the
// warm-start state, the remaining iterations are re-priced, and the
// job keeps its identity — same ID, same trace, preempted_count
// incremented, recovered_from naming the checkpoint it will restart
// from. A client watching the job sees queued→running→queued→running
// with no lost iterations; the final object is bit-identical to an
// uninterrupted run because the serial engines are deterministic and
// the checkpoint holds the exact boundary state.
//
// Declines (returns false, normal cancel path proceeds) when the stop
// was user-initiated, the service is draining, or the job already
// finished its iterations.
func (s *Service) requeuePreempted(j *Job, slices []*grid.Complex2D) bool {
	j.mu.Lock()
	wants := j.preempt && !j.userCancel
	j.mu.Unlock()
	if !wants {
		return false
	}
	completed := j.completedIters()
	if slices != nil {
		// The boundary checkpoint: durable anchor for crash recovery
		// and the exact warm-start state for the re-run. A write
		// failure falls through to the normal cancel path (which will
		// retry the checkpoint and fail visibly if the disk is gone).
		if ckErr := s.snapshot(j, completed, slices); ckErr != nil {
			return false
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	j.mu.Lock()
	total := j.params.StartIter + j.params.Iterations
	if j.state != Running || completed >= total {
		j.mu.Unlock()
		s.mu.Unlock()
		return false
	}
	if slices != nil {
		// j.snapshot is the clone s.snapshot just published; its
		// arrays are immutable from here on, safe to warm-start from.
		j.params.InitialObject = j.snapshot
		j.params.StartIter = completed
		j.params.Iterations = total - completed
		j.iter = completed
		j.recoveredFrom = fmt.Sprintf("checkpoint@%d", completed)
	}
	now := time.Now()
	if !j.lastBoundary.IsZero() {
		j.tr.Record("preempted", j.rootSpan, obs.RankCoordinator, completed,
			j.lastBoundary, now.Sub(j.lastBoundary))
	}
	j.lastBoundary = time.Time{}
	j.started = time.Time{}
	j.enqueuedAt = now
	j.preempt = false
	j.preemptedCount++
	j.state = Queued
	ctx, cancel := context.WithCancel(context.Background())
	j.ctx, j.cancel = ctx, cancel
	j.publishLocked(Event{Type: "state", State: Queued.String()})
	j.mu.Unlock()
	delete(s.running, j.id)
	s.q.Push(s.schedItemLocked(j))
	ts := s.tenantLocked(j.params.Tenant)
	ts.preempted++
	s.notify.Signal()
	s.mu.Unlock()

	s.met.preempted.Add(1)
	j.rec.Record(flight.Event{Kind: "preempted", Iter: completed,
		Detail: fmt.Sprintf("yielded to interactive work at iteration %d", completed)})
	s.log.Info("job preempted", "job_id", j.id, "request_id", j.RequestID(),
		"tenant", j.params.Tenant, "iter", completed)
	s.logPreempt(j)
	return true
}

func (j *Job) completedIters() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.iter
}

// execute dispatches to the selected engine. On cancellation it returns
// the engine's partial slices together with context.Canceled.
func (s *Service) execute(j *Job) ([]*grid.Complex2D, error) {
	if j.streaming {
		return s.executeStream(j)
	}
	if j.params.Grid {
		return s.executeGrid(j)
	}
	p := j.params
	prob := j.prob
	init := p.InitialObject
	if init == nil {
		init = phantom.Vacuum(prob.ImageBounds(), prob.Slices).Slices
	}
	onIter := func(iter int, cost float64) {
		s.observeIteration(j, j.recordIteration(p.StartIter+iter+1, cost))
		s.logIteration(j, p.StartIter+iter+1, cost)
		s.met.iterations.Add(1)
	}
	onSnap := func(iter int, slices []*grid.Complex2D) error {
		return s.snapshot(j, p.StartIter+iter+1, slices)
	}
	switch p.Algorithm {
	case "serial":
		j.beginIterations()
		r, err := solver.Reconstruct(prob, init, solver.Options{
			StepSize: p.StepSize, Iterations: p.Iterations, Mode: solver.Batch,
			OnIteration: onIter, Ctx: j.ctx,
			SnapshotEvery: p.CheckpointEvery, OnSnapshot: onSnap,
		})
		if r == nil {
			return nil, err
		}
		return r.Slices, err
	case "gd":
		mesh, err := tiling.NewMesh(prob.ImageBounds(), p.MeshRows, p.MeshCols,
			tiling.HaloForWindow(prob.WindowN))
		if err != nil {
			return nil, err
		}
		j.beginIterations()
		r, err := gradsync.Reconstruct(prob, init, gradsync.Options{
			Mesh: mesh, Mode: gradsync.ModeBatch,
			StepSize: p.StepSize, Iterations: p.Iterations,
			RoundsPerIteration: p.RoundsPerIteration,
			IntraWorkers:       p.IntraWorkers,
			Timeout:            s.cfg.Timeout,
			OnIteration:        onIter,
			OnRankStats: func(rank, iter int, computeNS, commNS int64) {
				s.recordRankStats(j, rank, p.StartIter+iter+1, computeNS, commNS)
			},
			Ctx:           j.ctx,
			SnapshotEvery: p.CheckpointEvery, OnSnapshot: onSnap,
		})
		if r == nil {
			return nil, err
		}
		return r.Slices, err
	case "hve":
		mesh, err := tiling.NewMesh(prob.ImageBounds(), p.MeshRows, p.MeshCols,
			tiling.HaloForWindow(prob.WindowN))
		if err != nil {
			return nil, err
		}
		j.beginIterations()
		r, err := halo.Reconstruct(prob, init, halo.Options{
			Mesh: mesh, HaloWidth: mesh.Halo, ExtraRows: 1,
			StepSize: p.StepSize, Iterations: p.Iterations,
			ExchangesPerIteration: p.RoundsPerIteration,
			Timeout:               s.cfg.Timeout,
			OnIteration:           onIter, Ctx: j.ctx,
			SnapshotEvery: p.CheckpointEvery, OnSnapshot: onSnap,
		})
		if r == nil {
			return nil, err
		}
		return r.Slices, err
	}
	return nil, fmt.Errorf("jobs: unknown algorithm %q", p.Algorithm)
}

// executeStream runs a Streaming job: the engine folds ingest
// arrivals at iteration boundaries and, once the stream closes, runs
// the tail over the complete set. Iteration, fold, snapshot and
// checkpoint plumbing is identical to the batch path, so previews,
// /metrics and SSE events behave the same for both job kinds.
func (s *Service) executeStream(j *Job) ([]*grid.Complex2D, error) {
	p := j.params
	j.beginIterations()
	res, err := stream.Run(j.hdr, j.ingest, stream.Options{
		Algorithm:          p.Algorithm,
		StepSize:           p.StepSize,
		TailIterations:     p.Iterations,
		FoldEvery:          p.FoldEvery,
		MaxIterations:      p.MaxIterations,
		MeshRows:           p.MeshRows,
		MeshCols:           p.MeshCols,
		RoundsPerIteration: p.RoundsPerIteration,
		IntraWorkers:       p.IntraWorkers,
		Timeout:            s.cfg.Timeout,
		Ctx:                j.ctx,
		OnIteration: func(iter int, cost float64) {
			s.observeIteration(j, j.recordIteration(iter+1, cost))
			s.logIteration(j, iter+1, cost)
			s.met.iterations.Add(1)
		},
		OnFold: func(_, _, active int) {
			j.recordFold(active)
			s.met.folds.Add(1)
		},
		OnFoldTimed: func(iter, _, _ int, start time.Time, d time.Duration) {
			j.tr.Record("fold", j.rootSpan, obs.RankCoordinator, iter, start, d)
		},
		SnapshotEvery: p.CheckpointEvery,
		OnSnapshot: func(iter int, slices []*grid.Complex2D) error {
			return s.snapshot(j, iter+1, slices)
		},
	})
	if res == nil {
		return nil, err
	}
	return res.Slices, err
}

// Shutdown is the graceful stop: it closes the intake (Submit returns
// ErrClosed), cancels every queued and running job — each running job
// stops at its next iteration boundary and flushes a final OBJCKv1
// checkpoint, so a restarted server can resume the work — and waits
// for the workers to drain. Safe to call more than once and
// concurrently with Close.
func (s *Service) Shutdown() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.notify.Broadcast()
	}
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	for _, id := range ids {
		// Cancel is a no-op beyond ErrFinished for jobs that already
		// completed; running streaming jobs wake from their ingest
		// wait through the job context.
		s.Cancel(id)
	}
	s.wg.Wait()
	if s.grid != nil {
		s.grid.Close()
	}
	// Flush the WAL tail: a SIGTERM drain must leave nothing unsynced,
	// so the next start replays the registry with zero recovery work.
	if err := s.store.Sync(); err != nil {
		s.met.walErrors.Add(1)
	}
}

// snapshot publishes a preview copy of the object and writes the
// job's OBJCKv1 checkpoint atomically (tmp + sync + rename), then logs
// the checkpoint to the store — the durable anchor recovery warm-starts
// from.
//
// Each checkpoint gets its own file (job-0001-i8.objck): a checkpoint
// record in the log always names a file whose content is exactly the
// object at that iteration, no matter where a crash lands. Overwriting
// one shared path — the pre-observability behavior — had a window
// between the rename and the log append where the file was already
// ahead of the last record, and recovery warm-started from mislabeled
// bytes. The superseded file is removed only after the new record is
// in the log, so the log never points at a missing file.
func (s *Service) snapshot(j *Job, completed int, slices []*grid.Complex2D) error {
	cp := cloneSlices(slices)
	j.setSnapshot(cp, completed)
	path := filepath.Join(s.cfg.SpoolDir, fmt.Sprintf("%s-i%d.objck", j.id, completed))
	start := time.Now()
	err := s.store.WriteCheckpoint(path, cp)
	d := time.Since(start)
	s.hist.checkpoint.Observe(d)
	j.tr.Record("checkpoint", j.rootSpan, obs.RankCoordinator, completed, start, d)
	if err != nil {
		return err
	}
	logged := s.logCheckpoint(j, path, completed)
	s.met.checkpoints.Add(1)
	if prev := j.setCheckpoint(path, completed); logged && prev != "" && prev != path {
		s.store.RemoveObject(prev) // best effort; a stray file is harmless
	}
	return nil
}

// QueueDepth returns the number of jobs waiting for a worker.
func (s *Service) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q.Len()
}

// Trace returns a job's summary together with its recorded span
// timeline (point-in-time copy; a running job keeps appending). Jobs
// restored as terminal history after a restart have no spans — the
// timeline died with the process that recorded it.
func (s *Service) Trace(id string) (Info, []obs.Span, error) {
	j, ok := s.Get(id)
	if !ok {
		return Info{}, nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return j.Info(0), j.Trace().Spans(), nil
}
