// Package jobs is the reconstruction job service: a bounded FIFO queue
// feeding a worker-pool scheduler that shards concurrent reconstructions
// across CPUs, with per-job lifecycle tracking
// (Queued→Running→Done/Failed/Cancelled), periodic OBJCKv1 checkpoints,
// live object snapshots for previews, context-based cancellation at
// iteration boundaries, and warm-start resume from the last checkpoint.
//
// The service is the operational layer the paper's pitch implies:
// reconstruction fast enough to steer a running experiment needs jobs
// that can be queued while the microscope keeps scanning, watched as
// they converge, cancelled when the operator changes plans, and resumed
// without recomputing — on a machine shared between samples.
//
// cmd/ptychoserve exposes the service over HTTP (internal/jobs/httpapi);
// the package itself is transport-agnostic and safe for concurrent use.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ptychopath/internal/dataio"
	"ptychopath/internal/grid"
	"ptychopath/internal/jobs/sched"
	"ptychopath/internal/obs"
	"ptychopath/internal/obs/flight"
	"ptychopath/internal/solver"
	"ptychopath/internal/stream"
)

// State is a job's lifecycle phase.
type State int

const (
	// Queued means the job is waiting in the FIFO for a worker.
	Queued State = iota
	// Running means a worker is reconstructing.
	Running
	// Done means the reconstruction completed all iterations.
	Done
	// Failed means the reconstruction returned an error.
	Failed
	// Cancelled means the job was cancelled (while queued, or mid-run
	// at an iteration boundary with a final checkpoint written).
	Cancelled
)

// String implements fmt.Stringer with the lowercase names the HTTP API
// serves.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Cancelled }

// Params configures one reconstruction job.
type Params struct {
	// Algorithm is "serial", "gd" (gradient decomposition) or "hve"
	// (halo voxel exchange). Default "serial".
	Algorithm string
	// Iterations is the number of iterations to run. Default 20.
	Iterations int
	// StepSize is the gradient step. Default 0.01.
	StepSize float64
	// MeshRows and MeshCols shape the tile mesh (parallel algorithms).
	// Default 2x2.
	MeshRows, MeshCols int
	// RoundsPerIteration is the communication frequency of the parallel
	// algorithms. Default 1.
	RoundsPerIteration int
	// IntraWorkers is the per-rank goroutine count for gd batch mode.
	IntraWorkers int
	// CheckpointEvery is the iteration period of OBJCKv1 checkpoints and
	// preview snapshots; 0 selects the service default.
	CheckpointEvery int
	// InitialObject warm-starts the run (resume path); nil means vacuum.
	InitialObject []*grid.Complex2D
	// StartIter offsets progress reporting for resumed jobs: a job that
	// resumes a run cancelled after k iterations carries StartIter k, so
	// Iter counts continue where the original left off.
	StartIter int
	// Grid runs the parallel engine across registered grid-worker
	// processes (one per mesh tile) instead of in-process goroutines.
	// Requires a gd or hve algorithm and a service started with a grid
	// coordinator (Config.GridAddr); see grid.go.
	Grid bool

	// The fields below apply to Streaming jobs only (SubmitStreaming).
	// For a streaming job, Iterations is the TAIL: how many iterations
	// run over the complete set after the stream closes.

	// FoldEvery is the number of iterations between ingest folds while
	// the stream is open. Default 1.
	FoldEvery int
	// MaxIterations, when positive, bounds iterations run before the
	// stream closes (a stalled feed fails the job instead of spinning
	// forever). 0 means unlimited.
	MaxIterations int
	// IngestCapacity bounds the job's frame buffer; Append beyond it
	// returns stream.ErrIngestFull (HTTP 429). 0 selects the service
	// default.
	IngestCapacity int

	// RequestID is the trace context of the submission: the
	// X-Request-ID the HTTP layer generated or propagated. It is
	// assigned server-side (never decoded from a client's params
	// JSON), tags the job's spans and log lines, and travels to grid
	// workers in the session SETUP.
	RequestID string

	// Tenant is the fair-share accounting principal of the submission
	// — the sanitized X-API-Key at the HTTP layer. Like RequestID it
	// is assigned server-side, never decoded from client params JSON.
	// Empty means the "anonymous" tenant.
	Tenant string
	// Priority is the scheduling class: "bulk" (default) or
	// "interactive". Under the wfq policy an interactive job
	// dispatches before any bulk job and may preempt a running bulk
	// job at its next iteration boundary.
	Priority string
}

func (p *Params) setDefaults(cfg Config) {
	if p.Algorithm == "" {
		p.Algorithm = "serial"
	}
	if p.Iterations == 0 {
		p.Iterations = 20
	}
	if p.StepSize == 0 {
		p.StepSize = 0.01
	}
	if p.MeshRows == 0 {
		p.MeshRows = 2
	}
	if p.MeshCols == 0 {
		p.MeshCols = 2
	}
	if p.RoundsPerIteration == 0 {
		p.RoundsPerIteration = 1
	}
	if p.CheckpointEvery == 0 {
		p.CheckpointEvery = cfg.CheckpointEvery
	}
	if p.Tenant == "" {
		p.Tenant = AnonymousTenant
	}
	if p.Priority == "" {
		p.Priority = sched.Bulk.String()
	}
}

func (p *Params) validate(prob *solver.Problem) error {
	switch p.Algorithm {
	case "serial", "gd", "hve":
	default:
		return fmt.Errorf("%w: unknown algorithm %q (want serial, gd, hve)", ErrInvalidParams, p.Algorithm)
	}
	if p.Grid && p.Algorithm == "serial" {
		return fmt.Errorf("%w: grid execution requires a parallel algorithm (gd or hve)", ErrInvalidParams)
	}
	if err := p.validateCommon(); err != nil {
		return err
	}
	if p.InitialObject != nil {
		if len(p.InitialObject) != prob.Slices {
			return fmt.Errorf("%w: initial object has %d slices, dataset has %d",
				ErrInvalidParams, len(p.InitialObject), prob.Slices)
		}
		if !p.InitialObject[0].Bounds.Eq(prob.ImageBounds()) {
			return fmt.Errorf("%w: initial object bounds %v != dataset image %v",
				ErrInvalidParams, p.InitialObject[0].Bounds, prob.ImageBounds())
		}
	}
	return nil
}

func (p *Params) validateCommon() error {
	if p.Iterations <= 0 {
		return fmt.Errorf("%w: iterations must be positive, got %d", ErrInvalidParams, p.Iterations)
	}
	if p.StepSize <= 0 {
		return fmt.Errorf("%w: step size must be positive, got %g", ErrInvalidParams, p.StepSize)
	}
	if p.MeshRows <= 0 || p.MeshCols <= 0 {
		return fmt.Errorf("%w: invalid mesh %dx%d", ErrInvalidParams, p.MeshRows, p.MeshCols)
	}
	if p.CheckpointEvery < 0 {
		return fmt.Errorf("%w: checkpoint period must be non-negative, got %d", ErrInvalidParams, p.CheckpointEvery)
	}
	if _, ok := sched.ParseClass(p.Priority); !ok {
		return fmt.Errorf("%w: unknown priority %q (want bulk or interactive)", ErrInvalidParams, p.Priority)
	}
	return nil
}

// validateStreaming checks the parameters of a Streaming job against
// its stream header.
func (p *Params) validateStreaming(hdr *dataio.StreamHeader) error {
	switch p.Algorithm {
	case "serial", "gd":
	default:
		return fmt.Errorf("%w: unknown streaming algorithm %q (want serial or gd; hve needs a fixed location set)",
			ErrInvalidParams, p.Algorithm)
	}
	if err := p.validateCommon(); err != nil {
		return err
	}
	if p.FoldEvery < 0 {
		return fmt.Errorf("%w: fold period must be non-negative, got %d", ErrInvalidParams, p.FoldEvery)
	}
	if p.MaxIterations < 0 {
		return fmt.Errorf("%w: max iterations must be non-negative, got %d", ErrInvalidParams, p.MaxIterations)
	}
	if p.IngestCapacity < 0 {
		return fmt.Errorf("%w: ingest capacity must be non-negative, got %d", ErrInvalidParams, p.IngestCapacity)
	}
	if p.InitialObject != nil {
		return fmt.Errorf("%w: streaming jobs cannot warm-start (frames define the dataset)", ErrInvalidParams)
	}
	if p.Grid {
		return fmt.Errorf("%w: streaming jobs run on the local pool (the grid reconstructs fixed datasets)", ErrInvalidParams)
	}
	if err := hdr.Validate(); err != nil {
		return fmt.Errorf("%w: invalid stream header: %v", ErrInvalidParams, err)
	}
	return nil
}

// Errors returned by the service.
var (
	// ErrInvalidParams is returned by Submit for malformed job
	// parameters or an inconsistent problem — client error, not service
	// failure (the HTTP layer maps it to 400).
	ErrInvalidParams = errors.New("jobs: invalid job")
	// ErrQueueFull is returned by Submit when the bounded FIFO is full.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrNotFound is returned for unknown job IDs.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrFinished is returned by Cancel on a job already in a terminal
	// state.
	ErrFinished = errors.New("jobs: job already finished")
	// ErrNotResumable is returned by Resume when the job is not in a
	// terminal non-Done state with a checkpoint and iterations left.
	ErrNotResumable = errors.New("jobs: job not resumable")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("jobs: service closed")
	// ErrNotStreaming is returned by AppendFrames and CloseStream on a
	// batch job — only Streaming jobs accept frames.
	ErrNotStreaming = errors.New("jobs: not a streaming job")
	// ErrBadCursor is returned by ListPage for a cursor that no page
	// ever handed out — client error, same class as ErrInvalidParams.
	ErrBadCursor = errors.New("jobs: invalid list cursor")
	// ErrQuotaExceeded is returned by Submit and AppendFrames when the
	// submission's tenant is at its concurrent-job cap or ingest-byte
	// quota — same retry contract as ErrQueueFull (HTTP 429), scoped
	// to one tenant instead of the whole service.
	ErrQuotaExceeded = errors.New("jobs: tenant quota exceeded")
)

// AnonymousTenant is the accounting principal of submissions that
// carry no API key.
const AnonymousTenant = "anonymous"

// Job is one reconstruction tracked by the service. All accessors are
// safe for concurrent use.
type Job struct {
	id     string
	prob   *solver.Problem
	params Params
	ctx    context.Context
	cancel context.CancelFunc

	// Streaming-job state (nil/false for batch jobs). The ingest is
	// the bounded frame buffer producers append to; hdr is the
	// PTYCHS opening the job was created from.
	streaming bool
	hdr       *dataio.StreamHeader
	ingest    *stream.Ingest

	// Span trace: tr collects the job's timeline (it has its own
	// lock), rootSpan is the all-enclosing "job" span, and
	// lastBoundary (under mu) is where the next coordinator phase
	// span starts — phases tile [created, finished] exactly, so the
	// trace always reconciles with the job's wall clock.
	tr       *obs.Trace
	rootSpan int

	// Analysis-layer state (see analysis.go). rec is the per-job flight
	// recorder (attached with the trace, nil-safe). pred, flopsPerIter,
	// predRanks and tracker are armed before the job is enqueued and
	// immutable afterwards; the post-run verdicts live under mu below.
	rec          *flight.Recorder
	pred         *Prediction
	flopsPerIter float64
	predRanks    int
	tracker      *rankTracker

	// Scheduler bookkeeping guarded by the SERVICE mutex, not j.mu:
	// these fields change only inside the service's queue/tenant
	// critical sections (enqueue, preemption requeue, terminal
	// release), where s.mu is always held.
	idemKey        string // Idempotency-Key of the original submission, for WAL re-logs
	seq            uint64 // scheduler sequence number (submission order tie-break)
	tenantLabel    string // bounded-cardinality metrics label for the tenant
	tenantReleased bool   // tenant accounting released (terminal reached once)
	ingestedBytes  int64  // live ingest bytes charged against the tenant quota

	mu             sync.Mutex
	lastBoundary   time.Time
	state          State
	enqueuedAt     time.Time // last entry into the queue (created, or the preemption requeue instant)
	preempt        bool      // service asked the job to yield at its next iteration boundary
	userCancel     bool      // Cancel was called while running: terminal beats requeue
	preemptedCount int       // times the job was preempted and requeued
	lastIterDur    time.Duration
	iter           int // completed iterations, including StartIter
	cost           float64
	costHistory    []float64
	snapshot       []*grid.Complex2D // latest object copy; arrays immutable once published
	snapshotIter   int
	checkpointPath string
	checkpointIter int
	resumedFrom    string
	recoveredFrom  string // how crash recovery revived this job ("checkpoint@k", "scratch", "stream")
	datasetPath    string // durable spool of the dataset; lets Resume reload a released problem
	recFrames      int    // frame count restored from the WAL for a terminal streaming job
	recEOF         bool   // EOF flag restored from the WAL (ingest is gone for terminal jobs)
	actualSeconds  float64 // wall-clock runtime measured by analyze
	predErrRatio   float64 // actual / predicted runtime
	imbalance      float64 // mean per-iteration max/mean rank compute ratio
	stragglers     []int   // ranks persistently slower than the mean
	err            error
	created        time.Time
	started        time.Time
	finished       time.Time
	folds          int // ingest folds performed (streaming)
	activeFrames   int // frames in the active set (streaming)
	subs           map[int]chan Event
	nextSub        int
}

// Streaming reports whether the job reconstructs a live stream.
func (j *Job) Streaming() bool { return j.streaming }

// WindowN returns the probe-window edge of a streaming job's frames
// (0 for batch jobs) — the HTTP layer needs it to decode chunk bodies.
func (j *Job) WindowN() int {
	if j.hdr == nil {
		return 0
	}
	return j.hdr.WindowN
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Trace returns the job's span trace (nil-safe to use either way) and
// RequestID its trace context.
func (j *Job) Trace() *obs.Trace { return j.tr }

// RequestID returns the X-Request-ID the job was submitted under (""
// for jobs submitted without one, e.g. direct API use in tests).
func (j *Job) RequestID() string { return j.params.RequestID }

// Problem returns the dataset the job reconstructs; nil once the job
// is Done (the dataset is released — see finish).
func (j *Job) Problem() *solver.Problem {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.prob
}

// Params returns a copy of the job's parameters with InitialObject
// excluded (the warm-start object is live engine state, not
// configuration).
func (j *Job) Params() Params {
	j.mu.Lock()
	defer j.mu.Unlock()
	p := j.params
	p.InitialObject = nil
	return p
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Snapshot returns the latest object snapshot (nil before the first
// checkpoint) and the completed-iteration count it corresponds to. The
// returned slices are never mutated afterwards — safe to read without
// copying.
func (j *Job) Snapshot() ([]*grid.Complex2D, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshot, j.snapshotIter
}

// CheckpointPath returns the latest OBJCKv1 checkpoint file ("" before
// the first) and the completed-iteration count it holds.
func (j *Job) CheckpointPath() (string, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.checkpointPath, j.checkpointIter
}

// Info is a point-in-time summary of a job, JSON-ready for the HTTP
// API.
type Info struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Algorithm string `json:"algorithm"`
	// Grid marks a job running on the distributed worker grid.
	Grid bool `json:"grid,omitempty"`
	Iter int  `json:"iter"`
	// TotalIters is the planned iteration count of a batch job. For a
	// streaming job it is 0 while the stream is open (the total is
	// unknowable until EOF).
	TotalIters     int       `json:"total_iters,omitempty"`
	Cost           float64   `json:"cost"`
	CostHistory    []float64 `json:"cost_history,omitempty"`
	CheckpointIter int       `json:"checkpoint_iter,omitempty"`
	Checkpoint     string    `json:"checkpoint,omitempty"`
	ResumedFrom    string    `json:"resumed_from,omitempty"`
	// RecoveredFrom marks a job revived by crash recovery and says
	// where its work restarted: "checkpoint@k" (warm start from the
	// OBJCKv1 checkpoint at iteration k), "scratch" (no checkpoint had
	// been written), or "stream" (refolded from the spooled frame
	// journal).
	RecoveredFrom string `json:"recovered_from,omitempty"`
	// RequestID is the job's trace context (the X-Request-ID of its
	// submission); empty when it was submitted without one.
	RequestID string `json:"request_id,omitempty"`
	// Tenant is the fair-share principal the job is accounted to and
	// Priority its scheduling class ("bulk" or "interactive").
	Tenant   string `json:"tenant,omitempty"`
	Priority string `json:"priority,omitempty"`
	// PreemptedCount is how many times an interactive job displaced
	// this one at an iteration boundary; each preemption is lossless
	// (the job requeues warm from the boundary checkpoint — see
	// RecoveredFrom for the checkpoint it restarted from).
	PreemptedCount int       `json:"preempted_count,omitempty"`
	Error          string    `json:"error,omitempty"`
	Created        time.Time `json:"created"`
	Started        time.Time `json:"started,omitzero"`
	Finished       time.Time `json:"finished,omitzero"`

	// Analysis (see analysis.go). Prediction is the perfmodel runtime
	// estimate made at submission (nil for streaming jobs and empty
	// datasets); ActualSeconds and PredictionErrorRatio land when the
	// job finishes. StragglerRanks lists ranks persistently slower than
	// the per-iteration mean; ImbalanceRatio is the mean max/mean
	// per-rank compute ratio across complete iteration rows.
	Prediction           *Prediction `json:"prediction,omitempty"`
	ActualSeconds        float64     `json:"actual_seconds,omitempty"`
	PredictionErrorRatio float64     `json:"prediction_error_ratio,omitempty"`
	StragglerRanks       []int       `json:"straggler_ranks,omitempty"`
	ImbalanceRatio       float64     `json:"imbalance_ratio,omitempty"`

	// Streaming progress (omitted for batch jobs): frames accepted by
	// the ingest, frames folded into the active set, fold (epoch)
	// count, and whether the producer has closed the stream.
	Streaming    bool `json:"streaming,omitempty"`
	Frames       int  `json:"frames,omitempty"`
	ActiveFrames int  `json:"active_frames,omitempty"`
	Folds        int  `json:"folds,omitempty"`
	EOF          bool `json:"eof,omitempty"`
}

// Info snapshots the job. historyTail bounds the cost history included:
// 0 omits it (list endpoints), n > 0 includes the last n entries, and a
// negative value includes everything. The bound matters operationally —
// history grows by one entry per iteration without limit, and a polling
// GUI should not copy (under the job lock) and ship megabytes per poll
// of a long run.
func (j *Job) Info(historyTail int) Info {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := Info{
		ID:             j.id,
		State:          j.state.String(),
		Algorithm:      j.params.Algorithm,
		Grid:           j.params.Grid,
		Iter:           j.iter,
		Cost:           j.cost,
		CheckpointIter: j.checkpointIter,
		Checkpoint:     j.checkpointPath,
		ResumedFrom:    j.resumedFrom,
		RecoveredFrom:  j.recoveredFrom,
		RequestID:      j.params.RequestID,
		Tenant:         j.params.Tenant,
		Priority:       j.params.Priority,
		PreemptedCount: j.preemptedCount,
		Created:        j.created,
		Started:        j.started,
		Finished:       j.finished,
		Prediction:     j.pred,
		ActualSeconds:  j.actualSeconds,
		PredictionErrorRatio: j.predErrRatio,
		ImbalanceRatio: j.imbalance,
	}
	if len(j.stragglers) > 0 {
		info.StragglerRanks = append([]int(nil), j.stragglers...)
	}
	if j.streaming {
		info.Streaming = true
		if j.ingest != nil {
			info.Frames = j.ingest.Total()
			info.EOF = j.ingest.EOF()
		} else {
			// Terminal job restored from the WAL: its ingest is gone,
			// the log remembers what it accepted.
			info.Frames = j.recFrames
			info.EOF = j.recEOF
		}
		info.ActiveFrames = j.activeFrames
		info.Folds = j.folds
	} else {
		info.TotalIters = j.params.StartIter + j.params.Iterations
	}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	hist := j.costHistory
	if historyTail >= 0 && len(hist) > historyTail {
		hist = hist[len(hist)-historyTail:]
	}
	if len(hist) > 0 {
		info.CostHistory = append([]float64(nil), hist...)
	}
	return info
}

// markRunning transitions Queued→Running; false means the job was
// cancelled while still queued and must be skipped. The wait in the
// queue becomes the trace's queue-wait span — measured from the LAST
// enqueue (submission, or the preemption requeue), so a preempted
// job's second wait is not double-counted from its creation.
func (j *Job) markRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != Queued {
		return false
	}
	j.state = Running
	j.started = time.Now()
	j.lastBoundary = j.started
	from := j.enqueuedAt
	if from.IsZero() {
		from = j.created
	}
	j.tr.Record("queue-wait", j.rootSpan, obs.RankCoordinator, obs.IterNone,
		from, j.started.Sub(from))
	j.publishLocked(Event{Type: "state", State: Running.String()})
	return true
}

// queueWait returns how long the job sat in the queue before its
// latest start (0 before it started).
func (j *Job) queueWait() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.started.IsZero() {
		return 0
	}
	from := j.enqueuedAt
	if from.IsZero() {
		from = j.created
	}
	return j.started.Sub(from)
}

// beginIterations closes the setup phase — everything between
// Queued→Running and the engine's first iteration: dataset reload,
// mesh construction, grid session encode/dispatch. The next boundary
// span starts here.
func (j *Job) beginIterations() {
	j.mu.Lock()
	defer j.mu.Unlock()
	now := time.Now()
	if !j.lastBoundary.IsZero() {
		j.tr.Record("setup", j.rootSpan, obs.RankCoordinator, obs.IterNone,
			j.lastBoundary, now.Sub(j.lastBoundary))
	}
	j.lastBoundary = now
}

// recordIteration publishes progress from the engine's OnIteration and
// records the iteration's coordinator span, returning its duration
// (0 when no boundary was established) so the caller can feed the
// iteration-latency histogram without re-deriving it.
func (j *Job) recordIteration(completed int, cost float64) time.Duration {
	j.mu.Lock()
	j.iter = completed
	j.cost = cost
	j.costHistory = append(j.costHistory, cost)
	var d time.Duration
	now := time.Now()
	if !j.lastBoundary.IsZero() {
		d = now.Sub(j.lastBoundary)
		j.tr.Record("iteration", j.rootSpan, obs.RankCoordinator, completed, j.lastBoundary, d)
		j.lastIterDur = d
	}
	j.lastBoundary = now
	j.publishLocked(Event{Type: "iteration", Iter: completed, Cost: cost})
	j.mu.Unlock()
	return d
}

// recordRankTiming lands one worker rank's per-iteration compute/comm
// split in the job timeline. Only durations travel over the wire —
// worker clocks are never compared to the coordinator's — so the two
// spans are anchored backwards from the arrival time: comm ends now,
// compute precedes it.
func (j *Job) recordRankTiming(rank, iter int, computeNS, commNS int64) {
	end := time.Now()
	commStart := end.Add(-time.Duration(commNS))
	j.tr.Record("compute", j.rootSpan, rank, iter,
		commStart.Add(-time.Duration(computeNS)), time.Duration(computeNS))
	j.tr.Record("comm", j.rootSpan, rank, iter, commStart, time.Duration(commNS))
}

// recordFold publishes streaming-fold progress from the engine's
// OnFold.
func (j *Job) recordFold(active int) {
	j.mu.Lock()
	j.folds++
	j.activeFrames = active
	j.publishLocked(Event{Type: "fold", Frames: active})
	j.mu.Unlock()
}

// recordFrames publishes an ingest acceptance.
func (j *Job) recordFrames(total int) {
	j.mu.Lock()
	j.publishLocked(Event{Type: "frames", Frames: total})
	j.mu.Unlock()
}

// recordEOF publishes the producer closing the stream.
func (j *Job) recordEOF() {
	j.mu.Lock()
	j.publishLocked(Event{Type: "eof"})
	j.mu.Unlock()
}

// setSnapshot publishes a fresh object copy for previews.
func (j *Job) setSnapshot(slices []*grid.Complex2D, completed int) {
	j.mu.Lock()
	j.snapshot = slices
	j.snapshotIter = completed
	j.publishLocked(Event{Type: "snapshot", Iter: completed})
	j.mu.Unlock()
}

// setCheckpoint records a durable OBJCKv1 file and returns the path it
// supersedes ("" for the first checkpoint).
func (j *Job) setCheckpoint(path string, completed int) string {
	j.mu.Lock()
	prev := j.checkpointPath
	j.checkpointPath = path
	j.checkpointIter = completed
	j.mu.Unlock()
	j.rec.Record(flight.Event{Kind: "checkpoint", Iter: completed, Detail: path})
	return prev
}

// finish transitions to a terminal state and releases memory the
// terminal job no longer needs: the warm-start object always, and the
// full dataset once the job can never be resumed (Done, or terminal
// without a checkpoint). The latest snapshot stays for previews; the
// OBJCKv1 checkpoint file is the durable artifact. Without this a
// long-running service would retain every submitted dataset forever.
func (j *Job) finish(state State, err error) {
	j.mu.Lock()
	j.finishLocked(state, err)
	j.mu.Unlock()
}

func (j *Job) finishLocked(state State, err error) {
	j.state = state
	j.err = err
	j.finished = time.Now()
	if !j.lastBoundary.IsZero() {
		// Final coordinator phase: stitch/assembly and the terminal
		// checkpoint after the last iteration boundary. Together with
		// queue-wait, setup and the iteration spans this tiles
		// [created, finished] completely.
		j.tr.Record("finalize", j.rootSpan, obs.RankCoordinator, obs.IterNone,
			j.lastBoundary, j.finished.Sub(j.lastBoundary))
		j.lastBoundary = time.Time{}
	}
	j.tr.EndAt(j.rootSpan, j.finished)
	j.params.InitialObject = nil
	if state == Done || j.checkpointPath == "" {
		j.prob = nil
	}
	if err != nil {
		j.rec.Record(flight.Event{Kind: "error", State: state.String(), Detail: err.Error()})
	}
	j.publishLocked(Event{Type: "state", State: state.String()})
	j.closeSubsLocked()
}

func cloneSlices(slices []*grid.Complex2D) []*grid.Complex2D {
	out := make([]*grid.Complex2D, len(slices))
	for i, s := range slices {
		out[i] = s.Clone()
	}
	return out
}
