package jobs

// The analysis layer: everything that turns the service's raw telemetry
// (spans, per-rank stats, WAL counters) into operational answers.
//
//   - predicted-vs-actual: at submission the job's geometry is fed into
//     internal/perfmodel — the paper's Table II/III runtime predictor —
//     seeded either with the Summit calibration or, once the service has
//     observed real iterations, with a live throughput EWMA. The
//     prediction rides the job wire object and the trace; at completion
//     the actual/predicted ratio lands in a histogram and the running
//     error summary, closing the self-calibration loop.
//   - straggler detection: per-iteration per-rank compute/comm deltas
//     (gradsync OnRankStats, already on the wire for grid jobs) fold
//     into a per-job imbalance tracker; ranks that are persistently
//     slow are flagged on the wire object, annotated in the trace, and
//     every completed per-iteration row feeds the imbalance histogram.
//   - fleet status: Service.Status rolls queue depth, pool and grid
//     occupancy, WAL counters and the prediction-error summary into one
//     GET /v1/status document.

import (
	"fmt"
	"math"
	"sync"
	"time"

	"ptychopath/internal/cluster"
	"ptychopath/internal/obs"
	"ptychopath/internal/obs/flight"
	"ptychopath/internal/perfmodel"
	"ptychopath/internal/solver"
	"ptychopath/internal/tiling"
)

// Prediction is the perfmodel-derived runtime estimate published on the
// job wire object at submission.
type Prediction struct {
	// Seconds is the predicted wall-clock runtime of the job's
	// iterations; Compute/Wait/CommSeconds split it per Fig 7b.
	Seconds        float64 `json:"seconds"`
	ComputeSeconds float64 `json:"compute_seconds"`
	WaitSeconds    float64 `json:"wait_seconds"`
	CommSeconds    float64 `json:"comm_seconds"`
	// Source is "model" (paper's Summit calibration, no local data yet)
	// or "calibrated" (live throughput EWMA from observed iterations).
	Source string `json:"source"`
	// Ranks is the decomposition width the prediction assumed.
	Ranks int `json:"ranks"`
}

// throughputAlpha is the EWMA smoothing factor for the live per-rank
// throughput estimate: heavy enough smoothing to ride out checkpoint
// iterations, light enough to track a real regime change within a job.
const throughputAlpha = 0.2

// throughputEstimate is the live calibration state: an EWMA of the
// effective per-rank flop/s observed at iteration boundaries, persisted
// across jobs for the service's lifetime.
type throughputEstimate struct {
	mu    sync.Mutex
	flops float64
	n     int // iterations folded in
}

func (t *throughputEstimate) observe(flops float64) {
	if flops <= 0 || math.IsInf(flops, 0) || math.IsNaN(flops) {
		return
	}
	t.mu.Lock()
	if t.n == 0 {
		t.flops = flops
	} else {
		t.flops += throughputAlpha * (flops - t.flops)
	}
	t.n++
	t.mu.Unlock()
}

// value returns the current estimate and how many iterations back it.
func (t *throughputEstimate) value() (float64, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flops, t.n
}

// predStats summarizes prediction accuracy across finished jobs for
// GET /v1/status.
type predStats struct {
	mu        sync.Mutex
	jobs      int
	sumAbsErr float64 // sum of |ratio - 1|
	last      float64
}

func (p *predStats) observe(ratio float64) {
	p.mu.Lock()
	p.jobs++
	p.sumAbsErr += math.Abs(ratio - 1)
	p.last = ratio
	p.mu.Unlock()
}

func (p *predStats) summary() (jobs int, meanAbsErr, last float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.jobs > 0 {
		meanAbsErr = p.sumAbsErr / float64(p.jobs)
	}
	return p.jobs, meanAbsErr, p.last
}

// predict derives a runtime estimate for a batch submission from its
// geometry. The job's probe window, scan and slice stack become a
// perfmodel.Config dataset; the calibration is the paper's Summit fit
// until the service has observed real iterations, after which the live
// throughput EWMA replaces it (pixel sizes are normalized to 1 pm/px —
// the predictor only ever sees halo widths in the same unit). Returns
// the prediction plus the per-iteration flop count and rank width the
// calibration loop needs; nil for empty or streaming datasets.
func (s *Service) predict(prob *solver.Problem, p Params) (*Prediction, float64, int) {
	if prob == nil || prob.Pattern == nil || len(prob.Pattern.Locations) == 0 {
		return nil, 0, 0
	}
	locs := len(prob.Pattern.Locations)
	b := prob.ImageBounds()
	scanRows, scanCols := cluster.MostSquareGrid(locs)
	spec := cluster.DatasetSpec{
		Name:      "live",
		DetectorN: prob.WindowN,
		Locations: locs,
		ScanCols:  scanCols, ScanRows: scanRows,
		ImageW: b.W(), ImageH: b.H(),
		Slices:      prob.Slices,
		PixelSizePM: 1,
	}
	cal := cluster.DefaultCalibration()
	source := "model"
	if f, n := s.throughput.value(); n > 0 {
		// Live calibration: the EWMA already bakes in cache behavior and
		// per-iteration overhead of THIS machine, so the Summit-shaped
		// correction terms are zeroed rather than applied twice.
		cal.BaseFlops = f
		cal.CacheCurve = nil
		cal.IterOverheadSec = 0
		source = "calibrated"
	}
	ranks := 1
	if p.Algorithm != "serial" {
		ranks = p.MeshRows * p.MeshCols
	}
	halo := float64(tiling.HaloForWindow(prob.WindowN))
	cfg := perfmodel.Config{
		Machine:       cluster.Summit(),
		Cal:           cal,
		Spec:          spec,
		Iterations:    p.Iterations,
		SimIterations: 2,
		HaloGDPM:      halo,
		HaloHVEPM:     halo,
		HVEExtraRows:  1, // matches execute()'s halo.Options.ExtraRows
	}
	var row perfmodel.Row
	switch p.Algorithm {
	case "hve":
		row = cfg.HVERow(ranks)
		if row.NA {
			// Tiles too small for the HVE constraint at this scale; the
			// GD schedule is the closest defined estimate.
			row = cfg.GDRow(ranks)
		}
	default:
		row = cfg.GDRow(ranks)
	}
	pred := &Prediction{
		Seconds:        row.RuntimeMin * 60,
		ComputeSeconds: row.Breakdown.ComputeMin * 60,
		WaitSeconds:    row.Breakdown.WaitMin * 60,
		CommSeconds:    row.Breakdown.CommMin * 60,
		Source:         source,
		Ranks:          ranks,
	}
	return pred, float64(locs) * spec.FlopsPerLocation(), ranks
}

// attachAnalysis arms a constructed batch job with its prediction, the
// calibration inputs and (for decomposed algorithms) the straggler
// tracker. Must run before the job is enqueued — the fields are
// immutable once a worker can pick it up.
func (s *Service) attachAnalysis(j *Job) {
	if j.streaming {
		return
	}
	j.pred, j.flopsPerIter, j.predRanks = s.predict(j.prob, j.params)
	if j.params.Algorithm != "serial" {
		j.tracker = newRankTracker(j.params.MeshRows * j.params.MeshCols)
	}
	if j.pred != nil {
		j.rec.Record(flight.Event{Kind: "prediction",
			Detail: fmt.Sprintf("%.2fs over %d ranks (%s)", j.pred.Seconds, j.pred.Ranks, j.pred.Source)})
	}
}

// observeIteration feeds one iteration-boundary duration into the
// latency histogram and, when the job carries calibration inputs, folds
// the implied per-rank throughput into the live EWMA.
func (s *Service) observeIteration(j *Job, d time.Duration) {
	s.hist.iteration.Observe(d)
	if d <= 0 || j.flopsPerIter <= 0 || j.predRanks <= 0 {
		return
	}
	s.throughput.observe(j.flopsPerIter / d.Seconds() / float64(j.predRanks))
}

// ratioDuration encodes a dimensionless ratio on a histogram's seconds
// axis (obs.Histogram buckets observations by seconds; the ratio
// histograms declare ratio-valued bounds).
func ratioDuration(r float64) time.Duration {
	return time.Duration(r * float64(time.Second))
}

// Straggler thresholds: a rank is slow in an iteration when its compute
// exceeds slowFactor x the rank mean, and a persistent straggler when
// slow in more than half of at least minStragglerRows complete rows.
const (
	slowFactor       = 1.5
	minStragglerRows = 2
)

// rankTracker accumulates per-iteration per-rank compute/comm splits
// for one job and reduces them to imbalance ratios and persistent-
// straggler verdicts. Rank stats arrive on engine or hub goroutines;
// everything is guarded by one mutex. A nil tracker no-ops (serial and
// streaming jobs).
type rankTracker struct {
	mu      sync.Mutex
	ranks   int
	pending map[int][]int64 // iter → per-rank computeNS (-1 unseen)
	seen    map[int]int     // iter → ranks reported
	rows    int             // iterations with a complete per-rank row
	slow    []int           // per-rank count of slow iterations
	compute []int64         // cumulative per-rank compute ns
	comm    []int64         // cumulative per-rank comm ns
	sumR    float64         // sum of per-row max/mean ratios
	maxR    float64
}

func newRankTracker(ranks int) *rankTracker {
	if ranks <= 1 {
		return nil // nothing to compare against
	}
	return &rankTracker{
		ranks:   ranks,
		pending: make(map[int][]int64),
		seen:    make(map[int]int),
		slow:    make([]int, ranks),
		compute: make([]int64, ranks),
		comm:    make([]int64, ranks),
	}
}

// observe folds one rank's iteration split in. When the observation
// completes a full per-rank row, it returns that row's max/mean compute
// ratio and true, so the caller can feed the imbalance histogram live.
func (t *rankTracker) observe(rank, iter int, computeNS, commNS int64) (float64, bool) {
	if t == nil || rank < 0 || rank >= t.ranks {
		return 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.compute[rank] += computeNS
	t.comm[rank] += commNS
	row := t.pending[iter]
	if row == nil {
		row = make([]int64, t.ranks)
		for i := range row {
			row[i] = -1
		}
		t.pending[iter] = row
	}
	if row[rank] < 0 {
		t.seen[iter]++
	}
	row[rank] = computeNS
	if t.seen[iter] < t.ranks {
		return 0, false
	}
	delete(t.pending, iter)
	delete(t.seen, iter)
	var sum, max int64
	for _, c := range row {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum <= 0 {
		return 0, false
	}
	mean := float64(sum) / float64(t.ranks)
	ratio := float64(max) / mean
	t.rows++
	t.sumR += ratio
	if ratio > t.maxR {
		t.maxR = ratio
	}
	for r, c := range row {
		if float64(c) > slowFactor*mean {
			t.slow[r]++
		}
	}
	return ratio, true
}

// imbalanceSummary is the tracker's end-of-job reduction.
type imbalanceSummary struct {
	Rows       int     // complete per-rank iteration rows observed
	MeanRatio  float64 // mean per-row max/mean compute ratio
	MaxRatio   float64
	Stragglers []int // ranks slow in more than half the rows
	Slow       []int // per-rank slow-iteration counts
	ComputeNS  []int64
	CommNS     []int64
}

func (t *rankTracker) summary() imbalanceSummary {
	if t == nil {
		return imbalanceSummary{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := imbalanceSummary{Rows: t.rows, MaxRatio: t.maxR}
	if t.rows > 0 {
		s.MeanRatio = t.sumR / float64(t.rows)
	}
	if t.rows >= minStragglerRows {
		for r, n := range t.slow {
			if n*2 > t.rows {
				s.Stragglers = append(s.Stragglers, r)
			}
		}
	}
	s.Slow = append([]int(nil), t.slow...)
	s.ComputeNS = append([]int64(nil), t.compute...)
	s.CommNS = append([]int64(nil), t.comm...)
	return s
}

// recordRankStats lands one rank's per-iteration split in the job
// timeline and the imbalance tracker; each completed per-rank row feeds
// the imbalance histogram as soon as its last rank reports.
func (s *Service) recordRankStats(j *Job, rank, iter int, computeNS, commNS int64) {
	j.recordRankTiming(rank, iter, computeNS, commNS)
	if ratio, full := j.tracker.observe(rank, iter, computeNS, commNS); full {
		s.hist.imbalance.Observe(ratioDuration(ratio))
	}
}

// finishJob closes out a pool-executed job: the analysis pass runs
// first so its verdicts are already on the wire object and in the trace
// when the terminal state event fires, then the terminal transition and
// the durable/structured finish record.
func (s *Service) finishJob(j *Job, state State, err error) {
	s.analyze(j)
	j.mu.Lock()
	actual := j.actualSeconds
	j.mu.Unlock()
	if state == Done {
		// Finished wall-clock feeds the fleet runtime EWMA — the
		// Retry-After fallback for jobs nothing else is known about.
		s.runtime.observe(actual)
	}
	s.releaseTenant(j, actual)
	j.finish(state, err)
	s.logFinish(j, state, err)
}

// analyze reduces the job's telemetry to verdicts at the end of its
// run: actual runtime vs prediction (histogram + status summary +
// predicted-* trace spans, drawn over the actual timeline so the Chrome
// view overlays them) and the straggler reduction (wire fields, one
// "straggler" span per flagged rank, a flight-recorder entry). No-ops
// for jobs that never started — their telemetry is empty.
func (s *Service) analyze(j *Job) {
	j.mu.Lock()
	started := j.started
	j.mu.Unlock()
	if started.IsZero() {
		return
	}
	actual := time.Since(started).Seconds()
	sum := j.tracker.summary()

	var ratio float64
	if j.pred != nil && j.pred.Seconds > 0 && actual > 0 {
		ratio = actual / j.pred.Seconds
	}
	j.mu.Lock()
	j.actualSeconds = actual
	j.predErrRatio = ratio
	if sum.Rows > 0 {
		j.imbalance = sum.MeanRatio
		j.stragglers = sum.Stragglers
	}
	j.mu.Unlock()

	if j.pred != nil {
		for _, ps := range []struct {
			name string
			sec  float64
		}{
			{"predicted-runtime", j.pred.Seconds},
			{"predicted-compute", j.pred.ComputeSeconds},
			{"predicted-wait", j.pred.WaitSeconds},
			{"predicted-comm", j.pred.CommSeconds},
		} {
			j.tr.Record(ps.name, j.rootSpan, obs.RankCoordinator, obs.IterNone,
				started, time.Duration(ps.sec*float64(time.Second)))
		}
	}
	if ratio > 0 {
		s.hist.predictionErr.Observe(ratioDuration(ratio))
		s.preds.observe(ratio)
		s.log.Info("prediction scored", "job_id", j.id, "request_id", j.RequestID(),
			"predicted_s", j.pred.Seconds, "actual_s", actual, "error_ratio", ratio)
	}
	for _, r := range sum.Stragglers {
		j.tr.Record("straggler", j.rootSpan, r, obs.IterNone,
			started, time.Duration(actual*float64(time.Second)))
		j.rec.Record(flight.Event{Kind: "straggler", Iter: sum.Rows,
			Detail: fmt.Sprintf("rank %d slow in %d/%d iterations", r, sum.Slow[r], sum.Rows)})
		s.log.Warn("straggler rank", "job_id", j.id, "request_id", j.RequestID(),
			"rank", r, "slow_iters", sum.Slow[r], "iters", sum.Rows,
			"mean_imbalance", sum.MeanRatio)
	}
}

// Status is the fleet-health roll-up served at GET /v1/status.
type Status struct {
	Time          time.Time `json:"time"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	// Pool occupancy and backlog.
	Workers     int            `json:"workers"`
	WorkersIdle int            `json:"workers_idle"`
	QueueDepth  int            `json:"queue_depth"`
	Jobs        map[string]int `json:"jobs"`
	// Grid is nil when the service runs without a worker grid.
	Grid *GridSummary `json:"grid,omitempty"`
	// WAL is nil when the service runs on the in-memory store.
	WAL        *WALSummary       `json:"wal,omitempty"`
	Prediction PredictionSummary `json:"prediction"`
	// SchedPolicy is the active queue policy ("fifo" or "wfq");
	// Tenants is the per-tenant fairness rollup (nil until the first
	// submission creates a tenant).
	SchedPolicy string         `json:"sched_policy"`
	Tenants     []TenantStatus `json:"tenants,omitempty"`
}

// GridSummary is the worker-fleet block of Status.
type GridSummary struct {
	Addr        string           `json:"addr"`
	Workers     []GridWorkerInfo `json:"workers"`
	Busy        int              `json:"busy"`
	Sessions    int64            `json:"sessions_total"`
	BytesRouted int64            `json:"bytes_routed_total"`
}

// WALSummary is the durability block of Status.
type WALSummary struct {
	Records       int64 `json:"records_total"`
	Syncs         int64 `json:"syncs_total"`
	Compactions   int64 `json:"compactions_total"`
	Bytes         int64 `json:"bytes"`
	Errors        int64 `json:"errors_total"`
	ReplayRecords int   `json:"replay_records"`
	ReplayTorn    int   `json:"replay_torn"`
}

// PredictionSummary reports how the runtime predictor is doing.
type PredictionSummary struct {
	// Jobs is how many finished jobs were scored against a prediction.
	Jobs int `json:"jobs"`
	// MeanAbsErrorPct is the mean |actual/predicted - 1| in percent.
	MeanAbsErrorPct float64 `json:"mean_abs_error_pct"`
	// LastErrorRatio is the most recent actual/predicted ratio.
	LastErrorRatio float64 `json:"last_error_ratio,omitempty"`
	// CalibratedFlops is the live per-rank throughput EWMA (0 until the
	// first observed iteration); CalibrationIters how many iterations
	// fed it.
	CalibratedFlops  float64 `json:"calibrated_flops,omitempty"`
	CalibrationIters int     `json:"calibration_iters,omitempty"`
}

// Status snapshots the service's fleet health: queue depth, pool and
// grid occupancy, job-state census, WAL counters and the prediction-
// error summary, in one JSON-ready document.
func (s *Service) Status() Status {
	s.mu.Lock()
	depth := s.q.Len()
	policy := s.q.Policy()
	tenants := s.tenantStatusLocked()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()

	states := map[string]int{
		Queued.String(): 0, Running.String(): 0, Done.String(): 0,
		Failed.String(): 0, Cancelled.String(): 0,
	}
	for _, j := range jobs {
		states[j.State().String()]++
	}
	running := int(s.met.running.Load())
	idle := s.cfg.Workers - running
	if idle < 0 {
		idle = 0
	}
	st := Status{
		Time:          time.Now(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.cfg.Workers,
		WorkersIdle:   idle,
		QueueDepth:    depth,
		Jobs:          states,
		SchedPolicy:   policy,
		Tenants:       tenants,
	}
	if s.grid != nil {
		workers := s.grid.Workers()
		busy := 0
		for _, w := range workers {
			if w.Busy {
				busy++
			}
		}
		st.Grid = &GridSummary{
			Addr:        s.grid.Addr().String(),
			Workers:     workers,
			Busy:        busy,
			Sessions:    s.grid.SessionsStarted(),
			BytesRouted: s.grid.BytesRouted(),
		}
	}
	if s.store.Durable() {
		ws := s.store.Stats()
		st.WAL = &WALSummary{
			Records: ws.Records, Syncs: ws.Syncs, Compactions: ws.Compactions,
			Bytes: ws.WALBytes, Errors: s.met.walErrors.Load(),
			ReplayRecords: s.replayRecords, ReplayTorn: s.replayTorn,
		}
	}
	pj, mean, last := s.preds.summary()
	flops, iters := s.throughput.value()
	st.Prediction = PredictionSummary{
		Jobs: pj, MeanAbsErrorPct: mean * 100, LastErrorRatio: last,
		CalibratedFlops: flops, CalibrationIters: iters,
	}
	return st
}

// FlightEvents returns the job's flight-recorder tail, oldest first.
func (j *Job) FlightEvents() []flight.Event {
	return j.rec.Events()
}
