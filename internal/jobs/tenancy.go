package jobs

// Tenancy: per-tenant fair-share accounting, admission quotas, and the
// honest Retry-After estimator. The accounting is always on — every
// submission lands on a tenant ("anonymous" without an API key) even
// under the FIFO policy — so per-tenant metrics and the /v1/status
// rollup do not change shape when an operator turns wfq on.
//
// All tenant state lives under the service mutex, in the same critical
// sections as the queue itself: an admission decision (queue depth,
// concurrent-job cap, ingest quota) and the enqueue it gates are
// atomic.

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"ptychopath/internal/jobs/sched"
)

// Backpressure wraps a 429-class error (ErrQueueFull, ErrQuotaExceeded,
// stream.ErrIngestFull) with a Retry-After derived from live queue
// state: how long until the condition that rejected the caller is
// expected to clear. errors.Is still matches the wrapped sentinel; the
// HTTP layer additionally errors.As-extracts the hint for the problem
// envelope's retry_after_ms and the Retry-After header.
type Backpressure struct {
	Err        error
	RetryAfter time.Duration
}

func (b *Backpressure) Error() string { return b.Err.Error() }
func (b *Backpressure) Unwrap() error { return b.Err }

// minRetryAfter floors every hint: a zero Retry-After would tell
// clients to hammer the service in a tight loop.
const minRetryAfter = 100 * time.Millisecond

// tenantState is one tenant's live accounting. Guarded by Service.mu.
type tenantState struct {
	name   string
	weight float64
	// Quotas from the sched config (0 = unlimited).
	maxActive   int
	ingestQuota int64
	// metricLabel is the tenant's /metrics label: its own name for the
	// first Sched.MaxTenants distinct tenants, "other" beyond that cap
	// — per-tenant rows stay bounded no matter how many API keys hit
	// the service. Decided once at first sight, stable afterwards.
	metricLabel string

	active       int   // in-flight (queued + running) jobs
	ingestBytes  int64 // live ingest bytes held by the tenant's streaming jobs
	submitted    int64
	preempted    int64
	quotaRejects int64
	completedSec float64 // wall-clock seconds of finished work (fair-share ledger)
}

// tenantOverflowLabel aggregates tenants beyond the registry cap.
const tenantOverflowLabel = "other"

// tenantLocked returns (creating on demand) the tenant's state.
// Requires s.mu.
func (s *Service) tenantLocked(name string) *tenantState {
	if name == "" {
		name = AnonymousTenant
	}
	if ts, ok := s.tenants[name]; ok {
		return ts
	}
	tc := s.cfg.Sched.Tenants[name]
	ts := &tenantState{
		name:        name,
		weight:      s.cfg.Sched.Weight(name),
		maxActive:   tc.MaxActive,
		ingestQuota: tc.IngestBytes,
		metricLabel: name,
	}
	if len(s.tenants) >= s.cfg.Sched.MaxTenants {
		ts.metricLabel = tenantOverflowLabel
	}
	s.tenants[name] = ts
	s.tenantOrder = append(s.tenantOrder, name)
	return ts
}

// admitLocked is the tenant half of admission: concurrent-job cap.
// Charges the tenant on success. Requires s.mu.
func (s *Service) admitLocked(j *Job) error {
	ts := s.tenantLocked(j.params.Tenant)
	if ts.maxActive > 0 && ts.active >= ts.maxActive {
		ts.quotaRejects++
		s.met.quotaRejected.Add(1)
		return &Backpressure{
			Err: fmt.Errorf("%w: tenant %q has %d jobs in flight (max %d)",
				ErrQuotaExceeded, ts.name, ts.active, ts.maxActive),
			RetryAfter: s.tenantRetryLocked(ts),
		}
	}
	ts.active++
	ts.submitted++
	j.tenantLabel = ts.metricLabel
	return nil
}

// releaseTenantLocked returns a job's tenant charges (active slot,
// ingest bytes) and credits its completed work to the fair-share
// ledger. Idempotent per job — the terminal transition can be reached
// from several paths. Requires s.mu.
func (s *Service) releaseTenantLocked(j *Job, completedSec float64) {
	if j.tenantReleased {
		return
	}
	j.tenantReleased = true
	ts := s.tenantLocked(j.params.Tenant)
	if ts.active > 0 {
		ts.active--
	}
	ts.ingestBytes -= j.ingestedBytes
	if ts.ingestBytes < 0 {
		ts.ingestBytes = 0
	}
	ts.completedSec += completedSec
}

// releaseTenant is releaseTenantLocked for callers not holding s.mu.
func (s *Service) releaseTenant(j *Job, completedSec float64) {
	s.mu.Lock()
	s.releaseTenantLocked(j, completedSec)
	s.mu.Unlock()
}

// chargeIngest reserves n ingest bytes against the job's tenant quota,
// rejecting with a Backpressure-wrapped ErrQuotaExceeded when the
// reservation would exceed it.
func (s *Service) chargeIngest(j *Job, n int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.tenantLocked(j.params.Tenant)
	if ts.ingestQuota > 0 && ts.ingestBytes+n > ts.ingestQuota {
		ts.quotaRejects++
		s.met.quotaRejected.Add(1)
		return &Backpressure{
			Err: fmt.Errorf("%w: tenant %q ingest quota %d bytes (holding %d, chunk %d)",
				ErrQuotaExceeded, ts.name, ts.ingestQuota, ts.ingestBytes, n),
			RetryAfter: s.ingestRetryHint(j),
		}
	}
	ts.ingestBytes += n
	j.ingestedBytes += n
	return nil
}

// refundIngest rolls back a reservation whose append failed.
func (s *Service) refundIngest(j *Job, n int64) {
	s.mu.Lock()
	ts := s.tenantLocked(j.params.Tenant)
	ts.ingestBytes -= n
	if ts.ingestBytes < 0 {
		ts.ingestBytes = 0
	}
	j.ingestedBytes -= n
	s.mu.Unlock()
}

// frameBytes estimates the resident cost of one ingest frame: the
// measurement pixels plus location metadata.
func frameBytes(windowN int) int64 {
	return int64(windowN)*int64(windowN)*8 + 16
}

// runtimeEstimate is a coarse EWMA of finished jobs' wall-clock
// seconds: the Retry-After fallback for jobs with no perfmodel
// prediction and no observed iterations (streaming jobs, cold starts).
type runtimeEstimate struct {
	mu  sync.Mutex
	sec float64
	n   int
}

func (r *runtimeEstimate) observe(sec float64) {
	if sec <= 0 || math.IsInf(sec, 0) || math.IsNaN(sec) {
		return
	}
	r.mu.Lock()
	if r.n == 0 {
		r.sec = sec
	} else {
		r.sec += throughputAlpha * (sec - r.sec)
	}
	r.n++
	r.mu.Unlock()
}

func (r *runtimeEstimate) value() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sec
}

// remainingSeconds estimates how much wall-clock work a job still has:
// observed per-iteration latency × remaining iterations when the job
// has run, the perfmodel prediction before that, the service-wide
// runtime EWMA when neither exists. fallback is that last resort.
func (j *Job) remainingSeconds(fallback float64) float64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	total := j.params.StartIter + j.params.Iterations
	remaining := total - j.iter
	if remaining < 0 {
		remaining = 0
	}
	if j.streaming {
		// Open-ended: the stream decides. Use the fleet-wide average.
		return fallback
	}
	if d := j.lastIterDur.Seconds(); d > 0 && remaining > 0 {
		return d * float64(remaining)
	}
	if j.pred != nil && j.pred.Seconds > 0 {
		if j.params.Iterations > 0 && remaining < j.params.Iterations {
			return j.pred.Seconds * float64(remaining) / float64(j.params.Iterations)
		}
		return j.pred.Seconds
	}
	return fallback
}

// costFallbackSeconds is the virtual cost / retry estimate of a job
// nothing is known about yet.
const costFallbackSeconds = 1.0

// fallbackSeconds returns the fleet-wide runtime EWMA, or the static
// fallback before any job has finished.
func (s *Service) fallbackSeconds() float64 {
	if v := s.runtime.value(); v > 0 {
		return v
	}
	return costFallbackSeconds
}

// schedItem wraps a job for the queue, priced at its remaining
// predicted work. Requires s.mu (assigns the scheduler sequence).
func (s *Service) schedItemLocked(j *Job) *sched.Item {
	s.seq++
	j.seq = s.seq
	class, _ := sched.ParseClass(j.params.Priority)
	return &sched.Item{
		ID: j.id, Tenant: j.params.Tenant, Class: class,
		Cost: j.remainingSeconds(s.fallbackSeconds()),
		Seq:  j.seq, Payload: j,
	}
}

// retryAfterLocked is the honest queue estimate: simulate the pool
// draining the current backlog — each running job finishes its
// remaining predicted seconds, then the queued items (in the
// scheduler's own dispatch order) greedily fill the earliest-free
// worker — and report when the FIRST slot a new arrival could take
// opens up. The value shrinks as the queue drains and grows as it
// fills, which is exactly what a 429's Retry-After promises. Requires
// s.mu.
func (s *Service) retryAfterLocked() time.Duration {
	fallback := s.fallbackSeconds()
	free := make([]float64, s.cfg.Workers)
	slot := 0
	for _, j := range s.running {
		if slot >= len(free) {
			break
		}
		free[slot] = j.remainingSeconds(fallback)
		slot++
	}
	for _, it := range s.q.Items() {
		// Earliest-free worker takes the next item.
		minI := 0
		for i := 1; i < len(free); i++ {
			if free[i] < free[minI] {
				minI = i
			}
		}
		cost := it.Cost
		if cost <= 0 {
			cost = costFallbackSeconds
		}
		free[minI] += cost
	}
	earliest := free[0]
	for _, f := range free[1:] {
		if f < earliest {
			earliest = f
		}
	}
	return floorRetry(time.Duration(earliest * float64(time.Second)))
}

// RetryAfterHint reports how long a submission rejected right now
// should wait before retrying — the live estimate behind every
// queue-full 429. Exported for tests and operational probes.
func (s *Service) RetryAfterHint() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retryAfterLocked()
}

// ingestRetryHint estimates when a full (or quota-blocked) streaming
// ingest will have drained a fold's worth of frames: one fold period
// of observed iteration latency, or the fleet fallback cold.
func (s *Service) ingestRetryHint(j *Job) time.Duration {
	j.mu.Lock()
	d := j.lastIterDur
	fold := j.params.FoldEvery
	j.mu.Unlock()
	if fold <= 0 {
		fold = 1
	}
	sec := d.Seconds() * float64(fold)
	if sec <= 0 {
		sec = s.fallbackSeconds()
	}
	return floorRetry(time.Duration(sec * float64(time.Second)))
}

// tenantRetryLocked estimates when a tenant at its concurrent-job cap
// frees a slot: the smallest remaining time among its in-flight jobs.
// Requires s.mu.
func (s *Service) tenantRetryLocked(ts *tenantState) time.Duration {
	fallback := s.fallbackSeconds()
	best := math.Inf(1)
	for _, j := range s.running {
		if j.params.Tenant == ts.name {
			if r := j.remainingSeconds(fallback); r < best {
				best = r
			}
		}
	}
	for _, it := range s.q.Items() {
		if it.Tenant == ts.name {
			// A queued job frees its slot no sooner than it could start
			// plus run — approximate with the general queue estimate.
			if r := it.Cost; r < best {
				best = r
			}
		}
	}
	if math.IsInf(best, 1) {
		best = fallback
	}
	return floorRetry(time.Duration(best * float64(time.Second)))
}

func floorRetry(d time.Duration) time.Duration {
	if d < minRetryAfter {
		return minRetryAfter
	}
	return d
}

// TenantStatus is one tenant's row in the /v1/status fairness rollup.
type TenantStatus struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
	// Active is the tenant's in-flight (queued + running) jobs;
	// MaxActive and IngestQuotaBytes echo its configured caps (0 =
	// unlimited).
	Active           int   `json:"active"`
	MaxActive        int   `json:"max_active,omitempty"`
	IngestQuotaBytes int64 `json:"ingest_quota_bytes,omitempty"`
	IngestBytes      int64 `json:"ingest_bytes,omitempty"`
	Submitted        int64 `json:"submitted_total"`
	Preempted        int64 `json:"preempted_total,omitempty"`
	QuotaRejections  int64 `json:"quota_rejections_total,omitempty"`
	// CompletedCostSeconds is the tenant's finished wall-clock work;
	// Share is its fraction of all tenants' finished work — the number
	// that converges to the configured weight ratio under wfq.
	CompletedCostSeconds float64 `json:"completed_cost_seconds"`
	Share                float64 `json:"share,omitempty"`
}

// tenantStatusLocked snapshots the fairness rollup. Requires s.mu.
func (s *Service) tenantStatusLocked() []TenantStatus {
	if len(s.tenantOrder) == 0 {
		return nil
	}
	total := 0.0
	for _, name := range s.tenantOrder {
		total += s.tenants[name].completedSec
	}
	out := make([]TenantStatus, 0, len(s.tenantOrder))
	for _, name := range s.tenantOrder {
		ts := s.tenants[name]
		row := TenantStatus{
			Name: ts.name, Weight: ts.weight, Active: ts.active,
			MaxActive: ts.maxActive, IngestQuotaBytes: ts.ingestQuota,
			IngestBytes: ts.ingestBytes, Submitted: ts.submitted,
			Preempted: ts.preempted, QuotaRejections: ts.quotaRejects,
			CompletedCostSeconds: ts.completedSec,
		}
		if total > 0 {
			row.Share = ts.completedSec / total
		}
		out = append(out, row)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}
