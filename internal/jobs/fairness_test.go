package jobs

// Fairness capstone: the multi-tenant scheduler proven at the service
// level. Preemption is lossless (bit-identical result), WFQ dispatch
// order follows the configured weights, a starved tenant under FIFO
// completes promptly under WFQ, every 429-class rejection carries a
// live Retry-After that shrinks as the queue drains, and tenant quotas
// admit honestly. All tests are deterministic under -race: the worker
// pool is plugged with a frame-starved streaming job (it blocks in the
// ingest wait, holds the worker, never feeds the runtime EWMA) so the
// backlog's dispatch order is decided entirely by the queue policy.

import (
	"errors"
	"testing"
	"time"

	"ptychopath/internal/dataio"
	"ptychopath/internal/jobs/sched"
)

// plugWorker occupies one pool worker with a streaming job that never
// receives frames: it blocks waiting on the ingest until released.
// Cancel (via the returned release func) frees the worker without
// feeding the fleet runtime EWMA — cancelled jobs are not observed —
// so scheduling costs stay at their deterministic defaults.
func plugWorker(t *testing.T, s *Service) (j *Job, release func()) {
	t.Helper()
	prob := tinyProblem(t)
	j, err := s.SubmitStreaming(dataio.HeaderFromProblem(prob), Params{Algorithm: "serial", Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "plug running", func() bool { return j.State() == Running })
	var released bool
	return j, func() {
		if released {
			return
		}
		released = true
		s.Cancel(j.ID())
		waitFor(t, "plug cancelled", func() bool { return j.State().Terminal() })
	}
}

// startedOrder returns the tenants of the given jobs in the order the
// pool started them. Only meaningful once every job has started.
func startedOrder(jobs []*Job) []string {
	type row struct {
		tenant  string
		started time.Time
	}
	rows := make([]row, 0, len(jobs))
	for _, j := range jobs {
		info := j.Info(0)
		rows = append(rows, row{info.Tenant, info.Started})
	}
	for i := 1; i < len(rows); i++ {
		for k := i; k > 0 && rows[k].started.Before(rows[k-1].started); k-- {
			rows[k], rows[k-1] = rows[k-1], rows[k]
		}
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.tenant
	}
	return out
}

// TestInteractivePreemptionBitIdentical is the lossless-preemption
// proof: an interactive submission displaces a running bulk job at an
// iteration boundary; the bulk job re-queues from its checkpoint, runs
// to completion, and its final object is bit-identical to an
// uninterrupted run of the same parameters.
func TestInteractivePreemptionBitIdentical(t *testing.T) {
	prob := tinyProblem(t)
	// Enough iterations that the job is reliably observable mid-run
	// (single iterations on the 16-frame problem are sub-millisecond).
	const iters = 2000
	params := Params{Algorithm: "serial", Iterations: iters}

	// Reference: the same reconstruction, never interrupted.
	ref := newTestService(t, Config{Workers: 1, QueueDepth: 8, CheckpointEvery: 2})
	rj, err := ref.Submit(prob, params)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "reference done", func() bool { return rj.State() == Done })
	want, wantIter := rj.Snapshot()

	s := newTestService(t, Config{
		Workers: 1, QueueDepth: 8, CheckpointEvery: 2,
		Sched: sched.Config{Policy: "wfq"},
	})
	bulk, err := s.Submit(prob, params)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "bulk mid-run", func() bool {
		return bulk.State() == Running && bulk.Info(0).Iter >= 2
	})

	vip, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 3, Tenant: "vip", Priority: "interactive"})
	if err != nil {
		t.Fatal(err)
	}
	// The bulk job must be displaced exactly once and carry the
	// checkpoint provenance on its wire-visible info.
	waitFor(t, "bulk preempted", func() bool { return bulk.Info(0).PreemptedCount >= 1 })
	waitFor(t, "interactive done", func() bool { return vip.State() == Done })
	waitFor(t, "bulk done", func() bool { return bulk.State().Terminal() })

	info := bulk.Info(0)
	if bulk.State() != Done {
		t.Fatalf("preempted bulk job finished %v: %s", bulk.State(), info.Error)
	}
	if info.PreemptedCount != 1 {
		t.Errorf("preempted_count = %d, want 1", info.PreemptedCount)
	}
	if len(info.RecoveredFrom) < len("checkpoint@") || info.RecoveredFrom[:len("checkpoint@")] != "checkpoint@" {
		t.Errorf("recovered_from = %q, want checkpoint@<iter>", info.RecoveredFrom)
	}
	if info.Iter != iters {
		t.Errorf("bulk finished at iteration %d, want %d", info.Iter, iters)
	}

	got, gotIter := bulk.Snapshot()
	if gotIter != wantIter {
		t.Fatalf("final snapshot at iter %d, reference at %d", gotIter, wantIter)
	}
	if len(got) != len(want) {
		t.Fatalf("snapshot has %d slices, reference %d", len(got), len(want))
	}
	for si := range got {
		if got[si].Bounds != want[si].Bounds {
			t.Fatalf("slice %d bounds %v, reference %v", si, got[si].Bounds, want[si].Bounds)
		}
		for i := range got[si].Data {
			if got[si].Data[i] != want[si].Data[i] {
				t.Fatalf("slice %d sample %d: preempted run %v, reference %v — result not bit-identical",
					si, i, got[si].Data[i], want[si].Data[i])
			}
		}
	}

	// The displaced work is visible in the tenant rollup.
	st := s.Status()
	if st.SchedPolicy != "wfq" {
		t.Errorf("status policy %q, want wfq", st.SchedPolicy)
	}
	for _, ten := range st.Tenants {
		if ten.Name == AnonymousTenant && ten.Preempted != 1 {
			t.Errorf("anonymous tenant preempted_total = %d, want 1", ten.Preempted)
		}
	}
}

// TestWFQDispatchFollowsWeights plugs the single worker, queues six
// jobs each for a weight-3 and a weight-1 tenant, releases the plug,
// and checks the start-time-fair dispatch order: the first eight
// starts split 6:2 between the tenants — the configured 3:1 ratio.
func TestWFQDispatchFollowsWeights(t *testing.T) {
	prob := tinyProblem(t)
	s := newTestService(t, Config{
		Workers: 1, QueueDepth: 16,
		Sched: sched.Config{
			Policy: "wfq",
			Tenants: map[string]sched.TenantConfig{
				"alpha": {Weight: 3},
				"beta":  {Weight: 1},
			},
		},
	})
	_, release := plugWorker(t, s)
	defer release()

	var all []*Job
	for _, tenant := range []string{"alpha", "beta"} {
		for i := 0; i < 6; i++ {
			j, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 2, Tenant: tenant})
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, j)
		}
	}
	release()
	for _, j := range all {
		waitFor(t, "backlog drained", func() bool { return j.State() == Done })
	}

	order := startedOrder(all)
	alpha := 0
	for _, tenant := range order[:8] {
		if tenant == "alpha" {
			alpha++
		}
	}
	if alpha != 6 {
		t.Errorf("first 8 dispatches: %d alpha / %d beta (order %v), want 6/2 for 3:1 weights",
			alpha, 8-alpha, order)
	}
	// Both tenants' ledgers accrued completed work.
	for _, ten := range s.Status().Tenants {
		if (ten.Name == "alpha" || ten.Name == "beta") && ten.CompletedCostSeconds <= 0 {
			t.Errorf("tenant %s has no completed work in the fair-share ledger", ten.Name)
		}
		if ten.Name == "alpha" && ten.Weight != 3 {
			t.Errorf("alpha weight %v, want 3", ten.Weight)
		}
	}
}

// TestStarvationFIFOVersusWFQ is the starved-tenant scenario: ten bulk
// jobs from one tenant ahead of a single interactive job from another.
// Under FIFO the interactive job starts dead last; under WFQ the
// strict interactive lane dispatches it first.
func TestStarvationFIFOVersusWFQ(t *testing.T) {
	run := func(t *testing.T, cfg sched.Config) []string {
		prob := tinyProblem(t)
		s := newTestService(t, Config{Workers: 1, QueueDepth: 16, Sched: cfg})
		_, release := plugWorker(t, s)
		defer release()

		var all []*Job
		for i := 0; i < 10; i++ {
			j, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 2, Tenant: "batchfarm"})
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, j)
		}
		vip, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 2, Tenant: "vip", Priority: "interactive"})
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, vip)
		release()
		for _, j := range all {
			waitFor(t, "backlog drained", func() bool { return j.State() == Done })
		}
		return startedOrder(all)
	}

	t.Run("fifo_starves", func(t *testing.T) {
		order := run(t, sched.Config{})
		if got := order[len(order)-1]; got != "vip" {
			t.Errorf("FIFO dispatch order %v: interactive tenant started %q-last, want dead last (arrival order)", order, got)
		}
	})
	t.Run("wfq_rescues", func(t *testing.T) {
		order := run(t, sched.Config{Policy: "wfq"})
		if got := order[0]; got != "vip" {
			t.Errorf("WFQ dispatch order %v: first start is %q, want the interactive vip job", order, got)
		}
	})
}

// TestRetryAfterShrinksAsQueueDrains pins the honest-admission
// satellite in plain FIFO mode: the queue-full Retry-After is derived
// from the live backlog, so cancelling queued work strictly shrinks
// the hint a new arrival would receive.
func TestRetryAfterShrinksAsQueueDrains(t *testing.T) {
	prob := tinyProblem(t)
	s := newTestService(t, Config{Workers: 1, QueueDepth: 8})
	_, release := plugWorker(t, s)
	defer release()

	var queued []*Job
	for i := 0; i < 3; i++ {
		j, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 100_000})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
	}

	hints := []time.Duration{s.RetryAfterHint()}
	for _, j := range queued {
		if err := s.Cancel(j.ID()); err != nil {
			t.Fatal(err)
		}
		hints = append(hints, s.RetryAfterHint())
	}
	for i := 1; i < len(hints); i++ {
		if hints[i] >= hints[i-1] {
			t.Errorf("retry hint after draining %d jobs = %v, not below %v — hint is not live",
				i, hints[i], hints[i-1])
		}
	}
	if last := hints[len(hints)-1]; last < minRetryAfter {
		t.Errorf("drained hint %v below the %v floor", last, minRetryAfter)
	}
}

// TestQueueFullCarriesLiveRetryAfter asserts the rejection itself
// carries the live hint: a submit refused by the bounded FIFO wraps
// ErrQueueFull in a Backpressure whose Retry-After covers the backlog.
func TestQueueFullCarriesLiveRetryAfter(t *testing.T) {
	prob := tinyProblem(t)
	s := newTestService(t, Config{Workers: 1, QueueDepth: 1})
	_, release := plugWorker(t, s)
	defer release()

	if _, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 5}); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 5})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: got %v, want ErrQueueFull", err)
	}
	var bp *Backpressure
	if !errors.As(err, &bp) {
		t.Fatalf("queue-full rejection %v carries no Backpressure hint", err)
	}
	if bp.RetryAfter < minRetryAfter {
		t.Errorf("queue-full Retry-After %v below the %v floor", bp.RetryAfter, minRetryAfter)
	}
}

// TestInteractiveReserveShedsBulkFirst: with a reserve slot held back,
// bulk submissions shed one slot early while interactive ones still
// land.
func TestInteractiveReserveShedsBulkFirst(t *testing.T) {
	prob := tinyProblem(t)
	s := newTestService(t, Config{
		Workers: 1, QueueDepth: 2,
		Sched: sched.Config{Policy: "wfq", InteractiveReserve: 1},
	})
	plug, release := plugWorker(t, s)
	defer release()

	// Depth 1 of 2: at the bulk limit (QueueDepth - reserve).
	if _, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 5}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("bulk submit into reserve: got %v, want ErrQueueFull", err)
	}
	vip, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 5, Tenant: "vip", Priority: "interactive"})
	if err != nil {
		t.Fatalf("interactive submit into reserve: %v", err)
	}
	// The reserve slot was the last one.
	if _, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 5, Tenant: "vip", Priority: "interactive"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("interactive submit past full depth: got %v, want ErrQueueFull", err)
	}
	_ = plug
	_ = vip
}

// TestTenantConcurrencyQuota pins the max-active cap: the tenant's
// second in-flight job is refused with a Backpressure-wrapped
// ErrQuotaExceeded, other tenants are unaffected, and releasing the
// slot re-admits.
func TestTenantConcurrencyQuota(t *testing.T) {
	prob := tinyProblem(t)
	s := newTestService(t, Config{
		Workers: 1, QueueDepth: 8,
		Sched: sched.Config{
			Policy:  "wfq",
			Tenants: map[string]sched.TenantConfig{"capped": {Weight: 1, MaxActive: 1}},
		},
	})
	_, release := plugWorker(t, s)
	defer release()

	first, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 5, Tenant: "capped"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Submit(prob, Params{Algorithm: "serial", Iterations: 5, Tenant: "capped"})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("capped tenant second submit: got %v, want ErrQuotaExceeded", err)
	}
	var bp *Backpressure
	if !errors.As(err, &bp) || bp.RetryAfter < minRetryAfter {
		t.Fatalf("quota rejection %v lacks a live Retry-After", err)
	}
	// The cap is per tenant, not global.
	if _, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 5, Tenant: "free"}); err != nil {
		t.Fatalf("uncapped tenant blocked by neighbour's quota: %v", err)
	}
	// Cancelling the in-flight job releases the slot.
	if err := s.Cancel(first.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(prob, Params{Algorithm: "serial", Iterations: 5, Tenant: "capped"}); err != nil {
		t.Fatalf("capped tenant after slot release: %v", err)
	}

	for _, ten := range s.Status().Tenants {
		if ten.Name == "capped" {
			if ten.QuotaRejections != 1 {
				t.Errorf("capped tenant quota_rejections_total = %d, want 1", ten.QuotaRejections)
			}
			if ten.MaxActive != 1 {
				t.Errorf("capped tenant max_active = %d, want 1", ten.MaxActive)
			}
		}
	}
}

// TestTenantIngestQuota pins the ingest-byte quota: a streaming
// tenant's frames are charged against its configured budget and the
// overflow append is refused with ErrQuotaExceeded plus a hint, while
// the refund on release frees the budget for the next stream.
func TestTenantIngestQuota(t *testing.T) {
	prob := tinyProblem(t)
	hdr := dataio.HeaderFromProblem(prob)
	frames := dataio.FramesFromProblem(prob)
	// Budget for roughly four frames of this geometry.
	quota := 4 * frameBytes(prob.WindowN)
	s := newTestService(t, Config{
		Workers: 1, QueueDepth: 8,
		Sched: sched.Config{
			Policy:  "wfq",
			Tenants: map[string]sched.TenantConfig{"metered": {Weight: 1, IngestBytes: quota}},
		},
	})
	// Keep the stream queued so appended frames stay resident.
	_, release := plugWorker(t, s)
	defer release()

	j, err := s.SubmitStreaming(hdr, Params{Algorithm: "serial", Iterations: 2, Tenant: "metered"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendFrames(j.ID(), frames[:4]); err != nil {
		t.Fatalf("append within quota: %v", err)
	}
	_, err = s.AppendFrames(j.ID(), frames[4:5])
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("append past quota: got %v, want ErrQuotaExceeded", err)
	}
	var bp *Backpressure
	if !errors.As(err, &bp) || bp.RetryAfter < minRetryAfter {
		t.Fatalf("ingest quota rejection %v lacks a live Retry-After", err)
	}

	// Cancelling the stream refunds its resident bytes.
	if err := s.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stream cancelled", func() bool { return j.State().Terminal() })
	j2, err := s.SubmitStreaming(hdr, Params{Algorithm: "serial", Iterations: 2, Tenant: "metered"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendFrames(j2.ID(), frames[:4]); err != nil {
		t.Fatalf("append after refund: %v", err)
	}
	// The stream is never closed; cancel it while still queued so the
	// pool can drain at service close.
	if err := s.Cancel(j2.ID()); err != nil {
		t.Fatal(err)
	}
}
