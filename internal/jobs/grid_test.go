package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"ptychopath/internal/dataio"
	"ptychopath/internal/gridworker"
	"ptychopath/internal/transport"
)

// startGridWorkers launches n worker endpoints (goroutines speaking the
// real TCP transport over loopback — functionally identical to n
// ptychoworker processes) and returns their individual kill switches.
func startGridWorkers(t *testing.T, s *Service, n int) []context.CancelFunc {
	t.Helper()
	cancels := make([]context.CancelFunc, n)
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels[i] = cancel
		t.Cleanup(cancel)
		go gridworker.Run(ctx, s.GridAddr(), gridworker.Options{Name: fmt.Sprintf("w%d", i)})
	}
	waitFor(t, "grid workers registered", func() bool {
		return len(s.GridWorkers()) == n
	})
	return cancels
}

// TestGridBitIdentical is the capstone: the same gd job run locally
// (in-process goroutine world) and on a 4-rank loopback-TCP grid must
// produce byte-for-byte identical final checkpoints and identical cost
// histories — the unmodified engine over a different transport.
func TestGridBitIdentical(t *testing.T) {
	prob := tinyProblem(t)
	s := newTestService(t, Config{
		Workers: 2, QueueDepth: 8, CheckpointEvery: 3,
		Timeout: 30 * time.Second, GridAddr: "127.0.0.1:0",
	})
	startGridWorkers(t, s, 4)

	params := Params{Algorithm: "gd", Iterations: 8, StepSize: 0.02, MeshRows: 2, MeshCols: 2}
	local, err := s.Submit(prob, params)
	if err != nil {
		t.Fatal(err)
	}
	gp := params
	gp.Grid = true
	dist, err := s.Submit(prob, gp)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "local job done", func() bool { return local.State() == Done })
	waitFor(t, "grid job done", func() bool { return dist.State() == Done })

	li, gi := local.Info(-1), dist.Info(-1)
	if gi.Error != "" {
		t.Fatalf("grid job error: %s", gi.Error)
	}
	if !gi.Grid {
		t.Fatal("grid job not marked as grid in Info")
	}
	if len(li.CostHistory) != 8 || len(gi.CostHistory) != 8 {
		t.Fatalf("history lengths %d / %d, want 8", len(li.CostHistory), len(gi.CostHistory))
	}
	for i := range li.CostHistory {
		if li.CostHistory[i] != gi.CostHistory[i] {
			t.Fatalf("iteration %d cost: local %.17g, grid %.17g (not bit-identical)",
				i, li.CostHistory[i], gi.CostHistory[i])
		}
	}

	localCk, localIter := local.CheckpointPath()
	gridCk, gridIter := dist.CheckpointPath()
	if localIter != 8 || gridIter != 8 {
		t.Fatalf("checkpoint iters %d / %d, want 8", localIter, gridIter)
	}
	lb, err := os.ReadFile(localCk)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := os.ReadFile(gridCk)
	if err != nil {
		t.Fatal(err)
	}
	if len(lb) == 0 || string(lb) != string(gb) {
		t.Fatalf("final checkpoints differ: local %d bytes, grid %d bytes", len(lb), len(gb))
	}

	if s.grid.SessionsStarted() != 1 || s.grid.BytesRouted() == 0 {
		t.Fatalf("hub stats: %d sessions, %d bytes routed",
			s.grid.SessionsStarted(), s.grid.BytesRouted())
	}
}

// TestGridWorkerKilled is the capstone's failure half: killing a worker
// process mid-iteration fails the job cleanly (typed peer-lost error,
// no hang) with a final OBJCKv1 checkpoint flushed, from which Resume
// continues once the pool is healthy again.
func TestGridWorkerKilled(t *testing.T) {
	prob := tinyProblem(t)
	s := newTestService(t, Config{
		Workers: 1, QueueDepth: 4, CheckpointEvery: 1,
		Timeout: 30 * time.Second, GridAddr: "127.0.0.1:0",
	})
	cancels := startGridWorkers(t, s, 4)

	j, err := s.Submit(prob, Params{
		Algorithm: "gd", Iterations: 500000, StepSize: 0.005,
		MeshRows: 2, MeshCols: 2, Grid: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the run to be demonstrably mid-flight (first periodic
	// checkpoint durable), then kill one worker process.
	waitFor(t, "first checkpoint", func() bool {
		_, iter := j.CheckpointPath()
		return iter >= 1
	})
	cancels[2]()

	waitFor(t, "job failed", func() bool { return j.State() == Failed })
	info := j.Info(0)
	if !strings.Contains(info.Error, "peer lost") {
		t.Fatalf("failure error %q does not name the lost peer", info.Error)
	}
	path, iter := j.CheckpointPath()
	if path == "" || iter < 1 {
		t.Fatalf("no final checkpoint flushed (path %q, iter %d)", path, iter)
	}
	slices, err := dataio.ReadObjectFile(path)
	if err != nil {
		t.Fatalf("final checkpoint unreadable: %v", err)
	}
	if len(slices) != prob.Slices || !slices[0].Bounds.Eq(prob.ImageBounds()) {
		t.Fatalf("checkpoint shape: %d slices on %v", len(slices), slices[0].Bounds)
	}

	// The job is resumable on the surviving pool (3 workers for a 2x2
	// mesh is not enough; a fresh 4th joins first).
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go gridworker.Run(ctx, s.GridAddr(), gridworker.Options{Name: "replacement"})
	waitFor(t, "replacement worker", func() bool {
		idle := 0
		for _, w := range s.GridWorkers() {
			if !w.Busy {
				idle++
			}
		}
		return idle >= 4
	})
	resumed, err := s.Resume(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "resumed job running", func() bool {
		st := resumed.State()
		return st == Running || st.Terminal()
	})
	if err := s.Cancel(resumed.ID()); err != nil && !errors.Is(err, ErrFinished) {
		t.Fatal(err)
	}
	waitFor(t, "resumed job terminal", func() bool { return resumed.State().Terminal() })
}

// TestGridRequiresConfiguration: grid jobs are validated up front —
// no grid listener means ErrNoGrid at submit, and a serial algorithm
// can never run on the grid.
func TestGridRequiresConfiguration(t *testing.T) {
	prob := tinyProblem(t)
	s := newTestService(t, Config{Workers: 1, QueueDepth: 4})
	if _, err := s.Submit(prob, Params{Algorithm: "gd", Grid: true}); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("no-grid submit: got %v, want ErrInvalidParams (ErrNoGrid)", err)
	}

	sg := newTestService(t, Config{Workers: 1, QueueDepth: 4, GridAddr: "127.0.0.1:0"})
	if _, err := sg.Submit(prob, Params{Algorithm: "serial", Grid: true}); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("serial grid submit: got %v, want ErrInvalidParams", err)
	}

	// Streaming jobs run on the local pool only; grid=1 must be
	// rejected up front rather than silently running locally while
	// reporting "grid": true.
	hdr := dataio.HeaderFromProblem(prob)
	if _, err := sg.SubmitStreaming(hdr, Params{Algorithm: "gd", Grid: true}); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("streaming grid submit: got %v, want ErrInvalidParams", err)
	}
}

// TestGridNoIdleWorkers: a grid job submitted with an empty worker pool
// fails with the transport's typed error instead of queueing forever.
func TestGridNoIdleWorkers(t *testing.T) {
	prob := tinyProblem(t)
	s := newTestService(t, Config{Workers: 1, QueueDepth: 4, GridAddr: "127.0.0.1:0"})
	j, err := s.Submit(prob, Params{Algorithm: "gd", Iterations: 3, MeshRows: 2, MeshCols: 2, Grid: true})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job failed", func() bool { return j.State() == Failed })
	if info := j.Info(0); !strings.Contains(info.Error, "idle grid workers") {
		t.Fatalf("error %q does not report the empty pool", info.Error)
	}
	_ = transport.ErrNoWorkers // the typed error the message stems from
}
