package jobs_test

import (
	"fmt"
	"time"

	"ptychopath/internal/dataio"
	"ptychopath/internal/jobs"
	"ptychopath/internal/phantom"
	"ptychopath/internal/physics"
	"ptychopath/internal/scan"
	"ptychopath/internal/solver"
)

// ExampleService_SubmitStreaming walks the whole streaming-job
// lifecycle in-process: open a job from a PTYCHSv1-style opening
// (geometry + probe, no frames), feed the acquisition in chunks while
// the engine reconstructs, close the stream, and wait for the tail
// iterations to finish — the same flow POST /jobs/stream, POST
// /jobs/{id}/frames and POST /jobs/{id}/eof drive over HTTP.
func ExampleService_SubmitStreaming() {
	// Simulate an acquisition to replay.
	pat, err := scan.Raster(scan.RasterConfig{Cols: 4, Rows: 4, StepPix: 5, RadiusPix: 6, MarginPix: 6})
	if err != nil {
		panic(err)
	}
	prob, err := solver.Simulate(solver.SimulateConfig{
		Optics:  physics.PaperOptics(),
		Pattern: pat,
		Object:  phantom.RandomObject(pat.ImageW, pat.ImageH, 1, 1),
		WindowN: 8,
	})
	if err != nil {
		panic(err)
	}

	svc, err := jobs.NewService(jobs.Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		panic(err)
	}
	defer svc.Close()

	// Open the job from metadata only; Iterations is the tail after the
	// stream closes.
	j, err := svc.SubmitStreaming(dataio.HeaderFromProblem(prob), jobs.Params{
		Algorithm: "serial", Iterations: 5, StepSize: 0.02, CheckpointEvery: 2,
	})
	if err != nil {
		panic(err)
	}

	// Feed the 16 frames in chunks of 4, then close the stream.
	frames := dataio.FramesFromProblem(prob)
	for lo := 0; lo < len(frames); lo += 4 {
		if _, err := svc.AppendFrames(j.ID(), frames[lo:lo+4]); err != nil {
			panic(err)
		}
	}
	if err := svc.CloseStream(j.ID()); err != nil {
		panic(err)
	}

	for !j.State().Terminal() {
		time.Sleep(time.Millisecond)
	}
	info := j.Info(0)
	fmt.Println("state:", info.State)
	fmt.Println("streaming:", info.Streaming, "eof:", info.EOF)
	fmt.Println("frames folded in:", info.ActiveFrames)
	fmt.Println("checkpointed:", info.Checkpoint != "")
	// Output:
	// state: done
	// streaming: true eof: true
	// frames folded in: 16
	// checkpointed: true
}
