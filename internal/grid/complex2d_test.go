package grid

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randComplex2D(rng *rand.Rand, bounds Rect) *Complex2D {
	a := NewComplex2D(bounds)
	for i := range a.Data {
		a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return a
}

func TestComplex2DAtSetGlobalCoords(t *testing.T) {
	// A tile anchored away from the origin must index by global coords.
	a := NewComplex2D(NewRect(10, 20, 14, 23))
	a.Set(10, 20, 1+2i)
	a.Set(13, 22, 3-4i)
	if a.At(10, 20) != 1+2i || a.At(13, 22) != 3-4i {
		t.Fatal("global coordinate round-trip failed")
	}
	if a.Data[0] != 1+2i {
		t.Fatal("(X0,Y0) must map to Data[0]")
	}
	if a.Data[len(a.Data)-1] != 3-4i {
		t.Fatal("(X1-1,Y1-1) must map to the last element")
	}
}

func TestComplex2DRow(t *testing.T) {
	a := NewComplex2D(NewRect(5, 5, 9, 8))
	a.Set(6, 6, 7i)
	row := a.Row(6)
	if len(row) != 4 {
		t.Fatalf("row length = %d, want 4", len(row))
	}
	if row[1] != 7i {
		t.Fatal("Row must alias backing data")
	}
	row[2] = 9
	if a.At(7, 6) != 9 {
		t.Fatal("mutating Row slice must mutate the array")
	}
}

func TestComplex2DCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randComplex2D(rng, RectWH(0, 0, 6, 5))
	b := a.Clone()
	if !a.EqualWithin(b, 0) {
		t.Fatal("clone differs from original")
	}
	b.Data[3] += 1
	if a.EqualWithin(b, 1e-12) {
		t.Fatal("clone must not alias original storage")
	}
}

func TestComplex2DScaleAddMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bounds := RectWH(0, 0, 8, 8)
	a := randComplex2D(rng, bounds)
	b := randComplex2D(rng, bounds)
	want := NewComplex2D(bounds)
	for i := range want.Data {
		want.Data[i] = a.Data[i]*2i + (3+1i)*b.Data[i]
	}
	got := a.Clone()
	got.Scale(2i)
	got.AddScaled(b, 3+1i)
	if got.MaxDiff(want) > 1e-12 {
		t.Fatalf("Scale/AddScaled mismatch: %g", got.MaxDiff(want))
	}

	m := a.Clone()
	m.MulElem(b)
	for i := range m.Data {
		if cmplx.Abs(m.Data[i]-a.Data[i]*b.Data[i]) > 1e-12 {
			t.Fatal("MulElem mismatch")
		}
	}
	mc := a.Clone()
	mc.MulConjElem(b)
	for i := range mc.Data {
		if cmplx.Abs(mc.Data[i]-a.Data[i]*cmplx.Conj(b.Data[i])) > 1e-12 {
			t.Fatal("MulConjElem mismatch")
		}
	}
}

func TestComplex2DNorms(t *testing.T) {
	a := NewComplex2DSize(2, 2)
	a.Data[0] = 3 + 4i // |.| = 5
	a.Data[3] = -2i    // |.| = 2
	if got := a.Norm2(); math.Abs(got-29) > 1e-12 {
		t.Fatalf("Norm2 = %g, want 29", got)
	}
	if got := a.MaxAbs(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("MaxAbs = %g, want 5", got)
	}
	if got := a.Sum(); cmplx.Abs(got-(3+2i)) > 1e-12 {
		t.Fatalf("Sum = %v, want 3+2i", got)
	}
}

func TestCopyRegionBetweenOffsetTiles(t *testing.T) {
	// Source and destination tiles live at different offsets but share a
	// global overlap region — the fundamental halo-exchange operation.
	rng := rand.New(rand.NewSource(3))
	src := randComplex2D(rng, NewRect(0, 0, 10, 10))
	dst := NewComplex2D(NewRect(6, 4, 16, 14))
	region := NewRect(6, 4, 10, 10) // overlap of the two bounds
	dst.CopyRegion(src, region)
	for y := 4; y < 14; y++ {
		for x := 6; x < 16; x++ {
			want := complex128(0)
			if region.Contains(x, y) {
				want = src.At(x, y)
			}
			if dst.At(x, y) != want {
				t.Fatalf("dst(%d,%d) = %v, want %v", x, y, dst.At(x, y), want)
			}
		}
	}
}

func TestCopyRegionClipsToBothBounds(t *testing.T) {
	src := NewComplex2D(RectWH(0, 0, 4, 4))
	src.Fill(2)
	dst := NewComplex2D(RectWH(2, 2, 4, 4))
	dst.CopyRegion(src, NewRect(-100, -100, 100, 100)) // huge request
	for y := 2; y < 6; y++ {
		for x := 2; x < 6; x++ {
			want := complex128(0)
			if x < 4 && y < 4 {
				want = 2
			}
			if dst.At(x, y) != want {
				t.Fatalf("clip failure at (%d,%d): %v", x, y, dst.At(x, y))
			}
		}
	}
}

func TestAddRegionAccumulates(t *testing.T) {
	a := NewComplex2DSize(4, 4)
	b := NewComplex2DSize(4, 4)
	b.Fill(1 + 1i)
	r := NewRect(1, 1, 3, 3)
	a.AddRegion(b, r)
	a.AddRegion(b, r)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			want := complex128(0)
			if r.Contains(x, y) {
				want = 2 + 2i
			}
			if a.At(x, y) != want {
				t.Fatalf("AddRegion at (%d,%d) = %v, want %v", x, y, a.At(x, y), want)
			}
		}
	}
}

func TestAddScaledRegion(t *testing.T) {
	a := NewComplex2DSize(3, 3)
	b := NewComplex2DSize(3, 3)
	b.Fill(2)
	a.AddScaledRegion(b, NewRect(0, 0, 2, 2), -1i)
	if a.At(0, 0) != -4i+2i { // -1i*2 = -2i
		t.Fatalf("AddScaledRegion = %v, want -2i", a.At(0, 0))
	}
}

func TestZeroRegion(t *testing.T) {
	a := NewComplex2DSize(4, 4)
	a.Fill(5)
	a.ZeroRegion(NewRect(1, 2, 3, 4))
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			want := complex128(5)
			if x >= 1 && x < 3 && y >= 2 {
				want = 0
			}
			if a.At(x, y) != want {
				t.Fatalf("ZeroRegion at (%d,%d) = %v, want %v", x, y, a.At(x, y), want)
			}
		}
	}
}

func TestExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randComplex2D(rng, RectWH(0, 0, 8, 8))
	r := NewRect(2, 3, 6, 7)
	sub := a.Extract(r)
	if sub.Bounds != r {
		t.Fatalf("Extract bounds = %v, want %v", sub.Bounds, r)
	}
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			if sub.At(x, y) != a.At(x, y) {
				t.Fatal("Extract content mismatch")
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Extract outside bounds must panic")
		}
	}()
	a.Extract(NewRect(5, 5, 12, 12))
}

func TestAbsPhase(t *testing.T) {
	a := NewComplex2DSize(1, 2)
	a.Data[0] = 3 + 4i
	a.Data[1] = -1
	ab := a.Abs()
	if math.Abs(ab.Data[0]-5) > 1e-12 || math.Abs(ab.Data[1]-1) > 1e-12 {
		t.Fatal("Abs mismatch")
	}
	ph := a.Phase()
	if math.Abs(ph.Data[1]-math.Pi) > 1e-12 {
		t.Fatal("Phase mismatch")
	}
}

func TestIsFinite(t *testing.T) {
	a := NewComplex2DSize(2, 2)
	if !a.IsFinite() {
		t.Fatal("zero array must be finite")
	}
	a.Data[2] = complex(math.NaN(), 0)
	if a.IsFinite() {
		t.Fatal("NaN must be detected")
	}
	a.Data[2] = complex(0, math.Inf(1))
	if a.IsFinite() {
		t.Fatal("Inf must be detected")
	}
}

func TestConj(t *testing.T) {
	a := NewComplex2DSize(1, 1)
	a.Data[0] = 2 + 3i
	a.Conj()
	if a.Data[0] != 2-3i {
		t.Fatalf("Conj = %v", a.Data[0])
	}
}

// Property: splitting an array into disjoint regions and re-assembling
// them with CopyRegion reproduces the original (partition-of-unity for
// region copies).
func TestCopyRegionPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		w := 4 + rng.Intn(12)
		h := 4 + rng.Intn(12)
		src := randComplex2D(rng, RectWH(0, 0, w, h))
		cut := 1 + rng.Intn(w-1)
		dst := NewComplex2D(src.Bounds)
		dst.CopyRegion(src, NewRect(0, 0, cut, h))
		dst.CopyRegion(src, NewRect(cut, 0, w, h))
		return dst.EqualWithin(src, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: AddRegion over a region r adds exactly the clipped content,
// i.e. dst2 - dst1 restricted to r equals src restricted to r.
func TestAddRegionDeltaProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func() bool {
		bounds := RectWH(0, 0, 10, 10)
		src := randComplex2D(rng, bounds)
		dst := randComplex2D(rng, bounds)
		before := dst.Clone()
		r := randRect(rng)
		dst.AddRegion(src, r)
		rr := r.Intersect(bounds)
		for y := 0; y < 10; y++ {
			for x := 0; x < 10; x++ {
				delta := dst.At(x, y) - before.At(x, y)
				want := complex128(0)
				if rr.Contains(x, y) {
					want = src.At(x, y)
				}
				if cmplx.Abs(delta-want) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMismatchedBoundsPanics(t *testing.T) {
	a := NewComplex2DSize(2, 2)
	b := NewComplex2DSize(3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("AddScaled with mismatched bounds must panic")
		}
	}()
	a.AddScaled(b, 1)
}
