package grid

import (
	"math"
	"math/rand"
	"testing"
)

func randFloat2D(rng *rand.Rand, bounds Rect) *Float2D {
	a := NewFloat2D(bounds)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	return a
}

func TestFloat2DAtSetOffset(t *testing.T) {
	a := NewFloat2D(NewRect(-3, -2, 1, 2))
	a.Set(-3, -2, 1.5)
	a.Set(0, 1, -2.5)
	if a.At(-3, -2) != 1.5 || a.At(0, 1) != -2.5 {
		t.Fatal("negative-offset indexing failed")
	}
	if a.Data[0] != 1.5 || a.Data[len(a.Data)-1] != -2.5 {
		t.Fatal("storage layout mismatch")
	}
}

func TestFloat2DRowAliases(t *testing.T) {
	a := NewFloat2DSize(3, 3)
	a.Row(1)[2] = 9
	if a.At(2, 1) != 9 {
		t.Fatal("Row must alias backing data")
	}
}

func TestFloat2DCloneZeroFillScale(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randFloat2D(rng, RectWH(0, 0, 5, 4))
	b := a.Clone()
	b.Scale(2)
	for i := range a.Data {
		if math.Abs(b.Data[i]-2*a.Data[i]) > 1e-12 {
			t.Fatal("Scale mismatch")
		}
	}
	b.Fill(7)
	if lo, hi := b.MinMax(); lo != 7 || hi != 7 {
		t.Fatal("Fill failed")
	}
	b.Zero()
	if b.Norm2() != 0 {
		t.Fatal("Zero failed")
	}
}

func TestFloat2DSumMeanMinMax(t *testing.T) {
	a := NewFloat2DSize(2, 2)
	copy(a.Data, []float64{1, 2, 3, -6})
	if a.Sum() != 0 {
		t.Fatalf("Sum = %g", a.Sum())
	}
	if a.Mean() != 0 {
		t.Fatalf("Mean = %g", a.Mean())
	}
	lo, hi := a.MinMax()
	if lo != -6 || hi != 3 {
		t.Fatalf("MinMax = %g,%g", lo, hi)
	}
	var empty Float2D
	if empty.Mean() != 0 {
		t.Fatal("empty Mean must be 0")
	}
	if l, h := empty.MinMax(); l != 0 || h != 0 {
		t.Fatal("empty MinMax must be 0,0")
	}
}

func TestFloat2DAddScaled(t *testing.T) {
	a := NewFloat2DSize(2, 2)
	b := NewFloat2DSize(2, 2)
	b.Fill(3)
	a.AddScaled(b, -2)
	if a.Data[0] != -6 {
		t.Fatalf("AddScaled = %g", a.Data[0])
	}
}

func TestFloat2DCopyAddRegion(t *testing.T) {
	src := NewFloat2DSize(4, 4)
	src.Fill(1)
	dst := NewFloat2D(NewRect(2, 2, 6, 6))
	dst.CopyRegion(src, NewRect(0, 0, 10, 10))
	dst.AddRegion(src, NewRect(0, 0, 10, 10))
	if dst.At(2, 2) != 2 || dst.At(3, 3) != 2 {
		t.Fatal("overlap region should be 2")
	}
	if dst.At(4, 4) != 0 {
		t.Fatal("outside source bounds should remain 0")
	}
}

func TestFloat2DExtractPanics(t *testing.T) {
	a := NewFloat2DSize(4, 4)
	sub := a.Extract(NewRect(1, 1, 3, 3))
	if sub.Bounds != NewRect(1, 1, 3, 3) {
		t.Fatal("extract bounds wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds Extract must panic")
		}
	}()
	a.Extract(NewRect(0, 0, 5, 5))
}

func TestFloat2DRMSEAndMaxDiff(t *testing.T) {
	a := NewFloat2DSize(2, 1)
	b := NewFloat2DSize(2, 1)
	a.Data[0], a.Data[1] = 1, 2
	b.Data[0], b.Data[1] = 1, 5
	if got := a.MaxDiff(b); got != 3 {
		t.Fatalf("MaxDiff = %g", got)
	}
	want := math.Sqrt(9.0 / 2.0)
	if got := a.RMSE(b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSE = %g, want %g", got, want)
	}
}

func TestFloat2DToComplex(t *testing.T) {
	a := NewFloat2DSize(1, 1)
	a.Data[0] = 4
	c := a.ToComplex()
	if c.Data[0] != 4 {
		t.Fatalf("ToComplex = %v", c.Data[0])
	}
}
