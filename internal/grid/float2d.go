package grid

import (
	"fmt"
	"math"
)

// Float2D is a dense row-major 2-D array of float64 values covering the
// region described by Bounds, mirroring Complex2D for real-valued data
// (measurement magnitudes, potentials, quality maps).
type Float2D struct {
	Bounds Rect
	Data   []float64
}

// NewFloat2D allocates a zeroed array covering bounds.
func NewFloat2D(bounds Rect) *Float2D {
	if bounds.Empty() {
		return &Float2D{Bounds: bounds}
	}
	return &Float2D{Bounds: bounds, Data: make([]float64, bounds.Area())}
}

// NewFloat2DSize allocates a zeroed w x h array anchored at the origin.
func NewFloat2DSize(w, h int) *Float2D { return NewFloat2D(RectWH(0, 0, w, h)) }

// W returns the width of the array.
func (a *Float2D) W() int { return a.Bounds.W() }

// H returns the height of the array.
func (a *Float2D) H() int { return a.Bounds.H() }

func (a *Float2D) idx(x, y int) int {
	return (y-a.Bounds.Y0)*a.Bounds.W() + (x - a.Bounds.X0)
}

// At returns the value at global coordinates (x, y).
func (a *Float2D) At(x, y int) float64 { return a.Data[a.idx(x, y)] }

// Set stores v at global coordinates (x, y).
func (a *Float2D) Set(x, y int, v float64) { a.Data[a.idx(x, y)] = v }

// Row returns the backing sub-slice for row y.
func (a *Float2D) Row(y int) []float64 {
	w := a.Bounds.W()
	off := (y - a.Bounds.Y0) * w
	return a.Data[off : off+w]
}

// Clone returns a deep copy of a.
func (a *Float2D) Clone() *Float2D {
	out := &Float2D{Bounds: a.Bounds, Data: make([]float64, len(a.Data))}
	copy(out.Data, a.Data)
	return out
}

// Zero sets every element to 0.
func (a *Float2D) Zero() {
	for i := range a.Data {
		a.Data[i] = 0
	}
}

// Fill sets every element to v.
func (a *Float2D) Fill(v float64) {
	for i := range a.Data {
		a.Data[i] = v
	}
}

// Scale multiplies every element by s.
func (a *Float2D) Scale(s float64) {
	for i := range a.Data {
		a.Data[i] *= s
	}
}

// AddScaled performs a += s*b element-wise; bounds must match.
func (a *Float2D) AddScaled(b *Float2D, s float64) {
	mustSameBounds(a.Bounds, b.Bounds)
	for i, v := range b.Data {
		a.Data[i] += s * v
	}
}

// Sum returns the sum of all elements.
func (a *Float2D) Sum() float64 {
	var s float64
	for _, v := range a.Data {
		s += v
	}
	return s
}

// Norm2 returns the squared L2 norm.
func (a *Float2D) Norm2() float64 {
	var s float64
	for _, v := range a.Data {
		s += v * v
	}
	return s
}

// MinMax returns the smallest and largest elements. Empty arrays return
// (0, 0).
func (a *Float2D) MinMax() (lo, hi float64) {
	if len(a.Data) == 0 {
		return 0, 0
	}
	lo, hi = a.Data[0], a.Data[0]
	for _, v := range a.Data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Mean returns the arithmetic mean (0 for empty arrays).
func (a *Float2D) Mean() float64 {
	if len(a.Data) == 0 {
		return 0
	}
	return a.Sum() / float64(len(a.Data))
}

// CopyRegion copies src into a over region r, clipped to both bounds.
func (a *Float2D) CopyRegion(src *Float2D, r Rect) {
	rr := r.Intersect(a.Bounds).Intersect(src.Bounds)
	if rr.Empty() {
		return
	}
	for y := rr.Y0; y < rr.Y1; y++ {
		doff := a.idx(rr.X0, y)
		soff := src.idx(rr.X0, y)
		copy(a.Data[doff:doff+rr.W()], src.Data[soff:soff+rr.W()])
	}
}

// AddRegion performs a += src over region r, clipped to both bounds.
func (a *Float2D) AddRegion(src *Float2D, r Rect) {
	rr := r.Intersect(a.Bounds).Intersect(src.Bounds)
	if rr.Empty() {
		return
	}
	for y := rr.Y0; y < rr.Y1; y++ {
		doff := a.idx(rr.X0, y)
		soff := src.idx(rr.X0, y)
		d := a.Data[doff : doff+rr.W()]
		s := src.Data[soff : soff+rr.W()]
		for i := range d {
			d[i] += s[i]
		}
	}
}

// Extract returns a newly allocated copy of region r, which must lie
// inside a's bounds.
func (a *Float2D) Extract(r Rect) *Float2D {
	if !a.Bounds.ContainsRect(r) {
		panic(fmt.Sprintf("grid: extract %v outside bounds %v", r, a.Bounds))
	}
	out := NewFloat2D(r)
	out.CopyRegion(a, r)
	return out
}

// MaxDiff returns the largest absolute element-wise difference; bounds
// must match.
func (a *Float2D) MaxDiff(b *Float2D) float64 {
	mustSameBounds(a.Bounds, b.Bounds)
	var m float64
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

// RMSE returns the root-mean-square difference between a and b, which
// must share bounds.
func (a *Float2D) RMSE(b *Float2D) float64 {
	mustSameBounds(a.Bounds, b.Bounds)
	if len(a.Data) == 0 {
		return 0
	}
	var s float64
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a.Data)))
}

// ToComplex returns a Complex2D with a as the real part.
func (a *Float2D) ToComplex() *Complex2D {
	out := NewComplex2D(a.Bounds)
	for i, v := range a.Data {
		out.Data[i] = complex(v, 0)
	}
	return out
}
