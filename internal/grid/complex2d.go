package grid

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Complex2D is a dense row-major 2-D array of complex128 values covering
// the region described by Bounds. The origin of the backing storage is
// (Bounds.X0, Bounds.Y0), so a Complex2D can directly represent an image
// tile living at an arbitrary offset inside a larger image; all region
// operations below take global coordinates and translate internally.
type Complex2D struct {
	Bounds Rect
	Data   []complex128 // len == Bounds.Area()
}

// NewComplex2D allocates a zeroed array covering bounds.
func NewComplex2D(bounds Rect) *Complex2D {
	if bounds.Empty() {
		return &Complex2D{Bounds: bounds}
	}
	return &Complex2D{Bounds: bounds, Data: make([]complex128, bounds.Area())}
}

// NewComplex2DSize allocates a zeroed w x h array anchored at the origin.
func NewComplex2DSize(w, h int) *Complex2D { return NewComplex2D(RectWH(0, 0, w, h)) }

// W returns the width of the array.
func (a *Complex2D) W() int { return a.Bounds.W() }

// H returns the height of the array.
func (a *Complex2D) H() int { return a.Bounds.H() }

// idx maps global coordinates to the backing slice index. The caller must
// ensure (x, y) is inside Bounds.
func (a *Complex2D) idx(x, y int) int {
	return (y-a.Bounds.Y0)*a.Bounds.W() + (x - a.Bounds.X0)
}

// At returns the value at global coordinates (x, y).
func (a *Complex2D) At(x, y int) complex128 { return a.Data[a.idx(x, y)] }

// Set stores v at global coordinates (x, y).
func (a *Complex2D) Set(x, y int, v complex128) { a.Data[a.idx(x, y)] = v }

// Row returns the backing sub-slice for row y restricted to Bounds'
// horizontal extent. Mutating the returned slice mutates the array.
func (a *Complex2D) Row(y int) []complex128 {
	w := a.Bounds.W()
	off := (y - a.Bounds.Y0) * w
	return a.Data[off : off+w]
}

// Clone returns a deep copy of a.
func (a *Complex2D) Clone() *Complex2D {
	out := &Complex2D{Bounds: a.Bounds, Data: make([]complex128, len(a.Data))}
	copy(out.Data, a.Data)
	return out
}

// Zero sets every element to 0.
func (a *Complex2D) Zero() {
	for i := range a.Data {
		a.Data[i] = 0
	}
}

// Fill sets every element to v.
func (a *Complex2D) Fill(v complex128) {
	for i := range a.Data {
		a.Data[i] = v
	}
}

// Scale multiplies every element by s.
func (a *Complex2D) Scale(s complex128) {
	for i := range a.Data {
		a.Data[i] *= s
	}
}

// AddScaled performs a += s*b element-wise. The arrays must share bounds.
func (a *Complex2D) AddScaled(b *Complex2D, s complex128) {
	mustSameBounds(a.Bounds, b.Bounds)
	for i, v := range b.Data {
		a.Data[i] += s * v
	}
}

// MulElem performs a *= b element-wise. The arrays must share bounds.
func (a *Complex2D) MulElem(b *Complex2D) {
	mustSameBounds(a.Bounds, b.Bounds)
	for i, v := range b.Data {
		a.Data[i] *= v
	}
}

// MulConjElem performs a *= conj(b) element-wise.
func (a *Complex2D) MulConjElem(b *Complex2D) {
	mustSameBounds(a.Bounds, b.Bounds)
	for i, v := range b.Data {
		a.Data[i] *= cmplx.Conj(v)
	}
}

// Conj conjugates every element in place.
func (a *Complex2D) Conj() {
	for i, v := range a.Data {
		a.Data[i] = cmplx.Conj(v)
	}
}

// Norm2 returns the squared Frobenius norm sum |a_ij|^2.
func (a *Complex2D) Norm2() float64 {
	var s float64
	for _, v := range a.Data {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return s
}

// MaxAbs returns the largest magnitude in the array (0 for empty arrays).
func (a *Complex2D) MaxAbs() float64 {
	var m float64
	for _, v := range a.Data {
		if ab := cmplx.Abs(v); ab > m {
			m = ab
		}
	}
	return m
}

// Sum returns the sum of all elements.
func (a *Complex2D) Sum() complex128 {
	var s complex128
	for _, v := range a.Data {
		s += v
	}
	return s
}

// region iterates rows of the intersection of r with both arrays'
// bounds, invoking fn with matching row slices.
func regionRows(dst, src *Complex2D, r Rect, fn func(d, s []complex128)) {
	rr := r.Intersect(dst.Bounds).Intersect(src.Bounds)
	if rr.Empty() {
		return
	}
	for y := rr.Y0; y < rr.Y1; y++ {
		doff := dst.idx(rr.X0, y)
		soff := src.idx(rr.X0, y)
		fn(dst.Data[doff:doff+rr.W()], src.Data[soff:soff+rr.W()])
	}
}

// CopyRegion copies src into dst over region r (global coordinates),
// clipped to both arrays' bounds.
func (a *Complex2D) CopyRegion(src *Complex2D, r Rect) {
	regionRows(a, src, r, func(d, s []complex128) { copy(d, s) })
}

// AddRegion performs dst += src over region r, clipped to both bounds.
func (a *Complex2D) AddRegion(src *Complex2D, r Rect) {
	regionRows(a, src, r, func(d, s []complex128) {
		for i := range d {
			d[i] += s[i]
		}
	})
}

// AddScaledRegion performs dst += scale*src over region r.
func (a *Complex2D) AddScaledRegion(src *Complex2D, r Rect, scale complex128) {
	regionRows(a, src, r, func(d, s []complex128) {
		for i := range d {
			d[i] += scale * s[i]
		}
	})
}

// ZeroRegion clears region r of a (clipped to bounds).
func (a *Complex2D) ZeroRegion(r Rect) {
	rr := r.Intersect(a.Bounds)
	if rr.Empty() {
		return
	}
	for y := rr.Y0; y < rr.Y1; y++ {
		off := a.idx(rr.X0, y)
		row := a.Data[off : off+rr.W()]
		for i := range row {
			row[i] = 0
		}
	}
}

// Extract returns a newly allocated copy of region r of a. The region
// must be inside a's bounds.
func (a *Complex2D) Extract(r Rect) *Complex2D {
	if !a.Bounds.ContainsRect(r) {
		panic(fmt.Sprintf("grid: extract %v outside bounds %v", r, a.Bounds))
	}
	out := NewComplex2D(r)
	out.CopyRegion(a, r)
	return out
}

// EqualWithin reports whether a and b share bounds and every element
// differs by at most tol in absolute value.
func (a *Complex2D) EqualWithin(b *Complex2D, tol float64) bool {
	if a.Bounds != b.Bounds {
		return false
	}
	for i := range a.Data {
		if cmplx.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxDiff returns the largest element-wise absolute difference between a
// and b, which must share bounds.
func (a *Complex2D) MaxDiff(b *Complex2D) float64 {
	mustSameBounds(a.Bounds, b.Bounds)
	var m float64
	for i := range a.Data {
		if d := cmplx.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

// Abs returns a new Float2D holding |a| element-wise.
func (a *Complex2D) Abs() *Float2D {
	out := NewFloat2D(a.Bounds)
	for i, v := range a.Data {
		out.Data[i] = cmplx.Abs(v)
	}
	return out
}

// Phase returns a new Float2D holding arg(a) element-wise.
func (a *Complex2D) Phase() *Float2D {
	out := NewFloat2D(a.Bounds)
	for i, v := range a.Data {
		out.Data[i] = cmplx.Phase(v)
	}
	return out
}

// IsFinite reports whether every element has finite real and imaginary
// parts (no NaN or Inf anywhere).
func (a *Complex2D) IsFinite() bool {
	for _, v := range a.Data {
		if math.IsNaN(real(v)) || math.IsNaN(imag(v)) ||
			math.IsInf(real(v), 0) || math.IsInf(imag(v), 0) {
			return false
		}
	}
	return true
}

func mustSameBounds(a, b Rect) {
	if a != b {
		panic(fmt.Sprintf("grid: bounds mismatch %v vs %v", a, b))
	}
}
