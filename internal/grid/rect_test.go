package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := NewRect(2, 3, 10, 8)
	if r.W() != 8 || r.H() != 5 || r.Area() != 40 {
		t.Fatalf("W/H/Area = %d/%d/%d, want 8/5/40", r.W(), r.H(), r.Area())
	}
	if r.Empty() {
		t.Fatal("non-degenerate rect reported empty")
	}
	if !r.Contains(2, 3) || !r.Contains(9, 7) {
		t.Fatal("corner containment failed")
	}
	if r.Contains(10, 7) || r.Contains(9, 8) || r.Contains(1, 4) {
		t.Fatal("exclusive upper bound violated")
	}
}

func TestRectWH(t *testing.T) {
	r := RectWH(5, -2, 4, 3)
	want := NewRect(5, -2, 9, 1)
	if r != want {
		t.Fatalf("RectWH = %v, want %v", r, want)
	}
}

func TestRectEmpty(t *testing.T) {
	cases := []Rect{
		{0, 0, 0, 0},
		{5, 5, 5, 10},
		{5, 5, 10, 5},
		{3, 3, 2, 9},
	}
	for _, r := range cases {
		if !r.Empty() {
			t.Errorf("%v should be empty", r)
		}
		if r.Area() != 0 {
			t.Errorf("%v area should be 0, got %d", r, r.Area())
		}
	}
}

func TestRectIntersect(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	b := NewRect(5, 5, 15, 15)
	got := a.Intersect(b)
	want := NewRect(5, 5, 10, 10)
	if got != want {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	// Disjoint rectangles intersect to the canonical empty rect.
	c := NewRect(20, 20, 30, 30)
	if got := a.Intersect(c); !got.Empty() {
		t.Fatalf("disjoint intersect = %v, want empty", got)
	}
	// Touching edges share no points (half-open semantics).
	d := NewRect(10, 0, 20, 10)
	if a.Overlaps(d) {
		t.Fatal("edge-touching rects must not overlap")
	}
}

func TestRectUnion(t *testing.T) {
	a := NewRect(0, 0, 4, 4)
	b := NewRect(6, 2, 8, 10)
	got := a.Union(b)
	want := NewRect(0, 0, 8, 10)
	if got != want {
		t.Fatalf("Union = %v, want %v", got, want)
	}
	var empty Rect
	if a.Union(empty) != a || empty.Union(a) != a {
		t.Fatal("union with empty must be identity")
	}
}

func TestRectInflateTranslateClamp(t *testing.T) {
	r := NewRect(4, 4, 8, 8)
	if got := r.Inflate(2); got != NewRect(2, 2, 10, 10) {
		t.Fatalf("Inflate(2) = %v", got)
	}
	if got := r.Inflate(-2); !got.Empty() {
		t.Fatalf("Inflate(-2) should be empty, got %v", got)
	}
	if got := r.Translate(-4, 1); got != NewRect(0, 5, 4, 9) {
		t.Fatalf("Translate = %v", got)
	}
	bounds := NewRect(0, 0, 6, 6)
	if got := r.Clamp(bounds); got != NewRect(4, 4, 6, 6) {
		t.Fatalf("Clamp = %v", got)
	}
}

func TestRectContainsRect(t *testing.T) {
	outer := NewRect(0, 0, 10, 10)
	if !outer.ContainsRect(NewRect(0, 0, 10, 10)) {
		t.Fatal("rect must contain itself")
	}
	if !outer.ContainsRect(NewRect(3, 3, 7, 7)) {
		t.Fatal("inner rect containment failed")
	}
	if outer.ContainsRect(NewRect(3, 3, 11, 7)) {
		t.Fatal("overflowing rect must not be contained")
	}
	if !outer.ContainsRect(Rect{}) {
		t.Fatal("empty rect is contained everywhere")
	}
}

// randRect produces small rectangles (possibly empty) for property tests.
func randRect(rng *rand.Rand) Rect {
	x0 := rng.Intn(21) - 10
	y0 := rng.Intn(21) - 10
	return Rect{X0: x0, Y0: y0, X1: x0 + rng.Intn(15), Y1: y0 + rng.Intn(15)}
}

func TestRectIntersectionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := randRect(rng), randRect(rng)
		ab, ba := a.Intersect(b), b.Intersect(a)
		// Commutativity.
		if ab != ba {
			return false
		}
		// The intersection is contained in both operands.
		if !ab.Empty() && (!a.ContainsRect(ab) || !b.ContainsRect(ab)) {
			return false
		}
		// Idempotence.
		return a.Intersect(a) == a || a.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRectUnionContainsOperands(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		a, b := randRect(rng), randRect(rng)
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRectIntersectAreaViaPointCount(t *testing.T) {
	// Cross-check Intersect against brute-force point membership.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		a, b := randRect(rng), randRect(rng)
		in := a.Intersect(b)
		count := 0
		for y := -12; y < 18; y++ {
			for x := -12; x < 18; x++ {
				if a.Contains(x, y) && b.Contains(x, y) {
					count++
					if !in.Contains(x, y) {
						t.Fatalf("point (%d,%d) in both %v,%v but not in %v", x, y, a, b, in)
					}
				}
			}
		}
		if count != in.Area() {
			t.Fatalf("area mismatch: counted %d, rect %v area %d", count, in, in.Area())
		}
	}
}

func TestRectString(t *testing.T) {
	if s := NewRect(1, 2, 3, 4).String(); s != "[1,3)x[2,4)" {
		t.Fatalf("String = %q", s)
	}
}
