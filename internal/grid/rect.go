// Package grid provides dense 2-D complex and real arrays together with
// the rectangle arithmetic used throughout the reconstruction pipeline.
//
// Arrays are stored row-major. A Rect describes a half-open region
// [X0,X1) x [Y0,Y1) in image coordinates, where X indexes columns and Y
// indexes rows. All tile/halo/overlap geometry in the tiling and
// parallel-algorithm packages is expressed with Rect values, so the
// operations here (intersection, union bound, clamping, translation) are
// the backbone of the decomposition math.
package grid

import "fmt"

// Rect is a half-open axis-aligned rectangle [X0,X1) x [Y0,Y1).
// X is the column (horizontal) axis and Y is the row (vertical) axis.
type Rect struct {
	X0, Y0 int // inclusive
	X1, Y1 int // exclusive
}

// NewRect returns the rectangle with the given bounds.
func NewRect(x0, y0, x1, y1 int) Rect { return Rect{X0: x0, Y0: y0, X1: x1, Y1: y1} }

// RectWH returns a rectangle anchored at (x0, y0) with width w and height h.
func RectWH(x0, y0, w, h int) Rect { return Rect{X0: x0, Y0: y0, X1: x0 + w, Y1: y0 + h} }

// W returns the width of r (number of columns). Negative extents report 0.
func (r Rect) W() int {
	if r.X1 <= r.X0 {
		return 0
	}
	return r.X1 - r.X0
}

// H returns the height of r (number of rows). Negative extents report 0.
func (r Rect) H() int {
	if r.Y1 <= r.Y0 {
		return 0
	}
	return r.Y1 - r.Y0
}

// Area returns W*H.
func (r Rect) Area() int { return r.W() * r.H() }

// Empty reports whether r contains no points.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// Contains reports whether the point (x, y) lies inside r.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// ContainsRect reports whether s is entirely inside r. An empty s is
// contained in everything.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return s.X0 >= r.X0 && s.X1 <= r.X1 && s.Y0 >= r.Y0 && s.Y1 <= r.Y1
}

// Intersect returns the intersection of r and s. The result may be empty.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		X0: max(r.X0, s.X0),
		Y0: max(r.Y0, s.Y0),
		X1: min(r.X1, s.X1),
		Y1: min(r.Y1, s.Y1),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Overlaps reports whether r and s share at least one point.
func (r Rect) Overlaps(s Rect) bool { return !r.Intersect(s).Empty() }

// Union returns the smallest rectangle containing both r and s.
// If one is empty the other is returned.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		X0: min(r.X0, s.X0),
		Y0: min(r.Y0, s.Y0),
		X1: max(r.X1, s.X1),
		Y1: max(r.Y1, s.Y1),
	}
}

// Inflate grows r by d on every side (shrinks when d < 0). The result may
// be empty when shrinking past the center.
func (r Rect) Inflate(d int) Rect {
	return Rect{X0: r.X0 - d, Y0: r.Y0 - d, X1: r.X1 + d, Y1: r.Y1 + d}
}

// Translate shifts r by (dx, dy).
func (r Rect) Translate(dx, dy int) Rect {
	return Rect{X0: r.X0 + dx, Y0: r.Y0 + dy, X1: r.X1 + dx, Y1: r.Y1 + dy}
}

// Clamp restricts r to lie inside bounds, returning the intersection.
func (r Rect) Clamp(bounds Rect) Rect { return r.Intersect(bounds) }

// Eq reports exact equality of bounds. Two empty rectangles with
// different bounds are not Eq; use Empty for emptiness checks.
func (r Rect) Eq(s Rect) bool { return r == s }

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)", r.X0, r.X1, r.Y0, r.Y1)
}
