// Package physics models the electron-optical components of a
// ptychography experiment: relativistic electron wavelength, the
// condenser-aperture probe with defocus, Fresnel free-space propagation
// between object slices, and the far-field detector mapping.
//
// Length units are picometers (pm) throughout, matching the paper's
// 10x10x125 pm^3 voxels; energies are electron-volts.
package physics

import (
	"fmt"
	"math"
	"math/cmplx"

	"ptychopath/internal/fft"
	"ptychopath/internal/grid"
)

// Physical constants (CODATA, in units convenient for pm/eV work).
const (
	// hc in eV*pm: h*c = 1239.8419... eV*nm = 1.2398e6 eV*pm.
	hcEVpm = 1.23984193e6
	// Electron rest energy in eV.
	electronRestEV = 510998.95
)

// ElectronWavelength returns the relativistic de Broglie wavelength in
// picometers for an accelerating voltage in electron-volts.
// At 200 keV this is approximately 2.508 pm.
func ElectronWavelength(energyEV float64) float64 {
	if energyEV <= 0 {
		panic(fmt.Sprintf("physics: non-positive beam energy %g", energyEV))
	}
	// lambda = hc / sqrt(E*(E + 2*m0c^2))
	return hcEVpm / math.Sqrt(energyEV*(energyEV+2*electronRestEV))
}

// Optics bundles the microscope parameters used by the paper's
// experiments: 200 keV beam, 25 nm defocus, 30 mrad probe-forming
// aperture.
type Optics struct {
	EnergyEV      float64 // beam energy, eV
	DefocusPM     float64 // defocus, pm (paper: 25 nm = 25000 pm)
	ApertureMrad  float64 // probe-forming aperture semi-angle, mrad
	PixelSizePM   float64 // transverse pixel size, pm (paper: 10 pm)
	SliceThickPM  float64 // slice thickness, pm (paper: 125 pm)
	SphericalCsPM float64 // spherical aberration Cs, pm (0 = aberration-free)
}

// PaperOptics returns the acquisition parameters from the paper's
// experiment section (Sec. VI-A).
func PaperOptics() Optics {
	return Optics{
		EnergyEV:     200e3,
		DefocusPM:    25e3,
		ApertureMrad: 30,
		PixelSizePM:  10,
		SliceThickPM: 125,
	}
}

// Wavelength returns the beam wavelength in pm.
func (o Optics) Wavelength() float64 { return ElectronWavelength(o.EnergyEV) }

// Validate reports a descriptive error for physically meaningless
// parameter combinations.
func (o Optics) Validate() error {
	switch {
	case o.EnergyEV <= 0:
		return fmt.Errorf("physics: beam energy must be positive, got %g eV", o.EnergyEV)
	case o.ApertureMrad <= 0:
		return fmt.Errorf("physics: aperture must be positive, got %g mrad", o.ApertureMrad)
	case o.PixelSizePM <= 0:
		return fmt.Errorf("physics: pixel size must be positive, got %g pm", o.PixelSizePM)
	case o.SliceThickPM <= 0:
		return fmt.Errorf("physics: slice thickness must be positive, got %g pm", o.SliceThickPM)
	}
	return nil
}

// Probe synthesizes an n x n complex probe wavefunction: a hard
// circular aperture of the configured semi-angle with defocus (and
// optional spherical-aberration) phase, inverse-transformed to real
// space and normalized to unit total intensity. The probe is centered in
// the array (fftshifted to real-space center).
func (o Optics) Probe(n int) *grid.Complex2D {
	if err := o.Validate(); err != nil {
		panic(err)
	}
	lambda := o.Wavelength()
	// Reciprocal-space pixel in 1/pm.
	dk := 1.0 / (float64(n) * o.PixelSizePM)
	kMax := (o.ApertureMrad / 1000.0) / lambda // aperture radius in 1/pm
	a := grid.NewComplex2DSize(n, n)
	for y := 0; y < n; y++ {
		ky := float64(fft.FreqIndex(y, n)) * dk
		for x := 0; x < n; x++ {
			kx := float64(fft.FreqIndex(x, n)) * dk
			k2 := kx*kx + ky*ky
			if k2 > kMax*kMax {
				continue
			}
			// Aberration phase chi(k) = pi*lambda*defocus*k^2
			//                         + (pi/2)*Cs*lambda^3*k^4.
			chi := math.Pi*lambda*o.DefocusPM*k2 +
				0.5*math.Pi*o.SphericalCsPM*lambda*lambda*lambda*k2*k2
			a.Data[y*n+x] = cmplx.Exp(complex(0, -chi))
		}
	}
	plan := fft.NewPlan2D(n, n, false)
	plan.Transform(a, fft.Inverse)
	fft.Shift(a) // center the probe in real space
	// Normalize total intensity to 1.
	norm := math.Sqrt(a.Norm2())
	if norm > 0 {
		a.Scale(complex(1/norm, 0))
	}
	return a
}

// ProbeRadiusPM estimates the real-space probe radius in pm: the radius
// of the disc containing the given energy fraction (e.g. 0.95) of the
// probe intensity. Used to size tile halos.
func ProbeRadiusPM(p *grid.Complex2D, pixelSizePM, energyFraction float64) float64 {
	n := p.W()
	cx, cy := float64(n)/2, float64(n)/2
	type rw struct {
		r float64
		w float64
	}
	samples := make([]rw, 0, len(p.Data))
	var total float64
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			v := p.Data[y*n+x]
			w := real(v)*real(v) + imag(v)*imag(v)
			if w == 0 {
				continue
			}
			dx, dy := float64(x)-cx, float64(y)-cy
			samples = append(samples, rw{r: math.Hypot(dx, dy), w: w})
			total += w
		}
	}
	if total == 0 {
		return 0
	}
	// Sort by radius (insertion into radial histogram is enough here).
	const bins = 4096
	maxR := float64(n) / 2 * math.Sqrt2
	hist := make([]float64, bins)
	for _, s := range samples {
		b := int(s.r / maxR * float64(bins-1))
		hist[b] += s.w
	}
	var acc float64
	for b, w := range hist {
		acc += w
		if acc >= energyFraction*total {
			return float64(b) / float64(bins-1) * maxR * pixelSizePM
		}
	}
	return maxR * pixelSizePM
}

// FresnelPropagator returns the reciprocal-space transfer function
// H(k) = exp(-i*pi*lambda*dz*k^2) for free-space propagation over
// distance dz (pm) on an n x n grid with the given pixel size. The
// kernel is laid out in standard FFT index order (DC at index 0).
func FresnelPropagator(n int, pixelSizePM, lambdaPM, dzPM float64) *grid.Complex2D {
	dk := 1.0 / (float64(n) * pixelSizePM)
	h := grid.NewComplex2DSize(n, n)
	for y := 0; y < n; y++ {
		ky := float64(fft.FreqIndex(y, n)) * dk
		for x := 0; x < n; x++ {
			kx := float64(fft.FreqIndex(x, n)) * dk
			k2 := kx*kx + ky*ky
			h.Data[y*n+x] = cmplx.Exp(complex(0, -math.Pi*lambdaPM*dzPM*k2))
		}
	}
	return h
}

// Propagate applies Fresnel propagation in place: psi <- F^-1(H * F psi).
// The plan must match psi's dimensions; h must be the matching kernel.
func Propagate(psi *grid.Complex2D, h *grid.Complex2D, plan *fft.Plan2D) {
	plan.Transform(psi, fft.Forward)
	for i := range psi.Data {
		psi.Data[i] *= h.Data[i]
	}
	plan.Transform(psi, fft.Inverse)
}

// PropagateAdjoint applies the adjoint of Propagate (conjugate kernel):
// psi <- F^-1(conj(H) * F psi). Because |H| = 1 this is also the inverse
// propagation, used by the gradient backward pass.
func PropagateAdjoint(psi *grid.Complex2D, h *grid.Complex2D, plan *fft.Plan2D) {
	plan.Transform(psi, fft.Forward)
	for i := range psi.Data {
		psi.Data[i] *= cmplx.Conj(h.Data[i])
	}
	plan.Transform(psi, fft.Inverse)
}
