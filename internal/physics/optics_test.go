package physics

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"ptychopath/internal/fft"
	"ptychopath/internal/grid"
)

func TestElectronWavelengthKnownValues(t *testing.T) {
	// Standard TEM reference values (pm).
	cases := []struct {
		keV  float64
		want float64
		tol  float64
	}{
		{100, 3.701, 0.01},
		{200, 2.508, 0.01},
		{300, 1.969, 0.01},
	}
	for _, c := range cases {
		got := ElectronWavelength(c.keV * 1000)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("lambda(%g keV) = %g pm, want %g±%g", c.keV, got, c.want, c.tol)
		}
	}
}

func TestElectronWavelengthPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("must panic for E <= 0")
		}
	}()
	ElectronWavelength(0)
}

func TestPaperOpticsValid(t *testing.T) {
	o := PaperOptics()
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o.EnergyEV != 200e3 || o.ApertureMrad != 30 || o.DefocusPM != 25e3 {
		t.Fatal("paper optics constants drifted")
	}
	if math.Abs(o.Wavelength()-2.508) > 0.01 {
		t.Fatalf("paper wavelength = %g", o.Wavelength())
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []Optics{
		{EnergyEV: 0, ApertureMrad: 30, PixelSizePM: 10, SliceThickPM: 125},
		{EnergyEV: 2e5, ApertureMrad: 0, PixelSizePM: 10, SliceThickPM: 125},
		{EnergyEV: 2e5, ApertureMrad: 30, PixelSizePM: 0, SliceThickPM: 125},
		{EnergyEV: 2e5, ApertureMrad: 30, PixelSizePM: 10, SliceThickPM: 0},
	}
	for i, o := range bad {
		if o.Validate() == nil {
			t.Errorf("case %d: Validate accepted invalid optics", i)
		}
	}
}

func TestProbeNormalizedAndCentered(t *testing.T) {
	o := PaperOptics()
	p := o.Probe(64)
	if got := p.Norm2(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("probe intensity = %g, want 1", got)
	}
	// Intensity centroid should be at the array center.
	var cx, cy, tot float64
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			w := cmplx.Abs(p.At(x, y))
			w *= w
			cx += float64(x) * w
			cy += float64(y) * w
			tot += w
		}
	}
	cx /= tot
	cy /= tot
	// The 25 nm defocused probe is larger than a 64 px window, so tails
	// wrap and skew the centroid slightly; a couple of pixels is fine.
	if math.Abs(cx-32) > 2.0 || math.Abs(cy-32) > 2.0 {
		t.Fatalf("probe centroid (%g, %g), want near (32, 32)", cx, cy)
	}
	if !p.IsFinite() {
		t.Fatal("probe has non-finite values")
	}
}

func TestProbeDefocusSpreadsProbe(t *testing.T) {
	// More defocus must enlarge the real-space probe footprint.
	inFocus := PaperOptics()
	inFocus.DefocusPM = 0
	defocused := PaperOptics()
	defocused.DefocusPM = 50e3

	rIn := ProbeRadiusPM(inFocus.Probe(128), inFocus.PixelSizePM, 0.9)
	rOut := ProbeRadiusPM(defocused.Probe(128), defocused.PixelSizePM, 0.9)
	if rOut <= rIn {
		t.Fatalf("defocused radius %g pm <= focused radius %g pm", rOut, rIn)
	}
}

func TestProbeRadiusEnergyFractionMonotone(t *testing.T) {
	o := PaperOptics()
	p := o.Probe(64)
	r50 := ProbeRadiusPM(p, o.PixelSizePM, 0.5)
	r90 := ProbeRadiusPM(p, o.PixelSizePM, 0.9)
	r99 := ProbeRadiusPM(p, o.PixelSizePM, 0.99)
	if !(r50 < r90 && r90 < r99) {
		t.Fatalf("radius not monotone in energy fraction: %g %g %g", r50, r90, r99)
	}
	if r50 <= 0 {
		t.Fatal("radius must be positive")
	}
}

func TestFresnelPropagatorUnitModulus(t *testing.T) {
	h := FresnelPropagator(32, 10, 2.508, 125)
	for i, v := range h.Data {
		if math.Abs(cmplx.Abs(v)-1) > 1e-12 {
			t.Fatalf("|H[%d]| = %g, want 1", i, cmplx.Abs(v))
		}
	}
	// DC component must be exactly 1 (no phase at k=0).
	if cmplx.Abs(h.Data[0]-1) > 1e-12 {
		t.Fatalf("H[0] = %v, want 1", h.Data[0])
	}
}

func TestPropagateEnergyConservation(t *testing.T) {
	// |H| = 1 implies propagation conserves total intensity.
	rng := rand.New(rand.NewSource(1))
	n := 32
	psi := grid.NewComplex2DSize(n, n)
	for i := range psi.Data {
		psi.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	before := psi.Norm2()
	h := FresnelPropagator(n, 10, 2.508, 125)
	plan := fft.NewPlan2D(n, n, false)
	Propagate(psi, h, plan)
	after := psi.Norm2()
	if math.Abs(after-before) > 1e-9*before {
		t.Fatalf("propagation changed energy: %g -> %g", before, after)
	}
}

func TestPropagateAdjointIsInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 16
	psi := grid.NewComplex2DSize(n, n)
	for i := range psi.Data {
		psi.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	orig := psi.Clone()
	h := FresnelPropagator(n, 10, 2.508, 125)
	plan := fft.NewPlan2D(n, n, false)
	Propagate(psi, h, plan)
	PropagateAdjoint(psi, h, plan)
	if psi.MaxDiff(orig) > 1e-10 {
		t.Fatalf("adjoint did not invert propagation: %g", psi.MaxDiff(orig))
	}
}

func TestPropagateAdjointInnerProduct(t *testing.T) {
	// <P a, b> == <a, P^H b> — the defining adjoint property.
	rng := rand.New(rand.NewSource(3))
	n := 16
	newRand := func() *grid.Complex2D {
		a := grid.NewComplex2DSize(n, n)
		for i := range a.Data {
			a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		return a
	}
	a, b := newRand(), newRand()
	h := FresnelPropagator(n, 10, 2.508, 125)
	plan := fft.NewPlan2D(n, n, false)

	pa := a.Clone()
	Propagate(pa, h, plan)
	phb := b.Clone()
	PropagateAdjoint(phb, h, plan)

	dot := func(u, v *grid.Complex2D) complex128 {
		var s complex128
		for i := range u.Data {
			s += u.Data[i] * cmplx.Conj(v.Data[i])
		}
		return s
	}
	lhs := dot(pa, b)
	rhs := dot(a, phb)
	if cmplx.Abs(lhs-rhs) > 1e-9*(1+cmplx.Abs(lhs)) {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestZeroDistancePropagatorIsIdentity(t *testing.T) {
	h := FresnelPropagator(8, 10, 2.508, 0)
	for _, v := range h.Data {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatal("dz=0 propagator must be identity")
		}
	}
}

func TestProbeApertureCutoff(t *testing.T) {
	// The probe spectrum must vanish outside the aperture angle.
	o := PaperOptics()
	n := 64
	p := o.Probe(n)
	fft.Unshift(p) // undo real-space centering
	plan := fft.NewPlan2D(n, n, false)
	plan.Transform(p, fft.Forward)
	lambda := o.Wavelength()
	dk := 1.0 / (float64(n) * o.PixelSizePM)
	kMax := (o.ApertureMrad / 1000) / lambda
	for y := 0; y < n; y++ {
		ky := float64(fft.FreqIndex(y, n)) * dk
		for x := 0; x < n; x++ {
			kx := float64(fft.FreqIndex(x, n)) * dk
			if kx*kx+ky*ky > kMax*kMax*1.0001 {
				if cmplx.Abs(p.At(x, y)) > 1e-9 {
					t.Fatalf("spectrum leak outside aperture at (%d,%d): %g",
						x, y, cmplx.Abs(p.At(x, y)))
				}
			}
		}
	}
}

func TestSphericalAberrationChangesProbe(t *testing.T) {
	clean := PaperOptics()
	aberr := PaperOptics()
	aberr.SphericalCsPM = 1e9 // 1 mm Cs, a typical uncorrected value
	p1 := clean.Probe(64)
	p2 := aberr.Probe(64)
	if p1.MaxDiff(p2) < 1e-6 {
		t.Fatal("spherical aberration had no effect on the probe")
	}
	// Aberration redistributes phase, not energy: both stay normalized.
	if math.Abs(p2.Norm2()-1) > 1e-9 {
		t.Fatalf("aberrated probe norm %g", p2.Norm2())
	}
}
