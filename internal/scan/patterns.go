package scan

import (
	"fmt"
	"math"
)

// Serpentine generates a boustrophedon ("snake") scan: odd rows run
// right-to-left so the stage never makes a long flyback move. Index
// order still records acquisition time, which is what distinguishes it
// from Raster for streaming and delayed-accumulation behaviour.
func Serpentine(c RasterConfig) (*Pattern, error) {
	p, err := Raster(c)
	if err != nil {
		return nil, err
	}
	// Reverse the X positions of odd rows while keeping time order.
	for row := 1; row < c.Rows; row += 2 {
		lo := row * c.Cols
		hi := lo + c.Cols - 1
		for i, j := lo, hi; i < j; i, j = i+1, j-1 {
			p.Locations[i].X, p.Locations[j].X = p.Locations[j].X, p.Locations[i].X
		}
	}
	return p, nil
}

// SpiralConfig describes a Fermat-spiral scan, the standard pattern for
// suppressing raster-grid artifacts ("raster pathology") in
// ptychography.
type SpiralConfig struct {
	// N is the number of probe locations.
	N int
	// StepPix controls the average density: the spiral is scaled so
	// neighboring points sit roughly StepPix apart.
	StepPix float64
	// RadiusPix is the probe circle radius.
	RadiusPix float64
	// MarginPix pads the image border (defaults to RadiusPix).
	MarginPix float64
}

// Validate reports an error for degenerate configurations.
func (c SpiralConfig) Validate() error {
	switch {
	case c.N <= 0:
		return fmt.Errorf("scan: spiral needs positive N, got %d", c.N)
	case c.StepPix <= 0:
		return fmt.Errorf("scan: step must be positive, got %g", c.StepPix)
	case c.RadiusPix <= 0:
		return fmt.Errorf("scan: radius must be positive, got %g", c.RadiusPix)
	}
	return nil
}

// Spiral generates a Fermat spiral: point k sits at radius
// StepPix*sqrt(k)*c and golden-angle azimuth, giving uniform area
// density without any raster axis.
func Spiral(c SpiralConfig) (*Pattern, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	margin := c.MarginPix
	if margin == 0 {
		margin = c.RadiusPix
	}
	const golden = 2.39996322972865332 // radians
	// Scale so consecutive rings are ~StepPix apart: r_k = s*sqrt(k)
	// with s chosen so that density matches a grid of pitch StepPix.
	s := c.StepPix / math.Sqrt(math.Pi) * 1.9
	maxR := s * math.Sqrt(float64(c.N-1))
	center := margin + maxR
	locs := make([]Location, c.N)
	for k := 0; k < c.N; k++ {
		r := s * math.Sqrt(float64(k))
		th := float64(k) * golden
		locs[k] = Location{
			Index:  k,
			X:      center + r*math.Cos(th),
			Y:      center + r*math.Sin(th),
			Radius: c.RadiusPix,
		}
	}
	extent := int(math.Ceil(2 * center))
	return &Pattern{
		Locations: locs,
		ImageW:    extent,
		ImageH:    extent,
		StepPix:   c.StepPix,
		RadiusPix: c.RadiusPix,
	}, nil
}
