package scan

import (
	"math"
	"testing"

	"ptychopath/internal/grid"
)

func TestRasterOrderMatchesFig1b(t *testing.T) {
	// 3x3 grid: indices must run left-to-right, top-to-bottom (Fig 1(b)).
	p, err := Raster(RasterConfig{Cols: 3, Rows: 3, StepPix: 10, RadiusPix: 8})
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 9 {
		t.Fatalf("N = %d, want 9", p.N())
	}
	for i, l := range p.Locations {
		if l.Index != i {
			t.Fatalf("location %d has index %d", i, l.Index)
		}
		wantX := 8.0 + float64(i%3)*10
		wantY := 8.0 + float64(i/3)*10
		if l.X != wantX || l.Y != wantY {
			t.Fatalf("location %d at (%g,%g), want (%g,%g)", i, l.X, l.Y, wantX, wantY)
		}
	}
	// Location 3 (start of second row) must be below location 0.
	if p.Locations[3].Y <= p.Locations[0].Y {
		t.Fatal("second raster row must be below the first")
	}
}

func TestRasterImageExtent(t *testing.T) {
	p, err := Raster(RasterConfig{Cols: 4, Rows: 2, StepPix: 5, RadiusPix: 3})
	if err != nil {
		t.Fatal(err)
	}
	// margin defaults to radius: extent = 2*3 + 3*5 = 21 wide, 2*3+5=11 high.
	if p.ImageW != 21 || p.ImageH != 11 {
		t.Fatalf("extent = %dx%d, want 21x11", p.ImageW, p.ImageH)
	}
	// Every circle must fit inside the image bounds.
	for _, l := range p.Locations {
		if !p.Bounds().ContainsRect(l.Circle().Clamp(p.Bounds())) {
			t.Fatal("clamped circle escaping bounds")
		}
	}
}

func TestValidateRejectsDegenerate(t *testing.T) {
	bad := []RasterConfig{
		{Cols: 0, Rows: 3, StepPix: 1, RadiusPix: 1},
		{Cols: 3, Rows: -1, StepPix: 1, RadiusPix: 1},
		{Cols: 3, Rows: 3, StepPix: 0, RadiusPix: 1},
		{Cols: 3, Rows: 3, StepPix: 1, RadiusPix: 0},
		{Cols: 3, Rows: 3, StepPix: 1, RadiusPix: 1, Jitter: -1},
	}
	for i, c := range bad {
		if _, err := Raster(c); err == nil {
			t.Errorf("case %d: Raster accepted invalid config", i)
		}
	}
}

func TestOverlapRatio(t *testing.T) {
	c := RasterConfig{Cols: 2, Rows: 2, StepPix: 4, RadiusPix: 10}
	if got := c.OverlapRatio(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("overlap = %g, want 0.8", got)
	}
	step := StepForOverlap(10, 0.8)
	if math.Abs(step-4) > 1e-12 {
		t.Fatalf("StepForOverlap = %g, want 4", step)
	}
}

func TestStepForOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overlap >= 1 must panic")
		}
	}()
	StepForOverlap(10, 1)
}

func TestHighOverlapCoverage(t *testing.T) {
	// With >70% overlap, interior pixels must be covered by several circles.
	c := RasterConfig{Cols: 5, Rows: 5, StepPix: StepForOverlap(10, 0.75), RadiusPix: 10}
	p, err := Raster(c)
	if err != nil {
		t.Fatal(err)
	}
	cov := p.CoverageCount()
	// Center of the scan.
	cx, cy := p.ImageW/2, p.ImageH/2
	if cov.At(cx, cy) < 4 {
		t.Fatalf("center coverage = %g, want >= 4 at 75%% overlap", cov.At(cx, cy))
	}
	// No pixel covered by a circle should exceed the total count.
	_, hi := cov.MinMax()
	if hi > float64(p.N()) {
		t.Fatal("coverage exceeds number of locations")
	}
}

func TestCircleBoundingBoxContainsCircle(t *testing.T) {
	l := Location{X: 20.3, Y: 11.7, Radius: 5.2}
	bb := l.Circle()
	for yi := bb.Y0; yi < bb.Y1; yi++ {
		for xi := bb.X0; xi < bb.X1; xi++ {
			_ = xi
		}
	}
	// All points within the radius must fall inside the box.
	for ang := 0.0; ang < 2*math.Pi; ang += 0.1 {
		x := int(math.Floor(l.X + l.Radius*math.Cos(ang)))
		y := int(math.Floor(l.Y + l.Radius*math.Sin(ang)))
		if !bb.Contains(x, y) {
			t.Fatalf("circle point (%d,%d) outside bounding box %v", x, y, bb)
		}
	}
}

func TestWindowCenteredOnLocation(t *testing.T) {
	l := Location{X: 33, Y: 17, Radius: 5}
	w := l.Window(16)
	if w.W() != 16 || w.H() != 16 {
		t.Fatalf("window size %dx%d", w.W(), w.H())
	}
	if w.X0 != 33-8 || w.Y0 != 17-8 {
		t.Fatalf("window anchor (%d,%d)", w.X0, w.Y0)
	}
}

func TestLocationsInPartition(t *testing.T) {
	// Splitting the image into two half-planes must partition the
	// locations: every index appears exactly once.
	p, err := Raster(RasterConfig{Cols: 6, Rows: 4, StepPix: 7, RadiusPix: 6})
	if err != nil {
		t.Fatal(err)
	}
	mid := p.ImageW / 2
	left := p.LocationsIn(grid.NewRect(0, 0, mid, p.ImageH))
	right := p.LocationsIn(grid.NewRect(mid, 0, p.ImageW, p.ImageH))
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, left...), right...) {
		if seen[i] {
			t.Fatalf("location %d assigned twice", i)
		}
		seen[i] = true
	}
	if len(seen) != p.N() {
		t.Fatalf("partition lost locations: %d of %d", len(seen), p.N())
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	c := RasterConfig{Cols: 4, Rows: 4, StepPix: 10, RadiusPix: 8, Jitter: 1.5}
	p1, err := Raster(c)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := Raster(c)
	for i := range p1.Locations {
		if p1.Locations[i] != p2.Locations[i] {
			t.Fatal("jitter must be deterministic")
		}
	}
	base, _ := Raster(RasterConfig{Cols: 4, Rows: 4, StepPix: 10, RadiusPix: 8})
	var moved bool
	for i := range p1.Locations {
		dx := p1.Locations[i].X - base.Locations[i].X
		dy := p1.Locations[i].Y - base.Locations[i].Y
		if math.Abs(dx) > 1.5 || math.Abs(dy) > 1.5 {
			t.Fatalf("jitter exceeded amplitude: (%g,%g)", dx, dy)
		}
		if dx != 0 || dy != 0 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("jitter had no effect")
	}
}

func TestMaxCircleSpan(t *testing.T) {
	p, err := Raster(RasterConfig{Cols: 2, Rows: 2, StepPix: 5, RadiusPix: 7})
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxCircleSpanPix() != 7 {
		t.Fatalf("MaxCircleSpanPix = %g", p.MaxCircleSpanPix())
	}
}
