// Package scan generates and manipulates probe scan patterns: the raster
// order the paper's Fig 1(b) describes, probe-location circles, overlap
// ratios, and the bookkeeping needed to assign locations to image tiles.
//
// Coordinates are in pixels of the reconstruction grid; the conversion
// from physical step sizes happens at dataset-construction time.
package scan

import (
	"fmt"
	"math"

	"ptychopath/internal/grid"
)

// Location is a single probe position: the index records acquisition
// time order (Fig 1(b)); X, Y are the circle center in image pixels;
// Radius is the probe circle radius in pixels.
type Location struct {
	Index  int
	X, Y   float64
	Radius float64
}

// Circle returns the bounding box of the probe circle, clipped to no
// particular image (callers clamp as needed).
func (l Location) Circle() grid.Rect {
	return grid.NewRect(
		int(math.Floor(l.X-l.Radius)),
		int(math.Floor(l.Y-l.Radius)),
		int(math.Ceil(l.X+l.Radius))+1,
		int(math.Ceil(l.Y+l.Radius))+1,
	)
}

// Window returns the n x n probe-window rectangle centered on the
// location (the region the multislice model transforms). The window is
// anchored so the circle center is as close to the window center as
// integer coordinates allow.
func (l Location) Window(n int) grid.Rect {
	x0 := int(math.Round(l.X)) - n/2
	y0 := int(math.Round(l.Y)) - n/2
	return grid.RectWH(x0, y0, n, n)
}

// Pattern is an ordered list of probe locations over an image.
type Pattern struct {
	Locations []Location
	// ImageW, ImageH are the reconstruction extents in pixels.
	ImageW, ImageH int
	// StepPix is the raster step between adjacent locations in pixels.
	StepPix float64
	// RadiusPix is the probe circle radius in pixels.
	RadiusPix float64
}

// RasterConfig describes a raster-scan acquisition.
type RasterConfig struct {
	// Cols, Rows: number of probe locations per row and number of rows.
	Cols, Rows int
	// StepPix is the distance between adjacent probe centers, pixels.
	StepPix float64
	// RadiusPix is the probe circle radius, pixels.
	RadiusPix float64
	// MarginPix is the distance from the image border to the first
	// probe center. Defaults to RadiusPix when zero.
	MarginPix float64
	// Jitter adds deterministic pseudo-random positional noise of the
	// given amplitude (pixels) to emulate stage imprecision. Zero keeps
	// a perfect grid.
	Jitter float64
}

// Validate reports an error for degenerate configurations.
func (c RasterConfig) Validate() error {
	switch {
	case c.Cols <= 0 || c.Rows <= 0:
		return fmt.Errorf("scan: grid must be positive, got %dx%d", c.Cols, c.Rows)
	case c.StepPix <= 0:
		return fmt.Errorf("scan: step must be positive, got %g", c.StepPix)
	case c.RadiusPix <= 0:
		return fmt.Errorf("scan: radius must be positive, got %g", c.RadiusPix)
	case c.Jitter < 0:
		return fmt.Errorf("scan: jitter must be non-negative, got %g", c.Jitter)
	}
	return nil
}

// OverlapRatio returns the linear overlap ratio between adjacent probe
// circles: 1 - step/(2*radius). Ptychography needs > 0.7 for artifact-
// free reconstruction per the paper's Sec. II-A.
func (c RasterConfig) OverlapRatio() float64 {
	return 1 - c.StepPix/(2*c.RadiusPix)
}

// StepForOverlap returns the raster step (pixels) that produces the
// requested linear overlap ratio for the given probe radius.
func StepForOverlap(radiusPix, overlap float64) float64 {
	if overlap < 0 || overlap >= 1 {
		panic(fmt.Sprintf("scan: overlap ratio must be in [0,1), got %g", overlap))
	}
	return 2 * radiusPix * (1 - overlap)
}

// Raster generates the raster-order pattern of Fig 1(b): left-to-right
// within a row, rows top-to-bottom, acquisition index increasing in time
// order. The image extent is derived from the scan footprint plus
// margins.
func Raster(c RasterConfig) (*Pattern, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	margin := c.MarginPix
	if margin == 0 {
		margin = c.RadiusPix
	}
	locs := make([]Location, 0, c.Cols*c.Rows)
	// Deterministic jitter from a tiny splitmix-style hash so patterns
	// are reproducible without seeding a global RNG.
	jit := func(i int) (float64, float64) {
		if c.Jitter == 0 {
			return 0, 0
		}
		z := uint64(i)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
		z ^= z >> 30
		z *= 0x94D049BB133111EB
		z ^= z >> 27
		u1 := float64(z&0xFFFFFFFF) / float64(0x100000000) // [0,1)
		u2 := float64(z>>32) / float64(0x100000000)
		return (u1*2 - 1) * c.Jitter, (u2*2 - 1) * c.Jitter
	}
	idx := 0
	for row := 0; row < c.Rows; row++ {
		for col := 0; col < c.Cols; col++ {
			dx, dy := jit(idx)
			locs = append(locs, Location{
				Index:  idx,
				X:      margin + float64(col)*c.StepPix + dx,
				Y:      margin + float64(row)*c.StepPix + dy,
				Radius: c.RadiusPix,
			})
			idx++
		}
	}
	w := int(math.Ceil(2*margin + float64(c.Cols-1)*c.StepPix))
	h := int(math.Ceil(2*margin + float64(c.Rows-1)*c.StepPix))
	return &Pattern{
		Locations: locs,
		ImageW:    w,
		ImageH:    h,
		StepPix:   c.StepPix,
		RadiusPix: c.RadiusPix,
	}, nil
}

// Bounds returns the image rectangle [0,ImageW) x [0,ImageH).
func (p *Pattern) Bounds() grid.Rect { return grid.RectWH(0, 0, p.ImageW, p.ImageH) }

// N returns the number of probe locations.
func (p *Pattern) N() int { return len(p.Locations) }

// CoverageCount returns, for each image pixel, how many probe circles
// contain it — a diagnostic for scan density and the basis for overlap
// assertions in tests.
func (p *Pattern) CoverageCount() *grid.Float2D {
	cov := grid.NewFloat2D(p.Bounds())
	for _, l := range p.Locations {
		bb := l.Circle().Clamp(cov.Bounds)
		r2 := l.Radius * l.Radius
		for y := bb.Y0; y < bb.Y1; y++ {
			dy := float64(y) - l.Y
			for x := bb.X0; x < bb.X1; x++ {
				dx := float64(x) - l.X
				if dx*dx+dy*dy <= r2 {
					cov.Set(x, y, cov.At(x, y)+1)
				}
			}
		}
	}
	return cov
}

// LocationsIn returns the indices of locations whose centers fall inside
// region r, preserving acquisition order. This is the assignment rule
// both parallel algorithms use ("circle-center containment").
func (p *Pattern) LocationsIn(r grid.Rect) []int {
	var out []int
	for i, l := range p.Locations {
		if r.Contains(int(math.Round(l.X)), int(math.Round(l.Y))) {
			out = append(out, i)
		}
	}
	return out
}

// MaxCircleSpanPix returns the largest extent any probe circle reaches
// beyond its center, i.e. the halo width needed for a tile to cover its
// own circles entirely.
func (p *Pattern) MaxCircleSpanPix() float64 {
	var m float64
	for _, l := range p.Locations {
		if l.Radius > m {
			m = l.Radius
		}
	}
	return m
}
