package scan

import (
	"math"
	"testing"
)

func TestSerpentineReversesOddRows(t *testing.T) {
	c := RasterConfig{Cols: 4, Rows: 3, StepPix: 10, RadiusPix: 8}
	r, err := Raster(c)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Serpentine(c)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 identical.
	for i := 0; i < 4; i++ {
		if s.Locations[i] != r.Locations[i] {
			t.Fatalf("row 0 must match raster at %d", i)
		}
	}
	// Row 1 X-reversed: serpentine location 4 sits where raster 7 sits.
	if s.Locations[4].X != r.Locations[7].X {
		t.Fatalf("row 1 not reversed: %g vs %g", s.Locations[4].X, r.Locations[7].X)
	}
	if s.Locations[4].Y != r.Locations[4].Y {
		t.Fatal("Y must be unchanged")
	}
	// Row 2 identical again.
	if s.Locations[8] != r.Locations[8] {
		t.Fatal("row 2 must match raster")
	}
	// Time order preserved.
	for i, l := range s.Locations {
		if l.Index != i {
			t.Fatal("acquisition indices must stay ordered")
		}
	}
}

func TestSerpentineMinimizesJumpDistance(t *testing.T) {
	// The defining property: the largest move between consecutive
	// locations is smaller than raster's flyback.
	c := RasterConfig{Cols: 6, Rows: 4, StepPix: 10, RadiusPix: 8}
	maxJump := func(p *Pattern) float64 {
		var m float64
		for i := 1; i < p.N(); i++ {
			dx := p.Locations[i].X - p.Locations[i-1].X
			dy := p.Locations[i].Y - p.Locations[i-1].Y
			if d := math.Hypot(dx, dy); d > m {
				m = d
			}
		}
		return m
	}
	r, _ := Raster(c)
	s, _ := Serpentine(c)
	if maxJump(s) >= maxJump(r) {
		t.Fatalf("serpentine jump %g not below raster flyback %g", maxJump(s), maxJump(r))
	}
}

func TestSerpentinePropagatesConfigErrors(t *testing.T) {
	if _, err := Serpentine(RasterConfig{Cols: 0, Rows: 1, StepPix: 1, RadiusPix: 1}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSpiralBasics(t *testing.T) {
	p, err := Spiral(SpiralConfig{N: 100, StepPix: 5, RadiusPix: 8})
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 100 {
		t.Fatalf("N = %d", p.N())
	}
	// All locations inside the image.
	for _, l := range p.Locations {
		if l.X < 0 || l.Y < 0 || l.X >= float64(p.ImageW) || l.Y >= float64(p.ImageH) {
			t.Fatalf("location %d at (%g,%g) outside %dx%d", l.Index, l.X, l.Y, p.ImageW, p.ImageH)
		}
	}
	// Radii monotonically non-decreasing from the spiral center (the
	// image center up to integer-extent rounding, hence the tolerance).
	cx, cy := float64(p.ImageW)/2, float64(p.ImageH)/2
	prev := -1.0
	for _, l := range p.Locations {
		r := math.Hypot(l.X-cx, l.Y-cy)
		if r < prev-1.0 {
			t.Fatalf("spiral radius shrank: %g after %g", r, prev)
		}
		if r > prev {
			prev = r
		}
	}
}

func TestSpiralDensityNearStep(t *testing.T) {
	// Average nearest-neighbor distance should be within 2x of StepPix.
	p, err := Spiral(SpiralConfig{N: 200, StepPix: 6, RadiusPix: 8})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i, a := range p.Locations {
		best := math.Inf(1)
		for j, b := range p.Locations {
			if i == j {
				continue
			}
			d := math.Hypot(a.X-b.X, a.Y-b.Y)
			if d < best {
				best = d
			}
		}
		sum += best
	}
	mean := sum / float64(p.N())
	if mean < 3 || mean > 12 {
		t.Fatalf("mean nearest-neighbor distance %g, want near step 6", mean)
	}
}

func TestSpiralNoRasterAxis(t *testing.T) {
	// No two consecutive points share a Y coordinate (unlike raster) —
	// the anti-raster-pathology property.
	p, err := Spiral(SpiralConfig{N: 64, StepPix: 5, RadiusPix: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 1; i < p.N(); i++ {
		if math.Abs(p.Locations[i].Y-p.Locations[i-1].Y) < 1e-9 {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("%d consecutive equal-Y pairs; spiral should have ~0", same)
	}
}

func TestSpiralValidation(t *testing.T) {
	bad := []SpiralConfig{
		{N: 0, StepPix: 5, RadiusPix: 8},
		{N: 10, StepPix: 0, RadiusPix: 8},
		{N: 10, StepPix: 5, RadiusPix: 0},
	}
	for i, c := range bad {
		if _, err := Spiral(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSpiralWorksWithTilingAssignment(t *testing.T) {
	// Spiral locations must partition across tiles like raster ones do
	// (the decomposition is pattern-agnostic).
	p, err := Spiral(SpiralConfig{N: 80, StepPix: 6, RadiusPix: 8})
	if err != nil {
		t.Fatal(err)
	}
	cov := p.CoverageCount()
	if _, hi := cov.MinMax(); hi < 2 {
		t.Fatal("spiral should produce overlapping coverage")
	}
}
