// Package gridworker is the worker-process runtime of the distributed
// grid: it dials the coordinator hub (internal/transport), waits for
// session setups, runs ONE rank of the selected reconstruction engine
// per session — the engines are the unmodified gradsync/halo RunRank
// entry points, driven over the TCP transport instead of the in-process
// world — and ships the rank's outcome back for stitching.
//
// cmd/ptychoworker is a thin flag wrapper around Run; the capstone
// tests drive Run directly over loopback TCP.
package gridworker

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"ptychopath/internal/dataio"
	"ptychopath/internal/gradsync"
	"ptychopath/internal/grid"
	"ptychopath/internal/halo"
	"ptychopath/internal/tiling"
	"ptychopath/internal/transport"
)

// Options configures a worker process.
type Options struct {
	// Name identifies the worker in the coordinator's registry.
	// Default: hostname-pid.
	Name string
	// Ranks is how many rank endpoints this process contributes (each
	// is an independent connection and can serve a different session).
	// Default 1.
	Ranks int
	// Timeout bounds blocking transport operations while idle; sessions
	// override it. 0 selects the transport default.
	Timeout time.Duration
	// Reconnect keeps the worker dialing (1 s backoff) when the
	// coordinator is unreachable or restarts, instead of exiting.
	Reconnect bool
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
	// StatsDelay, when non-nil, injects a synchronous delay into the
	// rank's per-iteration stats path: the worker sleeps the returned
	// duration inside the engine loop and reports it as extra compute
	// time. A fault-injection hook for exercising the coordinator's
	// straggler detection against a genuinely slowed rank; production
	// workers leave it nil.
	StatsDelay func(rank, iter int) time.Duration
}

func (o *Options) setDefaults() {
	if o.Name == "" {
		host, _ := os.Hostname()
		o.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if o.Ranks <= 0 {
		o.Ranks = 1
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Run connects Options.Ranks endpoints to the coordinator at addr and
// serves sessions until ctx is cancelled (connections close immediately
// — a mid-session cancel looks like a worker loss to the coordinator,
// which fails the job over to its last checkpoint). Without Reconnect
// it returns the first connection error; with it, only ctx ends it.
func Run(ctx context.Context, addr string, opts Options) error {
	opts.setDefaults()
	var wg sync.WaitGroup
	errs := make([]error, opts.Ranks)
	for i := 0; i < opts.Ranks; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			name := opts.Name
			if opts.Ranks > 1 {
				name = fmt.Sprintf("%s/%d", opts.Name, slot)
			}
			errs[slot] = runLoop(ctx, addr, name, opts)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

func runLoop(ctx context.Context, addr, name string, opts Options) error {
	for {
		c, err := transport.Dial(addr, transport.DialOptions{Name: name, Timeout: opts.Timeout})
		if err == nil {
			opts.Logf("%s: connected to %s as worker %d", name, addr, c.ID())
			err = serve(ctx, c, name, opts)
			c.Close()
		}
		if ctx.Err() != nil {
			return nil
		}
		if !opts.Reconnect {
			return err
		}
		opts.Logf("%s: %v; reconnecting", name, err)
		select {
		case <-time.After(time.Second):
		case <-ctx.Done():
			return nil
		}
	}
}

// serve handles sessions on one connection until it dies or ctx fires.
func serve(ctx context.Context, c *transport.Client, name string, opts Options) error {
	stop := context.AfterFunc(ctx, func() { c.Close() })
	defer stop()
	for {
		sctx, sessCancel := context.WithCancel(ctx)
		setup, err := c.WaitSetup(ctx, sessCancel)
		if err != nil {
			sessCancel()
			return err
		}
		if setup.Trace != "" {
			opts.Logf("%s: session %s rank %d/%d (%s %dx%d mesh, trace %s)",
				name, setup.JobID, setup.Rank, setup.Size, setup.Algorithm, setup.MeshRows, setup.MeshCols, setup.Trace)
		} else {
			opts.Logf("%s: session %s rank %d/%d (%s %dx%d mesh)",
				name, setup.JobID, setup.Rank, setup.Size, setup.Algorithm, setup.MeshRows, setup.MeshCols)
		}
		res := runSession(sctx, c, setup, opts)
		sessCancel()
		if err := c.SendResult(res); err != nil {
			return err
		}
		if res.Err != "" {
			opts.Logf("%s: session %s rank %d failed: %s", name, setup.JobID, setup.Rank, res.Err)
		} else {
			opts.Logf("%s: session %s rank %d done", name, setup.JobID, setup.Rank)
		}
	}
}

// runSession executes one rank of one session; engine failures are
// reported in-band through RankResult.Err, never by tearing the
// connection down.
func runSession(ctx context.Context, c *transport.Client, setup *transport.Setup, opts Options) *transport.RankResult {
	fail := func(err error) *transport.RankResult {
		return &transport.RankResult{Rank: setup.Rank, Err: err.Error()}
	}
	prob, err := dataio.Read(bytes.NewReader(setup.Problem))
	if err != nil {
		return fail(fmt.Errorf("decoding problem: %w", err))
	}
	init, err := dataio.ReadObject(bytes.NewReader(setup.Init))
	if err != nil {
		return fail(fmt.Errorf("decoding initial object: %w", err))
	}
	mesh, err := tiling.NewMesh(prob.ImageBounds(), setup.MeshRows, setup.MeshCols, setup.Halo)
	if err != nil {
		return fail(err)
	}
	timeout := time.Duration(setup.TimeoutMS) * time.Millisecond

	// Progress plumbing: the engines invoke these on rank 0 only, and
	// the transport relays them to the coordinator's job record. The
	// snapshot send is synchronous — the checkpoint is durable before
	// the run proceeds, exactly like the in-process OnSnapshot contract.
	onIter := func(iter int, cost float64) { c.SendIteration(iter, cost) }
	// Timing plumbing: every rank additionally reports its
	// per-iteration compute/comm split (extended ITER frames), which
	// the coordinator folds into the job's span trace.
	onStats := func(rank, iter int, computeNS, commNS int64) {
		if opts.StatsDelay != nil {
			if d := opts.StatsDelay(rank, iter); d > 0 {
				// Synchronous: the engine loop stalls here, so the rank
				// is genuinely slower, not just reported slower.
				time.Sleep(d)
				computeNS += int64(d)
			}
		}
		c.SendIterStats(iter, computeNS, commNS)
	}
	onSnap := func(iter int, slices []*grid.Complex2D) error {
		var buf bytes.Buffer
		if err := dataio.WriteObject(&buf, slices); err != nil {
			return err
		}
		return c.SendSnapshot(iter, buf.Bytes())
	}

	switch setup.Algorithm {
	case "gd":
		out, err := gradsync.RunRank(c, prob, init, gradsync.Options{
			Mesh: mesh, Mode: gradsync.ModeBatch,
			StepSize: setup.StepSize, Iterations: setup.Iterations,
			RoundsPerIteration: setup.RoundsPerIteration,
			IntraWorkers:       setup.IntraWorkers,
			Timeout:            timeout,
			OnIteration:        onIter,
			OnRankStats:        onStats, Ctx: ctx,
			SnapshotEvery: setup.SnapshotEvery, OnSnapshot: onSnap,
		})
		if err != nil {
			return fail(err)
		}
		return gdResult(setup.Rank, out)
	case "hve":
		out, err := halo.RunRank(c, prob, init, halo.Options{
			Mesh: mesh, HaloWidth: setup.HaloWidth, ExtraRows: setup.ExtraRows,
			StepSize: setup.StepSize, Iterations: setup.Iterations,
			ExchangesPerIteration: setup.RoundsPerIteration,
			Timeout:               timeout,
			OnIteration:           onIter, Ctx: ctx,
			SnapshotEvery: setup.SnapshotEvery, OnSnapshot: onSnap,
		})
		if err != nil {
			return fail(err)
		}
		return hveResult(setup.Rank, out)
	default:
		return fail(fmt.Errorf("gridworker: unknown algorithm %q (want gd or hve)", setup.Algorithm))
	}
}

func gdResult(rank int, out *gradsync.RankOutcome) *transport.RankResult {
	tile, err := encodeTile(out.Slices)
	if err != nil {
		return &transport.RankResult{Rank: rank, Err: err.Error()}
	}
	return &transport.RankResult{
		Rank: rank, Cancelled: out.Cancelled,
		CostHistory: out.CostHistory,
		Locations:   out.Locations, Owned: out.Locations,
		MemBytes: out.MemBytes, ComputeNS: out.ComputeNS, CommNS: out.CommNS,
		SentBytes: out.SentBytes, SentMessages: out.SentMessages,
		Tile: tile,
	}
}

func hveResult(rank int, out *halo.RankOutcome) *transport.RankResult {
	tile, err := encodeTile(out.Slices)
	if err != nil {
		return &transport.RankResult{Rank: rank, Err: err.Error()}
	}
	return &transport.RankResult{
		Rank: rank, Cancelled: out.Cancelled,
		CostHistory: out.CostHistory,
		Locations:   out.Locations, Owned: out.Owned,
		MemBytes:  out.MemBytes,
		SentBytes: out.SentBytes, SentMessages: out.SentMessages,
		Tile: tile,
	}
}

// encodeTile serializes extended-tile slices as OBJCKv1 (bounds travel
// with the data, so the coordinator reassembles exact rectangles).
func encodeTile(slices []*grid.Complex2D) ([]byte, error) {
	var buf bytes.Buffer
	if err := dataio.WriteObject(&buf, slices); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
