// Package fft implements complex discrete Fourier transforms in pure Go.
//
// The package provides cached 1-D plans (iterative radix-2 for power-of-2
// lengths, Bluestein's chirp-z algorithm for everything else), 2-D
// transforms built on row/column passes with optional goroutine
// parallelism, and the fftshift helpers used by diffraction physics.
//
// Conventions: Forward computes X[k] = sum_n x[n] exp(-2*pi*i*n*k/N) with
// no normalization; Inverse applies the +i kernel and divides by N, so
// Inverse(Forward(x)) == x. These match the conventions assumed by the
// multislice forward model and its adjoint.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// Direction selects the transform kernel sign.
type Direction int

const (
	// Forward uses the exp(-i...) kernel, no scaling.
	Forward Direction = iota
	// Inverse uses the exp(+i...) kernel and scales by 1/N.
	Inverse
)

// Plan holds precomputed twiddle factors for transforms of a fixed
// length. Plans are safe for concurrent use once created: all state is
// read-only during execution except per-call scratch passed by the
// caller or allocated locally.
type Plan struct {
	n       int
	pow2    bool
	twiddle []complex128 // radix-2 twiddles for pow2, length n/2
	rev     []int        // bit-reversal permutation for pow2

	// Bluestein state (non-power-of-2 lengths).
	m      int          // padded power-of-2 length >= 2n-1
	chirp  []complex128 // exp(-i*pi*k^2/n), length n
	bconj  []complex128 // FFT of the conjugate chirp, length m
	sub    *Plan        // power-of-2 plan of length m
	invN   float64      // 1/n
	scratch sync.Pool
}

var (
	planCacheMu sync.Mutex
	planCache   = map[int]*Plan{}
)

// NewPlan returns a (possibly cached) plan for length n transforms.
// It panics if n <= 0.
func NewPlan(n int) *Plan {
	if n <= 0 {
		panic(fmt.Sprintf("fft: invalid length %d", n))
	}
	planCacheMu.Lock()
	if p, ok := planCache[n]; ok {
		planCacheMu.Unlock()
		return p
	}
	planCacheMu.Unlock()
	// Build outside the lock: Bluestein plans recursively need a
	// power-of-2 sub-plan, and plan construction is idempotent, so a
	// rare duplicate build is harmless.
	p := buildPlan(n)
	planCacheMu.Lock()
	defer planCacheMu.Unlock()
	if existing, ok := planCache[n]; ok {
		return existing
	}
	planCache[n] = p
	return p
}

func buildPlan(n int) *Plan {
	p := &Plan{n: n, invN: 1 / float64(n)}
	if n&(n-1) == 0 {
		p.pow2 = true
		p.twiddle = make([]complex128, n/2)
		for k := range p.twiddle {
			s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
			p.twiddle[k] = complex(c, s)
		}
		p.rev = bitRevTable(n)
		return p
	}
	// Bluestein: convolve with a chirp via a padded power-of-2 FFT.
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	p.m = m
	p.chirp = make([]complex128, n)
	for k := 0; k < n; k++ {
		// Use k*k mod 2n to keep the angle argument small for large n.
		kk := (int64(k) * int64(k)) % int64(2*n)
		s, c := math.Sincos(-math.Pi * float64(kk) / float64(n))
		p.chirp[k] = complex(c, s)
	}
	p.sub = NewPlan(m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		conj := complex(real(p.chirp[k]), -imag(p.chirp[k]))
		b[k] = conj
		if k > 0 {
			b[m-k] = conj
		}
	}
	p.sub.forwardPow2(b)
	p.bconj = b
	p.scratch.New = func() any {
		s := make([]complex128, m)
		return &s
	}
	return p
}

func bitRevTable(n int) []int {
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	rev := make([]int, n)
	for i := range rev {
		rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
	return rev
}

// Len returns the transform length of the plan.
func (p *Plan) Len() int { return p.n }

// Transform applies the transform in place to x, which must have length
// Len(). dir selects forward or inverse. Non-power-of-2 lengths draw
// Bluestein workspace from an internal sync.Pool; use TransformScratch
// with a per-worker Scratch for a guaranteed allocation-free hot path.
func (p *Plan) Transform(x []complex128, dir Direction) {
	p.TransformScratch(x, dir, nil)
}

// TransformScratch is Transform with an explicit workspace arena. When
// s is non-nil all scratch comes from (and stays in) the arena, so
// steady-state calls perform zero heap allocations; a nil s falls back
// to the internal pool. The arena must not be shared across goroutines.
func (p *Plan) TransformScratch(x []complex128, dir Direction, s *Scratch) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: length mismatch: plan %d, data %d", p.n, len(x)))
	}
	if p.pow2 {
		if dir == Forward {
			p.forwardPow2(x)
			return
		}
		conjAll(x)
		p.forwardPow2(x)
		scale := complex(p.invN, 0)
		for i := range x {
			x[i] = complex(real(x[i]), -imag(x[i])) * scale
		}
		return
	}
	if s != nil {
		p.bluestein(x, dir, s.convBuf(p.m))
		return
	}
	bufp := p.scratch.Get().(*[]complex128)
	p.bluestein(x, dir, *bufp)
	p.scratch.Put(bufp)
}

// forwardPow2 runs the iterative radix-2 Cooley-Tukey kernel.
func (p *Plan) forwardPow2(x []complex128) {
	n := p.n
	for i, j := range p.rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				w := p.twiddle[tw]
				tw += step
				a := x[k]
				b := x[k+half] * w
				x[k] = a + b
				x[k+half] = a - b
			}
		}
	}
}

// bluestein evaluates an arbitrary-length DFT as a convolution using
// the caller-provided workspace a, which must have length m.
func (p *Plan) bluestein(x []complex128, dir Direction, a []complex128) {
	n, m := p.n, p.m
	for i := range a {
		a[i] = 0
	}
	if dir == Forward {
		for k := 0; k < n; k++ {
			a[k] = x[k] * p.chirp[k]
		}
	} else {
		for k := 0; k < n; k++ {
			// Inverse kernel: conjugate chirps.
			ch := complex(real(p.chirp[k]), -imag(p.chirp[k]))
			a[k] = x[k] * ch
		}
	}
	p.sub.forwardPow2(a)
	if dir == Forward {
		for i := 0; i < m; i++ {
			a[i] *= p.bconj[i]
		}
	} else {
		// FFT of the (non-conjugated) chirp is conj(bconj) because the
		// chirp sequence is conjugate-symmetric; reuse it.
		for i := 0; i < m; i++ {
			a[i] *= complex(real(p.bconj[i]), -imag(p.bconj[i]))
		}
	}
	// Inverse FFT of length m via conjugation trick.
	conjAll(a)
	p.sub.forwardPow2(a)
	invM := complex(1/float64(m), 0)
	if dir == Forward {
		for k := 0; k < n; k++ {
			v := complex(real(a[k]), -imag(a[k])) * invM
			x[k] = v * p.chirp[k]
		}
	} else {
		scale := complex(p.invN, 0)
		for k := 0; k < n; k++ {
			v := complex(real(a[k]), -imag(a[k])) * invM
			ch := complex(real(p.chirp[k]), -imag(p.chirp[k]))
			x[k] = v * ch * scale
		}
	}
}

func conjAll(x []complex128) {
	for i := range x {
		x[i] = complex(real(x[i]), -imag(x[i]))
	}
}
