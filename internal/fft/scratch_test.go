package fft

import (
	"testing"

	"ptychopath/internal/grid"
)

// TestTransformScratchMatchesTransform checks bit-identical output of
// the arena path against the pooled path for both kernels and both
// directions — the refactor changes buffer lifetimes, not math.
func TestTransformScratchMatchesTransform(t *testing.T) {
	var s Scratch
	for _, n := range []int{8, 24, 48, 64} {
		p := NewPlan(n)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(float64(i%7)-3, float64(i%5)-2)
		}
		for _, dir := range []Direction{Forward, Inverse} {
			want := append([]complex128(nil), x...)
			got := append([]complex128(nil), x...)
			p.Transform(want, dir)
			p.TransformScratch(got, dir, &s)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("n=%d dir=%d: element %d differs: %v vs %v", n, dir, i, want[i], got[i])
				}
			}
		}
	}
}

// TestTransformScratch2DMatches checks the 2-D arena path against the
// pooled path, including mixed pow2/Bluestein dimensions.
func TestTransformScratch2DMatches(t *testing.T) {
	var s Scratch
	for _, dims := range [][2]int{{16, 16}, {24, 24}, {16, 24}, {24, 16}} {
		w, h := dims[0], dims[1]
		p := NewPlan2D(w, h, false)
		a := grid.NewComplex2DSize(w, h)
		for i := range a.Data {
			a.Data[i] = complex(float64(i%11)-5, float64(i%3)-1)
		}
		want := a.Clone()
		p.Transform(want, Forward)
		got := a.Clone()
		p.TransformScratch(got, Forward, &s)
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("%dx%d: element %d differs: %v vs %v", w, h, i, want.Data[i], got.Data[i])
			}
		}
	}
}

// TestTransformScratchAllocationFree guards the arena invariant: once
// warmed, transforms through a Scratch never touch the heap — for the
// radix-2 kernel, the Bluestein kernel, and the 2-D sweep.
func TestTransformScratchAllocationFree(t *testing.T) {
	var s Scratch
	for _, n := range []int{24, 32} {
		p := NewPlan(n)
		x := make([]complex128, n)
		p.TransformScratch(x, Forward, &s)
		if got := testing.AllocsPerRun(50, func() {
			p.TransformScratch(x, Forward, &s)
			p.TransformScratch(x, Inverse, &s)
		}); got != 0 {
			t.Errorf("1-D n=%d: %v allocs per transform pair, want 0", n, got)
		}
		p2 := NewPlan2D(n, n, false)
		a := grid.NewComplex2DSize(n, n)
		s.Warm(p2)
		if got := testing.AllocsPerRun(50, func() {
			p2.TransformScratch(a, Forward, &s)
			p2.TransformScratch(a, Inverse, &s)
		}); got != 0 {
			t.Errorf("2-D n=%d: %v allocs per transform pair, want 0", n, got)
		}
	}
}

// TestScratchWarm checks Warm pre-grows enough that the very first
// transform after warming is allocation-free.
func TestScratchWarm(t *testing.T) {
	var s Scratch
	p2 := NewPlan2D(24, 48, false)
	s.Warm(p2)
	a := grid.NewComplex2DSize(24, 48)
	if got := testing.AllocsPerRun(1, func() {
		p2.TransformScratch(a, Forward, &s)
	}); got != 0 {
		t.Errorf("first post-Warm transform allocates %v, want 0", got)
	}
}
