package fft

// Scratch is a reusable per-worker arena for FFT workspace buffers.
// Passing one to TransformScratch makes transforms allocation-free in
// steady state: the arena grows to the largest size requested and is
// reused verbatim afterwards. This is the foundation of the repo's
// allocation-free gradient hot path — each reconstruction worker (one
// per simulated GPU) owns exactly one Scratch and threads it through
// every transform it performs.
//
// A Scratch is NOT safe for concurrent use. Concurrent workers must
// each own their own arena; sharing one between goroutines corrupts
// in-flight transforms.
type Scratch struct {
	col  []complex128 // column gather buffer for 2-D passes
	conv []complex128 // Bluestein convolution workspace
}

// colBuf returns the column buffer grown to at least n elements.
func (s *Scratch) colBuf(n int) []complex128 {
	if cap(s.col) < n {
		s.col = make([]complex128, n)
	}
	return s.col[:n]
}

// convBuf returns the Bluestein workspace grown to at least n elements.
func (s *Scratch) convBuf(n int) []complex128 {
	if cap(s.conv) < n {
		s.conv = make([]complex128, n)
	}
	return s.conv[:n]
}

// Warm pre-grows the arena for transforms of a w x h plan so that even
// the first TransformScratch call performs no allocation. Safe to call
// with any plan the arena will later serve; the arena keeps the
// largest size seen.
func (s *Scratch) Warm(p *Plan2D) {
	s.colBuf(p.h)
	if !p.rowPlan.pow2 {
		s.convBuf(p.rowPlan.m)
	}
	if !p.colPlan.pow2 {
		s.convBuf(p.colPlan.m)
	}
}
