package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n^2) reference implementation.
func naiveDFT(x []complex128, dir Direction) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if dir == Inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64(j) * float64(k) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	if dir == Inverse {
		for k := range out {
			out[k] /= complex(float64(n), 0)
		}
	}
	return out
}

func randVec(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Powers of two exercise radix-2; the rest exercise Bluestein,
	// including primes and highly composite lengths.
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 13, 16, 17, 30, 32, 63, 64, 100, 101, 128} {
		x := randVec(rng, n)
		want := naiveDFT(x, Forward)
		got := append([]complex128(nil), x...)
		NewPlan(n).Transform(got, Forward)
		if e := maxErr(got, want); e > 1e-9*float64(n) {
			t.Errorf("n=%d: forward error %g", n, e)
		}
	}
}

func TestInverseMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 3, 8, 15, 16, 31, 64, 96} {
		x := randVec(rng, n)
		want := naiveDFT(x, Inverse)
		got := append([]complex128(nil), x...)
		NewPlan(n).Transform(got, Inverse)
		if e := maxErr(got, want); e > 1e-9*float64(n) {
			t.Errorf("n=%d: inverse error %g", n, e)
		}
	}
}

func TestRoundTripIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5, 16, 48, 64, 121, 256} {
		x := randVec(rng, n)
		y := append([]complex128(nil), x...)
		p := NewPlan(n)
		p.Transform(y, Forward)
		p.Transform(y, Inverse)
		if e := maxErr(x, y); e > 1e-10*float64(n) {
			t.Errorf("n=%d: roundtrip error %g", n, e)
		}
	}
}

func TestParsevalTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{8, 21, 64, 100} {
		x := randVec(rng, n)
		var td float64
		for _, v := range x {
			td += real(v)*real(v) + imag(v)*imag(v)
		}
		y := append([]complex128(nil), x...)
		NewPlan(n).Transform(y, Forward)
		var fd float64
		for _, v := range y {
			fd += real(v)*real(v) + imag(v)*imag(v)
		}
		if math.Abs(fd/float64(n)-td) > 1e-8*td {
			t.Errorf("n=%d: Parseval violated: time %g freq/n %g", n, td, fd/float64(n))
		}
	}
}

func TestLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		n := 1 + rng.Intn(64)
		p := NewPlan(n)
		a, b := randVec(rng, n), randVec(rng, n)
		alpha := complex(rng.NormFloat64(), rng.NormFloat64())
		// FFT(alpha*a + b)
		lhs := make([]complex128, n)
		for i := range lhs {
			lhs[i] = alpha*a[i] + b[i]
		}
		p.Transform(lhs, Forward)
		// alpha*FFT(a) + FFT(b)
		fa := append([]complex128(nil), a...)
		fb := append([]complex128(nil), b...)
		p.Transform(fa, Forward)
		p.Transform(fb, Forward)
		for i := range fa {
			fa[i] = alpha*fa[i] + fb[i]
		}
		return maxErr(lhs, fa) < 1e-8*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestShiftTheoremProperty(t *testing.T) {
	// A circular shift in time multiplies the spectrum by a phase ramp.
	rng := rand.New(rand.NewSource(6))
	f := func() bool {
		n := 2 + rng.Intn(63)
		s := rng.Intn(n)
		p := NewPlan(n)
		x := randVec(rng, n)
		shifted := make([]complex128, n)
		for i := range x {
			shifted[(i+s)%n] = x[i]
		}
		fx := append([]complex128(nil), x...)
		p.Transform(fx, Forward)
		fs := append([]complex128(nil), shifted...)
		p.Transform(fs, Forward)
		for k := 0; k < n; k++ {
			phase := cmplx.Exp(complex(0, -2*math.Pi*float64(k)*float64(s)/float64(n)))
			if cmplx.Abs(fs[k]-fx[k]*phase) > 1e-8*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestImpulseResponse(t *testing.T) {
	// FFT of a delta at index 0 is all-ones.
	for _, n := range []int{4, 9, 16} {
		x := make([]complex128, n)
		x[0] = 1
		NewPlan(n).Transform(x, Forward)
		for k, v := range x {
			if cmplx.Abs(v-1) > 1e-10 {
				t.Fatalf("n=%d k=%d: delta transform = %v, want 1", n, k, v)
			}
		}
	}
}

func TestConstantSignal(t *testing.T) {
	// FFT of all-ones is n*delta.
	n := 12
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1
	}
	NewPlan(n).Transform(x, Forward)
	if cmplx.Abs(x[0]-complex(float64(n), 0)) > 1e-9 {
		t.Fatalf("DC bin = %v, want %d", x[0], n)
	}
	for k := 1; k < n; k++ {
		if cmplx.Abs(x[k]) > 1e-9 {
			t.Fatalf("bin %d = %v, want 0", k, x[k])
		}
	}
}

func TestPlanCacheReuse(t *testing.T) {
	if NewPlan(64) != NewPlan(64) {
		t.Fatal("plans of the same length must be cached")
	}
}

func TestPlanInvalidLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPlan(0) must panic")
		}
	}()
	NewPlan(0)
}

func TestTransformLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	NewPlan(8).Transform(make([]complex128, 7), Forward)
}

func TestPlanConcurrentUse(t *testing.T) {
	// A single plan used from many goroutines must race-cleanly produce
	// correct results (run with -race in CI).
	p := NewPlan(48) // Bluestein path, exercises the scratch pool
	rng := rand.New(rand.NewSource(7))
	x := randVec(rng, 48)
	want := naiveDFT(x, Forward)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				y := append([]complex128(nil), x...)
				p.Transform(y, Forward)
				if maxErr(y, want) > 1e-8 {
					done <- errMismatch
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = errorString("concurrent transform mismatch")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestFreqIndex(t *testing.T) {
	// Even length.
	got := make([]int, 8)
	for k := range got {
		got[k] = FreqIndex(k, 8)
	}
	want := []int{0, 1, 2, 3, -4, -3, -2, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FreqIndex(%d,8) = %d, want %d", i, got[i], want[i])
		}
	}
	// Odd length.
	got5 := make([]int, 5)
	for k := range got5 {
		got5[k] = FreqIndex(k, 5)
	}
	want5 := []int{0, 1, 2, -2, -1}
	for i := range want5 {
		if got5[i] != want5[i] {
			t.Fatalf("FreqIndex(%d,5) = %d, want %d", i, got5[i], want5[i])
		}
	}
}
