package fft

import (
	"fmt"
	"runtime"
	"sync"

	"ptychopath/internal/grid"
)

// Plan2D performs 2-D transforms on w x h complex arrays by applying
// 1-D transforms along rows and then columns. A Plan2D is safe for
// concurrent use; per-call scratch comes from an internal pool.
type Plan2D struct {
	w, h     int
	rowPlan  *Plan
	colPlan  *Plan
	parallel bool
	colBuf   sync.Pool
}

// NewPlan2D returns a plan for w x h transforms. Set parallel to spread
// row/column passes across GOMAXPROCS goroutines, which pays off for
// transforms of roughly 256x256 and larger.
func NewPlan2D(w, h int, parallel bool) *Plan2D {
	p := &Plan2D{
		w:        w,
		h:        h,
		rowPlan:  NewPlan(w),
		colPlan:  NewPlan(h),
		parallel: parallel,
	}
	p.colBuf.New = func() any {
		s := make([]complex128, h)
		return &s
	}
	return p
}

// W returns the plan width.
func (p *Plan2D) W() int { return p.w }

// H returns the plan height.
func (p *Plan2D) H() int { return p.h }

// Transform applies the 2-D transform in place to a, whose dimensions
// must match the plan. The array's Bounds offset is irrelevant; only the
// shape matters. Scratch comes from an internal pool; hot paths that
// must not allocate should hold a per-worker Scratch and call
// TransformScratch instead.
func (p *Plan2D) Transform(a *grid.Complex2D, dir Direction) {
	if a.W() != p.w || a.H() != p.h {
		panic(fmt.Sprintf("fft: plan %dx%d, array %dx%d", p.w, p.h, a.W(), a.H()))
	}
	if p.parallel {
		p.rowsParallel(a, dir)
		p.colsParallel(a, dir)
		return
	}
	p.transformSerial(a, dir, nil)
}

// TransformScratch applies the 2-D transform in place drawing every
// workspace buffer from the per-worker arena s, making steady-state
// calls allocation-free. The transform always runs on the calling
// goroutine (an arena is inherently single-threaded), regardless of the
// plan's parallel flag. A nil s falls back to the internal pool.
func (p *Plan2D) TransformScratch(a *grid.Complex2D, dir Direction, s *Scratch) {
	if a.W() != p.w || a.H() != p.h {
		panic(fmt.Sprintf("fft: plan %dx%d, array %dx%d", p.w, p.h, a.W(), a.H()))
	}
	p.transformSerial(a, dir, s)
}

// transformSerial is the closure-free single-goroutine row/column
// sweep. With a non-nil arena it performs zero steady-state heap
// allocations — the gradient hot path of every reconstruction engine.
func (p *Plan2D) transformSerial(a *grid.Complex2D, dir Direction, s *Scratch) {
	data := a.Data
	w, h := p.w, p.h
	for y := 0; y < h; y++ {
		p.rowPlan.TransformScratch(data[y*w:(y+1)*w], dir, s)
	}
	var col []complex128
	var pooled *[]complex128
	if s != nil {
		col = s.colBuf(h)
	} else {
		pooled = p.colBuf.Get().(*[]complex128)
		col = *pooled
	}
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			col[y] = data[y*w+x]
		}
		p.colPlan.TransformScratch(col, dir, s)
		for y := 0; y < h; y++ {
			data[y*w+x] = col[y]
		}
	}
	if pooled != nil {
		p.colBuf.Put(pooled)
	}
}

func (p *Plan2D) rowsParallel(a *grid.Complex2D, dir Direction) {
	data := a.Data
	w := p.w
	apply := func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			p.rowPlan.Transform(data[y*w:(y+1)*w], dir)
		}
	}
	p.split(p.h, apply)
}

func (p *Plan2D) colsParallel(a *grid.Complex2D, dir Direction) {
	data := a.Data
	w, h := p.w, p.h
	apply := func(x0, x1 int) {
		bufp := p.colBuf.Get().(*[]complex128)
		col := *bufp
		for x := x0; x < x1; x++ {
			for y := 0; y < h; y++ {
				col[y] = data[y*w+x]
			}
			p.colPlan.Transform(col, dir)
			for y := 0; y < h; y++ {
				data[y*w+x] = col[y]
			}
		}
		p.colBuf.Put(bufp)
	}
	p.split(w, apply)
}

// split partitions [0, n) across workers; only reached from the
// parallel row/column passes (serial plans route through
// transformSerial), and falls back to one goroutine when n is too small
// to amortize goroutine overhead.
func (p *Plan2D) split(n int, apply func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 64 {
		apply(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			apply(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Shift applies fftshift in place: quadrants are swapped so the
// zero-frequency component moves to the array center. For odd dimensions
// Shift moves index 0 to floor(n/2); Unshift reverses it exactly.
func Shift(a *grid.Complex2D) { shift(a, false) }

// Unshift applies the inverse of Shift (ifftshift).
func Unshift(a *grid.Complex2D) { shift(a, true) }

func shift(a *grid.Complex2D, inverse bool) {
	w, h := a.W(), a.H()
	dx, dy := w/2, h/2
	if inverse {
		dx, dy = (w+1)/2, (h+1)/2
	}
	out := make([]complex128, len(a.Data))
	for y := 0; y < h; y++ {
		ny := (y + dy) % h
		for x := 0; x < w; x++ {
			nx := (x + dx) % w
			out[ny*w+nx] = a.Data[y*w+x]
		}
	}
	copy(a.Data, out)
}

// FreqIndex returns the signed frequency for index k of an n-point
// transform: 0, 1, ..., n/2-1, -n/2, ..., -1 (the NumPy fftfreq layout
// multiplied by n).
func FreqIndex(k, n int) int {
	if k <= (n-1)/2 {
		return k
	}
	return k - n
}
